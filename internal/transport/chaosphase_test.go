package transport

import (
	"errors"
	"testing"
)

// TestParseCrashPhase covers the phase-scoped crash syntax next to the
// original positional form: rank@N keeps meaning "the Nth send overall",
// rank@phase means "the first send inside that phase", and rank@phase:N
// picks the Nth.
func TestParseCrashPhase(t *testing.T) {
	p, err := ParsePlan("crash=2@correct", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashRank != 2 || p.CrashPhase != "correct" || p.CrashAfter != 1 {
		t.Errorf("crash=2@correct: %+v", p)
	}
	if err := p.Validate(3); err != nil {
		t.Errorf("validate: %v", err)
	}

	p, err = ParsePlan("crash=2@correct:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashRank != 2 || p.CrashPhase != "correct" || p.CrashAfter != 5 {
		t.Errorf("crash=2@correct:5: %+v", p)
	}

	// The positional syntax is untouched.
	p, err = ParsePlan("crash=2@100", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashRank != 2 || p.CrashPhase != "" || p.CrashAfter != 100 {
		t.Errorf("crash=2@100: %+v", p)
	}

	// Phase names are validated against the pipeline's phase strings.
	p, err = ParsePlan("crash=1@warp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(2); err == nil {
		t.Error("Validate accepted unknown phase \"warp\"")
	}
	if _, err := ParsePlan("crash=1@correct:x", 1); err == nil {
		t.Error("ParsePlan accepted a non-numeric phase ordinal")
	}

	// A phase without a crash rank is meaningless.
	orphan := NewPlan(1)
	orphan.CrashPhase = "correct"
	if err := orphan.Validate(2); err == nil {
		t.Error("Validate accepted a crash phase without a crash rank")
	}
}

// TestChaosPhaseScopedCrash: the crash must fire only inside the named
// phase, counting that phase's own sends — and re-entering the phase resets
// the counter, so the trigger is deterministic per phase visit.
func TestChaosPhaseScopedCrash(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	plan := NewPlan(0)
	plan.CrashRank = 0
	plan.CrashPhase = "correct"
	plan.CrashAfter = 3
	c := NewChaos(eps[0], plan)

	mustSend := func(where string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := c.Send(1, 1, nil); err != nil {
				t.Fatalf("%s: send %d: %v", where, i+1, err)
			}
		}
	}
	mustSend("before any phase", 5)
	c.EnterPhase("spectrum")
	mustSend("spectrum phase", 5)
	c.EnterPhase("correct")
	mustSend("correct phase, first visit", 2)
	c.EnterPhase("exchange")
	mustSend("exchange phase", 3)
	c.EnterPhase("correct")
	mustSend("correct phase, second visit", 2)
	if err := c.Send(1, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd correct-phase send: got %v, want ErrInjected", err)
	}
	if _, err := eps[1].Recv(99); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("peer recv after phase crash: got %v, want ErrPeerDown", err)
	}
	if c.FaultsInjected() != 1 {
		t.Errorf("faults = %d, want 1", c.FaultsInjected())
	}
}
