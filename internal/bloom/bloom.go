// Package bloom provides a Bloom filter over k-mer/tile IDs.
//
// The paper notes (Section III, Step III) that a Bloom filter is a
// memory-efficient alternative to keeping exact counts around for the
// threshold-pruning step: first-occurrence IDs go into the filter, and only
// IDs seen again (filter hits) enter the exact table, which drops the long
// tail of singleton error k-mers from the hash tables.
package bloom

import (
	"fmt"
	"math"

	"reptile/internal/kmer"
)

// Filter is a fixed-size Bloom filter keyed by kmer.ID.
type Filter struct {
	bits   []uint64
	mask   uint64 // len(bits)*64 - 1; size is a power of two
	hashes int
	n      int // items added
}

// New creates a filter sized for expectedItems at the given false-positive
// rate. Both are clamped to sane minimums.
func New(expectedItems int, fpRate float64) *Filter {
	if expectedItems < 1 {
		expectedItems = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// Optimal bit count m = -n ln p / (ln 2)^2, rounded up to a power of two
	// so addressing is a mask instead of a modulo.
	m := float64(expectedItems) * -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	words := 1
	for words*64 < int(m) {
		words *= 2
	}
	k := int(math.Round(float64(words*64) / float64(expectedItems) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Filter{
		bits:   make([]uint64, words),
		mask:   uint64(words*64 - 1),
		hashes: k,
	}
}

// indexes derives the k probe positions from two independent mixes of the
// ID (Kirsch-Mitzenmacher double hashing).
func (f *Filter) probe(id kmer.ID, i int) uint64 {
	h1 := kmer.HashID(id)
	h2 := kmer.HashID(id ^ 0x9e3779b97f4a7c15)
	return (h1 + uint64(i)*h2) & f.mask
}

// Add inserts id and returns whether it was (possibly) already present —
// true means all probed bits were already set.
func (f *Filter) Add(id kmer.ID) bool {
	present := true
	for i := 0; i < f.hashes; i++ {
		p := f.probe(id, i)
		w, b := p>>6, uint64(1)<<(p&63)
		if f.bits[w]&b == 0 {
			present = false
			f.bits[w] |= b
		}
	}
	f.n++
	return present
}

// Contains reports whether id may be in the set (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(id kmer.ID) bool {
	for i := 0; i < f.hashes; i++ {
		p := f.probe(id, i)
		if f.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Added returns the number of Add calls.
func (f *Filter) Added() int { return f.n }

// MemBytes returns the filter's footprint.
func (f *Filter) MemBytes() int64 { return int64(len(f.bits))*8 + 40 }

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// String describes the geometry for diagnostics.
func (f *Filter) String() string {
	return fmt.Sprintf("bloom.Filter{bits=%d, hashes=%d, added=%d}", len(f.bits)*64, f.hashes, f.n)
}
