package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves np distinct loopback ports by briefly listening.
func freeAddrs(t *testing.T, np int) []string {
	t.Helper()
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// tcpGroup spins up np TCP endpoints on loopback.
func tcpGroup(t *testing.T, np int) []*Endpoint {
	t.Helper()
	addrs := freeAddrs(t, np)
	eps := make([]*Endpoint, np)
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := NewTCP(TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				return
			}
			eps[r] = e
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	t.Cleanup(func() { CloseGroup(eps) })
	return eps
}

func TestTCPSendRecv(t *testing.T) {
	eps := tcpGroup(t, 3)
	if err := eps[0].Send(2, 5, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	m, err := eps[2].Recv(5)
	if err != nil || m.From != 0 || string(m.Data) != "over tcp" {
		t.Fatalf("got %+v, %v", m, err)
	}
	// And the reverse direction on the same duplex connection.
	if err := eps[2].Send(0, 6, []byte("back")); err != nil {
		t.Fatal(err)
	}
	m, err = eps[0].Recv(6)
	if err != nil || m.From != 2 || string(m.Data) != "back" {
		t.Fatalf("got %+v, %v", m, err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps := tcpGroup(t, 2)
	eps[1].Send(1, 9, []byte("loop"))
	m, err := eps[1].Recv(9)
	if err != nil || string(m.Data) != "loop" {
		t.Fatalf("self send over tcp: %+v %v", m, err)
	}
}

func TestTCPLargeAndEmptyPayloads(t *testing.T) {
	eps := tcpGroup(t, 2)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	eps[0].Send(1, 1, big)
	eps[0].Send(1, 1, nil)
	m, err := eps[1].Recv(1)
	if err != nil || len(m.Data) != len(big) {
		t.Fatalf("large frame: %d bytes, %v", len(m.Data), err)
	}
	for i := 0; i < len(big); i += 4099 {
		if m.Data[i] != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	m, err = eps[1].Recv(1)
	if err != nil || len(m.Data) != 0 {
		t.Fatalf("empty frame: %+v %v", m, err)
	}
}

func TestTCPManyConcurrentMessages(t *testing.T) {
	eps := tcpGroup(t, 4)
	const per = 300
	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for to := 0; to < 4; to++ {
					if to != e.Rank() {
						e.Send(to, 2, []byte{byte(e.Rank()), byte(i), byte(i >> 8)})
					}
				}
			}
		}(e)
	}
	recvCounts := make([][4]int, 4)
	for i, e := range eps {
		wg.Add(1)
		go func(i int, e *Endpoint) {
			defer wg.Done()
			for n := 0; n < per*3; n++ {
				m, err := e.Recv(2)
				if err != nil {
					t.Error(err)
					return
				}
				// Per-sender FIFO check.
				from := int(m.Data[0])
				seq := int(m.Data[1]) | int(m.Data[2])<<8
				if seq != recvCounts[i][from] {
					t.Errorf("rank %d: from %d got seq %d want %d", i, from, seq, recvCounts[i][from])
					return
				}
				recvCounts[i][from]++
			}
		}(i, e)
	}
	wg.Wait()
}

func TestTCPConfigValidation(t *testing.T) {
	if _, err := NewTCP(TCPConfig{Rank: 0}); err == nil {
		t.Error("accepted empty address list")
	}
	if _, err := NewTCP(TCPConfig{Rank: 5, Addrs: []string{"a", "b"}}); err == nil {
		t.Error("accepted out-of-range rank")
	}
}

func TestTCPDialTimeout(t *testing.T) {
	addrs := freeAddrs(t, 2)
	// Rank 1 dials rank 0, which never listens.
	_, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, DialTimeout: 200 * time.Millisecond, Retry: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to absent peer succeeded")
	}
}

func TestLoopbackAddrs(t *testing.T) {
	addrs := LoopbackAddrs(3, 9000)
	if len(addrs) != 3 || addrs[0] != "127.0.0.1:9000" || addrs[2] != "127.0.0.1:9002" {
		t.Errorf("LoopbackAddrs = %v", addrs)
	}
}
