// Command reptile-bench regenerates the paper's tables and figures on
// scaled synthetic workloads.
//
// Usage:
//
//	reptile-bench                      # run every experiment at default scale
//	reptile-bench -exp fig4            # one experiment
//	reptile-bench -scale 0.1 -rankdiv 64 -maxranks 128
//	reptile-bench -list
//
// Output is aligned text, one table per experiment, each annotated with the
// paper's reference numbers for comparison (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"reptile/internal/harness"
	"reptile/internal/msgplane"
	"reptile/internal/transport"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table1, fig2..fig8, batchsweep, lookup, build); empty = all")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor on the Table I presets")
		rankDiv  = flag.Int("rankdiv", 32, "divide the paper's rank counts by this")
		maxRanks = flag.Int("maxranks", 256, "cap on scaled rank counts")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also write each table as <dir>/<id>.csv")
		jsonPath = flag.String("json", "", "also write the selected tables as a JSON array to this file")

		chaos     = flag.String("chaos", "", "fault schedule injected into every run (e.g. delay=50us,jitter=100us,slow=1x4); see reptile-correct -chaos")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the fault schedule's jitter stream")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc := harness.Scale{Dataset: *scale, RankDiv: *rankDiv, MaxRanks: *maxRanks}
	if *chaos != "" {
		plan, err := transport.ParsePlan(*chaos, *chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reptile-bench: %v\n", err)
			os.Exit(2)
		}
		sc.Chaos = &plan
	}
	exps := harness.All()
	if *exp != "" {
		e, ok := harness.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "reptile-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	fmt.Printf("reptile-bench: scale=%.3g rankdiv=%d maxranks=%d\n\n", *scale, *rankDiv, *maxRanks)
	var tables []*harness.Table
	exitCode := 0
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(sc)
		if tab != nil {
			// Render (and below, serialize) even a failing experiment's table:
			// an acceptance-bar violation exits nonzero, but the rows that
			// tripped it are exactly what the artifact should show.
			fmt.Print(tab.Render())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, tab.ID+".csv")
				if werr := os.WriteFile(path, []byte(tab.CSV()), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "reptile-bench: writing %s: %v\n", path, werr)
					os.Exit(1)
				}
			}
			tables = append(tables, tab)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reptile-bench: %s: %v\n", e.ID, err)
			// A protocol violation is an engine bug, not a workload failure;
			// give it a distinct exit code so sweep scripts can tell the two
			// apart (the message already names the offending tag).
			var pe *msgplane.ProtocolError
			if errors.As(err, &pe) {
				exitCode = 3
			} else {
				exitCode = 1
			}
			break
		}
		fmt.Printf("   (measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" && len(tables) > 0 {
		blob, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "reptile-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "reptile-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("json: %s\n", *jsonPath)
	}
	os.Exit(exitCode)
}
