// Package fixture exercises the nosleepsync analyzer inside a runtime
// import path: a flagged sleep, an allowed backoff, and a clean channel
// wait.
package fixture

import "time"

// badWait sleeps to "let the other goroutine get there" — the bug class the
// analyzer exists for.
func badWait(ready chan struct{}) {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep used in runtime code"
	<-ready
}

// allowedBackoff polls an external resource; the per-line directive opts
// this legitimate duration wait out.
func allowedBackoff(ping func() bool) {
	for i := 0; i < 3 && !ping(); i++ {
		time.Sleep(time.Millisecond) // reptile-lint:allow nosleepsync probe retry backoff
	}
}

// goodWait synchronizes on a channel: clean.
func goodWait(ready chan struct{}) {
	<-ready
}
