package msgplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"reptile/internal/transport"
)

// Control-plane tags, owned by the router. The values predate the message
// plane (they were core's done/stop ints), so the wire format of a mixed
// deployment is unchanged.
const (
	// TagDone tells the coordinator (rank 0) that one rank's workers have
	// finished their shard. An empty payload reports the sender itself; a
	// 4-byte payload carries the rank being reported, which is how a
	// recovery executor announces done on behalf of a dead rank whose
	// shard it finished (the proxy-done of the recovery protocol).
	TagDone Tag = 5
	// TagStop is the coordinator's broadcast: every rank is done, routers
	// shut down.
	TagStop Tag = 6
)

func init() {
	Register(
		Spec{Tag: TagDone, Name: "done", Dir: DirControl, MinSize: 0, MaxSize: 4},
		Spec{Tag: TagStop, Name: "stop", Dir: DirControl, MinSize: 0, MaxSize: 0},
	)
}

// Handler services one inbound frame. Handlers run on the router
// goroutine, one at a time — the router's single receive loop is the
// backpressure: a slow handler stalls this rank's demux while peers queue
// in the transport mailbox, exactly like the paper's one communication
// thread per rank. A handler error shuts the router down and becomes the
// rank's failure.
type Handler func(m transport.Message) error

// Router is one rank's receive loop: it demultiplexes every inbound
// application frame to the handler registered for its tag and owns the
// control plane — the done/stop termination protocol here, while the
// abort/heartbeat control frames are intercepted one layer down by the
// transport and surface through Run's receive error as mailbox poison.
//
// Validation is registry-driven and happens before any handler runs: an
// unregistered tag, a payload outside the tag's size bounds, or a frame no
// handler claims each end the run with a typed ProtocolError, so data-
// plane handlers are plain callbacks that can trust their input framing.
type Router struct {
	e    transport.Conn
	rank int
	np   int
	// handlers is written by Handle before Run starts and read-only after;
	// the goroutine launch is the happens-before edge.
	handlers map[Tag]Handler
	// doneSet tracks which ranks reported done; touched only by the Run
	// goroutine. Distinct-rank tracking (rather than a bare count) makes a
	// duplicate report idempotent, which the recovery protocol needs: a
	// rank may announce done for itself and an executor may later announce
	// done on a dead rank's behalf, and neither may double-count.
	doneSet  []bool
	doneRept int
	// dead marks ranks a recovery layer declared lost, so the stop
	// broadcast tolerates undeliverable sends to exactly those ranks.
	// Guarded by deadMu: MarkDead is called from transport goroutines.
	deadMu sync.Mutex
	dead   map[int]bool
}

// NewRouter builds a router over one rank's endpoint.
func NewRouter(e transport.Conn) *Router {
	return &Router{
		e:        e,
		rank:     e.Rank(),
		np:       e.Size(),
		handlers: make(map[Tag]Handler),
		doneSet:  make([]bool, e.Size()),
		dead:     make(map[int]bool),
	}
}

// MarkDead records that a recovery layer declared rank lost. The stop
// broadcast skips send failures to marked ranks (their endpoints are gone
// by definition) instead of failing the coordinator. Safe to call from any
// goroutine.
func (r *Router) MarkDead(rank int) {
	r.deadMu.Lock()
	r.dead[rank] = true
	r.deadMu.Unlock()
}

// isDead reports whether rank was marked lost.
func (r *Router) isDead(rank int) bool {
	r.deadMu.Lock()
	defer r.deadMu.Unlock()
	return r.dead[rank]
}

// Handle registers the handler for one tag. It must be called before Run
// starts; registration conflicts are programming errors and panic.
func (r *Router) Handle(t Tag, h Handler) {
	spec, ok := LookupSpec(t)
	switch {
	case h == nil:
		panic(fmt.Sprintf("msgplane: nil handler for %v", t))
	case !ok:
		panic(fmt.Sprintf("msgplane: handler for unregistered tag %d", int(t)))
	case spec.Dir == DirControl:
		panic(fmt.Sprintf("msgplane: %v is a control tag owned by the router", t))
	}
	if _, dup := r.handlers[t]; dup {
		panic(fmt.Sprintf("msgplane: duplicate handler for %v", t))
	}
	r.handlers[t] = h
}

// claims reports whether the router receive loop should take a frame with
// this tag out of the mailbox. Negative tags belong to collectives (and
// the transport's own control frames never reach the mailbox); Direct
// tags without a handler are left for the requester's blocking Recv.
// Everything else is claimed — including unregistered and unhandled tags,
// which Run turns into ProtocolErrors instead of letting them sit
// undelivered forever.
func (r *Router) claims(tag int) bool {
	if tag < 0 {
		return false
	}
	t := Tag(tag)
	if t == TagDone || t == TagStop {
		return true
	}
	if spec, ok := LookupSpec(t); ok && spec.Direct && r.handlers[t] == nil {
		return false
	}
	return true
}

// Run is the receive loop: it demuxes frames until the stop broadcast
// arrives (clean shutdown, returns nil) or a failure surfaces — a
// transport error, a protocol violation, or a handler error/panic.
//
// Rank 0 doubles as the coordinator: it counts done messages and
// broadcasts stop (itself included) when all np ranks have reported.
// Because a rank announces done only after every request it issued has
// been answered, the stop broadcast can never overtake an answer some
// rank still waits for — the shutdown-ordering invariant the batch
// dispatcher's window accounting relies on.
func (r *Router) Run() error {
	for {
		m, err := r.e.RecvMatch(r.claims)
		if err != nil {
			return err
		}
		t := Tag(m.Tag)
		switch t {
		case TagStop:
			return nil
		case TagDone:
			if r.rank != 0 {
				return &ProtocolError{Tag: t, Kind: ViolationStraySender, From: m.From, Want: 0}
			}
			who := m.From
			switch len(m.Data) {
			case 0:
			case 4:
				who = int(int32(binary.LittleEndian.Uint32(m.Data)))
			default:
				return &ProtocolError{Tag: t, Kind: ViolationBadFrame, From: m.From, Want: -1, Size: len(m.Data)}
			}
			if who < 0 || who >= r.np {
				return &ProtocolError{Tag: t, Kind: ViolationBadFrame, From: m.From, Want: -1, Size: len(m.Data)}
			}
			if r.doneSet[who] {
				continue // idempotent: a duplicate or redundant proxy report
			}
			r.doneSet[who] = true
			r.doneRept++
			if r.doneRept == r.np {
				for peer := 0; peer < r.np; peer++ {
					if err := Send(r.e, peer, TagStop, nil); err != nil {
						// A marked-dead rank's endpoint is gone by
						// definition; failing its stop must not fail the
						// coordinator and with it every survivor.
						if r.isDead(peer) && errors.Is(err, transport.ErrPeerDown) {
							continue
						}
						return err
					}
				}
			}
			continue
		}
		spec, ok := LookupSpec(t)
		if !ok {
			return &ProtocolError{Tag: t, Kind: ViolationUnknownTag, From: m.From, Want: -1}
		}
		if n := len(m.Data); n < spec.MinSize || (spec.MaxSize != Unbounded && n > spec.MaxSize) {
			return &ProtocolError{Tag: t, Kind: ViolationBadFrame, From: m.From, Want: -1, Size: n}
		}
		h := r.handlers[t]
		if h == nil {
			return &ProtocolError{Tag: t, Kind: ViolationUnhandledTag, From: m.From, Want: -1}
		}
		if err := r.dispatch(h, m); err != nil {
			return err
		}
	}
}

// dispatch runs one handler with panic containment: a panicking handler
// fails this rank's run (and, through the caller's abort path, the whole
// group) instead of crashing the process with the transport in an
// undefined state.
func (r *Router) dispatch(h Handler, m transport.Message) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("msgplane: handler for %v frame from rank %d panicked: %v", Tag(m.Tag), m.From, p)
		}
	}()
	return h(m)
}

// AnnounceDone reports this rank's workers finished to the coordinator.
// The caller must have collected every response it was owed first; the
// router keeps serving peers until the coordinator's stop arrives.
func (r *Router) AnnounceDone() error {
	return Send(r.e, 0, TagDone, nil)
}

// AnnounceDoneFor reports a *different* rank's shard finished — the proxy
// done a recovery executor sends after completing a dead rank's work, which
// is what lets the done/stop protocol converge with a hole in the group.
func (r *Router) AnnounceDoneFor(rank int) error {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(rank))
	return Send(r.e, 0, TagDone, buf)
}
