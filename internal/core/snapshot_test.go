package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/reads"
	"reptile/internal/snapshot"
	"reptile/internal/stats"
)

// snapshotKeys flattens corrected output to comparable (seq, bases) pairs.
func snapshotKeys(rs []reads.Read) []readKey {
	keys := make([]readKey, len(rs))
	for i := range rs {
		keys[i] = readKey{rs[i].Seq, dna.DecodeString(rs[i].Base)}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].seq < keys[j].seq })
	return keys
}

func sameKeys(t *testing.T, label string, got, want []readKey) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reads, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: read %d differs", label, want[i].seq)
		}
	}
}

// cacheFiles lists the snapshot entries in a cache dir.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.rsnap"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestSnapshotCacheColdWarmEquivalence is the tentpole contract: a cold run
// populates the content-hash cache (every rank misses and saves), a warm
// run adopts it (every rank hits, the build phase is skipped), and the
// corrected output is byte-identical across cold, warm, and a no-snapshot
// baseline — over the in-process transport and, warm, over TCP.
func TestSnapshotCacheColdWarmEquivalence(t *testing.T) {
	ds, opts := testDataset(t, 800, 9300)
	const np = 2
	dir := t.TempDir()
	opts.Snapshot = &SnapshotOptions{Dir: dir, InputDigest: snapshot.DigestReads(ds.Reads)}

	base := opts
	base.Snapshot = nil
	baseOut, err := Run(&MemorySource{Reads: ds.Reads}, np, base)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotKeys(baseOut.Corrected())

	cold, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "cold vs baseline", snapshotKeys(cold.Corrected()), want)
	for _, r := range cold.Run.Ranks {
		if r.SnapshotMisses != 1 || r.SnapshotHits != 0 || r.SnapshotSaves != 1 || r.SnapshotBytesWritten == 0 {
			t.Fatalf("cold rank %d: misses=%d hits=%d saves=%d written=%d",
				r.Rank, r.SnapshotMisses, r.SnapshotHits, r.SnapshotSaves, r.SnapshotBytesWritten)
		}
	}
	if files := cacheFiles(t, dir); len(files) != np {
		t.Fatalf("cache holds %d files, want %d", len(files), np)
	}

	warm, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "warm vs baseline", snapshotKeys(warm.Corrected()), want)
	for _, r := range warm.Run.Ranks {
		if r.SnapshotHits != 1 || r.SnapshotMisses != 0 || r.SnapshotSaves != 0 || r.SnapshotBytesRead == 0 {
			t.Fatalf("warm rank %d: hits=%d misses=%d saves=%d read=%d",
				r.Rank, r.SnapshotHits, r.SnapshotMisses, r.SnapshotSaves, r.SnapshotBytesRead)
		}
		if r.OwnedKmers == 0 && r.OwnedTiles == 0 {
			t.Fatalf("warm rank %d adopted empty spectra", r.Rank)
		}
		if r.Wall[stats.PhaseSnapshot] <= 0 {
			t.Fatalf("warm rank %d: snapshot phase not timed", r.Rank)
		}
	}

	// The warm path over TCP: same cache dir, same key, byte-identical.
	tcpGot := runOverTCP(t, &MemorySource{Reads: ds.Reads}, np, opts)
	sameKeys(t, "warm tcp vs baseline", tcpGot, want)
}

// TestSnapshotCorruptionRebuilds pins rebuild-not-crash: a flipped byte, a
// stale format version, or a truncated cache entry all decode to a miss, so
// the run rebuilds (run-wide, keeping the collective schedule aligned),
// heals the cache, and still corrects identically.
func TestSnapshotCorruptionRebuilds(t *testing.T) {
	ds, opts := testDataset(t, 600, 9400)
	const np = 2
	dir := t.TempDir()
	opts.Snapshot = &SnapshotOptions{Dir: dir, InputDigest: snapshot.DigestReads(ds.Reads)}

	cold, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotKeys(cold.Corrected())

	corrupt := func(label string, mutate func([]byte) []byte) {
		files := cacheFiles(t, dir)
		if len(files) != np {
			t.Fatalf("%s: cache holds %d files, want %d", label, len(files), np)
		}
		sort.Strings(files)
		b, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files[0], mutate(b), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameKeys(t, label, snapshotKeys(out.Corrected()), want)
		misses := int64(0)
		saves := int64(0)
		for _, r := range out.Run.Ranks {
			misses += r.SnapshotMisses
			saves += r.SnapshotSaves
		}
		// One bad entry forces a run-wide rebuild: every rank misses (the
		// unanimity allreduce) and every rank re-publishes.
		if misses != np || saves != np {
			t.Fatalf("%s: %d misses, %d saves, want %d each", label, misses, saves, np)
		}
	}

	corrupt("flipped byte", func(b []byte) []byte {
		b[len(b)/2] ^= 0x01
		return b
	})
	corrupt("stale version", func(b []byte) []byte {
		b[4], b[5] = 0xFF, 0xFF
		return b
	})
	corrupt("truncated file", func(b []byte) []byte {
		return b[:len(b)*2/3]
	})

	// The healed cache serves hits again.
	warm, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm.Run.Ranks {
		if r.SnapshotHits != 1 {
			t.Fatalf("healed cache: rank %d hits=%d", r.Rank, r.SnapshotHits)
		}
	}
}

// TestSnapshotExplicitPathMode covers the -snapshot/-save prefix form: the
// first run publishes `<prefix>.r<rank>.rsnap`, the second adopts them, and
// a parameter change (different k) makes the stored header mismatch — a
// miss that rebuilds and overwrites, never an error.
func TestSnapshotExplicitPathMode(t *testing.T) {
	ds, opts := testDataset(t, 600, 9500)
	const np = 2
	prefix := filepath.Join(t.TempDir(), "ecoli")
	opts.Snapshot = &SnapshotOptions{Path: prefix}

	cold, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotKeys(cold.Corrected())
	for r := 0; r < np; r++ {
		if _, err := os.Stat(snapshot.RankFile(prefix, r)); err != nil {
			t.Fatal(err)
		}
	}

	warm, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "warm path mode", snapshotKeys(warm.Corrected()), want)
	for _, r := range warm.Run.Ranks {
		if r.SnapshotHits != 1 {
			t.Fatalf("rank %d hits=%d", r.Rank, r.SnapshotHits)
		}
	}

	// Same prefix, different k: the stored params no longer match, so the
	// run must rebuild rather than adopt a spectrum built for another k.
	changed := opts
	changed.Config.Spec.K = 12
	out, err := Run(&MemorySource{Reads: ds.Reads}, np, changed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Run.Ranks {
		if r.SnapshotMisses != 1 || r.SnapshotSaves != 1 {
			t.Fatalf("k change: rank %d misses=%d saves=%d", r.Rank, r.SnapshotMisses, r.SnapshotSaves)
		}
	}
}

// TestSnapshotStreamingWarmRun shares one cache between engines: a batch
// cold run publishes, a streaming warm run adopts (skipping its whole first
// source traversal) and corrects the same reads.
func TestSnapshotStreamingWarmRun(t *testing.T) {
	ds, opts := testDataset(t, 600, 9600)
	const np = 2
	dir := t.TempDir()
	opts.Config.ChunkReads = 100
	opts.Snapshot = &SnapshotOptions{Dir: dir, InputDigest: snapshot.DigestReads(ds.Reads)}

	cold, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotKeys(cold.Corrected())

	sinks, factory := collectSinks(np)
	sout, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sout.Run.Ranks {
		if r.SnapshotHits != 1 {
			t.Fatalf("streaming rank %d hits=%d", r.Rank, r.SnapshotHits)
		}
		if r.Wall[stats.PhaseSpectrum] <= 0 {
			t.Fatalf("streaming rank %d: spectrum phase not timed", r.Rank)
		}
	}
	var streamed []reads.Read
	for _, s := range sinks {
		streamed = append(streamed, s.Reads...)
	}
	sameKeys(t, "streaming warm vs batch cold", snapshotKeys(streamed), want)
}

// TestSnapshotOptionValidation pins the option-set gate.
func TestSnapshotOptionValidation(t *testing.T) {
	_, opts := testDataset(t, 10, 9700)
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"neither dir nor path", func(o *Options) { o.Snapshot = &SnapshotOptions{} }},
		{"both dir and path", func(o *Options) { o.Snapshot = &SnapshotOptions{Dir: "d", Path: "p"} }},
		{"auto thresholds", func(o *Options) {
			o.Snapshot = &SnapshotOptions{Path: "p"}
			o.AutoThresholds = true
		}},
		{"retained reads tables", func(o *Options) {
			o.Snapshot = &SnapshotOptions{Path: "p"}
			o.Heuristics.RetainReadKmers = true
		}},
	}
	for _, tc := range cases {
		o := opts
		tc.mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Dir mode without a digest passes Validate (the digest needs I/O the
	// validator must not do) but fails the run with a clear error.
	o := opts
	o.Snapshot = &SnapshotOptions{Dir: t.TempDir()}
	ds, _ := testDataset(t, 50, 9800)
	if _, err := Run(&MemorySource{Reads: ds.Reads}, 2, o); err == nil {
		t.Error("cache mode without an input digest ran")
	}
}
