module reptile

go 1.22
