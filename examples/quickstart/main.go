// Quickstart: simulate a small dataset, correct it with 8 distributed
// ranks, and score the result against ground truth.
package main

import (
	"fmt"
	"log"

	"reptile"
)

func main() {
	// A 3%-scale E.Coli-like dataset: ~5600 reads of length 102 at 96X.
	ds := reptile.EColiSim.Scaled(0.03).Build()
	fmt.Printf("dataset: %d reads, %.0fX coverage, %d injected errors\n",
		ds.NumReads(), ds.Coverage(), ds.TotalErrors())

	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())

	out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrected: %d bases across %d reads\n",
		out.Result.BasesCorrected, out.Result.ReadsChanged)

	acc, err := ds.Evaluate(out.Corrected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy:  %v\n", acc)
	fmt.Printf("gain %.3f means %.0f%% of sequencing errors were removed without collateral damage\n",
		acc.Gain(), acc.Gain()*100)
}
