package lint

import "testing"

const defuseSrc = `package a

func fail() error { return nil }

func twoVals() (int, error) { return 0, nil }

func target(a int, b error) (n int, err error) {
	x := 1
	y := x + a
	_ = y
	werr := fail()
	if werr != nil {
		n = 2
	}
	z := 3
	z = 4
	unused := fail()
	v, verr := twoVals()
	use(v)
	captured := 0
	go func() { captured++ }()
	for i := 0; i < a; i++ {
		n += i
	}
	return n, err
}

func use(int) {}
`

func TestDefUses(t *testing.T) {
	pkg := parseTestPkg(t, "example.com/m/a", map[string]string{"a.go": defuseSrc})
	m := NewModule([]*Package{pkg})
	fi := m.funcs[funcKey{"example.com/m/a", "", "target"}]
	if fi == nil {
		t.Fatal("target not indexed")
	}
	env := m.envOf(fi)
	uses := m.defUses(pkg, fi.File, fi.Decl, env)

	byName := map[string]*varUse{}
	for _, u := range uses {
		byName[u.name] = u
	}

	tests := []struct {
		name      string
		param     bool
		writes    int
		reads     int
		errValued bool
	}{
		{"x", false, 1, 1, false},
		{"y", false, 1, 1, false},
		{"werr", false, 1, 1, true},
		{"z", false, 2, 0, false},
		{"unused", false, 1, 0, true},
		{"v", false, 1, 1, false},
		{"verr", false, 1, 0, true},
		{"captured", false, 1, 1, false},
		{"i", false, 1, 3, false},
		{"a", true, 0, 2, false},
		{"n", true, 2, 1, false},
		{"err", true, 0, 1, false},
	}
	for _, tc := range tests {
		u := byName[tc.name]
		if u == nil {
			t.Errorf("%s: no use record", tc.name)
			continue
		}
		if u.param != tc.param || u.writes != tc.writes || u.reads != tc.reads || u.errValued != tc.errValued {
			t.Errorf("%s: got (param=%v writes=%d reads=%d err=%v), want (param=%v writes=%d reads=%d err=%v)",
				tc.name, u.param, u.writes, u.reads, u.errValued,
				tc.param, tc.writes, tc.reads, tc.errValued)
		}
	}
	if u := byName["b"]; u != nil {
		t.Errorf("b is never mentioned in the body; unexpected record %+v", u)
	}
}
