package msgplane

import "fmt"

// Violation classifies a protocol breach.
type Violation int

// Protocol violations.
const (
	// ViolationUnknownTag is a frame whose tag is not in the registry.
	ViolationUnknownTag Violation = iota
	// ViolationUnhandledTag is a registered tag no handler claims on the
	// receiving rank.
	ViolationUnhandledTag
	// ViolationBadFrame is a payload outside the tag's registered size
	// bounds (a short or oversized frame).
	ViolationBadFrame
	// ViolationStraySender is a frame from a rank the protocol does not
	// allow — a response from a rank the request was not addressed to, or
	// a done message at a non-coordinator rank.
	ViolationStraySender
	// ViolationUnknownRequest is a response carrying a request id this
	// rank never issued.
	ViolationUnknownRequest
	// ViolationMisroutedEntry is a spectrum-exchange entry delivered to a
	// rank that does not own it.
	ViolationMisroutedEntry
	// ViolationDuplicateFrame is a second frame where the protocol allows
	// exactly one (a collective round hearing a rank twice).
	ViolationDuplicateFrame
)

// String returns the violation name.
func (v Violation) String() string {
	switch v {
	case ViolationUnknownTag:
		return "unknown-tag"
	case ViolationUnhandledTag:
		return "unhandled-tag"
	case ViolationBadFrame:
		return "bad-frame"
	case ViolationStraySender:
		return "stray-sender"
	case ViolationUnknownRequest:
		return "unknown-request"
	case ViolationMisroutedEntry:
		return "misrouted-entry"
	case ViolationDuplicateFrame:
		return "duplicate-frame"
	}
	return fmt.Sprintf("violation(%d)", int(v))
}

// ProtocolError reports one wire-protocol violation. It is the single
// typed error every demux path returns — router, caller, legacy direct
// receive, and the collective exchange checks — so a chaos failure or an
// abort broadcast always names the offending tag and ranks the same way.
type ProtocolError struct {
	Tag  Tag       // tag of the offending frame
	Kind Violation // what rule the frame broke
	From int       // rank the frame arrived from; -1 when not applicable
	Want int       // rank the protocol expected instead; -1 when not applicable
	// ReqID is the request id on the offending frame, for violations of
	// the request/response matching scheme (ids start at 1; 0 means the
	// violation carried no id).
	ReqID uint32
	// Size is the offending payload size, for ViolationBadFrame.
	Size int
}

func (p *ProtocolError) Error() string {
	switch p.Kind {
	case ViolationUnknownTag:
		return fmt.Sprintf("msgplane: protocol violation: %v frame from rank %d is not in the tag registry", p.Tag, p.From)
	case ViolationUnhandledTag:
		return fmt.Sprintf("msgplane: protocol violation: no handler for %v frame from rank %d", p.Tag, p.From)
	case ViolationBadFrame:
		return fmt.Sprintf("msgplane: protocol violation: %v frame from rank %d carries %d bytes, outside its registered bounds", p.Tag, p.From, p.Size)
	case ViolationStraySender:
		if p.ReqID != 0 {
			return fmt.Sprintf("msgplane: protocol violation: %v response for request %d from rank %d, expected rank %d", p.Tag, p.ReqID, p.From, p.Want)
		}
		return fmt.Sprintf("msgplane: protocol violation: %v frame from rank %d, expected rank %d", p.Tag, p.From, p.Want)
	case ViolationUnknownRequest:
		return fmt.Sprintf("msgplane: protocol violation: rank %d answered %v request id %d this rank never issued", p.From, p.Tag, p.ReqID)
	case ViolationMisroutedEntry:
		return fmt.Sprintf("msgplane: protocol violation: exchange entry from rank %d belongs to rank %d, not this rank", p.From, p.Want)
	case ViolationDuplicateFrame:
		return fmt.Sprintf("msgplane: protocol violation: duplicate %v frame from rank %d", p.Tag, p.From)
	}
	return fmt.Sprintf("msgplane: protocol violation: %v frame from rank %d (%v)", p.Tag, p.From, p.Kind)
}
