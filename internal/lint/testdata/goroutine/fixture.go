// Package fixture exercises the goroutine-hygiene analyzer: flagged
// detached launches, and the accepted WaitGroup / done-channel / result
// channel / context lifecycles.
package fixture

import "sync"

// leaky launches a named function whose lifecycle is invisible here.
func leaky() {
	go work() // want "named function work"
}

func work() {}

// bare runs forever with nothing joining it.
func bare(ch chan int) {
	go func() { // want "no lifecycle discipline"
		for v := range ch {
			_ = v
		}
	}()
}

// joined is the canonical WaitGroup launch: clean.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// doneChan signals completion by closing a channel: clean.
func doneChan() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// resultChan hands its result to the owner over a channel: clean.
func resultChan() chan error {
	errs := make(chan error, 1)
	go func() {
		errs <- nil
	}()
	return errs
}

// ctxBound loops until the context is cancelled: clean.
func ctxBound(ctx interface{ Done() <-chan struct{} }) {
	go func() {
		<-ctx.Done()
	}()
}

// allowedDetached is deliberately fire-and-forget, with the reason on
// record.
func allowedDetached() {
	go work() // reptile-lint:allow goroutine-hygiene fire-and-forget fixture
}
