package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/spectrum"
)

// randomStore builds a PackedStore over a random entry set: clustered and
// scattered ids, the out-of-band zero id, and counts spanning the uint32
// range.
func randomStore(rng *rand.Rand, n int) *spectrum.PackedStore {
	entries := make([]spectrum.Entry, 0, n)
	for i := 0; i < n; i++ {
		var id kmer.ID
		switch rng.Intn(8) {
		case 0:
			id = 0
		case 1:
			id = kmer.ID(rng.Intn(64)) // force collisions
		default:
			id = kmer.ID(rng.Uint64())
		}
		entries = append(entries, spectrum.Entry{ID: id, Count: uint32(1 + rng.Intn(1<<20))})
	}
	return spectrum.NewPacked(entries)
}

// checkStoresEqual asserts the loaded store answers every probe exactly as
// the original — the "byte-identical probe behavior" bar.
func checkStoresEqual(t *testing.T, want, got *spectrum.PackedStore) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("Len: got %d want %d", got.Len(), want.Len())
	}
	if want.MemBytes() != got.MemBytes() {
		t.Fatalf("MemBytes: got %d want %d", got.MemBytes(), want.MemBytes())
	}
	rng := rand.New(rand.NewSource(7))
	want.Each(func(e spectrum.Entry) bool {
		c, ok := got.Count(e.ID)
		if !ok || c != e.Count {
			t.Fatalf("Count(%d): got (%d,%v) want (%d,true)", e.ID, c, ok, e.Count)
		}
		return true
	})
	for i := 0; i < 200; i++ {
		id := kmer.ID(rng.Uint64())
		wc, wok := want.Count(id)
		gc, gok := got.Count(id)
		if wc != gc || wok != gok {
			t.Fatalf("probe %d: got (%d,%v) want (%d,%v)", id, gc, gok, wc, wok)
		}
	}
	// The slab images themselves must match byte for byte.
	if !bytes.Equal(want.ExportSlabs(nil), got.ExportSlabs(nil)) {
		t.Fatal("re-exported slab images differ")
	}
}

func testParams() Params {
	return Params{K: 13, Overlap: 4, KmerThreshold: 3, TileThreshold: 2, NP: 8, Rank: 5}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	for trial, n := range []int{0, 1, 7, 100, 5000} {
		kmers, tiles := randomStore(rng, n), randomStore(rng, n/2+1)
		p := testParams()
		p.Rank = trial
		path := filepath.Join(dir, RankFile("trial", trial))
		wrote, err := Write(path, p, kmers, tiles)
		if err != nil {
			t.Fatal(err)
		}
		gotP, gotK, gotT, size, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		if gotP != p {
			t.Fatalf("params: got %+v want %+v", gotP, p)
		}
		if size != wrote {
			t.Fatalf("size: read %d, wrote %d", size, wrote)
		}
		checkStoresEqual(t, kmers, gotK)
		checkStoresEqual(t, tiles, gotT)
		if hp, err := ReadParams(path); err != nil || hp != p {
			t.Fatalf("ReadParams: %+v, %v", hp, err)
		}
	}
}

// TestSnapshotEveryByteFlipRejected pins the checksum coverage: flipping
// any single byte of a snapshot image must fail the decode — via the magic,
// the version, one of the CRCs, or a structural length check — and must
// never panic or decode to different data.
func TestSnapshotEveryByteFlipRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := Encode(nil, testParams(), randomStore(rng, 60), randomStore(rng, 30))
	for off := range img {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x40
		if _, _, _, err := Decode(bad); err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
	}
}

func TestSnapshotTruncationRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := Encode(nil, testParams(), randomStore(rng, 40), randomStore(rng, 20))
	for cut := 0; cut < len(img); cut++ {
		_, _, _, err := Decode(img[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(img))
		}
	}
	// A clean prefix cut reports the typed truncation error specifically.
	if _, _, _, err := Decode(img[:len(img)-3]); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("tail cut: got %v", err)
	}
	if _, _, _, err := Decode(img[:hdrBytes+4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("section cut: got %v, want ErrTruncated", err)
	}
	if _, _, _, err := Decode(img[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header cut: got %v, want ErrTruncated", err)
	}
}

func TestSnapshotStaleVersionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := Encode(nil, testParams(), randomStore(rng, 10), randomStore(rng, 10))
	binary.LittleEndian.PutUint16(img[4:6], Version+1)
	if _, _, _, err := Decode(img); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	copy(img[0:4], "NOPE")
	if _, _, _, err := Decode(img); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

// TestSnapshotHostileSectionLength pins the no-giant-allocation guarantee:
// a section header claiming an enormous payload fails the length check
// before anything is allocated or sliced.
func TestSnapshotHostileSectionLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	img := Encode(nil, testParams(), randomStore(rng, 5), randomStore(rng, 5))
	for _, huge := range []uint64{1 << 40, 1 << 62, ^uint64(0)} {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint64(bad[hdrBytes:], huge)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrTruncated) {
			t.Fatalf("length %d: got %v, want ErrTruncated", huge, err)
		}
	}
}

func TestSnapshotWriteAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.r0.rsnap")
	kmers, tiles := randomStore(rng, 100), randomStore(rng, 50)
	if _, err := Write(path, testParams(), kmers, tiles); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing snapshot (two runs racing on one cache
	// entry) succeeds and leaves a complete file.
	if _, err := Write(path, testParams(), kmers, tiles); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d files in cache dir, want 1", len(entries))
	}
	if _, _, _, _, err := Read(path); err != nil {
		t.Fatal(err)
	}
}

func TestCacheKeyCoversEveryParameter(t *testing.T) {
	base := testParams()
	key := CacheKey("digest-a", base)
	if k2 := CacheKey("digest-a", base); k2 != key {
		t.Fatal("key not deterministic")
	}
	// Rank is a file-name concern, not a key concern.
	other := base
	other.Rank = 0
	if CacheKey("digest-a", other) != key {
		t.Fatal("key depends on rank")
	}
	variants := []Params{base, base, base, base, base}
	variants[0].K = 14
	variants[1].Overlap = 5
	variants[2].KmerThreshold = 4
	variants[3].TileThreshold = 9
	variants[4].NP = 16
	seen := map[string]bool{key: true, CacheKey("digest-b", base): false}
	if len(seen) != 2 {
		t.Fatal("input digest not folded into the key")
	}
	for i, v := range variants {
		k := CacheKey("digest-a", v)
		if seen[k] || k == key {
			t.Fatalf("variant %d did not change the key", i)
		}
		seen[k] = true
	}
}

func TestDigests(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "in.fa")
	qual := filepath.Join(dir, "in.qual")
	os.WriteFile(fa, []byte(">r1\nACGT\n"), 0o644)
	os.WriteFile(qual, []byte(">r1\n40 40 40 40\n"), 0o644)
	d1, err := DigestFiles(fa, qual)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(fa, []byte(">r1\nACGA\n"), 0o644)
	d2, err := DigestFiles(fa, qual)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("content change did not change the file digest")
	}
	if _, err := DigestFiles(filepath.Join(dir, "missing.fa")); err == nil {
		t.Fatal("missing file digested")
	}

	rs := []reads.Read{{Seq: 1, Base: []dna.Base{0, 1, 2, 3}, Qual: []byte{40, 40, 40, 40}}}
	r1 := DigestReads(rs)
	rs[0].Qual[3] = 39
	if DigestReads(rs) == r1 {
		t.Fatal("quality change did not change the reads digest")
	}
	rs[0].Qual[3] = 40
	rs[0].Base[0] = 3
	if DigestReads(rs) == r1 {
		t.Fatal("base change did not change the reads digest")
	}
}

// FuzzSnapshotDecode drives the header + section decoder over arbitrary
// bytes: it must never panic, never allocate per a hostile header, and any
// image it accepts must re-encode to the identical bytes.
func FuzzSnapshotDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	valid := Encode(nil, testParams(), randomStore(rng, 30), randomStore(rng, 15))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:hdrBytes])
	f.Add([]byte{})
	f.Add([]byte("RSNP"))
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[hdrBytes:], ^uint64(0))
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, b []byte) {
		p, kmers, tiles, err := Decode(b)
		if err != nil {
			return
		}
		re := Encode(nil, p, kmers, tiles)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted image does not re-encode identically (%d vs %d bytes)", len(re), len(b))
		}
	})
}
