package reptile_test

import (
	"fmt"

	"reptile"
)

// The basic flow: simulate a dataset with ground truth, correct it with
// distributed goroutine ranks, and score the result.
func ExampleRun() {
	ds := reptile.EColiSim.Scaled(0.02).Build()

	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())

	out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		panic(err)
	}
	acc, err := ds.Evaluate(out.Corrected())
	if err != nil {
		panic(err)
	}
	fmt.Println("all reads returned:", len(out.Corrected()) == ds.NumReads())
	fmt.Println("errors corrected:", acc.TP > 0)
	fmt.Println("no damage:", acc.FP == 0)
	// Output:
	// all reads returned: true
	// errors corrected: true
	// no damage: true
}

// Sequential correction without any transport, for single-machine use.
func ExampleCorrect() {
	ds := reptile.EColiSim.Scaled(0.02).Build()
	corrected, res, err := reptile.Correct(ds.Reads, reptile.ConfigForCoverage(ds.Coverage()))
	if err != nil {
		panic(err)
	}
	fmt.Println("reads:", len(corrected) == ds.NumReads())
	fmt.Println("corrected some bases:", res.BasesCorrected > 0)
	// Output:
	// reads: true
	// corrected some bases: true
}

// Streaming mode never holds the read set whole: each corrected chunk goes
// to a sink and is dropped, the shape the paper uses to stay under 512 MB
// per rank on billion-read datasets.
func ExampleRunStreaming() {
	ds := reptile.EColiSim.Scaled(0.02).Build()
	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())
	opts.Config.ChunkReads = 512

	sinks := make([]*reptile.CollectSink, 4)
	factory := func(rank int) (reptile.Sink, error) {
		sinks[rank] = &reptile.CollectSink{}
		return sinks[rank], nil
	}
	out, err := reptile.RunStreaming(&reptile.MemorySource{Reads: ds.Reads}, 4, opts, factory)
	if err != nil {
		panic(err)
	}
	total := 0
	for _, s := range sinks {
		total += len(s.Reads)
	}
	fmt.Println("all reads streamed:", total == ds.NumReads())
	fmt.Println("corrected some bases:", out.Result.BasesCorrected > 0)
	// Output:
	// all reads streamed: true
	// corrected some bases: true
}

// Heuristics trade memory for communication; full replication eliminates
// request traffic entirely (paper Fig 5).
func ExampleHeuristics() {
	ds := reptile.EColiSim.Scaled(0.02).Build()
	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())
	opts.Heuristics = reptile.Heuristics{ReplicateKmers: true, ReplicateTiles: true}

	out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		panic(err)
	}
	remote := out.Run.Sum(func(r *reptile.RankStats) int64 { return r.TotalRemoteLookups() })
	fmt.Println("remote lookups with full replication:", remote)
	// Output:
	// remote lookups with full replication: 0
}
