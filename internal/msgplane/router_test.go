package msgplane

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reptile/internal/transport"
)

// Test-local tags, far from the engine's range so the process-wide
// registry never conflicts when packages are linked together.
const (
	testTagReq   Tag = 0x701 // fixed 5-byte request
	testTagResp  Tag = 0x702 // direct response: received by the worker, not the router
	testTagSpare Tag = 0x703 // registered but never handled
)

func init() {
	Register(
		Spec{Tag: testTagReq, Name: "testReq", Dir: DirRequest, MinSize: 5, MaxSize: 5},
		Spec{Tag: testTagResp, Name: "testResp", Dir: DirResponse, MinSize: 0, MaxSize: Unbounded, Direct: true},
		Spec{Tag: testTagSpare, Name: "testSpare", Dir: DirRequest, MinSize: 0, MaxSize: Unbounded},
	)
}

func procGroup(t *testing.T, np int) []*transport.Endpoint {
	t.Helper()
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { transport.CloseGroup(eps) })
	return eps
}

// TestRouterShutdownOrdering drives the full done/stop protocol: every
// rank serves echo requests while its worker issues one request per peer,
// and announces done only after collecting every response. All routers
// must shut down cleanly, and — because stop is broadcast only after the
// last done, and done follows the announcer's last response — every
// request must have been served before any router stopped.
func TestRouterShutdownOrdering(t *testing.T) {
	const np = 3
	eps := procGroup(t, np)
	served := make([]atomic.Int64, np)
	runErrs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := eps[r]
			rt := NewRouter(e)
			rt.Handle(testTagReq, func(m transport.Message) error {
				served[r].Add(1)
				return Send(e, m.From, testTagResp, m.Data)
			})
			routerDone := make(chan error, 1)
			go func() { routerDone <- rt.Run() }()

			payload := []byte{byte(r), 1, 2, 3, 4}
			for peer := 0; peer < np; peer++ {
				if peer == r {
					continue
				}
				if err := Send(e, peer, testTagReq, payload); err != nil {
					runErrs[r] = err
					return
				}
			}
			for i := 0; i < np-1; i++ {
				m, err := Recv(e, testTagResp)
				if err != nil {
					runErrs[r] = err
					return
				}
				if !bytes.Equal(m.Data, payload) {
					t.Errorf("rank %d: echo payload %v, want %v", r, m.Data, payload)
				}
			}
			if err := rt.AnnounceDone(); err != nil {
				runErrs[r] = err
				return
			}
			runErrs[r] = <-routerDone
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < np; r++ {
		if got := served[r].Load(); got != np-1 {
			t.Errorf("rank %d served %d requests before stop, want %d", r, got, np-1)
		}
	}
}

// routerErr runs a router on eps[rank] after running stimulus and returns
// Run's error.
func routerErr(t *testing.T, eps []*transport.Endpoint, rank int, setup func(rt *Router), stimulus func()) error {
	t.Helper()
	rt := NewRouter(eps[rank])
	if setup != nil {
		setup(rt)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Run() }()
	stimulus()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("router did not observe the stimulus")
		return nil
	}
}

func TestRouterStraySenderDone(t *testing.T) {
	eps := procGroup(t, 2)
	err := routerErr(t, eps, 1, nil, func() {
		// A done frame addressed to a non-coordinator rank.
		if err := Send(eps[0], 1, TagDone, nil); err != nil {
			t.Fatal(err)
		}
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("router returned %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationStraySender || pe.From != 0 || pe.Want != 0 || pe.Tag != TagDone {
		t.Fatalf("unexpected violation: %+v", pe)
	}
	if !strings.Contains(err.Error(), "done") {
		t.Fatalf("violation does not name the tag: %v", err)
	}
}

func TestRouterUnknownTag(t *testing.T) {
	eps := procGroup(t, 2)
	err := routerErr(t, eps, 1, nil, func() {
		if err := eps[0].Send(1, 0x7ff, []byte{1}); err != nil {
			t.Fatal(err)
		}
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("router returned %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationUnknownTag || pe.From != 0 || pe.Tag != Tag(0x7ff) {
		t.Fatalf("unexpected violation: %+v", pe)
	}
	if !strings.Contains(err.Error(), "tag(2047)") {
		t.Fatalf("violation does not name the unregistered tag: %v", err)
	}
}

func TestRouterShortFrame(t *testing.T) {
	eps := procGroup(t, 2)
	handled := false
	err := routerErr(t, eps, 1,
		func(rt *Router) {
			rt.Handle(testTagReq, func(transport.Message) error { handled = true; return nil })
		},
		func() {
			if err := Send(eps[0], 1, testTagReq, []byte{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("router returned %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationBadFrame || pe.Size != 3 || pe.Tag != testTagReq {
		t.Fatalf("unexpected violation: %+v", pe)
	}
	if handled {
		t.Fatal("short frame reached the handler")
	}
	if !strings.Contains(err.Error(), "testReq") {
		t.Fatalf("violation does not name the tag: %v", err)
	}
}

func TestRouterUnhandledTag(t *testing.T) {
	eps := procGroup(t, 2)
	err := routerErr(t, eps, 1, nil, func() {
		if err := Send(eps[0], 1, testTagSpare, nil); err != nil {
			t.Fatal(err)
		}
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("router returned %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationUnhandledTag || pe.Tag != testTagSpare {
		t.Fatalf("unexpected violation: %+v", pe)
	}
}

func TestRouterHandlerPanicContained(t *testing.T) {
	eps := procGroup(t, 2)
	err := routerErr(t, eps, 1,
		func(rt *Router) {
			rt.Handle(testTagReq, func(transport.Message) error { panic("handler bug") })
		},
		func() {
			if err := Send(eps[0], 1, testTagReq, []byte{1, 2, 3, 4, 5}); err != nil {
				t.Fatal(err)
			}
		})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "handler bug") {
		t.Fatalf("panic not contained as an error: %v", err)
	}
}

// TestRouterLeavesDirectTags checks the router never claims a Direct tag
// it has no handler for: the worker's blocking Recv must win even with
// the router loop live on the same endpoint.
func TestRouterLeavesDirectTags(t *testing.T) {
	eps := procGroup(t, 2)
	rt := NewRouter(eps[1])
	routerDone := make(chan error, 1)
	go func() { routerDone <- rt.Run() }()

	if err := Send(eps[0], 1, testTagResp, []byte{42}); err != nil {
		t.Fatal(err)
	}
	m, err := Recv(eps[1], testTagResp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != 1 || m.Data[0] != 42 {
		t.Fatalf("direct frame payload %v", m.Data)
	}

	// Shut the router down through the control plane.
	if err := Send(eps[0], 1, TagStop, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-routerDone; err != nil {
		t.Fatalf("router: %v", err)
	}
}

func TestRouterHandleMisuse(t *testing.T) {
	eps := procGroup(t, 1)
	rt := NewRouter(eps[0])
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	wantPanic("nil handler", func() { rt.Handle(testTagReq, nil) })
	wantPanic("unregistered", func() { rt.Handle(Tag(0x7fe), func(transport.Message) error { return nil }) })
	wantPanic("control tag", func() { rt.Handle(TagStop, func(transport.Message) error { return nil }) })
	rt.Handle(testTagReq, func(transport.Message) error { return nil })
	wantPanic("duplicate", func() { rt.Handle(testTagReq, func(transport.Message) error { return nil }) })
}
