# Local developer entry points, kept in lockstep with .github/workflows/ci.yml
# so `make ci` reproduces exactly what the gate runs.

GO ?= go

.PHONY: build test race lint vet chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

## race: the -race gate CI runs; -short skips the heavyweight end-to-end
## core tests (guarded with testing.Short) to keep it fast.
race:
	$(GO) test -race -short -count=1 ./...

## lint: the project-specific static analyzers (see internal/lint and the
## "Concurrency invariants" section of DESIGN.md).
lint:
	$(GO) run ./cmd/reptile-lint ./...

vet:
	$(GO) vet ./...

## chaos: the fault-injection gate — the transport/core chaos suite under
## the race detector, repeated across a small seed matrix (each extra seed
## extends the benign-invariance sweep via REPTILE_CHAOS_SEED).
CHAOS_SEEDS ?= 11 12
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "chaos seed $$seed"; \
		REPTILE_CHAOS_SEED=$$seed $(GO) test -race -short -count=1 \
			-run 'Chaos|Abort|Peer|Corrupt|Heartbeat|Failure' \
			./internal/transport/ ./internal/core/ || exit 1; \
	done

ci: build vet lint test race chaos
