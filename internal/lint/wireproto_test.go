package lint

import "testing"

func TestWireProtoGolden(t *testing.T) {
	runGolden(t, NewWireProto(), "wireproto", "reptile/internal/lint/testdata/wireproto")
}

// TestWireProtoRegistryGolden exercises registry mode: Spec-literal and
// Register*-call evidence, Handle as a receive path, and the unregistered-
// tag diagnostic.
func TestWireProtoRegistryGolden(t *testing.T) {
	runGolden(t, NewWireProto(), "wireproto_registry", "reptile/internal/lint/testdata/wireproto_registry")
}

// TestWireProtoSkipsTaglessPackages pins the no-op path: a package with no
// tag/kind constants (this one) produces no diagnostics.
func TestWireProtoSkipsTaglessPackages(t *testing.T) {
	pkg, err := LoadDir(".", "reptile/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewWireProto()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

// TestWireProtoCleanOnCore pins the registry contract on the real wire
// protocol: internal/core must stay drift-free.
func TestWireProtoCleanOnCore(t *testing.T) {
	pkg, err := LoadDir("../core", "reptile/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewWireProto()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

// TestWireProtoCleanOnMsgplane pins the message plane itself: its control
// tags must stay registered, produced, and consumed.
func TestWireProtoCleanOnMsgplane(t *testing.T) {
	pkg, err := LoadDir("../msgplane", "reptile/internal/msgplane")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewWireProto()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
