package lint

import "testing"

func TestWireProtoGolden(t *testing.T) {
	runGolden(t, NewWireProto(), "wireproto", "reptile/internal/lint/testdata/wireproto")
}

// TestWireProtoSkipsTaglessPackages pins the no-op path: a package with no
// tag/kind constants (this one) produces no diagnostics.
func TestWireProtoSkipsTaglessPackages(t *testing.T) {
	pkg, err := LoadDir(".", "reptile/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewWireProto()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

// TestWireProtoCleanOnCore pins the registry contract on the real wire
// protocol: internal/core must stay drift-free.
func TestWireProtoCleanOnCore(t *testing.T) {
	pkg, err := LoadDir("../core", "reptile/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewWireProto()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
