// Chaos is the fault-injection layer: a wrapper implementing the full Conn
// surface over a concrete Endpoint, driving a deterministic, seeded fault
// schedule through it. Benign faults (latency, jitter, a throttled rank)
// only stretch time — delays run in the sending goroutine before the real
// send, so per-(sender,tag) FIFO order and therefore the corrected output
// are unchanged. Fatal faults (crash, frame corruption, link drop) are
// positional — they fire on the Nth send of the afflicted rank — so a
// scenario is reproducible from its Plan alone.
package transport

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is one deterministic fault schedule. The zero value of each field
// disables that fault; rank fields use -1 as "no rank" (NewPlan and
// normalize take care of the distinction, since rank 0 is a valid target).
type Plan struct {
	// Seed drives the jitter stream. Each rank derives its own generator
	// from Seed and its rank, so a multi-rank scenario replays identically.
	Seed int64

	// Delay is a fixed latency added to every send.
	Delay time.Duration
	// Jitter adds a uniform random latency in [0, Jitter) per send.
	Jitter time.Duration
	// SlowRank's sends are throttled by SlowFactor× the delay+jitter.
	SlowRank   int
	SlowFactor int

	// CrashRank stops dead at its CrashAfter-th send (1-based): the
	// endpoint closes as if the process were killed, and the send returns
	// an ErrInjected-wrapped error. The rank does not get to say goodbye —
	// peers must detect the loss themselves.
	CrashRank  int
	CrashAfter int64
	// CrashPhase, when non-empty, scopes the crash trigger to a pipeline
	// phase: the send counter restarts at every EnterPhase call and the
	// crash fires at the CrashAfter-th send *inside* the named phase. This
	// is how recovery tests kill a rank deterministically mid-correction
	// instead of guessing a positional send ordinal that drifts with every
	// protocol change. Valid names are the pipeline's phase strings (read,
	// balance, spectrum, exchange, correct).
	CrashPhase string

	// CorruptRank's CorruptAfter-th send (1-based) has one frame byte
	// flipped after its CRC is computed, so the receiver sees a checksum
	// mismatch (ErrCorruptFrame), never a silently wrong decode.
	CorruptRank  int
	CorruptAfter int64

	// DropRank severs its link to DropPeer at its DropAfter-th send
	// (1-based), as if the cable were pulled mid-run.
	DropRank  int
	DropPeer  int
	DropAfter int64
}

// NewPlan returns an empty (fault-free) plan with the given seed.
func NewPlan(seed int64) Plan {
	return Plan{Seed: seed, SlowRank: -1, CrashRank: -1, CorruptRank: -1, DropRank: -1, DropPeer: -1}
}

// normalize maps zero values onto their documented defaults so a Plan
// built by struct literal behaves like one built by NewPlan/ParsePlan.
func (p *Plan) normalize() {
	if p.SlowFactor <= 0 {
		p.SlowFactor = 4
	}
	if p.CrashRank >= 0 && p.CrashAfter <= 0 {
		p.CrashAfter = 1
	}
	if p.CorruptRank >= 0 && p.CorruptAfter <= 0 {
		p.CorruptAfter = 1
	}
	if p.DropRank >= 0 && p.DropAfter <= 0 {
		p.DropAfter = 1
	}
}

// Benign reports whether the plan contains only timing faults, under which
// a run must produce byte-identical output to a fault-free run.
func (p Plan) Benign() bool {
	return p.CrashRank < 0 && p.CorruptRank < 0 && p.DropRank < 0
}

// Validate checks the plan against a group size.
func (p Plan) Validate(np int) error {
	check := func(name string, r int) error {
		if r >= np {
			return fmt.Errorf("chaos: %s rank %d out of range [0,%d)", name, r, np)
		}
		return nil
	}
	if err := check("slow", p.SlowRank); err != nil {
		return err
	}
	if err := check("crash", p.CrashRank); err != nil {
		return err
	}
	if p.CrashPhase != "" {
		if p.CrashRank < 0 {
			return fmt.Errorf("chaos: crash phase %q without a crash rank", p.CrashPhase)
		}
		switch p.CrashPhase {
		case "read", "balance", "spectrum", "exchange", "correct":
		default:
			return fmt.Errorf("chaos: unknown crash phase %q", p.CrashPhase)
		}
	}
	if err := check("corrupt", p.CorruptRank); err != nil {
		return err
	}
	if err := check("drop", p.DropRank); err != nil {
		return err
	}
	if p.DropRank >= 0 {
		if err := check("drop peer", p.DropPeer); err != nil {
			return err
		}
		if p.DropPeer < 0 {
			return fmt.Errorf("chaos: drop rank %d has no peer", p.DropRank)
		}
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return fmt.Errorf("chaos: negative delay or jitter")
	}
	return nil
}

// ParsePlan parses the CLI fault-schedule syntax: comma-separated clauses
//
//	delay=2ms          fixed per-send latency
//	jitter=1ms         uniform random extra latency in [0, 1ms)
//	slow=1 | slow=1x8  throttle rank 1 (optionally by factor 8, default 4)
//	crash=2@100        rank 2 crashes at its 100th send
//	crash=2@correct    rank 2 crashes at its 1st send of the correct phase
//	crash=2@correct:5  ... at its 5th send of the correct phase
//	corrupt=1@50       rank 1's 50th frame is corrupted on the wire
//	drop=0-1@30        rank 0 severs its link to rank 1 at its 30th send
//
// An empty spec yields the fault-free plan.
func ParsePlan(spec string, seed int64) (Plan, error) {
	p := NewPlan(seed)
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return p, fmt.Errorf("chaos: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "delay":
			p.Delay, err = time.ParseDuration(val)
		case "jitter":
			p.Jitter, err = time.ParseDuration(val)
		case "slow":
			rank, factor, hasFactor := strings.Cut(val, "x")
			p.SlowRank, err = strconv.Atoi(rank)
			if err == nil && hasFactor {
				p.SlowFactor, err = strconv.Atoi(factor)
			}
		case "crash":
			p.CrashRank, p.CrashAfter, p.CrashPhase, err = parseCrash(val)
		case "corrupt":
			p.CorruptRank, p.CorruptAfter, err = parseRankAt(val)
		case "drop":
			link, at, hasAt := strings.Cut(val, "@")
			if !hasAt {
				return p, fmt.Errorf("chaos: drop clause %q needs @N", val)
			}
			from, to, hasTo := strings.Cut(link, "-")
			if !hasTo {
				return p, fmt.Errorf("chaos: drop clause %q needs rank-peer", val)
			}
			p.DropRank, err = strconv.Atoi(from)
			if err == nil {
				p.DropPeer, err = strconv.Atoi(to)
			}
			if err == nil {
				p.DropAfter, err = strconv.ParseInt(at, 10, 64)
			}
		default:
			return p, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("chaos: clause %q: %v", clause, err)
		}
	}
	p.normalize()
	return p, nil
}

func parseRankAt(val string) (rank int, at int64, err error) {
	r, n, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, fmt.Errorf("%q needs rank@N", val)
	}
	rank, err = strconv.Atoi(r)
	if err != nil {
		return 0, 0, err
	}
	at, err = strconv.ParseInt(n, 10, 64)
	return rank, at, err
}

// parseCrash parses a crash trigger: rank@N (positional, the original
// syntax) or rank@phase[:N] (the N-th send inside a named phase, default
// the first). Phase names are validated by Plan.Validate, not here, so an
// out-of-range rank and an unknown phase report through the same path.
func parseCrash(val string) (rank int, at int64, phase string, err error) {
	r, trigger, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, "", fmt.Errorf("%q needs rank@N or rank@phase[:N]", val)
	}
	rank, err = strconv.Atoi(r)
	if err != nil {
		return 0, 0, "", err
	}
	if at, err = strconv.ParseInt(trigger, 10, 64); err == nil {
		return rank, at, "", nil
	}
	phase, nth, hasNth := strings.Cut(trigger, ":")
	at = 1
	err = nil
	if hasNth {
		at, err = strconv.ParseInt(nth, 10, 64)
	}
	return rank, at, phase, err
}

// Chaos wraps an Endpoint, executing a Plan against its traffic. It is safe
// for the same concurrent use as the Endpoint itself.
type Chaos struct {
	inner *Endpoint
	plan  Plan

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	sends   atomic.Int64
	faults  atomic.Int64
	crashed atomic.Bool

	// Phase-scoped crash trigger state: the engine announces pipeline
	// phases through EnterPhase, which swaps the current name and resets
	// the per-phase send counter.
	phase      atomic.Pointer[string]
	phaseSends atomic.Int64
}

// NewChaos wraps e with the plan's fault schedule. The jitter stream is
// derived from the plan seed and the endpoint's rank, so a group of
// wrappers sharing one Plan replays identically run to run.
func NewChaos(e *Endpoint, p Plan) *Chaos {
	p.normalize()
	return &Chaos{
		inner: e,
		plan:  p,
		rng:   rand.New(rand.NewSource(p.Seed ^ (int64(e.Rank())+1)*0x9e3779b97f4a7c1)),
	}
}

// Rank implements Conn.
func (c *Chaos) Rank() int { return c.inner.Rank() }

// Size implements Conn.
func (c *Chaos) Size() int { return c.inner.Size() }

// Counters implements Conn.
func (c *Chaos) Counters() *Counters { return c.inner.Counters() }

// MaxQueueDepth implements Conn.
func (c *Chaos) MaxQueueDepth() int { return c.inner.MaxQueueDepth() }

// Close implements Conn.
func (c *Chaos) Close() error { return c.inner.Close() }

// SetPeerDownHandler implements Conn, delegating to the wrapped endpoint:
// recovery hooks must see organic and injected peer losses identically.
func (c *Chaos) SetPeerDownHandler(h func(rank int, cause error) bool) {
	c.inner.SetPeerDownHandler(h)
}

// EnterPhase announces a pipeline phase transition for the plan's
// phase-scoped crash trigger: the per-phase send counter restarts so
// CrashAfter counts sends inside the named phase only. The engine calls it
// at every phase boundary; transports without a chaos wrapper never see it.
func (c *Chaos) EnterPhase(name string) {
	c.phase.Store(&name)
	c.phaseSends.Store(0)
}

// crashDue reports whether this send ordinal trips the plan's crash
// trigger — positional against the run-wide counter, or scoped to the
// named phase's own counter.
func (c *Chaos) crashDue(me int, n int64) bool {
	if c.plan.CrashRank != me {
		return false
	}
	if c.plan.CrashPhase == "" {
		return n >= c.plan.CrashAfter
	}
	p := c.phase.Load()
	if p == nil || *p != c.plan.CrashPhase {
		return false
	}
	return c.phaseSends.Add(1) >= c.plan.CrashAfter
}

// Recv implements Conn.
func (c *Chaos) Recv(tag int) (Message, error) { return c.inner.Recv(tag) }

// RecvMatch implements Conn.
func (c *Chaos) RecvMatch(match func(tag int) bool) (Message, error) {
	return c.inner.RecvMatch(match)
}

// TryRecvMatch implements Conn.
func (c *Chaos) TryRecvMatch(match func(tag int) bool) (Message, bool, error) {
	return c.inner.TryRecvMatch(match)
}

// SendAbort implements Conn. A crashed rank cannot say goodbye: its
// endpoint is already closed, so the abort fails with ErrClosed and peers
// are left to detect the loss, exactly like a killed process.
func (c *Chaos) SendAbort(to int, payload []byte) error {
	return c.inner.SendAbort(to, payload)
}

// FaultsInjected returns how many scheduled faults have fired; the engine
// surfaces it in per-rank stats.
func (c *Chaos) FaultsInjected() int64 { return c.faults.Load() }

// Send implements Conn, applying the fault schedule: delay/throttle first
// (latency precedes delivery), then any positional fatal fault due at this
// send ordinal.
func (c *Chaos) Send(to, tag int, data []byte) error {
	me := c.inner.Rank()
	if c.crashed.Load() {
		return fmt.Errorf("chaos: rank %d crashed: %w", me, ErrInjected)
	}
	n := c.sends.Add(1)
	c.injectDelay(me)
	if c.crashDue(me, n) {
		c.crashed.Store(true)
		c.faults.Add(1)
		c.inner.Close()
		return fmt.Errorf("chaos: rank %d crashed at send %d: %w", me, n, ErrInjected)
	}
	if c.plan.CorruptRank == me && n == c.plan.CorruptAfter {
		c.faults.Add(1)
		if c.inner.corruptFn != nil {
			c.inner.corruptFn(to)
		}
	}
	if c.plan.DropRank == me && n == c.plan.DropAfter {
		c.faults.Add(1)
		if c.inner.dropFn != nil {
			c.inner.dropFn(c.plan.DropPeer)
		}
	}
	return c.inner.Send(to, tag, data)
}

// injectDelay sleeps out this send's share of the schedule's latency. The
// sleep runs in the sending goroutine before the real send, so message
// order — and therefore output — is untouched.
func (c *Chaos) injectDelay(me int) {
	d := c.plan.Delay
	if c.plan.Jitter > 0 {
		c.mu.Lock()
		d += time.Duration(c.rng.Int63n(int64(c.plan.Jitter)))
		c.mu.Unlock()
	}
	if me == c.plan.SlowRank {
		d *= time.Duration(c.plan.SlowFactor)
	}
	if d <= 0 {
		return
	}
	// The OS sleep granularity is on the order of a millisecond, which would
	// inflate a microsecond-scale schedule a thousandfold; short delays
	// busy-wait instead, so injected latency stays proportional to the plan.
	if d >= time.Millisecond {
		time.Sleep(d) // reptile-lint:allow nosleepsync injected link latency, not synchronization
		return
	}
	for start := time.Now(); time.Since(start) < d; {
		runtime.Gosched()
	}
}
