// TCP cluster: run the engine with ranks connected over real TCP sockets
// on loopback — the deployment shape for one process per rank across
// machines. Here the four ranks live in one process for a self-contained
// example, but each talks to the others exclusively through its TCP
// endpoint; point -addrs style configuration at real hosts and the same
// code runs distributed (see cmd/reptile-correct -transport tcp).
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"reptile"
	"reptile/internal/core"
	"reptile/internal/transport"
)

func main() {
	ds := reptile.EColiSim.Scaled(0.03).Build()
	fmt.Printf("dataset: %d reads, %d errors\n", ds.NumReads(), ds.TotalErrors())

	const np = 4
	addrs := reservePorts(np)
	fmt.Printf("ranks: %v\n", addrs)

	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())
	src := &core.MemorySource{Reads: ds.Reads}

	outs := make([]*reptile.RankOutput, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// PeerTimeout arms the failure detector: a dead or silent peer
			// surfaces as ErrPeerDown within this window (heartbeats keep
			// healthy idle links alive) instead of hanging the cluster.
			e, err := transport.NewTCP(transport.TCPConfig{
				Rank: r, Addrs: addrs,
				DialTimeout: 10 * time.Second,
				PeerTimeout: 10 * time.Second,
			})
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			defer e.Close()
			out, err := core.RunRank(e, src, opts)
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			outs[r] = out
		}(r)
	}
	wg.Wait()

	var corrected []reptile.Read
	var total int64
	for r, o := range outs {
		fmt.Printf("rank %d: %5d reads, %4d bases corrected, %6d remote lookups, %s sent\n",
			r, o.Stats.ReadsAssigned, o.Result.BasesCorrected,
			o.Stats.TotalRemoteLookups(), byteCount(o.Stats.BytesSent))
		corrected = append(corrected, o.Corrected...)
		total += o.Result.BasesCorrected
	}
	acc, err := ds.Evaluate(corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster total: %d bases corrected | accuracy %v\n", total, acc)
}

// reservePorts grabs np free loopback ports.
func reservePorts(np int) []string {
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func byteCount(b int64) string {
	switch {
	case b > 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b > 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
