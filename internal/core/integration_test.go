package core

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"reptile/internal/dna"
	"reptile/internal/fastaio"
	"reptile/internal/msgplane"
	"reptile/internal/spectrum"
	"reptile/internal/transport"
)

func TestFileSourceEndToEnd(t *testing.T) {
	ds, opts := testDataset(t, 2000, 2000)
	fa, qual, err := fastaio.WriteDataset(t.TempDir(), ds.Name, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	fileOut, err := Run(&FileSource{FastaPath: fa, QualPath: qual}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	memOut, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	fc, mc := fileOut.Corrected(), memOut.Corrected()
	if len(fc) != len(mc) {
		t.Fatalf("file source: %d reads, memory source: %d", len(fc), len(mc))
	}
	for i := range fc {
		if fc[i].Seq != mc[i].Seq || dna.DecodeString(fc[i].Base) != dna.DecodeString(mc[i].Base) {
			t.Fatalf("read %d differs between file and memory sources", fc[i].Seq)
		}
	}
	acc, err := ds.Evaluate(fc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.TP == 0 {
		t.Error("file-source run corrected nothing")
	}
}

// TestTCPTransportEndToEnd runs the full engine over real TCP connections
// on loopback: the same RunRank call a one-process-per-rank deployment
// makes, exercising frame encoding, reader goroutines, and collectives over
// the network path.
func TestTCPTransportEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	ds, opts := testDataset(t, 1200, 3000)
	const np = 4
	// Reserve ports.
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	src := &MemorySource{Reads: ds.Reads}
	outs := make([]*RankOutput, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := transport.NewTCP(transport.TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			outs[r], errs[r] = RunRank(e, src, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	memOut, err := Run(src, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	var tcpCorrected int64
	for _, o := range outs {
		tcpCorrected += o.Result.BasesCorrected
	}
	if tcpCorrected != memOut.Result.BasesCorrected {
		t.Errorf("tcp run corrected %d bases, proc run %d", tcpCorrected, memOut.Result.BasesCorrected)
	}
	total := 0
	for _, o := range outs {
		total += len(o.Corrected)
	}
	if total != len(ds.Reads) {
		t.Errorf("tcp run returned %d reads, want %d", total, len(ds.Reads))
	}
}

func TestUniversalModeUsesUniversalTag(t *testing.T) {
	ds, opts := testDataset(t, 1000, 4000)
	opts.Heuristics.Universal = true
	out, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Remote lookups must have happened and been served.
	remote := out.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	served := out.Run.Sum(func(r *statsRank) int64 { return r.RequestsServed })
	if remote == 0 || served != remote {
		t.Errorf("universal mode: remote=%d served=%d", remote, served)
	}
}

func TestProjectOptsFor(t *testing.T) {
	u, req, resp := ProjectOptsFor(Heuristics{Universal: true})
	if !u || req != ReqBytesUniversal || resp != RespBytes {
		t.Errorf("universal opts: %v %d %d", u, req, resp)
	}
	u, req, _ = ProjectOptsFor(Heuristics{})
	if u || req != ReqBytesTagged {
		t.Errorf("tagged opts: %v %d", u, req)
	}
}

// TestResponderRejectsMalformedRequests: a garbage request must surface as
// an error (failed rank), not a hang or a silent wrong answer.
func TestResponderRejectsMalformedRequests(t *testing.T) {
	eps, err := transport.NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	_, opts := testDataset(t, 10, 8000)
	ctx := &rankCtx{
		e:       eps[0],
		opts:    opts,
		rank:    0,
		np:      2,
		ownKmer: spectrum.Freeze(),
		ownTile: spectrum.Freeze(),
	}
	done := make(chan error, 1)
	go func() { done <- ctx.newResponder(nil).Run() }()
	// A tagged k-mer request must be exactly 8 bytes.
	if err := eps[1].Send(0, int(tagKmerReq), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("responder accepted a malformed request")
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) || pe.Kind != msgplane.ViolationBadFrame {
			t.Errorf("malformed request surfaced as %v, want bad-frame ProtocolError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("responder hung on malformed request")
	}
}

func TestWireRoundTrips(t *testing.T) {
	for _, universal := range []bool{false, true} {
		for _, kind := range []byte{kindKmer, kindTile} {
			tag, payload := encodeReq(universal, kind, 0xDEADBEEF)
			k, id, err := decodeReq(tag, payload)
			if err != nil || k != kind || id != 0xDEADBEEF {
				t.Errorf("universal=%v kind=%d: %v %v %v", universal, kind, k, id, err)
			}
		}
	}
	cnt, ok, err := decodeResp(encodeResp(42, true))
	if err != nil || !ok || cnt != 42 {
		t.Errorf("resp round trip: %d %v %v", cnt, ok, err)
	}
	_, ok, err = decodeResp(encodeResp(0, false))
	if err != nil || ok {
		t.Errorf("absent resp: %v %v", ok, err)
	}
	if _, _, err := decodeReq(tagUniReq, []byte{1}); err == nil {
		t.Error("short universal request accepted")
	}
	if _, _, err := decodeReq(99, make([]byte, 8)); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, _, err := decodeResp([]byte{1}); err == nil {
		t.Error("short response accepted")
	}
}
