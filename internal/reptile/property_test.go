package reptile

import (
	"math/rand"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/kmer"
	"reptile/internal/reads"
)

// Post-condition properties of the corrector.

// TestCorrectorNeverTouchesSolidReads: a read whose every walk tile is
// solid must come back bit-identical.
func TestCorrectorNeverTouchesSolidReads(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(4000, 60)
	batch := perfectReads(g, 70, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	for i := 0; i < len(batch); i += 7 {
		r := batch[i].Clone()
		before := dna.DecodeString(r.Base)
		c.CorrectRead(&r)
		if dna.DecodeString(r.Base) != before {
			t.Fatalf("solid read %d was modified", i)
		}
	}
}

// TestCorrectorRepairedTilesAreSolid: after a repair, the rewritten window
// must be in the tile spectrum (that is what "repair" means).
func TestCorrectorRepairedTilesAreSolid(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(4000, 61)
	batch := perfectReads(g, 70, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
	c, _ := NewCorrector(cfg, oracle)
	rng := rand.New(rand.NewSource(62))
	tl := cfg.Spec.TileLen()
	for trial := 0; trial < 100; trial++ {
		r := batch[rng.Intn(len(batch))].Clone()
		pos := rng.Intn(len(r.Base))
		r.Base[pos] = (r.Base[pos] + dna.Base(rng.Intn(3)) + 1) % 4
		r.Qual[pos] = 5
		res := c.CorrectRead(&r)
		if res.TilesRepaired == 0 {
			continue
		}
		// Every walk tile of the corrected read that covers pos must now be
		// solid or given up; check solidity of the whole corrected read's
		// tiles that the walk visits.
		for p := 0; p+tl <= len(r.Base); p += cfg.Spec.Step() {
			id := kmer.Encode(r.Base[p : p+tl])
			if cnt, ok := tiles.Count(id); ok && cnt >= cfg.TileThreshold {
				continue
			}
			// A still-weak tile is allowed only if the corrector gave up on
			// it; but a repaired tile being weak is a bug. We can't map
			// tiles to repairs directly, so assert the specific repaired
			// position's covering tile when the read is fully corrected.
			if res.TilesGivenUp == 0 {
				t.Fatalf("trial %d: corrected read still has weak tile at %d", trial, p)
			}
		}
	}
}

// TestCorrectorLengthAndQualityInvariant: correction never changes read
// length, sequence number, or quality scores.
func TestCorrectorLengthAndQualityInvariant(t *testing.T) {
	g := genome.NewGenome(20000, 63)
	ds := genome.Simulate("prop", g, 2000, genome.DefaultProfile(90), 64)
	cfg := ForCoverage(ds.Coverage())
	out, _, err := CorrectDataset(ds.Reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Seq != ds.Reads[i].Seq {
			t.Fatalf("read %d sequence number changed", i)
		}
		if len(out[i].Base) != len(ds.Reads[i].Base) {
			t.Fatalf("read %d length changed", i)
		}
		for j := range out[i].Qual {
			if out[i].Qual[j] != ds.Reads[i].Qual[j] {
				t.Fatalf("read %d quality changed at %d", i, j)
			}
		}
	}
}

// TestCorrectorInputUntouched: CorrectDataset must not mutate its input.
func TestCorrectorInputUntouched(t *testing.T) {
	g := genome.NewGenome(10000, 65)
	ds := genome.Simulate("prop", g, 1000, genome.DefaultProfile(80), 66)
	snapshot := make([]string, len(ds.Reads))
	for i := range ds.Reads {
		snapshot[i] = dna.DecodeString(ds.Reads[i].Base)
	}
	if _, _, err := CorrectDataset(ds.Reads, ForCoverage(ds.Coverage())); err != nil {
		t.Fatal(err)
	}
	for i := range ds.Reads {
		if dna.DecodeString(ds.Reads[i].Base) != snapshot[i] {
			t.Fatalf("input read %d mutated", i)
		}
	}
}

// TestHigherErrorRateMoreWork: more injected errors mean more repairs and
// more candidate traffic, never less (monotonicity of the workload model
// that drives the load-imbalance experiments).
func TestHigherErrorRateMoreWork(t *testing.T) {
	g := genome.NewGenome(20000, 67)
	mkDS := func(boost float64) *genome.Dataset {
		p := genome.DefaultProfile(80)
		p.ErrorBoost = boost
		return genome.Simulate("prop", g, 4000, p, 68)
	}
	low, high := mkDS(0.5), mkDS(4)
	if high.TotalErrors() <= low.TotalErrors() {
		t.Fatalf("error injection not monotone: %d vs %d", high.TotalErrors(), low.TotalErrors())
	}
	cfg := ForCoverage(low.Coverage())
	run := func(ds *genome.Dataset) (Result, int64) {
		kmers, tiles := BuildSpectra(ds.Reads, cfg)
		oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
		c, _ := NewCorrector(cfg, oracle)
		cp := make([]reads.Read, len(ds.Reads))
		for i := range ds.Reads {
			cp[i] = ds.Reads[i].Clone()
		}
		res := c.CorrectBatch(cp)
		return res, oracle.TileLookups
	}
	lowRes, lowLookups := run(low)
	highRes, highLookups := run(high)
	if highRes.TilesRepaired+highRes.TilesGivenUp <= lowRes.TilesRepaired+lowRes.TilesGivenUp {
		t.Errorf("weak-tile work not monotone in error rate")
	}
	if highLookups <= lowLookups {
		t.Errorf("tile lookups not monotone in error rate: %d vs %d", highLookups, lowLookups)
	}
}
