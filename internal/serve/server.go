package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"reptile/internal/core"
	"reptile/internal/reads"
)

// Server is the front door: it accepts client connections on a TCP
// listener and bridges each one onto a correction session of the resident
// SpectrumService, spreading concurrent clients across the rank group via
// the service's round-robin Open. One connection drives at most one
// session at a time; a connection that dies mid-session has its session
// closed for it, so a vanished client can never pin an admission slot or
// window capacity.
type Server struct {
	svc *core.SpectrumService
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
}

// Listen starts a front door for svc on addr (host:port; port 0 picks a
// free one — see Addr). The accept loop runs until Shutdown or Close.
func Listen(addr string, svc *core.SpectrumService) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Shutdown or Close
		}
		if !s.track(c) {
			c.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// track registers a live connection; false means the server is closing.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs one client connection: strictly alternating request and
// response frames. A read error (the client disconnected or sent garbage)
// ends the connection; the deferred close then retires any session still
// open, freeing its admission slot at the executor.
func (s *Server) serveConn(c net.Conn) {
	defer s.untrack(c)
	defer c.Close()
	var sess *core.Session
	defer func() {
		if sess != nil {
			// reptile-lint:allow errorflow the client is gone; this close exists only to free the admission slot
			_ = sess.Close()
		}
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		op, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch op {
		case opOpen:
			err = s.handleOpen(bw, &sess, string(payload))
		case opChunk:
			err = s.handleChunk(bw, sess, payload)
		case opClose:
			err = s.handleClose(bw, &sess)
		default:
			return // protocol violation: drop the connection
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleOpen admits one session for the connection. A rejection (capacity,
// draining) answers opErr but keeps the connection: the client may retry
// or leave.
func (s *Server) handleOpen(bw *bufio.Writer, sess **core.Session, tenant string) error {
	if *sess != nil {
		return writeFrame(bw, opErr, encodeErr(fmt.Errorf("connection already has an open session")))
	}
	ns, err := s.svc.Open(tenant)
	if err != nil {
		return writeFrame(bw, opErr, encodeErr(err))
	}
	*sess = ns
	return writeFrame(bw, opOpenOK, nil)
}

// handleChunk corrects one batch of reads through the connection's session.
func (s *Server) handleChunk(bw *bufio.Writer, sess *core.Session, payload []byte) error {
	if sess == nil {
		return writeFrame(bw, opErr, encodeErr(fmt.Errorf("chunk before open")))
	}
	rs, err := reads.DecodeBatch(payload)
	if err != nil {
		return err // torn batch: drop the connection
	}
	out, res, err := sess.Correct(rs)
	if err != nil {
		return writeFrame(bw, opErr, encodeErr(err))
	}
	return writeFrame(bw, opChunkOK, append(encodeResult(res), reads.EncodeBatch(out)...))
}

// handleClose retires the connection's session. The opCloseOK answer is the
// client's acknowledgment that every corrected chunk it read back is final:
// it leaves the server only after the session is fully retired, so output
// the client holds survives anything that happens to the group afterwards.
func (s *Server) handleClose(bw *bufio.Writer, sess **core.Session) error {
	if *sess == nil {
		return writeFrame(bw, opErr, encodeErr(fmt.Errorf("close before open")))
	}
	err := (*sess).Close()
	*sess = nil
	if err != nil {
		return writeFrame(bw, opErr, encodeErr(err))
	}
	return writeFrame(bw, opCloseOK, nil)
}

// Shutdown is the graceful half of drain: stop accepting new connections,
// then wait for every connected client to finish its session and hang up.
// Pair it with SpectrumService.Drain, which rejects any late opens with
// the typed draining error and waits for in-flight sessions to complete.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// Close tears the front door down without waiting for clients: the
// listener and every live connection are closed (which retires their
// sessions), then the handlers are joined.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
