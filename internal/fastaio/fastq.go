package fastaio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// ConvertFastq converts a FASTQ stream into the fasta + quality pair Reptile
// consumes, renumbering records with ascending sequence numbers starting at
// 1 (the preprocessing the paper applies to the downloaded datasets, since
// "Reptile is not capable of reading the fastq format"). qualOffset is the
// FASTQ quality ASCII offset, 33 for modern Illumina. It returns the number
// of records converted.
func ConvertFastq(fq io.Reader, fastaW, qualW io.Writer, qualOffset byte) (int, error) {
	br := bufio.NewReaderSize(fq, 64<<10)
	fw := bufio.NewWriter(fastaW)
	qw := bufio.NewWriter(qualW)
	n := 0
	for {
		header, err := readFastqLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if len(header) == 0 {
			continue
		}
		if header[0] != '@' {
			return n, fmt.Errorf("fastaio: fastq record %d: header %q does not start with '@'", n+1, header)
		}
		seqLine, err := readFastqLine(br)
		if err != nil {
			return n, fmt.Errorf("fastaio: fastq record %d: truncated sequence: %w", n+1, err)
		}
		plus, err := readFastqLine(br)
		if err != nil || len(plus) == 0 || plus[0] != '+' {
			return n, fmt.Errorf("fastaio: fastq record %d: malformed separator line", n+1)
		}
		qualLine, err := readFastqLine(br)
		if err != nil {
			return n, fmt.Errorf("fastaio: fastq record %d: truncated quality: %w", n+1, err)
		}
		if len(qualLine) != len(seqLine) {
			return n, fmt.Errorf("fastaio: fastq record %d: %d bases vs %d quality chars", n+1, len(seqLine), len(qualLine))
		}
		n++
		if _, err := fmt.Fprintf(fw, ">%d\n%s\n", n, seqLine); err != nil {
			return n, err
		}
		if _, err := fmt.Fprintf(qw, ">%d\n", n); err != nil {
			return n, err
		}
		for i, q := range qualLine {
			if q < qualOffset {
				return n, fmt.Errorf("fastaio: fastq record %d: quality char %q below offset %d", n, q, qualOffset)
			}
			if i > 0 {
				if err := qw.WriteByte(' '); err != nil {
					return n, err
				}
			}
			if _, err := fmt.Fprintf(qw, "%d", q-qualOffset); err != nil {
				return n, err
			}
		}
		if err := qw.WriteByte('\n'); err != nil {
			return n, err
		}
	}
	if err := fw.Flush(); err != nil {
		return n, err
	}
	return n, qw.Flush()
}

func readFastqLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	line = bytes.TrimRight(line, "\r\n")
	if len(line) == 0 && err != nil {
		return nil, err
	}
	return line, nil
}
