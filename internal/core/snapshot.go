package core

import (
	"fmt"

	"reptile/internal/snapshot"
	"reptile/internal/spectrum"
)

// This file wires the frozen-spectrum snapshot cache (internal/snapshot,
// DESIGN.md §16) into the rank pipeline. The probe is a dedicated phase
// ahead of the spectrum build: every rank tries to load its own snapshot,
// the ranks agree on the outcome with one allreduce, and on a unanimous hit
// the build phase becomes a no-op — the adopted stores are byte-identical
// to what the build would have frozen. On any miss every rank builds
// normally (the build's collectives need all ranks, so a partial hit cannot
// be used) and publishes its snapshot atomically at the freeze point.

// snapshotParams derives the on-disk parameter header from the run options.
// Everything the frozen slabs depend on is here; AutoThresholds is rejected
// at Validate, so the Config thresholds are the effective thresholds.
func (ctx *rankCtx) snapshotParams() snapshot.Params {
	cfg := ctx.opts.Config
	return snapshot.Params{
		K:             cfg.Spec.K,
		Overlap:       cfg.Spec.Overlap,
		KmerThreshold: cfg.KmerThreshold,
		TileThreshold: cfg.TileThreshold,
		NP:            ctx.np,
		Rank:          ctx.rank,
	}
}

// snapshotFile resolves this rank's snapshot path: the explicit per-rank
// prefix, or a content-hash cache entry keyed on the input digest and every
// header parameter.
func (ctx *rankCtx) snapshotFile() (string, error) {
	so := ctx.opts.Snapshot
	if so.Path != "" {
		return snapshot.RankFile(so.Path, ctx.rank), nil
	}
	if so.InputDigest == "" {
		return "", fmt.Errorf("core: snapshot cache mode needs SnapshotOptions.InputDigest (hash the input with snapshot.DigestFiles or DigestReads)")
	}
	key := snapshot.CacheKey(so.InputDigest, ctx.snapshotParams())
	return snapshot.CachePath(so.Dir, key, ctx.rank), nil
}

// tryLoadSnapshot attempts a full load — header validation, checksums, slab
// adoption, parameter equality. Every failure mode (absent file, torn or
// corrupt image, stale format version, parameter drift) is the same
// outcome: a miss, reported as (nil, nil, 0). The build then runs and
// overwrites the bad entry, so corruption heals instead of crashing.
func (ctx *rankCtx) tryLoadSnapshot(path string) (*spectrum.PackedStore, *spectrum.PackedStore, int64) {
	p, kmers, tiles, n, err := snapshot.Read(path)
	if err != nil || p != ctx.snapshotParams() {
		return nil, nil, 0
	}
	return kmers, tiles, n
}

// snapshotPhase is the cache probe. The hit/miss verdict must be run-wide:
// the spectrum build is a schedule of collectives every rank joins, so one
// rank skipping it while another builds would deadlock the group. One
// allreduce (max of per-rank miss flags) makes the verdict unanimous — all
// ranks adopt, or all ranks build.
//
// reptile-lint:build
func (ctx *rankCtx) snapshotPhase() error {
	path, err := ctx.snapshotFile()
	if err != nil {
		return err
	}
	ctx.snapPath = path
	kmers, tiles, bytes := ctx.tryLoadSnapshot(path)
	miss := int64(1)
	if kmers != nil {
		miss = 0
	}
	anyMiss, err := ctx.comm.AllreduceMaxInt64(miss)
	if err != nil {
		return err
	}
	if anyMiss > 0 {
		// Some rank (maybe this one) must build, so everyone builds; a
		// locally loaded copy is dropped. The build writes back on finish.
		ctx.st.SnapshotMisses++
		return nil
	}
	ctx.ownKmer, ctx.ownTile = kmers, tiles
	ctx.snapLoaded = true
	ctx.st.SnapshotHits++
	ctx.st.SnapshotBytesRead += bytes
	// The load is this run's freeze point: record the same observations
	// specBuilder.finish would have.
	ctx.st.OwnedKmers = int64(kmers.Len())
	ctx.st.OwnedTiles = int64(tiles.Len())
	ctx.st.OwnedMemBytes = kmers.MemBytes() + tiles.MemBytes()
	ctx.st.MemAtFreeze = ctx.currentMem()
	return nil
}

// saveSnapshot publishes this rank's freshly frozen spectra to the path the
// probe resolved. Called at the end of a cache-missed build; the write is
// atomic (same-directory temp + rename), so a concurrent run racing on the
// same entry cannot observe a torn file.
func (ctx *rankCtx) saveSnapshot() error {
	n, err := snapshot.Write(ctx.snapPath, ctx.snapshotParams(), ctx.ownKmer, ctx.ownTile)
	if err != nil {
		return fmt.Errorf("writing spectrum snapshot %s: %w", ctx.snapPath, err)
	}
	ctx.st.SnapshotSaves++
	ctx.st.SnapshotBytesWritten += n
	return nil
}
