// Package msgplane is the typed message plane beneath the correction
// engine: a central registry of wire tags with per-tag metadata, a
// per-rank router that demultiplexes inbound frames to registered
// handlers, and a caller that matches request/response pairs by id.
//
// The package exists so protocol knowledge lives in one place. A tag is
// not a bare int scattered across switch statements: it is registered once
// with its name, direction, and payload-size bounds, and every violation —
// an unregistered tag, a frame outside its size bounds, a response from
// the wrong rank, an answer to a request never issued — surfaces through
// one typed ProtocolError path with the tag's name in the message.
//
// Tag space is shared with the transport and the collectives: application
// tags are non-negative, collectives generate tags in the negative space,
// and the transport's own control tags (abort, heartbeat) sit at the
// bottom of the negative space and never reach a mailbox. The router
// therefore claims only non-negative tags.
package msgplane

import (
	"fmt"
	"sort"
	"sync"

	"reptile/internal/transport"
)

// Tag identifies one application message type on the wire. Non-negative;
// the negative space belongs to collectives and transport control frames.
type Tag int

// String returns the registered name of the tag, or "tag(n)" for a tag
// that was never registered — every ProtocolError and abort message goes
// through here, so chaos-test failures name frames instead of printing
// raw ints.
func (t Tag) String() string {
	if s, ok := LookupSpec(t); ok {
		return s.Name
	}
	return fmt.Sprintf("tag(%d)", int(t))
}

// Direction classifies how a tag flows, for documentation and tooling.
type Direction int

// Tag directions.
const (
	DirRequest  Direction = iota // carries work to a serving rank
	DirResponse                  // answers a request
	DirControl                   // run-lifecycle coordination
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case DirRequest:
		return "request"
	case DirResponse:
		return "response"
	case DirControl:
		return "control"
	}
	return fmt.Sprintf("direction(%d)", int(d))
}

// Unbounded marks a Spec with no upper payload-size limit.
const Unbounded = -1

// Spec is one registered tag's metadata. MinSize/MaxSize bound the payload
// in bytes (MaxSize may be Unbounded); the router rejects frames outside
// the bounds before any handler runs, so codecs never see a short frame.
type Spec struct {
	Tag  Tag
	Name string
	Dir  Direction
	// Payload size bounds in bytes, inclusive.
	MinSize int
	MaxSize int
	// Direct tags are received by a blocking Recv at the requester (the
	// legacy one-at-a-time lookup response) instead of the router; the
	// router leaves them in the mailbox unless a handler is registered.
	Direct bool
}

var (
	regMu    sync.RWMutex
	registry = map[Tag]Spec{} // guarded by regMu
)

// Register adds tag specs to the process-wide registry, panicking on an
// invalid or duplicate spec — registration happens from package init
// functions, where a conflict is a programming error, not a runtime
// condition.
func Register(specs ...Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range specs {
		switch {
		case s.Tag < 0:
			panic(fmt.Sprintf("msgplane: tag %d is negative (collective/control space)", int(s.Tag)))
		case s.Name == "":
			panic(fmt.Sprintf("msgplane: tag %d registered without a name", int(s.Tag)))
		case s.MinSize < 0 || (s.MaxSize != Unbounded && s.MaxSize < s.MinSize):
			panic(fmt.Sprintf("msgplane: tag %q has invalid size bounds [%d,%d]", s.Name, s.MinSize, s.MaxSize))
		}
		if prev, ok := registry[s.Tag]; ok {
			panic(fmt.Sprintf("msgplane: tag %d registered twice (%q and %q)", int(s.Tag), prev.Name, s.Name))
		}
		registry[s.Tag] = s
	}
}

// LookupSpec returns the spec registered for t.
func LookupSpec(t Tag) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[t]
	return s, ok
}

// Specs returns every registered spec in tag order — the registry table
// DESIGN.md documents, and what registry-driven tooling iterates.
func Specs() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Send transmits one typed frame. It is the message plane's only send
// path for application tags, which keeps every producer site visible to
// the wireproto analyzer.
func Send(e transport.Conn, to int, t Tag, payload []byte) error {
	return e.Send(to, int(t), payload)
}

// Recv blocks for one frame of the given tag — the receive path for
// Direct tags, which bypass the router by design.
func Recv(e transport.Conn, t Tag) (transport.Message, error) {
	return e.Recv(int(t))
}
