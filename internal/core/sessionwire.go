package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
)

// Correction-session frames (DESIGN.md §17). A session is one client job
// multiplexed onto a resident rank group: the opener rank asks an executor
// rank to admit a session, streams read chunks through it, and closes it.
// Every session request — open, chunk, close — is answered on the single
// response tag, matched by the opener's caller request id, so the three
// request shapes share one response path exactly like the lookup protocol's
// tagResp.
const (
	tagSessionOpen    msgplane.Tag = 14 // reqID u32 | tenant len u8 | tenant bytes
	tagReadChunk      msgplane.Tag = 15 // reqID u32 | session u32 | reads batch
	tagCorrectedChunk msgplane.Tag = 16 // reqID u32 | status u8 | body (see statuses)
	tagSessionClose   msgplane.Tag = 17 // reqID u32 | session u32
)

func init() {
	msgplane.Register(
		msgplane.Spec{Tag: tagSessionOpen, Name: "sessionOpen", Dir: msgplane.DirRequest,
			MinSize: sessOpenHdrBytes, MaxSize: sessOpenHdrBytes + maxTenantBytes},
		msgplane.Spec{Tag: tagReadChunk, Name: "readChunk", Dir: msgplane.DirRequest,
			MinSize: readChunkHdrBytes, MaxSize: msgplane.Unbounded},
		msgplane.Spec{Tag: tagCorrectedChunk, Name: "correctedChunk", Dir: msgplane.DirResponse,
			MinSize: sessRespHdrBytes, MaxSize: msgplane.Unbounded},
		msgplane.Spec{Tag: tagSessionClose, Name: "sessionClose", Dir: msgplane.DirRequest,
			MinSize: sessCloseBytes, MaxSize: sessCloseBytes},
	)
}

// Session frame geometry.
const (
	sessOpenHdrBytes  = 5 // reqID u32 + tenant len u8
	maxTenantBytes    = 255
	readChunkHdrBytes = 8  // reqID u32 + session u32
	sessRespHdrBytes  = 5  // reqID u32 + status u8
	sessCloseBytes    = 8  // reqID u32 + session u32
	sessResultBytes   = 48 // 6 × u64 reptile.Result counters
)

// Session response statuses: the byte after the request id in every
// tagCorrectedChunk frame. sessOK carries a status-specific body (the
// session id for an open, the result counters and corrected batch for a
// chunk, nothing for a close); every other status is a typed rejection or
// failure whose body is a human-readable cause.
const (
	sessOK             byte = 0
	sessRejectCapacity byte = 1 // the tenant's in-flight session cap is full
	sessRejectDraining byte = 2 // the executor is draining; no new sessions
	sessUnknownSession byte = 3 // chunk/close for a session id not admitted here
	sessFailed         byte = 4 // the executor failed correcting the chunk
)

// SessionRejectKind classifies a SessionError.
type SessionRejectKind int

// Session rejection/failure kinds, mirroring the wire statuses.
const (
	SessionRejectCapacity SessionRejectKind = iota + 1
	SessionRejectDraining
	SessionUnknown
	SessionFailed
)

// String names the kind.
func (k SessionRejectKind) String() string {
	switch k {
	case SessionRejectCapacity:
		return "capacity"
	case SessionRejectDraining:
		return "draining"
	case SessionUnknown:
		return "unknown-session"
	case SessionFailed:
		return "failed"
	}
	return "invalid"
}

// status maps the kind back to its wire status byte (the inverse of
// sessionErrorFrom), so a wire handler can answer with the same rejection
// the local fast path returns as a typed error.
func (k SessionRejectKind) status() byte {
	switch k {
	case SessionRejectCapacity:
		return sessRejectCapacity
	case SessionRejectDraining:
		return sessRejectDraining
	case SessionUnknown:
		return sessUnknownSession
	}
	return sessFailed
}

// ErrSessionRejected is the errors.Is sentinel every SessionError matches,
// so callers can test "was this a typed session rejection" without caring
// which kind.
var ErrSessionRejected = errors.New("core: session rejected")

// SessionError is the typed error the session layer returns when an
// executor refuses or fails a session request: admission over the
// per-tenant cap, an open during drain, a stray session id, or a chunk the
// executor could not correct.
type SessionError struct {
	Kind   SessionRejectKind
	Rank   int    // executor rank that answered
	Tenant string // tenant named in the open (empty for chunk/close errors)
	Msg    string // executor-supplied cause, when any
}

// Error formats the rejection.
func (e *SessionError) Error() string {
	s := fmt.Sprintf("core: session %s at rank %d", e.Kind, e.Rank)
	if e.Tenant != "" {
		s += fmt.Sprintf(" (tenant %q)", e.Tenant)
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	return s
}

// Is matches the ErrSessionRejected sentinel.
func (e *SessionError) Is(target error) bool { return target == ErrSessionRejected }

// sessionErrorFrom builds the typed error for a non-OK session response.
func sessionErrorFrom(status byte, body []byte, rank int, tenant string) error {
	kind := SessionFailed
	switch status {
	case sessRejectCapacity:
		kind = SessionRejectCapacity
	case sessRejectDraining:
		kind = SessionRejectDraining
	case sessUnknownSession:
		kind = SessionUnknown
	}
	return &SessionError{Kind: kind, Rank: rank, Tenant: tenant, Msg: string(body)}
}

// encodeSessionOpenFrame builds one session-open frame in the caller's
// encoder shape. The tenant length was validated by the opener.
func encodeSessionOpenFrame(reqID uint32, tenant string) (msgplane.Tag, []byte) {
	buf := make([]byte, sessOpenHdrBytes, sessOpenHdrBytes+len(tenant))
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	buf[4] = byte(len(tenant))
	return tagSessionOpen, append(buf, tenant...)
}

// decodeSessionOpen parses a tagSessionOpen payload.
func decodeSessionOpen(payload []byte) (reqID uint32, tenant string, err error) {
	if len(payload) < sessOpenHdrBytes {
		return 0, "", fmt.Errorf("core: session open of %d bytes", len(payload))
	}
	n := int(payload[4])
	if len(payload) != sessOpenHdrBytes+n {
		return 0, "", fmt.Errorf("core: session open tenant of %d bytes in a %d-byte frame", n, len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:4]), string(payload[sessOpenHdrBytes:]), nil
}

// encodeReadChunkFrame builds one read-chunk frame in the caller's encoder
// shape: the session id and the chunk's reads.
func encodeReadChunkFrame(reqID, session uint32, rs []reads.Read) (msgplane.Tag, []byte) {
	batch := reads.EncodeBatch(rs)
	buf := make([]byte, readChunkHdrBytes, readChunkHdrBytes+len(batch))
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	binary.LittleEndian.PutUint32(buf[4:8], session)
	return tagReadChunk, append(buf, batch...)
}

// decodeReadChunk parses a tagReadChunk payload.
func decodeReadChunk(payload []byte) (reqID, session uint32, rs []reads.Read, err error) {
	if len(payload) < readChunkHdrBytes {
		return 0, 0, nil, fmt.Errorf("core: read chunk of %d bytes", len(payload))
	}
	reqID = binary.LittleEndian.Uint32(payload[0:4])
	session = binary.LittleEndian.Uint32(payload[4:8])
	rs, err = reads.DecodeBatch(payload[readChunkHdrBytes:])
	if err != nil {
		return 0, 0, nil, err
	}
	return reqID, session, rs, nil
}

// encodeSessionCloseFrame builds one session-close frame in the caller's
// encoder shape.
func encodeSessionCloseFrame(reqID, session uint32) (msgplane.Tag, []byte) {
	buf := make([]byte, sessCloseBytes)
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	binary.LittleEndian.PutUint32(buf[4:8], session)
	return tagSessionClose, buf
}

// decodeSessionClose parses a tagSessionClose payload.
func decodeSessionClose(payload []byte) (reqID, session uint32, err error) {
	if len(payload) != sessCloseBytes {
		return 0, 0, fmt.Errorf("core: session close of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:4]), binary.LittleEndian.Uint32(payload[4:8]), nil
}

// encodeSessionResp builds a tagCorrectedChunk payload: the echoed request
// id, the status, and the status-specific body.
func encodeSessionResp(reqID uint32, status byte, body []byte) []byte {
	buf := make([]byte, sessRespHdrBytes, sessRespHdrBytes+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	buf[4] = status
	return append(buf, body...)
}

// decodeSessionResp parses a tagCorrectedChunk payload. The body aliases
// the payload.
func decodeSessionResp(payload []byte) (reqID uint32, status byte, body []byte, err error) {
	if len(payload) < sessRespHdrBytes {
		return 0, 0, nil, fmt.Errorf("core: session response of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:4]), payload[4], payload[sessRespHdrBytes:], nil
}

// encodeCorrectedBody builds the sessOK body of a chunk response: the
// chunk's result counters followed by the corrected reads.
func encodeCorrectedBody(res reptile.Result, rs []reads.Read) []byte {
	batch := reads.EncodeBatch(rs)
	buf := make([]byte, sessResultBytes, sessResultBytes+len(batch))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(res.ReadsProcessed))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(res.ReadsChanged))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(res.BasesCorrected))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(res.TilesSolid))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(res.TilesRepaired))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(res.TilesGivenUp))
	return append(buf, batch...)
}

// decodeCorrectedBody parses the sessOK body of a chunk response.
func decodeCorrectedBody(body []byte) (res reptile.Result, rs []reads.Read, err error) {
	if len(body) < sessResultBytes {
		return res, nil, fmt.Errorf("core: corrected chunk body of %d bytes", len(body))
	}
	res.ReadsProcessed = int64(binary.LittleEndian.Uint64(body[0:8]))
	res.ReadsChanged = int64(binary.LittleEndian.Uint64(body[8:16]))
	res.BasesCorrected = int64(binary.LittleEndian.Uint64(body[16:24]))
	res.TilesSolid = int64(binary.LittleEndian.Uint64(body[24:32]))
	res.TilesRepaired = int64(binary.LittleEndian.Uint64(body[32:40]))
	res.TilesGivenUp = int64(binary.LittleEndian.Uint64(body[40:48]))
	rs, err = reads.DecodeBatch(body[sessResultBytes:])
	if err != nil {
		return res, nil, err
	}
	return res, rs, nil
}

// encodeOpenOKBody builds the sessOK body of an open response.
func encodeOpenOKBody(session uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, session)
	return buf
}

// decodeOpenOKBody parses the sessOK body of an open response.
func decodeOpenOKBody(body []byte) (session uint32, err error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("core: session open answer of %d bytes", len(body))
	}
	return binary.LittleEndian.Uint32(body), nil
}
