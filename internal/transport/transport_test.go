package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func procPair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseGroup(eps) })
	return eps[0], eps[1]
}

func TestProcSendRecv(t *testing.T) {
	a, b := procPair(t)
	if err := a.Send(1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.Tag != 7 || string(m.Data) != "hello" {
		t.Errorf("got %+v", m)
	}
}

func TestSelfSend(t *testing.T) {
	a, _ := procPair(t)
	if err := a.Send(0, 3, []byte("me")); err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv(3)
	if err != nil || string(m.Data) != "me" || m.From != 0 {
		t.Errorf("self send: %+v %v", m, err)
	}
}

func TestSendOutOfRange(t *testing.T) {
	a, _ := procPair(t)
	if err := a.Send(5, 0, nil); err == nil {
		t.Error("accepted out-of-range destination")
	}
	if err := a.Send(-1, 0, nil); err == nil {
		t.Error("accepted negative destination")
	}
}

func TestTagSelectivity(t *testing.T) {
	a, b := procPair(t)
	a.Send(1, 1, []byte("one"))
	a.Send(1, 2, []byte("two"))
	// Receive tag 2 first even though tag 1 arrived first.
	m, err := b.Recv(2)
	if err != nil || string(m.Data) != "two" {
		t.Fatalf("Recv(2) = %+v, %v", m, err)
	}
	m, err = b.Recv(1)
	if err != nil || string(m.Data) != "one" {
		t.Fatalf("Recv(1) = %+v, %v", m, err)
	}
}

func TestPerTagFIFO(t *testing.T) {
	a, b := procPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		a.Send(1, 9, []byte(fmt.Sprint(i)))
	}
	for i := 0; i < n; i++ {
		m, err := b.Recv(9)
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != fmt.Sprint(i) {
			t.Fatalf("message %d out of order: %s", i, m.Data)
		}
	}
}

func TestRecvMatchMultipleTags(t *testing.T) {
	a, b := procPair(t)
	a.Send(1, 100, []byte("req"))
	m, err := b.RecvMatch(func(tag int) bool { return tag == 100 || tag == 101 })
	if err != nil || m.Tag != 100 {
		t.Fatalf("RecvMatch: %+v %v", m, err)
	}
}

func TestTryRecvMatch(t *testing.T) {
	a, b := procPair(t)
	if _, ok, err := b.TryRecvMatch(func(int) bool { return true }); ok || err != nil {
		t.Error("TryRecvMatch on empty mailbox returned a message")
	}
	a.Send(1, 4, []byte("x"))
	// Delivery is synchronous in the proc transport.
	m, ok, err := b.TryRecvMatch(func(tag int) bool { return tag == 4 })
	if !ok || err != nil || string(m.Data) != "x" {
		t.Errorf("TryRecvMatch = %+v %v %v", m, ok, err)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	a, b := procPair(t)
	done := make(chan Message, 1)
	go func() {
		m, _ := b.Recv(8)
		done <- m
	}()
	// Deterministic "the receiver is parked" wait: the mailbox reports
	// when a receiver blocks, so no sleep-and-hope.
	<-b.mbox.awaitWaiters(1)
	select {
	case <-done:
		t.Fatal("Recv returned before any send")
	default:
	}
	a.Send(1, 8, []byte("late"))
	select {
	case m := <-done:
		if string(m.Data) != "late" {
			t.Errorf("got %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv never woke up")
	}
}

func TestCloseWakesReceivers(t *testing.T) {
	_, b := procPair(t)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Recv(1)
			errs <- err
		}()
	}
	// Wait until both receivers are provably blocked before closing, so
	// the test always exercises the "Close wakes parked receivers" path.
	<-b.mbox.awaitWaiters(2)
	b.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Errorf("Recv after close = %v, want ErrClosed", err)
			}
		case <-time.After(time.Second):
			t.Fatal("receiver not woken by Close")
		}
	}
	if err := b.Send(0, 1, nil); err != ErrClosed {
		t.Errorf("Send after close = %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestCounters(t *testing.T) {
	a, b := procPair(t)
	a.Send(1, 1, make([]byte, 10))
	a.Send(1, 1, make([]byte, 20))
	a.Send(0, 1, make([]byte, 5))
	b.Recv(1)
	c := a.Counters()
	if c.MsgsSent() != 3 || c.BytesSent() != 35 {
		t.Errorf("sent: %d msgs %d bytes", c.MsgsSent(), c.BytesSent())
	}
	if c.MsgsTo(1) != 2 || c.BytesTo(1) != 30 || c.MsgsTo(0) != 1 {
		t.Errorf("per-dest: to1=%d/%d to0=%d", c.MsgsTo(1), c.BytesTo(1), c.MsgsTo(0))
	}
	if b.Counters().MsgsRecv() != 1 || b.Counters().BytesRecv() != 10 {
		t.Errorf("recv counters: %d/%d", b.Counters().MsgsRecv(), b.Counters().BytesRecv())
	}
}

func TestConcurrentSendersAndReceivers(t *testing.T) {
	eps, err := NewProcGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	const per = 200
	var wg sync.WaitGroup
	// Every rank sends `per` messages to every other rank.
	for _, e := range eps {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for to := 0; to < 4; to++ {
					if to != e.Rank() {
						if err := e.Send(to, 11, []byte{byte(i)}); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(e)
	}
	counts := make([]int, 4)
	for i, e := range eps {
		wg.Add(1)
		go func(i int, e *Endpoint) {
			defer wg.Done()
			for n := 0; n < per*3; n++ {
				if _, err := e.Recv(11); err != nil {
					t.Error(err)
					return
				}
				counts[i]++
			}
		}(i, e)
	}
	wg.Wait()
	for i, c := range counts {
		if c != per*3 {
			t.Errorf("rank %d received %d, want %d", i, c, per*3)
		}
	}
}

// TestConcurrentSelectiveReceiversDoNotSteal pins the worker/responder
// invariant of the correction phase: a receiver waiting on tag A never
// consumes tag-B messages, even under interleaved load from two goroutines
// on the same endpoint.
func TestConcurrentSelectiveReceiversDoNotSteal(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	const n = 300
	done := make(chan error, 2)
	// "Responder": receives only tag 1.
	go func() {
		for i := 0; i < n; i++ {
			m, err := eps[1].RecvMatch(func(tag int) bool { return tag == 1 })
			if err != nil {
				done <- err
				return
			}
			if m.Tag != 1 {
				done <- fmt.Errorf("responder got tag %d", m.Tag)
				return
			}
		}
		done <- nil
	}()
	// "Worker": receives only tag 2.
	go func() {
		for i := 0; i < n; i++ {
			m, err := eps[1].Recv(2)
			if err != nil {
				done <- err
				return
			}
			if m.Tag != 2 || int(m.Data[0]) != i%256 {
				done <- fmt.Errorf("worker got tag %d seq %d at %d", m.Tag, m.Data[0], i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := eps[0].Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := eps[0].Send(1, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxQueueDepth(t *testing.T) {
	a, b := procPair(t)
	if b.MaxQueueDepth() != 0 {
		t.Error("fresh endpoint has nonzero depth")
	}
	for i := 0; i < 10; i++ {
		a.Send(1, 1, nil)
	}
	if got := b.MaxQueueDepth(); got != 10 {
		t.Errorf("high-water mark %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		b.Recv(1)
	}
	// Draining does not lower the high-water mark.
	if got := b.MaxQueueDepth(); got != 10 {
		t.Errorf("high-water mark after drain %d, want 10", got)
	}
	a.Send(1, 1, nil)
	if got := b.MaxQueueDepth(); got != 10 {
		t.Errorf("mark grew without exceeding previous peak: %d", got)
	}
}

func TestNewProcGroupValidation(t *testing.T) {
	if _, err := NewProcGroup(0); err == nil {
		t.Error("accepted size 0")
	}
	eps, err := NewProcGroup(1)
	if err != nil || len(eps) != 1 {
		t.Fatalf("size-1 group: %v", err)
	}
	defer CloseGroup(eps)
	if eps[0].Size() != 1 || eps[0].Rank() != 0 {
		t.Error("size-1 group misconfigured")
	}
}
