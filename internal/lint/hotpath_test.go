package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestHotPathGolden(t *testing.T) {
	runGolden(t, NewHotPath(), "hotpath", "reptile/internal/lint/testdata/hotpath")
}

// TestHotPathFollowsCallsAcrossPackages proves the worklist crosses package
// boundaries: the only annotation lives in caller, the only allocation in
// leaf, and the diagnostic lands in leaf naming caller's root.
func TestHotPathFollowsCallsAcrossPackages(t *testing.T) {
	load := func(dir, imp string) *Package {
		t.Helper()
		pkg, err := LoadDir(filepath.Join("testdata", "hotpath_xpkg", dir), imp)
		if err != nil {
			t.Fatal(err)
		}
		if pkg == nil {
			t.Fatalf("no Go files in testdata/hotpath_xpkg/%s", dir)
		}
		return pkg
	}
	caller := load("caller", "reptile/internal/lint/testdata/hotpath_xpkg/caller")
	leaf := load("leaf", "reptile/internal/lint/testdata/hotpath_xpkg/leaf")

	diags := Run([]*Package{caller, leaf}, []Analyzer{NewHotPath()})
	if len(diags) != 1 {
		t.Fatalf("expected exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if base := filepath.Base(filepath.Dir(d.Pos.Filename)); base != "leaf" {
		t.Errorf("diagnostic landed in %q, want package leaf: %s", base, d)
	}
	if !strings.Contains(d.Message, "make in a loop") {
		t.Errorf("diagnostic does not name the allocation: %s", d)
	}
	if !strings.Contains(d.Message, "hot path of caller.Drive") {
		t.Errorf("diagnostic does not name the annotated root: %s", d)
	}
}
