package kmer

// Owner-rank hashing. The paper assigns every k-mer, tile and (for load
// balancing) sequence an owning rank via hashFunction(x) % np. The C++
// implementation used std::hash; we need a hash that (a) spreads the dense
// low bits of small IDs so the modulo is uniform, and (b) is identical on
// every rank and platform. A 64-bit finalizer (SplitMix64/Murmur3 style)
// satisfies both.

// HashID mixes an ID into a well-distributed 64-bit value.
func HashID(id ID) uint64 {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the rank that owns id among np ranks.
func Owner(id ID, np int) int {
	return int(HashID(id) % uint64(np))
}

// HashBytes hashes arbitrary bytes (used for sequence ownership in the load
// balancing step, where the key is the read itself). FNV-1a, inlined so the
// hot path allocates nothing.
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
