// Package machine projects measured per-rank event counters onto a
// BlueGene/Q-like cost model, producing the phase times the paper's figures
// plot.
//
// Rationale: the paper's results are wall times on a 1024-node BG/Q rack.
// We measure the algorithm's exact event stream (lookups, messages, bytes,
// per-destination locality) on scaled datasets, then convert events to
// seconds with per-op costs derived from the BG/Q's published
// characteristics. The projection is deterministic, so scaling *shapes* —
// who wins, crossovers, efficiency — are reproducible; absolute seconds are
// only of the right order.
package machine

import "fmt"

// Model holds the hardware cost parameters.
type Model struct {
	Name string

	CoresPerNode    int // physical cores available to user code
	ThreadsPerCore  int // SMT ways
	MemPerNodeBytes int64

	// Per-operation compute costs, seconds.
	ReadBaseCost   float64 // parse one input base (Step I)
	KmerInsertCost float64 // one hash-table insert/merge
	LookupCost     float64 // one local hash lookup
	CandidateCost  float64 // assemble one candidate tile

	// Network, per message and per byte. Intra-node messages move through
	// shared memory (the paper runs 32 ranks/node partly for this).
	IntraNodeLatency float64 // s, one way
	InterNodeLatency float64 // s, one way
	IntraNodeBW      float64 // bytes/s, per rank
	InterNodeBW      float64 // bytes/s, per *node* (ranks share the NIC)
	// Message-rate ceilings per node: small-message traffic is bound by
	// how fast the messaging unit injects packets, and every rank on the
	// node shares that budget — this is what makes 32 ranks/node slower
	// than 8 in Fig 2 even though per-rank work is identical.
	InterNodeMsgRate float64 // messages/s per node
	IntraNodeMsgRate float64 // messages/s per node (shared-memory path)

	// ProbeOverhead is the extra receive-side cost per request message in
	// the non-universal mode (MPI_Probe before the typed receive); the
	// universal heuristic eliminates it at the price of a slightly larger
	// request (paper Section III-B).
	ProbeOverhead float64
	// UniversalExtraBytes is the added request size in universal mode.
	UniversalExtraBytes int

	// SMTEfficiency is the throughput multiplier from running t hardware
	// threads per core relative to one (1 <= eff <= t); BG/Q's 4-way SMT
	// sustains roughly 2x single-thread throughput.
	SMTEfficiency2 float64
	SMTEfficiency4 float64
}

// BGQ returns the cost model for an IBM BlueGene/Q node card as described
// in the paper's Section IV (16 user cores at 1.6 GHz, 4-way SMT, 16 GB).
func BGQ() Model {
	return Model{
		Name:            "BlueGene/Q",
		CoresPerNode:    16,
		ThreadsPerCore:  4,
		MemPerNodeBytes: 16 << 30,

		ReadBaseCost:   4e-9,
		KmerInsertCost: 150e-9,
		LookupCost:     120e-9,
		CandidateCost:  60e-9,

		IntraNodeLatency: 0.9e-6,
		InterNodeLatency: 3.2e-6,
		IntraNodeBW:      4.0e9,
		InterNodeBW:      1.8e9,
		InterNodeMsgRate: 8e6,
		IntraNodeMsgRate: 80e6,

		ProbeOverhead:       0.5e-6,
		UniversalExtraBytes: 4,

		SMTEfficiency2: 1.5,
		SMTEfficiency4: 2.1,
	}
}

// Shape describes how ranks are laid out on the machine.
type Shape struct {
	Ranks          int
	RanksPerNode   int
	ThreadsPerRank int // 2 during correction (worker + comm thread)
}

// Nodes returns the node count, rounding up.
func (s Shape) Nodes() int {
	if s.RanksPerNode < 1 {
		return s.Ranks
	}
	return (s.Ranks + s.RanksPerNode - 1) / s.RanksPerNode
}

// NodeOf maps a rank to its node (block distribution, as on BG/Q).
func (s Shape) NodeOf(rank int) int {
	if s.RanksPerNode < 1 {
		return rank
	}
	return rank / s.RanksPerNode
}

// Validate checks the shape.
func (s Shape) Validate() error {
	if s.Ranks < 1 {
		return fmt.Errorf("machine: %d ranks", s.Ranks)
	}
	if s.RanksPerNode < 1 {
		return fmt.Errorf("machine: %d ranks per node", s.RanksPerNode)
	}
	if s.ThreadsPerRank < 1 {
		return fmt.Errorf("machine: %d threads per rank", s.ThreadsPerRank)
	}
	return nil
}

// computeSlowdown is the factor by which per-thread compute slows when the
// node is oversubscribed: t threads on c cores run at SMT efficiency, not
// at t-way speed.
func (m Model) computeSlowdown(s Shape) float64 {
	threads := s.RanksPerNode * s.ThreadsPerRank
	ratio := float64(threads) / float64(m.CoresPerNode)
	if ratio <= 1 {
		return 1
	}
	var eff float64
	switch {
	case ratio <= 2:
		eff = 1 + (m.SMTEfficiency2-1)*(ratio-1) // interpolate 1..eff2
	case ratio <= 4:
		eff = m.SMTEfficiency2 + (m.SMTEfficiency4-m.SMTEfficiency2)*(ratio-2)/2
	default:
		eff = m.SMTEfficiency4
	}
	return ratio / eff
}

// interNodeBWPerRank is each rank's share of the node's NIC.
func (m Model) interNodeBWPerRank(s Shape) float64 {
	return m.InterNodeBW / float64(s.RanksPerNode)
}

// RTT returns the round-trip time for a request/response pair of the given
// payload sizes between two ranks: two one-way latencies, each direction's
// share of the node message-rate budget, and the byte transfer time.
func (m Model) RTT(s Shape, from, to int, reqBytes, respBytes int) float64 {
	if s.NodeOf(from) == s.NodeOf(to) {
		occ := float64(s.RanksPerNode) / m.IntraNodeMsgRate
		return 2*(m.IntraNodeLatency+occ) + float64(reqBytes+respBytes)/m.IntraNodeBW
	}
	occ := float64(s.RanksPerNode) / m.InterNodeMsgRate
	return 2*(m.InterNodeLatency+occ) + float64(reqBytes+respBytes)/m.interNodeBWPerRank(s)
}

// CollectiveTime models an all-to-all exchange where each rank sends
// bytesOut in total, spread across the group: latency grows
// logarithmically with the group (tree phases), bandwidth term is the
// rank's NIC share.
func (m Model) CollectiveTime(s Shape, bytesOut int64) float64 {
	phases := 1.0
	for n := s.Ranks; n > 1; n >>= 1 {
		phases++
	}
	lat := m.InterNodeLatency
	if s.Nodes() == 1 {
		lat = m.IntraNodeLatency
	}
	bw := m.interNodeBWPerRank(s)
	if s.Nodes() == 1 {
		bw = m.IntraNodeBW
	}
	return phases*lat + float64(bytesOut)/bw
}
