// Package lint implements reptile-lint, the project's static-analysis pass
// for the message-passing runtime. The paper's contribution is a concurrency
// design — distributed spectra served by a dedicated communication thread
// per rank — and the analyzers here mechanically enforce the invariants that
// design depends on: mutex discipline on shared state (lockguard), frozen
// spectrum stores written only at their declared freeze points (freezeguard),
// a closed send/receive protocol over the wire tags (wireproto), no
// sleep-based synchronization (nosleepsync), joined goroutine lifetimes
// (goroutine-hygiene), allocation-free declared hot loops (hotpath), errors
// that always reach a return or abort on typed-error paths (errorflow), and
// registry-before-use ordering of message-plane tags (msgorder).
//
// The tool is standard-library only: packages are discovered by walking the
// module tree go-list style via go/build, and every analysis is syntactic
// (go/ast) with lightweight type resolution over declarations — intra-package
// inference plus a module-local call graph (see typeinfo.go) — no
// go/packages, no external analysis framework.
//
// Four comment directives tune the analyzers:
//
//	// reptile-lint:allow <analyzer> <reason>
//	    suppresses that analyzer's diagnostics on the same or next line.
//	    The reason is required, and a directive that suppresses nothing is
//	    itself reported (analyzer name "allow").
//	// reptile-lint:holds <mu>
//	    on a function's doc comment, declares that callers hold <mu>, so
//	    lockguard treats the body as running under that mutex.
//	// reptile-lint:build
//	    on a function's doc comment, declares the build/freeze phase that
//	    may write '// frozen:' fields, so freezeguard skips the body.
//	// reptile-lint:hotpath
//	    on a function's doc comment, declares a hot loop: hotpath checks
//	    the body and every resolvable module-local callee for
//	    per-iteration allocations.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// JSONDiagnostic is the machine-readable form one -json line carries. The
// field set is flat and stable so CI annotation tooling can rely on it.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSON returns the diagnostic in its machine-readable form.
func (d Diagnostic) JSON() JSONDiagnostic {
	return JSONDiagnostic{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// File is one parsed source file.
type File struct {
	Name string // absolute path
	AST  *ast.File
	Test bool // *_test.go
}

// Package is one directory's worth of parsed Go files.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*File // GoFiles + TestGoFiles + XTestGoFiles, in that order
}

// SourceFiles returns the non-test files.
func (p *Package) SourceFiles() []*File {
	out := make([]*File, 0, len(p.Files))
	for _, f := range p.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Reporter collects diagnostics for one analyzer over one package.
type Reporter struct {
	pkg      *Package
	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.diags = append(*r.diags, Diagnostic{
		Pos:      r.pkg.Fset.Position(pos),
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint pass. Check inspects a package and reports findings;
// it must not depend on any other package having been checked.
type Analyzer interface {
	Name() string
	Doc() string
	Check(pkg *Package, r *Reporter)
}

// ModuleAnalyzer is an Analyzer that needs the whole loaded package set at
// once — cross-package call graphs, registry ordering. CheckModule runs
// exactly once per Run; diagnostics go through a per-package Reporter
// obtained from report, because every Package owns its own FileSet. Check
// is typically a no-op for these analyzers.
type ModuleAnalyzer interface {
	Analyzer
	CheckModule(m *Module, report func(*Package) *Reporter)
}

// All returns the full analyzer suite with default configuration.
func All() []Analyzer {
	return []Analyzer{
		NewLockGuard(),
		NewFreezeGuard(),
		NewWireProto(),
		NewNoSleepSync(),
		NewGoroutineHygiene(),
		NewHotPath(),
		NewErrorFlow(),
		NewMsgOrder(),
	}
}

// ModuleRoot walks upward from dir to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := modulePathRe.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// Load expands go-list-style patterns (".", "./...", "./internal/core",
// "./internal/...") relative to root into parsed packages. Directories named
// testdata or vendor and hidden directories are skipped, matching the go
// tool's conventions.
func Load(root string, patterns []string) ([]*Package, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := mod
		if rel != "." {
			imp = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(dir, imp)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses one directory as a package with the given import path.
// Returns (nil, nil) when the directory holds no buildable Go files.
func LoadDir(dir, importPath string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Fset: token.NewFileSet()}
	add := func(names []string, test bool) error {
		for _, name := range names {
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			pkg.Files = append(pkg.Files, &File{Name: path, AST: f, Test: test})
		}
		return nil
	}
	if err := add(bp.GoFiles, false); err != nil {
		return nil, err
	}
	if err := add(bp.TestGoFiles, true); err != nil {
		return nil, err
	}
	if err := add(bp.XTestGoFiles, true); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Run applies every analyzer to every package — per-package Analyzers
// package by package, ModuleAnalyzers once over a Module index of the whole
// set — drops diagnostics silenced by reptile-lint:allow directives, audits
// the directives themselves (missing reasons, directives that suppressed
// nothing, under the analyzer name "allow"), and returns the rest in
// file/line order.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	mod := NewModule(pkgs)
	allows := make(map[*Package]*pkgAllows, len(pkgs))
	for _, pkg := range pkgs {
		allows[pkg] = allowDirectives(pkg)
	}

	var diags []Diagnostic
	filter := func(pkg *Package, name string, found []Diagnostic) {
		pa := allows[pkg]
		for _, d := range found {
			if dir := pa.byLine[allowKey{d.Pos.Filename, d.Pos.Line, name}]; dir != nil {
				dir.used = true
				continue
			}
			diags = append(diags, d)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if _, isModule := a.(ModuleAnalyzer); isModule {
				continue
			}
			var found []Diagnostic
			a.Check(pkg, &Reporter{pkg: pkg, analyzer: a.Name(), diags: &found})
			filter(pkg, a.Name(), found)
		}
	}
	for _, a := range analyzers {
		ma, isModule := a.(ModuleAnalyzer)
		if !isModule {
			continue
		}
		found := map[*Package]*[]Diagnostic{}
		ma.CheckModule(mod, func(pkg *Package) *Reporter {
			lst := found[pkg]
			if lst == nil {
				lst = new([]Diagnostic)
				found[pkg] = lst
			}
			return &Reporter{pkg: pkg, analyzer: a.Name(), diags: lst}
		})
		for _, pkg := range pkgs {
			if lst := found[pkg]; lst != nil {
				filter(pkg, a.Name(), *lst)
			}
		}
	}

	// Audit the directives for the analyzers that actually ran: an allow
	// with no reason is undocumented debt, and one that suppressed nothing
	// is stale. Audit findings cannot themselves be allowed away. A
	// directive for a path-scoped analyzer is left alone in packages that
	// analyzer never looked at — it is dormant there, not stale.
	active := map[string]Analyzer{}
	for _, a := range analyzers {
		active[a.Name()] = a
	}
	for _, pkg := range pkgs {
		for _, dir := range allows[pkg].list {
			a, ok := active[dir.analyzer]
			if !ok {
				continue
			}
			if ps, scoped := a.(pathScoped); scoped && !ps.appliesTo(pkg) {
				continue
			}
			if dir.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "allow",
					Message:  fmt.Sprintf("reptile-lint:allow %s has no reason; say why the finding is acceptable", dir.analyzer),
				})
			}
			if !dir.used {
				diags = append(diags, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "allow",
					Message:  fmt.Sprintf("reptile-lint:allow %s suppresses nothing; remove the stale directive", dir.analyzer),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one parsed reptile-lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool // suppressed at least one diagnostic this Run
}

// pkgAllows indexes one package's allow directives: byLine for suppression
// lookup (a directive covers its own line and the next), list in source
// order for the audit.
type pkgAllows struct {
	byLine map[allowKey]*allowDirective
	list   []*allowDirective
}

var allowRe = regexp.MustCompile(`^reptile-lint:allow\s+([\w-]+)[ \t]*([^\n]*)`)

// commentText strips the comment markers so directives can be matched
// anchored: a directive must open the comment, which keeps prose that merely
// mentions "reptile-lint:allow foo" (analyzer docs, diagnostics text) from
// parsing as a live suppression.
func commentText(c *ast.Comment) string {
	t := c.Text
	switch {
	case strings.HasPrefix(t, "//"):
		t = t[2:]
	case strings.HasPrefix(t, "/*"):
		t = strings.TrimSuffix(t[2:], "*/")
	}
	return strings.TrimSpace(t)
}

// allowDirectives parses every reptile-lint:allow comment: a directive
// silences its analyzer on the comment's own line and on the next line, so
// it can ride at the end of the offending statement or just above it.
func allowDirectives(pkg *Package) *pkgAllows {
	out := &pkgAllows{byLine: map[allowKey]*allowDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(commentText(c))
				if m == nil {
					continue
				}
				reason := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(m[2]), "*/"))
				dir := &allowDirective{
					analyzer: m[1],
					reason:   reason,
					pos:      pkg.Fset.Position(c.Pos()),
				}
				out.list = append(out.list, dir)
				pos := pkg.Fset.Position(c.Pos())
				out.byLine[allowKey{f.Name, pos.Line, m[1]}] = dir
				out.byLine[allowKey{f.Name, pos.Line + 1, m[1]}] = dir
			}
		}
	}
	return out
}

// pathScoped is implemented by analyzers that restrict themselves to a
// subset of import paths; the allow audit consults it so a directive in a
// package the analyzer skipped is not reported as stale.
type pathScoped interface {
	appliesTo(pkg *Package) bool
}

// pathMatches reports whether imp matches any substring filter; an empty
// filter list matches everything.
func pathMatches(imp string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(imp, f) {
			return true
		}
	}
	return false
}
