package reptile

import (
	"testing"

	"reptile/internal/genome"
	"reptile/internal/spectrum"
)

func TestKmerCorrectorFixesIsolatedError(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(3000, 30)
	batch := perfectReads(g, 60, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	c, err := NewKmerCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	if err != nil {
		t.Fatal(err)
	}
	r := batch[40].Clone()
	truth := r.Base[20]
	r.Base[20] = (truth + 1) % 4
	r.Qual[20] = 5
	c.CorrectRead(&r)
	if r.Base[20] != truth {
		t.Error("isolated error not corrected by k-mer baseline")
	}
}

func TestKmerCorrectorValidatesConfig(t *testing.T) {
	bad := testConfig()
	bad.KmerThreshold = 0
	if _, err := NewKmerCorrector(bad, &LocalOracle{Kmers: spectrum.NewHash(0), Tiles: spectrum.NewHash(0)}); err == nil {
		t.Error("accepted invalid config")
	}
}

// TestTilesBeatKmerOnlyAccuracy reproduces Reptile's core accuracy claim
// (paper Section II-A): correcting at the tile level, with ~2x the context,
// yields strictly better gain than plain k-spectrum correction — either the
// k-mer baseline fixes fewer errors (ambiguity aborts) or it miscorrects.
func TestTilesBeatKmerOnlyAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("two dataset pipelines")
	}
	g := genome.NewGenome(30000, 31)
	ds := genome.Simulate("cmp", g, 12000, genome.DefaultProfile(80), 32)
	cfg := ForCoverage(ds.Coverage())

	tileOut, _, err := CorrectDataset(ds.Reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kmerOut, _, err := CorrectDatasetKmerOnly(ds.Reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tileAcc, err := ds.Evaluate(tileOut)
	if err != nil {
		t.Fatal(err)
	}
	kmerAcc, err := ds.Evaluate(kmerOut)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tile corrector: %v", tileAcc)
	t.Logf("kmer corrector: %v", kmerAcc)
	if tileAcc.Gain() <= kmerAcc.Gain() {
		t.Errorf("tile gain %.4f not above k-mer-only gain %.4f", tileAcc.Gain(), kmerAcc.Gain())
	}
	if kmerAcc.TP == 0 {
		t.Error("k-mer baseline corrected nothing; comparison is vacuous")
	}
}

func TestKmerCorrectorShortRead(t *testing.T) {
	cfg := testConfig()
	c, _ := NewKmerCorrector(cfg, &LocalOracle{Kmers: spectrum.NewHash(0), Tiles: spectrum.NewHash(0)})
	r := mkShortRead(5)
	res := c.CorrectRead(&r)
	if res.BasesCorrected != 0 {
		t.Error("short read corrected")
	}
}
