// Command reptile-eval scores a corrected dataset against the ground truth
// that readsim wrote, reporting TP/FP/FN, gain, sensitivity and precision.
//
// Usage:
//
//	readsim -preset ecoli -scale 0.05 -out /tmp/ds
//	reptile-correct -fasta /tmp/ds/ecoli-sim.fa -qual /tmp/ds/ecoli-sim.qual -np 8 -out /tmp/ds/corr
//	reptile-eval -orig /tmp/ds/ecoli-sim.fa -corrected /tmp/ds/corr.fa -truth /tmp/ds/ecoli-sim.truth
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reptile/internal/dna"
	"reptile/internal/fastaio"
)

type site struct {
	pos  int
	base dna.Base
}

func main() {
	var (
		orig      = flag.String("orig", "", "original (uncorrected) fasta file")
		corrected = flag.String("corrected", "", "corrected fasta file")
		truth     = flag.String("truth", "", "truth file from readsim (seq, pos, true base)")
	)
	flag.Parse()
	if *orig == "" || *corrected == "" || *truth == "" {
		fmt.Fprintln(os.Stderr, "reptile-eval: -orig, -corrected and -truth are required")
		os.Exit(2)
	}

	truthMap, nErrors, err := loadTruth(*truth)
	if err != nil {
		fatal(err)
	}
	origSeqs, err := loadFasta(*orig)
	if err != nil {
		fatal(err)
	}
	corrSeqs, err := loadFasta(*corrected)
	if err != nil {
		fatal(err)
	}

	var tp, fp, fn, changed int64
	for seq, corr := range corrSeqs {
		og, ok := origSeqs[seq]
		if !ok {
			fatal(fmt.Errorf("corrected read %d not present in original", seq))
		}
		if len(og) != len(corr) {
			fatal(fmt.Errorf("read %d length changed: %d -> %d", seq, len(og), len(corr)))
		}
		sites := truthMap[seq]
		siteAt := make(map[int]dna.Base, len(sites))
		for _, s := range sites {
			siteAt[s.pos] = s.base
		}
		for j := range corr {
			want, wasErr := siteAt[j]
			isChanged := corr[j] != og[j]
			if isChanged {
				changed++
			}
			switch {
			case wasErr && isChanged && corr[j] == want:
				tp++
			case wasErr:
				fn++
				if isChanged {
					fp++
				}
			case isChanged:
				fp++
			}
		}
	}
	// Errors in reads that never appeared in the corrected output count as
	// missed.
	for seq, sites := range truthMap {
		if _, ok := corrSeqs[seq]; !ok {
			fn += int64(len(sites))
		}
	}

	gain := 0.0
	if tp+fn > 0 {
		gain = float64(tp-fp) / float64(tp+fn)
	}
	fmt.Printf("reads evaluated   %d\n", len(corrSeqs))
	fmt.Printf("injected errors   %d\n", nErrors)
	fmt.Printf("bases changed     %d\n", changed)
	fmt.Printf("true positives    %d\n", tp)
	fmt.Printf("false positives   %d\n", fp)
	fmt.Printf("false negatives   %d\n", fn)
	fmt.Printf("gain              %.4f\n", gain)
	if tp+fn > 0 {
		fmt.Printf("sensitivity       %.4f\n", float64(tp)/float64(tp+fn))
	}
	if tp+fp > 0 {
		fmt.Printf("precision         %.4f\n", float64(tp)/float64(tp+fp))
	}
}

func loadTruth(path string) (map[int64][]site, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	out := map[int64][]site{}
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("reptile-eval: malformed truth line %q", line)
		}
		seq, err1 := strconv.ParseInt(fields[0], 10, 64)
		pos, err2 := strconv.Atoi(fields[1])
		b, ok := dna.FromByte(fields[2][0])
		if err1 != nil || err2 != nil || !ok || len(fields[2]) != 1 {
			return nil, 0, fmt.Errorf("reptile-eval: malformed truth line %q", line)
		}
		out[seq] = append(out[seq], site{pos: pos, base: b})
		n++
	}
	return out, n, sc.Err()
}

func loadFasta(path string) (map[int64][]dna.Base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[int64][]dna.Base{}
	sc := fastaio.NewScanner(f)
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		bases := make([]dna.Base, 0, len(rec.Body))
		for _, c := range rec.Body {
			if c == ' ' {
				continue
			}
			b, ok := dna.FromByte(c)
			if !ok {
				b = dna.A
			}
			bases = append(bases, b)
		}
		out[rec.Seq] = bases
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reptile-eval: %v\n", err)
	os.Exit(1)
}
