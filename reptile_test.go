package reptile

import (
	"testing"
)

// The facade tests exercise the public API exactly as README documents it.

func TestQuickstartFlow(t *testing.T) {
	ds := EColiSim.Scaled(0.02).Build()
	if ds.NumReads() == 0 || ds.TotalErrors() == 0 {
		t.Fatal("degenerate dataset")
	}
	opts := DefaultOptions()
	opts.Config = ConfigForCoverage(ds.Coverage())
	out, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ds.Evaluate(out.Corrected())
	if err != nil {
		t.Fatal(err)
	}
	if acc.Gain() < 0.6 {
		t.Errorf("quickstart gain %.3f below 0.6", acc.Gain())
	}
}

func TestSequentialFacade(t *testing.T) {
	ds := EColiSim.Scaled(0.02).Build()
	corrected, res, err := Correct(ds.Reads, ConfigForCoverage(ds.Coverage()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BasesCorrected == 0 {
		t.Error("sequential facade corrected nothing")
	}
	if len(corrected) != len(ds.Reads) {
		t.Errorf("got %d reads", len(corrected))
	}
}

func TestProjectionFacade(t *testing.T) {
	ds := EColiSim.Scaled(0.02).Build()
	opts := DefaultOptions()
	opts.Config = ConfigForCoverage(ds.Coverage())
	out, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	shape := MachineShape{Ranks: 8, RanksPerNode: 8, ThreadsPerRank: 2}
	proj, err := Project(BGQ(), &out.Run, shape, opts.Heuristics)
	if err != nil {
		t.Fatal(err)
	}
	if proj.TotalTime() <= 0 {
		t.Error("projection produced non-positive time")
	}
	if e := Efficiency(8, proj.TotalTime(), 16, proj.TotalTime()/1.5); e <= 0 {
		t.Error("Efficiency facade broken")
	}
}

func TestStreamingFacade(t *testing.T) {
	ds := EColiSim.Scaled(0.02).Build()
	opts := DefaultOptions()
	opts.Config = ConfigForCoverage(ds.Coverage())
	opts.Config.ChunkReads = 512
	opts.AutoThresholds = true

	dir := t.TempDir()
	factory := func(rank int) (Sink, error) {
		return NewFileSink(dir + "/out")
	}
	// Single rank so the one FileSink isn't contended.
	out, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 1, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.BasesCorrected == 0 {
		t.Error("streaming facade corrected nothing")
	}
}

func TestSimulateRNASeqFacade(t *testing.T) {
	ds := SimulateRNASeq("rna", 20000, 3000, 90, 12, 5)
	if ds.NumReads() != 3000 {
		t.Fatalf("NumReads = %d", ds.NumReads())
	}
	if ds.TotalErrors() == 0 {
		t.Error("no errors injected")
	}
	// Coverage skew: some genome decile must hold >2x the uniform share.
	decile := make([]int, 10)
	for _, p := range ds.Pos {
		decile[p*10/ds.Genome.Len()]++
	}
	max := 0
	for _, d := range decile {
		if d > max {
			max = d
		}
	}
	if max < 600 { // uniform share would be 300
		t.Errorf("no coverage skew: deciles %v", decile)
	}
}

func TestLayoutFacade(t *testing.T) {
	ds := EColiSim.Scaled(0.015).Build()
	opts := DefaultOptions()
	opts.Config = ConfigForCoverage(ds.Coverage())
	opts.Heuristics = Heuristics{ReplicateKmers: true, ReplicateTiles: true, ReplicatedLayout: LayoutCacheAware}
	out, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.BasesCorrected == 0 {
		t.Error("cache-aware replicated run corrected nothing")
	}
}

func TestPresetsExported(t *testing.T) {
	for _, p := range []Preset{EColiSim, DrosophilaSim, HumanSim} {
		if p.NumReads() <= 0 {
			t.Errorf("%s: no reads", p.Name)
		}
	}
}
