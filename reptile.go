// Package reptile is a distributed-memory implementation of the Reptile
// short-read error-correction algorithm, reproducing "A Memory and Time
// Scalable Parallelization of the Reptile Error-Correction Code"
// (Sachdeva, Aluru, Bader — IPDPSW 2016).
//
// Both the k-mer spectrum and the tile spectrum are partitioned across
// ranks by owner hashing; correction resolves missing spectrum entries by
// messaging the owning rank, so any number of ranks with any per-rank
// memory can correct any dataset. Ranks run as goroutines over an
// in-process transport by default, or as separate processes over TCP.
//
// Quick start:
//
//	ds := reptile.EColiSim.Scaled(0.05).Build()        // synthetic dataset
//	opts := reptile.DefaultOptions()
//	opts.Config = reptile.ConfigForCoverage(ds.Coverage())
//	out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, 16, opts)
//	acc, _ := ds.Evaluate(out.Corrected())             // scored vs ground truth
//
// The exported surface is a facade over the internal packages; every type
// alias below carries its full method set.
package reptile

import (
	"reptile/internal/core"
	"reptile/internal/genome"
	"reptile/internal/machine"
	"reptile/internal/reads"
	irept "reptile/internal/reptile"
	"reptile/internal/stats"
)

// Read is one short read: 1-based sequence number, 2-bit base codes, and
// per-base Phred quality scores.
type Read = reads.Read

// Config holds the Reptile correction parameters (k-mer/tile geometry,
// solidity thresholds, quality-driven candidate search limits).
type Config = irept.Config

// Result aggregates correction outcomes (reads processed/changed, bases
// corrected, tile-level accounting).
type Result = irept.Result

// DefaultConfig returns the baseline correction parameters (k=12, 20-base
// tiles).
func DefaultConfig() Config { return irept.Default() }

// ConfigForCoverage adapts the solidity thresholds to a dataset's read
// coverage.
func ConfigForCoverage(cov float64) Config { return irept.ForCoverage(cov) }

// Correct runs the sequential (single-process, in-memory) Reptile pipeline:
// build spectra, correct a copy of the reads, return them with statistics.
func Correct(batch []Read, cfg Config) ([]Read, Result, error) {
	return irept.CorrectDataset(batch, cfg)
}

// Options configures a distributed run: correction parameters, the paper's
// Section III-B heuristics, and static load balancing.
type Options = core.Options

// Heuristics selects the paper's optional execution modes: universal
// messages, retained read k-mers/tiles, spectrum replication, remote-lookup
// caching, batched reads tables, and partial replication.
type Heuristics = core.Heuristics

// Layout selects the replicated-spectrum storage layout: this paper's hash
// tables, or the prior art's sorted / cache-aware arrays.
type Layout = core.Layout

// Replicated-spectrum layouts.
const (
	LayoutHash       = core.LayoutHash
	LayoutSorted     = core.LayoutSorted
	LayoutCacheAware = core.LayoutCacheAware
)

// DefaultOptions is the configuration the paper's scaling runs use: base
// heuristics with static load balancing enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// Source provides each rank's shard of the input.
type Source = core.Source

// MemorySource shards an in-memory read set.
type MemorySource = core.MemorySource

// FileSource shards a fasta + quality file pair with byte-offset
// partitioning (the paper's Step I).
type FileSource = core.FileSource

// Output is a distributed run's result: corrected reads, per-rank
// statistics, and correction totals.
type Output = core.Output

// RankOutput is a single rank's result, for callers driving RunRank over
// their own transport.
type RankOutput = core.RankOutput

// Run executes the distributed pipeline with np goroutine ranks inside
// this process.
func Run(src Source, np int, opts Options) (*Output, error) {
	return core.Run(src, np, opts)
}

// Sink receives corrected reads incrementally during a streaming run.
type Sink = core.Sink

// SinkFactory builds one rank's sink.
type SinkFactory = core.SinkFactory

// CollectSink accumulates corrected reads in memory.
type CollectSink = core.CollectSink

// FileSink streams corrected reads to a fasta + quality pair.
type FileSink = core.FileSink

// NewFileSink creates <prefix>.fa and <prefix>.qual.
func NewFileSink(prefix string) (*FileSink, error) { return core.NewFileSink(prefix) }

// RunStreaming executes the pipeline in the paper's low-memory shape: reads
// are never held whole — the source is traversed once for spectrum
// construction and once more during correction, with each corrected chunk
// handed to the rank's sink and dropped.
func RunStreaming(src Source, np int, opts Options, sinks SinkFactory) (*Output, error) {
	return core.RunStreaming(src, np, opts, sinks)
}

// Dataset is a simulated read set with ground truth for accuracy scoring.
type Dataset = genome.Dataset

// Accuracy is the per-base correction score sheet (TP/FP/FN, gain,
// sensitivity, precision).
type Accuracy = genome.Accuracy

// Preset names a scaled synthetic dataset mirroring the paper's Table I.
type Preset = genome.Preset

// The Table I datasets: E.Coli (96X), Drosophila (75X), Human (47X),
// scaled to workstation size with read length and coverage preserved.
var (
	EColiSim      = genome.EColiSim
	DrosophilaSim = genome.DrosophilaSim
	HumanSim      = genome.HumanSim
)

// SimulateRNASeq builds a dataset with RNA-seq-like coverage skew: the
// genome is carved into `transcripts` regions with Zipf-distributed
// abundances and reads are drawn proportionally — the non-uniform workload
// the paper's introduction motivates the distributed spectrum with.
func SimulateRNASeq(name string, genomeLen, nReads, readLen, transcripts int, seed int64) *Dataset {
	g := genome.NewGenome(genomeLen, seed)
	abs := genome.TranscriptomeAbundances(genomeLen, transcripts, seed+1)
	return genome.SimulateNonUniform(name, g, nReads, genome.DefaultProfile(readLen), abs, seed+2)
}

// RunStats carries every rank's counters for a finished run.
type RunStats = stats.Run

// RankStats is one rank's counter set.
type RankStats = stats.Rank

// MachineModel converts measured per-rank event counters into projected
// BlueGene/Q phase times.
type MachineModel = machine.Model

// MachineShape describes the rank layout (ranks, ranks/node, threads).
type MachineShape = machine.Shape

// Projection is a modeled run timing.
type Projection = machine.Projection

// BGQ returns the BlueGene/Q cost model from the paper's Section IV.
func BGQ() MachineModel { return machine.BGQ() }

// Project applies a machine model to a finished run, matching the wire
// sizes and probe behaviour of the run's heuristics.
func Project(m MachineModel, run *RunStats, shape MachineShape, h Heuristics) (Projection, error) {
	universal, req, resp := core.ProjectOptsFor(h)
	return m.Project(run, shape, machine.ProjectOpts{Universal: universal, ReqBytes: req, RespBytes: resp})
}

// Efficiency is the parallel efficiency of scaling from (baseRanks,
// baseTime) to (ranks, time).
func Efficiency(baseRanks int, baseTime float64, ranks int, time float64) float64 {
	return machine.Efficiency(baseRanks, baseTime, ranks, time)
}
