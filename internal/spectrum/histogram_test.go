package spectrum

import (
	"testing"

	"reptile/internal/kmer"
)

func TestHistogram(t *testing.T) {
	h := NewHash(0)
	h.Set(1, 1)
	h.Set(2, 1)
	h.Set(3, 5)
	h.Set(4, 300) // beyond the cap
	hist := h.Histogram()
	if len(hist) != HistogramBins {
		t.Fatalf("len = %d", len(hist))
	}
	if hist[1] != 2 || hist[5] != 1 || hist[HistogramBins-1] != 1 {
		t.Errorf("histogram wrong: h[1]=%d h[5]=%d h[last]=%d", hist[1], hist[5], hist[HistogramBins-1])
	}
}

func TestMergeHistograms(t *testing.T) {
	a := []int64{1, 2, 3}
	MergeHistograms(a, []int64{10, 20, 30, 40})
	if a[0] != 11 || a[1] != 22 || a[2] != 33 {
		t.Errorf("merge = %v", a)
	}
}

// bimodal builds the classic error-peak + coverage-peak histogram.
func bimodal(errorPeak, coveragePeak int64, valleyAt, coverageAt int) []int64 {
	hist := make([]int64, HistogramBins)
	for c := 1; c < HistogramBins; c++ {
		switch {
		case c < valleyAt:
			hist[c] = errorPeak / int64(1<<uint(c)) // decaying error tail
		case c == valleyAt:
			hist[c] = 1
		default:
			// Gaussian-ish bump around coverageAt.
			d := c - coverageAt
			if d < 0 {
				d = -d
			}
			if d < 10 {
				hist[c] = coveragePeak / int64(d+1)
			}
		}
	}
	return hist
}

func TestValleyThresholdBimodal(t *testing.T) {
	hist := bimodal(100000, 5000, 6, 40)
	got := ValleyThreshold(hist, 99)
	// Any threshold inside the inter-peak gap (valley at 6, coverage bump
	// starting at 31) prunes exactly the same spectrum.
	if got < 6 || got > 30 {
		t.Errorf("valley = %d, want within [6, 30]", got)
	}
}

func TestValleyThresholdFallbacks(t *testing.T) {
	// Unimodal decaying histogram: no second mode, keep the fallback.
	hist := make([]int64, HistogramBins)
	for c := 1; c < HistogramBins; c++ {
		hist[c] = int64(1000 / c)
	}
	if got := ValleyThreshold(hist, 7); got != 7 {
		t.Errorf("unimodal: %d, want fallback 7", got)
	}
	// Empty histogram.
	if got := ValleyThreshold(make([]int64, HistogramBins), 5); got != 5 {
		t.Errorf("empty: %d, want fallback 5", got)
	}
	// Tiny histogram slice.
	if got := ValleyThreshold([]int64{0, 3}, 4); got != 4 {
		t.Errorf("short: %d, want fallback", got)
	}
}

func TestValleyThresholdOnRealisticSpectrum(t *testing.T) {
	// Emulate 40x coverage with an error tail: 100k genomic k-mers at
	// counts ~35-45, 500k error k-mers at counts 1-3.
	h := NewHash(0)
	id := kmer.ID(1)
	add := func(count uint32, n int) {
		for i := 0; i < n; i++ {
			h.Set(id, count)
			id++
		}
	}
	add(1, 400000)
	add(2, 80000)
	add(3, 15000)
	for c := uint32(30); c <= 50; c++ {
		add(c, 5000)
	}
	got := ValleyThreshold(h.Histogram(), 99)
	if got < 4 || got > 29 {
		t.Errorf("valley = %d, want within (3, 30)", got)
	}
}
