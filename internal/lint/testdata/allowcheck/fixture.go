// Package fixture exercises the reptile-lint:allow audit: a used directive
// with a reason passes, an empty reason is reported, and a directive that
// suppresses nothing is stale.
package fixture

import "time"

// documented sleeps behind a reasoned allow: silent.
func documented() {
	time.Sleep(time.Millisecond) // reptile-lint:allow nosleepsync fixture exercises a documented sleep
}

// missingReason still suppresses the finding, but the bare directive is
// itself reported.
func missingReason() {
	time.Sleep(time.Millisecond) // reptile-lint:allow nosleepsync
}

// stale carries a directive with nothing left to suppress.
func stale() {
	// reptile-lint:allow nosleepsync nothing sleeps here anymore
	_ = time.Now()
}
