// Package lint implements reptile-lint, the project's static-analysis pass
// for the message-passing runtime. The paper's contribution is a concurrency
// design — distributed spectra served by a dedicated communication thread
// per rank — and the analyzers here mechanically enforce the invariants that
// design depends on: mutex discipline on shared state (lockguard), frozen
// spectrum stores written only at their declared freeze points (freezeguard),
// a closed send/receive protocol over the wire tags (wireproto), no
// sleep-based synchronization (nosleepsync), and joined goroutine lifetimes
// (goroutine-hygiene).
//
// The tool is standard-library only: packages are discovered by walking the
// module tree go-list style via go/build, and every analysis is syntactic
// (go/ast) with lightweight intra-package type resolution — no go/packages,
// no external analysis framework.
//
// Three comment directives tune the analyzers:
//
//	// reptile-lint:allow <analyzer> <reason>
//	    suppresses that analyzer's diagnostics on the same or next line.
//	// reptile-lint:holds <mu>
//	    on a function's doc comment, declares that callers hold <mu>, so
//	    lockguard treats the body as running under that mutex.
//	// reptile-lint:build
//	    on a function's doc comment, declares the build/freeze phase that
//	    may write '// frozen:' fields, so freezeguard skips the body.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is one parsed source file.
type File struct {
	Name string // absolute path
	AST  *ast.File
	Test bool // *_test.go
}

// Package is one directory's worth of parsed Go files.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*File // GoFiles + TestGoFiles + XTestGoFiles, in that order
}

// SourceFiles returns the non-test files.
func (p *Package) SourceFiles() []*File {
	out := make([]*File, 0, len(p.Files))
	for _, f := range p.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Reporter collects diagnostics for one analyzer over one package.
type Reporter struct {
	pkg      *Package
	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.diags = append(*r.diags, Diagnostic{
		Pos:      r.pkg.Fset.Position(pos),
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint pass. Check inspects a package and reports findings;
// it must not depend on any other package having been checked.
type Analyzer interface {
	Name() string
	Doc() string
	Check(pkg *Package, r *Reporter)
}

// All returns the full analyzer suite with default configuration.
func All() []Analyzer {
	return []Analyzer{
		NewLockGuard(),
		NewFreezeGuard(),
		NewWireProto(),
		NewNoSleepSync(),
		NewGoroutineHygiene(),
	}
}

// ModuleRoot walks upward from dir to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := modulePathRe.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// Load expands go-list-style patterns (".", "./...", "./internal/core",
// "./internal/...") relative to root into parsed packages. Directories named
// testdata or vendor and hidden directories are skipped, matching the go
// tool's conventions.
func Load(root string, patterns []string) ([]*Package, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := mod
		if rel != "." {
			imp = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(dir, imp)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses one directory as a package with the given import path.
// Returns (nil, nil) when the directory holds no buildable Go files.
func LoadDir(dir, importPath string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Fset: token.NewFileSet()}
	add := func(names []string, test bool) error {
		for _, name := range names {
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			pkg.Files = append(pkg.Files, &File{Name: path, AST: f, Test: test})
		}
		return nil
	}
	if err := add(bp.GoFiles, false); err != nil {
		return nil, err
	}
	if err := add(bp.TestGoFiles, true); err != nil {
		return nil, err
	}
	if err := add(bp.XTestGoFiles, true); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Run applies every analyzer to every package, drops diagnostics silenced by
// reptile-lint:allow directives, and returns the rest in file/line order.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowDirectives(pkg)
		for _, a := range analyzers {
			var found []Diagnostic
			a.Check(pkg, &Reporter{pkg: pkg, analyzer: a.Name(), diags: &found})
			for _, d := range found {
				if allowed[allowKey{d.Pos.Filename, d.Pos.Line, a.Name()}] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

var allowRe = regexp.MustCompile(`reptile-lint:allow\s+([\w-]+)`)

// allowDirectives indexes every reptile-lint:allow comment: a directive
// silences its analyzer on the comment's own line and on the next line, so
// it can ride at the end of the offending statement or just above it.
func allowDirectives(pkg *Package) map[allowKey]bool {
	out := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[allowKey{f.Name, pos.Line, m[1]}] = true
				out[allowKey{f.Name, pos.Line + 1, m[1]}] = true
			}
		}
	}
	return out
}

// pathMatches reports whether imp matches any substring filter; an empty
// filter list matches everything.
func pathMatches(imp string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(imp, f) {
			return true
		}
	}
	return false
}
