// Package stats defines the per-rank event counters the distributed engine
// records and the aggregations the experiments report.
//
// The paper's figures are all functions of these counters: per-rank k-mer/
// tile spectrum sizes (Fig 3), errors corrected and communication volume
// per rank (Fig 4), memory footprints per heuristic (Fig 5), and phase
// times (Figs 2, 6-8) which the machine model projects from the counters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Phase indexes the engine's execution phases.
type Phase int

// Execution phases in paper order: Step I (read+balance), Steps II-III
// (spectrum build + exchange), Step IV (correction). PhaseSnapshot is the
// snapshot-cache probe that can replace the spectrum build (DESIGN.md §16);
// it exists only in runs configured with Options.Snapshot.
const (
	PhaseRead Phase = iota
	PhaseBalance
	PhaseSnapshot
	PhaseSpectrum
	PhaseExchange
	PhaseCorrect
	NumPhases
)

var phaseNames = [NumPhases]string{"read", "balance", "snapshot", "spectrum", "exchange", "correct"}

// String returns the phase name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Rank holds one rank's counters for a run. The engine writes it from the
// rank's own goroutines; it must not be read until the run completes.
type Rank struct {
	Rank int

	// Step I / load balancing.
	ReadsAssigned  int64 // reads this rank ended up correcting
	ReadsExchanged int64 // reads shipped away during balancing
	ReadBases      int64 // input bases parsed by this rank

	// Spectrum construction (Steps II-III).
	KmersExtracted int64
	TilesExtracted int64
	OwnedKmers     int64 // final (pruned) owned k-mer spectrum size
	OwnedTiles     int64
	ReadsKmers     int64 // peak size of the readsKmer table
	ReadsTiles     int64
	// OwnedMemBytes is the exact byte footprint of the frozen (packed)
	// owned spectra — measured slab sizes, not the map estimate.
	OwnedMemBytes int64

	// Correction (Step IV), worker side.
	KmerLookupsLocal  int64
	TileLookupsLocal  int64
	KmerLookupsRemote int64
	TileLookupsRemote int64
	RemoteMisses      int64 // remote lookups answered "does not exist"
	CacheHits         int64 // hits in the remote-lookup cache heuristic
	BasesCorrected    int64
	ReadsChanged      int64

	// Correction, batched-lookup pipeline (zero when LookupBatch is off).
	BatchesSent    int64 // tagBatchReq frames this rank issued
	BatchedLookups int64 // ids carried inside those frames
	// WorkerCount is the size of the correction worker pool this rank ran
	// (1 in the default single-worker mode).
	WorkerCount int64

	// Correction, responder side.
	RequestsServed int64

	// Session layer (DESIGN.md §17). Every correction travels a session —
	// the batch drivers as a one-shot, served client jobs as long-lived
	// multi-chunk sessions — so SessionsOpened is at least 1 on any rank
	// that corrected anything. Counters are executor-side: sessions admitted
	// at this rank, wherever they were opened from.
	SessionsOpened    int64
	SessionsCompleted int64 // sessions closed cleanly
	SessionsRejected  int64 // opens refused (per-tenant cap or drain)
	SessionReads      int64 // reads corrected by this rank's session executor

	// Spectrum-snapshot cache (zero unless Options.Snapshot is configured;
	// see DESIGN.md §16). A hit means this rank adopted its frozen spectra
	// from disk and the build phases were skipped run-wide; a miss means
	// the build ran (and, on success, wrote the snapshot back).
	SnapshotHits         int64
	SnapshotMisses       int64
	SnapshotSaves        int64 // snapshot files this rank published
	SnapshotBytesRead    int64
	SnapshotBytesWritten int64

	// Transport totals (whole run).
	MsgsSent  int64
	BytesSent int64
	// Correction-phase per-destination tallies (request traffic only),
	// for intra/inter-node splits in the machine model.
	MsgsTo  []int64
	BytesTo []int64
	// ExchangeBytes is what this rank sent through collectives during
	// spectrum construction and load balancing.
	ExchangeBytes int64
	// SpecBytesSent/SpecEntriesSent split the spectrum round exchange out
	// of ExchangeBytes: the varint-packed slab bytes this rank shipped to
	// peers and the entries those slabs carried, so benches can pin the
	// achieved wire width (bytes per entry) against the fixed 12-byte
	// encoding the exchange used before delta compression.
	SpecBytesSent   int64
	SpecEntriesSent int64
	// MaxInboxDepth is the transport mailbox's high-water mark: how far
	// behind this rank's receivers fell at the worst moment.
	MaxInboxDepth int64
	// FaultsInjected counts the chaos-schedule faults that fired on this
	// rank's endpoint (zero outside fault-injection runs).
	FaultsInjected int64

	// Recovery counters (zero outside fault-tolerant runs).
	FailoversTaken     int64 // lookup frames rerouted to a surviving replica holder
	ShardsRereplicated int64 // spectrum shards this rank pushed to restore R=2
	ChunksStolen       int64 // correction chunks this rank stole from peers
	ChunksLent         int64 // correction chunks peers stole from this rank
	ReadsRecovered     int64 // dead ranks' reads this rank corrected by proxy
	// RecoveredRanks lists the ranks whose loss this rank's recovery layer
	// absorbed during the run (empty for a clean run).
	RecoveredRanks []int

	// Peak application memory this rank held (spectra + reads tables +
	// caches), in bytes.
	PeakMemBytes int64
	// Fig 5 reports the highest-footprint rank "after the k-mer
	// construction and the error correction steps"; these are those two
	// snapshots.
	MemAfterConstruct int64
	MemAfterCorrect   int64
	// MemAtFreeze is the table footprint at the spectrum freeze point — the
	// instant specBuilder.finish packs the owned stores and releases the
	// builder shards. Unlike MemAfterConstruct (sampled after the
	// post-construction exchanges, by which point the round tables are long
	// gone) it captures the frozen spectra plus the still-unresolved retained
	// tables, so it actually moves with dataset scale and worker count.
	MemAtFreeze int64
	// PhaseMem is the table footprint observed as each pipeline step
	// exited — the per-phase trajectory behind the two snapshots above.
	// Phases an engine does not run (read/balance in streaming) stay zero.
	PhaseMem [NumPhases]int64

	// Measured wall time per phase.
	Wall [NumPhases]time.Duration
}

// LookupsPerBatch returns the mean number of ids per batch frame — the
// aggregation factor the batching heuristic achieved (0 when unbatched).
func (r *Rank) LookupsPerBatch() float64 {
	if r.BatchesSent == 0 {
		return 0
	}
	return float64(r.BatchedLookups) / float64(r.BatchesSent)
}

// AddLookups folds another counter set's correction-worker tallies into r.
// The engine's worker pool records each worker's lookups in a private shard
// and merges them here after the pool joins.
func (r *Rank) AddLookups(o *Rank) {
	r.KmerLookupsLocal += o.KmerLookupsLocal
	r.TileLookupsLocal += o.TileLookupsLocal
	r.KmerLookupsRemote += o.KmerLookupsRemote
	r.TileLookupsRemote += o.TileLookupsRemote
	r.RemoteMisses += o.RemoteMisses
	r.CacheHits += o.CacheHits
	r.FailoversTaken += o.FailoversTaken
}

// TotalRemoteLookups returns all lookups that left the rank.
func (r *Rank) TotalRemoteLookups() int64 {
	return r.KmerLookupsRemote + r.TileLookupsRemote
}

// TotalLocalLookups returns all lookups answered from local tables.
func (r *Rank) TotalLocalLookups() int64 {
	return r.KmerLookupsLocal + r.TileLookupsLocal
}

// ObserveMem records a memory high-water mark.
func (r *Rank) ObserveMem(bytes int64) {
	if bytes > r.PeakMemBytes {
		r.PeakMemBytes = bytes
	}
}

// Run aggregates every rank's counters for one engine execution.
type Run struct {
	Ranks []Rank
	// Wall is the per-phase wall time as the ranks themselves measured it:
	// the maximum across ranks of each rank's own phase timer. Phases
	// overlap across ranks, so these maxima need not sum to the run's
	// duration.
	Wall [NumPhases]time.Duration
	// Elapsed is the launcher-observed total wall time of the run, measured
	// outside the rank goroutines from just before the first rank starts to
	// just after the last one joins.
	Elapsed time.Duration
}

// NumRanks returns the rank count.
func (r *Run) NumRanks() int { return len(r.Ranks) }

// Sum folds a per-rank field across ranks.
func (r *Run) Sum(f func(*Rank) int64) int64 {
	var s int64
	for i := range r.Ranks {
		s += f(&r.Ranks[i])
	}
	return s
}

// Max returns the maximum of a per-rank field.
func (r *Run) Max(f func(*Rank) int64) int64 {
	var m int64
	for i := range r.Ranks {
		if v := f(&r.Ranks[i]); i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of a per-rank field.
func (r *Run) Min(f func(*Rank) int64) int64 {
	var m int64
	for i := range r.Ranks {
		if v := f(&r.Ranks[i]); i == 0 || v < m {
			m = v
		}
	}
	return m
}

// SpreadPct returns (max-min)/max as a percentage — the uniformity metric
// Fig 3 reports for per-rank spectrum sizes.
func (r *Run) SpreadPct(f func(*Rank) int64) float64 {
	max := r.Max(f)
	if max == 0 {
		return 0
	}
	return 100 * float64(max-r.Min(f)) / float64(max)
}

// TotalWall returns the sum of all phase wall times.
func (r *Run) TotalWall() time.Duration {
	var t time.Duration
	for _, w := range r.Wall {
		t += w
	}
	return t
}

// Serve summarizes one service node's session traffic: what reptile-serve
// prints at drain and the serve bench records per client-count row.
type Serve struct {
	Sessions    int64         // sessions completed through this node
	Rejected    int64         // opens refused (cap or drain)
	Reads       int64         // reads corrected across those sessions
	Elapsed     time.Duration // serving window (arm to drain)
	ReadsPerSec float64       // Reads / Elapsed
	P50         time.Duration // median session latency (open to close)
	P99         time.Duration // tail session latency
}

// NewServe builds the serve summary from the closed sessions' latencies.
func NewServe(sessions, rejected, reads int64, elapsed time.Duration, latencies []time.Duration) Serve {
	s := Serve{Sessions: sessions, Rejected: rejected, Reads: reads, Elapsed: elapsed}
	if elapsed > 0 {
		s.ReadsPerSec = float64(reads) / elapsed.Seconds()
	}
	s.P50 = Percentile(latencies, 50)
	s.P99 = Percentile(latencies, 99)
	return s
}

// Percentile returns the q-th percentile (0-100) of the given durations
// using nearest-rank on a sorted copy; 0 for an empty set. The input is
// not modified.
func Percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
