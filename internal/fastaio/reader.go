package fastaio

import (
	"fmt"
	"io"
	"math"
	"os"

	"reptile/internal/reads"
)

// ShardReader streams rank's shard of a fasta+qual pair in chunks, keeping
// the two files in lockstep by sequence number exactly as Step I of the
// paper describes: the fasta shard is located by byte offset, then the same
// starting sequence number is looked up in the quality file.
type ShardReader struct {
	fa, qual   *os.File
	fs, qs     *Scanner
	startSeq   int64
	endSeq     int64 // exclusive; MaxInt64 for the last rank
	nextSeq    int64 // next expected sequence number
	exhausted  bool
	ChunkReads int // batch size for NextBatch; default 4096
}

// OpenShard opens rank's shard of the dataset. It performs the offset
// computation, record alignment, and qual-file sequence lookup eagerly so
// errors surface before any processing starts.
func OpenShard(fastaPath, qualPath string, rank, np int) (*ShardReader, error) {
	if rank < 0 || rank >= np {
		return nil, fmt.Errorf("fastaio: rank %d out of range [0,%d)", rank, np)
	}
	fa, err := os.Open(fastaPath)
	if err != nil {
		return nil, err
	}
	size, err := fileSize(fa)
	if err != nil {
		fa.Close()
		return nil, err
	}
	startSeq, endSeq, err := ShardBounds(fa, size, rank, np)
	if err != nil {
		fa.Close()
		return nil, err
	}
	sr := &ShardReader{fa: fa, startSeq: startSeq, endSeq: endSeq, nextSeq: startSeq, ChunkReads: 4096}
	if startSeq == math.MaxInt64 { // empty shard
		sr.exhausted = true
		return sr, nil
	}
	faOff, err := SeekToSeq(fa, size, startSeq)
	if err != nil {
		fa.Close()
		return nil, err
	}
	if _, err := fa.Seek(faOff, io.SeekStart); err != nil {
		fa.Close()
		return nil, err
	}
	sr.fs = NewScanner(fa)

	qf, err := os.Open(qualPath)
	if err != nil {
		fa.Close()
		return nil, err
	}
	qsize, err := fileSize(qf)
	if err != nil {
		fa.Close()
		qf.Close()
		return nil, err
	}
	qOff, err := SeekToSeq(qf, qsize, startSeq)
	if err != nil {
		fa.Close()
		qf.Close()
		return nil, fmt.Errorf("fastaio: locating sequence %d in quality file: %w", startSeq, err)
	}
	if _, err := qf.Seek(qOff, io.SeekStart); err != nil {
		fa.Close()
		qf.Close()
		return nil, err
	}
	sr.qual = qf
	sr.qs = NewScanner(qf)
	return sr, nil
}

// Bounds returns the [start, end) sequence-number range of this shard.
func (sr *ShardReader) Bounds() (start, end int64) { return sr.startSeq, sr.endSeq }

// NextBatch returns up to ChunkReads reads, or (nil, io.EOF) once the shard
// is exhausted. Fasta and quality records are verified to carry matching
// sequence numbers and lengths.
func (sr *ShardReader) NextBatch() ([]reads.Read, error) {
	if sr.exhausted {
		return nil, io.EOF
	}
	chunk := sr.ChunkReads
	if chunk <= 0 {
		chunk = 4096
	}
	out := make([]reads.Read, 0, chunk)
	for len(out) < chunk {
		if sr.nextSeq >= sr.endSeq {
			sr.exhausted = true
			break
		}
		frec, err := sr.fs.Next()
		if err == io.EOF {
			sr.exhausted = true
			break
		}
		if err != nil {
			return nil, err
		}
		qrec, err := sr.qs.Next()
		if err != nil {
			return nil, fmt.Errorf("fastaio: quality file ended before fasta at sequence %d: %w", frec.Seq, err)
		}
		if frec.Seq != qrec.Seq {
			return nil, fmt.Errorf("fastaio: fasta sequence %d paired with quality sequence %d", frec.Seq, qrec.Seq)
		}
		base := parseBases(frec.Body)
		qual, err := parseQual(qrec.Body)
		if err != nil {
			return nil, err
		}
		if len(base) != len(qual) {
			return nil, fmt.Errorf("fastaio: sequence %d has %d bases but %d scores", frec.Seq, len(base), len(qual))
		}
		out = append(out, reads.Read{Seq: frec.Seq, Base: base, Qual: qual})
		sr.nextSeq = frec.Seq + 1
	}
	if len(out) == 0 {
		return nil, io.EOF
	}
	return out, nil
}

// ReadAll drains the shard into one slice.
func (sr *ShardReader) ReadAll() ([]reads.Read, error) {
	var all []reads.Read
	for {
		batch, err := sr.NextBatch()
		if err == io.EOF {
			return all, nil
		}
		if err != nil {
			return nil, err
		}
		all = append(all, batch...)
	}
}

// Close releases both file handles.
func (sr *ShardReader) Close() error {
	var first error
	if sr.fa != nil {
		first = sr.fa.Close()
	}
	if sr.qual != nil {
		if err := sr.qual.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadShard is the one-shot convenience: open, drain, close.
func ReadShard(fastaPath, qualPath string, rank, np int) ([]reads.Read, error) {
	sr, err := OpenShard(fastaPath, qualPath, rank, np)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	return sr.ReadAll()
}
