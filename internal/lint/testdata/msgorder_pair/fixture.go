// Package fixture seeds the msgorder pairing violation: a package that
// registers request specs with no response spec leaves the caller window
// unmatchable.
package fixture

// Tag mirrors msgplane.Tag.
type Tag int

// Direction mirrors msgplane.Direction.
type Direction int

// Directions.
const (
	DirRequest Direction = iota
	DirResponse
)

// Spec mirrors msgplane.Spec.
type Spec struct {
	Tag  Tag
	Name string
	Dir  Direction
}

// Register records specs in the registry.
func Register(specs ...Spec) {}

// The one-sided protocol.
const (
	tagAskA Tag = 1
	tagAskB Tag = 2
)

func init() {
	Register(
		Spec{Tag: tagAskA, Name: "askA", Dir: DirRequest}, // want "no response tag"
		Spec{Tag: tagAskB, Name: "askB", Dir: DirRequest}, // want "no response tag"
	)
}
