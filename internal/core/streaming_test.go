package core

import (
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"reptile/internal/dna"
	"reptile/internal/fastaio"
	"reptile/internal/transport"
)

func collectSinks(np int) ([]*CollectSink, SinkFactory) {
	sinks := make([]*CollectSink, np)
	for i := range sinks {
		sinks[i] = &CollectSink{}
	}
	return sinks, func(rank int) (Sink, error) { return sinks[rank], nil }
}

func TestStreamingMatchesInMemoryRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 3000, 6000)
	opts.Config.ChunkReads = 200 // several streaming rounds per rank

	mem, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	sinks, factory := collectSinks(4)
	stream, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 4, opts, factory)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []readKey
	for _, s := range sinks {
		for i := range s.Reads {
			streamed = append(streamed, readKey{s.Reads[i].Seq, dna.DecodeString(s.Reads[i].Base)})
		}
	}
	sort.Slice(streamed, func(i, j int) bool { return streamed[i].seq < streamed[j].seq })
	want := mem.Corrected()
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d reads, in-memory %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i].seq != want[i].Seq || streamed[i].bases != dna.DecodeString(want[i].Base) {
			t.Fatalf("read %d differs between streaming and in-memory runs", want[i].Seq)
		}
	}
	if stream.Result.BasesCorrected != mem.Result.BasesCorrected {
		t.Errorf("streaming corrected %d bases, in-memory %d", stream.Result.BasesCorrected, mem.Result.BasesCorrected)
	}
}

type readKey struct {
	seq   int64
	bases string
}

func TestStreamingWithoutBalance(t *testing.T) {
	ds, opts := testDataset(t, 1500, 6100)
	opts.LoadBalance = false
	opts.Config.ChunkReads = 100
	sinks, factory := collectSinks(4)
	out, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 4, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sinks {
		total += len(s.Reads)
	}
	if total != len(ds.Reads) {
		t.Errorf("streamed %d reads, want %d", total, len(ds.Reads))
	}
	if out.Result.BasesCorrected == 0 {
		t.Error("corrected nothing")
	}
}

func TestStreamingFromFiles(t *testing.T) {
	ds, opts := testDataset(t, 1500, 6200)
	opts.Config.ChunkReads = 128
	fa, qual, err := fastaio.WriteDataset(t.TempDir(), ds.Name, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	sinks, factory := collectSinks(4)
	out, err := RunStreaming(&FileSource{FastaPath: fa, QualPath: qual}, 4, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	var corrected []readKey
	for _, s := range sinks {
		for i := range s.Reads {
			corrected = append(corrected, readKey{s.Reads[i].Seq, dna.DecodeString(s.Reads[i].Base)})
		}
	}
	if len(corrected) != len(ds.Reads) {
		t.Fatalf("streamed %d reads, want %d", len(corrected), len(ds.Reads))
	}
	if out.Result.BasesCorrected == 0 {
		t.Error("file streaming corrected nothing")
	}
}

func TestStreamingHeuristicsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 1200, 6300)
	opts.Config.ChunkReads = 100
	base, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 4, opts, discardFactory())
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]Heuristics{
		"universal": {Universal: true},
		"repl-both": {ReplicateKmers: true, ReplicateTiles: true},
		"cache":     {RetainReadKmers: true, CacheRemote: true},
	} {
		o := opts
		o.Heuristics = h
		out, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 4, o, discardFactory())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Result.BasesCorrected != base.Result.BasesCorrected {
			t.Errorf("%s: corrected %d, base %d", name, out.Result.BasesCorrected, base.Result.BasesCorrected)
		}
	}
}

func discardFactory() SinkFactory {
	return func(int) (Sink, error) { return &CollectSink{}, nil }
}

func TestStreamingRequiresSink(t *testing.T) {
	_, opts := testDataset(t, 10, 6400)
	eps, err := transport.NewProcGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	if _, err := RunRankStreaming(eps[0], &MemorySource{}, opts, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	ds, opts := testDataset(t, 800, 6600)
	opts.Config.ChunkReads = 128
	dir := t.TempDir()
	factory := func(rank int) (Sink, error) {
		return NewFileSink(fmt.Sprintf("%s/out.rank%d", dir, rank))
	}
	out, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 3, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Every per-rank output pair must parse back, and together they must
	// cover the whole dataset exactly once.
	seen := map[int64]bool{}
	for rank := 0; rank < 3; rank++ {
		prefix := fmt.Sprintf("%s/out.rank%d", dir, rank)
		// Streaming outputs are completion-ordered, not seq-sorted, so
		// parse with the record scanner rather than the sharding reader.
		f, err := os.Open(prefix + ".fa")
		if err != nil {
			t.Fatal(err)
		}
		sc := fastaio.NewScanner(f)
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("rank %d output unreadable: %v", rank, err)
			}
			if seen[rec.Seq] {
				t.Fatalf("read %d appears twice", rec.Seq)
			}
			seen[rec.Seq] = true
			if len(rec.Body) != len(ds.Reads[rec.Seq-1].Base) {
				t.Fatalf("read %d length changed", rec.Seq)
			}
		}
		f.Close()
	}
	if len(seen) != len(ds.Reads) {
		t.Fatalf("outputs cover %d reads, want %d", len(seen), len(ds.Reads))
	}
	if out.Result.BasesCorrected == 0 {
		t.Error("corrected nothing")
	}
}

// TestStreamingOverTCP drives the streaming pipeline across real sockets:
// the chunk-boundary collectives and the live responder share connections.
func TestStreamingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	ds, opts := testDataset(t, 900, 6700)
	opts.Config.ChunkReads = 100
	const np = 3
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	src := &MemorySource{Reads: ds.Reads}
	sinks := make([]*CollectSink, np)
	var wg sync.WaitGroup
	errs := make([]error, np)
	var corrected int64
	var mu sync.Mutex
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := transport.NewTCP(transport.TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			sinks[r] = &CollectSink{}
			out, err := RunRankStreaming(e, src, opts, sinks[r])
			if err != nil {
				errs[r] = err
				return
			}
			mu.Lock()
			corrected += out.Result.BasesCorrected
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	total := 0
	for _, s := range sinks {
		total += len(s.Reads)
	}
	if total != len(ds.Reads) {
		t.Errorf("streamed %d reads over tcp, want %d", total, len(ds.Reads))
	}
	if corrected == 0 {
		t.Error("corrected nothing over tcp")
	}
}

func TestStreamingBoundsMemoryBelowInMemoryRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	// The point of the mode: with retained tables off, peak table memory in
	// streaming mode must not exceed the unbatched in-memory run's peak
	// (which holds the full readsKmer/readsTile tables at the exchange).
	ds, opts := testDataset(t, 3000, 6500)
	opts.Config.ChunkReads = 100
	mem, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 4, opts, discardFactory())
	if err != nil {
		t.Fatal(err)
	}
	mPeak := mem.Run.Max(func(r *statsRank) int64 { return r.PeakMemBytes })
	sPeak := stream.Run.Max(func(r *statsRank) int64 { return r.PeakMemBytes })
	if sPeak > mPeak {
		t.Errorf("streaming peak %d above in-memory peak %d", sPeak, mPeak)
	}
}
