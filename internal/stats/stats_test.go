package stats

import (
	"testing"
	"time"
)

func sampleRun() *Run {
	return &Run{
		Ranks: []Rank{
			{Rank: 0, OwnedKmers: 100, BasesCorrected: 10, KmerLookupsLocal: 5, TileLookupsLocal: 5, KmerLookupsRemote: 2, TileLookupsRemote: 8},
			{Rank: 1, OwnedKmers: 110, BasesCorrected: 30},
			{Rank: 2, OwnedKmers: 90, BasesCorrected: 20},
		},
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRead.String() != "read" || PhaseCorrect.String() != "correct" {
		t.Error("phase names wrong")
	}
	if Phase(99).String() == "" {
		t.Error("out-of-range phase has empty name")
	}
}

func TestAggregations(t *testing.T) {
	r := sampleRun()
	owned := func(rk *Rank) int64 { return rk.OwnedKmers }
	if got := r.Sum(owned); got != 300 {
		t.Errorf("Sum = %d", got)
	}
	if got := r.Max(owned); got != 110 {
		t.Errorf("Max = %d", got)
	}
	if got := r.Min(owned); got != 90 {
		t.Errorf("Min = %d", got)
	}
	spread := r.SpreadPct(owned)
	if spread < 18 || spread > 19 {
		t.Errorf("SpreadPct = %f, want (110-90)/110*100", spread)
	}
}

func TestSpreadPctZero(t *testing.T) {
	r := &Run{Ranks: []Rank{{}, {}}}
	if r.SpreadPct(func(rk *Rank) int64 { return rk.OwnedKmers }) != 0 {
		t.Error("SpreadPct of zeros nonzero")
	}
}

func TestLookupTotals(t *testing.T) {
	rk := &sampleRun().Ranks[0]
	if rk.TotalLocalLookups() != 10 {
		t.Errorf("local = %d", rk.TotalLocalLookups())
	}
	if rk.TotalRemoteLookups() != 10 {
		t.Errorf("remote = %d", rk.TotalRemoteLookups())
	}
}

func TestObserveMem(t *testing.T) {
	var rk Rank
	rk.ObserveMem(100)
	rk.ObserveMem(50)
	rk.ObserveMem(200)
	if rk.PeakMemBytes != 200 {
		t.Errorf("PeakMemBytes = %d", rk.PeakMemBytes)
	}
}

func TestTotalWall(t *testing.T) {
	r := &Run{}
	r.Wall[PhaseRead] = time.Second
	r.Wall[PhaseCorrect] = 2 * time.Second
	if r.TotalWall() != 3*time.Second {
		t.Errorf("TotalWall = %v", r.TotalWall())
	}
}
