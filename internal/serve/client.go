package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"reptile/internal/reads"
	"reptile/internal/reptile"
)

// Client is one front-door connection: Open a session, Correct chunks
// through it, CloseSession, repeat or hang up. A Client is single-issuer —
// one request in flight at a time, like the wire protocol itself.
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	tenant string // tenant of the open session, for typed-error rebuilds
}

// Dial connects to a reptile-serve front door.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// roundTrip sends one request frame and reads its answer.
func (c *Client) roundTrip(op byte, payload []byte) (byte, []byte, error) {
	if err := writeFrame(c.bw, op, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return readFrame(c.br)
}

// Open starts a correction session. A typed rejection (per-tenant capacity,
// server draining) returns as *core.SessionError, matching
// core.ErrSessionRejected exactly like the in-process API.
func (c *Client) Open(tenant string) error {
	op, body, err := c.roundTrip(opOpen, []byte(tenant))
	if err != nil {
		return err
	}
	switch op {
	case opOpenOK:
		c.tenant = tenant
		return nil
	case opErr:
		return decodeErr(body, tenant)
	}
	return fmt.Errorf("serve: open answered op %d", op)
}

// Correct submits one chunk of reads and returns their corrected forms and
// the chunk's correction counters.
func (c *Client) Correct(rs []reads.Read) ([]reads.Read, reptile.Result, error) {
	op, body, err := c.roundTrip(opChunk, reads.EncodeBatch(rs))
	if err != nil {
		return nil, reptile.Result{}, err
	}
	switch op {
	case opChunkOK:
		res, err := decodeResult(body)
		if err != nil {
			return nil, reptile.Result{}, err
		}
		out, err := reads.DecodeBatch(body[resultBytes:])
		if err != nil {
			return nil, reptile.Result{}, err
		}
		return out, res, nil
	case opErr:
		return nil, reptile.Result{}, decodeErr(body, c.tenant)
	}
	return nil, reptile.Result{}, fmt.Errorf("serve: chunk answered op %d", op)
}

// CloseSession finishes the open session. When it returns nil the server
// has fully retired the session: every corrected chunk this client read
// back is acknowledged output, durable against whatever happens to the
// serving group afterwards.
func (c *Client) CloseSession() error {
	op, body, err := c.roundTrip(opClose, nil)
	if err != nil {
		return err
	}
	switch op {
	case opCloseOK:
		c.tenant = ""
		return nil
	case opErr:
		return decodeErr(body, c.tenant)
	}
	return fmt.Errorf("serve: close answered op %d", op)
}

// Close hangs up the connection. A session still open at the server is
// closed by the connection teardown (freeing its admission slot), but its
// final chunks are not acknowledged — call CloseSession first for that.
func (c *Client) Close() error { return c.conn.Close() }
