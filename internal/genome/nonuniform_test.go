package genome

import (
	"math"
	"testing"

	"reptile/internal/dna"
)

func TestTranscriptomeAbundances(t *testing.T) {
	abs := TranscriptomeAbundances(10000, 20, 1)
	if len(abs) != 20 {
		t.Fatalf("%d abundances", len(abs))
	}
	covered := 0
	for i, a := range abs {
		if a.End <= a.Start || a.Weight <= 0 {
			t.Fatalf("abundance %d degenerate: %+v", i, a)
		}
		covered += a.End - a.Start
	}
	if covered != 10000 {
		t.Errorf("regions cover %d of 10000 bases", covered)
	}
	// Zipf weights: max/min should be ~n.
	min, max := math.Inf(1), 0.0
	for _, a := range abs {
		if a.Weight < min {
			min = a.Weight
		}
		if a.Weight > max {
			max = a.Weight
		}
	}
	if max/min < 10 {
		t.Errorf("weight skew %.1f too flat for a Zipf model", max/min)
	}
	if got := TranscriptomeAbundances(100, 0, 1); len(got) != 1 {
		t.Errorf("n=0 produced %d regions", len(got))
	}
}

func TestSimulateNonUniformSkewsCoverage(t *testing.T) {
	g := NewGenome(20000, 2)
	abs := TranscriptomeAbundances(g.Len(), 10, 3)
	ds := SimulateNonUniform("rna", g, 8000, DefaultProfile(80), abs, 4)
	if ds.NumReads() != 8000 || len(ds.Pos) != 8000 {
		t.Fatalf("NumReads=%d Pos=%d", ds.NumReads(), len(ds.Pos))
	}
	var heavy, light Abundance
	heavy.Weight, light.Weight = 0, math.Inf(1)
	for _, a := range abs {
		if a.Weight > heavy.Weight {
			heavy = a
		}
		if a.Weight < light.Weight {
			light = a
		}
	}
	inRegion := func(a Abundance) int {
		n := 0
		for _, p := range ds.Pos {
			if p >= a.Start && p < a.End {
				n++
			}
		}
		return n
	}
	h, l := inRegion(heavy), inRegion(light)
	if h < 3*(l+1) {
		t.Errorf("coverage skew too flat: heavy region %d reads, light %d", h, l)
	}
	for i := range ds.Reads {
		if err := ds.Reads[i].Validate(); err != nil {
			t.Fatalf("read %d invalid: %v", i, err)
		}
		if ds.Pos[i] < 0 || ds.Pos[i] > g.Len()-80 {
			t.Fatalf("read %d position %d out of range", i, ds.Pos[i])
		}
	}
	if ds.TotalErrors() == 0 {
		t.Error("no errors injected")
	}
}

func TestSimulateRecordsPositions(t *testing.T) {
	g := NewGenome(5000, 5)
	ds := Simulate("t", g, 200, DefaultProfile(60), 6)
	if len(ds.Pos) != 200 {
		t.Fatalf("Pos length %d", len(ds.Pos))
	}
	// Each error-free read must match the genome at its recorded position.
	buf := make([]dna.Base, 60)
	for i := range ds.Reads {
		if len(ds.Truth[i]) > 0 {
			continue
		}
		g.Seq.Slice(buf, ds.Pos[i], ds.Pos[i]+60)
		for j := range buf {
			if buf[j] != ds.Reads[i].Base[j] {
				t.Fatalf("read %d does not match genome at recorded position %d", i, ds.Pos[i])
			}
		}
	}
}
