package machine

import (
	"fmt"

	"reptile/internal/stats"
)

// ProjectOpts carries the run-mode details that change message costs.
type ProjectOpts struct {
	// Universal: requests are self-describing (no MPI_Probe on the
	// receiver, slightly larger request payload).
	Universal bool
	// ReqBytes/RespBytes are the request/response payload sizes; zero means
	// the engine's defaults (13-byte request: kind + ID + reply info;
	// 9-byte response: kind + count).
	ReqBytes, RespBytes int
}

func (o ProjectOpts) reqBytes(m Model) int {
	b := o.ReqBytes
	if b == 0 {
		b = 13
	}
	if o.Universal {
		b += m.UniversalExtraBytes
	}
	return b
}

func (o ProjectOpts) respBytes() int {
	if o.RespBytes == 0 {
		return 9
	}
	return o.RespBytes
}

// RankTime is one rank's projected timing decomposition.
type RankTime struct {
	Rank      int
	Construct float64 // Steps I-III: parse + inserts + collective exchange
	Compute   float64 // correction-phase worker compute
	CommWait  float64 // correction-phase round-trip waits
	Serve     float64 // responder-thread service load
	Correct   float64 // max(Compute+CommWait, Serve): two threads per rank
}

// Total returns construction + correction.
func (rt RankTime) Total() float64 { return rt.Construct + rt.Correct }

// Projection is the modeled timing of a whole run.
type Projection struct {
	Shape   Shape
	PerRank []RankTime

	// Phase maxima across ranks (the times the paper's figures plot).
	ConstructTime float64
	CorrectTime   float64
	CommTimeMax   float64
	CommTimeMin   float64
}

// TotalTime returns construction + correction (slowest-rank each).
func (p Projection) TotalTime() float64 { return p.ConstructTime + p.CorrectTime }

// Project converts a run's measured counters into modeled times on shape s.
func (m Model) Project(run *stats.Run, s Shape, opts ProjectOpts) (Projection, error) {
	if err := s.Validate(); err != nil {
		return Projection{}, err
	}
	if len(run.Ranks) != s.Ranks {
		return Projection{}, fmt.Errorf("machine: run has %d ranks, shape %d", len(run.Ranks), s.Ranks)
	}
	slow := m.computeSlowdown(s)
	req, resp := opts.reqBytes(m), opts.respBytes()

	p := Projection{Shape: s, PerRank: make([]RankTime, s.Ranks)}
	for i := range run.Ranks {
		r := &run.Ranks[i]
		rt := RankTime{Rank: r.Rank}

		// Steps I-III: parse input, build hash tables, exchange spectra.
		inserts := float64(r.KmersExtracted + r.TilesExtracted)
		rt.Construct = slow*(float64(r.ReadBases)*m.ReadBaseCost+inserts*m.KmerInsertCost) +
			m.CollectiveTime(s, r.ExchangeBytes)

		// Step IV worker thread: local lookups plus remote round trips.
		// Each round trip also pays the responder's service time — the
		// lookup plus, in probe mode, the MPI_Probe the universal heuristic
		// eliminates; that is where its ~9% win (paper Fig 5) comes from.
		localOps := float64(r.TotalLocalLookups())*m.LookupCost + float64(r.TotalRemoteLookups())*m.CandidateCost
		rt.Compute = slow * localOps
		service := m.LookupCost
		if !opts.Universal {
			service += m.ProbeOverhead
		}
		service *= slow
		for dest, msgs := range r.MsgsTo {
			if msgs == 0 {
				continue
			}
			rt.CommWait += float64(msgs) * (m.RTT(s, r.Rank, dest, req, resp) + service)
		}

		// Step IV responder thread.
		perReq := m.LookupCost
		if !opts.Universal {
			perReq += m.ProbeOverhead
		}
		rt.Serve = slow * float64(r.RequestsServed) * perReq

		worker := rt.Compute + rt.CommWait
		if rt.Serve > worker {
			rt.Correct = rt.Serve
		} else {
			rt.Correct = worker
		}
		p.PerRank[i] = rt
	}

	for i, rt := range p.PerRank {
		if rt.Construct > p.ConstructTime {
			p.ConstructTime = rt.Construct
		}
		if rt.Correct > p.CorrectTime {
			p.CorrectTime = rt.Correct
		}
		if rt.CommWait > p.CommTimeMax {
			p.CommTimeMax = rt.CommWait
		}
		if i == 0 || rt.CommWait < p.CommTimeMin {
			p.CommTimeMin = rt.CommWait
		}
	}
	return p, nil
}

// Efficiency returns the parallel efficiency of scaling from (baseRanks,
// baseTime) to (ranks, time): E = (baseTime*baseRanks)/(time*ranks).
func Efficiency(baseRanks int, baseTime float64, ranks int, time float64) float64 {
	if time <= 0 || ranks <= 0 {
		return 0
	}
	return baseTime * float64(baseRanks) / (time * float64(ranks))
}

// MemPerRankBudget returns the per-rank memory implied by the node memory
// and ranks-per-node (the paper's 512 MB figure at 32 rpn on 16 GB nodes).
func (m Model) MemPerRankBudget(s Shape) int64 {
	return m.MemPerNodeBytes / int64(s.RanksPerNode)
}
