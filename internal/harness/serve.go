package harness

import (
	"fmt"
	"sync"
	"time"

	"reptile/internal/core"
	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/reads"
	"reptile/internal/serve"
	"reptile/internal/transport"
)

// serveJobShards splits the dataset into this many per-client jobs: the
// serving shape the ROADMAP's north star describes is many users each
// correcting their own read set against one shared frozen spectrum, not
// every user re-correcting the whole corpus.
const serveJobShards = 8

// Serve measures the resident spectrum service (DESIGN.md §17): one rank
// group builds and freezes the spectra once, then N concurrent TCP clients
// each run a correction job — one client's shard of the read set — against
// it. The baseline is what each such job costs without the service: a
// sequential reptile-correct batch run, which must ingest the full input to
// build the same spectra and pays the whole build-and-correct every time.
// Enforced bars: every served read is byte-identical to the batch engine's
// correction of the same read, and at >=4 concurrent clients the aggregate
// served throughput is >=2x the sequential batch baseline — the build
// amortization the split lifecycle exists for. Session latency quantiles
// (p50/p99) are reported alongside.
func Serve(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	opts := optionsFor(sc, ds, core.Heuristics{}, true)
	chunk := opts.Config.ChunkReads
	if chunk <= 0 {
		chunk = 4096
	}

	t := &Table{
		ID:    "serve",
		Title: fmt.Sprintf("Resident service: concurrent client jobs vs per-job batch runs, %d ranks (E.Coli)", np),
		Note: "new to this implementation; each job corrects one client's 1/8 shard of the read set; enforced bars: " +
			"every served read byte-identical to the batch engine, and aggregate throughput at >=4 concurrent " +
			"clients >=2x the sequential batch baseline (a batch job must rebuild the spectra from the full input " +
			"every time; the resident service builds once and serves each client only its own reads)",
		Header: []string{"mode", "jobs", "wall", "agg reads/s", "vs batch", "output"},
	}

	// Baseline: one full batch run, build included — the only way to correct
	// any client's shard before the service existed (the spectra need the
	// whole input, and the batch engine corrects everything it reads). Best
	// of 2 so a noisy first sample does not skew the enforced bar.
	var batchWall time.Duration
	var ref *core.Output
	for rep := 0; rep < 2; rep++ {
		t0 := time.Now()
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, fmt.Errorf("batch reference: %w", err)
		}
		wall := time.Since(t0)
		if ref == nil || wall < batchWall {
			ref, batchWall = out, wall
		}
	}
	refBases := make(map[int64]string, len(ds.Reads))
	for _, r := range ref.Corrected() {
		refBases[r.Seq] = dna.DecodeString(r.Base)
	}
	shardSize := (len(ds.Reads) + serveJobShards - 1) / serveJobShards
	// One sequential batch run delivers one job's shard of corrected reads.
	batchRPS := float64(shardSize) / batchWall.Seconds()
	t.Rows = append(t.Rows, []string{
		"batch run (per job)", "1", batchWall.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", batchRPS), "1.0x", "reference",
	})

	// Arm the resident service once: proc rank group, rank 0 is the front
	// door, the rest serve as pure executors until the final drain.
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		return nil, err
	}
	svcs := make([]*core.SpectrumService, np)
	serrs := make([]error, np)
	var swg sync.WaitGroup
	for r := 0; r < np; r++ {
		swg.Add(1)
		go func(r int) {
			defer swg.Done()
			svcs[r], serrs[r] = core.StartService(eps[r], &core.MemorySource{Reads: ds.Reads}, opts)
		}(r)
	}
	swg.Wait()
	for r, err := range serrs {
		if err != nil {
			// reptile-lint:allow errorflow the start failure being reported is the interesting error; this close exists to unblock the group
			transport.CloseGroup(eps)
			return nil, fmt.Errorf("service rank %d: %w", r, err)
		}
	}
	var ewg sync.WaitGroup
	eerrs := make([]error, np)
	for r := 1; r < np; r++ {
		ewg.Add(1)
		go func(r int) {
			defer ewg.Done()
			_, eerrs[r] = svcs[r].ServeExecutor()
		}(r)
	}
	svc := svcs[0]
	srv, err := serve.Listen("127.0.0.1:0", svc)
	if err != nil {
		// reptile-lint:allow errorflow the listen failure being reported is the interesting error; this close exists to unblock the group
		transport.CloseGroup(eps)
		return nil, err
	}

	// Sweep concurrent client counts; client i of a sweep corrects shard
	// i mod serveJobShards, so every sweep serves whole-shard jobs and the
	// byte-identity check covers the full dataset across a sweep.
	var barErr error
	for _, n := range []int{1, 2, 4, 8} {
		var cwg sync.WaitGroup
		cerrs := make([]error, n)
		servedReads := make([]int, n)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			cwg.Add(1)
			go func(i int) {
				defer cwg.Done()
				lo := (i % serveJobShards) * shardSize
				hi := lo + shardSize
				if hi > len(ds.Reads) {
					hi = len(ds.Reads)
				}
				servedReads[i] = hi - lo
				cerrs[i] = serveJob(srv.Addr(), fmt.Sprintf("job-%d-%d", n, i), ds.Reads[lo:hi], chunk, refBases)
			}(i)
		}
		cwg.Wait()
		wall := time.Since(t0)
		total := 0
		for i, err := range cerrs {
			if err != nil {
				return t, fmt.Errorf("%d clients: job %d: %w", n, i, err)
			}
			total += servedReads[i]
		}
		aggRPS := float64(total) / wall.Seconds()
		ratio := aggRPS / batchRPS
		t.Rows = append(t.Rows, []string{
			"resident service", fmt.Sprintf("%d", n), wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", aggRPS), fmt.Sprintf("%.1fx", ratio), "identical",
		})
		if n >= 4 && ratio < 2 && barErr == nil {
			barErr = fmt.Errorf("serve: %d concurrent clients reach %.0f reads/s vs %.0f for sequential batch runs (%.1fx), bar is >=2x", n, aggRPS, batchRPS, ratio)
		}
	}

	sv := svc.Stats()
	t.Rows = append(t.Rows, []string{
		"session latency", fmt.Sprintf("%d", sv.Sessions),
		fmt.Sprintf("p50=%v p99=%v", sv.P50.Round(time.Microsecond), sv.P99.Round(time.Microsecond)),
		"-", "-", "-",
	})

	srv.Shutdown()
	if _, err := svc.Drain(); err != nil {
		return t, fmt.Errorf("drain: %w", err)
	}
	ewg.Wait()
	// reptile-lint:allow errorflow the group has already drained cleanly; endpoint close errors carry no signal after quiesce
	transport.CloseGroup(eps)
	for r, err := range eerrs {
		if err != nil {
			return t, fmt.Errorf("executor rank %d: %w", r, err)
		}
	}
	if barErr != nil {
		return t, barErr
	}
	return t, nil
}

// serveJob runs one client's correction job over the front door and checks
// every served read against the batch reference.
func serveJob(addr, tenant string, job []reads.Read, chunk int, refBases map[int64]string) error {
	cl, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Open(tenant); err != nil {
		return err
	}
	served := 0
	for lo := 0; lo < len(job); lo += chunk {
		hi := lo + chunk
		if hi > len(job) {
			hi = len(job)
		}
		out, _, err := cl.Correct(job[lo:hi])
		if err != nil {
			return err
		}
		for _, r := range out {
			if dna.DecodeString(r.Base) != refBases[r.Seq] {
				return fmt.Errorf("served read %d differs from the batch engine's correction", r.Seq)
			}
		}
		served += len(out)
	}
	if err := cl.CloseSession(); err != nil {
		return err
	}
	if served != len(job) {
		return fmt.Errorf("served %d reads of a %d-read job", served, len(job))
	}
	return nil
}
