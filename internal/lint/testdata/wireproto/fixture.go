// Package fixture exercises the wireproto analyzer: a healthy registry, a
// tag that is sent but never received, a tag that is decoded but never
// sent, and a dead payload kind.
package fixture

import "errors"

const (
	tagGood       = 1
	tagOrphanSend = 2 // want "no receive/decode path"
	tagOrphanRecv = 3 // want "no send/encode path"
	tagCtl        = 4

	kindUsed byte = 0
	kindDead byte = 1 // want "no send/encode path" want "no receive/decode path"
)

// endpointish stands in for the transport Endpoint surface.
type endpointish interface {
	Send(to, tag int, data []byte) error
	Recv(tag int) ([]byte, error)
}

// encodeThing is the producer side of the fixture protocol.
func encodeThing(kind byte) (int, []byte) {
	if kind == kindUsed {
		return tagGood, nil
	}
	return tagOrphanSend, nil
}

// decodeThing is the consumer side; note it never handles tagOrphanSend.
func decodeThing(tag int) (byte, error) {
	switch tag {
	case tagGood:
		return kindUsed, nil
	case tagOrphanRecv:
		return 0, nil
	}
	return 0, errors.New("fixture: bad tag")
}

// ship covers the direct Send/Recv evidence rules (no encoder needed).
func ship(e endpointish) error {
	if err := e.Send(0, tagCtl, nil); err != nil {
		return err
	}
	_, err := e.Recv(tagCtl)
	return err
}
