package fastaio

import "os"

// openAt opens a file for random access in tests.
func openAt(path string) (*os.File, error) { return os.Open(path) }
