# Local developer entry points, kept in lockstep with .github/workflows/ci.yml
# so `make ci` reproduces exactly what the gate runs.

GO ?= go

.PHONY: build test race lint vet ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

## race: the -race gate CI runs; -short skips the heavyweight end-to-end
## core tests (guarded with testing.Short) to keep it fast.
race:
	$(GO) test -race -short -count=1 ./...

## lint: the project-specific static analyzers (see internal/lint and the
## "Concurrency invariants" section of DESIGN.md).
lint:
	$(GO) run ./cmd/reptile-lint ./...

vet:
	$(GO) vet ./...

ci: build vet lint test race
