package reptile

import (
	"reptile/internal/kmer"
	"reptile/internal/spectrum"
)

// Oracle answers spectrum count queries during correction. The sequential
// corrector is written against this interface so the distributed engine can
// substitute an oracle that resolves misses over the message-passing layer
// (paper Step IV): the algorithm is identical, only the lookup path changes.
type Oracle interface {
	// KmerCount returns the global count of a k-mer, with ok=false when the
	// k-mer is absent from the (pruned) spectrum.
	KmerCount(id kmer.ID) (count uint32, ok bool)
	// TileCount is the tile-spectrum analogue.
	TileCount(id kmer.ID) (count uint32, ok bool)
}

// Prefetcher is an optional Oracle extension: an oracle that resolves
// misses over a message-passing layer can batch-resolve a set of ids it is
// about to be asked for, so the subsequent KmerCount/TileCount calls are
// answered from a local buffer instead of one synchronous round trip each.
// Prefetching is purely a latency/message-count hint — the corrector's
// results must be identical whether or not the oracle implements it, and
// the oracle may ignore any or all hinted ids. The id slices are scratch
// buffers; implementations must not retain them.
type Prefetcher interface {
	PrefetchKmers(ids []kmer.ID)
	PrefetchTiles(ids []kmer.ID)
}

// LocalOracle serves counts from in-memory stores; the replicated-spectrum
// and sequential modes use it directly.
type LocalOracle struct {
	Kmers spectrum.Lookuper
	Tiles spectrum.Lookuper

	// KmerLookups/TileLookups count queries, mirroring the per-rank lookup
	// statistics the paper reports.
	KmerLookups int64
	TileLookups int64
}

// KmerCount implements Oracle.
func (o *LocalOracle) KmerCount(id kmer.ID) (uint32, bool) {
	o.KmerLookups++
	return o.Kmers.Count(id)
}

// TileCount implements Oracle.
func (o *LocalOracle) TileCount(id kmer.ID) (uint32, bool) {
	o.TileLookups++
	return o.Tiles.Count(id)
}
