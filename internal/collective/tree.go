package collective

import (
	"encoding/binary"
	"fmt"
)

// Tree algorithms: the flat star implementations in collective.go serialize
// np-1 messages through the root, which costs O(np) latency; the binomial
// trees below run in O(log np) rounds, which matters at the multi-hundred-
// rank shapes of the scaling experiments. Bcast, Gather, Barrier and the
// reductions built on them use the trees; the *Flat variants remain for the
// ablation benches.

// BcastTree distributes root's buffer with a binomial tree.
func (c *Comm) BcastTree(root int, buf []byte) ([]byte, error) {
	np, me := c.Size(), c.Rank()
	tag := c.nextTag()
	rel := (me - root + np) % np

	// Receive from the parent (the rank that differs at our lowest set bit).
	mask := 1
	for mask < np {
		if rel&mask != 0 {
			m, err := c.E.Recv(tag)
			if err != nil {
				return nil, err
			}
			buf = m.Data
			break
		}
		mask <<= 1
	}
	// Forward to children at decreasing distances.
	mask >>= 1
	for mask > 0 {
		if rel+mask < np {
			dst := (rel + mask + root) % np
			if err := c.E.Send(dst, tag, buf); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return buf, nil
}

// frame layout for tree gather: rank int32 | len uint32 | payload, repeated.
func appendFrame(dst []byte, rank int, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(int32(rank)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func parseFrames(buf []byte, out [][]byte) error {
	for len(buf) > 0 {
		if len(buf) < 8 {
			return fmt.Errorf("collective: truncated gather frame header")
		}
		rank := int(int32(binary.LittleEndian.Uint32(buf[0:4])))
		n := int(binary.LittleEndian.Uint32(buf[4:8]))
		buf = buf[8:]
		if rank < 0 || rank >= len(out) {
			return fmt.Errorf("collective: gather frame from rank %d of %d", rank, len(out))
		}
		if len(buf) < n {
			return fmt.Errorf("collective: truncated gather frame body")
		}
		out[rank] = buf[:n:n]
		buf = buf[n:]
	}
	return nil
}

// GatherTree collects every rank's buffer at root along a binomial tree:
// each node absorbs its subtree's frames, then ships the batch to its
// parent. Non-root ranks receive nil.
func (c *Comm) GatherTree(root int, buf []byte) ([][]byte, error) {
	np, me := c.Size(), c.Rank()
	tag := c.nextTag()
	rel := (me - root + np) % np

	acc := appendFrame(nil, me, buf)
	// Absorb children: ranks rel+mask for each mask below our lowest set
	// bit (or all masks for the root).
	children := 0
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		if rel+mask < np {
			children++
		}
	}
	for i := 0; i < children; i++ {
		m, err := c.E.Recv(tag)
		if err != nil {
			return nil, err
		}
		acc = append(acc, m.Data...)
	}
	// Ship to the parent, unless we are the root.
	if rel != 0 {
		parent := rel
		mask := 1
		for rel&mask == 0 {
			mask <<= 1
		}
		parent = (rel - mask + root + np) % np
		return nil, c.E.Send(parent, tag, acc)
	}
	out := make([][]byte, np)
	if err := parseFrames(acc, out); err != nil {
		return nil, err
	}
	return out, nil
}

// BarrierDissemination synchronizes all ranks in ceil(log2 np) rounds: in
// round k every rank signals (rank+2^k) mod np and waits for a signal from
// (rank-2^k) mod np. Rounds use distinct tags so an early peer's round-k+1
// signal cannot satisfy a round-k wait.
func (c *Comm) BarrierDissemination() error {
	np := c.Size()
	if np == 1 {
		return nil
	}
	me := c.Rank()
	for dist := 1; dist < np; dist <<= 1 {
		tag := c.nextTag()
		to := (me + dist) % np
		if err := c.E.Send(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.E.Recv(tag); err != nil {
			return err
		}
	}
	return nil
}
