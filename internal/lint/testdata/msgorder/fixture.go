// Package fixture exercises the msgorder analyzer against a self-contained
// stand-in for the msgplane registry: a Tag type, Spec literals registered
// from init, and Send/Recv/Handle call sites.
package fixture

// Tag mirrors msgplane.Tag.
type Tag int

// Direction mirrors msgplane.Direction.
type Direction int

// Directions.
const (
	DirRequest Direction = iota
	DirResponse
	DirControl
)

// Spec mirrors msgplane.Spec.
type Spec struct {
	Tag    Tag
	Name   string
	Dir    Direction
	Direct bool
}

// Conn is a minimal endpoint.
type Conn interface{ Rank() int }

// Router demuxes router-owned tags.
type Router struct{}

// Register records specs in the registry.
func Register(specs ...Spec) {}

// Send ships one frame.
func Send(e Conn, to int, t Tag, payload []byte) error { return nil }

// Recv blocks for one Direct frame.
func Recv(e Conn, t Tag) error { return nil }

// Handle claims a router-owned tag.
func (r *Router) Handle(t Tag, h func() error) {}

// The protocol's tags.
const (
	tagGoodReq  Tag = 1
	tagGoodResp Tag = 2
	tagDirect   Tag = 3
	tagStray    Tag = 4
	tagLate     Tag = 5
)

func init() {
	Register(
		Spec{Tag: tagGoodReq, Name: "goodReq", Dir: DirRequest},
		Spec{Tag: tagGoodResp, Name: "goodResp", Dir: DirResponse},
		Spec{Tag: tagDirect, Name: "direct", Dir: DirResponse, Direct: true},
	)
}

// lateRegister is never reached from init, so tagLate is registered too
// late for the registry ordering guarantee.
func lateRegister() {
	Register(Spec{Tag: tagLate, Name: "late", Dir: DirControl})
}

func handler() error { return nil }

// drive exercises every use rule.
func drive(e Conn, r *Router) error {
	r.Handle(tagGoodReq, handler)
	if err := Send(e, 1, tagGoodResp, nil); err != nil {
		return err
	}
	if err := Send(e, 1, tagStray, nil); err != nil { // want "never registered"
		return err
	}
	if err := Send(e, 0, tagLate, nil); err != nil { // want "registered only outside init"
		return err
	}
	r.Handle(tagDirect, handler)  // want "Direct tag tagDirect must not get a Router handler"
	if err := Recv(e, tagGoodResp); err != nil { // want "but taken with a blocking Recv"
		return err
	}
	return Recv(e, tagDirect)
}
