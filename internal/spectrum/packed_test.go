package spectrum

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"time"

	"reptile/internal/kmer"
)

// randomWorkload drives the same random insert/prune workload into a
// HashStore and returns it; the PackedStore frozen from it must agree on
// every observable.
func randomWorkload(rng *rand.Rand, ops int) *HashStore {
	h := NewHash(0)
	for i := 0; i < ops; i++ {
		// Small ID space forces collisions and repeated IDs; include 0 (the
		// out-of-band slot) and the all-ones sentinel explicitly.
		var id kmer.ID
		switch rng.Intn(10) {
		case 0:
			id = 0
		case 1:
			id = ^kmer.ID(0)
		default:
			id = kmer.ID(rng.Int63n(512))
		}
		switch rng.Intn(5) {
		case 0:
			h.Set(id, uint32(rng.Intn(300)))
		case 1:
			h.Delete(id)
		default:
			h.Add(id, uint32(1+rng.Intn(4)))
		}
	}
	if rng.Intn(2) == 0 {
		h.Prune(uint32(1 + rng.Intn(6)))
	}
	return h
}

// checkEquivalent asserts every Lookuper observable of p matches h: Len,
// Count/presence for present and absent IDs, and the Each enumeration set.
func checkEquivalent(t *testing.T, h *HashStore, p *PackedStore) {
	t.Helper()
	if p.Len() != h.Len() {
		t.Fatalf("Len: packed %d, hash %d", p.Len(), h.Len())
	}
	want := make(map[kmer.ID]uint32, h.Len())
	h.Each(func(e Entry) bool { want[e.ID] = e.Count; return true })
	for id, cnt := range want {
		got, ok := p.Count(id)
		if !ok || got != cnt {
			t.Fatalf("Count(%d) = %d,%v want %d,true", id, got, ok, cnt)
		}
	}
	// Absent probes, including the empty-slot key and the sentinel.
	for _, id := range []kmer.ID{0, 1, 2, 511, ^kmer.ID(0), 1 << 40} {
		if _, there := want[id]; there {
			continue
		}
		if got, ok := p.Count(id); ok {
			t.Fatalf("Count(%d) = %d,true for absent id", id, got)
		}
	}
	seen := make(map[kmer.ID]uint32, p.Len())
	p.Each(func(e Entry) bool {
		if _, dup := seen[e.ID]; dup {
			t.Fatalf("Each enumerated id %d twice", e.ID)
		}
		seen[e.ID] = e.Count
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Each enumerated %d entries, want %d", len(seen), len(want))
	}
	for id, cnt := range want {
		if seen[id] != cnt {
			t.Fatalf("Each entry %d count %d, want %d", id, seen[id], cnt)
		}
	}
}

func TestPackedEquivalentToHashStoreRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomWorkload(rng, 400)
		p := NewPacked(h.Entries())
		checkEquivalent(t, h, p)
	}
}

func TestFreezeMergesDisjointShards(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		whole := randomWorkload(rng, 600)
		// Split into disjoint shards the way the parallel build does.
		const shards = 4
		parts := make([]*HashStore, shards)
		for i := range parts {
			parts[i] = NewHash(0)
		}
		whole.Each(func(e Entry) bool {
			parts[kmer.HashID(e.ID)%shards].Set(e.ID, e.Count)
			return true
		})
		p := Freeze(parts...)
		checkEquivalent(t, whole, p)
		for i, part := range parts {
			if part.Len() != 0 {
				t.Fatalf("shard %d still holds %d entries after Freeze", i, part.Len())
			}
		}
	}
}

func TestNewPackedSumsDuplicates(t *testing.T) {
	p := NewPacked([]Entry{{ID: 7, Count: 2}, {ID: 7, Count: 3}, {ID: 0, Count: 1}, {ID: 0, Count: 4}})
	if c, ok := p.Count(7); !ok || c != 5 {
		t.Errorf("Count(7) = %d,%v want 5,true", c, ok)
	}
	if c, ok := p.Count(0); !ok || c != 5 {
		t.Errorf("Count(0) = %d,%v want 5,true", c, ok)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d want 2", p.Len())
	}
}

func TestPackedEmpty(t *testing.T) {
	p := NewPacked(nil)
	if p.Len() != 0 {
		t.Errorf("empty Len = %d", p.Len())
	}
	if _, ok := p.Count(42); ok {
		t.Error("empty store found id 42")
	}
	if _, ok := p.Count(0); ok {
		t.Error("empty store found id 0")
	}
	p.Each(func(Entry) bool { t.Error("empty store enumerated an entry"); return false })
	if got := p.Entries(); len(got) != 0 {
		t.Errorf("empty Entries = %v", got)
	}
}

func TestPackedEntriesSortedAndReusable(t *testing.T) {
	h := randomWorkload(rand.New(rand.NewSource(7)), 300)
	p := NewPacked(h.Entries())
	buf := make([]Entry, 0, 64)
	got := p.EntriesInto(buf)
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatalf("EntriesInto not strictly sorted at %d", i)
		}
	}
	if len(got) != p.Len() {
		t.Fatalf("EntriesInto returned %d entries, Len %d", len(got), p.Len())
	}
}

// TestFrozenWritesPanic is the freeze invariant: every mutator on a packed
// store, and every mutator on a released HashStore, must panic loudly
// instead of corrupting or silently dropping writes.
func TestFrozenWritesPanic(t *testing.T) {
	p := NewPacked([]Entry{{ID: 3, Count: 1}})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PackedStore.Add", func() { p.Add(1, 1) })
	mustPanic("PackedStore.Set", func() { p.Set(1, 1) })
	mustPanic("PackedStore.Delete", func() { p.Delete(3) })
	mustPanic("PackedStore.Clear", func() { p.Clear() })
	mustPanic("PackedStore.Prune", func() { p.Prune(1) })

	h := NewHash(0)
	h.Add(3, 2)
	h.Release()
	mustPanic("HashStore.Add", func() { h.Add(1, 1) })
	mustPanic("HashStore.Set", func() { h.Set(1, 1) })
	mustPanic("HashStore.Delete", func() { h.Delete(3) })
	mustPanic("HashStore.Clear", func() { h.Clear() })
	mustPanic("HashStore.Prune", func() { h.Prune(1) })
	// Reads still work and see an empty store.
	if h.Len() != 0 {
		t.Errorf("released store Len = %d", h.Len())
	}
	if _, ok := h.Count(3); ok {
		t.Error("released store still finds id 3")
	}
}

// TestExportImportSlabsRoundTrip: an imported slab image must be
// observably identical to the exporter — same Len, same Count for every
// present and absent probe — because failover lookups hit the replica with
// the owner's exact probe sequence. Images are self-delimiting, so two
// concatenated stores (the k-mer + tile pair one re-replication push
// carries) must come back as two stores with nothing left over.
func TestExportImportSlabsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomWorkload(rng, 800)
	b := randomWorkload(rng, 300)
	pa, pb := NewPacked(a.Entries()), NewPacked(b.Entries())

	buf := pa.ExportSlabs(nil)
	buf = pb.ExportSlabs(buf)
	ia, rest, err := ImportPackedSlabs(buf)
	if err != nil {
		t.Fatal(err)
	}
	ib, rest, err := ImportPackedSlabs(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after importing both images", len(rest))
	}
	checkEquivalent(t, a, ia)
	checkEquivalent(t, b, ib)

	// The empty store round-trips too (a rank can own zero k-mers).
	empty, rest, err := ImportPackedSlabs(NewPacked(nil).ExportSlabs(nil))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 || len(rest) != 0 {
		t.Fatalf("empty round-trip: len %d, %d bytes rest", empty.Len(), len(rest))
	}

	// Truncated and corrupt images are rejected, never mis-decoded.
	if _, _, err := ImportPackedSlabs(buf[:slabHdrBytes-1]); err == nil {
		t.Error("short header accepted")
	}
	if _, _, err := ImportPackedSlabs(buf[:slabHdrBytes+5]); err == nil {
		t.Error("truncated slab accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 3 // 3 slots: not a power of two
	if _, _, err := ImportPackedSlabs(bad); err == nil {
		t.Error("non-power-of-two slot count accepted")
	}
}

// TestExportImportSlabsRejectsHostileHeader pins the pre-allocation
// validation: a corrupt header promising an absurd slot count must be
// rejected as a typed *SlabImageError before any slab is allocated —
// including slot counts chosen so slots*12 wraps uint64 and would have
// slipped past a need-vs-len comparison into a multi-GB make().
func TestExportImportSlabsRejectsHostileHeader(t *testing.T) {
	hostile := func(slots, n uint64) []byte {
		b := make([]byte, slabHdrBytes)
		binary.LittleEndian.PutUint64(b[0:8], slots)
		binary.LittleEndian.PutUint64(b[8:16], n)
		return b
	}
	cases := []struct {
		name string
		img  []byte
	}{
		{"huge power-of-two slots", hostile(1<<40, 10)},
		{"slots*12 wraps uint64", hostile(1<<61, 10)},
		{"max power of two", hostile(1<<63, 10)},
		{"entries exceed slots", hostile(4, 6)},
		{"bad hasZero flag", func() []byte { b := hostile(0, 0); b[20] = 7; return b }()},
		{"empty buffer", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, _, err := ImportPackedSlabs(tc.img)
				done <- err
			}()
			// A rejected header returns ~instantly; a 2^40-slot allocation
			// would stall (or OOM) long before this deadline.
			select {
			case err := <-done:
				var sie *SlabImageError
				if !errors.As(err, &sie) {
					t.Fatalf("got %v, want *SlabImageError", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("ImportPackedSlabs did not fail fast on a hostile header")
			}
		})
	}
	// The legit truncation path reports the typed error too.
	img := NewPacked([]Entry{{ID: 7, Count: 3}}).ExportSlabs(nil)
	var sie *SlabImageError
	if _, _, err := ImportPackedSlabs(img[:len(img)-1]); !errors.As(err, &sie) {
		t.Fatalf("truncated image: got %v, want *SlabImageError", err)
	}
}

// TestFreezeDropsMemBytes is the Clear+Prune retention regression: a pruned
// map used to keep its bucket array (and the 2x estimate kept charging for
// it); after Freeze the mutable side must account ~nothing and the packed
// side must undercut the map estimate at the build's load factor.
func TestFreezeDropsMemBytes(t *testing.T) {
	h := NewHash(0)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(kmer.ID(i*2654435761+1), uint32(1+i%7))
	}
	before := h.MemBytes()
	p := Freeze(h)
	if after := h.MemBytes(); after >= before/10 {
		t.Errorf("released HashStore still accounts %d bytes (was %d)", after, before)
	}
	if p.Len() != n {
		t.Fatalf("packed Len = %d want %d", p.Len(), n)
	}
	ratio := float64(before) / float64(p.MemBytes())
	if ratio < 1.5 {
		t.Errorf("packed MemBytes %d not >=1.5x below map estimate %d (ratio %.2f)", p.MemBytes(), before, ratio)
	}
}

func FuzzPackedMatchesHash(f *testing.F) {
	f.Add(int64(1), uint16(50))
	f.Add(int64(99), uint16(500))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		rng := rand.New(rand.NewSource(seed))
		h := randomWorkload(rng, int(ops)%1000)
		p := NewPacked(h.Entries())
		checkEquivalent(t, h, p)
	})
}
