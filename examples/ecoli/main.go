// E.Coli pipeline: the full workflow the paper runs on its smallest
// dataset — write the dataset to fasta+qual files, correct it through the
// file-sharding path with static load balancing, report per-rank balance,
// accuracy, and projected BlueGene/Q times.
package main

import (
	"fmt"
	"log"
	"os"

	"reptile"
	"reptile/internal/fastaio"
)

func main() {
	// Error-localized input: stretches of the file carry 8x the error rate,
	// the condition that defeats naive chunked work division (paper Fig 4).
	ds := reptile.EColiSim.Scaled(0.08).BuildLocalized()
	fmt.Printf("dataset: %d reads at %.0fX, %d errors (clustered in file stretches)\n",
		ds.NumReads(), ds.Coverage(), ds.TotalErrors())

	dir, err := os.MkdirTemp("", "reptile-ecoli")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fa, qual, err := fastaio.WriteDataset(dir, ds.Name, ds.Reads)
	if err != nil {
		log.Fatal(err)
	}

	const np = 16
	for _, balanced := range []bool{false, true} {
		opts := reptile.DefaultOptions()
		opts.Config = reptile.ConfigForCoverage(ds.Coverage())
		opts.LoadBalance = balanced

		out, err := reptile.Run(&reptile.FileSource{FastaPath: fa, QualPath: qual}, np, opts)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := ds.Evaluate(out.Corrected())
		if err != nil {
			log.Fatal(err)
		}

		mode := "imbalanced"
		if balanced {
			mode = "balanced  "
		}
		min := out.Run.Min(func(r *reptile.RankStats) int64 { return r.BasesCorrected })
		max := out.Run.Max(func(r *reptile.RankStats) int64 { return r.BasesCorrected })
		fmt.Printf("\n[%s] errors corrected per rank: min=%d max=%d (spread %.0f%%)\n",
			mode, min, max, out.Run.SpreadPct(func(r *reptile.RankStats) int64 { return r.BasesCorrected }))
		fmt.Printf("[%s] accuracy: %v\n", mode, acc)

		// Project onto BG/Q at 32 ranks/node, as the paper runs.
		shape := reptile.MachineShape{Ranks: np, RanksPerNode: 16, ThreadsPerRank: 2}
		proj, err := reptile.Project(reptile.BGQ(), &out.Run, shape, opts.Heuristics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] projected BG/Q: construct %.2fs, correct %.2fs (slowest-rank comm %.2fs)\n",
			mode, proj.ConstructTime, proj.CorrectTime, proj.CommTimeMax)
	}
}
