// Package kmer defines integer identifiers for k-mers and tiles and the
// routines that extract them from reads.
//
// A k-mer of length k <= 32 is packed into a uint64 ID, two bits per base,
// first base in the highest-order position. Tiles — the concatenation of two
// k-mers with a fixed overlap, Reptile's unit of correction — use the same
// encoding with length 2k-overlap, so a single ID type serves both spectra.
// The paper stores k-mer IDs as integers and tile IDs as long integers for
// exactly this reason (Section III, Step II).
package kmer

import (
	"fmt"

	"reptile/internal/dna"
)

// MaxLen is the longest sequence an ID can hold (32 bases * 2 bits).
const MaxLen = 32

// ID is a packed 2-bit-per-base identifier for a k-mer or a tile.
type ID uint64

// Spec fixes the geometry of k-mers and tiles for a run. K is the k-mer
// length; Overlap is how many bases the two k-mers of a tile share.
type Spec struct {
	K       int // k-mer length, 1..32
	Overlap int // bases shared by a tile's two k-mers, 0..K-1
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.K < 1 || s.K > MaxLen {
		return fmt.Errorf("kmer: K=%d out of range [1,%d]", s.K, MaxLen)
	}
	if s.Overlap < 0 || s.Overlap >= s.K {
		return fmt.Errorf("kmer: Overlap=%d out of range [0,%d)", s.Overlap, s.K)
	}
	if s.TileLen() > MaxLen {
		return fmt.Errorf("kmer: tile length %d exceeds %d", s.TileLen(), MaxLen)
	}
	return nil
}

// TileLen is the number of bases a tile covers: 2K - Overlap.
func (s Spec) TileLen() int { return 2*s.K - s.Overlap }

// Step is the distance between consecutive tile start positions. It equals
// K - Overlap, so the second k-mer of tile i is the first k-mer of tile i+1.
func (s Spec) Step() int { return s.K - s.Overlap }

// Mask returns the bit mask covering an n-base ID.
func Mask(n int) uint64 {
	if n >= MaxLen {
		return ^uint64(0)
	}
	return (1 << uint(2*n)) - 1
}

// Encode packs seq (length <= 32) into an ID. It panics on oversize input;
// callers always work with fixed k/tile lengths.
//
// reptile-lint:hotpath
func Encode(seq []dna.Base) ID {
	if len(seq) > MaxLen {
		panic(fmt.Sprintf("kmer: Encode of %d bases exceeds %d", len(seq), MaxLen))
	}
	var id ID
	for _, b := range seq {
		id = id<<2 | ID(b)
	}
	return id
}

// Decode unpacks an n-base ID into a fresh base slice.
func Decode(id ID, n int) []dna.Base {
	out := make([]dna.Base, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = dna.Base(id & 3)
		id >>= 2
	}
	return out
}

// String is a debugging helper; IDs do not know their own length, so this
// renders the low 32 bases without leading-A trimming.
func (id ID) String() string { return fmt.Sprintf("kmer.ID(%#x)", uint64(id)) }

// BaseAt returns the base at position i of an n-base ID (position 0 is the
// first/leftmost base).
func (id ID) BaseAt(i, n int) dna.Base {
	return dna.Base(id >> uint(2*(n-1-i)) & 3)
}

// WithBase returns a copy of the n-base ID with position i substituted by b.
func (id ID) WithBase(i, n int, b dna.Base) ID {
	shift := uint(2 * (n - 1 - i))
	return id&^(3<<shift) | ID(b)<<shift
}

// Append shifts the n-base ID left by one base, appends b, and re-masks to
// n bases. This is the rolling-extraction step.
func (id ID) Append(b dna.Base, n int) ID {
	return (id<<2 | ID(b)) & ID(Mask(n))
}

// Prefix returns the first n bases of an m-base ID as an n-base ID.
func (id ID) Prefix(n, m int) ID { return id >> uint(2*(m-n)) }

// Suffix returns the last n bases of an ID as an n-base ID.
func (id ID) Suffix(n int) ID { return id & ID(Mask(n)) }

// ReverseComplement returns the reverse complement of an n-base ID.
//
// reptile-lint:hotpath
func (id ID) ReverseComplement(n int) ID {
	var rc ID
	for i := 0; i < n; i++ {
		rc = rc<<2 | (id & 3) ^ 3
		id >>= 2
	}
	return rc
}

// Canonical returns the smaller of the ID and its reverse complement, which
// merges the two strands of the same genomic locus into one spectrum key.
//
// reptile-lint:hotpath
func (id ID) Canonical(n int) ID {
	rc := id.ReverseComplement(n)
	if rc < id {
		return rc
	}
	return id
}

// Hamming returns the Hamming distance between two n-base IDs.
//
// reptile-lint:hotpath
func Hamming(a, b ID, n int) int {
	x := uint64(a ^ b)
	d := 0
	for i := 0; i < n; i++ {
		if x&3 != 0 {
			d++
		}
		x >>= 2
	}
	return d
}

// TileOf combines two k-mer IDs that overlap by spec.Overlap bases into the
// tile ID covering both. The caller guarantees the k-mers really do overlap
// (i.e. first's suffix equals second's prefix); TileOf does not re-check.
func (s Spec) TileOf(first, second ID) ID {
	extra := s.K - s.Overlap // bases second adds beyond first
	return first<<uint(2*extra) | second.Suffix(extra)
}

// Kmers splits an n-base tile ID back into its two k-mer IDs.
func (s Spec) Kmers(tile ID) (first, second ID) {
	n := s.TileLen()
	first = tile.Prefix(s.K, n)
	second = tile.Suffix(s.K)
	return first, second
}

// EachKmer calls fn with the start position and ID of every k-mer in read,
// in order. Reads shorter than K produce no calls.
//
// reptile-lint:hotpath
func (s Spec) EachKmer(read []dna.Base, fn func(pos int, id ID)) {
	if len(read) < s.K {
		return
	}
	id := Encode(read[:s.K])
	fn(0, id)
	for i := s.K; i < len(read); i++ {
		id = id.Append(read[i], s.K)
		fn(i-s.K+1, id)
	}
}

// EachTile calls fn with the start position and ID of every tile in read.
// Tiles start at 0, Step, 2*Step, ... as long as a full tile fits; this is
// the walk the corrector follows, so consecutive tiles share one k-mer.
func (s Spec) EachTile(read []dna.Base, fn func(pos int, id ID)) {
	s.EachTileStep(read, s.Step(), fn)
}

// EachTileStep is EachTile with an explicit stride. Spectrum construction
// uses stride 1 so every tile window occurring in any read is counted —
// otherwise a correction walk whose phase differs from the extraction phase
// would find no support for perfectly genomic tiles.
//
// Every stride rolls the window one base at a time (O(1) per position)
// instead of re-packing tl bases per visited tile: for stride > 1 the
// window still advances base-by-base, the callback just fires only at
// stride positions. With the corrector's stride (Step = K - Overlap, i.e.
// 8 against a 20-base tile) that is Step appends per tile instead of a
// 20-base re-encode.
//
// reptile-lint:hotpath
func (s Spec) EachTileStep(read []dna.Base, step int, fn func(pos int, id ID)) {
	if step < 1 {
		panic(fmt.Sprintf("kmer: non-positive tile step %d", step))
	}
	tl := s.TileLen()
	if tl > len(read) {
		return
	}
	id := Encode(read[:tl])
	fn(0, id)
	if step == 1 {
		for p := 1; p+tl <= len(read); p++ {
			id = id.Append(read[p+tl-1], tl)
			fn(p, id)
		}
		return
	}
	for p := step; p+tl <= len(read); p += step {
		for q := p + tl - step; q < p+tl; q++ {
			id = id.Append(read[q], tl)
		}
		fn(p, id)
	}
}

// AppendTiles appends the ID of every tile the correction walk visits
// (stride Step, starting at 0) to dst and returns it. It is the
// callback-free twin of EachTile for hot paths that want the ids in a
// reusable buffer without a per-call closure; the window rolls exactly as
// in EachTileStep.
//
// reptile-lint:hotpath
func (s Spec) AppendTiles(read []dna.Base, dst []ID) []ID {
	tl, step := s.TileLen(), s.Step()
	if tl > len(read) {
		return dst
	}
	id := Encode(read[:tl])
	dst = append(dst, id)
	for p := step; p+tl <= len(read); p += step {
		for q := p + tl - step; q < p+tl; q++ {
			id = id.Append(read[q], tl)
		}
		dst = append(dst, id)
	}
	return dst
}

// TileStarts returns the tile start positions EachTile would visit for a
// read of length n.
func (s Spec) TileStarts(n int) []int {
	var out []int
	tl := s.TileLen()
	for p := 0; p+tl <= n; p += s.Step() {
		out = append(out, p)
	}
	return out
}

// KmersPerRead returns how many k-mers a read of length n yields.
func (s Spec) KmersPerRead(n int) int {
	if n < s.K {
		return 0
	}
	return n - s.K + 1
}
