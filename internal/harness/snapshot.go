package harness

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"reptile/internal/core"
	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/reads"
	"reptile/internal/snapshot"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// Snapshot measures the frozen-spectrum snapshot cache (DESIGN.md §16): a
// cold run builds the spectra and publishes per-rank snapshots into a
// content-hash cache, then warm runs — over the in-process transport and
// over loopback TCP at the same rank count (the cache key includes np) —
// adopt them and skip construction. Enforced bars: the cold run misses and
// publishes on every rank, every warm run hits on every rank with
// byte-identical corrected output, and the warm snapshot load is at least
// 5x faster than the cold spectrum build it replaces. Reported alongside:
// snapshot bytes on disk per spectrum entry (the near-zero-parse format
// ships the packed slabs verbatim, so disk cost is the pow2 slab cost).
func Snapshot(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	dir, err := os.MkdirTemp("", "reptile-snap-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	digest := snapshot.DigestReads(ds.Reads)
	withSnap := func() core.Options {
		opts := optionsFor(sc, ds, core.Heuristics{}, true)
		opts.Snapshot = &core.SnapshotOptions{Dir: dir, InputDigest: digest}
		return opts
	}

	t := &Table{
		ID:    "snapshot",
		Title: fmt.Sprintf("Spectrum snapshot cache: cold build vs warm load, %d ranks (E.Coli)", np),
		Note: "new to this implementation; enforced bars: cold run misses+publishes on every rank, every warm run " +
			"(proc and tcp) hits on every rank with byte-identical output, and the warm snapshot load is >=5x faster " +
			"than the cold spectrum build; disk bytes per entry reported (packed slabs shipped verbatim)",
		Header: []string{"mode", "wall", "speedup", "hits/misses", "disk", "disk B/entry", "bases corrected", "output"},
	}

	// Cold run: every rank must miss the empty cache, build, and publish.
	cold, err := engineRun(ds, np, withSnap())
	if err != nil {
		return nil, fmt.Errorf("cold: %w", err)
	}
	misses := cold.Run.Sum(func(r *stats.Rank) int64 { return r.SnapshotMisses })
	saves := cold.Run.Sum(func(r *stats.Rank) int64 { return r.SnapshotSaves })
	if misses != int64(np) || saves != int64(np) {
		return t, fmt.Errorf("cold: %d misses and %d saves on %d ranks — the cache was not cold or a publish failed", misses, saves, np)
	}
	coldWall := cold.Run.Wall[stats.PhaseSpectrum]
	written := cold.Run.Sum(func(r *stats.Rank) int64 { return r.SnapshotBytesWritten })
	entries := cold.Run.Sum(func(r *stats.Rank) int64 { return r.OwnedKmers + r.OwnedTiles })
	perEntry := 0.0
	if entries > 0 {
		perEntry = float64(written) / float64(entries)
	}
	refKeys := outputKeys(cold.Corrected())
	t.Rows = append(t.Rows, []string{
		"cold build (proc)", coldWall.Round(time.Microsecond).String(), "-",
		fmt.Sprintf("0/%d", misses), mib(written), fmt.Sprintf("%.1f", perEntry),
		count(cold.Result.BasesCorrected), "reference",
	})

	// Warm proc run, best of 2: the load wall under the 5x bar is fractions
	// of a millisecond at bench scale, so one noisy sample must not fail it.
	var warm *core.Output
	for rep := 0; rep < 2; rep++ {
		o, err := engineRun(ds, np, withSnap())
		if err != nil {
			return nil, fmt.Errorf("warm proc: %w", err)
		}
		if warm == nil || o.Run.Wall[stats.PhaseSnapshot] < warm.Run.Wall[stats.PhaseSnapshot] {
			warm = o
		}
	}
	hits := warm.Run.Sum(func(r *stats.Rank) int64 { return r.SnapshotHits })
	if hits != int64(np) {
		return t, fmt.Errorf("warm proc: %d hits on %d ranks — the cache entry the cold run published was not adopted", hits, np)
	}
	if !sameOutputKeys(refKeys, outputKeys(warm.Corrected())) || warm.Result != cold.Result {
		return t, fmt.Errorf("warm proc: output differs from the cold build — the adopted spectra are not equivalent")
	}
	warmWall := warm.Run.Wall[stats.PhaseSnapshot]
	speedup := 0.0
	if warmWall > 0 {
		speedup = coldWall.Seconds() / warmWall.Seconds()
	}
	read := warm.Run.Sum(func(r *stats.Rank) int64 { return r.SnapshotBytesRead })
	t.Rows = append(t.Rows, []string{
		"warm load (proc)", warmWall.Round(time.Microsecond).String(), fmt.Sprintf("%.1fx", speedup),
		fmt.Sprintf("%d/0", hits), mib(read), "-",
		count(warm.Result.BasesCorrected), "identical",
	})
	if speedup < 5 {
		return t, fmt.Errorf("snapshot: warm load %v vs cold build %v is %.1fx, bar is >=5x", warmWall, coldWall, speedup)
	}

	// Warm run over loopback TCP at the same np: same cache key, same hit.
	tcpOuts, err := tcpRun(ds, np, withSnap())
	if err != nil {
		return nil, fmt.Errorf("warm tcp: %w", err)
	}
	var tcpHits, tcpRead, tcpCorrected int64
	var tcpWall time.Duration
	var tcpKeys []outputKey
	for _, ro := range tcpOuts {
		tcpHits += ro.Stats.SnapshotHits
		tcpRead += ro.Stats.SnapshotBytesRead
		tcpCorrected += ro.Result.BasesCorrected
		if ro.Stats.Wall[stats.PhaseSnapshot] > tcpWall {
			tcpWall = ro.Stats.Wall[stats.PhaseSnapshot]
		}
		tcpKeys = append(tcpKeys, outputKeys(ro.Corrected)...)
	}
	sort.Slice(tcpKeys, func(i, j int) bool { return tcpKeys[i].seq < tcpKeys[j].seq })
	if tcpHits != int64(np) {
		return t, fmt.Errorf("warm tcp: %d hits on %d ranks", tcpHits, np)
	}
	if !sameOutputKeys(refKeys, tcpKeys) {
		return t, fmt.Errorf("warm tcp: output differs from the cold build")
	}
	tcpSpeedup := 0.0
	if tcpWall > 0 {
		tcpSpeedup = coldWall.Seconds() / tcpWall.Seconds()
	}
	t.Rows = append(t.Rows, []string{
		"warm load (tcp)", tcpWall.Round(time.Microsecond).String(), fmt.Sprintf("%.1fx", tcpSpeedup),
		fmt.Sprintf("%d/0", tcpHits), mib(tcpRead), "-",
		count(tcpCorrected), "identical",
	})
	return t, nil
}

// outputKey flattens one corrected read for cross-transport comparison.
type outputKey struct {
	seq   int64
	bases string
}

func outputKeys(rs []reads.Read) []outputKey {
	keys := make([]outputKey, len(rs))
	for i := range rs {
		keys[i] = outputKey{rs[i].Seq, dna.DecodeString(rs[i].Base)}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].seq < keys[j].seq })
	return keys
}

func sameOutputKeys(a, b []outputKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tcpRun drives the pipeline one OS-socket rank per goroutine over loopback
// TCP — the cross-process transport the paper's MPI ranks correspond to —
// and returns every rank's output.
func tcpRun(ds *genome.Dataset, np int, opts core.Options) ([]*core.RankOutput, error) {
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	src := &core.MemorySource{Reads: ds.Reads}
	outs := make([]*core.RankOutput, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := transport.NewTCP(transport.TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			outs[r], errs[r] = core.RunRank(e, src, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return outs, nil
}
