package core

import (
	"sync"
	"testing"

	"reptile/internal/collective"
	"reptile/internal/dna"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/transport"
)

// TestPaperFigure1Flow walks the exact scenario of the paper's Figure 1:
// ranks extract k-mers from their reads, split them into owned shards and
// per-round non-owned tables, run the all-to-all, and end up with the true
// global count of every k-mer at exactly its owning rank.
func TestPaperFigure1Flow(t *testing.T) {
	const np = 8
	const k = 3
	// Overlapping reads so the same k-mers appear on several ranks.
	readSeqs := []string{
		"ACGTACGT", "CGTACGTA", "GTACGTAC", "TACGTACG",
		"ACGTACGT", "CGTACGTA", "GGGGGGGG", "ACGTACGT",
	}
	spec := kmer.Spec{K: k, Overlap: 1}

	// Ground truth: global k-mer counts over all reads.
	truth := spectrum.NewHash(0)
	for _, s := range readSeqs {
		spec.EachKmer(dna.MustEncode(s), func(_ int, id kmer.ID) { truth.Add(id, 1) })
	}

	eps, err := transport.NewProcGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)

	owned := make([][]*spectrum.HashStore, np)
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := &rankCtx{
				e:    eps[r],
				comm: collective.New(eps[r]),
				opts: Options{Config: func() reptile.Config {
					c := reptile.Default()
					c.Spec = spec
					return c
				}()},
				rank: r,
				np:   np,
			}
			// Step II: rank r processes read r only, through the builder.
			b := ctx.newSpecBuilder(false)
			rd := reads.Read{Seq: int64(r + 1), Base: dna.MustEncode(readSeqs[r]), Qual: make([]byte, len(readSeqs[r]))}
			b.extract([]reads.Read{rd})
			b.fold()
			// The owned shards must hold only owned IDs, the round tables
			// only foreign ones.
			for _, s := range b.ownK {
				s.Each(func(e spectrum.Entry) bool {
					if kmer.Owner(e.ID, np) != r {
						t.Errorf("rank %d owned shard holds foreign id %v", r, e.ID)
					}
					return true
				})
			}
			for _, s := range b.roundK {
				s.Each(func(e spectrum.Entry) bool {
					if kmer.Owner(e.ID, np) == r {
						t.Errorf("rank %d round table holds own id %v", r, e.ID)
					}
					return true
				})
			}
			// Step III: the collective count merge.
			bufsK, bufsT := b.encode(0)
			if err := b.join(b.startExchange(bufsK, bufsT)); err != nil {
				errs <- err
				return
			}
			owned[r] = b.ownK
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the merge: every k-mer lives at exactly its owner with its true
	// global count, and nowhere else.
	total := 0
	for r := 0; r < np; r++ {
		for _, s := range owned[r] {
			s.Each(func(e spectrum.Entry) bool {
				total++
				if kmer.Owner(e.ID, np) != r {
					t.Errorf("id %v at rank %d, owner is %d", e.ID, r, kmer.Owner(e.ID, np))
				}
				want, ok := truth.Count(e.ID)
				if !ok || want != e.Count {
					t.Errorf("id %v count %d, true global count %d", e.ID, e.Count, want)
				}
				return true
			})
		}
	}
	if total != truth.Len() {
		t.Errorf("%d distinct k-mers across ranks, want %d", total, truth.Len())
	}
}

func TestPartialReplicationGroupEdgeCases(t *testing.T) {
	ds, opts := testDataset(t, 1200, 7000)
	for _, g := range []int{2, 3, 8, 16} { // 3 does not divide 8; 16 > np
		opts.Heuristics = Heuristics{PartialReplicationGroup: g}
		out, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
		if err != nil {
			t.Fatalf("group=%d: %v", g, err)
		}
		if got := len(out.Corrected()); got != len(ds.Reads) {
			t.Fatalf("group=%d: %d reads", g, got)
		}
		if g >= 8 {
			// Group covers every rank: equivalent to full replication.
			if remote := out.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() }); remote != 0 {
				t.Errorf("group=%d: %d remote lookups, want 0", g, remote)
			}
		}
	}
}
