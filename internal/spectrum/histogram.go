package spectrum

// Count histograms and automatic threshold selection. The count-of-counts
// histogram of a k-mer spectrum is bimodal: erroneous k-mers pile up at
// count 1-2, genuine genomic k-mers peak near the read coverage. The valley
// between the two peaks is the natural solidity threshold — picking it
// automatically removes the most dataset-sensitive knob in the
// configuration file.

// HistogramBins caps the histogram length; counts at or above the cap share
// the last bin (the genomic peak of deep datasets can exceed any fixed cap,
// but the valley always sits far below it).
const HistogramBins = 256

// Histogram returns h where h[c] is the number of distinct IDs with count
// c (c in [0, HistogramBins); larger counts accumulate in the last bin).
func (h *HashStore) Histogram() []int64 {
	out := make([]int64, HistogramBins)
	h.Each(func(e Entry) bool {
		c := e.Count
		if c >= HistogramBins {
			c = HistogramBins - 1
		}
		out[c]++
		return true
	})
	return out
}

// MergeHistograms adds b into a element-wise; the distributed engine
// allreduces per-rank histograms this way so every rank picks the same
// threshold.
func MergeHistograms(a, b []int64) {
	for i := range a {
		if i < len(b) {
			a[i] += b[i]
		}
	}
}

// ValleyThreshold returns the count at the first local minimum of the
// histogram after the initial (error) peak — the classic k-mer-histogram
// threshold rule. The fallback is returned when the histogram has no
// usable valley (too little data, or unimodal).
func ValleyThreshold(hist []int64, fallback uint32) uint32 {
	// Find the first descent, then the first index where the curve turns
	// back up; the valley is that index.
	i := 1
	for i+1 < len(hist) && hist[i+1] <= hist[i] {
		// still descending (or flat) from the error peak
		if hist[i] == 0 && hist[i+1] == 0 {
			break
		}
		i++
	}
	if i+1 >= len(hist) || i <= 1 {
		return fallback
	}
	// Confirm there is a genuine second mode after the valley: some bin
	// beyond i must rise above the valley floor by more than noise.
	valley := hist[i]
	for j := i + 1; j < len(hist); j++ {
		if hist[j] > valley*2+4 {
			return uint32(i)
		}
	}
	return fallback
}
