package reptile

import (
	"sort"

	"reptile/internal/dna"
	"reptile/internal/kmer"
	"reptile/internal/reads"
)

// KmerCorrector is the plain k-spectrum baseline Reptile argues against:
// it repairs weak k-mers by substituting toward a solid Hamming-distance-1
// neighbour, without tile-level confirmation. With only k bases of context
// a weak k-mer often has several solid neighbours, so this corrector either
// refuses (ambiguity) or risks picking the wrong one — the exactness
// problem tiles solve (paper Section II-A). It exists to reproduce that
// comparison; production use should go through Corrector.
type KmerCorrector struct {
	cfg    Config
	oracle Oracle
	posBuf []int
}

// NewKmerCorrector builds the baseline corrector.
func NewKmerCorrector(cfg Config, oracle Oracle) (*KmerCorrector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &KmerCorrector{cfg: cfg, oracle: oracle}, nil
}

// CorrectRead repairs r in place with k-mer-level decisions only.
func (c *KmerCorrector) CorrectRead(r *reads.Read) Result {
	res := Result{ReadsProcessed: 1}
	k := c.cfg.Spec.K
	if len(r.Base) < k {
		return res
	}
	corrections := 0
	// Walk k-mers at stride k (disjoint windows): overlapping windows would
	// re-flag the same error k times.
	for p := 0; p+k <= len(r.Base); p += k {
		id := kmer.Encode(r.Base[p : p+k])
		if cnt, ok := c.oracle.KmerCount(id); ok && cnt >= c.cfg.KmerThreshold {
			res.TilesSolid++
			continue
		}
		fixed := c.repairKmer(r, p, id)
		if !fixed {
			res.TilesGivenUp++
			continue
		}
		res.TilesRepaired++
		res.BasesCorrected++
		corrections++
		if corrections >= c.cfg.MaxCorrectionsPerRead {
			break
		}
	}
	if res.BasesCorrected > 0 {
		res.ReadsChanged++
	}
	return res
}

// repairKmer tries single substitutions ordered by ascending quality and
// applies the unique solid winner.
func (c *KmerCorrector) repairKmer(r *reads.Read, p int, id kmer.ID) bool {
	k := c.cfg.Spec.K
	c.posBuf = c.posBuf[:0]
	for i := 0; i < k; i++ {
		c.posBuf = append(c.posBuf, i)
	}
	qual := r.Qual[p : p+k]
	sort.SliceStable(c.posBuf, func(a, b int) bool { return qual[c.posBuf[a]] < qual[c.posBuf[b]] })

	var bestCnt, secondCnt uint32
	bestPos := -1
	var bestBase dna.Base
	for _, kp := range c.posBuf {
		orig := id.BaseAt(kp, k)
		for delta := 1; delta < dna.NumBases; delta++ {
			b := dna.Base((int(orig) + delta) % dna.NumBases)
			cand := id.WithBase(kp, k, b)
			cnt, ok := c.oracle.KmerCount(cand)
			if !ok || cnt < c.cfg.KmerThreshold {
				continue
			}
			if cnt > bestCnt {
				secondCnt = bestCnt
				bestCnt, bestPos, bestBase = cnt, kp, b
			} else if cnt > secondCnt {
				secondCnt = cnt
			}
		}
	}
	if bestPos < 0 || bestCnt == secondCnt {
		return false // nothing solid, or ambiguous
	}
	r.Base[p+bestPos] = bestBase
	return true
}

// CorrectBatch corrects every read in place.
func (c *KmerCorrector) CorrectBatch(batch []reads.Read) Result {
	var total Result
	for i := range batch {
		total.Add(c.CorrectRead(&batch[i]))
	}
	return total
}

// CorrectDatasetKmerOnly is the one-shot baseline pipeline, the analogue of
// CorrectDataset without tiles.
func CorrectDatasetKmerOnly(batch []reads.Read, cfg Config) ([]reads.Read, Result, error) {
	kmers, tiles := BuildSpectra(batch, cfg)
	_ = tiles
	oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
	c, err := NewKmerCorrector(cfg, oracle)
	if err != nil {
		return nil, Result{}, err
	}
	out := make([]reads.Read, len(batch))
	for i := range batch {
		out[i] = batch[i].Clone()
	}
	res := c.CorrectBatch(out)
	return out, res, nil
}
