package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/transport"
)

// prefetchPlane is the rank-wide prefetch accumulator shared by every
// correction worker. It fixes the two ways a private-per-worker prefetch
// buffer fragments batching (BENCH_lookup's workers=4 regression):
//
//   - redundant traffic: workers correcting overlapping genomic loci each
//     fetched the same hot ids into their own buffers (~18% duplicate ids
//     at 4 workers). The plane keeps one answers map, so an id any worker
//     fetched answers every worker.
//   - thin frames: each worker coalesced only its own misses per owner, so
//     concurrency split what would have been one frame into Workers thinner
//     ones. The plane stages misses in shared per-(kind,owner) lists and
//     flushes with leader combining: whoever finds no flush in progress
//     takes *everything* staged — its own ids plus whatever siblings staged
//     while the previous flush was in flight — into maximally thick frames.
//
// The combining is group-commit without timers: a resolver whose ids are
// staged while a flush is running parks on the round channel; the ids that
// pile up during that round all travel in the next leader's flush. On a
// single-core host workers interleave exactly at these block points, which
// is what re-fattens the frames.
//
// Frame ids are sorted before encode, so the delta+varint wire codec sees
// minimal deltas. Answers are applied by the consuming lookup (counters,
// cache writes) exactly as a live round trip would be — the plane itself
// touches no statistics except the flush leader's failover counter.
type prefetchPlane struct {
	np int

	mu      sync.Mutex
	answers map[preKey]preVal
	// pending[kind][owner] holds staged ids not yet taken by a flush;
	// staged/inflight index them for dedup (staged = in pending, inflight =
	// taken by the currently-running flush).
	pending  [2][][]kmer.ID
	staged   [2]map[kmer.ID]struct{}
	inflight [2]map[kmer.ID]struct{}
	flushing bool
	round    chan struct{} // closed when the running flush round completes
	err      error         // first transport error; poisons the plane
}

// newPrefetchPlane builds the rank's shared prefetch state.
func newPrefetchPlane(np int) *prefetchPlane {
	p := &prefetchPlane{
		np:      np,
		answers: make(map[preKey]preVal),
		round:   make(chan struct{}),
	}
	for k := 0; k < 2; k++ {
		p.pending[k] = make([][]kmer.ID, np)
		p.staged[k] = make(map[kmer.ID]struct{})
		p.inflight[k] = make(map[kmer.ID]struct{})
	}
	return p
}

// answer reads one prefetched answer, if present.
func (p *prefetchPlane) answer(kind byte, id kmer.ID) (preVal, bool) {
	p.mu.Lock()
	v, ok := p.answers[preKey{kind: kind, id: id}]
	p.mu.Unlock()
	return v, ok
}

// flushFrame is one per-(owner,kind) id list a flush round sends.
type flushFrame struct {
	owner int
	kind  byte
	ids   []kmer.ID
}

// resolve blocks until every id in ids has an entry in the answers map (or
// the plane is poisoned). ids must already be filtered to genuinely-remote
// lookups; duplicates are tolerated. The calling worker's oracle supplies
// the dispatcher, the recovery route, and the stats shard that absorbs any
// failovers its own flush rounds take.
func (p *prefetchPlane) resolve(o *distOracle, kind byte, ids []kmer.ID) error {
	ki := int(kind & 1)
	p.mu.Lock()
	if len(p.answers) > maxPrefetchEntries {
		// Entries never go stale (the spectra are static during Step IV),
		// so the cap only bounds memory; waiters whose answers vanish
		// simply restage them.
		clear(p.answers)
	}
	for {
		if p.err != nil {
			err := p.err
			p.mu.Unlock()
			return err
		}
		missing := 0
		for _, id := range ids {
			if _, ok := p.answers[preKey{kind: kind, id: id}]; ok {
				continue
			}
			missing++
			if _, ok := p.staged[ki][id]; ok {
				continue
			}
			if _, ok := p.inflight[ki][id]; ok {
				continue
			}
			p.staged[ki][id] = struct{}{}
			owner := kmer.Owner(id, p.np)
			p.pending[ki][owner] = append(p.pending[ki][owner], id)
		}
		if missing == 0 {
			p.mu.Unlock()
			return nil
		}
		if p.flushing {
			// A sibling's flush is in flight; our staged ids ride the next
			// round. Park until this round completes, then re-check.
			round := p.round
			p.mu.Unlock()
			<-round
			p.mu.Lock()
			continue
		}
		// Become the leader: take every staged id of both kinds — ours and
		// whatever siblings accumulated — and flush outside the lock.
		p.flushing = true
		frames := p.takePending()
		p.mu.Unlock()
		ferr := p.flush(o, frames)
		p.mu.Lock()
		if ferr != nil && p.err == nil {
			p.err = ferr
		}
		p.flushing = false
		close(p.round)
		p.round = make(chan struct{})
	}
}

// takePending snapshots and clears the staged id lists, moving their ids
// to the inflight set. Caller holds p.mu.
func (p *prefetchPlane) takePending() []flushFrame {
	var frames []flushFrame
	for ki := 0; ki < 2; ki++ {
		for owner, list := range p.pending[ki] {
			if len(list) == 0 {
				continue
			}
			taken := make([]kmer.ID, len(list))
			copy(taken, list)
			p.pending[ki][owner] = list[:0]
			for _, id := range taken {
				delete(p.staged[ki], id)
				p.inflight[ki][id] = struct{}{}
			}
			frames = append(frames, flushFrame{owner: owner, kind: byte(ki), ids: taken})
		}
	}
	return frames
}

// flush issues every frame before waiting on any (the dispatcher's
// in-flight window is the pipeline depth), collects the answers into the
// shared map, and reroutes frames that hit a dying peer through the
// oracle's failover path. Runs outside the plane lock.
func (p *prefetchPlane) flush(o *distOracle, frames []flushFrame) error {
	var (
		calls     []*msgplane.Call
		callIDs   [][]kmer.ID
		callKinds []byte
		callOwner []int
		retry     []flushFrame
		firstErr  error
	)
	for _, f := range frames {
		// Sorted ids collapse to minimal zigzag deltas on the wire.
		sort.Slice(f.ids, func(i, j int) bool { return f.ids[i] < f.ids[j] })
		dest := f.owner
		if o.rec != nil {
			dest = o.rec.holderOf(f.owner)
		}
		list := f.ids
		for len(list) > 0 && firstErr == nil {
			n := len(list)
			if n > o.batch {
				n = o.batch
			}
			call, err := o.disp.start(dest, f.kind, list[:n])
			if err != nil {
				if o.rec != nil && errors.Is(err, transport.ErrPeerDown) {
					// The holder died under the frame; reissue synchronously
					// after the collect, through the failover route.
					retry = append(retry, flushFrame{owner: f.owner, kind: f.kind, ids: list[:n]})
					list = list[n:]
					continue
				}
				firstErr = err
				break
			}
			calls = append(calls, call)
			callIDs = append(callIDs, list[:n])
			callKinds = append(callKinds, f.kind)
			callOwner = append(callOwner, f.owner)
			list = list[n:]
		}
		if firstErr != nil {
			break
		}
	}
	// Collect every issued frame even after an error — abandoning a call
	// would leak its window slot until the dispatcher is poisoned.
	for i, call := range calls {
		answers, err := o.disp.wait(call)
		if err != nil {
			if o.rec != nil && errors.Is(err, transport.ErrPeerDown) {
				retry = append(retry, flushFrame{owner: callOwner[i], kind: callKinds[i], ids: callIDs[i]})
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if len(answers) != len(callIDs[i]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch of %d ids answered with %d entries", len(callIDs[i]), len(answers))
			}
			continue
		}
		p.publish(callKinds[i], callIDs[i], answers)
	}
	for _, f := range retry {
		if firstErr != nil {
			break
		}
		answers, err := o.batchLookup(f.kind, f.ids, f.owner)
		if err != nil {
			firstErr = err
			break
		}
		if len(answers) != len(f.ids) {
			firstErr = fmt.Errorf("core: batch of %d ids answered with %d entries", len(f.ids), len(answers))
			break
		}
		p.publish(f.kind, f.ids, answers)
	}
	return firstErr
}

// publish installs one frame's answers and releases its ids from the
// inflight set.
func (p *prefetchPlane) publish(kind byte, ids []kmer.ID, answers []batchAnswer) {
	ki := int(kind & 1)
	p.mu.Lock()
	for j, id := range ids {
		p.answers[preKey{kind: kind, id: id}] = preVal{cnt: answers[j].Count, exists: answers[j].Exists}
		delete(p.inflight[ki], id)
	}
	p.mu.Unlock()
}
