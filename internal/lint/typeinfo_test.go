package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"
)

// parseTestPkg builds a Package from in-memory sources, same parser setup
// as LoadDir (object resolution on, comments kept).
func parseTestPkg(t *testing.T, importPath string, files map[string]string) *Package {
	t.Helper()
	pkg := &Package{Dir: "test", ImportPath: importPath, Fset: token.NewFileSet()}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(pkg.Fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, &File{Name: name, AST: f})
	}
	return pkg
}

const typeinfoSrcA = `package a

import "example.com/m/b"

type Inner struct{ N int }

type Outer struct {
	In    Inner
	Ptr   *Inner
	Items []Inner
	Rem   b.Remote
}

func NewOuter() *Outer { return &Outer{} }

func (o *Outer) Get() Inner { return o.In }

func helper() {}

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

func (o *Outer) Use(seed Inner) {
	in := o.In
	p := o.Ptr
	first := o.Items[0]
	rem := o.Rem
	made := b.Make()
	built := Inner{N: 1}
	addr := &Outer{}
	var typed b.Remote
	conv := Inner(built)
	copied := seed
	_ = in
	_ = p
	_ = first
	_ = rem
	_ = made
	_ = addr
	_ = typed
	_ = conv
	_ = copied
}

func (o *Outer) Calls() {
	o.Get()
	b.Make()
	o.Rem.Ping()
	helper()
	println("not ours")
}
`

const typeinfoSrcB = `package b

type Remote struct{ X int }

func (r Remote) Ping() error { return nil }

func Make() Remote { return Remote{} }
`

func buildTestModule(t *testing.T) (*Module, *Package, *Package) {
	t.Helper()
	pa := parseTestPkg(t, "example.com/m/a", map[string]string{"a.go": typeinfoSrcA})
	pb := parseTestPkg(t, "example.com/m/b", map[string]string{"b.go": typeinfoSrcB})
	return NewModule([]*Package{pa, pb}), pa, pb
}

func TestEnvOfInfersLocalTypes(t *testing.T) {
	m, _, _ := buildTestModule(t)
	fi := m.funcs[funcKey{"example.com/m/a", "Outer", "Use"}]
	if fi == nil {
		t.Fatal("Outer.Use not indexed")
	}
	env := m.envOf(fi)

	tests := []struct {
		name string
		want QualType
	}{
		{"o", QualType{"example.com/m/a", "Outer"}},
		{"seed", QualType{"example.com/m/a", "Inner"}},
		{"in", QualType{"example.com/m/a", "Inner"}},
		{"p", QualType{"example.com/m/a", "Inner"}},
		{"first", QualType{"example.com/m/a", "Inner"}},
		{"rem", QualType{"example.com/m/b", "Remote"}},
		{"made", QualType{"example.com/m/b", "Remote"}},
		{"built", QualType{"example.com/m/a", "Inner"}},
		{"addr", QualType{"example.com/m/a", "Outer"}},
		{"typed", QualType{"example.com/m/b", "Remote"}},
		{"conv", QualType{"example.com/m/a", "Inner"}},
		{"copied", QualType{"example.com/m/a", "Inner"}},
	}
	for _, tc := range tests {
		ref, ok := env.vars[tc.name]
		if !ok {
			t.Errorf("%s: not in env", tc.name)
			continue
		}
		if ref.t != tc.want {
			t.Errorf("%s: resolved to %v, want %v", tc.name, ref.t, tc.want)
		}
	}
}

func TestResolveCall(t *testing.T) {
	m, _, _ := buildTestModule(t)
	fi := m.funcs[funcKey{"example.com/m/a", "Outer", "Calls"}]
	if fi == nil {
		t.Fatal("Outer.Calls not indexed")
	}
	env := m.envOf(fi)

	var calls []*ast.CallExpr
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	want := []string{"a.Outer.Get", "b.Make", "b.Remote.Ping", "a.helper", ""}
	if len(calls) != len(want) {
		t.Fatalf("found %d calls, want %d", len(calls), len(want))
	}
	for i, c := range calls {
		got := ""
		if fi2 := m.resolveCall(fi.Pkg, fi.File, env, c); fi2 != nil {
			got = fi2.String()
		}
		if got != want[i] {
			t.Errorf("call %d resolved to %q, want %q", i, got, want[i])
		}
	}
}

func TestFuncSignatureIndex(t *testing.T) {
	m, _, _ := buildTestModule(t)
	tests := []struct {
		key          funcKey
		returnsError bool
		results      int
	}{
		{funcKey{"example.com/m/a", "", "mayFail"}, true, 1},
		{funcKey{"example.com/m/a", "", "pair"}, true, 2},
		{funcKey{"example.com/m/a", "", "helper"}, false, 0},
		{funcKey{"example.com/m/b", "Remote", "Ping"}, true, 1},
		{funcKey{"example.com/m/b", "", "Make"}, false, 1},
	}
	for _, tc := range tests {
		fi := m.funcs[tc.key]
		if fi == nil {
			t.Errorf("%v: not indexed", tc.key)
			continue
		}
		if fi.returnsError != tc.returnsError {
			t.Errorf("%v: returnsError = %v, want %v", tc.key, fi.returnsError, tc.returnsError)
		}
		if len(fi.results) != tc.results {
			t.Errorf("%v: %d results, want %d", tc.key, len(fi.results), tc.results)
		}
	}
}

func TestQualRefOfStructFields(t *testing.T) {
	m, _, _ := buildTestModule(t)
	fields := m.fields["example.com/m/a"]["Outer"]
	tests := []struct {
		field string
		want  QualType
		elem  bool
	}{
		{"In", QualType{"example.com/m/a", "Inner"}, false},
		{"Ptr", QualType{"example.com/m/a", "Inner"}, false},
		{"Items", QualType{"example.com/m/a", "Inner"}, true},
		{"Rem", QualType{"example.com/m/b", "Remote"}, false},
	}
	for _, tc := range tests {
		ref, ok := fields[tc.field]
		if !ok || !ref.known {
			t.Errorf("field %s: not resolved", tc.field)
			continue
		}
		if ref.t != tc.want || ref.elem != tc.elem {
			t.Errorf("field %s: got (%v, elem=%v), want (%v, elem=%v)", tc.field, ref.t, ref.elem, tc.want, tc.elem)
		}
	}
}
