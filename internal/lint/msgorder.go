package lint

import (
	"go/ast"
	"go/token"
)

// MsgOrder checks the message plane's registration discipline module-wide:
// every tag constant referenced by a Send/Recv/Handle call must be covered
// by a Spec registered during init (directly or one call deep), Direct tags
// must never be claimed by a Router handler while router-owned tags must
// never be taken with a blocking direct Recv, and a package registering
// request specs must register the matching response specs (the Caller's
// window has nothing to match otherwise).
//
// The model is name-based, same horizon as the rest of the suite: a "tag"
// is a constant whose declared type is a module type named Tag, and a
// "spec" is a composite literal of a module type named Spec declared next
// to a Tag type. Tags passed through variables or computed expressions are
// outside the horizon and pass silently.
type MsgOrder struct{}

// NewMsgOrder returns the analyzer with default configuration.
func NewMsgOrder() *MsgOrder { return &MsgOrder{} }

// Name implements Analyzer.
func (mo *MsgOrder) Name() string { return "msgorder" }

// Doc implements Analyzer.
func (mo *MsgOrder) Doc() string {
	return "msgplane tags registered before use, Direct vs Router ownership, request/response spec pairing"
}

// Check implements Analyzer; all work happens module-wide in CheckModule.
func (mo *MsgOrder) Check(pkg *Package, r *Reporter) {}

// tagKey names one tag constant module-wide.
type tagKey struct {
	pkg  string // import path of the declaring package
	name string
}

// msgSpec is one Spec composite literal found in the module.
type msgSpec struct {
	tag    tagKey
	dir    string // terminal name of the Dir field value; "" when absent
	direct bool
	atInit bool // registered from init, directly or one call deep
	pkg    *Package
	pos    token.Pos
}

// msgUse is one Send/Recv/Handle call referencing a tag constant.
type msgUse struct {
	kind string // "Send" | "Recv" | "Handle"
	tag  tagKey
	pkg  *Package
	pos  token.Pos
}

// CheckModule implements ModuleAnalyzer.
func (mo *MsgOrder) CheckModule(m *Module, report func(*Package) *Reporter) {
	tags := mo.collectTagConsts(m)
	specs := mo.collectSpecs(m, tags)
	uses := mo.collectUses(m, tags)

	registered := map[tagKey]*msgSpec{}
	anySpec := map[tagKey]*msgSpec{}
	for _, s := range specs {
		if s.atInit && registered[s.tag] == nil {
			registered[s.tag] = s
		}
		if anySpec[s.tag] == nil {
			anySpec[s.tag] = s
		}
	}

	for _, u := range uses {
		r := report(u.pkg)
		spec := registered[u.tag]
		if spec == nil {
			if late := anySpec[u.tag]; late != nil {
				r.Reportf(u.pos, "tag %s is registered only outside init; %s may run before the registry knows it", u.tag.name, u.kind)
			} else {
				r.Reportf(u.pos, "tag %s is used by %s but never registered with the tag registry", u.tag.name, u.kind)
			}
			continue
		}
		switch u.kind {
		case "Handle":
			if spec.direct {
				r.Reportf(u.pos, "Direct tag %s must not get a Router handler; Direct frames bypass the router demux", u.tag.name)
			}
		case "Recv":
			if !spec.direct {
				r.Reportf(u.pos, "tag %s is router-owned (not Direct) but taken with a blocking Recv; only the router may demux it", u.tag.name)
			}
		}
	}

	// Request/response pairing, per tag-declaring package: a Caller window
	// matches responses to requests, so registering one side without the
	// other leaves the window unmatchable.
	byPkg := map[string][]*msgSpec{}
	for _, s := range specs {
		if s.atInit {
			byPkg[s.tag.pkg] = append(byPkg[s.tag.pkg], s)
		}
	}
	for _, group := range byPkg {
		var nReq, nResp int
		for _, s := range group {
			switch s.dir {
			case "DirRequest":
				nReq++
			case "DirResponse":
				nResp++
			}
		}
		for _, s := range group {
			if s.dir == "DirRequest" && nResp == 0 {
				report(s.pkg).Reportf(s.pos, "registers request tag %s with no response tag in %s; the caller window has nothing to match", s.tag.name, s.tag.pkg)
			}
			if s.dir == "DirResponse" && nReq == 0 {
				report(s.pkg).Reportf(s.pos, "registers response tag %s with no request tag in %s; nothing can await it", s.tag.name, s.tag.pkg)
			}
		}
	}
}

// collectTagConsts indexes every constant whose declared type is a module
// type named Tag, tracking the implicit type inheritance of iota groups.
func (mo *MsgOrder) collectTagConsts(m *Module) map[tagKey]bool {
	tags := map[tagKey]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				var cur ast.Expr
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					switch {
					case vs.Type != nil:
						cur = vs.Type
					case len(vs.Values) > 0:
						cur = nil // explicit untyped value resets the group type
					}
					if cur == nil {
						continue
					}
					ref := m.qualRefOf(pkg, f, cur)
					if !ref.known || ref.elem || ref.t.Name != "Tag" {
						continue
					}
					for _, n := range vs.Names {
						tags[tagKey{pkg.ImportPath, n.Name}] = true
					}
				}
			}
		}
	}
	return tags
}

// specType reports whether a composite literal's type is a module type
// named Spec whose declaring package also declares Tag — the signature of
// a message-plane spec table, as opposed to unrelated Spec types.
func (mo *MsgOrder) specType(m *Module, pkg *Package, f *File, e ast.Expr) bool {
	ref := m.qualRefOf(pkg, f, e)
	return ref.known && ref.t.Name == "Spec" && m.typeNames[ref.t.Pkg]["Tag"]
}

// collectSpecs finds every Spec composite literal and whether it is
// registered during init: inside a Register* call in an init function or
// in a function an init calls directly.
func (mo *MsgOrder) collectSpecs(m *Module, tags map[tagKey]bool) []*msgSpec {
	var specs []*msgSpec
	for _, pkg := range m.Pkgs {
		// Functions reachable from init in one step.
		initCalled := map[string]bool{"init": true}
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || fd.Name.Name != "init" || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := unwrapParens(call.Fun).(*ast.Ident); ok {
							initCalled[id.Name] = true
						}
					}
					return true
				})
			}
		}
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				atInit := isFunc && fd.Recv == nil && initCalled[fd.Name.Name]
				ast.Inspect(decl, func(n ast.Node) bool {
					lit, ok := n.(*ast.CompositeLit)
					if !ok || lit.Type == nil || !mo.specType(m, pkg, f, lit.Type) {
						return true
					}
					if s := mo.parseSpec(m, pkg, f, lit, tags); s != nil {
						s.atInit = atInit
						specs = append(specs, s)
					}
					return true
				})
			}
		}
	}
	return specs
}

// parseSpec extracts the Tag, Dir, and Direct fields from a keyed Spec
// literal; nil when the Tag field is not a known tag constant.
func (mo *MsgOrder) parseSpec(m *Module, pkg *Package, f *File, lit *ast.CompositeLit, tags map[tagKey]bool) *msgSpec {
	s := &msgSpec{pkg: pkg, pos: lit.Pos()}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil // positional spec literal: outside the horizon
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Tag":
			tk, ok := mo.tagOf(m, pkg, f, kv.Value, tags)
			if !ok {
				return nil
			}
			s.tag = tk
		case "Dir":
			switch v := unwrapParens(kv.Value).(type) {
			case *ast.Ident:
				s.dir = v.Name
			case *ast.SelectorExpr:
				s.dir = v.Sel.Name
			}
		case "Direct":
			if id, ok := unwrapParens(kv.Value).(*ast.Ident); ok && id.Name == "true" {
				s.direct = true
			}
		}
	}
	if s.tag.name == "" {
		return nil
	}
	return s
}

// tagOf resolves an expression to a known tag constant.
func (mo *MsgOrder) tagOf(m *Module, pkg *Package, f *File, e ast.Expr, tags map[tagKey]bool) (tagKey, bool) {
	switch v := unwrapParens(e).(type) {
	case *ast.Ident:
		tk := tagKey{pkg.ImportPath, v.Name}
		return tk, tags[tk]
	case *ast.SelectorExpr:
		x, ok := v.X.(*ast.Ident)
		if !ok {
			return tagKey{}, false
		}
		p, ok := m.imports[f][x.Name]
		if !ok {
			return tagKey{}, false
		}
		tk := tagKey{p, v.Sel.Name}
		return tk, tags[tk]
	}
	return tagKey{}, false
}

// collectUses finds every Send/Recv/Handle call whose direct arguments
// include a known tag constant.
func (mo *MsgOrder) collectUses(m *Module, tags map[tagKey]bool) []*msgUse {
	var uses []*msgUse
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name := funcNameOf(call)
					if name != "Send" && name != "Recv" && name != "Handle" {
						return true
					}
					for _, arg := range call.Args {
						if tk, ok := mo.tagOf(m, pkg, f, arg, tags); ok {
							uses = append(uses, &msgUse{kind: name, tag: tk, pkg: pkg, pos: arg.Pos()})
						}
					}
					return true
				})
			}
		}
	}
	return uses
}
