package machine

import (
	"testing"
	"testing/quick"
)

// Monotonicity properties of the cost model: if any of these break, the
// scaling figures can invert for spurious reasons.

func TestRTTMonotoneInBytes(t *testing.T) {
	m := BGQ()
	s := Shape{Ranks: 64, RanksPerNode: 16, ThreadsPerRank: 2}
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.RTT(s, 0, 63, a, 8) <= m.RTT(s, 0, 63, b, 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRTTMonotoneInRanksPerNode(t *testing.T) {
	m := BGQ()
	f := func(rpnRaw uint8) bool {
		rpn := int(rpnRaw%31) + 1
		s1 := Shape{Ranks: 128, RanksPerNode: rpn, ThreadsPerRank: 2}
		s2 := Shape{Ranks: 128, RanksPerNode: rpn + 1, ThreadsPerRank: 2}
		// Same inter-node pair: more ranks per node can only slow it down.
		return m.RTT(s1, 0, 127, 13, 9) <= m.RTT(s2, 0, 127, 13, 9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeSlowdownBounds(t *testing.T) {
	m := BGQ()
	f := func(rpnRaw, tprRaw uint8) bool {
		rpn := int(rpnRaw%64) + 1
		tpr := int(tprRaw%4) + 1
		s := Shape{Ranks: 128, RanksPerNode: rpn, ThreadsPerRank: tpr}
		slow := m.computeSlowdown(s)
		if slow < 1 {
			return false
		}
		// Slowdown never exceeds the raw oversubscription ratio.
		ratio := float64(rpn*tpr) / float64(m.CoresPerNode)
		return ratio <= 1 || slow <= ratio
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectiveTimeMonotone(t *testing.T) {
	m := BGQ()
	f := func(bytesRaw uint32, ranksRaw uint16) bool {
		ranks := int(ranksRaw%1000) + 2
		s := Shape{Ranks: ranks, RanksPerNode: 32, ThreadsPerRank: 2}
		a := m.CollectiveTime(s, int64(bytesRaw))
		b := m.CollectiveTime(s, int64(bytesRaw)+4096)
		return a <= b && a >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyScaleInvariance(t *testing.T) {
	// Perfect scaling gives efficiency 1 regardless of units.
	f := func(timeRaw uint16, baseRaw uint8) bool {
		base := int(baseRaw%100) + 1
		time := float64(timeRaw%10000) + 1
		e := Efficiency(base, time, base*2, time/2)
		return e > 0.999 && e < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
