package reptile

import (
	"sort"

	"reptile/internal/dna"
	"reptile/internal/kmer"
	"reptile/internal/reads"
)

// Result aggregates correction outcomes over a batch of reads.
type Result struct {
	ReadsProcessed int64
	ReadsChanged   int64
	BasesCorrected int64 // "errors corrected" in the paper's Fig 4
	TilesSolid     int64 // tiles already present in the spectrum
	TilesRepaired  int64
	TilesGivenUp   int64 // weak tiles with no acceptable candidate
}

// Add accumulates o into r.
func (r *Result) Add(o Result) {
	r.ReadsProcessed += o.ReadsProcessed
	r.ReadsChanged += o.ReadsChanged
	r.BasesCorrected += o.BasesCorrected
	r.TilesSolid += o.TilesSolid
	r.TilesRepaired += o.TilesRepaired
	r.TilesGivenUp += o.TilesGivenUp
}

// Corrector runs Reptile's tile-walk correction against an Oracle. It is
// not safe for concurrent use; each worker owns one Corrector (scratch
// buffers are reused across reads).
type Corrector struct {
	cfg    Config
	oracle Oracle
	pf     Prefetcher // oracle's batching extension; nil when unsupported

	posBuf  []int
	tileBuf []kmer.ID
}

// NewCorrector validates cfg and builds a corrector.
func NewCorrector(cfg Config, oracle Oracle) (*Corrector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pf, _ := oracle.(Prefetcher)
	return &Corrector{cfg: cfg, oracle: oracle, pf: pf}, nil
}

// Config returns the corrector's configuration.
func (c *Corrector) Config() Config { return c.cfg }

// CorrectRead corrects r in place and returns per-read statistics. The walk
// visits tiles left to right; a repair rewrites the read, so downstream
// tiles see corrected bases (greedy propagation, as in Reptile).
func (c *Corrector) CorrectRead(r *reads.Read) Result {
	res := Result{ReadsProcessed: 1}
	spec := c.cfg.Spec
	tl := spec.TileLen()
	if len(r.Base) < tl {
		return res
	}
	if c.pf != nil {
		// Hint the whole walk's tiles up front. Greedy propagation may
		// rewrite downstream tiles after a repair; those few then fall back
		// to individual lookups.
		c.tileBuf = spec.AppendTiles(r.Base, c.tileBuf[:0])
		c.pf.PrefetchTiles(c.tileBuf)
	}
	// The walk rolls the tile window incrementally: each stride appends
	// Step bases to the previous window instead of re-packing all tl bases
	// per position. A repair rewrites bases inside the current window only,
	// and the repaired tile id is exactly the winning candidate, so the
	// roll resumes from it and downstream windows see the corrected bases.
	corrections := 0
	step := spec.Step()
	tile := kmer.Encode(r.Base[:tl])
	for p := 0; p+tl <= len(r.Base); p += step {
		if p > 0 {
			for q := p + tl - step; q < p+tl; q++ {
				tile = tile.Append(r.Base[q], tl)
			}
		}
		if cnt, ok := c.oracle.TileCount(tile); ok && cnt >= c.cfg.TileThreshold {
			res.TilesSolid++
			continue
		}
		repaired, fixed, nchanged := c.repairTile(r, p, tile)
		if !fixed {
			res.TilesGivenUp++
			continue
		}
		tile = repaired
		res.TilesRepaired++
		res.BasesCorrected += int64(nchanged)
		corrections += nchanged
		if corrections >= c.cfg.MaxCorrectionsPerRead {
			break
		}
	}
	if res.BasesCorrected > 0 {
		res.ReadsChanged++
	}
	return res
}

// candidate is one proposed tile repair.
type candidate struct {
	tile  kmer.ID
	count uint32
	pos   [2]int // read-relative changed positions; pos[1] = -1 for singles
	base  [2]dna.Base
	n     int
}

// repairTile attempts to replace the weak tile starting at read position p.
// It returns the repaired tile id (the winning candidate, which matches the
// rewritten read bases exactly — the walk resumes its rolling window from
// it), whether a repair was applied, and how many bases changed.
func (c *Corrector) repairTile(r *reads.Read, p int, tile kmer.ID) (kmer.ID, bool, int) {
	tl := c.cfg.Spec.TileLen()
	positions, lowN := c.errPositions(r, p, tl)
	if len(positions) == 0 {
		return tile, false, 0
	}

	var best, second candidate
	consider := func(cand candidate) {
		if cand.count > best.count {
			second = best
			best = cand
		} else if cand.count > second.count {
			second = cand
		}
	}

	// Radius 1: single substitutions at the lowest-quality positions. The
	// candidate set is known before any lookup, so hint it whole.
	if c.pf != nil {
		c.tileBuf = c.tileBuf[:0]
		for _, tp := range positions {
			orig := tile.BaseAt(tp, tl)
			for delta := 1; delta < dna.NumBases; delta++ {
				b := dna.Base((int(orig) + delta) % dna.NumBases)
				c.tileBuf = append(c.tileBuf, tile.WithBase(tp, tl, b))
			}
		}
		c.pf.PrefetchTiles(c.tileBuf)
	}
	for _, tp := range positions {
		orig := tile.BaseAt(tp, tl)
		for delta := 1; delta < dna.NumBases; delta++ {
			b := dna.Base((int(orig) + delta) % dna.NumBases)
			cand := tile.WithBase(tp, tl, b)
			cnt, ok := c.validCandidate(cand, tp, -1)
			if !ok {
				continue
			}
			consider(candidate{tile: cand, count: cnt, pos: [2]int{p + tp, -1}, base: [2]dna.Base{b}, n: 1})
		}
	}

	// Radius 2 only when no single substitution worked: pairs of the
	// lowest-quality positions (capped, since pairs are quadratic).
	if best.n == 0 && c.cfg.MaxErrPerTile >= 2 {
		if c.pf != nil {
			c.tileBuf = c.tileBuf[:0]
			for i := 0; i < lowN; i++ {
				for j := i + 1; j < lowN; j++ {
					tp1, tp2 := positions[i], positions[j]
					o1, o2 := tile.BaseAt(tp1, tl), tile.BaseAt(tp2, tl)
					for d1 := 1; d1 < dna.NumBases; d1++ {
						t1 := tile.WithBase(tp1, tl, dna.Base((int(o1)+d1)%dna.NumBases))
						for d2 := 1; d2 < dna.NumBases; d2++ {
							c.tileBuf = append(c.tileBuf, t1.WithBase(tp2, tl, dna.Base((int(o2)+d2)%dna.NumBases)))
						}
					}
				}
			}
			c.pf.PrefetchTiles(c.tileBuf)
		}
		for i := 0; i < lowN; i++ {
			for j := i + 1; j < lowN; j++ {
				tp1, tp2 := positions[i], positions[j]
				o1, o2 := tile.BaseAt(tp1, tl), tile.BaseAt(tp2, tl)
				for d1 := 1; d1 < dna.NumBases; d1++ {
					b1 := dna.Base((int(o1) + d1) % dna.NumBases)
					t1 := tile.WithBase(tp1, tl, b1)
					for d2 := 1; d2 < dna.NumBases; d2++ {
						b2 := dna.Base((int(o2) + d2) % dna.NumBases)
						cand := t1.WithBase(tp2, tl, b2)
						cnt, ok := c.validCandidate(cand, tp1, tp2)
						if !ok {
							continue
						}
						consider(candidate{
							tile: cand, count: cnt,
							pos:  [2]int{p + tp1, p + tp2},
							base: [2]dna.Base{b1, b2},
							n:    2,
						})
					}
				}
			}
		}
	}

	// Require an unambiguous winner: correcting on a tie risks writing the
	// wrong haplotype (this is Reptile's exactness argument for tiles).
	if best.n == 0 || best.count == second.count {
		return tile, false, 0
	}
	for i := 0; i < best.n; i++ {
		r.Base[best.pos[i]] = best.base[i]
	}
	return best.tile, true, best.n
}

// validCandidate validates a candidate tile against the tile spectrum,
// then confirms the changed k-mers are solid. Probing the tile first
// mirrors Reptile's candidate validation and produces the traffic profile
// the paper reports: the bulk of correction-phase communication is tile
// lookups, most of them answered "does not exist" (Section IV). The k-mer
// confirmation only runs for the rare candidates whose tile is solid.
// tp2 < 0 means a single change.
func (c *Corrector) validCandidate(cand kmer.ID, tp1, tp2 int) (uint32, bool) {
	cnt, ok := c.oracle.TileCount(cand)
	if !ok || cnt < c.cfg.TileThreshold {
		return 0, false
	}
	spec := c.cfg.Spec
	k1, k2 := spec.Kmers(cand)
	needK1 := tp1 < spec.K || (tp2 >= 0 && tp2 < spec.K)
	needK2 := tp1 >= spec.Step() || (tp2 >= 0 && tp2 >= spec.Step())
	if needK1 {
		if kc, ok := c.oracle.KmerCount(k1); !ok || kc < c.cfg.KmerThreshold {
			return 0, false
		}
	}
	if needK2 {
		if kc, ok := c.oracle.KmerCount(k2); !ok || kc < c.cfg.KmerThreshold {
			return 0, false
		}
	}
	return cnt, true
}

// errPositions returns every tile-relative position sorted by ascending
// quality — the radius-1 search tries them all, cheapest-suspicion first —
// plus lowN, the size of the low-quality prefix that the quadratic radius-2
// search is restricted to (positions below the quality threshold, floored
// at 2 and capped at MaxErrPositions).
func (c *Corrector) errPositions(r *reads.Read, p, tl int) ([]int, int) {
	c.posBuf = c.posBuf[:0]
	for i := 0; i < tl; i++ {
		c.posBuf = append(c.posBuf, i)
	}
	qual := r.Qual[p : p+tl]
	sort.SliceStable(c.posBuf, func(a, b int) bool { return qual[c.posBuf[a]] < qual[c.posBuf[b]] })
	lowN := 0
	for lowN < len(c.posBuf) && qual[c.posBuf[lowN]] < c.cfg.QualThreshold {
		lowN++
	}
	if lowN < 2 {
		lowN = 2
	}
	if lowN > c.cfg.MaxErrPositions {
		lowN = c.cfg.MaxErrPositions
	}
	if lowN > len(c.posBuf) {
		lowN = len(c.posBuf)
	}
	return c.posBuf, lowN
}

// CorrectBatch corrects every read in place and returns totals.
func (c *Corrector) CorrectBatch(batch []reads.Read) Result {
	var total Result
	for i := range batch {
		total.Add(c.CorrectRead(&batch[i]))
	}
	return total
}

// CorrectDataset is the one-shot sequential pipeline: build spectra from
// the reads, then correct a deep copy and return it with statistics. The
// input batch is left untouched so callers can evaluate against it.
func CorrectDataset(batch []reads.Read, cfg Config) ([]reads.Read, Result, error) {
	kmers, tiles := BuildSpectra(batch, cfg)
	oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
	c, err := NewCorrector(cfg, oracle)
	if err != nil {
		return nil, Result{}, err
	}
	out := make([]reads.Read, len(batch))
	for i := range batch {
		out[i] = batch[i].Clone()
	}
	res := c.CorrectBatch(out)
	return out, res, nil
}
