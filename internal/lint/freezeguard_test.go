package lint

import "testing"

func TestFreezeGuardGolden(t *testing.T) {
	runGolden(t, NewFreezeGuard(), "freezeguard", "reptile/internal/lint/testdata/freezeguard")
}

// TestFreezeGuardCleanPass pins that the core package — where the frozen
// annotations live — yields zero diagnostics: every freeze-point write sits
// in a reptile-lint:build function.
func TestFreezeGuardCleanPass(t *testing.T) {
	pkg, err := LoadDir("../core", "reptile/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewFreezeGuard()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
