package lint

import "testing"

func TestMsgOrderGolden(t *testing.T) {
	runGolden(t, NewMsgOrder(), "msgorder", "reptile/internal/lint/testdata/msgorder")
}

func TestMsgOrderPairingGolden(t *testing.T) {
	runGolden(t, NewMsgOrder(), "msgorder_pair", "reptile/internal/lint/testdata/msgorder_pair")
}
