package lint

import (
	"os"
	"strings"
	"testing"
)

// TestRepoIsLintClean runs the full analyzer suite over the whole module —
// the same gate CI applies with `go run ./cmd/reptile-lint ./...` — and
// requires zero findings. Any new unguarded access, protocol drift, sleepy
// synchronization, or detached goroutine in the runtime fails this test
// locally before CI ever sees it.
func TestRepoIsLintClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; pattern expansion is broken", len(pkgs), root)
	}
	// The walk must reach beyond internal/: the commands and the runnable
	// examples carry protocol and goroutine code of their own, and a lint
	// gate that silently skips them is a hole, not a gate.
	seen := map[string]bool{}
	var cmds, examples int
	for _, p := range pkgs {
		seen[p.ImportPath] = true
		if strings.HasPrefix(p.ImportPath, "reptile/cmd/") {
			cmds++
		}
		if strings.HasPrefix(p.ImportPath, "reptile/examples/") {
			examples++
		}
	}
	for _, want := range []string{
		"reptile/cmd/reptile-lint",
		"reptile/cmd/reptile-correct",
		"reptile/examples/quickstart",
		"reptile/examples/tcpcluster",
	} {
		if !seen[want] {
			t.Errorf("package %s missing from the ./... walk", want)
		}
	}
	if cmds < 5 || examples < 3 {
		t.Errorf("walk found %d cmd/ and %d examples/ packages; expected at least 5 and 3", cmds, examples)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
