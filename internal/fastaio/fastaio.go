// Package fastaio reads and writes the fasta + quality-score file pair that
// Reptile consumes, including the byte-offset parallel partitioning of
// Step I of the paper: every rank seeks to fileSize*rank/np, aligns to the
// next record boundary, notes the starting sequence number, and locates the
// same sequence number in the quality file so both streams stay in lockstep.
//
// Record format (as produced by the paper's preprocessing): headers are
// ascending integer sequence numbers starting at 1,
//
//	>17
//	ACGT...
//
// and the quality file carries the same headers with space-separated Phred
// scores. Sequence data may span multiple lines; writers emit one line.
package fastaio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

// WriteFasta writes batch to w in fasta form, headers = sequence numbers.
func WriteFasta(w io.Writer, batch []reads.Read) error {
	bw := bufio.NewWriter(w)
	for i := range batch {
		r := &batch[i]
		if _, err := fmt.Fprintf(bw, ">%d\n%s\n", r.Seq, dna.Decode(r.Base)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteQual writes batch's quality scores to w, space-separated per read.
func WriteQual(w io.Writer, batch []reads.Read) error {
	bw := bufio.NewWriter(w)
	for i := range batch {
		r := &batch[i]
		if _, err := fmt.Fprintf(bw, ">%d\n", r.Seq); err != nil {
			return err
		}
		for j, q := range r.Qual {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(q))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDataset writes name.fa and name.qual under dir and returns the paths.
func WriteDataset(dir, name string, batch []reads.Read) (fastaPath, qualPath string, err error) {
	fastaPath = filepath.Join(dir, name+".fa")
	qualPath = filepath.Join(dir, name+".qual")
	ff, err := os.Create(fastaPath)
	if err != nil {
		return "", "", err
	}
	defer ff.Close()
	if err := WriteFasta(ff, batch); err != nil {
		return "", "", err
	}
	qf, err := os.Create(qualPath)
	if err != nil {
		return "", "", err
	}
	defer qf.Close()
	if err := WriteQual(qf, batch); err != nil {
		return "", "", err
	}
	return fastaPath, qualPath, nil
}

// Record is one raw record: its sequence number and payload lines joined.
type Record struct {
	Seq  int64
	Body []byte
}

// Scanner streams records (">N" header + body until next header) from r.
type Scanner struct {
	br   *bufio.Reader
	next []byte // buffered header line, without ">"
	err  error
}

// NewScanner wraps r for record-at-a-time reading.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{br: bufio.NewReaderSize(r, 64<<10)}
}

func (s *Scanner) readLine() ([]byte, error) {
	line, err := s.br.ReadBytes('\n')
	line = bytes.TrimRight(line, "\r\n")
	if len(line) == 0 && err != nil {
		return nil, err
	}
	return line, nil
}

// Next returns the next record, or io.EOF when the stream ends.
func (s *Scanner) Next() (Record, error) {
	if s.err != nil {
		return Record{}, s.err
	}
	var header []byte
	if s.next != nil {
		header = s.next
		s.next = nil
	} else {
		for {
			line, err := s.readLine()
			if err != nil {
				s.err = err
				return Record{}, err
			}
			if len(line) == 0 {
				continue
			}
			if line[0] != '>' {
				s.err = fmt.Errorf("fastaio: expected header, got %q", line)
				return Record{}, s.err
			}
			header = line[1:]
			break
		}
	}
	seq, err := strconv.ParseInt(string(bytes.TrimSpace(header)), 10, 64)
	if err != nil {
		s.err = fmt.Errorf("fastaio: non-numeric header %q (headers must be sequence numbers)", header)
		return Record{}, s.err
	}
	var body []byte
	for {
		line, err := s.readLine()
		if err == io.EOF {
			s.err = io.EOF // next call reports EOF
			return Record{Seq: seq, Body: body}, nil
		}
		if err != nil {
			s.err = err
			return Record{}, err
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			s.next = line[1:]
			return Record{Seq: seq, Body: body}, nil
		}
		if len(body) == 0 {
			body = append(body, line...)
		} else {
			body = append(body, ' ') // keeps qual tokens separated across lines
			body = append(body, line...)
		}
	}
}

// parseQual converts a space-separated score body to Phred bytes.
func parseQual(body []byte) ([]byte, error) {
	fields := bytes.Fields(body)
	out := make([]byte, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(string(f))
		if err != nil || v < 0 || v > 93 {
			return nil, fmt.Errorf("fastaio: bad quality token %q", f)
		}
		out[i] = byte(v)
	}
	return out, nil
}

// parseBases converts a fasta body (which may contain joiner spaces from
// multi-line records) to base codes, mapping non-ACGT characters to A as
// Reptile's preprocessing does.
func parseBases(body []byte) []dna.Base {
	out := make([]dna.Base, 0, len(body))
	for _, c := range body {
		if c == ' ' {
			continue
		}
		b, ok := dna.FromByte(c)
		if !ok {
			b = dna.A
		}
		out = append(out, b)
	}
	return out
}
