package reptile

import (
	"testing"

	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/spectrum"
)

func testConfig() Config {
	c := Default()
	c.Spec = kmer.Spec{K: 8, Overlap: 2} // tile length 14, step 6
	c.KmerThreshold = 3
	c.TileThreshold = 2
	return c
}

// perfectReads tiles a genome exhaustively with error-free reads.
func perfectReads(g *genome.Genome, readLen, stride int) []reads.Read {
	var out []reads.Read
	seq := int64(1)
	buf := make([]dna.Base, readLen)
	for p := 0; p+readLen <= g.Len(); p += stride {
		r := reads.Read{Seq: seq, Base: make([]dna.Base, readLen), Qual: make([]byte, readLen)}
		copy(r.Base, g.Seq.Slice(buf, p, p+readLen))
		for i := range r.Qual {
			r.Qual[i] = 38
		}
		out = append(out, r)
		seq++
	}
	return out
}

// mkShortRead builds an n-base read of As with mid quality.
func mkShortRead(n int) reads.Read {
	r := reads.Read{Seq: 1, Base: make([]dna.Base, n), Qual: make([]byte, n)}
	for i := range r.Qual {
		r.Qual[i] = 30
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bad := Default()
	bad.KmerThreshold = 0
	if bad.Validate() == nil {
		t.Error("accepted zero kmer threshold")
	}
	bad = Default()
	bad.MaxErrPerTile = 3
	if bad.Validate() == nil {
		t.Error("accepted radius 3")
	}
	bad = Default()
	bad.MaxErrPositions = 0
	if bad.Validate() == nil {
		t.Error("accepted zero error positions")
	}
	bad = Default()
	bad.ChunkReads = 0
	if bad.Validate() == nil {
		t.Error("accepted zero chunk size")
	}
}

func TestForCoverage(t *testing.T) {
	c96 := ForCoverage(96)
	c47 := ForCoverage(47)
	if c96.KmerThreshold <= c47.KmerThreshold {
		t.Errorf("thresholds not monotone in coverage: %d vs %d", c96.KmerThreshold, c47.KmerThreshold)
	}
	if ForCoverage(1).KmerThreshold < 3 || ForCoverage(1).TileThreshold < 2 {
		t.Error("low-coverage floor violated")
	}
}

func TestBuildSpectraCounts(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(2000, 1)
	batch := perfectReads(g, 50, 1) // ~40x coverage of every window
	kmers, tiles := BuildSpectra(batch, cfg)
	if kmers.Len() == 0 || tiles.Len() == 0 {
		t.Fatal("empty spectra")
	}
	// Every k-mer of an interior genome window must be solid.
	window := make([]dna.Base, 200)
	g.Seq.Slice(window, 500, 700)
	cfg.Spec.EachKmer(window, func(_ int, id kmer.ID) {
		if cnt, ok := kmers.Count(id); !ok || cnt < cfg.KmerThreshold {
			t.Fatalf("interior genome k-mer missing from spectrum (count %d)", cnt)
		}
	})
}

func TestCorrectorFixesSingleError(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(3000, 2)
	batch := perfectReads(g, 60, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
	c, err := NewCorrector(cfg, oracle)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one mid-read base of a fresh copy of read 100 and mark it
	// low-quality.
	r := batch[100].Clone()
	truth := r.Base[30]
	r.Base[30] = (truth + 1) % 4
	r.Qual[30] = 5
	res := c.CorrectRead(&r)
	if r.Base[30] != truth {
		t.Fatalf("error at 30 not corrected (res %+v)", res)
	}
	if res.BasesCorrected < 1 || res.ReadsChanged != 1 {
		t.Errorf("result %+v", res)
	}
	// The rest of the read is untouched.
	for i := range r.Base {
		if i != 30 && r.Base[i] != batch[100].Base[i] {
			t.Fatalf("collateral damage at %d", i)
		}
	}
}

func TestCorrectorFixesDoubleErrorInTile(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(3000, 3)
	batch := perfectReads(g, 60, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	r := batch[50].Clone()
	t1, t2 := r.Base[24], r.Base[27] // same tile (step 6, tile len 14)
	r.Base[24], r.Base[27] = (t1+2)%4, (t2+1)%4
	r.Qual[24], r.Qual[27] = 4, 6
	c.CorrectRead(&r)
	if r.Base[24] != t1 || r.Base[27] != t2 {
		t.Errorf("double error not corrected: got %v,%v want %v,%v", r.Base[24], r.Base[27], t1, t2)
	}
}

func TestCorrectorLeavesCleanReadsAlone(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(3000, 4)
	batch := perfectReads(g, 60, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	for i := 0; i < 50; i++ {
		r := batch[i].Clone()
		res := c.CorrectRead(&r)
		if res.BasesCorrected != 0 {
			t.Fatalf("read %d: clean read modified (%+v)", i, res)
		}
		if res.TilesSolid == 0 {
			t.Fatalf("read %d: no solid tiles in clean read", i)
		}
	}
}

func TestCorrectorShortRead(t *testing.T) {
	cfg := testConfig()
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: spectrum.NewHash(0), Tiles: spectrum.NewHash(0)})
	r := reads.Read{Seq: 1, Base: make([]dna.Base, 5), Qual: make([]byte, 5)}
	res := c.CorrectRead(&r)
	if res.BasesCorrected != 0 || res.TilesSolid != 0 {
		t.Errorf("short read produced work: %+v", res)
	}
}

func TestCorrectorAmbiguityAborts(t *testing.T) {
	// Two equally-supported candidate tiles must leave the read unchanged.
	cfg := testConfig()
	cfg.Spec = kmer.Spec{K: 4, Overlap: 2} // tile length 6
	cfg.KmerThreshold = 1
	cfg.TileThreshold = 1
	kmers := spectrum.NewHash(0)
	tiles := spectrum.NewHash(0)
	// Read: ACGTAC; two variants at position 5 are equally common.
	read := dna.MustEncode("ACGTAC")
	varA := dna.MustEncode("ACGTAA")
	varB := dna.MustEncode("ACGTAG")
	for _, v := range [][]dna.Base{varA, varB} {
		cfg.Spec.EachKmer(v, func(_ int, id kmer.ID) { kmers.Add(id, 5) })
		cfg.Spec.EachTile(v, func(_ int, id kmer.ID) { tiles.Add(id, 5) })
	}
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	r := reads.Read{Seq: 1, Base: read, Qual: []byte{30, 30, 30, 30, 30, 5}}
	res := c.CorrectRead(&r)
	if res.BasesCorrected != 0 {
		t.Errorf("ambiguous tile was corrected: %+v", res)
	}
	if dna.DecodeString(r.Base) != "ACGTAC" {
		t.Errorf("read mutated to %s", dna.DecodeString(r.Base))
	}
}

func TestMaxCorrectionsPerRead(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCorrectionsPerRead = 1
	g := genome.NewGenome(3000, 5)
	batch := perfectReads(g, 60, 1)
	kmers, tiles := BuildSpectra(batch, cfg)
	c, _ := NewCorrector(cfg, &LocalOracle{Kmers: kmers, Tiles: tiles})
	r := batch[10].Clone()
	// Errors in two far-apart tiles.
	r.Base[2] = (r.Base[2] + 1) % 4
	r.Qual[2] = 5
	r.Base[50] = (r.Base[50] + 1) % 4
	r.Qual[50] = 5
	res := c.CorrectRead(&r)
	if res.BasesCorrected > 1 {
		t.Errorf("corrected %d bases with cap 1", res.BasesCorrected)
	}
}

func TestEndToEndAccuracyOnSimulatedDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset pipeline")
	}
	g := genome.NewGenome(30000, 6)
	ds := genome.Simulate("t", g, 12000, genome.DefaultProfile(80), 7) // ~32x
	cfg := ForCoverage(ds.Coverage())
	corrected, res, err := CorrectDataset(ds.Reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ds.Evaluate(corrected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage=%.0fx errors=%d result=%+v accuracy=%v", ds.Coverage(), ds.TotalErrors(), res, acc)
	if acc.Gain() < 0.55 {
		t.Errorf("gain %.3f below 0.55: corrector is not actually correcting", acc.Gain())
	}
	if acc.Sensitivity() < 0.60 {
		t.Errorf("sensitivity %.3f below 0.60", acc.Sensitivity())
	}
	if acc.FP > acc.TP/4 {
		t.Errorf("false positives %d too high vs TP %d", acc.FP, acc.TP)
	}
	// Input must not have been mutated.
	if ds.Reads[0].Seq != corrected[0].Seq {
		t.Error("output order changed")
	}
}

func TestBuildSpectraAuto(t *testing.T) {
	g := genome.NewGenome(20000, 80)
	ds := genome.Simulate("auto", g, 12000, genome.DefaultProfile(80), 81) // ~48x
	cfg := Default()
	cfg.KmerThreshold = 40 // deliberately wrong
	cfg.TileThreshold = 40
	kmers, tiles, adjusted := BuildSpectraAuto(ds.Reads, cfg)
	if adjusted.KmerThreshold == 40 {
		t.Error("k-mer threshold not adjusted despite a clear bimodal histogram")
	}
	if adjusted.KmerThreshold < 2 || adjusted.KmerThreshold > 30 {
		t.Errorf("auto k-mer threshold %d implausible for ~48x coverage", adjusted.KmerThreshold)
	}
	if kmers.Len() == 0 || tiles.Len() == 0 {
		t.Error("auto thresholds pruned everything")
	}
	// The adjusted config must correct well.
	oracle := &LocalOracle{Kmers: kmers, Tiles: tiles}
	c, err := NewCorrector(adjusted, oracle)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]reads.Read, len(ds.Reads))
	for i := range ds.Reads {
		out[i] = ds.Reads[i].Clone()
	}
	c.CorrectBatch(out)
	acc, err := ds.Evaluate(out)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Gain() < 0.6 {
		t.Errorf("auto-threshold gain %.3f below 0.6 (%v)", acc.Gain(), acc)
	}
}

func TestBuildSpectraBloomApproximatesExact(t *testing.T) {
	cfg := testConfig()
	g := genome.NewGenome(5000, 8)
	batch := perfectReads(g, 60, 1)
	exactK, exactT := BuildSpectra(batch, cfg)
	bloomK, bloomT, filters := BuildSpectraBloom(batch, cfg, 0.01)
	if filters[0] == nil || filters[1] == nil {
		t.Fatal("missing filters")
	}
	// Every exact-solid k-mer must survive the bloom build (counts are off
	// by one, thresholds compensate).
	missingK := 0
	exactK.Each(func(e spectrum.Entry) bool {
		if _, ok := bloomK.Count(e.ID); !ok {
			missingK++
		}
		return true
	})
	if missingK > 0 {
		t.Errorf("%d solid k-mers missing from bloom-gated spectrum", missingK)
	}
	missingT := 0
	exactT.Each(func(e spectrum.Entry) bool {
		if _, ok := bloomT.Count(e.ID); !ok {
			missingT++
		}
		return true
	})
	if missingT > 0 {
		t.Errorf("%d solid tiles missing from bloom-gated spectrum", missingT)
	}
}

func TestBloomBuildSavesMemoryOnErrorRichData(t *testing.T) {
	g := genome.NewGenome(20000, 9)
	p := genome.DefaultProfile(80)
	p.ErrorBoost = 3
	ds := genome.Simulate("t", g, 8000, p, 10)
	cfg := ForCoverage(ds.Coverage())
	exactK, _ := func() (*spectrum.HashStore, *spectrum.HashStore) {
		k := spectrum.NewHash(0)
		tl := spectrum.NewHash(0)
		for i := range ds.Reads {
			AccumulateRead(&ds.Reads[i], cfg.Spec, k, tl)
		}
		return k, tl
	}()
	bloomK, _, _ := BuildSpectraBloom(ds.Reads, cfg, 0.01)
	if bloomK.Len() >= exactK.Len() {
		t.Errorf("bloom gate did not shrink the exact table: %d vs %d", bloomK.Len(), exactK.Len())
	}
}

func TestLocalOracleCountsLookups(t *testing.T) {
	k := spectrum.NewHash(0)
	k.Add(1, 5)
	tl := spectrum.NewHash(0)
	o := &LocalOracle{Kmers: k, Tiles: tl}
	o.KmerCount(1)
	o.KmerCount(2)
	o.TileCount(3)
	if o.KmerLookups != 2 || o.TileLookups != 1 {
		t.Errorf("lookup counters: %d kmer, %d tile", o.KmerLookups, o.TileLookups)
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{ReadsProcessed: 1, BasesCorrected: 2, TilesSolid: 3}
	a.Add(Result{ReadsProcessed: 10, ReadsChanged: 1, BasesCorrected: 20, TilesRepaired: 4, TilesGivenUp: 5})
	if a.ReadsProcessed != 11 || a.BasesCorrected != 22 || a.TilesRepaired != 4 || a.TilesGivenUp != 5 || a.ReadsChanged != 1 || a.TilesSolid != 3 {
		t.Errorf("Add = %+v", a)
	}
}
