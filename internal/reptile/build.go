package reptile

import (
	"reptile/internal/bloom"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/spectrum"
)

// BuildSpectra constructs the k-mer and tile spectra from a read set and
// prunes entries below the configured thresholds. This is the sequential
// equivalent of the paper's Steps II-III collapsed onto one rank.
func BuildSpectra(batch []reads.Read, cfg Config) (kmers, tiles *spectrum.HashStore) {
	kmers = spectrum.NewHash(len(batch) * 8)
	tiles = spectrum.NewHash(len(batch) * 2)
	for i := range batch {
		AccumulateRead(&batch[i], cfg.Spec, kmers, tiles)
	}
	kmers.Prune(cfg.KmerThreshold)
	tiles.Prune(cfg.TileThreshold)
	return kmers, tiles
}

// AccumulateRead adds one read's k-mers and tiles into the given stores.
// The distributed spectrum-construction phase calls this per read before
// routing entries to their owning ranks. Tiles are extracted at every
// offset (stride 1) so the spectrum supports correction walks of any phase.
func AccumulateRead(r *reads.Read, spec kmer.Spec, kmers, tiles *spectrum.HashStore) {
	spec.EachKmer(r.Base, func(_ int, id kmer.ID) { kmers.Add(id, 1) })
	spec.EachTileStep(r.Base, 1, func(_ int, id kmer.ID) { tiles.Add(id, 1) })
}

// BuildSpectraAuto is BuildSpectra with histogram-derived thresholds: the
// count-of-counts valley between the error peak and the coverage peak
// replaces the configured thresholds (which remain the fallback for
// histograms without a usable valley). It returns the adjusted config so
// the corrector prunes and validates with the same values.
func BuildSpectraAuto(batch []reads.Read, cfg Config) (kmers, tiles *spectrum.HashStore, adjusted Config) {
	kmers = spectrum.NewHash(len(batch) * 8)
	tiles = spectrum.NewHash(len(batch) * 2)
	for i := range batch {
		AccumulateRead(&batch[i], cfg.Spec, kmers, tiles)
	}
	adjusted = cfg
	adjusted.KmerThreshold = spectrum.ValleyThreshold(kmers.Histogram(), cfg.KmerThreshold)
	adjusted.TileThreshold = spectrum.ValleyThreshold(tiles.Histogram(), cfg.TileThreshold)
	kmers.Prune(adjusted.KmerThreshold)
	tiles.Prune(adjusted.TileThreshold)
	return kmers, tiles, adjusted
}

// BuildSpectraBloom is BuildSpectra with a Bloom-filter gate in front of
// each exact table: an ID only enters the hash table once the filter has
// seen it before, dropping the long tail of singleton error k-mers from
// memory (the "memory-efficient alternative" of paper Step III). Counts for
// gated entries are one below their true value, which is immaterial after
// threshold pruning as long as thresholds are >= 2.
func BuildSpectraBloom(batch []reads.Read, cfg Config, fpRate float64) (kmers, tiles *spectrum.HashStore, filters [2]*bloom.Filter) {
	nk := 0
	for i := range batch {
		nk += cfg.Spec.KmersPerRead(len(batch[i].Base))
	}
	kf := bloom.New(nk, fpRate)
	tf := bloom.New(nk/2+1, fpRate)
	kmers = spectrum.NewHash(len(batch))
	tiles = spectrum.NewHash(len(batch) / 2)
	for i := range batch {
		r := &batch[i]
		cfg.Spec.EachKmer(r.Base, func(_ int, id kmer.ID) {
			if kf.Add(id) {
				kmers.Add(id, 1)
			}
		})
		cfg.Spec.EachTileStep(r.Base, 1, func(_ int, id kmer.ID) {
			if tf.Add(id) {
				tiles.Add(id, 1)
			}
		})
	}
	// The filter absorbed each ID's first occurrence; thresholds shift down
	// by one to compensate.
	kt, tt := cfg.KmerThreshold, cfg.TileThreshold
	if kt > 1 {
		kt--
	}
	if tt > 1 {
		tt--
	}
	kmers.Prune(kt)
	tiles.Prune(tt)
	return kmers, tiles, [2]*bloom.Filter{kf, tf}
}
