// Command readsim generates synthetic fasta + quality datasets with known
// ground truth, in the exact input format the corrector consumes (headers
// are ascending sequence numbers, as the paper's preprocessing produces).
//
// Usage:
//
//	readsim -preset ecoli -scale 0.25 -out /tmp/data       # Table I preset
//	readsim -genome 100000 -reads 50000 -len 102 -out /tmp # custom
//	readsim -preset ecoli -localized -out /tmp             # error-dense stretches
//
// It writes <name>.fa, <name>.qual and <name>.truth (tab-separated injected
// errors: seq, pos, true base) under -out.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"reptile/internal/fastaio"
	"reptile/internal/genome"
)

func main() {
	var (
		preset    = flag.String("preset", "", "ecoli, drosophila, or human (Table I presets)")
		scale     = flag.Float64("scale", 1.0, "scale factor for the preset")
		genomeLen = flag.Int("genome", 100000, "genome length (custom mode)")
		nReads    = flag.Int("reads", 0, "read count (custom mode; 0 = derive from coverage)")
		readLen   = flag.Int("len", 102, "read length (custom mode)")
		coverage  = flag.Float64("coverage", 50, "coverage (custom mode, when -reads=0)")
		seed      = flag.Int64("seed", 42, "random seed")
		localized = flag.Bool("localized", false, "cluster errors in stretches of the file (load-imbalance input)")
		outDir    = flag.String("out", ".", "output directory")
		name      = flag.String("name", "", "dataset name (default: preset name or 'custom')")
	)
	flag.Parse()

	var ds *genome.Dataset
	switch *preset {
	case "ecoli":
		ds = build(genome.EColiSim, *scale, *localized)
	case "drosophila":
		ds = build(genome.DrosophilaSim, *scale, *localized)
	case "human":
		ds = build(genome.HumanSim, *scale, *localized)
	case "":
		n := *nReads
		if n == 0 {
			n = int(*coverage * float64(*genomeLen) / float64(*readLen))
		}
		prof := genome.DefaultProfile(*readLen)
		if *localized {
			prof = genome.LocalizedProfile(*readLen)
		}
		g := genome.NewGenome(*genomeLen, *seed)
		ds = genome.Simulate("custom", g, n, prof, *seed+1)
	default:
		fmt.Fprintf(os.Stderr, "readsim: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *name != "" {
		ds.Name = *name
	}

	fa, qual, err := fastaio.WriteDataset(*outDir, ds.Name, ds.Reads)
	if err != nil {
		fatal(err)
	}
	truthPath := filepath.Join(*outDir, ds.Name+".truth")
	if err := writeTruth(truthPath, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("dataset    %s\nreads      %d (length %d, coverage %.0fX)\ngenome     %d\nerrors     %d\nfasta      %s\nquality    %s\ntruth      %s\n",
		ds.Name, ds.NumReads(), ds.Profile.ReadLen, ds.Coverage(), ds.Genome.Len(), ds.TotalErrors(), fa, qual, truthPath)
}

func build(p genome.Preset, scale float64, localized bool) *genome.Dataset {
	sp := p.Scaled(scale)
	if localized {
		return sp.BuildLocalized()
	}
	return sp.Build()
}

func writeTruth(path string, ds *genome.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, sites := range ds.Truth {
		for _, s := range sites {
			if _, err := fmt.Fprintf(w, "%d\t%d\t%s\n", ds.Reads[i].Seq, s.Pos, s.True); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "readsim: %v\n", err)
	os.Exit(1)
}
