package collective

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestBcastTreeAllRootsAndSizes(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 8, 13, 16} {
		for root := 0; root < np; root += 1 + np/3 {
			run(t, np, func(c *Comm) error {
				var in []byte
				if c.Rank() == root {
					in = []byte(fmt.Sprintf("payload-from-%d", root))
				}
				out, err := c.BcastTree(root, in)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("payload-from-%d", root)
				if string(out) != want {
					return fmt.Errorf("np=%d root=%d rank=%d: got %q", np, root, c.Rank(), out)
				}
				return nil
			})
		}
	}
}

func TestGatherTreeAllRootsAndSizes(t *testing.T) {
	for _, np := range []int{1, 2, 3, 7, 8, 12, 16} {
		for root := 0; root < np; root += 1 + np/2 {
			run(t, np, func(c *Comm) error {
				buf := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1) // varied lengths
				out, err := c.GatherTree(root, buf)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if out != nil {
						return fmt.Errorf("non-root got %v", out)
					}
					return nil
				}
				for r := 0; r < np; r++ {
					if len(out[r]) != r+1 {
						return fmt.Errorf("root: from %d got %d bytes, want %d", r, len(out[r]), r+1)
					}
					for _, b := range out[r] {
						if b != byte(r) {
							return fmt.Errorf("root: corrupted payload from %d", r)
						}
					}
				}
				return nil
			})
		}
	}
}

func TestGatherTreeEmptyBuffers(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		out, err := c.GatherTree(0, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && len(out) != 6 {
			return fmt.Errorf("root got %d slots", len(out))
		}
		return nil
	})
}

func TestBarrierDissemination(t *testing.T) {
	for _, np := range []int{1, 2, 3, 8, 11} {
		var mu sync.Mutex
		entered := 0
		run(t, np, func(c *Comm) error {
			mu.Lock()
			entered++
			mu.Unlock()
			if err := c.BarrierDissemination(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if entered != np {
				return fmt.Errorf("released with %d/%d entered", entered, np)
			}
			return nil
		})
	}
}

func TestBarrierDisseminationRepeated(t *testing.T) {
	// Back-to-back barriers must not cross-talk (per-round tags).
	run(t, 7, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := c.BarrierDissemination(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestTreeAndFlatAgree(t *testing.T) {
	run(t, 9, func(c *Comm) error {
		in := []byte{byte(c.Rank())}
		flat, err := c.GatherFlat(3, in)
		if err != nil {
			return err
		}
		tree, err := c.GatherTree(3, in)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			for r := range flat {
				if !bytes.Equal(flat[r], tree[r]) {
					return fmt.Errorf("flat/tree disagree for rank %d", r)
				}
			}
		}
		var bin []byte
		if c.Rank() == 3 {
			bin = []byte("x")
		}
		bf, err := c.BcastFlat(3, bin)
		if err != nil {
			return err
		}
		bt, err := c.BcastTree(3, bin)
		if err != nil {
			return err
		}
		if !bytes.Equal(bf, bt) {
			return fmt.Errorf("bcast flat/tree disagree")
		}
		return nil
	})
}

func TestParseFramesErrors(t *testing.T) {
	out := make([][]byte, 2)
	if err := parseFrames([]byte{1, 2, 3}, out); err == nil {
		t.Error("accepted truncated header")
	}
	buf := appendFrame(nil, 5, []byte("x")) // rank out of range
	if err := parseFrames(buf, out); err == nil {
		t.Error("accepted out-of-range rank")
	}
	buf = appendFrame(nil, 1, []byte("abc"))
	if err := parseFrames(buf[:len(buf)-1], out); err == nil {
		t.Error("accepted truncated body")
	}
}
