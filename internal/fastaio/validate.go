package fastaio

import (
	"fmt"
	"io"
	"os"
)

// ValidationReport summarizes a fasta + quality pair check.
type ValidationReport struct {
	Reads       int
	Bases       int64
	MinLen      int
	MaxLen      int
	FirstSeq    int64
	LastSeq     int64
	NonACGT     int64 // characters mapped to A at parse time
	MinQ, MaxQ  byte
	QualSamples int64
}

// String renders the report.
func (r ValidationReport) String() string {
	return fmt.Sprintf("reads=%d bases=%d len=[%d,%d] seq=[%d,%d] nonACGT=%d qual=[%d,%d]",
		r.Reads, r.Bases, r.MinLen, r.MaxLen, r.FirstSeq, r.LastSeq, r.NonACGT, r.MinQ, r.MaxQ)
}

// ValidatePair verifies that a fasta + quality pair is well-formed for the
// parallel reader: strictly ascending sequence numbers starting anywhere,
// identical numbering in both files, matching per-read lengths, and sane
// quality values. It returns summary statistics on success and the first
// violation otherwise.
func ValidatePair(fastaPath, qualPath string) (ValidationReport, error) {
	var rep ValidationReport
	ff, err := os.Open(fastaPath)
	if err != nil {
		return rep, err
	}
	defer ff.Close()
	qf, err := os.Open(qualPath)
	if err != nil {
		return rep, err
	}
	defer qf.Close()

	fs, qs := NewScanner(ff), NewScanner(qf)
	var prevSeq int64
	rep.MinQ = 255
	for {
		frec, ferr := fs.Next()
		qrec, qerr := qs.Next()
		if ferr == io.EOF && qerr == io.EOF {
			break
		}
		if ferr == io.EOF || qerr == io.EOF {
			return rep, fmt.Errorf("fastaio: files have different record counts (after %d reads)", rep.Reads)
		}
		if ferr != nil {
			return rep, fmt.Errorf("fastaio: fasta: %w", ferr)
		}
		if qerr != nil {
			return rep, fmt.Errorf("fastaio: quality: %w", qerr)
		}
		if frec.Seq != qrec.Seq {
			return rep, fmt.Errorf("fastaio: record %d: fasta seq %d vs quality seq %d", rep.Reads+1, frec.Seq, qrec.Seq)
		}
		if rep.Reads > 0 && frec.Seq <= prevSeq {
			return rep, fmt.Errorf("fastaio: sequence numbers not strictly ascending at %d (prev %d)", frec.Seq, prevSeq)
		}
		if rep.Reads == 0 {
			rep.FirstSeq = frec.Seq
		}
		prevSeq = frec.Seq
		rep.LastSeq = frec.Seq

		nBases := 0
		for _, c := range frec.Body {
			if c == ' ' {
				continue
			}
			nBases++
			switch c {
			case 'A', 'C', 'G', 'T', 'a', 'c', 'g', 't':
			default:
				rep.NonACGT++
			}
		}
		qual, err := parseQual(qrec.Body)
		if err != nil {
			return rep, fmt.Errorf("fastaio: sequence %d: %w", frec.Seq, err)
		}
		if len(qual) != nBases {
			return rep, fmt.Errorf("fastaio: sequence %d: %d bases but %d quality scores", frec.Seq, nBases, len(qual))
		}
		for _, q := range qual {
			if q < rep.MinQ {
				rep.MinQ = q
			}
			if q > rep.MaxQ {
				rep.MaxQ = q
			}
			rep.QualSamples++
		}
		if rep.Reads == 0 || nBases < rep.MinLen {
			rep.MinLen = nBases
		}
		if nBases > rep.MaxLen {
			rep.MaxLen = nBases
		}
		rep.Bases += int64(nBases)
		rep.Reads++
	}
	if rep.Reads == 0 {
		return rep, fmt.Errorf("fastaio: empty dataset")
	}
	return rep, nil
}
