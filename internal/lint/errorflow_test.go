package lint

import "testing"

func TestErrorFlowGolden(t *testing.T) {
	runGolden(t, NewErrorFlow(), "errorflow", "reptile/internal/lint/testdata/errorflow")
}
