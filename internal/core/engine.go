package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"reptile/internal/collective"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// RankOutput is what one rank produces.
type RankOutput struct {
	Corrected []reads.Read
	Stats     stats.Rank
	Result    reptile.Result
}

// rankCtx carries one rank's state through the pipeline phases. The
// endpoint is held as transport.Conn so the whole pipeline — collectives,
// responder, remote lookups — runs unchanged under the Chaos wrapper.
type rankCtx struct {
	e    transport.Conn
	comm *collective.Comm
	opts Options
	rank int
	np   int
	st   stats.Rank

	myReads []reads.Read

	hashKmer, hashTile   *spectrum.HashStore // owned entries
	readsKmer, readsTile *spectrum.HashStore // non-owned entries from own reads
	replKmer, replTile   spectrum.Lookuper   // full replicas (heuristic)
	groupKmer, groupTile *spectrum.HashStore // partial-replication copies
}

// RunRank executes the full pipeline for one rank. Every rank of the group
// must call it concurrently (collectives synchronize them); it works over
// any transport, so one process per rank over TCP behaves identically to
// goroutine ranks.
//
// On failure — own phase error, a lost peer, a corrupt frame, or a peer's
// abort broadcast — RunRank returns an AbortError naming the originating
// rank, its phase, and the root cause; the failing rank broadcasts the
// abort so every peer unblocks promptly instead of hanging in a collective
// or the responder loop.
func RunRank(e transport.Conn, src Source, opts Options) (*RankOutput, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ctx := &rankCtx{
		e:         e,
		comm:      collective.New(e),
		opts:      opts,
		rank:      e.Rank(),
		np:        e.Size(),
		hashKmer:  spectrum.NewHash(0),
		hashTile:  spectrum.NewHash(0),
		readsKmer: spectrum.NewHash(0),
		readsTile: spectrum.NewHash(0),
	}
	ctx.st.Rank = ctx.rank

	phase := func(p stats.Phase, f func() error) error {
		start := time.Now()
		err := f()
		ctx.st.Wall[p] += time.Since(start)
		return err
	}

	if err := phase(stats.PhaseRead, func() error { return ctx.readPhase(src) }); err != nil {
		return nil, ctx.fail("read", err)
	}
	if err := phase(stats.PhaseBalance, ctx.balancePhase); err != nil {
		return nil, ctx.fail("balance", err)
	}
	if err := phase(stats.PhaseSpectrum, ctx.spectrumPhase); err != nil {
		return nil, ctx.fail("spectrum", err)
	}
	if err := phase(stats.PhaseExchange, ctx.postExchangePhase); err != nil {
		return nil, ctx.fail("exchange", err)
	}
	var res reptile.Result
	if err := phase(stats.PhaseCorrect, func() error {
		var err error
		res, err = ctx.correctPhase()
		return err
	}); err != nil {
		return nil, ctx.fail("correct", err)
	}

	ctx.st.BasesCorrected = res.BasesCorrected
	ctx.st.ReadsChanged = res.ReadsChanged
	ctx.st.MsgsSent = e.Counters().MsgsSent()
	ctx.st.BytesSent = e.Counters().BytesSent()
	ctx.st.MaxInboxDepth = int64(e.MaxQueueDepth())
	ctx.observeFaults()
	return &RankOutput{Corrected: ctx.myReads, Stats: ctx.st, Result: res}, nil
}

// observeFaults records the chaos-schedule fault count when the endpoint is
// a fault-injecting wrapper.
func (ctx *rankCtx) observeFaults() {
	if f, ok := ctx.e.(interface{ FaultsInjected() int64 }); ok {
		ctx.st.FaultsInjected = f.FaultsInjected()
	}
}

// readPhase is Step I: pull this rank's shard from the source. Reads are
// cloned so correction never aliases caller-owned storage.
func (ctx *rankCtx) readPhase(src Source) error {
	br, err := src.Open(ctx.rank, ctx.np, ctx.opts.Config.ChunkReads)
	if err != nil {
		return err
	}
	defer br.Close()
	for {
		batch, err := br.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := range batch {
			ctx.st.ReadBases += int64(len(batch[i].Base))
			ctx.myReads = append(ctx.myReads, batch[i].Clone())
		}
	}
	return nil
}

// balancePhase is the static load-balancing exchange of Section III-A:
// reads are bucketed by content hash and shipped to their owner ranks with
// one all-to-all, "randomizing" the file order so error-dense stretches
// spread across all ranks.
func (ctx *rankCtx) balancePhase() error {
	if !ctx.opts.LoadBalance {
		ctx.st.ReadsAssigned = int64(len(ctx.myReads))
		return nil
	}
	buckets := make([][]reads.Read, ctx.np)
	var kept []reads.Read
	for i := range ctx.myReads {
		owner := ctx.myReads[i].OwnerRank(ctx.np)
		if owner == ctx.rank {
			kept = append(kept, ctx.myReads[i])
		} else {
			buckets[owner] = append(buckets[owner], ctx.myReads[i])
			ctx.st.ReadsExchanged++
		}
	}
	bufs := make([][]byte, ctx.np)
	for r, b := range buckets {
		if r != ctx.rank {
			bufs[r] = reads.EncodeBatch(b)
			ctx.st.ExchangeBytes += int64(len(bufs[r]))
		}
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	ctx.myReads = kept
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		batch, err := reads.DecodeBatch(buf)
		if err != nil {
			return fmt.Errorf("decoding reads from rank %d: %w", r, err)
		}
		ctx.myReads = append(ctx.myReads, batch...)
	}
	// Deterministic processing order regardless of arrival order.
	sort.Slice(ctx.myReads, func(i, j int) bool { return ctx.myReads[i].Seq < ctx.myReads[j].Seq })
	ctx.st.ReadsAssigned = int64(len(ctx.myReads))
	return nil
}

// spectrumPhase is Steps II-III: build the owned/reads hash-table pairs and
// merge counts at the owners with all-to-all exchanges. In batch-reads mode
// the exchange runs after every chunk and the reads tables are cleared, so
// their size stays bounded by the chunk (paper Section III-B); otherwise a
// single exchange runs at the end.
func (ctx *rankCtx) spectrumPhase() error {
	chunk := len(ctx.myReads)
	if ctx.opts.Heuristics.BatchReads {
		chunk = ctx.opts.Config.ChunkReads
	}
	if chunk < 1 {
		chunk = 1
	}
	rounds := int64((len(ctx.myReads) + chunk - 1) / chunk)
	// Rank batch counts may differ; everyone must join every collective
	// (the paper's MPI_Reduce-MAX step).
	maxRounds, err := ctx.comm.AllreduceMaxInt64(rounds)
	if err != nil {
		return err
	}
	spec := ctx.opts.Config.Spec
	// With RetainReadKmers the per-round exchange tables are folded into
	// cumulative retained tables, so entries are shipped to their owners
	// exactly once even across batch rounds.
	var retainedK, retainedT *spectrum.HashStore
	if ctx.opts.Heuristics.RetainReadKmers {
		retainedK = spectrum.NewHash(0)
		retainedT = spectrum.NewHash(0)
	}
	for round := int64(0); round < maxRounds; round++ {
		lo := int(round) * chunk
		hi := lo + chunk
		if lo > len(ctx.myReads) {
			lo = len(ctx.myReads)
		}
		if hi > len(ctx.myReads) {
			hi = len(ctx.myReads)
		}
		for i := lo; i < hi; i++ {
			ctx.accumulate(&ctx.myReads[i], spec)
		}
		retLen := 0
		if retainedK != nil {
			retLen = retainedK.Len()
		}
		if v := int64(ctx.readsKmer.Len() + retLen); ctx.st.ReadsKmers < v {
			ctx.st.ReadsKmers = v
		}
		retLen = 0
		if retainedT != nil {
			retLen = retainedT.Len()
		}
		if v := int64(ctx.readsTile.Len() + retLen); ctx.st.ReadsTiles < v {
			ctx.st.ReadsTiles = v
		}
		ctx.observeMem()
		if err := ctx.mergeToOwners(ctx.readsKmer, ctx.hashKmer); err != nil {
			return err
		}
		if err := ctx.mergeToOwners(ctx.readsTile, ctx.hashTile); err != nil {
			return err
		}
		if retainedK != nil {
			ctx.readsKmer.Each(func(e spectrum.Entry) bool { retainedK.Add(e.ID, e.Count); return true })
			ctx.readsTile.Each(func(e spectrum.Entry) bool { retainedT.Add(e.ID, e.Count); return true })
		}
		ctx.readsKmer.Clear()
		ctx.readsTile.Clear()
	}
	if retainedK != nil {
		ctx.readsKmer, ctx.readsTile = retainedK, retainedT
	}
	if err := ctx.resolveThresholds(); err != nil {
		return err
	}
	ctx.hashKmer.Prune(ctx.opts.Config.KmerThreshold)
	ctx.hashTile.Prune(ctx.opts.Config.TileThreshold)
	ctx.st.OwnedKmers = int64(ctx.hashKmer.Len())
	ctx.st.OwnedTiles = int64(ctx.hashTile.Len())
	ctx.observeMem()
	return nil
}

// accumulate routes one read's k-mers and tiles into the owned or reads
// table by owner rank (Step II).
func (ctx *rankCtx) accumulate(r *reads.Read, spec kmer.Spec) {
	spec.EachKmer(r.Base, func(_ int, id kmer.ID) {
		ctx.st.KmersExtracted++
		if kmer.Owner(id, ctx.np) == ctx.rank {
			ctx.hashKmer.Add(id, 1)
		} else {
			ctx.readsKmer.Add(id, 1)
		}
	})
	spec.EachTileStep(r.Base, 1, func(_ int, id kmer.ID) {
		ctx.st.TilesExtracted++
		if kmer.Owner(id, ctx.np) == ctx.rank {
			ctx.hashTile.Add(id, 1)
		} else {
			ctx.readsTile.Add(id, 1)
		}
	})
}

// mergeToOwners ships every entry of reads to its owner with one
// all-to-all and merges what this rank receives into own (Step III).
func (ctx *rankCtx) mergeToOwners(readsTable, own *spectrum.HashStore) error {
	buckets := make([][]spectrum.Entry, ctx.np)
	readsTable.Each(func(e spectrum.Entry) bool {
		buckets[kmer.Owner(e.ID, ctx.np)] = append(buckets[kmer.Owner(e.ID, ctx.np)], e)
		return true
	})
	bufs := make([][]byte, ctx.np)
	for r, b := range buckets {
		if r == ctx.rank || len(b) == 0 {
			continue
		}
		bufs[r] = spectrum.EncodeEntries(nil, b)
		ctx.st.ExchangeBytes += int64(len(bufs[r]))
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(buf)
		if err != nil {
			return fmt.Errorf("merging entries from rank %d: %w", r, err)
		}
		for _, e := range entries {
			if kmer.Owner(e.ID, ctx.np) != ctx.rank {
				return fmt.Errorf("rank %d received entry owned by rank %d", ctx.rank, kmer.Owner(e.ID, ctx.np))
			}
			own.Add(e.ID, e.Count)
		}
	}
	return nil
}

// postExchangePhase runs the optional post-construction exchanges: global
// count resolution of retained reads tables, full replication, and partial
// group replication. Every rank participates in the same collectives in the
// same order even when a mode is off (with empty buffers), keeping the
// collective schedule aligned.
func (ctx *rankCtx) postExchangePhase() error {
	h := ctx.opts.Heuristics
	if h.RetainReadKmers {
		if err := ctx.resolveReadsTable(ctx.readsKmer, ctx.hashKmer); err != nil {
			return err
		}
		if err := ctx.resolveReadsTable(ctx.readsTile, ctx.hashTile); err != nil {
			return err
		}
	} else {
		ctx.readsKmer, ctx.readsTile = nil, nil
	}
	if h.ReplicateKmers {
		repl, err := ctx.replicate(ctx.hashKmer)
		if err != nil {
			return err
		}
		ctx.replKmer = repl
	}
	if h.ReplicateTiles {
		repl, err := ctx.replicate(ctx.hashTile)
		if err != nil {
			return err
		}
		ctx.replTile = repl
	}
	if g := h.PartialReplicationGroup; g > 1 {
		gk, err := ctx.groupReplicate(ctx.hashKmer, g)
		if err != nil {
			return err
		}
		gt, err := ctx.groupReplicate(ctx.hashTile, g)
		if err != nil {
			return err
		}
		ctx.groupKmer, ctx.groupTile = gk, gt
	}
	ctx.st.MemAfterConstruct = ctx.currentMem()
	ctx.observeMem()
	return nil
}

// resolveReadsTable swaps the local counts in a retained reads table for
// global counts fetched from the owners in bulk ("Read K-mers/Tiles"):
// one all-to-all carries the IDs, a second carries the counts back, and a
// zero count records a definitive absence.
func (ctx *rankCtx) resolveReadsTable(readsTable, own *spectrum.HashStore) error {
	ids := make([][]kmer.ID, ctx.np)
	readsTable.Each(func(e spectrum.Entry) bool {
		o := kmer.Owner(e.ID, ctx.np)
		ids[o] = append(ids[o], e.ID)
		return true
	})
	bufs := make([][]byte, ctx.np)
	for r, list := range ids {
		if r == ctx.rank || len(list) == 0 {
			continue
		}
		buf := make([]byte, 0, len(list)*12)
		entries := make([]spectrum.Entry, len(list))
		for i, id := range list {
			entries[i] = spectrum.Entry{ID: id}
		}
		bufs[r] = spectrum.EncodeEntries(buf, entries)
		ctx.st.ExchangeBytes += int64(len(bufs[r]))
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	// Answer each requester in its own order.
	resp := make([][]byte, ctx.np)
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(buf)
		if err != nil {
			return err
		}
		for i := range entries {
			cnt, _ := own.Count(entries[i].ID)
			entries[i].Count = cnt // 0 = pruned/absent
		}
		resp[r] = spectrum.EncodeEntries(nil, entries)
		ctx.st.ExchangeBytes += int64(len(resp[r]))
	}
	answers, err := ctx.comm.Alltoallv(resp)
	if err != nil {
		return err
	}
	for r, buf := range answers {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(buf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			readsTable.Set(e.ID, e.Count)
		}
	}
	return nil
}

// replicate allgathers the owned spectrum onto every rank and lays it out
// per the configured replicated layout (hash by default; sorted or
// cache-aware arrays reproduce the prior parallelizations' storage).
func (ctx *rankCtx) replicate(own *spectrum.HashStore) (spectrum.Lookuper, error) {
	buf := spectrum.EncodeEntries(nil, own.Entries())
	ctx.st.ExchangeBytes += int64(len(buf)) * int64(ctx.np-1)
	all, err := ctx.comm.Allgatherv(buf)
	if err != nil {
		return nil, err
	}
	repl := spectrum.NewHash(own.Len() * ctx.np)
	for _, b := range all {
		entries, err := spectrum.DecodeEntries(b)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			repl.Set(e.ID, e.Count)
		}
	}
	switch ctx.opts.Heuristics.ReplicatedLayout {
	case LayoutSorted:
		return spectrum.NewSorted(repl.Entries()), nil
	case LayoutCacheAware:
		return spectrum.NewCacheAware(repl.Entries()), nil
	}
	return repl, nil
}

// groupReplicate exchanges owned spectra within replication groups of g
// consecutive ranks (the paper's proposed partial-replication extension).
func (ctx *rankCtx) groupReplicate(own *spectrum.HashStore, g int) (*spectrum.HashStore, error) {
	buf := spectrum.EncodeEntries(nil, own.Entries())
	bufs := make([][]byte, ctx.np)
	myGroup := ctx.rank / g
	for r := 0; r < ctx.np; r++ {
		if r != ctx.rank && r/g == myGroup {
			bufs[r] = buf
			ctx.st.ExchangeBytes += int64(len(buf))
		}
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return nil, err
	}
	group := spectrum.NewHash(own.Len() * g)
	own.Each(func(e spectrum.Entry) bool { group.Set(e.ID, e.Count); return true })
	for r, b := range got {
		if r == ctx.rank || len(b) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(b)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			group.Set(e.ID, e.Count)
		}
	}
	return group, nil
}

// currentMem sums the live table footprint. Reads themselves are excluded:
// the paper streams them from the file precisely to keep them out of the
// 512 MB budget, and our in-memory copy is an artifact of returning
// corrected reads to the caller.
func (ctx *rankCtx) currentMem() int64 {
	var total int64
	for _, s := range []*spectrum.HashStore{
		ctx.hashKmer, ctx.hashTile, ctx.readsKmer, ctx.readsTile,
		ctx.groupKmer, ctx.groupTile,
	} {
		if s != nil {
			total += s.MemBytes()
		}
	}
	for _, s := range []spectrum.Lookuper{ctx.replKmer, ctx.replTile} {
		if s != nil {
			total += s.MemBytes()
		}
	}
	return total
}

// observeMem records the table-footprint high-water mark.
func (ctx *rankCtx) observeMem() {
	ctx.st.ObserveMem(ctx.currentMem())
}
