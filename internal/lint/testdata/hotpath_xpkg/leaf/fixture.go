// Package leaf is reached from an annotated hot path in package caller;
// it carries no annotation of its own.
package leaf

// Sum is allocation-free.
func Sum(x int) int { return x + 1 }

// Scale allocates per iteration; flagged only because the annotated
// caller.Drive reaches it through the module call graph.
func Scale(xs []int) {
	for i := range xs {
		buf := make([]int, 1)
		buf[0] = xs[i] * 2
		xs[i] = buf[0]
	}
}
