package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// FreezeGuard enforces the "// frozen: <why>" annotation convention for
// spectrum stores that are packed at a freeze point and immutable afterwards:
// a struct field carrying that comment may only be assigned, or have a store
// mutator (Add/Set/Delete/Clear/Prune/Release) invoked on it, inside a
// function whose doc comment carries a "reptile-lint:build" directive — the
// declared build/freeze phase that owns the store's lifecycle. Reads are
// always allowed; immutable shared reads are the point of freezing.
//
// Like lockguard, the check is syntactic with intra-package type resolution
// on the owning struct (the frozen field's own type may live in another
// package), and test files are exempt: tests construct frozen stores
// directly to probe edge cases.
type FreezeGuard struct{}

// NewFreezeGuard returns the analyzer with default configuration.
func NewFreezeGuard() *FreezeGuard { return &FreezeGuard{} }

// Name implements Analyzer.
func (*FreezeGuard) Name() string { return "freezeguard" }

// Doc implements Analyzer.
func (*FreezeGuard) Doc() string {
	return "flags writes to '// frozen:' fields outside functions marked reptile-lint:build"
}

var (
	frozenRe     = regexp.MustCompile(`\bfrozen:`)
	buildPhaseRe = regexp.MustCompile(`reptile-lint:build\b`)
)

// storeMutators are the spectrum store methods that modify entries or
// release the backing storage.
var storeMutators = map[string]bool{
	"Add": true, "Set": true, "Delete": true,
	"Clear": true, "Prune": true, "Release": true,
}

// frozenFields indexes every struct declared in the package to its set of
// frozen-annotated field names.
func frozenFields(pkg *Package) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				frozen := map[string]bool{}
				for _, fld := range st.Fields.List {
					annotated := false
					for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
						if cg != nil && frozenRe.MatchString(cg.Text()) {
							annotated = true
						}
					}
					if !annotated {
						continue
					}
					for _, name := range fld.Names {
						frozen[name.Name] = true
					}
				}
				if len(frozen) > 0 {
					out[ts.Name.Name] = frozen
				}
			}
		}
	}
	return out
}

// Check implements Analyzer.
func (fg *FreezeGuard) Check(pkg *Package, r *Reporter) {
	frozen := frozenFields(pkg)
	if len(frozen) == 0 {
		return
	}
	structs := collectStructs(pkg)
	for _, f := range pkg.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Doc != nil && buildPhaseRe.MatchString(fn.Doc.Text()) {
				continue // the declared build phase owns the lifecycle
			}
			fg.checkFunc(pkg, structs, frozen, fn, r)
		}
	}
}

// checkFunc flags frozen-field writes in one non-build function.
func (fg *FreezeGuard) checkFunc(pkg *Package, structs map[string]*structInfo, frozen map[string]map[string]bool, fn *ast.FuncDecl, r *Reporter) {
	env := map[string]typeRef{}
	if fn.Recv != nil {
		for _, fld := range fn.Recv.List {
			ref := refOfExpr(fld.Type)
			for _, name := range fld.Names {
				env[name.Name] = ref
			}
		}
	}
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			ref := refOfExpr(fld.Type)
			for _, name := range fld.Names {
				env[name.Name] = ref
			}
		}
	}

	// resolve follows receiver/param selector chains to a locally declared
	// struct type, exactly as lockguard does.
	var resolve func(e ast.Expr) (typeRef, *structInfo)
	resolve = func(e ast.Expr) (typeRef, *structInfo) {
		switch t := e.(type) {
		case *ast.Ident:
			ref, ok := env[t.Name]
			if !ok {
				return typeRef{}, nil
			}
			return ref, structs[ref.name]
		case *ast.ParenExpr:
			return resolve(t.X)
		case *ast.StarExpr:
			return resolve(t.X)
		case *ast.IndexExpr:
			ref, si := resolve(t.X)
			if si == nil || !ref.elem {
				return typeRef{}, nil
			}
			return typeRef{name: ref.name, known: true}, si
		case *ast.SelectorExpr:
			ref, si := resolve(t.X)
			if si == nil || ref.elem {
				return typeRef{}, nil
			}
			fref, ok := si.fields[t.Sel.Name]
			if !ok || !fref.known {
				return typeRef{}, nil
			}
			return fref, structs[fref.name]
		}
		return typeRef{}, nil
	}

	// frozenField reports whether sel denotes a frozen-annotated field of a
	// locally resolved struct, returning the owning type's name.
	frozenField := func(sel *ast.SelectorExpr) (string, bool) {
		ref, si := resolve(sel.X)
		if si == nil || ref.elem {
			return "", false
		}
		fields, ok := frozen[ref.name]
		if !ok || !fields[sel.Sel.Name] {
			return "", false
		}
		return ref.name, true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if owner, ok := frozenField(sel); ok {
					r.Reportf(sel.Sel.Pos(),
						"%s.%s is frozen, but %s assigns it without a reptile-lint:build directive",
						owner, sel.Sel.Name, funcLabel(fn))
				}
			}
		case *ast.CallExpr:
			method, ok := t.Fun.(*ast.SelectorExpr)
			if !ok || !storeMutators[method.Sel.Name] {
				return true
			}
			sel, ok := method.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if owner, ok := frozenField(sel); ok {
				r.Reportf(method.Sel.Pos(),
					"%s.%s is frozen, but %s calls %s on it without a reptile-lint:build directive",
					owner, sel.Sel.Name, funcLabel(fn), method.Sel.Name)
			}
		}
		return true
	})
}
