// Package caller drives package leaf's loops from an annotated root; the
// allocation hotpath must flag lives one module-local call away.
package caller

import "reptile/internal/lint/testdata/hotpath_xpkg/leaf"

// Drive is the annotated entry point.
//
// reptile-lint:hotpath
func Drive(xs []int) int {
	total := 0
	for _, x := range xs {
		total += leaf.Sum(x)
	}
	leaf.Scale(xs)
	return total
}
