// Package spectrum implements the k-mer/tile frequency stores Reptile keeps
// in memory.
//
// The paper's contribution stores spectra in hash tables (HashStore); the
// prior parallelizations it contrasts against used sorted arrays with binary
// search (SortedStore, Shah et al. 2012) and a cache-aware (B+1)-ary layout
// (CacheAwareStore, Jammula et al. 2015). All three are provided so the
// benches can reproduce that comparison.
package spectrum

import (
	"encoding/binary"
	"fmt"
	"sort"

	"reptile/internal/kmer"
)

// Entry is one spectrum element: an ID and its (global or local) count.
type Entry struct {
	ID    kmer.ID
	Count uint32
}

// EntrySize is the wire size of one encoded Entry in bytes.
const EntrySize = 12

// Lookuper is the read-side interface every store satisfies. Count returns
// the stored count and whether the ID is present at all.
type Lookuper interface {
	Count(id kmer.ID) (uint32, bool)
	Len() int
	MemBytes() int64
}

// HashStore is a mutable hash-table spectrum; the store the paper's
// distributed implementation uses on every rank.
//
// Concurrency: not self-synchronized. A HashStore is confined to its owning
// rank goroutine during construction; during the correction phase the
// responder goroutine reads the owned stores concurrently with the worker,
// which is safe only because both sides are read-only then — the engine
// prunes and freezes the tables at the end of spectrum construction. Any
// new writer after that point must add a mutex and a "guarded by"
// annotation (see DESIGN.md, Concurrency invariants).
type HashStore struct {
	m      map[kmer.ID]uint32 // confined: written only pre-freeze by the owning rank
	frozen bool               // set by Release; mutators panic afterwards
}

// NewHash returns an empty HashStore with room for sizeHint entries.
func NewHash(sizeHint int) *HashStore {
	return &HashStore{m: make(map[kmer.ID]uint32, sizeHint)}
}

// Add increments id's count by n, inserting it if absent.
//
// reptile-lint:hotpath
func (h *HashStore) Add(id kmer.ID, n uint32) {
	if h.frozen {
		panic("spectrum: Add on frozen HashStore")
	}
	h.m[id] += n
}

// Set stores an absolute count for id. A zero count is a legal entry and
// means "known absent from the global spectrum" — the read-kmers heuristic
// stores resolved negatives this way so lookups skip the remote round trip.
func (h *HashStore) Set(id kmer.ID, n uint32) {
	if h.frozen {
		panic("spectrum: Set on frozen HashStore")
	}
	h.m[id] = n
}

// Count returns id's count and presence.
//
// reptile-lint:hotpath
func (h *HashStore) Count(id kmer.ID) (uint32, bool) {
	c, ok := h.m[id]
	return c, ok
}

// Len returns the number of distinct IDs.
func (h *HashStore) Len() int { return len(h.m) }

// Delete removes id if present.
func (h *HashStore) Delete(id kmer.ID) {
	if h.frozen {
		panic("spectrum: Delete on frozen HashStore")
	}
	delete(h.m, id)
}

// Prune removes every entry with count < min and returns how many were
// removed. This is the threshold step at the end of spectrum construction
// (paper Step III).
func (h *HashStore) Prune(min uint32) int {
	if h.frozen {
		panic("spectrum: Prune on frozen HashStore")
	}
	removed := 0
	for id, c := range h.m {
		if c < min {
			delete(h.m, id)
			removed++
		}
	}
	return removed
}

// Each calls fn for every entry until fn returns false. Iteration order is
// unspecified (hash order).
func (h *HashStore) Each(fn func(Entry) bool) {
	for id, c := range h.m {
		if !fn(Entry{ID: id, Count: c}) {
			return
		}
	}
}

// Entries returns all entries sorted by ID, for deterministic exchange and
// for building the array-based stores.
func (h *HashStore) Entries() []Entry {
	return h.EntriesInto(make([]Entry, 0, len(h.m)))
}

// EntriesInto appends all entries to buf sorted by ID and returns the
// extended slice. The per-round spectrum exchange passes a buffer reused
// across batch rounds, so the sort scratch stops churning the allocator.
func (h *HashStore) EntriesInto(buf []Entry) []Entry {
	start := len(buf)
	for id, c := range h.m {
		buf = append(buf, Entry{ID: id, Count: c})
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].ID < tail[j].ID })
	return buf
}

// Clear removes all entries but keeps the allocated table. The batch-reads
// heuristic empties the reads tables after every chunk (paper Section III-B).
func (h *HashStore) Clear() {
	if h.frozen {
		panic("spectrum: Clear on frozen HashStore")
	}
	for id := range h.m {
		delete(h.m, id)
	}
}

// Release drops the mutable map and marks the store frozen: the table's
// memory returns to the allocator (Clear and Prune keep the bucket array
// alive; Release does not) and any later mutation panics. Freeze calls this
// after packing; reads keep working and see an empty store.
func (h *HashStore) Release() {
	h.m = nil
	h.frozen = true
}

// MemBytes estimates the heap footprint. Go maps cost roughly 2x the raw
// entry payload once bucket overhead and load factor are included; the
// constant matters only in that it is applied uniformly across modes, so the
// paper's memory *comparisons* (Fig 5) are preserved.
func (h *HashStore) MemBytes() int64 {
	const perEntry = 2 * EntrySize
	return int64(len(h.m))*perEntry + 48
}

// SortedStore is an immutable sorted-array spectrum searched by binary
// search: the layout of the original parallel Reptile (Shah et al.).
type SortedStore struct {
	ids    []kmer.ID
	counts []uint32
}

// NewSorted builds a SortedStore from entries, which must be sorted by ID
// and duplicate-free (HashStore.Entries guarantees both).
func NewSorted(entries []Entry) *SortedStore {
	s := &SortedStore{
		ids:    make([]kmer.ID, len(entries)),
		counts: make([]uint32, len(entries)),
	}
	for i, e := range entries {
		if i > 0 && e.ID <= entries[i-1].ID {
			panic(fmt.Sprintf("spectrum: NewSorted input not strictly sorted at %d", i))
		}
		s.ids[i] = e.ID
		s.counts[i] = e.Count
	}
	return s
}

// Count looks up id by binary search: O(log2 N) probes.
func (s *SortedStore) Count(id kmer.ID) (uint32, bool) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return s.counts[i], true
	}
	return 0, false
}

// Len returns the number of entries.
func (s *SortedStore) Len() int { return len(s.ids) }

// MemBytes returns the array footprint.
func (s *SortedStore) MemBytes() int64 {
	return int64(len(s.ids))*EntrySize + 48
}

// Branching is the fan-out of the cache-aware layout: with 64-byte cache
// lines and 8-byte keys, B = 8 keys fit per line, giving O(log_(B+1) N)
// line fetches per lookup — the improvement Jammula et al. report.
const Branching = 8

// CacheAwareStore stores the sorted entries in an implicit (B+1)-ary search
// tree laid out level by level, so each node's keys share a cache line.
type CacheAwareStore struct {
	keys   []kmer.ID // level-order node-major layout, padded with sentinel
	counts []uint32
	n      int
	// The all-ones ID doubles as the padding sentinel, so a real entry with
	// that ID (an all-T 32-base tile) is stored out of band.
	hasMax   bool
	maxCount uint32
}

const sentinel = ^kmer.ID(0)

// NewCacheAware builds the layout from ID-sorted, duplicate-free entries.
func NewCacheAware(entries []Entry) *CacheAwareStore {
	var hasMax bool
	var maxCount uint32
	if len(entries) > 0 && entries[len(entries)-1].ID == sentinel {
		hasMax = true
		maxCount = entries[len(entries)-1].Count
		entries = entries[:len(entries)-1]
	}
	n := len(entries)
	// Number of nodes needed to hold n keys, B per node, in a complete
	// (B+1)-ary tree.
	nodes := (n + Branching - 1) / Branching
	if nodes == 0 {
		nodes = 1
	}
	c := &CacheAwareStore{
		keys:     make([]kmer.ID, nodes*Branching),
		counts:   make([]uint32, nodes*Branching),
		n:        n,
		hasMax:   hasMax,
		maxCount: maxCount,
	}
	if hasMax {
		c.n++
	}
	for i := range c.keys {
		c.keys[i] = sentinel
	}
	pos := 0
	c.fill(entries, 0, &pos)
	return c
}

// fill performs an in-order walk of the implicit tree, assigning the sorted
// entries so that an in-order traversal of the layout is sorted.
func (c *CacheAwareStore) fill(entries []Entry, node int, pos *int) {
	if node*Branching >= len(c.keys) {
		return
	}
	for slot := 0; slot <= Branching; slot++ {
		child := node*(Branching+1) + 1 + slot
		c.fill(entries, child, pos)
		if slot < Branching && *pos < len(entries) {
			idx := node*Branching + slot
			c.keys[idx] = entries[*pos].ID
			c.counts[idx] = entries[*pos].Count
			*pos++
		}
	}
}

// Count searches the implicit tree: one node (cache line) per level.
func (c *CacheAwareStore) Count(id kmer.ID) (uint32, bool) {
	if id == sentinel {
		return c.maxCount, c.hasMax
	}
	node := 0
	for node*Branching < len(c.keys) {
		base := node * Branching
		slot := 0
		for slot < Branching {
			k := c.keys[base+slot]
			if k == id && k != sentinel {
				return c.counts[base+slot], true
			}
			if k > id { // sentinel is max, so padding routes left correctly
				break
			}
			slot++
		}
		node = node*(Branching+1) + 1 + slot
	}
	return 0, false
}

// Len returns the number of real entries.
func (c *CacheAwareStore) Len() int { return c.n }

// MemBytes returns the padded array footprint.
func (c *CacheAwareStore) MemBytes() int64 {
	return int64(len(c.keys))*EntrySize + 48
}

// EncodeEntries serializes entries for the wire (little-endian, 12 bytes
// each), appending to dst and returning the extended slice.
//
// reptile-lint:hotpath
func EncodeEntries(dst []byte, entries []Entry) []byte {
	for _, e := range entries {
		var buf [EntrySize]byte
		binary.LittleEndian.PutUint64(buf[0:8], uint64(e.ID))
		binary.LittleEndian.PutUint32(buf[8:12], e.Count)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeEntries parses a wire buffer produced by EncodeEntries.
//
// reptile-lint:hotpath
func DecodeEntries(b []byte) ([]Entry, error) {
	if len(b)%EntrySize != 0 {
		return nil, fmt.Errorf("spectrum: buffer length %d not a multiple of %d", len(b), EntrySize)
	}
	out := make([]Entry, len(b)/EntrySize)
	for i := range out {
		off := i * EntrySize
		out[i] = Entry{
			ID:    kmer.ID(binary.LittleEndian.Uint64(b[off : off+8])),
			Count: binary.LittleEndian.Uint32(b[off+8 : off+12]),
		}
	}
	return out, nil
}
