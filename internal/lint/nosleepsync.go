package lint

import (
	"go/ast"
)

// NoSleepSync forbids time.Sleep in the message-passing runtime. A sleep
// that "waits for the other goroutine to get there" is the classic latent
// race: it passes on the laptop and deadlocks (or flakes) under load, under
// -race, or on slower hardware. Transport, collective, and core code must
// synchronize with channels, sync.Cond, or WaitGroups; tests must wait on
// observable state, not wall-clock time.
//
// Legitimate duration-based waits — dial-retry backoff polling an external
// resource — are opted out per line with
// "// reptile-lint:allow nosleepsync <reason>".
type NoSleepSync struct {
	// Paths restricts the analyzer to import paths containing any of these
	// substrings; empty means every package.
	Paths []string
}

// NewNoSleepSync returns the analyzer scoped to the runtime packages.
func NewNoSleepSync() *NoSleepSync {
	return &NoSleepSync{Paths: []string{
		"internal/transport",
		"internal/collective",
		"internal/core",
	}}
}

// Name implements Analyzer.
func (*NoSleepSync) Name() string { return "nosleepsync" }

// Doc implements Analyzer.
func (*NoSleepSync) Doc() string {
	return "forbids time.Sleep as a synchronization primitive in transport/collective/core code"
}

// appliesTo implements pathScoped for the allow-directive audit.
func (ns *NoSleepSync) appliesTo(pkg *Package) bool {
	return pathMatches(pkg.ImportPath, ns.Paths)
}

// Check implements Analyzer.
func (ns *NoSleepSync) Check(pkg *Package, r *Reporter) {
	if !ns.appliesTo(pkg) {
		return
	}
	for _, f := range pkg.Files {
		test := f.Test
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "time" {
				return true
			}
			if test {
				r.Reportf(call.Pos(), "time.Sleep in a test synchronizes on wall-clock time and will flake; wait on a channel or condition instead")
			} else {
				r.Reportf(call.Pos(), "time.Sleep used in runtime code; synchronize with channels, sync.Cond, or WaitGroups (reptile-lint:allow nosleepsync for genuine backoff)")
			}
			return true
		})
	}
}
