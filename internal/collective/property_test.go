package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestAlltoallvRandomSizes: random payload sizes (including zero) must
// arrive intact and correctly attributed for any group size.
func TestAlltoallvRandomSizes(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(trial)
		np := rand.New(rand.NewSource(seed)).Intn(12) + 1
		// Pre-generate every payload deterministically: payload[i][j] is
		// what rank i sends to rank j.
		payload := make([][][]byte, np)
		for i := range payload {
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			payload[i] = make([][]byte, np)
			for j := range payload[i] {
				n := rng.Intn(2000)
				b := make([]byte, n)
				rng.Read(b)
				payload[i][j] = b
			}
		}
		run(t, np, func(c *Comm) error {
			got, err := c.Alltoallv(payload[c.Rank()])
			if err != nil {
				return err
			}
			for from := range got {
				if !bytes.Equal(got[from], payload[from][c.Rank()]) {
					return fmt.Errorf("trial %d: rank %d payload from %d corrupted", trial, c.Rank(), from)
				}
			}
			return nil
		})
	}
}

// TestMixedCollectiveSequence: an arbitrary but rank-uniform sequence of
// different collectives must not cross-contaminate.
func TestMixedCollectiveSequence(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			if err := c.BarrierDissemination(); err != nil {
				return err
			}
			sum, err := c.AllreduceSumInt64(int64(c.Rank()))
			if err != nil {
				return err
			}
			if sum != 15 {
				return fmt.Errorf("round %d: sum %d", round, sum)
			}
			max, err := c.AllreduceMaxInt64(int64(c.Rank() * round))
			if err != nil {
				return err
			}
			if max != int64(5*round) {
				return fmt.Errorf("round %d: max %d", round, max)
			}
			out, err := c.Bcast(round%6, []byte{byte(round)})
			if err != nil {
				return err
			}
			if out[0] != byte(round) {
				return fmt.Errorf("round %d: bcast %d", round, out[0])
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestGatherTreeLargePayloads exercises frame aggregation above the bufio
// boundary sizes.
func TestGatherTreeLargePayloads(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		buf := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 100_000)
		out, err := c.GatherTree(0, buf)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		for r := range out {
			if len(out[r]) != 100_000 || out[r][99_999] != byte(r+1) {
				return fmt.Errorf("rank %d payload corrupted", r)
			}
		}
		return nil
	})
}
