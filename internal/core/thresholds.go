package core

import (
	"encoding/binary"
	"fmt"

	"reptile/internal/spectrum"
)

// resolveThresholds replaces the configured solidity thresholds with ones
// derived from the *global* count histograms when AutoThresholds is on.
// Each rank histograms its owned (post-merge, pre-prune) spectrum, the
// histograms are allreduced, and every rank picks the same valley — so the
// spectra stay globally consistent without any hand tuning per dataset.
// When AutoThresholds is off this is a no-op and, crucially, performs no
// collectives, so on/off runs have different collective schedules but each
// is internally aligned across ranks (the flag is part of Options, which
// all ranks share).
func (ctx *rankCtx) resolveThresholds() error {
	if !ctx.opts.AutoThresholds {
		return nil
	}
	kThr, err := ctx.globalValley(ctx.build.histogram(ctx.build.ownK), ctx.opts.Config.KmerThreshold)
	if err != nil {
		return err
	}
	tThr, err := ctx.globalValley(ctx.build.histogram(ctx.build.ownT), ctx.opts.Config.TileThreshold)
	if err != nil {
		return err
	}
	ctx.opts.Config.KmerThreshold = kThr
	ctx.opts.Config.TileThreshold = tThr
	return nil
}

// globalValley allreduces a local count histogram (already summed over the
// builder's shards) and returns its valley threshold.
func (ctx *rankCtx) globalValley(local []int64, fallback uint32) (uint32, error) {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	all, err := ctx.comm.Allgatherv(buf)
	if err != nil {
		return 0, err
	}
	global := make([]int64, len(local))
	for r, b := range all {
		if len(b) != len(buf) {
			return 0, fmt.Errorf("core: histogram from rank %d has %d bytes, want %d", r, len(b), len(buf))
		}
		part := make([]int64, len(local))
		for i := range part {
			part[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
		}
		spectrum.MergeHistograms(global, part)
	}
	return spectrum.ValleyThreshold(global, fallback), nil
}
