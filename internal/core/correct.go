package core

import (
	"errors"
	"fmt"
	"sync"

	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/transport"
)

// correctPhase is Step IV: fork a responder goroutine (the paper's
// communication thread), run the corrector over this rank's reads on the
// worker side, then drive the done/stop termination protocol — a rank keeps
// answering remote lookups until *every* worker has finished.
func (ctx *rankCtx) correctPhase() (reptile.Result, error) {
	msgs0, bytes0 := ctx.e.Counters().PerDestSnapshot()

	// The responder routes its own failures through ctx.fail: the abort
	// broadcast poisons this rank's mailbox too, so a worker parked in
	// Recv(tagResp) unblocks instead of waiting on a responder that died.
	var wg sync.WaitGroup
	respErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ctx.responderLoop(); err != nil {
			respErr <- ctx.fail("correct", err)
		}
	}()
	// failBoth aborts the run from the worker side and joins the responder
	// (which the broadcast just unblocked) before returning. When the worker
	// only observed the teardown — its endpoint closed under it — the
	// responder's error is the root cause and wins.
	failBoth := func(err error) error {
		aerr := ctx.fail("correct", err)
		wg.Wait()
		select {
		case rerr := <-respErr:
			if errors.Is(aerr, transport.ErrClosed) && !errors.Is(rerr, transport.ErrClosed) {
				return rerr
			}
		default:
		}
		return aerr
	}

	oracle := &distOracle{
		e:         ctx.e,
		st:        &ctx.st,
		rank:      ctx.rank,
		np:        ctx.np,
		h:         ctx.opts.Heuristics,
		ownKmer:   ctx.hashKmer,
		ownTile:   ctx.hashTile,
		replKmer:  ctx.replKmer,
		replTile:  ctx.replTile,
		groupKmer: ctx.groupKmer,
		groupTile: ctx.groupTile,
		readsKmer: ctx.readsKmer,
		readsTile: ctx.readsTile,
		groupSize: ctx.opts.Heuristics.PartialReplicationGroup,
	}
	corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
	if err != nil {
		return reptile.Result{}, failBoth(err)
	}
	var res reptile.Result
	for i := range ctx.myReads {
		res.Add(corrector.CorrectRead(&ctx.myReads[i]))
		if oracle.err != nil {
			return res, failBoth(oracle.err)
		}
	}

	// Worker finished: notify the coordinator and keep the responder
	// serving until everyone is done.
	if err := ctx.e.Send(0, tagDone, nil); err != nil {
		return res, failBoth(err)
	}
	wg.Wait()
	select {
	case err := <-respErr:
		return res, err
	default:
	}

	// Attribute correction-phase request traffic per destination for the
	// machine model (responses and control messages excluded: we count the
	// requester's per-dest sends minus the pre-phase snapshot, then remove
	// this rank's own responses by construction — responses go to sources,
	// which the model accounts on the requester's round trip already).
	msgs1, bytes1 := ctx.e.Counters().PerDestSnapshot()
	ctx.st.MsgsTo = make([]int64, ctx.np)
	ctx.st.BytesTo = make([]int64, ctx.np)
	for d := range msgs1 {
		ctx.st.MsgsTo[d] = msgs1[d] - msgs0[d]
		ctx.st.BytesTo[d] = bytes1[d] - bytes0[d]
	}
	ctx.st.MemAfterCorrect = ctx.currentMem()
	ctx.observeMem() // the remote-lookup cache may have grown
	return res, nil
}

// responderLoop services k-mer/tile count requests until the stop message
// arrives. Rank 0 doubles as the coordinator: it counts done messages and
// broadcasts stop when all workers have finished.
func (ctx *rankCtx) responderLoop() error {
	service := func(tag int) bool {
		switch tag {
		case tagKmerReq, tagTileReq, tagUniReq, tagStop:
			return true
		case tagDone:
			return ctx.rank == 0
		}
		return false
	}
	done := 0
	for {
		m, err := ctx.e.RecvMatch(service)
		if err != nil {
			return err
		}
		switch m.Tag {
		case tagStop:
			return nil
		case tagDone:
			done++
			if done == ctx.np {
				for r := 0; r < ctx.np; r++ {
					if err := ctx.e.Send(r, tagStop, nil); err != nil {
						return err
					}
				}
			}
		default:
			if err := ctx.serve(m); err != nil {
				return err
			}
		}
	}
}

// serve answers one count request from the owned spectra. In the
// non-universal ("probe") mode the kind is implied by the tag; in universal
// mode it is read from the payload — the structural difference the paper's
// universal heuristic describes.
func (ctx *rankCtx) serve(m transport.Message) error {
	kind, id, err := decodeReq(m.Tag, m.Data)
	if err != nil {
		return err
	}
	var store *spectrum.HashStore
	switch kind {
	case kindKmer:
		store = ctx.hashKmer
	case kindTile:
		store = ctx.hashTile
	default:
		return fmt.Errorf("core: request kind %d", kind)
	}
	cnt, ok := store.Count(id)
	ctx.st.RequestsServed++
	return ctx.e.Send(m.From, tagResp, encodeResp(cnt, ok))
}

// ProjectOptsFor returns the machine-model options matching this run's
// heuristics and wire sizes.
func ProjectOptsFor(h Heuristics) (universal bool, reqBytes, respBytes int) {
	reqBytes = ReqBytesTagged
	if h.Universal {
		reqBytes = ReqBytesUniversal
	}
	return h.Universal, reqBytes, RespBytes
}
