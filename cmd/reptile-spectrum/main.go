// Command reptile-spectrum builds, saves, and inspects k-mer/tile spectrum
// files, so the construction cost is paid once per dataset:
//
//	reptile-spectrum build -fasta ds.fa -qual ds.qual -out ds     # ds.kspec + ds.tspec
//	reptile-spectrum info -in ds.kspec
//
// Spectrum files use the RSP1 format of internal/spectrum.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"reptile/internal/fastaio"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reptile-spectrum build|info [flags]")
	os.Exit(2)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	fasta := fs.String("fasta", "", "input fasta file")
	qual := fs.String("qual", "", "input quality file")
	out := fs.String("out", "spectrum", "output prefix (<out>.kspec, <out>.tspec)")
	k := fs.Int("k", 12, "k-mer length")
	overlap := fs.Int("overlap", 4, "tile overlap")
	kmerThr := fs.Uint("kmer-threshold", 6, "k-mer solidity threshold")
	tileThr := fs.Uint("tile-threshold", 3, "tile solidity threshold")
	fs.Parse(args)
	if *fasta == "" || *qual == "" {
		fmt.Fprintln(os.Stderr, "reptile-spectrum build: -fasta and -qual are required")
		os.Exit(2)
	}

	batch, err := fastaio.ReadShard(*fasta, *qual, 0, 1)
	if err != nil {
		fatal(err)
	}
	cfg := reptile.Default()
	cfg.Spec.K = *k
	cfg.Spec.Overlap = *overlap
	cfg.KmerThreshold = uint32(*kmerThr)
	cfg.TileThreshold = uint32(*tileThr)
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	kmers, tiles := reptile.BuildSpectra(batch, cfg)
	for _, part := range []struct {
		store *spectrum.HashStore
		path  string
	}{
		{kmers, *out + ".kspec"},
		{tiles, *out + ".tspec"},
	} {
		f, err := os.Create(part.path)
		if err != nil {
			fatal(err)
		}
		n, err := part.store.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d entries, %d bytes\n", part.path, part.store.Len(), n)
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "spectrum file")
	top := fs.Int("top", 5, "show the N highest-count entries")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "reptile-spectrum info: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h, err := spectrum.ReadFrom(f)
	if err != nil {
		fatal(err)
	}
	var total uint64
	var maxCount uint32
	entries := h.Entries()
	for _, e := range entries {
		total += uint64(e.Count)
		if e.Count > maxCount {
			maxCount = e.Count
		}
	}
	fmt.Printf("entries      %d\n", h.Len())
	fmt.Printf("total count  %d\n", total)
	if h.Len() > 0 {
		fmt.Printf("mean count   %.1f\n", float64(total)/float64(h.Len()))
		fmt.Printf("max count    %d\n", maxCount)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
		n := *top
		if n > len(entries) {
			n = len(entries)
		}
		for _, e := range entries[:n] {
			fmt.Printf("  id=%#016x count=%d\n", uint64(e.ID), e.Count)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reptile-spectrum: %v\n", err)
	os.Exit(1)
}
