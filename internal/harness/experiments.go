package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"reptile/internal/core"
	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/kmer"
	"reptile/internal/machine"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// TableI reproduces the dataset table: reads, read length, genome size,
// coverage — at this run's scale, with the paper's originals as reference.
func TableI(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Datasets (scaled synthetic equivalents)",
		Note:   "paper: E.Coli 8.87M reads/4.6e6 genome/96X, Drosophila 95.7M/1.22e8/75X, Human 1.55B/3.3e9/47X",
		Header: []string{"dataset", "reads", "length", "genome", "coverage", "errors injected"},
	}
	for _, p := range genome.Presets {
		ds := buildDataset(p, sc, false)
		t.Rows = append(t.Rows, []string{
			ds.Name,
			count(int64(ds.NumReads())),
			count(int64(ds.Profile.ReadLen)),
			count(int64(ds.Genome.Len())),
			fmt.Sprintf("%.0fX", ds.Coverage()),
			count(int64(ds.TotalErrors())),
		})
	}
	return t, nil
}

// Fig2 reproduces the ranks-per-node sweep: one measured run, projected at
// 8/16/32 ranks per node. The paper observes 32 rpn ~30% slower than 8 rpn
// with the slowdown concentrated in communication.
func Fig2(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	opts := optionsFor(sc, ds, core.Heuristics{}, true)
	out, err := engineRun(ds, np, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2",
		Title:  fmt.Sprintf("E.Coli, %d ranks, ranks-per-node sweep", np),
		Note:   "32 rpn ~30% slower than 8 rpn; increase comes from communication (paper Fig 2)",
		Header: []string{"ranks/node", "nodes", "construct", "correct", "comm(max)", "total"},
	}
	for _, rpn := range []int{8, 16, 32} {
		// At tiny scales np may be below rpn; the shape still projects
		// (everything lands on one node), keeping the sweep comparable.
		shape := machine.Shape{Ranks: np, RanksPerNode: rpn, ThreadsPerRank: 2}
		p, err := project(out, shape, opts.Heuristics)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			count(int64(rpn)), count(int64(shape.Nodes())),
			secs(p.ConstructTime), secs(p.CorrectTime), secs(p.CommTimeMax), secs(p.TotalTime()),
		})
	}
	return t, nil
}

// Fig3 reproduces the spectrum-distribution figure: per-rank k-mer and tile
// counts and their spread.
func Fig3(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	opts := optionsFor(sc, ds, core.Heuristics{}, true)
	out, err := engineRun(ds, np, opts)
	if err != nil {
		return nil, err
	}
	kmers := func(r *stats.Rank) int64 { return r.OwnedKmers }
	tiles := func(r *stats.Rank) int64 { return r.OwnedTiles }
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Per-rank spectrum sizes, %d ranks", np),
		Note:   "paper Fig 3: k-mer spread <1%, tile spread <2% at 128 ranks (full dataset)",
		Header: []string{"spectrum", "total", "min/rank", "max/rank", "spread"},
		Rows: [][]string{
			{"k-mers", count(out.Run.Sum(kmers)), count(out.Run.Min(kmers)), count(out.Run.Max(kmers)), pct(out.Run.SpreadPct(kmers))},
			{"tiles", count(out.Run.Sum(tiles)), count(out.Run.Min(tiles)), count(out.Run.Max(tiles)), pct(out.Run.SpreadPct(tiles))},
		},
	}
	return t, nil
}

// Fig4 reproduces the load-balance figure on an error-localized input:
// fastest/slowest rank times, communication times, errors corrected, and
// remote tile lookups, with and without the static balancing step.
func Fig4(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, true) // localized errors
	np := sc.Ranks(128)
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Load balance on/off, %d ranks, error-localized E.Coli", np),
		Note:   "paper Fig 4: imbalanced slowest/fastest ~3.3x (16000s vs 4948s); balanced ranks uniform at 8886s, errors spread <=2%, comm spread <4%",
		Header: []string{"mode", "rank time min", "rank time max", "comm min", "comm max", "errors min", "errors max", "tile lookups max"},
	}
	for _, balanced := range []bool{false, true} {
		opts := optionsFor(sc, ds, core.Heuristics{}, balanced)
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, err
		}
		p, err := project(out, shape32(np), opts.Heuristics)
		if err != nil {
			return nil, err
		}
		minT, maxT := p.PerRank[0].Total(), p.PerRank[0].Total()
		for _, rt := range p.PerRank {
			if rt.Total() < minT {
				minT = rt.Total()
			}
			if rt.Total() > maxT {
				maxT = rt.Total()
			}
		}
		mode := "imbalanced"
		if balanced {
			mode = "balanced"
		}
		errs := func(r *stats.Rank) int64 { return r.BasesCorrected }
		tlook := func(r *stats.Rank) int64 { return r.TileLookupsRemote }
		t.Rows = append(t.Rows, []string{
			mode,
			secs(minT), secs(maxT),
			secs(p.CommTimeMin), secs(p.CommTimeMax),
			count(out.Run.Min(errs)), count(out.Run.Max(errs)),
			count(out.Run.Max(tlook)),
		})
	}
	return t, nil
}

// fig5Modes lists the heuristic rows of Fig 5 with the rank layouts the
// paper ran them at (replication modes drop to 8 or 1 ranks/node because
// they no longer fit at 32).
type fig5Mode struct {
	name  string
	h     core.Heuristics
	rpn   int
	ranks func(np int) int // replication rows ran with fewer total ranks
}

// Fig5 reproduces the heuristics comparison: correction time and the
// highest-footprint rank after construction and after correction.
func Fig5(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(1024)
	same := func(n int) int { return n }
	quarter := func(n int) int {
		n /= 4
		if n < 2 {
			n = 2
		}
		return n
	}
	modes := []fig5Mode{
		{"base", core.Heuristics{}, 32, same},
		{"universal", core.Heuristics{Universal: true}, 32, same},
		{"read-kmers", core.Heuristics{RetainReadKmers: true}, 32, same},
		{"remote-cache", core.Heuristics{RetainReadKmers: true, CacheRemote: true}, 32, same},
		{"batch-reads", core.Heuristics{BatchReads: true}, 32, same},
		{"repl-kmers", core.Heuristics{ReplicateKmers: true}, 8, quarter},
		{"repl-tiles", core.Heuristics{ReplicateTiles: true}, 8, quarter},
		{"repl-both", core.Heuristics{ReplicateKmers: true, ReplicateTiles: true}, 8, quarter},
		{"partial-repl", core.Heuristics{PartialReplicationGroup: 4}, 32, same},
	}
	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("Heuristics at ~%d ranks (E.Coli)", np),
		Note:   "paper Fig 5: universal -8.8% time; repl-tiles 975s vs base 1178s; repl-both 58s but 1648 MB/rank; batch-reads lowest memory; repl-kmers slower at 256 ranks (928 MB)",
		Header: []string{"heuristic", "ranks", "rpn", "construct", "correct", "total", "mem post-construct", "mem post-correct"},
	}
	for _, m := range modes {
		n := m.ranks(np)
		opts := optionsFor(sc, ds, m.h, true)
		out, err := engineRun(ds, n, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		rpn := m.rpn
		if rpn > n {
			rpn = n
		}
		shape := machine.Shape{Ranks: n, RanksPerNode: rpn, ThreadsPerRank: 2}
		p, err := project(out, shape, m.h)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.name, count(int64(n)), count(int64(rpn)),
			secs(p.ConstructTime), secs(p.CorrectTime), secs(p.TotalTime()),
			mib(out.Run.Max(func(r *stats.Rank) int64 { return r.MemAfterConstruct })),
			mib(out.Run.Max(func(r *stats.Rank) int64 { return r.MemAfterCorrect })),
		})
	}
	return t, nil
}

// scaling runs one preset across a rank sweep, balanced and imbalanced,
// reporting phase times and parallel efficiency (Figs 6-8).
func scaling(id, title, note string, preset genome.Preset, paperRanks []int, h core.Heuristics, sc Scale, imbalancedToo bool) (*Table, error) {
	ds := buildDataset(preset, sc, true) // localized errors: the paper's natural imbalance
	t := &Table{
		ID: id, Title: title, Note: note,
		Header: []string{"ranks", "nodes", "construct", "correct", "total", "efficiency", "imbalanced total"},
	}
	var baseRanks int
	var baseTime float64
	seen := map[int]bool{}
	for _, pr := range paperRanks {
		np := sc.Ranks(pr)
		if seen[np] {
			continue // rank scaling saturated MaxRanks
		}
		seen[np] = true
		opts := optionsFor(sc, ds, h, true)
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, err
		}
		p, err := project(out, shape32(np), h)
		if err != nil {
			return nil, err
		}
		imbCell := "-"
		if imbalancedToo {
			iopts := optionsFor(sc, ds, h, false)
			iout, err := engineRun(ds, np, iopts)
			if err != nil {
				return nil, err
			}
			ip, err := project(iout, shape32(np), h)
			if err != nil {
				return nil, err
			}
			imbCell = secs(ip.TotalTime())
		}
		if baseRanks == 0 {
			baseRanks, baseTime = np, p.TotalTime()
		}
		t.Rows = append(t.Rows, []string{
			count(int64(np)), count(int64(shape32(np).Nodes())),
			secs(p.ConstructTime), secs(p.CorrectTime), secs(p.TotalTime()),
			fmt.Sprintf("%.2f", machine.Efficiency(baseRanks, baseTime, np, p.TotalTime())),
			imbCell,
		})
	}
	return t, nil
}

// Fig6 is E.Coli strong scaling, 1024-8192 paper ranks, balanced vs
// imbalanced.
func Fig6(sc Scale) (*Table, error) {
	return scaling("fig6", "E.Coli strong scaling (balanced vs imbalanced)",
		"paper Fig 6: 32->256 nodes; ~200s at 8192 ranks; parallel efficiency 0.81; imbalanced >2x slower at 32 nodes",
		genome.EColiSim, []int{1024, 2048, 4096, 8192}, core.Heuristics{}, sc, true)
}

// Fig7 is Drosophila strong scaling with the batch-reads heuristic.
func Fig7(sc Scale) (*Table, error) {
	return scaling("fig7", "Drosophila strong scaling (batch-reads)",
		"paper Fig 7: 1024->8192 ranks; ~600s at 8192; efficiency 0.64; imbalanced runs 7x slower or DNF",
		genome.DrosophilaSim, []int{1024, 2048, 4096, 8192}, core.Heuristics{BatchReads: true}, sc, true)
}

// Fig8 is Human strong scaling with batch-reads and balancing.
func Fig8(sc Scale) (*Table, error) {
	return scaling("fig8", "Human strong scaling (batch-reads)",
		"paper Fig 8: 4096->32768 ranks (128-1024 nodes); <2.5h on one rack; memory ~120 MB/rank at top",
		genome.HumanSim, []int{4096, 8192, 16384, 32768}, core.Heuristics{BatchReads: true}, sc, false)
}

// Lookup measures the batched remote-lookup pipeline (software message
// aggregation over the paper's Step IV protocol). With the replication
// heuristics off every spectrum miss is request traffic, so the
// correction-phase message count per read is the direct cost of the
// one-at-a-time protocol; batching must cut it while correcting exactly the
// same bases. Reported per mode: correction-phase request messages and
// bytes per read, batch frames and their mean aggregation factor, and the
// message reduction against the unbatched baseline.
func Lookup(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	if np < 4 {
		np = 4 // below this most lookups are local and there is nothing to coalesce
	}
	modes := []struct {
		name string
		h    core.Heuristics
	}{
		{"unbatched", core.Heuristics{}},
		{"batch=8", core.Heuristics{LookupBatch: 8}},
		{"batch=32", core.Heuristics{LookupBatch: 32}},
		{"batch=32 workers=4", core.Heuristics{LookupBatch: 32, Workers: 4}},
	}
	t := &Table{
		ID:    "lookup",
		Title: fmt.Sprintf("Remote-lookup batching, %d ranks (E.Coli, no replication)", np),
		Note: "new to this implementation (cf. diBELLA's message aggregation); enforced bars: byte-identical output for " +
			"every mode, batch=32 cuts correction messages per read >=2x, and the worker pool's reduction is at least the " +
			"single worker's (the rank-wide prefetch plane re-coalesces what per-worker buffers fragmented)",
		Header: []string{"mode", "msgs/read", "bytes/read", "frames", "ids/frame", "msg reduction", "bases corrected"},
	}
	correctMsgs := func(out *core.Output) (msgs, bytes int64) {
		for i := range out.Run.Ranks {
			r := &out.Run.Ranks[i]
			for _, m := range r.MsgsTo {
				msgs += m
			}
			for _, b := range r.BytesTo {
				bytes += b
			}
		}
		return
	}
	var baseMsgs, baseCorrected int64
	reductions := make([]float64, len(modes))
	for i, m := range modes {
		opts := optionsFor(sc, ds, m.h, true)
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		msgs, bytes := correctMsgs(out)
		if i == 0 {
			baseMsgs, baseCorrected = msgs, out.Result.BasesCorrected
		} else if out.Result.BasesCorrected != baseCorrected {
			return nil, fmt.Errorf("%s: corrected %d bases, unbatched %d — batching changed the output",
				m.name, out.Result.BasesCorrected, baseCorrected)
		}
		nr := float64(ds.NumReads())
		frames := out.Run.Sum(func(r *stats.Rank) int64 { return r.BatchesSent })
		ids := out.Run.Sum(func(r *stats.Rank) int64 { return r.BatchedLookups })
		perFrame := 0.0
		if frames > 0 {
			perFrame = float64(ids) / float64(frames)
		}
		reductions[i] = 1.0
		if i > 0 && msgs > 0 {
			reductions[i] = float64(baseMsgs) / float64(msgs)
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%.2f", float64(msgs)/nr),
			fmt.Sprintf("%.1f", float64(bytes)/nr),
			count(frames),
			fmt.Sprintf("%.1f", perFrame),
			fmt.Sprintf("%.2fx", reductions[i]),
			count(out.Result.BasesCorrected),
		})
	}
	// The bars in the note, enforced: a violated bar fails the experiment so
	// make bench-lookup exits nonzero instead of quietly shipping a
	// regressed BENCH_lookup.json.
	if reductions[2] < 2.0 {
		return t, fmt.Errorf("lookup: batch=32 message reduction %.2fx, bar is >=2x", reductions[2])
	}
	if reductions[3] < reductions[2] {
		return t, fmt.Errorf("lookup: workers=4 reduction %.2fx fell below workers=1's %.2fx — the worker pool is fragmenting batches again",
			reductions[3], reductions[2])
	}
	return t, nil
}

// BatchSweep is the supplementary experiment behind Fig 8's discussion:
// the batch-reads chunk size bounds the reads tables (smaller chunks →
// smaller tables, more collective rounds). The paper used 5000 reads per
// batch at 128-256 nodes and 10000 at 512-1024.
func BatchSweep(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(1024)
	t := &Table{
		ID:     "batchsweep",
		Title:  fmt.Sprintf("Batch-reads chunk-size sweep, %d ranks (E.Coli)", np),
		Note:   "paper Section III-B / Fig 8 discussion: chunking bounds the reads tables at the cost of more collective rounds",
		Header: []string{"chunk", "rounds/rank", "reads-kmer peak", "reads-tile peak", "exchange MiB", "construct"},
	}
	perRank := (ds.NumReads() + np - 1) / np
	for _, chunk := range []int{perRank + 1, 2000, 500, 125} {
		opts := optionsFor(sc, ds, core.Heuristics{BatchReads: true}, true)
		opts.Config.ChunkReads = chunk
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, err
		}
		p, err := project(out, shape32(np), opts.Heuristics)
		if err != nil {
			return nil, err
		}
		rounds := (perRank + chunk - 1) / chunk
		t.Rows = append(t.Rows, []string{
			count(int64(chunk)), count(int64(rounds)),
			count(out.Run.Max(func(r *stats.Rank) int64 { return r.ReadsKmers })),
			count(out.Run.Max(func(r *stats.Rank) int64 { return r.ReadsTiles })),
			fmt.Sprintf("%.2f", float64(out.Run.Max(func(r *stats.Rank) int64 { return r.ExchangeBytes }))/(1<<20)),
			secs(p.ConstructTime),
		})
	}
	return t, nil
}

// Build is the supplementary experiment behind the parallel spectrum
// construction: an engine sweep over the extraction-worker count (the same
// Workers knob that sizes the correction pool) with the pipelined
// batch-reads exchange, plus a layout comparison of the frozen owned
// spectra — the mutable hash tables the build uses against the packed
// slabs it freezes into and the prior art's replicated layouts — at equal
// entry counts.
func Build(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	par := runtime.GOMAXPROCS(0)
	cpuBar := fmt.Sprintf("informational only (GOMAXPROCS=%d, <4 CPUs: the builder clamps its workers to the "+
		"machine parallelism, so extra workers route through the serial path)", par)
	if par >= 4 {
		cpuBar = fmt.Sprintf("enforced (GOMAXPROCS=%d)", par)
	}
	t := &Table{
		ID:    "build",
		Title: fmt.Sprintf("Spectrum build: workers and store layouts, %d ranks (E.Coli)", np),
		Note: "new to this implementation; enforced bars: byte-identical output for every worker count, " +
			"workers>1 spectrum wall no worse than 0.8x of serial, >=1.5x lower MemBytes for the packed layout " +
			"vs the mutable hash tables at equal entries, and the delta-varint exchange codec under 8 wire bytes " +
			"per spectrum entry (the fixed encoding it replaced shipped 12); the cpu-bound large-genome rows carry " +
			"a >=1.3x workers=4 speedup bar, " + cpuBar,
		Header: []string{"mode", "spectrum wall", "speedup", "mem at freeze", "owned bytes", "bytes/entry", "wire B/entry", "vs hash", "lookup", "bases corrected"},
	}

	// Engine sweep: the worker count shards extraction and folding; the
	// batch-reads chunks drive the multi-round pipelined exchange. Run once
	// at the harness's communication-heavy rank count, then again on a 4x
	// dataset at 2 ranks — there extraction dominates the spectrum phase, so
	// the sweep is CPU-bound and the workers=4 row measures real parallel
	// speedup instead of exchange overlap.
	sweep := func(label string, ds *genome.Dataset, np int, cpuBound bool) error {
		var baseWall float64
		var baseCorrected, baseChanged int64
		for i, workers := range []int{1, 2, 4} {
			h := core.Heuristics{BatchReads: true}
			if workers > 1 {
				h.Workers = workers
				h.LookupBatch = 32
			}
			opts := optionsFor(sc, ds, h, true)
			// Best-of-2: the walls under comparison are fractions of a second
			// at bench scale, and the 0.8x no-regression bar is enforced, so
			// a single noisy sample must not fail the run.
			var out *core.Output
			wall := 0.0
			for rep := 0; rep < 2; rep++ {
				o, err := engineRun(ds, np, opts)
				if err != nil {
					return fmt.Errorf("%s workers=%d: %w", label, workers, err)
				}
				if w := o.Run.Wall[stats.PhaseSpectrum].Seconds(); out == nil || w < wall {
					out, wall = o, w
				}
			}
			if i == 0 {
				baseWall = wall
				baseCorrected, baseChanged = out.Result.BasesCorrected, out.Result.ReadsChanged
			} else if out.Result.BasesCorrected != baseCorrected || out.Result.ReadsChanged != baseChanged {
				return fmt.Errorf("%s workers=%d: corrected %d bases (%d reads), workers=1 corrected %d (%d) — sharding changed the output",
					label, workers, out.Result.BasesCorrected, out.Result.ReadsChanged, baseCorrected, baseChanged)
			}
			speedup := 1.0
			if wall > 0 {
				speedup = baseWall / wall
			}
			if workers > 1 && speedup < 0.8 {
				return fmt.Errorf("%s workers=%d: spectrum wall %.3fs is %.2fx of serial's %.3fs — parallel build regression (bar: >=0.8x)",
					label, workers, wall, speedup, baseWall)
			}
			if cpuBound && workers == 4 && par >= 4 && speedup < 1.3 {
				return fmt.Errorf("%s workers=4: cpu-bound speedup %.2fx on a %d-CPU host, bar is >=1.3x", label, speedup, par)
			}
			owned := out.Run.Sum(func(r *stats.Rank) int64 { return r.OwnedMemBytes })
			entries := out.Run.Sum(func(r *stats.Rank) int64 { return r.OwnedKmers + r.OwnedTiles })
			perEntry := 0.0
			if entries > 0 {
				perEntry = float64(owned) / float64(entries)
			}
			// The exchange-codec bar: round slabs ship zigzag-varint id
			// deltas + varint counts, which must beat the fixed 12-byte
			// entry they replaced with real margin.
			wireBytes := out.Run.Sum(func(r *stats.Rank) int64 { return r.SpecBytesSent })
			wireEntries := out.Run.Sum(func(r *stats.Rank) int64 { return r.SpecEntriesSent })
			wirePer := 0.0
			if wireEntries > 0 {
				wirePer = float64(wireBytes) / float64(wireEntries)
				if wirePer >= 8 {
					return fmt.Errorf("%s workers=%d: spectrum exchange shipped %.1f wire bytes/entry, bar is <8 (fixed encoding was 12)",
						label, workers, wirePer)
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s workers=%d", label, workers),
				secs(wall),
				fmt.Sprintf("%.2fx", speedup),
				mib(out.Run.Max(func(r *stats.Rank) int64 { return r.MemAtFreeze })),
				mib(owned),
				fmt.Sprintf("%.1f", perEntry),
				fmt.Sprintf("%.1f", wirePer),
				"-",
				"-",
				count(out.Result.BasesCorrected),
			})
		}
		return nil
	}
	if err := sweep("engine", ds, np, false); err != nil {
		return t, err
	}
	scLarge := sc
	scLarge.Dataset = sc.Dataset * 4
	if err := sweep("large np=2", buildDataset(genome.EColiSim, scLarge, false), 2, true); err != nil {
		return t, err
	}

	// Layout comparison at equal entry counts. 100000 entries land the
	// packed table at load 100000/131072 = 0.763, i.e. 15.7 bytes/entry
	// against the hash estimate's 24 — the >=1.5x acceptance bar.
	const storeEntries = 100000
	entries, probes := storeData(storeEntries)
	hash := spectrum.NewHash(len(entries))
	for _, e := range entries {
		hash.Set(e.ID, e.Count)
	}
	stores := []struct {
		name string
		s    spectrum.Lookuper
	}{
		{"store hash (mutable)", hash},
		{"store packed (frozen)", spectrum.NewPacked(entries)},
		{"store sorted (Shah)", spectrum.NewSorted(entries)},
		{"store cacheaware (Jammula)", spectrum.NewCacheAware(entries)},
	}
	hashBytes := hash.MemBytes()
	for _, st := range stores {
		if st.s.Len() != len(entries) {
			return nil, fmt.Errorf("%s: %d entries, want %d", st.name, st.s.Len(), len(entries))
		}
		if ratio := float64(hashBytes) / float64(st.s.MemBytes()); st.name == "store packed (frozen)" && ratio < 1.5 {
			return t, fmt.Errorf("build: packed layout is %.2fx smaller than the hash tables, bar is >=1.5x", ratio)
		}
		start := time.Now()
		hits := 0
		for _, id := range probes {
			if _, ok := st.s.Count(id); ok {
				hits++
			}
		}
		perLookup := time.Since(start) / time.Duration(len(probes))
		if hits == 0 {
			return nil, fmt.Errorf("%s: no probe hit", st.name)
		}
		t.Rows = append(t.Rows, []string{
			st.name,
			"-",
			"-",
			"-",
			mib(st.s.MemBytes()),
			fmt.Sprintf("%.1f", float64(st.s.MemBytes())/float64(len(entries))),
			"-",
			fmt.Sprintf("%.2fx", float64(hashBytes)/float64(st.s.MemBytes())),
			perLookup.String(),
			"-",
		})
	}
	return t, nil
}

// storeData builds a deterministic random spectrum and a probe schedule
// mixing present and absent ids, shared by the Build experiment and the
// store ablation bench.
func storeData(n int) (entries []spectrum.Entry, probes []kmer.ID) {
	rng := rand.New(rand.NewSource(42))
	seen := make(map[kmer.ID]bool, n)
	entries = make([]spectrum.Entry, 0, n)
	for len(entries) < n {
		id := kmer.ID(rng.Uint64())
		if seen[id] {
			continue
		}
		seen[id] = true
		entries = append(entries, spectrum.Entry{ID: id, Count: uint32(rng.Intn(200) + 1)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	probes = make([]kmer.ID, 4*n)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = entries[rng.Intn(len(entries))].ID
		} else {
			probes[i] = kmer.ID(rng.Uint64())
		}
	}
	return entries, probes
}

// Recover measures the rank-failure recovery layer: what R=2 replica
// placement costs a fault-free run (peak memory and exchange volume carry
// the duplicated frozen shards), and that a seeded single-rank crash
// mid-correction completes with byte-identical output — the survivors fail
// lookups over to the replica holder, re-replicate the lost shard, and
// correct the dead rank's reads by proxy. The no-replica baseline under the
// same crash aborts; that contract is exercised by the chaos suite, not
// timed here.
func Recover(sc Scale) (*Table, error) {
	ds := buildDataset(genome.EColiSim, sc, false)
	np := sc.Ranks(128)
	if np < 4 {
		np = 4 // a crash needs a coordinator, a victim, and >=2 survivors to shuffle shards between
	}
	h := core.Heuristics{LookupBatch: 32}
	t := &Table{
		ID:     "recover",
		Title:  fmt.Sprintf("Rank-failure recovery, %d ranks (E.Coli, crash rank 1 mid-correction)", np),
		Note:   "new to this implementation; acceptance bar is a completed, byte-identical run under a single correct-phase crash, with fault-free R=2 overhead reported",
		Header: []string{"mode", "wall", "peak mem", "exchange", "failovers", "reshards", "reads recovered", "output"},
	}
	sameBases := func(a, b []dna.Base) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	identical := func(a, b *core.Output) bool {
		ac, bc := a.Corrected(), b.Corrected()
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i].Seq != bc[i].Seq || !sameBases(ac[i].Base, bc[i].Base) {
				return false
			}
		}
		return a.Result == b.Result
	}
	crashPlan := transport.NewPlan(17)
	crashPlan.CrashRank = 1
	crashPlan.CrashPhase = "correct"
	crashPlan.CrashAfter = 3
	modes := []struct {
		name     string
		replicas int
		plan     *transport.Plan
	}{
		{"baseline R=1", 0, nil},
		{"replicas R=2", 2, nil},
		{"R=2 + crash", 2, &crashPlan},
	}
	var ref *core.Output
	var refMem, refExch int64
	for i, m := range modes {
		opts := optionsFor(sc, ds, h, true)
		opts.Replicas = m.replicas
		if m.plan != nil {
			opts.Chaos = m.plan
		}
		out, err := engineRun(ds, np, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		peak := out.Run.Max(func(r *stats.Rank) int64 { return r.PeakMemBytes })
		exch := out.Run.Sum(func(r *stats.Rank) int64 { return r.ExchangeBytes })
		outcome := "identical"
		if i == 0 {
			ref, refMem, refExch = out, peak, exch
			outcome = "reference"
		} else if !identical(ref, out) {
			return nil, fmt.Errorf("%s: output differs from the R=1 reference", m.name)
		}
		memCol, exchCol := mib(peak), mib(exch)
		if i > 0 && refMem > 0 {
			memCol = fmt.Sprintf("%s (%+.1f%%)", mib(peak), 100*float64(peak-refMem)/float64(refMem))
			exchCol = fmt.Sprintf("%s (%+.1f%%)", mib(exch), 100*float64(exch-refExch)/float64(refExch))
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			out.Run.Elapsed.Round(time.Millisecond).String(),
			memCol,
			exchCol,
			count(out.Run.Sum(func(r *stats.Rank) int64 { return r.FailoversTaken })),
			count(out.Run.Sum(func(r *stats.Rank) int64 { return r.ShardsRereplicated })),
			count(out.Run.Sum(func(r *stats.Rank) int64 { return r.ReadsRecovered })),
			outcome,
		})
	}
	return t, nil
}
