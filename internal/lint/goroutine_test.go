package lint

import "testing"

func TestGoroutineHygieneGolden(t *testing.T) {
	runGolden(t, NewGoroutineHygiene(), "goroutine", "reptile/internal/lint/testdata/goroutine")
}

// TestGoroutineHygienePathScoping pins that non-internal packages (the
// public facade, cmds, examples) are out of scope.
func TestGoroutineHygienePathScoping(t *testing.T) {
	pkg, err := LoadDir("testdata/goroutine", "reptile/examples/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewGoroutineHygiene()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
