package fixture

import (
	"testing"
	"time"
)

// TestSleepyHelper shows the analyzer flags wall-clock synchronization in
// test code with its test-specific message.
func TestSleepyHelper(t *testing.T) {
	go func() {
		t.Log("racing goroutine")
	}()
	time.Sleep(5 * time.Millisecond) // want "will flake"
}
