package core

import (
	"math/rand"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
)

// TestBuildParallelPathMatchesSerial pins the two extraction paths against
// each other: the serial direct-route fast path (one effective worker) and
// the sharded extract/fold pipeline must produce identical owned, round,
// and retained tables. The parallelism hook is forced so the test
// exercises the parallel path even on a single-core host, where the clamp
// would otherwise route every worker count through the serial path.
func TestBuildParallelPathMatchesSerial(t *testing.T) {
	oldPar := buildParallelism
	buildParallelism = func() int { return 4 }
	defer func() { buildParallelism = oldPar }()

	rng := rand.New(rand.NewSource(7))
	const bases = "ACGT"
	var batch []reads.Read
	for i := 0; i < 200; i++ {
		n := 40 + rng.Intn(40)
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = bases[rng.Intn(4)]
		}
		batch = append(batch, reads.Read{
			Seq: int64(i), Base: dna.MustEncode(string(seq)), Qual: make([]byte, n),
		})
	}

	build := func(workers int) (own, round, ret *spectrum.HashStore, nw int) {
		cfg := reptile.Default()
		ctx := &rankCtx{
			opts: Options{Config: cfg, Heuristics: Heuristics{Workers: workers}},
			rank: 0,
			np:   4, // most ids are foreign, so the round/retained path is hot
		}
		b := ctx.newSpecBuilder(true)
		b.extract(batch)
		b.fold()
		merge := func(shards []*spectrum.HashStore) *spectrum.HashStore {
			out := spectrum.NewHash(0)
			for _, s := range shards {
				s.Each(func(e spectrum.Entry) bool { out.Add(e.ID, e.Count); return true })
			}
			return out
		}
		return merge(append(append([]*spectrum.HashStore{}, b.ownK...), b.ownT...)),
			merge(append(append([]*spectrum.HashStore{}, b.roundK...), b.roundT...)),
			merge(append(append([]*spectrum.HashStore{}, b.retK...), b.retT...)),
			b.nw
	}

	own1, round1, ret1, nw1 := build(1)
	own4, round4, ret4, nw4 := build(4)
	if nw1 != 1 || nw4 != 4 {
		t.Fatalf("effective workers: serial=%d parallel=%d, want 1 and 4", nw1, nw4)
	}
	if own1.Len() == 0 || round1.Len() == 0 {
		t.Fatal("degenerate dataset: empty owned or round tables")
	}
	for name, pair := range map[string][2]*spectrum.HashStore{
		"owned":    {own1, own4},
		"round":    {round1, round4},
		"retained": {ret1, ret4},
	} {
		serial, parallel := pair[0], pair[1]
		if serial.Len() != parallel.Len() {
			t.Fatalf("%s tables diverge: %d vs %d entries", name, serial.Len(), parallel.Len())
		}
		serial.Each(func(e spectrum.Entry) bool {
			if got, ok := parallel.Count(e.ID); !ok || got != e.Count {
				t.Fatalf("%s id %v: serial count %d, parallel %d (present=%v)", name, e.ID, e.Count, got, ok)
			}
			return true
		})
	}
}

// TestBuildWorkerClamp pins the clamp itself: requesting more workers than
// the machine's parallelism must fall back to the serial path (one shard,
// no per-worker tables) instead of scheduling goroutines that cannot run
// concurrently.
func TestBuildWorkerClamp(t *testing.T) {
	oldPar := buildParallelism
	buildParallelism = func() int { return 1 }
	defer func() { buildParallelism = oldPar }()

	ctx := &rankCtx{opts: Options{Config: reptile.Default(), Heuristics: Heuristics{Workers: 8}}, np: 2}
	b := ctx.newSpecBuilder(false)
	if b.nw != 1 {
		t.Fatalf("effective workers %d on a 1-core host, want 1", b.nw)
	}
	if b.workK != nil || b.workT != nil {
		t.Fatal("serial path allocated per-worker tables")
	}
}
