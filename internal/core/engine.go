package core

import (
	"fmt"
	"io"
	"sort"

	"reptile/internal/collective"
	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// RankOutput is what one rank produces.
type RankOutput struct {
	Corrected []reads.Read
	Stats     stats.Rank
	Result    reptile.Result
}

// rankCtx carries one rank's state through the pipeline phases. The
// endpoint is held as transport.Conn so the whole pipeline — collectives,
// responder, remote lookups — runs unchanged under the Chaos wrapper.
type rankCtx struct {
	e    transport.Conn
	comm *collective.Comm
	opts Options
	rank int
	np   int
	st   stats.Rank

	myReads []reads.Read

	// build is the sharded spectrum builder, live only during the spectrum
	// phase; specBuilder.finish replaces it with the frozen stores below.
	build *specBuilder

	// Owned spectra, immutable from the freeze point (end of the spectrum
	// phase) onward.
	// frozen: packed by specBuilder.finish
	ownKmer, ownTile *spectrum.PackedStore
	// The oracle's read-side view of the retained reads tables (global
	// counts; nil unless RetainReadKmers): a PackedStore normally, the
	// mutable cache tables under CacheRemote.
	readsKmer, readsTile spectrum.Lookuper
	// Mutable retained tables: built by the spectrum phase, resolved to
	// global counts in the post-exchange phase, then frozen into
	// readsKmer/readsTile — except under CacheRemote, which keeps them as
	// the correction-time write side (serialized by the pool's cacheMu).
	cacheKmer, cacheTile *spectrum.HashStore
	replKmer, replTile   spectrum.Lookuper // full replicas (heuristic)
	// Partial-replication copies, packed at the end of the post-exchange
	// phase.
	// frozen: packed by groupReplicate
	groupKmer, groupTile *spectrum.PackedStore

	// Snapshot-cache state (zero unless Options.Snapshot is set): the
	// resolved per-rank file path, and whether the run-wide cache hit let
	// this rank adopt its frozen spectra instead of building them.
	snapPath   string
	snapLoaded bool

	// plane is the rank-wide prefetch accumulator shared by every correction
	// worker (nil unless lookup batching is on); created by correctDriver.
	plane *prefetchPlane

	// res accumulates the correct step's totals for the pipeline epilogue.
	res reptile.Result

	// src is the batch engine's input source, retained past the read phase
	// so a recovery executor can re-derive a dead rank's read assignment.
	src Source
	// Recovery state (nil unless Options.Replicas >= 2): replica shards,
	// the shard holder map, and the peer-down verdict machinery.
	rec *recoveryState
	// Work-stealing chunk queue (nil unless Options.WorkSteal).
	steal *stealSched
	// recCaller carries the recovery/steal request-response traffic
	// (steal requests, replica pushes); nil when neither mode is on.
	recCaller *msgplane.Caller

	// The session layer, armed together with the correct-phase router:
	// sessCaller matches this rank's session requests (open/chunk/close) to
	// their answers, sessions is the executor admitting and correcting
	// sessions opened at this rank. Both live from armCorrect to the
	// quiesce/failure teardown.
	sessCaller *msgplane.Caller
	sessions   *sessionExec
}

// RunRank executes the full pipeline for one rank. Every rank of the group
// must call it concurrently (collectives synchronize them); it works over
// any transport, so one process per rank over TCP behaves identically to
// goroutine ranks.
//
// On failure — own phase error, a lost peer, a corrupt frame, or a peer's
// abort broadcast — RunRank returns an AbortError naming the originating
// rank, its phase, and the root cause; the failing rank broadcasts the
// abort so every peer unblocks promptly instead of hanging in a collective
// or the responder loop.
func RunRank(e transport.Conn, src Source, opts Options) (*RankOutput, error) {
	return runRankPipeline(e, opts, batchSteps(src, opts))
}

// observeFaults records the chaos-schedule fault count when the endpoint is
// a fault-injecting wrapper.
func (ctx *rankCtx) observeFaults() {
	if f, ok := ctx.e.(interface{ FaultsInjected() int64 }); ok {
		ctx.st.FaultsInjected = f.FaultsInjected()
	}
}

// readPhase is Step I: pull this rank's shard from the source. Reads are
// cloned so correction never aliases caller-owned storage.
func (ctx *rankCtx) readPhase(src Source) error {
	ctx.src = src
	br, err := src.Open(ctx.rank, ctx.np, ctx.opts.Config.ChunkReads)
	if err != nil {
		return err
	}
	defer br.Close()
	for {
		batch, err := br.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := range batch {
			ctx.st.ReadBases += int64(len(batch[i].Base))
			ctx.myReads = append(ctx.myReads, batch[i].Clone())
		}
	}
	return nil
}

// balancePhase is the static load-balancing exchange of Section III-A:
// reads are bucketed by content hash and shipped to their owner ranks with
// one all-to-all, "randomizing" the file order so error-dense stretches
// spread across all ranks.
func (ctx *rankCtx) balancePhase() error {
	if !ctx.opts.LoadBalance {
		ctx.st.ReadsAssigned = int64(len(ctx.myReads))
		return nil
	}
	buckets := make([][]reads.Read, ctx.np)
	var kept []reads.Read
	for i := range ctx.myReads {
		owner := ctx.myReads[i].OwnerRank(ctx.np)
		if owner == ctx.rank {
			kept = append(kept, ctx.myReads[i])
		} else {
			buckets[owner] = append(buckets[owner], ctx.myReads[i])
			ctx.st.ReadsExchanged++
		}
	}
	bufs := make([][]byte, ctx.np)
	for r, b := range buckets {
		if r != ctx.rank {
			bufs[r] = reads.EncodeBatch(b)
			ctx.st.ExchangeBytes += int64(len(bufs[r]))
		}
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	ctx.myReads = kept
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		batch, err := reads.DecodeBatch(buf)
		if err != nil {
			return fmt.Errorf("decoding reads from rank %d: %w", r, err)
		}
		ctx.myReads = append(ctx.myReads, batch...)
	}
	// Deterministic processing order regardless of arrival order.
	sort.Slice(ctx.myReads, func(i, j int) bool { return ctx.myReads[i].Seq < ctx.myReads[j].Seq })
	ctx.st.ReadsAssigned = int64(len(ctx.myReads))
	return nil
}

// spectrumPhase is Steps II-III: extract each round's reads with the
// sharded worker pool, then ship non-owned counts to their owners. The
// rounds are pipelined: round r's extraction, fold and encode overlap round
// r-1's background all-to-all pair (double-buffered wire slabs keep them
// independent), and the freeze point at the end packs the pruned owned
// shards into immutable PackedStores. In batch-reads mode the round tables
// are cleared after every chunk, so their size stays bounded by the chunk
// (paper Section III-B); otherwise there is a single round.
//
// reptile-lint:build
func (ctx *rankCtx) spectrumPhase() error {
	if ctx.snapLoaded {
		// The snapshot phase already adopted this run's frozen spectra —
		// run-wide, so no peer is inside the build's collectives either.
		return nil
	}
	chunk := len(ctx.myReads)
	if ctx.opts.Heuristics.BatchReads {
		chunk = ctx.opts.Config.ChunkReads
	}
	if chunk < 1 {
		chunk = 1
	}
	rounds := int64((len(ctx.myReads) + chunk - 1) / chunk)
	// Rank batch counts may differ; everyone must join every collective
	// (the paper's MPI_Reduce-MAX step).
	maxRounds, err := ctx.comm.AllreduceMaxInt64(rounds)
	if err != nil {
		return err
	}
	b := ctx.newSpecBuilder(ctx.opts.Heuristics.RetainReadKmers)
	var inflight *exchangeJob
	joinInflight := func() error {
		if inflight == nil {
			return nil
		}
		err := b.join(inflight)
		inflight = nil
		return err
	}
	for round := int64(0); round < maxRounds; round++ {
		lo := int(round) * chunk
		hi := lo + chunk
		if lo > len(ctx.myReads) {
			lo = len(ctx.myReads)
		}
		if hi > len(ctx.myReads) {
			hi = len(ctx.myReads)
		}
		b.extract(ctx.myReads[lo:hi])
		b.fold()
		b.observeRound()
		bufsK, bufsT := b.encode(int(round) % 3)
		if err := joinInflight(); err != nil {
			return err
		}
		inflight = b.startExchange(bufsK, bufsT)
	}
	if err := joinInflight(); err != nil {
		return err
	}
	if err := ctx.resolveThresholds(); err != nil {
		return err
	}
	b.finish()
	if ctx.opts.Snapshot != nil {
		return ctx.saveSnapshot()
	}
	return nil
}

// postExchangePhase runs the optional post-construction exchanges: global
// count resolution of retained reads tables, full replication, and partial
// group replication. Every rank participates in the same collectives in the
// same order even when a mode is off (with empty buffers), keeping the
// collective schedule aligned. It is also the second freeze point: resolved
// reads tables and group copies are packed here, unless CacheRemote needs
// the reads tables to stay writable through correction.
//
// reptile-lint:build
func (ctx *rankCtx) postExchangePhase() error {
	h := ctx.opts.Heuristics
	if h.RetainReadKmers {
		if ctx.cacheKmer == nil {
			// The streaming pass retains nothing; CacheRemote still needs
			// mutable cache space.
			ctx.cacheKmer = spectrum.NewHash(0)
			ctx.cacheTile = spectrum.NewHash(0)
		}
		if err := ctx.resolveReadsTable(ctx.cacheKmer, ctx.ownKmer); err != nil {
			return err
		}
		if err := ctx.resolveReadsTable(ctx.cacheTile, ctx.ownTile); err != nil {
			return err
		}
		if h.CacheRemote {
			// Correction writes resolved remote lookups back into the
			// tables, so they stay in their mutable form.
			ctx.readsKmer, ctx.readsTile = ctx.cacheKmer, ctx.cacheTile
		} else {
			ctx.readsKmer = spectrum.Freeze(ctx.cacheKmer)
			ctx.readsTile = spectrum.Freeze(ctx.cacheTile)
			ctx.cacheKmer, ctx.cacheTile = nil, nil
		}
	}
	if h.ReplicateKmers {
		repl, err := ctx.replicate(ctx.ownKmer)
		if err != nil {
			return err
		}
		ctx.replKmer = repl
	}
	if h.ReplicateTiles {
		repl, err := ctx.replicate(ctx.ownTile)
		if err != nil {
			return err
		}
		ctx.replTile = repl
	}
	if g := h.PartialReplicationGroup; g > 1 {
		gk, err := ctx.groupReplicate(ctx.ownKmer, g)
		if err != nil {
			return err
		}
		gt, err := ctx.groupReplicate(ctx.ownTile, g)
		if err != nil {
			return err
		}
		ctx.groupKmer, ctx.groupTile = gk, gt
	}
	if ctx.opts.Replicas >= 2 && ctx.np >= 2 {
		// The R=2 ring placement is the last act of the freeze point: from
		// here a single rank loss during correction is survivable.
		return ctx.ringReplicate()
	}
	return nil
}

// resolveReadsTable swaps the local counts in a retained reads table for
// global counts fetched from the owners in bulk ("Read K-mers/Tiles"):
// one all-to-all carries the IDs, a second carries the counts back, and a
// zero count records a definitive absence.
//
// reptile-lint:build
func (ctx *rankCtx) resolveReadsTable(readsTable *spectrum.HashStore, own spectrum.Lookuper) error {
	ids := make([][]kmer.ID, ctx.np)
	readsTable.Each(func(e spectrum.Entry) bool {
		o := kmer.Owner(e.ID, ctx.np)
		ids[o] = append(ids[o], e.ID)
		return true
	})
	bufs := make([][]byte, ctx.np)
	for r, list := range ids {
		if r == ctx.rank || len(list) == 0 {
			continue
		}
		buf := make([]byte, 0, len(list)*12)
		entries := make([]spectrum.Entry, len(list))
		for i, id := range list {
			entries[i] = spectrum.Entry{ID: id}
		}
		bufs[r] = spectrum.EncodeEntries(buf, entries)
		ctx.st.ExchangeBytes += int64(len(bufs[r]))
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	// Answer each requester in its own order.
	resp := make([][]byte, ctx.np)
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(buf)
		if err != nil {
			return err
		}
		for i := range entries {
			cnt, _ := own.Count(entries[i].ID)
			entries[i].Count = cnt // 0 = pruned/absent
		}
		resp[r] = spectrum.EncodeEntries(nil, entries)
		ctx.st.ExchangeBytes += int64(len(resp[r]))
	}
	answers, err := ctx.comm.Alltoallv(resp)
	if err != nil {
		return err
	}
	for r, buf := range answers {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(buf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			readsTable.Set(e.ID, e.Count)
		}
	}
	return nil
}

// replicate allgathers the owned spectrum onto every rank and lays it out
// per the configured replicated layout (packed by default; sorted or
// cache-aware arrays reproduce the prior parallelizations' storage). Every
// layout is immutable, matching the replicas' read-only role in Step IV.
//
// reptile-lint:build
func (ctx *rankCtx) replicate(own *spectrum.PackedStore) (spectrum.Lookuper, error) {
	buf := spectrum.EncodeEntries(nil, own.Entries())
	ctx.st.ExchangeBytes += int64(len(buf)) * int64(ctx.np-1)
	all, err := ctx.comm.Allgatherv(buf)
	if err != nil {
		return nil, err
	}
	repl := spectrum.NewHash(own.Len() * ctx.np)
	for _, b := range all {
		entries, err := spectrum.DecodeEntries(b)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			repl.Set(e.ID, e.Count)
		}
	}
	switch ctx.opts.Heuristics.ReplicatedLayout {
	case LayoutSorted:
		s := spectrum.NewSorted(repl.Entries())
		repl.Release()
		return s, nil
	case LayoutCacheAware:
		c := spectrum.NewCacheAware(repl.Entries())
		repl.Release()
		return c, nil
	}
	return spectrum.Freeze(repl), nil
}

// groupReplicate exchanges owned spectra within replication groups of g
// consecutive ranks (the paper's proposed partial-replication extension)
// and freezes the union.
//
// reptile-lint:build
func (ctx *rankCtx) groupReplicate(own *spectrum.PackedStore, g int) (*spectrum.PackedStore, error) {
	buf := spectrum.EncodeEntries(nil, own.Entries())
	bufs := make([][]byte, ctx.np)
	myGroup := ctx.rank / g
	for r := 0; r < ctx.np; r++ {
		if r != ctx.rank && r/g == myGroup {
			bufs[r] = buf
			ctx.st.ExchangeBytes += int64(len(buf))
		}
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return nil, err
	}
	group := spectrum.NewHash(own.Len() * g)
	own.Each(func(e spectrum.Entry) bool { group.Set(e.ID, e.Count); return true })
	for r, b := range got {
		if r == ctx.rank || len(b) == 0 {
			continue
		}
		entries, err := spectrum.DecodeEntries(b)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			group.Set(e.ID, e.Count)
		}
	}
	return spectrum.Freeze(group), nil
}

// currentMem sums the live table footprint. Reads themselves are excluded:
// the paper streams them from the file precisely to keep them out of the
// 512 MB budget, and our in-memory copy is an artifact of returning
// corrected reads to the caller.
func (ctx *rankCtx) currentMem() int64 {
	var total int64
	if ctx.build != nil {
		total += ctx.build.memBytes()
	}
	for _, s := range []*spectrum.PackedStore{
		ctx.ownKmer, ctx.ownTile, ctx.groupKmer, ctx.groupTile,
	} {
		if s != nil {
			total += s.MemBytes()
		}
	}
	// Under CacheRemote readsKmer/readsTile alias the cache tables; count
	// each store once.
	if ctx.cacheKmer != nil {
		total += ctx.cacheKmer.MemBytes() + ctx.cacheTile.MemBytes()
	} else {
		for _, s := range []spectrum.Lookuper{ctx.readsKmer, ctx.readsTile} {
			if s != nil {
				total += s.MemBytes()
			}
		}
	}
	for _, s := range []spectrum.Lookuper{ctx.replKmer, ctx.replTile} {
		if s != nil {
			total += s.MemBytes()
		}
	}
	if ctx.rec != nil {
		total += ctx.rec.replicaMemBytes()
	}
	return total
}

// observeMem records the table-footprint high-water mark.
func (ctx *rankCtx) observeMem() {
	ctx.st.ObserveMem(ctx.currentMem())
}
