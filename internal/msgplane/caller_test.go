package msgplane

import (
	"errors"
	"testing"
	"time"
)

func startOne(t *testing.T, c *Caller, owner int) *Call {
	t.Helper()
	call, err := c.Start(owner, 1, func(reqID uint32) (Tag, []byte) {
		return testTagReq, []byte{byte(reqID), 0, 0, 0, 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	return call
}

func TestCallerDeliverMatchesRequest(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	call := startOne(t, c, 1)
	if err := c.Deliver(1, testTagResp, 1, "answer"); err != nil {
		t.Fatal(err)
	}
	got, err := call.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got != "answer" {
		t.Fatalf("result %v", got)
	}
	if frames, items := c.Counters(); frames != 1 || items != 1 {
		t.Fatalf("counters %d/%d", frames, items)
	}
}

func TestCallerUnknownRequestID(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	err := c.Deliver(1, testTagResp, 99, nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationUnknownRequest || pe.ReqID != 99 || pe.From != 1 {
		t.Fatalf("unexpected violation: %+v", pe)
	}
}

func TestCallerStraySender(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	startOne(t, c, 1)
	err := c.Deliver(2, testTagResp, 1, nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationStraySender || pe.Want != 1 || pe.From != 2 || pe.ReqID != 1 {
		t.Fatalf("unexpected violation: %+v", pe)
	}
}

// TestCallerDuplicateRequestID delivers the same response twice: the
// first resolves the call, the second must surface as a violation (the
// id is no longer pending) instead of resolving a stranger's call.
func TestCallerDuplicateRequestID(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	call := startOne(t, c, 1)
	if err := c.Deliver(1, testTagResp, 1, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); err != nil {
		t.Fatal(err)
	}
	err := c.Deliver(1, testTagResp, 1, "second")
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("duplicate delivery returned %v, want ProtocolError", err)
	}
	if pe.Kind != ViolationUnknownRequest || pe.ReqID != 1 {
		t.Fatalf("unexpected violation: %+v", pe)
	}
}

func TestCallerFailPoisonsWaiters(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	call := startOne(t, c, 1)
	boom := errors.New("boom")
	c.Fail(boom)
	if _, err := call.Wait(); !errors.Is(err, boom) {
		t.Fatalf("outstanding call resolved with %v, want poison", err)
	}
	if _, err := c.Start(1, 1, func(uint32) (Tag, []byte) { return testTagReq, nil }); !errors.Is(err, boom) {
		t.Fatalf("post-poison start returned %v, want poison", err)
	}
}

// TestCallerFailPeerReapsOnePeer: FailPeer must resolve only the dead
// peer's outstanding calls, leave other peers' calls (and future Starts)
// healthy, and silently drop the dead peer's late answers — detection of a
// death can race the peer's last responses through the transport, and a
// reaped request's answer must not surface as an unknown-request violation.
func TestCallerFailPeerReapsOnePeer(t *testing.T) {
	eps := procGroup(t, 3)
	c := NewCaller(eps[0], 3, 0)
	dead := startOne(t, c, 1)  // reqID 1
	alive := startOne(t, c, 2) // reqID 2
	boom := errors.New("peer 1 down")
	c.FailPeer(1, boom)
	if _, err := dead.Wait(); !errors.Is(err, boom) {
		t.Fatalf("dead peer's call resolved with %v, want the peer failure", err)
	}
	// The dead peer's in-flight answer arrives late: dropped, not a violation.
	if err := c.Deliver(1, testTagResp, 1, "stale"); err != nil {
		t.Fatalf("late answer to the reaped request: %v, want silent drop", err)
	}
	// The abandoned id is consumed by the drop; a second arrival is a real
	// protocol violation again.
	var pe *ProtocolError
	if err := c.Deliver(1, testTagResp, 1, "stale again"); !errors.As(err, &pe) {
		t.Fatalf("re-delivered stale answer returned %v, want ProtocolError", err)
	}
	// The healthy peer is untouched: its call resolves, new calls start.
	if err := c.Deliver(2, testTagResp, 2, "fine"); err != nil {
		t.Fatal(err)
	}
	if got, err := alive.Wait(); err != nil || got != "fine" {
		t.Fatalf("healthy peer's call: %v, %v", got, err)
	}
	if _, err := c.Start(2, 1, func(reqID uint32) (Tag, []byte) {
		return testTagReq, []byte{byte(reqID), 0, 0, 0, 0}
	}); err != nil {
		t.Fatalf("post-FailPeer start to a healthy peer: %v", err)
	}
}

// TestCallerWindowBackpressure checks Start blocks at the per-peer window
// and unblocks when a response frees the slot.
func TestCallerWindowBackpressure(t *testing.T) {
	eps := procGroup(t, 2)
	c := NewCaller(eps[0], 2, 1)
	startOne(t, c, 1)

	unblocked := make(chan *Call, 1)
	go func() {
		call, err := c.Start(1, 1, func(reqID uint32) (Tag, []byte) {
			return testTagReq, []byte{byte(reqID), 0, 0, 0, 0}
		})
		if err != nil {
			t.Error(err)
		}
		unblocked <- call
	}()
	select {
	case <-unblocked:
		t.Fatal("second start did not block on the window")
	case <-time.After(50 * time.Millisecond):
	}
	if err := c.Deliver(1, testTagResp, 1, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("start stayed blocked after the window slot freed")
	}
	// Both frames really left the endpoint.
	for i := 0; i < 2; i++ {
		if _, err := Recv(eps[1], testTagReq); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTagString(t *testing.T) {
	if got := TagDone.String(); got != "done" {
		t.Errorf("TagDone.String() = %q", got)
	}
	if got := Tag(12345).String(); got != "tag(12345)" {
		t.Errorf("unregistered String() = %q", got)
	}
	if got := DirControl.String(); got != "control" {
		t.Errorf("DirControl.String() = %q", got)
	}
}

func TestRegisterRejectsConflicts(t *testing.T) {
	wantPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		Register(s)
	}
	wantPanic("duplicate", Spec{Tag: TagDone, Name: "again", MinSize: 0, MaxSize: 0})
	wantPanic("negative", Spec{Tag: -3, Name: "neg", MinSize: 0, MaxSize: 0})
	wantPanic("unnamed", Spec{Tag: 0x7f0, MinSize: 0, MaxSize: 0})
	wantPanic("bounds", Spec{Tag: 0x7f1, Name: "bounds", MinSize: 4, MaxSize: 2})
}

func TestSpecsSortedByTag(t *testing.T) {
	specs := Specs()
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Tag >= specs[i].Tag {
			t.Fatalf("specs not strictly sorted at %d: %v then %v", i, specs[i-1].Tag, specs[i].Tag)
		}
	}
	if _, ok := LookupSpec(TagStop); !ok {
		t.Fatal("control tags missing from the registry")
	}
}
