package core

import (
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"reptile/internal/dna"
	"reptile/internal/reads"
	"reptile/internal/transport"
)

// chaosDeadline bounds every fault-injection run: the invariant under fatal
// faults is a clean error on every rank well within this window, never a
// hang. Generous for -race CI; real propagation is milliseconds.
const chaosDeadline = 60 * time.Second

// awaitRun runs fn under the chaos deadline.
func awaitRun(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(chaosDeadline):
		t.Fatalf("%s: run exceeded %v deadline", name, chaosDeadline)
		return nil
	}
}

// chaosSeeds returns the benign-invariance seed set: a fixed base matrix,
// extended by REPTILE_CHAOS_SEED when set (the CI chaos job's seed matrix).
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("REPTILE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("REPTILE_CHAOS_SEED: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// runChaosRanks drives RunRank per rank over a proc group with every
// endpoint wrapped in the plan's chaos layer, returning each rank's error.
// It fails the test if any rank is still blocked at the deadline.
func runChaosRanks(t *testing.T, rs []reads.Read, np int, opts Options, plan transport.Plan) []error {
	t.Helper()
	if err := plan.Validate(np); err != nil {
		t.Fatal(err)
	}
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	src := &MemorySource{Reads: rs}
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = RunRank(transport.NewChaos(eps[r], plan), src, opts)
		}(r)
	}
	_ = awaitRun(t, "chaos group", func() error { wg.Wait(); return nil })
	return errs
}

// sameOutput asserts two runs corrected identical bytes.
func sameOutput(t *testing.T, name string, base, got *Output) {
	t.Helper()
	bc, gc := base.Corrected(), got.Corrected()
	if len(bc) != len(gc) {
		t.Fatalf("%s: %d reads, fault-free run %d", name, len(gc), len(bc))
	}
	for i := range bc {
		if bc[i].Seq != gc[i].Seq || dna.DecodeString(bc[i].Base) != dna.DecodeString(gc[i].Base) {
			t.Fatalf("%s: read %d differs from fault-free run", name, bc[i].Seq)
		}
	}
	if base.Result != got.Result {
		t.Errorf("%s: result %+v, fault-free %+v", name, got.Result, base.Result)
	}
}

// TestChaosBenignFaultsPreserveOutput: latency, jitter, and a throttled
// rank only stretch time — the corrected output must be byte-identical to a
// fault-free run, for every seed.
func TestChaosBenignFaultsPreserveOutput(t *testing.T) {
	ds, opts := testDataset(t, 400, 7000)
	const np = 3
	base, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		plan := transport.NewPlan(seed)
		plan.Delay = 20 * time.Microsecond
		plan.Jitter = 50 * time.Microsecond
		plan.SlowRank = 1
		plan.SlowFactor = 3
		if !plan.Benign() {
			t.Fatal("timing-only plan classified as fatal")
		}
		o := opts
		o.Chaos = &plan
		var out *Output
		err := awaitRun(t, "benign run", func() error {
			var err error
			out, err = Run(&MemorySource{Reads: ds.Reads}, np, o)
			return err
		})
		if err != nil {
			t.Fatalf("seed %d: benign faults failed the run: %v", seed, err)
		}
		sameOutput(t, "benign chaos", base, out)
	}
}

// TestChaosBenignAcrossHeuristics: the invariance must hold in every major
// execution mode, since each mode has its own traffic pattern to disturb.
func TestChaosBenignAcrossHeuristics(t *testing.T) {
	ds, opts := testDataset(t, 300, 7100)
	opts.Config.ChunkReads = 100
	plan := transport.NewPlan(11)
	plan.Delay = 10 * time.Microsecond
	plan.Jitter = 30 * time.Microsecond
	for name, h := range map[string]Heuristics{
		"universal":     {Universal: true},
		"cache":         {RetainReadKmers: true, CacheRemote: true},
		"batch":         {BatchReads: true},
		"repl-both":     {ReplicateKmers: true, ReplicateTiles: true},
		"lookup-batch":  {LookupBatch: 16},
		"batch-workers": {LookupBatch: 8, LookupWindow: 2, Workers: 2},
	} {
		o := opts
		o.Heuristics = h
		base, err := Run(&MemorySource{Reads: ds.Reads}, 3, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o.Chaos = &plan
		var out *Output
		if err := awaitRun(t, name, func() error {
			var err error
			out, err = Run(&MemorySource{Reads: ds.Reads}, 3, o)
			return err
		}); err != nil {
			t.Fatalf("%s: benign faults failed the run: %v", name, err)
		}
		sameOutput(t, name, base, out)
	}
}

// chaosTCPRanks mirrors runChaosRanks over loopback TCP: one endpoint per
// rank, each wrapped in the chaos layer.
func chaosTCPRanks(t *testing.T, rs []reads.Read, np int, opts Options, plan transport.Plan, peerTimeout time.Duration) ([]*RankOutput, []error) {
	t.Helper()
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	src := &MemorySource{Reads: rs}
	outs := make([]*RankOutput, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := transport.NewTCP(transport.TCPConfig{
				Rank: r, Addrs: addrs,
				DialTimeout: 10 * time.Second,
				PeerTimeout: peerTimeout,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			outs[r], errs[r] = RunRank(transport.NewChaos(e, plan), src, opts)
		}(r)
	}
	_ = awaitRun(t, "tcp chaos group", func() error { wg.Wait(); return nil })
	return outs, errs
}

// TestChaosBenignOverTCP: the timing-fault invariance holds over the real
// network path, with heartbeats and read deadlines armed.
func TestChaosBenignOverTCP(t *testing.T) {
	ds, opts := testDataset(t, 300, 7200)
	const np = 2
	base, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := transport.NewPlan(5)
	plan.Delay = 20 * time.Microsecond
	plan.Jitter = 40 * time.Microsecond
	outs, errs := chaosTCPRanks(t, ds.Reads, np, opts, plan, 5*time.Second)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: benign faults failed the tcp run: %v", r, err)
		}
	}
	got := &Output{ByRank: make([][]reads.Read, np)}
	for r, o := range outs {
		got.ByRank[r] = o.Corrected
		got.Result.Add(o.Result)
	}
	sameOutput(t, "benign tcp chaos", base, got)
}

// TestChaosCrashAbortsAllRanksProc: a rank dying mid-run (endpoint closed
// as if the process were killed) must yield a clean AbortError on every
// rank — ErrInjected on the crashed rank, ErrPeerDown on its peers — never
// a hang or silent completion.
func TestChaosCrashAbortsAllRanksProc(t *testing.T) {
	ds, opts := testDataset(t, 600, 7300)
	const np = 4
	plan := transport.NewPlan(42)
	plan.CrashRank = 1
	plan.CrashAfter = 25
	errs := runChaosRanks(t, ds.Reads, np, opts, plan)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the crash", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(errs[r], transport.ErrPeerDown) {
			t.Errorf("rank %d error does not wrap ErrPeerDown: %v", r, errs[r])
		}
	}
}

// TestChaosCrashWithBatchedLookups: the crash invariant must hold with the
// batched pipeline and a worker pool on — a dead peer poisons the lookup
// dispatcher, so no worker stays parked on a batch response that will never
// arrive and every rank still aborts cleanly.
func TestChaosCrashWithBatchedLookups(t *testing.T) {
	ds, opts := testDataset(t, 600, 7800)
	opts.Heuristics.LookupBatch = 16
	opts.Heuristics.Workers = 2
	const np = 4
	plan := transport.NewPlan(42)
	plan.CrashRank = 1
	plan.CrashAfter = 25
	errs := runChaosRanks(t, ds.Reads, np, opts, plan)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the crash", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
}

// TestChaosDropAbortsRunProc: severing one link must abort the whole group,
// with both endpoints of the dropped link reporting the peer down.
func TestChaosDropAbortsRunProc(t *testing.T) {
	ds, opts := testDataset(t, 600, 7400)
	const np = 3
	plan := transport.NewPlan(13)
	plan.DropRank = 0
	plan.DropPeer = 1
	plan.DropAfter = 10
	errs := runChaosRanks(t, ds.Reads, np, opts, plan)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the dropped link", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	for _, r := range []int{0, 1} {
		if !errors.Is(errs[r], transport.ErrPeerDown) {
			t.Errorf("link endpoint %d does not report ErrPeerDown: %v", r, errs[r])
		}
	}
}

// TestChaosCrashOverTCPPeersSeePeerDown kills one rank's endpoint mid-run
// over real sockets: every surviving rank must return an ErrPeerDown-wrapped
// AbortError within the deadline, and the crashed rank must report the
// injected fault.
func TestChaosCrashOverTCPPeersSeePeerDown(t *testing.T) {
	ds, opts := testDataset(t, 600, 7500)
	const np = 3
	plan := transport.NewPlan(7)
	plan.CrashRank = 1
	plan.CrashAfter = 150
	_, errs := chaosTCPRanks(t, ds.Reads, np, opts, plan, 5*time.Second)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the crash", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
	for _, r := range []int{0, 2} {
		if !errors.Is(errs[r], transport.ErrPeerDown) {
			t.Errorf("surviving rank %d does not report ErrPeerDown: %v", r, errs[r])
		}
	}
}

// TestChaosCorruptionOverTCPAborts flips one frame byte on the wire: the
// receiver's CRC check must reject it (ErrCorruptFrame), the run must abort
// on every rank, and nothing may be silently mis-decoded.
func TestChaosCorruptionOverTCPAborts(t *testing.T) {
	ds, opts := testDataset(t, 300, 7600)
	const np = 2
	plan := transport.NewPlan(3)
	plan.CorruptRank = 0
	plan.CorruptAfter = 3
	_, errs := chaosTCPRanks(t, ds.Reads, np, opts, plan, 0)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the corrupted frame", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	if !errors.Is(errs[1], transport.ErrCorruptFrame) {
		t.Errorf("receiver does not report ErrCorruptFrame: %v", errs[1])
	}
}

// TestChaosPlanValidation: an out-of-range plan must be rejected up front
// by Run and RunStreaming, and a valid fatal plan must surface through the
// Options plumbing.
func TestChaosPlanValidation(t *testing.T) {
	ds, opts := testDataset(t, 50, 7700)
	bad := transport.NewPlan(1)
	bad.CrashRank = 9
	opts.Chaos = &bad
	if _, err := Run(&MemorySource{Reads: ds.Reads}, 2, opts); err == nil {
		t.Error("Run accepted a plan with an out-of-range rank")
	}
	if _, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 2, opts, discardFactory()); err == nil {
		t.Error("RunStreaming accepted a plan with an out-of-range rank")
	}

	good := transport.NewPlan(1)
	good.CrashRank = 0
	good.CrashAfter = 5
	opts.Chaos = &good
	err := awaitRun(t, "options-plumbed crash", func() error {
		_, err := Run(&MemorySource{Reads: ds.Reads}, 2, opts)
		return err
	})
	if err == nil {
		t.Fatal("Run succeeded despite a crash schedule in Options")
	}
	var ab *AbortError
	if !errors.As(err, &ab) || !errors.Is(err, transport.ErrInjected) {
		t.Errorf("crash through Options did not surface as an injected AbortError: %v", err)
	}
}
