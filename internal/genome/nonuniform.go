package genome

import (
	"math"
	"math/rand"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

// Non-uniform coverage simulation. The paper motivates the distributed
// spectrum with RNA sequencing, population genetics and metagenomics
// workloads, whose coverage is wildly non-uniform: a few highly-expressed
// transcripts (or abundant species) soak up most reads while the long tail
// is thinly covered. That skew stresses exactly what the distributed layout
// must keep uniform — per-rank spectrum sizes — because a handful of
// regions produce enormously common k-mers.

// Abundance describes a weighted region of the genome for non-uniform
// sampling.
type Abundance struct {
	Start, End int     // genomic interval [Start, End)
	Weight     float64 // relative sampling weight
}

// TranscriptomeAbundances carves the genome into n equal "transcripts"
// with Zipf-distributed weights (s ~ 1), the standard first-order model of
// expression skew.
func TranscriptomeAbundances(genomeLen, n int, seed int64) []Abundance {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Abundance, n)
	size := genomeLen / n
	perm := rng.Perm(n) // rank-to-transcript assignment
	for i := 0; i < n; i++ {
		start := i * size
		end := start + size
		if i == n-1 {
			end = genomeLen
		}
		out[i] = Abundance{
			Start:  start,
			End:    end,
			Weight: 1 / math.Pow(float64(perm[i]+1), 1.0),
		}
	}
	return out
}

// SimulateNonUniform draws n reads with per-region sampling weights; the
// error model matches Simulate. Read positions are uniform within the
// chosen region (reads near a region's end spill into the neighbour, as
// fragments spanning transcript boundaries would).
func SimulateNonUniform(name string, g *Genome, n int, p Profile, abundances []Abundance, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cum := make([]float64, len(abundances))
	total := 0.0
	for i, a := range abundances {
		total += a.Weight
		cum[i] = total
	}
	positions := make([]int, n)
	for i := range positions {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		a := abundances[lo]
		pos := a.Start + rng.Intn(a.End-a.Start)
		if pos > g.Len()-p.ReadLen {
			pos = g.Len() - p.ReadLen
		}
		positions[i] = pos
	}
	return simulateAt(name, g, positions, p, rng)
}

// simulateAt generates reads at the given genome positions under profile p,
// sharing the error-injection model with Simulate.
func simulateAt(name string, g *Genome, positions []int, p Profile, rng *rand.Rand) *Dataset {
	n := len(positions)
	ds := &Dataset{
		Name:    name,
		Genome:  g,
		Reads:   make([]reads.Read, n),
		Truth:   make([][]ErrorSite, n),
		Pos:     positions,
		Profile: p,
	}
	window := make([]dna.Base, p.ReadLen)
	for i, pos := range positions {
		g.Seq.Slice(window, pos, pos+p.ReadLen)
		r := reads.Read{
			Seq:  int64(i + 1),
			Base: make([]dna.Base, p.ReadLen),
			Qual: make([]byte, p.ReadLen),
		}
		copy(r.Base, window)
		boost := p.ErrorBoost
		if b := p.localBoost(i, n); b > 0 {
			boost *= b
		}
		injectErrors(&r, ds, i, boost, p, rng)
		ds.Reads[i] = r
	}
	return ds
}
