// Package transport is the message-passing substrate the distributed
// Reptile engine runs on — the stand-in for MPI on BlueGene/Q, built from
// scratch on the standard library as the paper's algorithm requires only a
// small slice of MPI semantics:
//
//   - tagged point-to-point sends with per-(sender,tag) FIFO ordering,
//   - selective receive by tag (the MPI_Probe + tagged-recv pattern) and
//     receive-any (the paper's "universal" heuristic),
//   - and collectives (package collective) layered on top.
//
// Two transports implement the same Endpoint surface: proc (ranks are
// goroutines in one process, delivery over in-memory mailboxes) and tcp
// (one process per rank, full-mesh length-prefixed frames over net).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Message is one delivered unit: the sender's rank, the application tag,
// and an owned payload.
type Message struct {
	From int
	Tag  int
	Data []byte
}

// Counters tracks per-endpoint traffic; the machine model converts these
// into projected network time. All methods are safe for concurrent use.
type Counters struct {
	msgsSent  atomic.Int64
	bytesSent atomic.Int64
	msgsRecv  atomic.Int64
	bytesRecv atomic.Int64
	perDest   []atomic.Int64 // messages per destination rank
	perDestB  []atomic.Int64 // bytes per destination rank
}

// NewCounters sizes the per-destination tallies for np ranks.
func NewCounters(np int) *Counters {
	return &Counters{
		perDest:  make([]atomic.Int64, np),
		perDestB: make([]atomic.Int64, np),
	}
}

func (c *Counters) countSend(to, bytes int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(bytes))
	c.perDest[to].Add(1)
	c.perDestB[to].Add(int64(bytes))
}

func (c *Counters) countRecv(bytes int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(bytes))
}

// MsgsSent returns the total messages sent.
func (c *Counters) MsgsSent() int64 { return c.msgsSent.Load() }

// BytesSent returns the total payload bytes sent.
func (c *Counters) BytesSent() int64 { return c.bytesSent.Load() }

// MsgsRecv returns the total messages received (delivered to a Recv).
func (c *Counters) MsgsRecv() int64 { return c.msgsRecv.Load() }

// BytesRecv returns the total payload bytes received.
func (c *Counters) BytesRecv() int64 { return c.bytesRecv.Load() }

// MsgsTo returns messages sent to a specific rank.
func (c *Counters) MsgsTo(rank int) int64 { return c.perDest[rank].Load() }

// BytesTo returns bytes sent to a specific rank.
func (c *Counters) BytesTo(rank int) int64 { return c.perDestB[rank].Load() }

// PerDestSnapshot copies the current per-destination tallies; engines take
// snapshots at phase boundaries to attribute traffic to phases.
func (c *Counters) PerDestSnapshot() (msgs, bytes []int64) {
	msgs = make([]int64, len(c.perDest))
	bytes = make([]int64, len(c.perDestB))
	for i := range c.perDest {
		msgs[i] = c.perDest[i].Load()
		bytes[i] = c.perDestB[i].Load()
	}
	return msgs, bytes
}

// Endpoint is one rank's connection to the group. It is safe for use by
// multiple goroutines (the paper runs a worker thread and a communication
// thread per rank).
type Endpoint struct {
	rank int
	size int

	mbox     *mailbox
	counters *Counters

	sendFn  func(to int, m Message) error
	closeFn func() error

	closed atomic.Bool
}

// Rank returns this endpoint's rank in [0, Size).
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the group.
func (e *Endpoint) Size() int { return e.size }

// Counters returns the traffic counters.
func (e *Endpoint) Counters() *Counters { return e.counters }

// Send delivers data to rank `to` with the given tag. The payload is owned
// by the transport after the call; callers must not reuse it. Self-sends
// are legal and loop back through the local mailbox.
func (e *Endpoint) Send(to, tag int, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= e.size {
		return fmt.Errorf("transport: send to rank %d of %d", to, e.size)
	}
	e.counters.countSend(to, len(data))
	return e.sendFn(to, Message{From: e.rank, Tag: tag, Data: data})
}

// Recv blocks until a message with exactly this tag arrives (any sender).
func (e *Endpoint) Recv(tag int) (Message, error) {
	m, err := e.mbox.recv(func(t int) bool { return t == tag })
	if err == nil {
		e.counters.countRecv(len(m.Data))
	}
	return m, err
}

// RecvMatch blocks until a message whose tag satisfies match arrives. The
// responder loop uses it to service multiple request tags at once.
func (e *Endpoint) RecvMatch(match func(tag int) bool) (Message, error) {
	m, err := e.mbox.recv(match)
	if err == nil {
		e.counters.countRecv(len(m.Data))
	}
	return m, err
}

// TryRecvMatch is RecvMatch without blocking; ok=false means no matching
// message is currently queued.
func (e *Endpoint) TryRecvMatch(match func(tag int) bool) (Message, bool, error) {
	m, ok, err := e.mbox.tryRecv(match)
	if ok {
		e.counters.countRecv(len(m.Data))
	}
	return m, ok, err
}

// deliver enqueues an inbound message; transports call it from their
// delivery paths.
func (e *Endpoint) deliver(m Message) error {
	return e.mbox.put(m)
}

// MaxQueueDepth returns the high-water mark of pending messages in this
// endpoint's mailbox — the backlog a slow responder accumulated.
func (e *Endpoint) MaxQueueDepth() int {
	e.mbox.mu.Lock()
	defer e.mbox.mu.Unlock()
	return e.mbox.maxDepth
}

// Close shuts the endpoint down. Blocked receivers return ErrClosed.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.mbox.close()
	if e.closeFn != nil {
		return e.closeFn()
	}
	return nil
}

// mailbox is an unbounded tag-filterable message queue. Unboundedness is a
// deliberate choice: the correction phase's request/response traffic forms
// cycles between ranks, and any bounded intermediate queue could deadlock
// under bursty load; memory for in-flight messages is part of the 512 MB
// per-process budget the engine accounts for separately.
// Messages are demultiplexed into per-tag FIFO queues on arrival, so a
// selective receive is O(number of distinct tags), not O(queued messages):
// MPI guarantees ordering only per (sender, tag), so per-tag FIFOs preserve
// every ordering the algorithm may rely on.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond        // signals on mu
	byTag  map[int]*tagQueue // guarded by mu (tagQueues are owned by mu too)
	closed bool              // guarded by mu
	// Queue-depth accounting: depth is current pending messages, maxDepth
	// the high-water mark. Unbounded queues make backlog invisible unless
	// measured; the engine surfaces this per rank.
	depth    int // guarded by mu
	maxDepth int // guarded by mu
	// waiting counts receivers blocked in cond.Wait, and watchers holds
	// one channel per awaitWaiters caller, closed when enough receivers
	// are blocked — tests wait for "n receivers are parked" instead of
	// sleeping and hoping.
	waiting  int        // guarded by mu
	watchers []*watcher // guarded by mu
}

// watcher is one awaitWaiters subscription: ch is closed once the mailbox
// has at least n receivers blocked.
type watcher struct {
	n  int
	ch chan struct{}
}

// tagQueue is a FIFO with an amortized-O(1) pop (head index advances and
// the backing slice is compacted when mostly consumed).
type tagQueue struct {
	msgs []Message
	head int
}

func (q *tagQueue) push(m Message) { q.msgs = append(q.msgs, m) }

func (q *tagQueue) pop() (Message, bool) {
	if q.head >= len(q.msgs) {
		return Message{}, false
	}
	m := q.msgs[q.head]
	q.msgs[q.head] = Message{} // release payload for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.msgs) {
		n := copy(q.msgs, q.msgs[q.head:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return m, true
}

func (q *tagQueue) empty() bool { return q.head >= len(q.msgs) }

func newMailbox() *mailbox {
	mb := &mailbox{byTag: make(map[int]*tagQueue)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	q := mb.byTag[m.Tag]
	if q == nil {
		q = &tagQueue{}
		mb.byTag[m.Tag] = q
	}
	q.push(m)
	mb.depth++
	if mb.depth > mb.maxDepth {
		mb.maxDepth = mb.depth
	}
	mb.cond.Broadcast()
	return nil
}

// take removes and returns a pending message whose tag matches.
//
// reptile-lint:holds mu
func (mb *mailbox) take(match func(int) bool) (Message, bool) {
	for tag, q := range mb.byTag {
		if q.empty() || !match(tag) {
			continue
		}
		m, ok := q.pop()
		if ok {
			mb.depth--
		}
		return m, ok
	}
	return Message{}, false
}

func (mb *mailbox) recv(match func(int) bool) (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m, ok := mb.take(match); ok {
			return m, nil
		}
		if mb.closed {
			return Message{}, ErrClosed
		}
		mb.waiting++
		mb.notifyWatchers()
		mb.cond.Wait()
		mb.waiting--
	}
}

// notifyWatchers releases every awaitWaiters subscription whose threshold
// the current waiting count satisfies.
//
// reptile-lint:holds mu
func (mb *mailbox) notifyWatchers() {
	if len(mb.watchers) == 0 {
		return
	}
	kept := mb.watchers[:0]
	for _, w := range mb.watchers {
		if mb.waiting >= w.n {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	mb.watchers = kept
}

// awaitWaiters returns a channel that is closed once at least n receivers
// are blocked in this mailbox. It is the deterministic replacement for
// "sleep and assume the receiver got there" in tests.
func (mb *mailbox) awaitWaiters(n int) <-chan struct{} {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	ch := make(chan struct{})
	if mb.waiting >= n {
		close(ch)
		return ch
	}
	mb.watchers = append(mb.watchers, &watcher{n: n, ch: ch})
	return ch
}

func (mb *mailbox) tryRecv(match func(int) bool) (Message, bool, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if m, ok := mb.take(match); ok {
		return m, true, nil
	}
	if mb.closed {
		return Message{}, false, ErrClosed
	}
	return Message{}, false, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	// Release awaitWaiters subscriptions too: blocked receivers are about
	// to drain away, so the awaited state can never be reached.
	for _, w := range mb.watchers {
		close(w.ch)
	}
	mb.watchers = nil
	mb.cond.Broadcast()
	mb.mu.Unlock()
}
