package core

import (
	"errors"
	"fmt"

	"reptile/internal/transport"
)

// AbortError is how every rank of a run reports a failure anywhere in the
// group: the rank where the failure originated, the pipeline phase it was
// in, and the root cause. It unwraps to the original error on the origin
// rank, and to the matching transport sentinel (ErrPeerDown,
// ErrCorruptFrame) on ranks that learned of the failure from the abort
// broadcast — so errors.Is works identically group-wide.
type AbortError struct {
	Rank  int    // rank where the failure originated
	Phase string // pipeline phase the origin was in
	Cause string // human-readable root cause
	err   error  // unwrap target; nil for remote application errors
}

func (a *AbortError) Error() string {
	return fmt.Sprintf("core: run aborted by rank %d in %s phase: %s", a.Rank, a.Phase, a.Cause)
}

// Unwrap exposes the root cause for errors.Is/As.
func (a *AbortError) Unwrap() error { return a.err }

// fail is the single exit ramp for every engine error. It turns err into
// the run's AbortError and — when this rank is the origin — broadcasts the
// abort record to the whole group (itself included, which unblocks this
// rank's own responder and any receive the worker is parked in):
//
//   - err already is an AbortError: the abort was handled upstream; pass
//     it through without broadcasting again.
//   - err is the transport's Aborted poison: another rank (or another
//     goroutine of this rank) broadcast first; decode its record.
//   - anything else: this rank is the origin. Build the record and
//     broadcast. Sends are best-effort — a rank whose endpoint is already
//     dead (a crashed rank) cannot say goodbye, and its peers detect the
//     loss through the transport instead.
func (ctx *rankCtx) fail(phase string, err error) error {
	var ab *AbortError
	if errors.As(err, &ab) {
		return err
	}
	var poison *transport.Aborted
	if errors.As(err, &poison) {
		if dec, derr := decodeAbortInfo(poison.Payload); derr == nil {
			return dec
		}
		return &AbortError{Rank: poison.From, Phase: phase, Cause: err.Error(), err: err}
	}
	// Transport-detected faults name the culpable rank: attribute the abort
	// to the peer that died (or sent the corrupt frame), not to whichever
	// rank happened to notice first — the phase is still the observer's.
	origin := ctx.rank
	var pd *transport.PeerDownError
	var cf *transport.CorruptFrameError
	if errors.As(err, &pd) {
		origin = pd.Rank
	} else if errors.As(err, &cf) {
		origin = cf.From
	}
	ab = &AbortError{Rank: origin, Phase: phase, Cause: err.Error(), err: err}
	payload := encodeAbortInfo(ab)
	for r := 0; r < ctx.np; r++ {
		_ = ctx.e.SendAbort(r, payload)
	}
	return ab
}
