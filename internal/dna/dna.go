// Package dna provides the base-level DNA alphabet: 2-bit base codes,
// conversions to and from ASCII, complements, and Hamming-distance helpers.
//
// Every higher layer (k-mer IDs, tile IDs, spectra, the corrector) works in
// terms of the 2-bit codes defined here, so reads are validated and encoded
// exactly once at the boundary.
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit DNA base code: A=0, C=1, G=2, T=3.
type Base uint8

// The four base codes in encoding order.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

// letters maps a base code to its upper-case ASCII letter.
var letters = [NumBases]byte{'A', 'C', 'G', 'T'}

// codes maps ASCII to base code; 0xFF marks an invalid character.
var codes [256]byte

func init() {
	for i := range codes {
		codes[i] = 0xFF
	}
	codes['A'], codes['a'] = 0, 0
	codes['C'], codes['c'] = 1, 1
	codes['G'], codes['g'] = 2, 2
	codes['T'], codes['t'] = 3, 3
}

// Valid reports whether b is one of the four base codes.
func (b Base) Valid() bool { return b < NumBases }

// Byte returns the upper-case ASCII letter for b. It panics if b is invalid.
func (b Base) Byte() byte { return letters[b] }

// String returns the single-letter representation of b.
func (b Base) String() string { return string(letters[b]) }

// Complement returns the Watson-Crick complement (A<->T, C<->G).
// With the 2-bit encoding this is simply the bitwise NOT of the low two bits.
func (b Base) Complement() Base { return b ^ 3 }

// FromByte converts an ASCII character to a base code. The second result is
// false when c is not one of acgtACGT (e.g. N or a gap).
func FromByte(c byte) (Base, bool) {
	v := codes[c]
	return Base(v), v != 0xFF
}

// Encode converts an ASCII sequence into base codes. It returns an error on
// the first invalid character, reporting its position.
//
// reptile-lint:hotpath
func Encode(seq []byte) ([]Base, error) {
	out := make([]Base, len(seq))
	for i, c := range seq {
		b, ok := FromByte(c)
		if !ok {
			return nil, invalidBaseError(c, i)
		}
		out[i] = b
	}
	return out, nil
}

// invalidBaseError formats the per-character failure off the hot loop, so
// the all-valid common path never touches fmt's boxing machinery.
func invalidBaseError(c byte, i int) error {
	return fmt.Errorf("dna: invalid base %q at position %d", c, i)
}

// EncodeLossy converts an ASCII sequence into base codes, substituting sub
// for every invalid character (sequencers emit N for no-calls; Reptile maps
// them to a fixed base before spectrum construction).
//
// reptile-lint:hotpath
func EncodeLossy(seq []byte, sub Base) []Base {
	out := make([]Base, len(seq))
	for i, c := range seq {
		b, ok := FromByte(c)
		if !ok {
			b = sub
		}
		out[i] = b
	}
	return out
}

// Decode converts base codes back to upper-case ASCII.
//
// reptile-lint:hotpath
func Decode(seq []Base) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[i] = letters[b]
	}
	return out
}

// DecodeString is Decode returning a string.
func DecodeString(seq []Base) string { return string(Decode(seq)) }

// MustEncode is Encode that panics on invalid input; for tests and literals.
func MustEncode(seq string) []Base {
	out, err := Encode([]byte(seq))
	if err != nil {
		panic(err)
	}
	return out
}

// ReverseComplement returns the reverse complement of seq as a new slice.
//
// reptile-lint:hotpath
func ReverseComplement(seq []Base) []Base {
	out := make([]Base, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = b.Complement()
	}
	return out
}

// Hamming returns the Hamming distance between two equal-length sequences.
// It panics if the lengths differ, as that is always a programming error in
// this codebase (tiles and k-mers have fixed lengths).
//
// reptile-lint:hotpath
func Hamming(a, b []Base) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dna: Hamming on unequal lengths %d and %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Format renders a sequence with a separator every group bases, for
// diagnostics. group <= 0 disables grouping.
func Format(seq []Base, group int) string {
	if group <= 0 {
		return DecodeString(seq)
	}
	var sb strings.Builder
	for i, b := range seq {
		if i > 0 && i%group == 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}
