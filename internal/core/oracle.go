package core

import (
	"errors"
	"fmt"
	"sync"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// maxPrefetchEntries bounds the prefetch buffer. Entries never go stale —
// the global spectra are static during Step IV — so the cap only bounds
// memory; on overflow the buffer is simply cleared and refilled.
const maxPrefetchEntries = 1 << 16

// preKey identifies one prefetched lookup.
type preKey struct {
	kind byte
	id   kmer.ID
}

// preVal is one prefetched answer, exactly as the owner sent it.
type preVal struct {
	cnt    uint32
	exists bool
}

// distOracle resolves spectrum lookups for the corrector during Step IV,
// implementing the paper's lookup chain: owned table → replicated/group
// copy → retained reads table (with resolved global counts) → message to
// the owning rank's communication thread.
//
// Each worker goroutine owns one distOracle. The owned/replicated/group
// stores are read-only during correction and safe to share; the reads
// tables are shared too but mutated by the cache heuristic, so multi-worker
// runs serialize that access through cacheMu.
type distOracle struct {
	e    transport.Conn
	st   *stats.Rank
	rank int
	np   int

	h Heuristics

	// Owned (pruned, global-count) spectra, frozen into packed form.
	// frozen: shared read-only with the responder goroutine
	ownKmer, ownTile *spectrum.PackedStore
	// Full replicas (nil unless the allgather heuristics are on); the
	// layout depends on Heuristics.ReplicatedLayout.
	replKmer, replTile spectrum.Lookuper
	// Partial-replication group copies (nil unless enabled).
	// frozen: packed by groupReplicate
	groupKmer, groupTile *spectrum.PackedStore
	groupSize            int
	// Retained reads tables with *global* counts; an entry with count 0
	// records a resolved "does not exist". Frozen packed stores normally;
	// under CacheRemote they are the mutable cache tables below.
	readsKmer, readsTile spectrum.Lookuper
	// Write side of the CacheRemote heuristic (nil otherwise): the same
	// stores as readsKmer/readsTile, in their mutable form. Multi-worker
	// access is serialized by cacheMu.
	cacheKmer, cacheTile *spectrum.HashStore

	// Batched-lookup state, nil/zero when Heuristics.LookupBatch == 0. The
	// dispatcher and the prefetch plane (the rank-wide answers map and
	// per-owner accumulator) are shared by every worker of the rank; only
	// the miss-filter scratch is this worker's own.
	disp    *lookupDispatcher
	batch   int
	plane   *prefetchPlane
	preMiss []kmer.ID // scratch: the genuinely-remote subset of one hint
	// cacheMu serializes reads-table access when several workers share the
	// tables under the CacheRemote heuristic; nil in single-worker runs.
	cacheMu *sync.RWMutex

	// rec is the R=2 recovery state (nil unless Options.Replicas >= 2):
	// held replica shards answer their owners' lookups locally, and remote
	// frames route to each shard's current holder with peer-down failover.
	rec *recoveryState

	err error // first transport error; checked by the worker after the run
}

// KmerCount implements reptile.Oracle.
func (o *distOracle) KmerCount(id kmer.ID) (uint32, bool) {
	return o.lookup(kindKmer, id)
}

// TileCount implements reptile.Oracle.
func (o *distOracle) TileCount(id kmer.ID) (uint32, bool) {
	return o.lookup(kindTile, id)
}

// PrefetchKmers implements reptile.Prefetcher.
func (o *distOracle) PrefetchKmers(ids []kmer.ID) { o.prefetch(kindKmer, ids) }

// PrefetchTiles implements reptile.Prefetcher.
func (o *distOracle) PrefetchTiles(ids []kmer.ID) { o.prefetch(kindTile, ids) }

func (o *distOracle) lookup(kind byte, id kmer.ID) (uint32, bool) {
	repl := o.replKmer
	own, group, reads, cache := o.ownKmer, o.groupKmer, o.readsKmer, o.cacheKmer
	if kind == kindTile {
		repl, own, group, reads, cache = o.replTile, o.ownTile, o.groupTile, o.readsTile, o.cacheTile
	}

	if repl != nil {
		o.countLocal(kind)
		return repl.Count(id)
	}

	owner := kmer.Owner(id, o.np)
	if owner == o.rank {
		o.countLocal(kind)
		return own.Count(id) // a miss here is definitive
	}

	if o.rec != nil {
		if s := o.rec.replicaStore(kind, owner); s != nil {
			// The held R=2 copy is an exact slab image of the owner's frozen
			// store, so a miss is as definitive as the owner's own answer.
			o.countLocal(kind)
			return s.Count(id)
		}
	}

	if group != nil && owner/o.groupSize == o.rank/o.groupSize {
		// The group copy is the complete owned spectrum of every group
		// member, so a miss is definitive too.
		o.countLocal(kind)
		return group.Count(id)
	}

	if reads != nil {
		if cnt, ok := o.cachedCount(reads, id); ok {
			o.countLocal(kind)
			if cnt == 0 {
				return 0, false // resolved known-absent
			}
			if o.h.CacheRemote {
				o.st.CacheHits++
			}
			return cnt, true
		}
	}

	// A prefetched answer resolves the lookup without a round trip — from
	// the rank-wide plane, so an id any worker fetched answers every
	// worker. The stats and cache effects are applied at consume time,
	// exactly as a live round trip would — this is what keeps a batched
	// run's counters equal to the unbatched run's.
	if o.plane != nil {
		if v, ok := o.plane.answer(kind, id); ok {
			o.finishRemote(kind, id, v.cnt, v.exists, cache)
			return v.cnt, v.exists
		}
	}

	// Remote round trip to the owner's communication thread.
	var (
		cnt    uint32
		exists bool
		err    error
	)
	if o.disp != nil {
		cnt, exists, err = o.remoteBatched(kind, id, owner)
	} else {
		cnt, exists, err = o.remote(kind, id, owner)
	}
	if err != nil {
		if o.err == nil {
			o.err = err
		}
		return 0, false
	}
	o.finishRemote(kind, id, cnt, exists, cache)
	return cnt, exists
}

// finishRemote applies the statistics and cache effects of one resolved
// remote lookup — identical whether the answer came over a legacy round
// trip, a batch-of-one frame, or the prefetch buffer. The cache write goes
// through the mutable table handle; the frozen read-side view sees it
// because they are the same store under CacheRemote.
func (o *distOracle) finishRemote(kind byte, id kmer.ID, cnt uint32, exists bool, cache *spectrum.HashStore) {
	if kind == kindKmer {
		o.st.KmerLookupsRemote++
	} else {
		o.st.TileLookupsRemote++
	}
	if !exists {
		o.st.RemoteMisses++
	}
	if o.h.CacheRemote && cache != nil {
		v := uint32(0)
		if exists {
			v = cnt
		}
		if o.cacheMu != nil {
			o.cacheMu.Lock()
			cache.Set(id, v)
			o.cacheMu.Unlock()
		} else {
			cache.Set(id, v)
		}
	}
}

// cachedCount reads a reads-table entry, taking the shared-cache lock when
// several workers mutate the table concurrently.
func (o *distOracle) cachedCount(reads spectrum.Lookuper, id kmer.ID) (uint32, bool) {
	if o.cacheMu != nil {
		o.cacheMu.RLock()
		defer o.cacheMu.RUnlock()
	}
	return reads.Count(id)
}

func (o *distOracle) countLocal(kind byte) {
	if kind == kindKmer {
		o.st.KmerLookupsLocal++
	} else {
		o.st.TileLookupsLocal++
	}
}

// prefetch hands the genuinely-remote subset of ids to the shared plane:
// walk the local chain silently (no counters — the real lookups count when
// they consume), then stage the misses for a combined flush with every
// sibling worker's misses. Returns once the plane has answers for all of
// them.
func (o *distOracle) prefetch(kind byte, ids []kmer.ID) {
	if o.plane == nil || o.disp == nil || o.batch <= 0 || o.err != nil || len(ids) == 0 {
		return
	}
	var repl spectrum.Lookuper = o.replKmer
	group, reads := o.groupKmer, o.readsKmer
	if kind == kindTile {
		repl, group, reads = o.replTile, o.groupTile, o.readsTile
	}
	if repl != nil {
		return // every lookup of this kind is local
	}

	o.preMiss = o.preMiss[:0]
	for _, id := range ids {
		owner := kmer.Owner(id, o.np)
		if owner == o.rank {
			continue
		}
		if group != nil && owner/o.groupSize == o.rank/o.groupSize {
			continue
		}
		if o.rec != nil && o.rec.replicaStore(kind, owner) != nil {
			continue // the held replica answers these locally at lookup time
		}
		if reads != nil {
			if _, ok := o.cachedCount(reads, id); ok {
				continue
			}
		}
		o.preMiss = append(o.preMiss, id)
	}
	if len(o.preMiss) == 0 {
		return
	}
	if err := o.plane.resolve(o, kind, o.preMiss); err != nil && o.err == nil {
		o.err = err
	}
}

// remoteBatched resolves one id through the dispatcher as a batch of one —
// the slow path for ids the prefetcher could not anticipate (repairs
// rewrite downstream tiles; k-mer confirmations only run for the rare
// candidates whose tile is solid).
func (o *distOracle) remoteBatched(kind byte, id kmer.ID, owner int) (uint32, bool, error) {
	one := [1]kmer.ID{id}
	answers, err := o.batchLookup(kind, one[:], owner)
	if err != nil {
		return 0, false, err
	}
	if len(answers) != 1 {
		return 0, false, fmt.Errorf("core: batch of 1 id answered with %d entries", len(answers))
	}
	return answers[0].Count, answers[0].Exists, nil
}

// batchLookup issues one batch frame to the rank currently serving owner's
// shard. Without recovery that is the owner itself and any error is final.
// With recovery armed, a peer-down error triggers the failover dance: block
// until the recovery layer classifies the loss (by which time the holder
// map is final), re-read the route, and reissue to the survivor — whose
// replica is an exact slab image, so the answers are byte-identical.
func (o *distOracle) batchLookup(kind byte, ids []kmer.ID, owner int) ([]batchAnswer, error) {
	dest := owner
	if o.rec != nil {
		if dest = o.rec.holderOf(owner); dest != owner {
			o.st.FailoversTaken++
		}
	}
	for attempt := 0; ; attempt++ {
		answers, err := o.disp.roundTrip(dest, kind, ids)
		if err == nil || o.rec == nil || attempt >= o.np {
			return answers, err
		}
		var pd *transport.PeerDownError
		if !errors.As(err, &pd) {
			return nil, err
		}
		if !o.rec.awaitFailover(pd.Rank) {
			return nil, err // unrecoverable loss: surface the original error
		}
		next := o.rec.holderOf(owner)
		if next == dest {
			return nil, err // no surviving route for this shard
		}
		dest = next
		o.st.FailoversTaken++
	}
}

// remote performs one synchronous request/response with the owning rank —
// the legacy unbatched protocol. The single worker issues at most one
// request at a time, so the tagResp stream cannot interleave; a response
// from any other rank is therefore a protocol violation.
func (o *distOracle) remote(kind byte, id kmer.ID, owner int) (uint32, bool, error) {
	tag, payload := encodeReq(o.h.Universal, kind, id)
	if err := msgplane.Send(o.e, owner, tag, payload); err != nil {
		return 0, false, err
	}
	m, err := msgplane.Recv(o.e, tagResp)
	if err != nil {
		return 0, false, err
	}
	if m.From != owner {
		return 0, false, &ProtocolError{Tag: tagResp, Kind: msgplane.ViolationStraySender, From: m.From, Want: owner}
	}
	cnt, exists, err := decodeResp(m.Data)
	if err != nil {
		return 0, false, err
	}
	return cnt, exists, nil
}
