package core

import (
	"fmt"
	"sync"
	"time"

	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/transport"
)

// batchTenant is the tenant name the batch and streaming drivers use for
// their one-shot sessions, so every correction — a served client job or a
// classic reptile-correct run — travels the same session layer.
const batchTenant = "_batch"

// execSession is one admitted session on the executor side.
type execSession struct {
	id     uint32
	tenant string
	from   int // opener rank
}

// execJob is one read chunk queued for the rank's correction executor.
// Exactly one of local / (from,reqID) identifies where the answer goes: a
// local job resolves its Pending in process, a remote one is answered with
// a tagCorrectedChunk frame. Resident chunks never queue here — they take
// the caller-runs path (runInline).
type execJob struct {
	sess  *execSession
	from  int
	reqID uint32
	rs    []reads.Read
	local *Pending
}

// sessionExec is the executor half of the session layer, one per rank: it
// admits sessions under the per-tenant cap, queues their read chunks, and
// corrects them on a single executor goroutine against the rank's frozen
// spectra. The open/chunk/close handlers run on the router goroutine and
// only touch the admission state; correction itself never blocks the
// router.
type sessionExec struct {
	ctx  *rankCtx
	disp *lookupDispatcher
	max  int // per-tenant in-flight session cap

	mu       sync.Mutex
	cond     *sync.Cond              // guarded by mu; signaled on queue push, stop, fail
	tenants  map[string]int          // guarded by mu; live sessions per tenant
	live     map[uint32]*execSession // guarded by mu
	nextID   uint32                  // guarded by mu
	queue    []execJob               // guarded by mu
	draining bool                    // guarded by mu; reject new opens
	stopped  bool                    // guarded by mu
	failed   error                   // guarded by mu; sticky poison

	opened    int64          // guarded by mu
	completed int64          // guarded by mu; sessions closed cleanly
	rejected  int64          // guarded by mu; opens refused (cap or drain)
	served    int64          // guarded by mu; reads corrected across sessions
	total     reptile.Result // guarded by mu; correction totals across chunks

	done chan struct{} // closed when the executor goroutine exits
}

// newSessionExec builds and starts one rank's session executor.
func newSessionExec(ctx *rankCtx, disp *lookupDispatcher) *sessionExec {
	x := &sessionExec{
		ctx:     ctx,
		disp:    disp,
		max:     ctx.opts.serveMaxSessions(),
		tenants: make(map[string]int),
		live:    make(map[uint32]*execSession),
		done:    make(chan struct{}),
	}
	x.cond = sync.NewCond(&x.mu)
	go func() {
		defer close(x.done)
		x.run()
	}()
	return x
}

// reply answers one session request; answering a dead peer is tolerated
// like every responder-side send.
func (x *sessionExec) reply(to int, reqID uint32, status byte, body []byte) error {
	return x.ctx.tolerateDeadPeer(msgplane.Send(x.ctx.e, to, tagCorrectedChunk, encodeSessionResp(reqID, status, body)))
}

// admit runs the admission decision for one open: the draining and
// per-tenant-cap rejections, or a fresh live session. Shared by the wire
// handler and the local fast path, so both see identical admission rules.
func (x *sessionExec) admit(tenant string, from int) (*execSession, *SessionError) {
	x.mu.Lock()
	defer x.mu.Unlock()
	switch {
	case x.draining:
		x.rejected++
		return nil, &SessionError{Kind: SessionRejectDraining, Rank: x.ctx.rank,
			Tenant: tenant, Msg: "executor draining"}
	case x.tenants[tenant] >= x.max:
		x.rejected++
		return nil, &SessionError{Kind: SessionRejectCapacity, Rank: x.ctx.rank,
			Tenant: tenant, Msg: fmt.Sprintf("tenant at its %d-session cap", x.max)}
	}
	x.nextID++
	s := &execSession{id: x.nextID, tenant: tenant, from: from}
	x.live[s.id] = s
	x.tenants[tenant]++
	x.opened++
	return s, nil
}

// handleOpen admits (or rejects) one remote session. Router goroutine.
func (x *sessionExec) handleOpen(m transport.Message) error {
	reqID, tenant, err := decodeSessionOpen(m.Data)
	if err != nil {
		return err
	}
	s, serr := x.admit(tenant, m.From)
	if serr != nil {
		return x.reply(m.From, reqID, serr.Kind.status(), []byte(serr.Msg))
	}
	return x.reply(m.From, reqID, sessOK, encodeOpenOKBody(s.id))
}

// handleChunk queues one remote read chunk for the executor. Router
// goroutine.
func (x *sessionExec) handleChunk(m transport.Message) error {
	reqID, session, rs, err := decodeReadChunk(m.Data)
	if err != nil {
		return err
	}
	x.mu.Lock()
	s, ok := x.live[session]
	if !ok {
		x.mu.Unlock()
		return x.reply(m.From, reqID, sessUnknownSession,
			[]byte(fmt.Sprintf("session %d not admitted here", session)))
	}
	x.queue = append(x.queue, execJob{sess: s, from: m.From, reqID: reqID, rs: rs})
	x.cond.Broadcast()
	x.mu.Unlock()
	return nil
}

// retire ends one admitted session and frees its tenant's admission slot.
// The opener guarantees every chunk was answered first (see Session.Close),
// so no queued work can reference the session anymore. Shared by the wire
// handler and the local fast path.
func (x *sessionExec) retire(session uint32) *SessionError {
	x.mu.Lock()
	defer x.mu.Unlock()
	s, ok := x.live[session]
	if !ok {
		return &SessionError{Kind: SessionUnknown, Rank: x.ctx.rank,
			Msg: fmt.Sprintf("session %d not admitted here", session)}
	}
	delete(x.live, session)
	x.tenants[s.tenant]--
	if x.tenants[s.tenant] == 0 {
		delete(x.tenants, s.tenant)
	}
	x.completed++
	return nil
}

// handleClose retires one remote session. Router goroutine.
func (x *sessionExec) handleClose(m transport.Message) error {
	reqID, session, err := decodeSessionClose(m.Data)
	if err != nil {
		return err
	}
	if serr := x.retire(session); serr != nil {
		return x.reply(m.From, reqID, serr.Kind.status(), []byte(serr.Msg))
	}
	return x.reply(m.From, reqID, sessOK, nil)
}

// admitJob checks a local submission against the poison and the live set,
// returning the session for the job to reference.
func (x *sessionExec) admitJob(session uint32) (*execSession, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.failed != nil {
		return nil, x.failed
	}
	s, ok := x.live[session]
	if !ok {
		return nil, &SessionError{Kind: SessionUnknown, Rank: x.ctx.rank,
			Msg: fmt.Sprintf("session %d not admitted here", session)}
	}
	return s, nil
}

// enqueueLocal queues a chunk submitted by a session opened from this very
// rank, skipping the wire round trip: the reads go straight into the
// executor queue and the answer resolves p in process. The poison check and
// the push are one critical section, so a job can never slip in behind the
// fail() that drained the queue.
func (x *sessionExec) enqueueLocal(session uint32, rs []reads.Read, p *Pending) error {
	x.mu.Lock()
	if x.failed != nil {
		err := x.failed
		x.mu.Unlock()
		return err
	}
	s, ok := x.live[session]
	if !ok {
		x.mu.Unlock()
		return &SessionError{Kind: SessionUnknown, Rank: x.ctx.rank,
			Msg: fmt.Sprintf("session %d not admitted here", session)}
	}
	x.queue = append(x.queue, execJob{sess: s, rs: rs, local: p})
	x.cond.Broadcast()
	x.mu.Unlock()
	return nil
}

// runInline is the batch drivers' caller-runs path: a resident chunk (this
// rank's own reads, corrected in place and steal-capable) is corrected on
// the submitting goroutine through the same admission, accounting, and
// completion as every queued job — but with no goroutine handoff, which on
// a saturated scheduler would cost the chunk a full preemption quantum
// before it even starts (fatal for the work-stealing thief, whose whole job
// is to start before its victims finish). Resident chunks are submitted
// only by the batch and streaming drivers, whose rank groups open sessions
// strictly to themselves — so an inline correction never runs concurrently
// with an executor-goroutine correction on the same rank stats.
func (x *sessionExec) runInline(session uint32, rs []reads.Read, p *Pending) error {
	s, err := x.admitJob(session)
	if err != nil {
		return err
	}
	res, cerr := x.ctx.correctChunk(rs, x.disp, true)
	x.complete(execJob{sess: s, rs: rs, local: p}, res, cerr)
	return nil
}

// setDraining makes every future open fail with the typed draining
// rejection; admitted sessions run to completion.
func (x *sessionExec) setDraining() {
	x.mu.Lock()
	x.draining = true
	x.mu.Unlock()
}

// next blocks for the next queued chunk; false means the executor should
// exit (stopped or poisoned, queue empty).
func (x *sessionExec) next() (execJob, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for len(x.queue) == 0 && !x.stopped && x.failed == nil {
		x.cond.Wait()
	}
	if len(x.queue) == 0 {
		return execJob{}, false
	}
	job := x.queue[0]
	x.queue[0] = execJob{}
	x.queue = x.queue[1:]
	return job, true
}

// run is the executor goroutine: one chunk at a time, corrected against
// the rank's frozen spectra through the same pool (and dispatcher) the
// batch engine uses.
func (x *sessionExec) run() {
	for {
		job, ok := x.next()
		if !ok {
			return
		}
		res, err := x.ctx.correctChunk(job.rs, x.disp, false)
		x.complete(job, res, err)
	}
}

// complete delivers one corrected chunk to its submitter. A correction
// failure on a remote job has no local issuer to propagate it, so the
// executor aborts the run itself.
func (x *sessionExec) complete(job execJob, res reptile.Result, err error) {
	if err == nil {
		x.mu.Lock()
		x.served += int64(len(job.rs))
		x.total.Add(res)
		x.mu.Unlock()
	}
	if job.local != nil {
		job.local.resolve(job.rs, res, err)
		return
	}
	if err != nil {
		// reptile-lint:allow errorflow the run aborts with the correction error either way; a failed courtesy reply adds nothing
		_ = x.reply(job.from, job.reqID, sessFailed, []byte(err.Error()))
		x.fail(x.ctx.fail("correct", err))
		return
	}
	if serr := x.reply(job.from, job.reqID, sessOK, encodeCorrectedBody(res, job.rs)); serr != nil {
		x.fail(x.ctx.fail("correct", serr))
	}
}

// fail poisons the executor: queued local jobs resolve with err, future
// submissions are refused, and the goroutine exits once its current chunk
// finishes. Safe to call from any goroutine, more than once.
func (x *sessionExec) fail(err error) {
	x.mu.Lock()
	if x.failed == nil {
		x.failed = err
	}
	err = x.failed
	q := x.queue
	x.queue = nil
	x.cond.Broadcast()
	x.mu.Unlock()
	for _, j := range q {
		if j.local != nil {
			j.local.resolve(nil, reptile.Result{}, err)
		}
	}
}

// stop ends the executor after the queue drains and joins the goroutine.
// On the clean path the done/stop protocol already guarantees the queue is
// empty: every session closed before its opener announced done.
func (x *sessionExec) stop() {
	x.mu.Lock()
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
	<-x.done
}

// join waits for the executor goroutine after a poison, without requiring
// the queue to have been empty.
func (x *sessionExec) join() { <-x.done }

// counters snapshots the executor-side session tallies for the stats merge.
func (x *sessionExec) counters() (opened, completed, rejected, served int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.opened, x.completed, x.rejected, x.served
}

// totalResult snapshots the correction totals across every chunk this
// executor corrected.
func (x *sessionExec) totalResult() reptile.Result {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.total
}

// correctChunk corrects one session chunk. A resident chunk is the batch
// driver's one-shot submission of its own reads: it is corrected in place
// and may be served by the work-stealing scheduler; everything else runs
// the plain worker pool.
func (ctx *rankCtx) correctChunk(rs []reads.Read, disp *lookupDispatcher, resident bool) (reptile.Result, error) {
	if resident && ctx.steal != nil {
		return ctx.correctPoolSteal(disp)
	}
	return ctx.correctPool(rs, disp)
}

// sessResp is a decoded tagCorrectedChunk frame as the opener's caller
// delivers it.
type sessResp struct {
	status byte
	body   []byte
}

// Session is the client half of one correction session: chunks submitted
// here are corrected by the target rank's executor against the resident
// frozen spectra. A session is single-issuer: Submit/Correct/Close are
// called from one goroutine (Wait may run elsewhere).
type Session struct {
	ctx    *rankCtx
	target int
	tenant string
	id     uint32
	opened time.Time
	// window is the per-session chunk semaphore — the Caller-style in-flight
	// bound: Submit acquires a slot, Wait releases it, Close acquires them
	// all so no chunk can be outstanding when the close frame goes out.
	window chan struct{}
	svc    *SpectrumService // non-nil when opened through a service; told on close

	mu     sync.Mutex
	closed bool // guarded by mu
}

// openSession opens a correction session at target for tenant and returns
// the client handle. A non-OK answer surfaces as a typed *SessionError.
func (ctx *rankCtx) openSession(target int, tenant string) (*Session, error) {
	if len(tenant) > maxTenantBytes {
		return nil, fmt.Errorf("core: tenant name of %d bytes (max %d)", len(tenant), maxTenantBytes)
	}
	if target == ctx.rank {
		// Local fast path: admission is a mutex acquisition on this rank's
		// own executor, not a wire round trip through the router. Chunks
		// submitted to a local session skip the wire the same way
		// (enqueueLocal), which keeps the batch one-shot as cheap to start
		// as the pre-session engine — an idle rank turns work-stealing
		// thief without first waiting on its own busy router.
		s, serr := ctx.sessions.admit(tenant, ctx.rank)
		if serr != nil {
			return nil, serr
		}
		return ctx.newSession(target, tenant, s.id), nil
	}
	call, err := ctx.sessCaller.Start(target, 1, func(reqID uint32) (msgplane.Tag, []byte) {
		return encodeSessionOpenFrame(reqID, tenant)
	})
	if err != nil {
		return nil, err
	}
	v, err := call.Wait()
	if err != nil {
		return nil, err
	}
	r := v.(*sessResp)
	if r.status != sessOK {
		return nil, sessionErrorFrom(r.status, r.body, target, tenant)
	}
	id, err := decodeOpenOKBody(r.body)
	if err != nil {
		return nil, err
	}
	return ctx.newSession(target, tenant, id), nil
}

// newSession builds the client handle for an admitted session.
func (ctx *rankCtx) newSession(target int, tenant string, id uint32) *Session {
	return &Session{
		ctx:    ctx,
		target: target,
		tenant: tenant,
		id:     id,
		opened: time.Now(),
		window: make(chan struct{}, ctx.opts.serveTenantWindow()),
	}
}

// Pending is one in-flight chunk. Wait must be called exactly once; it
// releases the chunk's window slot.
type Pending struct {
	sess *Session
	call *msgplane.Call // remote submission
	done chan struct{}  // local submission; closed by resolve
	rs   []reads.Read
	res  reptile.Result
	err  error
}

// resolve completes a local pending exactly once (executor side).
func (p *Pending) resolve(rs []reads.Read, res reptile.Result, err error) {
	p.rs, p.res, p.err = rs, res, err
	close(p.done)
}

// Wait blocks for the chunk's corrected reads and result. For a session at
// this very rank the returned slice is the executor's copy (the submitted
// slice itself for a resident chunk); for a remote session it is freshly
// decoded.
func (p *Pending) Wait() ([]reads.Read, reptile.Result, error) {
	defer func() { <-p.sess.window }()
	if p.call == nil {
		<-p.done
		return p.rs, p.res, p.err
	}
	v, err := p.call.Wait()
	if err != nil {
		return nil, reptile.Result{}, err
	}
	r := v.(*sessResp)
	if r.status != sessOK {
		return nil, reptile.Result{}, sessionErrorFrom(r.status, r.body, p.sess.target, "")
	}
	res, rs, err := decodeCorrectedBody(r.body)
	if err != nil {
		return nil, reptile.Result{}, err
	}
	return rs, res, nil
}

// Submit sends one chunk of reads for correction, blocking while the
// session's window is full. The submitted reads are not mutated.
func (s *Session) Submit(rs []reads.Read) (*Pending, error) { return s.submit(rs, false) }

// submitResident is the batch driver's fast path: the chunk is this rank's
// own resident reads, corrected in place with no copy (and steal-capable).
func (s *Session) submitResident(rs []reads.Read) (*Pending, error) { return s.submit(rs, true) }

func (s *Session) submit(rs []reads.Read, resident bool) (*Pending, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("core: submit on closed session %d", s.id)
	}
	s.window <- struct{}{}
	if s.target == s.ctx.rank {
		p := &Pending{sess: s, done: make(chan struct{})}
		var err error
		if resident {
			err = s.ctx.sessions.runInline(s.id, rs, p)
		} else {
			err = s.ctx.sessions.enqueueLocal(s.id, cloneReads(rs), p)
		}
		if err != nil {
			<-s.window
			return nil, err
		}
		return p, nil
	}
	call, err := s.ctx.sessCaller.Start(s.target, len(rs), func(reqID uint32) (msgplane.Tag, []byte) {
		return encodeReadChunkFrame(reqID, s.id, rs)
	})
	if err != nil {
		<-s.window
		return nil, err
	}
	return &Pending{sess: s, call: call}, nil
}

// Correct submits one chunk and waits for it — the simple synchronous
// form most clients want.
func (s *Session) Correct(rs []reads.Read) ([]reads.Read, reptile.Result, error) {
	p, err := s.Submit(rs)
	if err != nil {
		return nil, reptile.Result{}, err
	}
	return p.Wait()
}

// Close quiesces the session (every submitted chunk must have been waited
// for), retires it at the executor, and frees its admission slot.
// Idempotent; safe after a failed run (the error reports the failure).
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Acquire every window slot: with the full window held no chunk is in
	// flight, so the close frame cannot overtake an unanswered chunk and the
	// executor will never correct for a retired session.
	for i := 0; i < cap(s.window); i++ {
		s.window <- struct{}{}
	}
	var cerr error
	if s.target == s.ctx.rank {
		// Local fast path, mirroring the open: with the full window held
		// every local chunk has resolved, so retiring at this rank's own
		// executor is a plain state change.
		if serr := s.ctx.sessions.retire(s.id); serr != nil {
			cerr = serr
		}
	} else if call, err := s.ctx.sessCaller.Start(s.target, 1, func(reqID uint32) (msgplane.Tag, []byte) {
		return encodeSessionCloseFrame(reqID, s.id)
	}); err != nil {
		cerr = err
	} else if v, werr := call.Wait(); werr != nil {
		cerr = werr
	} else if r := v.(*sessResp); r.status != sessOK {
		cerr = sessionErrorFrom(r.status, r.body, s.target, s.tenant)
	}
	if s.svc != nil {
		s.svc.sessionClosed(s, cerr)
	}
	return cerr
}

// cloneReads deep-copies a chunk so correction never aliases caller-owned
// storage (the same guarantee the batch engine's read phase makes).
func cloneReads(rs []reads.Read) []reads.Read {
	out := make([]reads.Read, len(rs))
	for i := range rs {
		out[i] = rs[i].Clone()
	}
	return out
}
