package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowAudit pins the directive audit: a used, reasoned allow is
// silent; an empty reason and a stale directive are each one "allow"
// diagnostic, and the empty-reason directive still suppresses its finding.
func TestAllowAudit(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "allowcheck"), "reptile/internal/core/allowfix")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no Go files in testdata/allowcheck")
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewNoSleepSync()})
	var noReason, stale, other int
	for _, d := range diags {
		switch {
		case d.Analyzer == "allow" && strings.Contains(d.Message, "has no reason"):
			noReason++
		case d.Analyzer == "allow" && strings.Contains(d.Message, "suppresses nothing"):
			stale++
		default:
			other++
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if noReason != 1 || stale != 1 {
		t.Errorf("want exactly one missing-reason and one stale finding, got %d and %d", noReason, stale)
	}
}

// TestAllowAuditScopedToActiveAnalyzers checks that running a subset of the
// suite does not flag directives belonging to analyzers that did not run.
func TestAllowAuditScopedToActiveAnalyzers(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "allowcheck"), "reptile/internal/core/allowfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewLockGuard()})
	for _, d := range diags {
		t.Errorf("nosleepsync did not run, so its directives must not be audited: %s", d)
	}
}
