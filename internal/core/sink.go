package core

import (
	"bufio"
	"os"

	"reptile/internal/fastaio"
	"reptile/internal/reads"
)

// FileSink writes corrected reads incrementally to a fasta + quality pair,
// so a streaming run's output never accumulates in memory either. Records
// appear in completion order, which under load balancing is not globally
// sorted by sequence number; downstream tools that require monotone headers
// should sort the output or use the non-streaming engine.
type FileSink struct {
	fa, qual   *os.File
	faW, qualW *bufio.Writer
}

// NewFileSink creates <prefix>.fa and <prefix>.qual.
func NewFileSink(prefix string) (*FileSink, error) {
	fa, err := os.Create(prefix + ".fa")
	if err != nil {
		return nil, err
	}
	qual, err := os.Create(prefix + ".qual")
	if err != nil {
		fa.Close()
		return nil, err
	}
	return &FileSink{
		fa: fa, qual: qual,
		faW:   bufio.NewWriterSize(fa, 256<<10),
		qualW: bufio.NewWriterSize(qual, 256<<10),
	}, nil
}

// Write implements Sink.
func (s *FileSink) Write(batch []reads.Read) error {
	if err := fastaio.WriteFasta(s.faW, batch); err != nil {
		return err
	}
	return fastaio.WriteQual(s.qualW, batch)
}

// Close flushes and closes both files.
func (s *FileSink) Close() error {
	var first error
	for _, f := range []func() error{s.faW.Flush, s.qualW.Flush, s.fa.Close, s.qual.Close} {
		if err := f(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
