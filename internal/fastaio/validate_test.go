package fastaio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidatePairClean(t *testing.T) {
	ds := mkDataset(t, 50)
	fa, qual := writePair(t, ds)
	rep, err := ValidatePair(fa, qual)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads != 50 || rep.FirstSeq != 1 || rep.LastSeq != 50 {
		t.Errorf("report %v", rep)
	}
	if rep.MinLen < 20 || rep.MaxLen > 50 || rep.Bases == 0 {
		t.Errorf("lengths wrong: %v", rep)
	}
	if rep.String() == "" {
		t.Error("empty String")
	}
}

func writeFiles(t *testing.T, fasta, qual string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	fp := filepath.Join(dir, "x.fa")
	qp := filepath.Join(dir, "x.qual")
	if err := os.WriteFile(fp, []byte(fasta), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qp, []byte(qual), 0o644); err != nil {
		t.Fatal(err)
	}
	return fp, qp
}

func TestValidatePairViolations(t *testing.T) {
	cases := map[string][2]string{
		"seq mismatch":    {">1\nACGT\n", ">2\n30 30 30 30\n"},
		"length mismatch": {">1\nACGT\n", ">1\n30 30 30\n"},
		"not ascending":   {">2\nACGT\n>1\nACGT\n", ">2\n30 30 30 30\n>1\n30 30 30 30\n"},
		"duplicate seq":   {">1\nACGT\n>1\nACGT\n", ">1\n30 30 30 30\n>1\n30 30 30 30\n"},
		"count mismatch":  {">1\nACGT\n>2\nACGT\n", ">1\n30 30 30 30\n"},
		"bad quality":     {">1\nACGT\n", ">1\n30 30 30 999\n"},
		"non-numeric hdr": {">x\nACGT\n", ">x\n30 30 30 30\n"},
		"empty dataset":   {"", ""},
	}
	for name, pair := range cases {
		fp, qp := writeFiles(t, pair[0], pair[1])
		if _, err := ValidatePair(fp, qp); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidatePairCountsNonACGT(t *testing.T) {
	fp, qp := writeFiles(t, ">1\nACGNT\n", ">1\n30 30 30 30 30\n")
	rep, err := ValidatePair(fp, qp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonACGT != 1 {
		t.Errorf("NonACGT = %d", rep.NonACGT)
	}
}

func TestValidatePairMissingFiles(t *testing.T) {
	if _, err := ValidatePair("/nonexistent.fa", "/nonexistent.qual"); err == nil {
		t.Error("accepted missing files")
	}
}
