package core

import (
	"fmt"
	"runtime"
	"sync"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/spectrum"
)

// buildParallelism caps the extraction fan-out at the scheduler's actual
// parallelism. Requesting more workers than the machine has cores cannot
// speed anything up — the extra goroutines only add handoff, fold, and
// cache overhead (BENCH_build's workers=4 running 0.76x of serial on a
// small host was exactly this). Tests override the hook to force the
// parallel path on machines with fewer cores than the sweep requests.
var buildParallelism = func() int { return runtime.GOMAXPROCS(0) }

// specBuilder runs the spectrum construction (Steps II-III) for one rank
// with Heuristics.Workers extraction goroutines and a pipelined count
// exchange. All mutable tables are sharded by hash(id) % workers:
//
//   - extract: worker w scans a contiguous block of the round's reads into
//     its private per-shard tables workK[w][s] / workT[w][s] — no shared
//     writes at all.
//   - fold: goroutine s merges every worker's shard s into the cumulative
//     owned shard (ownK[s]/ownT[s]) and the round's non-owned table
//     (roundK[s]/roundT[s]) — disjoint key ranges, so lock-free.
//   - encode/exchange: the round's non-owned entries are serialized per
//     destination (sorted, into double-buffered reuse slabs) and shipped
//     with a background Alltoallv pair, which overlaps the *next* round's
//     extract/fold/encode. Received entries merge into the owned shards on
//     the main goroutine after the join, so shard writers never overlap.
//
// finish() prunes the owned shards and freezes them into the rankCtx's
// immutable PackedStores; the builder is dead afterwards.
type specBuilder struct {
	ctx  *rankCtx
	nw   int // extraction workers == shard count
	spec kmer.Spec

	// Cumulative owned tables, sharded by shardOf. Shard s is written only
	// by fold goroutine s and the main-goroutine merge; never concurrently.
	ownK, ownT []*spectrum.HashStore
	// Cumulative retained non-owned tables (RetainReadKmers), same sharding;
	// nil when retention is off.
	retK, retT []*spectrum.HashStore
	// Per-worker private extraction tables, indexed [worker][shard].
	workK, workT [][]*spectrum.HashStore
	// Per-shard per-round non-owned tables, deduped before the wire.
	roundK, roundT []*spectrum.HashStore

	// Wire buffers, triple-buffered per destination: round r encodes into
	// set r%3 while set (r-1)%3 rides the in-flight exchange. The third set
	// covers the zero-copy transports: a peer holds a reference to the slab
	// we sent in round r until its own merge of that round finishes, and the
	// earliest event proving every peer merged round r is our join of
	// exchange r+1 — which lands after round r+2's encode. Set r%3 is not
	// reused before round r+3, safely past that join.
	encK, encT [3][][]byte
	// Reused sort scratch for the round encode (HashStore.EntriesInto).
	entryScratch []spectrum.Entry
	// Per-destination delta-codec state for the round encode, reset at the
	// top of each encodeRound call.
	encPrev []uint64
}

// newSpecBuilder builds the sharded tables and registers the builder on the
// context so currentMem accounts them. The worker count is clamped to the
// machine's parallelism; at one effective worker the builder takes the
// serial direct-route path, which never allocates the per-worker tables.
func (ctx *rankCtx) newSpecBuilder(retain bool) *specBuilder {
	nw := ctx.opts.Heuristics.Workers
	if nw < 1 {
		nw = 1
	}
	if p := buildParallelism(); nw > p && p > 0 {
		nw = p
	}
	b := &specBuilder{ctx: ctx, nw: nw, spec: ctx.opts.Config.Spec}
	shards := func() []*spectrum.HashStore {
		s := make([]*spectrum.HashStore, nw)
		for i := range s {
			s[i] = spectrum.NewHash(0)
		}
		return s
	}
	b.ownK, b.ownT = shards(), shards()
	b.roundK, b.roundT = shards(), shards()
	if retain {
		b.retK, b.retT = shards(), shards()
	}
	if nw > 1 {
		b.workK = make([][]*spectrum.HashStore, nw)
		b.workT = make([][]*spectrum.HashStore, nw)
		for w := 0; w < nw; w++ {
			b.workK[w], b.workT[w] = shards(), shards()
		}
	}
	for set := range b.encK {
		b.encK[set] = make([][]byte, ctx.np)
		b.encT[set] = make([][]byte, ctx.np)
	}
	b.encPrev = make([]uint64, ctx.np)
	ctx.build = b
	return b
}

// shardOf maps an ID to its rank-internal shard. Reusing the owner hash
// keeps shard sizes as uniform as the cross-rank distribution (Fig 3).
//
// reptile-lint:hotpath
func (b *specBuilder) shardOf(id kmer.ID) int {
	return int(kmer.HashID(id) % uint64(b.nw))
}

// extract scans one round's reads into the workers' private shard tables,
// one contiguous block per worker (same partition shape as the correction
// pool). Runs concurrently with an in-flight exchange: workers touch only
// their own tables. The extraction callbacks are built once per worker, not
// once per read: a closure in the per-read loop escapes to the callee and
// costs an allocation for every read in the round.
//
// reptile-lint:hotpath
func (b *specBuilder) extract(batch []reads.Read) {
	if b.nw == 1 {
		b.extractSerial(batch)
		return
	}
	type tally struct{ kmers, tiles int64 }
	tallies := make([]tally, b.nw)
	var wg sync.WaitGroup
	for w := 0; w < b.nw; w++ {
		lo, hi := len(batch)*w/b.nw, len(batch)*(w+1)/b.nw
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			kT, tT := b.workK[w], b.workT[w]
			tl := &tallies[w]
			addKmer := func(_ int, id kmer.ID) {
				tl.kmers++
				kT[b.shardOf(id)].Add(id, 1)
			}
			addTile := func(_ int, id kmer.ID) {
				tl.tiles++
				tT[b.shardOf(id)].Add(id, 1)
			}
			for i := lo; i < hi; i++ {
				b.spec.EachKmer(batch[i].Base, addKmer)
				b.spec.EachTileStep(batch[i].Base, 1, addTile)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range tallies {
		b.ctx.st.KmersExtracted += tallies[w].kmers
		b.ctx.st.TilesExtracted += tallies[w].tiles
	}
}

// extractSerial is the single-worker fast path: with no sibling to race,
// each id routes by owner straight into the cumulative owned shard or the
// round table — one map insert per occurrence instead of the parallel
// path's work-table insert plus fold re-insert (the double map handling
// that dominated the serial profile). Retention accumulates per occurrence
// here instead of per round-entry in foldShard; the sums are identical.
// The extraction callbacks are hoisted out of the per-read loop, as in the
// parallel path.
//
// reptile-lint:hotpath
func (b *specBuilder) extractSerial(batch []reads.Read) {
	rank, np := b.ctx.rank, b.ctx.np
	var kmers, tiles int64
	addKmer := func(_ int, id kmer.ID) {
		kmers++
		s := b.shardOf(id)
		if kmer.Owner(id, np) == rank {
			b.ownK[s].Add(id, 1)
		} else {
			b.roundK[s].Add(id, 1)
			if b.retK != nil {
				b.retK[s].Add(id, 1)
			}
		}
	}
	addTile := func(_ int, id kmer.ID) {
		tiles++
		s := b.shardOf(id)
		if kmer.Owner(id, np) == rank {
			b.ownT[s].Add(id, 1)
		} else {
			b.roundT[s].Add(id, 1)
			if b.retT != nil {
				b.retT[s].Add(id, 1)
			}
		}
	}
	for i := range batch {
		b.spec.EachKmer(batch[i].Base, addKmer)
		b.spec.EachTileStep(batch[i].Base, 1, addTile)
	}
	b.ctx.st.KmersExtracted += kmers
	b.ctx.st.TilesExtracted += tiles
}

// fold merges the workers' private tables into the cumulative owned shards
// and the round's non-owned tables, one goroutine per shard. The serial
// fast path already routed everything at extraction, so there is nothing
// to fold.
func (b *specBuilder) fold() {
	if b.nw == 1 {
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < b.nw; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b.foldShard(s)
		}(s)
	}
	wg.Wait()
}

// foldShard routes shard s of every worker table by owner rank: owned
// entries accumulate in the cumulative shard, the rest land in the round
// table (and the retained shard when retention is on). The worker tables
// are cleared, keeping their capacity for the next round. The routing
// callback is hoisted above the per-worker loop so it is allocated once per
// fold, not once per worker table.
//
// reptile-lint:hotpath
func (b *specBuilder) foldShard(s int) {
	rank, np := b.ctx.rank, b.ctx.np
	foldOne := func(own, round, ret *spectrum.HashStore, work func(w int) *spectrum.HashStore) {
		route := func(e spectrum.Entry) bool {
			if kmer.Owner(e.ID, np) == rank {
				own.Add(e.ID, e.Count)
			} else {
				round.Add(e.ID, e.Count)
			}
			return true
		}
		for w := 0; w < b.nw; w++ {
			t := work(w)
			t.Each(route)
			t.Clear()
		}
		if ret != nil {
			round.Each(func(e spectrum.Entry) bool { ret.Add(e.ID, e.Count); return true })
		}
	}
	var retK, retT *spectrum.HashStore
	if b.retK != nil {
		retK, retT = b.retK[s], b.retT[s]
	}
	foldOne(b.ownK[s], b.roundK[s], retK, func(w int) *spectrum.HashStore { return b.workK[w][s] })
	foldOne(b.ownT[s], b.roundT[s], retT, func(w int) *spectrum.HashStore { return b.workT[w][s] })
}

// observeRound records the reads-table peaks (round + retained entries, the
// batch-reads memory bound of Section III-B) and the memory high-water mark.
// Must run after fold and before encode, while the round tables are full.
func (b *specBuilder) observeRound() {
	sum := func(ss []*spectrum.HashStore) int64 {
		var n int64
		for _, s := range ss {
			n += int64(s.Len())
		}
		return n
	}
	var retK, retT int64
	if b.retK != nil {
		retK, retT = sum(b.retK), sum(b.retT)
	}
	if v := sum(b.roundK) + retK; b.ctx.st.ReadsKmers < v {
		b.ctx.st.ReadsKmers = v
	}
	if v := sum(b.roundT) + retT; b.ctx.st.ReadsTiles < v {
		b.ctx.st.ReadsTiles = v
	}
	b.ctx.observeMem()
}

// encode serializes the round's non-owned entries per destination rank into
// buffer set (one of three reused slab sets, see encK) and clears the round
// tables. Entries travel in sorted ID order, so the wire bytes are
// deterministic regardless of worker count.
func (b *specBuilder) encode(set int) (bufsK, bufsT [][]byte) {
	bufsK = b.encodeRound(b.roundK, b.encK[set])
	bufsT = b.encodeRound(b.roundT, b.encT[set])
	return bufsK, bufsT
}

// encodeRound serializes every shard's entries into the per-destination
// wire slabs, reusing the sort scratch and the slab capacity across rounds.
// Entries travel delta-compressed (appendSpecEntry): each slab is a run of
// zigzag-varint id deltas plus varint counts rather than fixed 12-byte
// records — round counts are overwhelmingly small and sorted shard segments
// keep deltas short, so typical slabs shrink well below 8 bytes per entry.
//
// reptile-lint:hotpath
func (b *specBuilder) encodeRound(round []*spectrum.HashStore, enc [][]byte) [][]byte {
	for r := range enc {
		enc[r] = enc[r][:0]
	}
	np := b.ctx.np
	prev := b.encPrev
	for r := range prev {
		prev[r] = 0
	}
	var entries int64
	for s := range round {
		b.entryScratch = round[s].EntriesInto(b.entryScratch[:0])
		for i := range b.entryScratch {
			e := &b.entryScratch[i]
			o := kmer.Owner(e.ID, np)
			enc[o], prev[o] = appendSpecEntry(enc[o], prev[o], e.ID, e.Count)
		}
		entries += int64(len(b.entryScratch))
		round[s].Clear()
	}
	for r := range enc {
		if r != b.ctx.rank {
			b.ctx.st.ExchangeBytes += int64(len(enc[r]))
			b.ctx.st.SpecBytesSent += int64(len(enc[r]))
		}
	}
	// The round tables hold only non-owned ids, so every encoded entry is
	// outbound; the self slab is always empty.
	b.ctx.st.SpecEntriesSent += entries
	return enc
}

// exchangeJob is one in-flight background Alltoallv pair. The goroutine
// touches only the Comm and the job's own fields; closing done is the
// happens-before edge publishing the results (and the Comm's tag state) back
// to the main goroutine, preserving the one-collective-at-a-time discipline
// (see collective.Comm).
type exchangeJob struct {
	done       chan struct{}
	gotK, gotT [][]byte
	err        error
}

// startExchange launches the round's k-mer and tile all-to-alls in the
// background. Exactly one job may be in flight; the caller must join it
// before starting another collective of any kind.
func (b *specBuilder) startExchange(bufsK, bufsT [][]byte) *exchangeJob {
	j := &exchangeJob{done: make(chan struct{})}
	comm := b.ctx.comm
	go func() {
		defer close(j.done)
		j.gotK, j.err = comm.Alltoallv(bufsK)
		if j.err != nil {
			return
		}
		j.gotT, j.err = comm.Alltoallv(bufsT)
	}()
	return j
}

// join waits for an exchange and merges the received entries into the owned
// shards (Step III's count merge at the owners).
func (b *specBuilder) join(j *exchangeJob) error {
	<-j.done
	if j.err != nil {
		return j.err
	}
	if err := b.merge(j.gotK, b.ownK); err != nil {
		return err
	}
	return b.merge(j.gotT, b.ownT)
}

func (b *specBuilder) merge(got [][]byte, own []*spectrum.HashStore) error {
	rank, np := b.ctx.rank, b.ctx.np
	for r, buf := range got {
		if r == rank || len(buf) == 0 {
			continue
		}
		addOwned := func(id kmer.ID, count uint32) error {
			if kmer.Owner(id, np) != rank {
				return &msgplane.ProtocolError{Kind: msgplane.ViolationMisroutedEntry, From: r, Want: kmer.Owner(id, np)}
			}
			own[b.shardOf(id)].Add(id, count)
			return nil
		}
		if err := decodeSpecEntries(buf, addOwned); err != nil {
			if _, ok := err.(*msgplane.ProtocolError); ok {
				return err
			}
			return fmt.Errorf("merging entries from rank %d: %w", r, err)
		}
	}
	return nil
}

// histogram sums the shard histograms of one sharded spectrum, for the
// auto-threshold allreduce.
func (b *specBuilder) histogram(shards []*spectrum.HashStore) []int64 {
	global := make([]int64, spectrum.HistogramBins)
	for _, s := range shards {
		spectrum.MergeHistograms(global, s.Histogram())
	}
	return global
}

// finish is the freeze point: prune the owned shards with the (possibly
// auto-resolved) thresholds, pack them into the immutable owned stores, and
// flatten the retained shards into one mutable table for the post-exchange
// count resolution. The builder is unregistered from the context; every
// shard map has been released.
//
// reptile-lint:build
func (b *specBuilder) finish() {
	ctx := b.ctx
	for s := 0; s < b.nw; s++ {
		b.ownK[s].Prune(ctx.opts.Config.KmerThreshold)
		b.ownT[s].Prune(ctx.opts.Config.TileThreshold)
	}
	ctx.ownKmer = spectrum.Freeze(b.ownK...)
	ctx.ownTile = spectrum.Freeze(b.ownT...)
	ctx.st.OwnedKmers = int64(ctx.ownKmer.Len())
	ctx.st.OwnedTiles = int64(ctx.ownTile.Len())
	ctx.st.OwnedMemBytes = ctx.ownKmer.MemBytes() + ctx.ownTile.MemBytes()
	if b.retK != nil {
		ctx.cacheKmer = flattenShards(b.retK)
		ctx.cacheTile = flattenShards(b.retT)
	}
	ctx.build = nil
	// The freeze-point footprint: frozen owned stores plus the flattened
	// retained tables, with every builder shard already released.
	ctx.st.MemAtFreeze = ctx.currentMem()
}

// flattenShards folds disjoint shard tables into one mutable HashStore,
// releasing each shard as it is consumed.
func flattenShards(shards []*spectrum.HashStore) *spectrum.HashStore {
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	out := spectrum.NewHash(total)
	for _, s := range shards {
		s.Each(func(e spectrum.Entry) bool { out.Set(e.ID, e.Count); return true })
		s.Release()
	}
	return out
}

// memBytes sums every live builder table, for the memory high-water mark.
func (b *specBuilder) memBytes() int64 {
	var total int64
	add := func(ss []*spectrum.HashStore) {
		for _, s := range ss {
			total += s.MemBytes()
		}
	}
	add(b.ownK)
	add(b.ownT)
	add(b.roundK)
	add(b.roundT)
	if b.retK != nil {
		add(b.retK)
		add(b.retT)
	}
	for w := range b.workK {
		add(b.workK[w])
		add(b.workT[w])
	}
	return total
}
