package core

import (
	"fmt"

	"reptile/internal/kmer"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// distOracle resolves spectrum lookups for the corrector during Step IV,
// implementing the paper's lookup chain: owned table → replicated/group
// copy → retained reads table (with resolved global counts) → message to
// the owning rank's communication thread.
type distOracle struct {
	e    transport.Conn
	st   *stats.Rank
	rank int
	np   int

	h Heuristics

	// Owned (pruned, global-count) spectra.
	ownKmer, ownTile *spectrum.HashStore
	// Full replicas (nil unless the allgather heuristics are on); the
	// layout depends on Heuristics.ReplicatedLayout.
	replKmer, replTile spectrum.Lookuper
	// Partial-replication group copies (nil unless enabled).
	groupKmer, groupTile *spectrum.HashStore
	groupSize            int
	// Retained reads tables with *global* counts; an entry with count 0
	// records a resolved "does not exist".
	readsKmer, readsTile *spectrum.HashStore

	err error // first transport error; checked by the worker after the run
}

// KmerCount implements reptile.Oracle.
func (o *distOracle) KmerCount(id kmer.ID) (uint32, bool) {
	return o.lookup(kindKmer, id)
}

// TileCount implements reptile.Oracle.
func (o *distOracle) TileCount(id kmer.ID) (uint32, bool) {
	return o.lookup(kindTile, id)
}

func (o *distOracle) lookup(kind byte, id kmer.ID) (uint32, bool) {
	var repl spectrum.Lookuper = o.replKmer
	own, group, reads := o.ownKmer, o.groupKmer, o.readsKmer
	if kind == kindTile {
		repl, own, group, reads = o.replTile, o.ownTile, o.groupTile, o.readsTile
	}

	if repl != nil {
		o.countLocal(kind)
		return repl.Count(id)
	}

	owner := kmer.Owner(id, o.np)
	if owner == o.rank {
		o.countLocal(kind)
		return own.Count(id) // a miss here is definitive
	}

	if group != nil && owner/o.groupSize == o.rank/o.groupSize {
		// The group copy is the complete owned spectrum of every group
		// member, so a miss is definitive too.
		o.countLocal(kind)
		return group.Count(id)
	}

	if reads != nil {
		if cnt, ok := reads.Count(id); ok {
			o.countLocal(kind)
			if cnt == 0 {
				return 0, false // resolved known-absent
			}
			if o.h.CacheRemote {
				o.st.CacheHits++
			}
			return cnt, true
		}
	}

	// Remote round trip to the owner's communication thread.
	cnt, exists, err := o.remote(kind, id, owner)
	if err != nil {
		if o.err == nil {
			o.err = err
		}
		return 0, false
	}
	if kind == kindKmer {
		o.st.KmerLookupsRemote++
	} else {
		o.st.TileLookupsRemote++
	}
	if !exists {
		o.st.RemoteMisses++
	}
	if o.h.CacheRemote && reads != nil {
		if exists {
			reads.Set(id, cnt)
		} else {
			reads.Set(id, 0)
		}
	}
	return cnt, exists
}

func (o *distOracle) countLocal(kind byte) {
	if kind == kindKmer {
		o.st.KmerLookupsLocal++
	} else {
		o.st.TileLookupsLocal++
	}
}

// remote performs one synchronous request/response with the owning rank.
// The worker issues at most one request at a time, so the tagResp stream
// cannot interleave.
func (o *distOracle) remote(kind byte, id kmer.ID, owner int) (uint32, bool, error) {
	tag, payload := encodeReq(o.h.Universal, kind, id)
	if err := o.e.Send(owner, tag, payload); err != nil {
		return 0, false, err
	}
	m, err := o.e.Recv(tagResp)
	if err != nil {
		return 0, false, err
	}
	if m.From != owner {
		return 0, false, fmt.Errorf("core: response from rank %d, expected %d", m.From, owner)
	}
	cnt, exists, err := decodeResp(m.Data)
	if err != nil {
		return 0, false, err
	}
	return cnt, exists, nil
}
