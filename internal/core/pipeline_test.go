package core

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"reptile/internal/dna"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// TestPipelinePhaseObservability pins the unified runner's observation
// contract: the batch engine times all five phases and records a table
// footprint at each freeze-bearing phase exit, while the streaming engine
// leaves the phases it does not run untouched — the step list, not a
// second driver, is what differs between them.
func TestPipelinePhaseObservability(t *testing.T) {
	ds, opts := testDataset(t, 600, 9100)
	opts.Config.ChunkReads = 100

	out, err := Run(&MemorySource{Reads: ds.Reads}, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Run.Ranks {
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			if p == stats.PhaseSnapshot {
				// The snapshot probe exists only in runs configured with
				// Options.Snapshot (snapshot_test.go covers that shape).
				if r.Wall[p] != 0 {
					t.Errorf("batch rank %d: snapshot phase timed without Options.Snapshot", r.Rank)
				}
				continue
			}
			if r.Wall[p] <= 0 {
				t.Errorf("batch rank %d: phase %v not timed", r.Rank, p)
			}
		}
		for _, p := range []stats.Phase{stats.PhaseSpectrum, stats.PhaseExchange, stats.PhaseCorrect} {
			if r.PhaseMem[p] <= 0 {
				t.Errorf("batch rank %d: no footprint recorded at %v exit", r.Rank, p)
			}
		}
		if r.PhaseMem[stats.PhaseCorrect] != r.MemAfterCorrect {
			t.Errorf("batch rank %d: correct-exit footprint %d, MemAfterCorrect %d",
				r.Rank, r.PhaseMem[stats.PhaseCorrect], r.MemAfterCorrect)
		}
	}

	_, factory := collectSinks(2)
	sout, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 2, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sout.Run.Ranks {
		for _, p := range []stats.Phase{stats.PhaseRead, stats.PhaseBalance} {
			if r.Wall[p] != 0 || r.PhaseMem[p] != 0 {
				t.Errorf("streaming rank %d: phase %v ran (wall=%v mem=%d), but streaming has no such step",
					r.Rank, p, r.Wall[p], r.PhaseMem[p])
			}
		}
		for _, p := range []stats.Phase{stats.PhaseSpectrum, stats.PhaseExchange, stats.PhaseCorrect} {
			if r.Wall[p] <= 0 {
				t.Errorf("streaming rank %d: phase %v not timed", r.Rank, p)
			}
		}
	}
}

// TestPipelineEquivalenceProcAndTCP is the unification regression suite:
// the same step list driven over the in-process transport and over TCP
// must produce byte-identical corrected reads for every heuristic shape
// that changes the correct step's communication pattern.
func TestPipelineEquivalenceProcAndTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: tcp + multi-mode end-to-end runs")
	}
	ds, opts := testDataset(t, 800, 9200)
	const np = 2

	modes := map[string]Heuristics{
		"base":      {},
		"universal": {Universal: true},
		"batched":   {LookupBatch: 16, LookupWindow: 2, Workers: 2},
	}
	for name, h := range modes {
		o := opts
		o.Heuristics = h

		proc, err := Run(&MemorySource{Reads: ds.Reads}, np, o)
		if err != nil {
			t.Fatalf("%s proc: %v", name, err)
		}
		want := proc.Corrected()

		got := runOverTCP(t, &MemorySource{Reads: ds.Reads}, np, o)
		if len(got) != len(want) {
			t.Fatalf("%s: tcp returned %d reads, proc %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].seq != want[i].Seq || got[i].bases != dna.DecodeString(want[i].Base) {
				t.Fatalf("%s: read %d differs between proc and tcp pipelines", name, want[i].Seq)
			}
		}
	}
}

// runOverTCP runs the unified pipeline one-goroutine-per-rank over
// loopback TCP endpoints and returns the corrected reads in input-file
// order.
func runOverTCP(t *testing.T, src Source, np int, opts Options) []readKey {
	t.Helper()
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	outs := make([]*RankOutput, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e, err := transport.NewTCP(transport.TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			outs[r], errs[r] = RunRank(e, src, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}

	var got []readKey
	for _, o := range outs {
		for i := range o.Corrected {
			got = append(got, readKey{o.Corrected[i].Seq, dna.DecodeString(o.Corrected[i].Base)})
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	return got
}
