package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"regexp"
	"strings"
)

// LockGuard enforces the "// guarded by <mu>" annotation convention: a
// struct field carrying that comment may only be read or written inside a
// function that locks the named mutex on the same owner value (an explicit
// <owner>.<mu>.Lock() or .RLock() call in the body), or whose doc comment
// carries a "reptile-lint:holds <mu>" directive declaring that its callers
// already hold the lock.
//
// The check is syntactic with intra-package type resolution: selector chains
// rooted at a method receiver or a function parameter are resolved through
// locally-declared struct types, so e.mbox.depth is recognized as an access
// to mailbox.depth guarded by e.mbox.mu. Accesses the resolver cannot type
// are skipped — the analyzer never guesses, so it has no false positives
// from same-named fields on unrelated types. Test files are exempt: tests
// routinely inspect state after goroutines are joined, where the
// happens-before edge comes from the join, not the mutex.
type LockGuard struct{}

// NewLockGuard returns the analyzer with default configuration.
func NewLockGuard() *LockGuard { return &LockGuard{} }

// Name implements Analyzer.
func (*LockGuard) Name() string { return "lockguard" }

// Doc implements Analyzer.
func (*LockGuard) Doc() string {
	return "flags accesses to '// guarded by <mu>' fields outside functions that lock <mu>"
}

var (
	guardedByRe = regexp.MustCompile(`guarded by (\w+)`)
	holdsRe     = regexp.MustCompile(`reptile-lint:holds\s+(\w+)`)
)

// typeRef is the resolver's notion of a type: a named struct declared in
// this package, possibly behind a pointer and/or one slice/array/map level.
type typeRef struct {
	name  string
	elem  bool // slice/array/map: name is the element's struct type
	known bool
}

// structInfo is one declared struct's fields and annotations.
type structInfo struct {
	fields  map[string]typeRef // field name -> field type
	guarded map[string]string  // field name -> mutex field name
	pos     map[string]token.Pos
}

// Check implements Analyzer.
func (lg *LockGuard) Check(pkg *Package, r *Reporter) {
	structs := collectStructs(pkg)

	// Validate annotations: the named mutex must be a sibling field.
	for _, si := range structs {
		for field, mu := range si.guarded {
			if _, ok := si.fields[mu]; !ok {
				r.Reportf(si.pos[field], "field %s is 'guarded by %s' but the struct has no field %s", field, mu, mu)
			}
		}
	}

	for _, f := range pkg.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lg.checkFunc(pkg, structs, fn, r)
		}
	}
}

// collectStructs indexes every struct type declared in the package,
// including in test files so annotations there are validated too.
func collectStructs(pkg *Package) map[string]*structInfo {
	structs := map[string]*structInfo{}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				si := &structInfo{
					fields:  map[string]typeRef{},
					guarded: map[string]string{},
					pos:     map[string]token.Pos{},
				}
				for _, fld := range st.Fields.List {
					ref := refOfExpr(fld.Type)
					mu := guardAnnotation(fld)
					for _, name := range fld.Names {
						si.fields[name.Name] = ref
						si.pos[name.Name] = name.Pos()
						if mu != "" {
							si.guarded[name.Name] = mu
						}
					}
				}
				structs[ts.Name.Name] = si
			}
		}
	}
	return structs
}

// guardAnnotation extracts the mutex name from a field's doc or line comment.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// refOfExpr maps a field/param type expression to a typeRef. Only locally
// named types (optionally behind *, [], or map values) resolve; everything
// else is unknown.
func refOfExpr(e ast.Expr) typeRef {
	elem := false
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.ArrayType:
			elem = true
			e = t.Elt
		case *ast.MapType:
			elem = true
			e = t.Value
		case *ast.Ident:
			return typeRef{name: t.Name, elem: elem, known: true}
		default:
			return typeRef{}
		}
	}
}

// checkFunc verifies every guarded-field access in one function.
func (lg *LockGuard) checkFunc(pkg *Package, structs map[string]*structInfo, fn *ast.FuncDecl, r *Reporter) {
	env := map[string]typeRef{}
	if fn.Recv != nil {
		for _, fld := range fn.Recv.List {
			ref := refOfExpr(fld.Type)
			for _, name := range fld.Names {
				env[name.Name] = ref
			}
		}
	}
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			ref := refOfExpr(fld.Type)
			for _, name := range fld.Names {
				env[name.Name] = ref
			}
		}
	}

	holds := map[string]bool{}
	if fn.Doc != nil {
		for _, m := range holdsRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
			holds[m[1]] = true
		}
	}

	// resolve returns the struct type of expr, following receiver/param
	// chains through locally declared field types.
	var resolve func(e ast.Expr) (typeRef, *structInfo)
	resolve = func(e ast.Expr) (typeRef, *structInfo) {
		switch t := e.(type) {
		case *ast.Ident:
			ref, ok := env[t.Name]
			if !ok {
				return typeRef{}, nil
			}
			return ref, structs[ref.name]
		case *ast.ParenExpr:
			return resolve(t.X)
		case *ast.StarExpr:
			return resolve(t.X)
		case *ast.IndexExpr:
			ref, si := resolve(t.X)
			if si == nil || !ref.elem {
				return typeRef{}, nil
			}
			return typeRef{name: ref.name, known: true}, si
		case *ast.SelectorExpr:
			ref, si := resolve(t.X)
			if si == nil || ref.elem {
				return typeRef{}, nil
			}
			fref, ok := si.fields[t.Sel.Name]
			if !ok || !fref.known {
				return typeRef{}, nil
			}
			return fref, structs[fref.name]
		}
		return typeRef{}, nil
	}

	// Pass 1: collect the set of mutexes this function locks, as rendered
	// "owner.mu" strings from <owner>.<mu>.Lock() / .RLock() calls.
	locked := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		locked[render(pkg.Fset, sel.X)] = true
		return true
	})

	// Pass 2: flag guarded-field accesses with no matching lock in scope.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ref, si := resolve(sel.X)
		if si == nil || ref.elem {
			return true
		}
		mu, guarded := si.guarded[sel.Sel.Name]
		if !guarded {
			return true
		}
		if holds[mu] {
			return true
		}
		guardExpr := render(pkg.Fset, sel.X) + "." + mu
		if locked[guardExpr] {
			return true
		}
		r.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s, but %s neither locks it nor declares reptile-lint:holds %s",
			ref.name, sel.Sel.Name, guardExpr, funcLabel(fn), mu)
		return true
	})
}

// render prints an expression back to source form for guard matching.
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// funcLabel names a function for diagnostics ("method mailbox.take" or
// "function CloseGroup").
func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		ref := refOfExpr(fn.Recv.List[0].Type)
		if ref.known {
			return "method " + ref.name + "." + fn.Name.Name
		}
	}
	return "function " + fn.Name.Name
}

// funcNameOf returns the called function's terminal name ("Send" for
// e.Send(...), "encodeReq" for encodeReq(...)), or "" when unnameable.
// Shared by the wireproto and goroutine-hygiene analyzers.
func funcNameOf(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// hasPrefixFold reports whether s starts with prefix, ASCII case-insensitive
// on the first rune (encodeReq and EncodeEntries both count as encoders).
func hasPrefixFold(s, prefix string) bool {
	return strings.HasPrefix(strings.ToLower(s), strings.ToLower(prefix))
}
