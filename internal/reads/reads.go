// Package reads defines the short-read record every stage operates on and
// its wire encoding.
//
// Following the paper's input convention, reads are named by ascending
// sequence numbers starting at 1, and each base carries a Phred quality
// score. The wire encoding exists because the static load-balancing step
// redistributes whole reads between ranks with an all-to-all exchange.
package reads

import (
	"encoding/binary"
	"fmt"

	"reptile/internal/dna"
	"reptile/internal/kmer"
)

// MaxLen is the longest supported read. Illumina short reads are ~100-300
// bases; the cap keeps the wire format's length field at 16 bits.
const MaxLen = 1 << 16

// Read is one short read: its sequence number (1-based, file order), base
// codes, and per-base Phred quality scores (0-60, not ASCII-offset).
type Read struct {
	Seq  int64
	Base []dna.Base
	Qual []byte
}

// Len returns the read length in bases.
func (r *Read) Len() int { return len(r.Base) }

// Validate checks internal consistency.
func (r *Read) Validate() error {
	if r.Seq < 1 {
		return fmt.Errorf("reads: sequence number %d < 1", r.Seq)
	}
	if len(r.Base) != len(r.Qual) {
		return fmt.Errorf("reads: read %d has %d bases but %d quality scores", r.Seq, len(r.Base), len(r.Qual))
	}
	if len(r.Base) >= MaxLen {
		return fmt.Errorf("reads: read %d length %d exceeds %d", r.Seq, len(r.Base), MaxLen-1)
	}
	return nil
}

// Clone returns a deep copy, used before in-place correction so the original
// stays available for accuracy evaluation.
func (r *Read) Clone() Read {
	c := Read{Seq: r.Seq, Base: make([]dna.Base, len(r.Base)), Qual: make([]byte, len(r.Qual))}
	copy(c.Base, r.Base)
	copy(c.Qual, r.Qual)
	return c
}

// OwnerRank returns the rank that owns this read under the static
// load-balancing scheme: hash of the read content modulo np (paper
// Section III-A). The hash covers the bases only, so two ranks holding the
// same read agree regardless of quality representation.
func (r *Read) OwnerRank(np int) int {
	return int(kmer.HashBytes(dna.Decode(r.Base)) % uint64(np))
}

// wire layout: seq int64 | n uint16 | n base bytes | n qual bytes.
// Bases travel as raw codes (one byte each); the exchange buffers are
// transient so 2-bit packing would only complicate the hot path.

// AppendWire serializes r, appending to dst.
func AppendWire(dst []byte, r *Read) []byte {
	var hdr [10]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(r.Seq))
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(len(r.Base)))
	dst = append(dst, hdr[:]...)
	for _, b := range r.Base {
		dst = append(dst, byte(b))
	}
	dst = append(dst, r.Qual...)
	return dst
}

// DecodeWire parses one read from b, returning the read and the remaining
// bytes.
func DecodeWire(b []byte) (Read, []byte, error) {
	if len(b) < 10 {
		return Read{}, nil, fmt.Errorf("reads: truncated header (%d bytes)", len(b))
	}
	seq := int64(binary.LittleEndian.Uint64(b[0:8]))
	n := int(binary.LittleEndian.Uint16(b[8:10]))
	b = b[10:]
	if len(b) < 2*n {
		return Read{}, nil, fmt.Errorf("reads: truncated body for read %d (%d < %d)", seq, len(b), 2*n)
	}
	r := Read{Seq: seq, Base: make([]dna.Base, n), Qual: make([]byte, n)}
	for i := 0; i < n; i++ {
		r.Base[i] = dna.Base(b[i])
		if !r.Base[i].Valid() {
			return Read{}, nil, fmt.Errorf("reads: invalid base code %d in read %d", b[i], seq)
		}
	}
	copy(r.Qual, b[n:2*n])
	return r, b[2*n:], nil
}

// EncodeBatch serializes a batch of reads into one buffer.
func EncodeBatch(batch []Read) []byte {
	if len(batch) == 0 {
		return nil
	}
	size := 0
	for i := range batch {
		size += 10 + 2*len(batch[i].Base)
	}
	out := make([]byte, 0, size)
	for i := range batch {
		out = AppendWire(out, &batch[i])
	}
	return out
}

// DecodeBatch parses a buffer produced by EncodeBatch.
func DecodeBatch(b []byte) ([]Read, error) {
	var out []Read
	for len(b) > 0 {
		r, rest, err := DecodeWire(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		b = rest
	}
	return out, nil
}

// MemBytes estimates the heap footprint of a batch.
func MemBytes(batch []Read) int64 {
	var total int64
	for i := range batch {
		total += int64(len(batch[i].Base)) + int64(len(batch[i].Qual)) + 64
	}
	return total
}
