package spectrum

import (
	"bytes"
	"testing"
)

func TestWriteToReadFromRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 1000} {
		h, _ := buildRandom(n, int64(n)+77)
		var buf bytes.Buffer
		written, err := h.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Errorf("n=%d: WriteTo reported %d bytes, wrote %d", n, written, buf.Len())
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != h.Len() {
			t.Fatalf("n=%d: reloaded %d entries, want %d", n, got.Len(), h.Len())
		}
		h.Each(func(e Entry) bool {
			if c, ok := got.Count(e.ID); !ok || c != e.Count {
				t.Fatalf("n=%d: entry %v lost (got %d,%v)", n, e.ID, c, ok)
			}
			return true
		})
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	h, _ := buildRandom(100, 9)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ok := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":  append([]byte("XXXX"), ok[4:]...),
		"truncated":  ok[:len(ok)-5],
		"trailing":   append(append([]byte{}, ok...), 0),
		"empty":      {},
		"just magic": ok[:4],
	}
	// Out-of-order entries: swap two entry IDs.
	swapped := append([]byte{}, ok...)
	copy(swapped[12:20], ok[24:32])
	copy(swapped[24:32], ok[12:20])
	cases["out of order"] = swapped
	// Implausible count.
	big := append([]byte{}, ok...)
	for i := 4; i < 12; i++ {
		big[i] = 0xFF
	}
	cases["huge count"] = big

	for name, data := range cases {
		if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted corrupt spectrum", name)
		}
	}
}
