package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("delay=2ms,jitter=1ms,slow=1x8,crash=2@100,corrupt=1@50,drop=0-3@30", 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Delay != 2*time.Millisecond || p.Jitter != time.Millisecond {
		t.Errorf("timing: %+v", p)
	}
	if p.SlowRank != 1 || p.SlowFactor != 8 {
		t.Errorf("slow: %+v", p)
	}
	if p.CrashRank != 2 || p.CrashAfter != 100 {
		t.Errorf("crash: %+v", p)
	}
	if p.CorruptRank != 1 || p.CorruptAfter != 50 {
		t.Errorf("corrupt: %+v", p)
	}
	if p.DropRank != 0 || p.DropPeer != 3 || p.DropAfter != 30 {
		t.Errorf("drop: %+v", p)
	}
	if p.Benign() {
		t.Error("plan with crash/corrupt/drop reported benign")
	}
	if err := p.Validate(4); err != nil {
		t.Errorf("validate np=4: %v", err)
	}
	if err := p.Validate(2); err == nil {
		t.Error("validate np=2 should reject crash rank 2")
	}

	empty, err := ParsePlan("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Benign() || empty.Seed != 7 {
		t.Errorf("empty spec: %+v", empty)
	}

	for _, bad := range []string{"delay", "warp=1", "crash=1", "drop=1@5", "delay=xs"} {
		if _, err := ParsePlan(bad, 0); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// TestChaosBenignPreservesOrder checks the core benign-fault invariant at
// the transport level: delay, jitter, and a slow rank reorder nothing.
func TestChaosBenignPreservesOrder(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	plan := NewPlan(1)
	plan.Delay = 50 * time.Microsecond
	plan.Jitter = 50 * time.Microsecond
	plan.SlowRank = 0
	sender := NewChaos(eps[0], plan)
	const n = 50
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := sender.Send(1, 7, []byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := eps[1].Recv(7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Data, []byte{byte(i)}) {
			t.Fatalf("message %d out of order: got %v", i, m.Data)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sender.FaultsInjected() != 0 {
		t.Errorf("benign plan injected %d faults", sender.FaultsInjected())
	}
}

func TestChaosCrashIsInjectedAndPeerSeesDown(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	plan := NewPlan(0)
	plan.CrashRank = 0
	plan.CrashAfter = 3
	c := NewChaos(eps[0], plan)
	for i := 0; i < 2; i++ {
		if err := c.Send(1, 1, nil); err != nil {
			t.Fatalf("send %d before crash: %v", i, err)
		}
	}
	if err := c.Send(1, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash send: got %v, want ErrInjected", err)
	}
	// Every later send fails the same way: the rank is dead.
	if err := c.Send(1, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash send: got %v", err)
	}
	// The peer sees the loss as ErrPeerDown, not a hang.
	if _, err := eps[1].Recv(99); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("peer recv: got %v, want ErrPeerDown", err)
	}
	if c.FaultsInjected() != 1 {
		t.Errorf("faults = %d, want 1", c.FaultsInjected())
	}
}

func TestChaosCorruptPoisonsProcReceiver(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	plan := NewPlan(0)
	plan.CorruptRank = 0
	plan.CorruptAfter = 1
	c := NewChaos(eps[0], plan)
	if err := c.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].Recv(1); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("recv after corruption: got %v, want ErrCorruptFrame", err)
	}
}

func TestChaosDropDownsBothEnds(t *testing.T) {
	eps, err := NewProcGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	plan := NewPlan(0)
	plan.DropRank = 0
	plan.DropPeer = 2
	plan.DropAfter = 1
	c := NewChaos(eps[0], plan)
	if err := c.Send(1, 1, nil); err != nil {
		t.Fatal(err) // the send itself goes to rank 1; the 0–2 link dies
	}
	if _, err := c.Recv(5); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("dropper recv: got %v, want ErrPeerDown", err)
	}
	if _, err := eps[2].Recv(5); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("dropped peer recv: got %v, want ErrPeerDown", err)
	}
	// Rank 1 is not on the dropped link and keeps working.
	if err := eps[1].Send(1, 3, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if m, err := eps[1].Recv(3); err != nil || string(m.Data) != "self" {
		t.Fatalf("bystander traffic: %v %q", err, m.Data)
	}
}

func TestAbortPoisonsAllReceives(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	if err := eps[0].SendAbort(1, []byte("record")); err != nil {
		t.Fatal(err)
	}
	var ab *Aborted
	_, err = eps[1].Recv(1)
	if !errors.As(err, &ab) {
		t.Fatalf("recv: got %v, want *Aborted", err)
	}
	if ab.From != 0 || string(ab.Payload) != "record" {
		t.Errorf("abort record: %+v", ab)
	}
	// Poison is sticky: selective and non-blocking receives fail too.
	if _, err := eps[1].RecvMatch(func(int) bool { return true }); !errors.As(err, &ab) {
		t.Errorf("RecvMatch: %v", err)
	}
	if _, _, err := eps[1].TryRecvMatch(func(int) bool { return true }); !errors.As(err, &ab) {
		t.Errorf("TryRecvMatch: %v", err)
	}
	// A rank's own Close still reads as ErrClosed, not an abort.
	eps[0].Close()
	if _, err := eps[0].Recv(1); !errors.Is(err, ErrClosed) {
		t.Errorf("own close: %v", err)
	}
}

func TestProcPeerCloseSurfacesAsPeerDown(t *testing.T) {
	eps, err := NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	recvErr := make(chan error, 1)
	go func() {
		defer close(recvErr)
		_, err := eps[0].Recv(1)
		recvErr <- err
	}()
	<-eps[0].mbox.awaitWaiters(1)
	eps[1].Close()
	var pd *PeerDownError
	err = <-recvErr
	if !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("recv after peer close: got %v, want PeerDownError{Rank: 1}", err)
	}
	// Sends toward the dead peer also report peer-down now.
	if err := eps[0].Send(1, 1, nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to dead peer: got %v, want ErrPeerDown", err)
	}
}

// tcpGroupWith is tcpGroup with per-rank config control, for the
// failure-detection tests that need deadlines and heartbeats.
func tcpGroupWith(t *testing.T, np int, mod func(r int, cfg *TCPConfig)) []*Endpoint {
	t.Helper()
	addrs := freeAddrs(t, np)
	eps := make([]*Endpoint, np)
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second}
			if mod != nil {
				mod(r, &cfg)
			}
			e, err := NewTCP(cfg)
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				return
			}
			eps[r] = e
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	t.Cleanup(func() { CloseGroup(eps) })
	return eps
}

func TestTCPCorruptFrameDetectedByCRC(t *testing.T) {
	eps := tcpGroupWith(t, 2, nil)
	plan := NewPlan(0)
	plan.CorruptRank = 0
	plan.CorruptAfter = 2
	c := NewChaos(eps[0], plan)
	if err := c.Send(1, 1, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if m, err := eps[1].Recv(1); err != nil || string(m.Data) != "clean" {
		t.Fatalf("clean frame: %v %q", err, m.Data)
	}
	if err := c.Send(1, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	var cf *CorruptFrameError
	_, err := eps[1].Recv(1)
	if !errors.As(err, &cf) || cf.From != 0 {
		t.Fatalf("corrupt frame: got %v, want CorruptFrameError{From: 0}", err)
	}
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("sentinel match failed: %v", err)
	}
}

func TestTCPPeerCloseSurfacesAsPeerDown(t *testing.T) {
	eps := tcpGroupWith(t, 2, nil)
	recvErr := make(chan error, 1)
	go func() {
		defer close(recvErr)
		_, err := eps[0].Recv(1)
		recvErr <- err
	}()
	<-eps[0].mbox.awaitWaiters(1)
	eps[1].Close()
	select {
	case err := <-recvErr:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Rank != 1 {
			t.Fatalf("recv after peer close: got %v, want PeerDownError{Rank: 1}", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer death not detected within deadline")
	}
}

func TestTCPHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	const timeout = 300 * time.Millisecond
	eps := tcpGroupWith(t, 2, func(r int, cfg *TCPConfig) {
		cfg.PeerTimeout = timeout
	})
	// Stay idle for several timeout windows; heartbeats must keep both
	// links open the whole time.
	<-time.After(3 * timeout)
	if err := eps[0].Send(1, 9, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if m, err := eps[1].Recv(9); err != nil || string(m.Data) != "still here" {
		t.Fatalf("after idle window: %v %q", err, m.Data)
	}
}

func TestTCPSilentPeerTimesOutAsPeerDown(t *testing.T) {
	const timeout = 250 * time.Millisecond
	// Rank 0 enforces a deadline; rank 1 never heartbeats (PeerTimeout
	// zero), simulating a peer that is connected but wedged.
	eps := tcpGroupWith(t, 2, func(r int, cfg *TCPConfig) {
		if r == 0 {
			cfg.PeerTimeout = timeout
		}
	})
	recvErr := make(chan error, 1)
	go func() {
		defer close(recvErr)
		_, err := eps[0].Recv(1)
		recvErr <- err
	}()
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("got %v, want ErrPeerDown", err)
		}
	case <-time.After(10 * timeout):
		t.Fatal("silent peer not declared down within deadline")
	}
}

func TestTCPChaosDropSeversLink(t *testing.T) {
	eps := tcpGroupWith(t, 2, nil)
	plan := NewPlan(0)
	plan.DropRank = 0
	plan.DropPeer = 1
	plan.DropAfter = 1
	c := NewChaos(eps[0], plan)
	c.Send(1, 1, nil) // the drop fires here; the frame may or may not land
	// Rank 1's reader sees EOF on the severed link.
	if _, err := eps[1].Recv(42); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("dropped peer recv: got %v, want ErrPeerDown", err)
	}
}
