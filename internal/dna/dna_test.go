package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseRoundTrip(t *testing.T) {
	for b := Base(0); b < NumBases; b++ {
		got, ok := FromByte(b.Byte())
		if !ok || got != b {
			t.Errorf("FromByte(%q) = %v, %v; want %v, true", b.Byte(), got, ok, b)
		}
	}
}

func TestFromByteLowerCase(t *testing.T) {
	for i, c := range []byte{'a', 'c', 'g', 't'} {
		got, ok := FromByte(c)
		if !ok || got != Base(i) {
			t.Errorf("FromByte(%q) = %v, %v; want %v, true", c, got, ok, Base(i))
		}
	}
}

func TestFromByteInvalid(t *testing.T) {
	for _, c := range []byte{'N', 'n', 'X', '-', ' ', 0, 255} {
		if _, ok := FromByte(c); ok {
			t.Errorf("FromByte(%q) accepted an invalid base", c)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
		if got := b.Complement().Complement(); got != b {
			t.Errorf("double complement of %v = %v", b, got)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	in := []byte("ACGTACGTTTGGCCAA")
	enc, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Decode(enc); !bytes.Equal(got, in) {
		t.Errorf("Decode(Encode(%q)) = %q", in, got)
	}
}

func TestEncodeError(t *testing.T) {
	_, err := Encode([]byte("ACGNT"))
	if err == nil {
		t.Fatal("Encode accepted N")
	}
}

func TestEncodeLossy(t *testing.T) {
	got := EncodeLossy([]byte("ACNNGT"), A)
	want := []Base{A, C, A, A, G, T}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EncodeLossy = %v, want %v", got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	seq := MustEncode("AACGT")
	rc := ReverseComplement(seq)
	if s := DecodeString(rc); s != "ACGTT" {
		t.Errorf("ReverseComplement(AACGT) = %s, want ACGTT", s)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]Base, len(raw))
		for i, r := range raw {
			seq[i] = Base(r % NumBases)
		}
		back := ReverseComplement(ReverseComplement(seq))
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHamming(t *testing.T) {
	a := MustEncode("ACGTA")
	b := MustEncode("ACCTT")
	if d := Hamming(a, b); d != 2 {
		t.Errorf("Hamming = %d, want 2", d)
	}
	if d := Hamming(a, a); d != 0 {
		t.Errorf("Hamming(a,a) = %d, want 0", d)
	}
}

func TestHammingPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hamming did not panic on unequal lengths")
		}
	}()
	Hamming(MustEncode("ACG"), MustEncode("AC"))
}

func TestFormat(t *testing.T) {
	seq := MustEncode("ACGTACGT")
	if got := Format(seq, 4); got != "ACGT ACGT" {
		t.Errorf("Format = %q", got)
	}
	if got := Format(seq, 0); got != "ACGTACGT" {
		t.Errorf("Format(group=0) = %q", got)
	}
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 5, 63, 64, 65, 1000} {
		seq := make([]Base, n)
		for i := range seq {
			seq[i] = Base(rng.Intn(NumBases))
		}
		p := NewPacked(seq)
		if p.Len() != n {
			t.Fatalf("Len = %d, want %d", p.Len(), n)
		}
		got := p.Unpack()
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("n=%d: Unpack[%d] = %v, want %v", n, i, got[i], seq[i])
			}
		}
	}
}

func TestPackedSet(t *testing.T) {
	p := NewPacked(MustEncode("AAAA"))
	p.Set(2, T)
	if s := DecodeString(p.Unpack()); s != "AATA" {
		t.Errorf("after Set: %s, want AATA", s)
	}
	p.Set(2, C)
	if s := DecodeString(p.Unpack()); s != "AACA" {
		t.Errorf("after second Set: %s, want AACA", s)
	}
}

func TestPackedSlice(t *testing.T) {
	p := NewPacked(MustEncode("ACGTACGT"))
	dst := make([]Base, 4)
	p.Slice(dst, 2, 6)
	if s := DecodeString(dst); s != "GTAC" {
		t.Errorf("Slice = %s, want GTAC", s)
	}
}

func TestPackedBounds(t *testing.T) {
	p := NewPacked(MustEncode("ACGT"))
	for name, f := range map[string]func(){
		"At":    func() { p.At(4) },
		"AtNeg": func() { p.At(-1) },
		"Set":   func() { p.Set(4, A) },
		"Slice": func() { p.Slice(make([]Base, 2), 3, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic out of range", name)
				}
			}()
			f()
		}()
	}
}

func TestPackedMemBytes(t *testing.T) {
	p := NewPacked(make([]Base, 4000))
	if got := p.MemBytes(); got < 1000 || got > 1100 {
		t.Errorf("MemBytes = %d, want ~1016", got)
	}
}
