// Command reptile-validate checks that a fasta + quality pair is
// well-formed for the parallel reader (strictly ascending numeric headers,
// matching sequence numbers and lengths across the two files, sane quality
// values) and prints dataset statistics.
//
//	reptile-validate -fasta ds.fa -qual ds.qual
//
// Exit status 0 means the pair is safe to feed to reptile-correct at any
// rank count.
package main

import (
	"flag"
	"fmt"
	"os"

	"reptile/internal/fastaio"
)

func main() {
	fasta := flag.String("fasta", "", "fasta file")
	qual := flag.String("qual", "", "quality file")
	flag.Parse()
	if *fasta == "" || *qual == "" {
		fmt.Fprintln(os.Stderr, "reptile-validate: -fasta and -qual are required")
		os.Exit(2)
	}
	rep, err := fastaio.ValidatePair(*fasta, *qual)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reptile-validate: INVALID: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("valid: %v\n", rep)
	if rep.NonACGT > 0 {
		fmt.Printf("note: %d non-ACGT characters will be mapped to A during correction\n", rep.NonACGT)
	}
	if rep.FirstSeq != 1 {
		fmt.Printf("note: numbering starts at %d (the reader only requires ascending order)\n", rep.FirstSeq)
	}
}
