// Command reptile-correct runs the distributed corrector over a fasta +
// quality file pair and writes the corrected reads.
//
// Single process, goroutine ranks (default):
//
//	reptile-correct -fasta ds.fa -qual ds.qual -np 16 -out corrected
//
// One process per rank over TCP (run once per rank, shared -addrs list):
//
//	reptile-correct -fasta ds.fa -qual ds.qual -transport tcp \
//	    -rank 0 -addrs host0:9000,host1:9000 -out corrected
//
// Heuristics mirror the paper's Section III-B flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"reptile/internal/config"
	"reptile/internal/core"
	"reptile/internal/fastaio"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/snapshot"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

func main() {
	var (
		configPath = flag.String("config", "", "run-configuration file (paper-style); overrides the other flags")
		dumpConfig = flag.Bool("dump-config", false, "print the default configuration file and exit")

		fasta = flag.String("fasta", "", "input fasta file (headers = sequence numbers)")
		qual  = flag.String("qual", "", "input quality-score file")
		out   = flag.String("out", "corrected", "output prefix (<out>.fa, <out>.qual)")
		np    = flag.Int("np", 8, "number of ranks (proc transport)")

		k         = flag.Int("k", 12, "k-mer length")
		overlap   = flag.Int("overlap", 4, "tile overlap in bases")
		kmerThr   = flag.Uint("kmer-threshold", 6, "k-mer solidity threshold")
		tileThr   = flag.Uint("tile-threshold", 3, "tile solidity threshold")
		chunk     = flag.Int("chunk", 4096, "reads per processing chunk")
		noBalance = flag.Bool("no-balance", false, "disable static load balancing")

		universal = flag.Bool("universal", false, "universal (self-describing) request messages")
		readKmers = flag.Bool("read-kmers", false, "retain read k-mer/tile tables with global counts")
		cache     = flag.Bool("cache-remote", false, "cache remote lookups (implies -read-kmers)")
		replKmers = flag.Bool("replicate-kmers", false, "replicate the k-mer spectrum on every rank")
		replTiles = flag.Bool("replicate-tiles", false, "replicate the tile spectrum on every rank")
		batch     = flag.Bool("batch-reads", false, "exchange spectra after every chunk (bounded reads tables)")
		partial   = flag.Int("partial-replication", 0, "partial replication group size (0 = off)")

		lookupBatch  = flag.Int("lookup-batch", 0, "coalesce up to this many remote lookups per request frame (0 = classic one-per-message protocol; output is identical either way)")
		lookupWindow = flag.Int("lookup-window", 0, "in-flight batch frames per peer (0 = default window when -lookup-batch is on)")
		workers      = flag.Int("workers", 0, "worker goroutines per rank, for both spectrum-build sharding and the correction pool (0/1 = single worker; >1 requires -lookup-batch; output is identical for every count)")
		replicas     = flag.Int("replicas", 0, "frozen-spectrum replication degree: 2 places each rank's shard on its ring successor too, so a single rank crash during correction is survived instead of aborting (implies -lookup-batch 16 unless set)")
		steal        = flag.Bool("steal", false, "correct-phase work stealing: idle ranks take whole chunks from loaded peers, output stays byte-identical (implies -lookup-batch 16 unless set)")

		stream      = flag.Bool("stream", false, "streaming mode: never hold reads whole; write per-rank outputs incrementally (proc transport)")
		corrections = flag.String("corrections", "", "also write the list of applied substitutions (seq, pos, from, to) to this file (proc non-streaming mode)")

		cacheDir = flag.String("cache-dir", "", "spectrum-snapshot cache directory: reuse frozen spectra across runs keyed by input content and parameters; a miss builds and publishes, a hit skips construction")
		snapPath = flag.String("snapshot", "", "explicit spectrum-snapshot prefix (<prefix>.r<rank>.rsnap): load if present and matching, else build and save there (mutually exclusive with -cache-dir)")

		transportName = flag.String("transport", "proc", "proc (goroutine ranks) or tcp (one process per rank)")
		rank          = flag.Int("rank", 0, "this process's rank (tcp transport)")
		addrs         = flag.String("addrs", "", "comma-separated rank addresses (tcp transport)")
		deadline      = flag.Duration("deadline", 0, "peer-failure detection window (tcp transport): a silent peer surfaces as an error within this; 0 disables deadlines and heartbeats")
		chaosSpec     = flag.String("chaos", "", "fault schedule to inject, e.g. delay=2ms,jitter=1ms,slow=1x4,crash=2@100,corrupt=1@50,drop=0-1@30")
		chaosSeed     = flag.Int64("chaos-seed", 1, "seed for the fault schedule's jitter stream")
		verbose       = flag.Bool("v", false, "print per-rank statistics")
	)
	flag.Parse()

	if *dumpConfig {
		fmt.Print(config.Default().Render())
		return
	}
	if *configPath != "" {
		settings, err := config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		if settings.FastaPath == "" || settings.QualPath == "" {
			fatal(fmt.Errorf("%s: fasta and qual are required", *configPath))
		}
		src := &core.FileSource{FastaPath: settings.FastaPath, QualPath: settings.QualPath}
		if err := resolveSnapshotDigest(&settings.Options, settings.FastaPath, settings.QualPath); err != nil {
			fatal(err)
		}
		start := time.Now()
		if settings.Streaming {
			runStreaming(src, settings.Ranks, settings.Options, settings.OutPrefix, *verbose)
		} else {
			runProc(src, settings.Ranks, settings.Options, settings.OutPrefix, *verbose)
		}
		fmt.Printf("total wall time %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *fasta == "" || *qual == "" {
		fmt.Fprintln(os.Stderr, "reptile-correct: -fasta and -qual are required")
		os.Exit(2)
	}
	cfg := reptile.Default()
	cfg.Spec.K = *k
	cfg.Spec.Overlap = *overlap
	cfg.KmerThreshold = uint32(*kmerThr)
	cfg.TileThreshold = uint32(*tileThr)
	cfg.ChunkReads = *chunk
	opts := core.Options{
		Config: cfg,
		Heuristics: core.Heuristics{
			Universal:               *universal,
			RetainReadKmers:         *readKmers || *cache,
			CacheRemote:             *cache,
			ReplicateKmers:          *replKmers,
			ReplicateTiles:          *replTiles,
			BatchReads:              *batch,
			PartialReplicationGroup: *partial,
			LookupBatch:             *lookupBatch,
			LookupWindow:            *lookupWindow,
			Workers:                 *workers,
		},
		LoadBalance: !*noBalance,
		Replicas:    *replicas,
		WorkSteal:   *steal,
	}
	// Both recovery features ride the batched-lookup pipeline; turn it on at
	// a sane default rather than making every invocation spell it out.
	if (*replicas >= 2 || *steal) && opts.Heuristics.LookupBatch == 0 {
		opts.Heuristics.LookupBatch = 16
	}
	if *cacheDir != "" || *snapPath != "" {
		opts.Snapshot = &core.SnapshotOptions{Dir: *cacheDir, Path: *snapPath}
	}
	if err := resolveSnapshotDigest(&opts, *fasta, *qual); err != nil {
		fatal(err)
	}
	if *chaosSpec != "" {
		plan, err := transport.ParsePlan(*chaosSpec, *chaosSeed)
		if err != nil {
			fatal(err)
		}
		opts.Chaos = &plan
	}
	src := &core.FileSource{FastaPath: *fasta, QualPath: *qual}

	start := time.Now()
	switch *transportName {
	case "proc":
		if *stream {
			runStreaming(src, *np, opts, *out, *verbose)
			break
		}
		runProcWithCorrections(src, *np, opts, *out, *corrections, *verbose)
	case "tcp":
		runTCP(src, opts, *rank, strings.Split(*addrs, ","), *deadline, *out, *verbose)
	default:
		fmt.Fprintf(os.Stderr, "reptile-correct: unknown transport %q\n", *transportName)
		os.Exit(2)
	}
	fmt.Printf("total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// resolveSnapshotDigest fills the cache-mode input digest from the run's
// input files. The digest is content-addressed — touching the files without
// changing their bytes keeps the cache entry valid, editing them invalidates
// it. Explicit prefix mode needs no digest (the path is the identity).
func resolveSnapshotDigest(opts *core.Options, fasta, qual string) error {
	if opts.Snapshot == nil || opts.Snapshot.Dir == "" || opts.Snapshot.InputDigest != "" {
		return nil
	}
	digest, err := snapshot.DigestFiles(fasta, qual)
	if err != nil {
		return fmt.Errorf("hashing input for the snapshot cache: %w", err)
	}
	opts.Snapshot.InputDigest = digest
	return nil
}

func runProc(src core.Source, np int, opts core.Options, out string, verbose bool) {
	runProcWithCorrections(src, np, opts, out, "", verbose)
}

func runProcWithCorrections(src core.Source, np int, opts core.Options, out, correctionsPath string, verbose bool) {
	output, err := core.Run(src, np, opts)
	if err != nil {
		fatal(err)
	}
	corrected := output.Corrected()
	writeOutput(out, corrected)
	if correctionsPath != "" {
		// Re-read the originals to diff against; the engine does not keep
		// them (the corrected copies replaced the shard in place).
		orig, err := readWholeInput(src, np)
		if err != nil {
			fatal(err)
		}
		cs, err := reads.Diff(orig, corrected)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(correctionsPath)
		if err != nil {
			fatal(err)
		}
		if err := reads.WriteCorrections(f, cs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("corrections list: %s (%d substitutions)\n", correctionsPath, len(cs))
	}
	fmt.Printf("ranks %d | reads %d | bases corrected %d | reads changed %d\n",
		np, output.Result.ReadsProcessed, output.Result.BasesCorrected, output.Result.ReadsChanged)
	// The snapshot probe replaces the build on a hit, so it belongs in the
	// construction total either way.
	fmt.Printf("k-mer construction %v | error correction %v\n",
		(output.Run.Wall[stats.PhaseRead] + output.Run.Wall[stats.PhaseBalance] +
			output.Run.Wall[stats.PhaseSnapshot] +
			output.Run.Wall[stats.PhaseSpectrum] + output.Run.Wall[stats.PhaseExchange]).Round(time.Millisecond),
		output.Run.Wall[stats.PhaseCorrect].Round(time.Millisecond))
	if line := snapshotSummary(output.Run.Ranks); line != "" {
		fmt.Println(line)
	}
	if verbose {
		recovered := make(map[int]bool)
		for _, r := range output.Run.Ranks {
			for _, d := range r.RecoveredRanks {
				recovered[d] = true
			}
		}
		for i, r := range output.Run.Ranks {
			// A crashed-and-recovered rank returned nothing; its counter slot
			// is the zero value, not a real measurement.
			if recovered[i] && r.ReadBases == 0 {
				fmt.Printf("rank %3d: (crashed; shard and reads recovered by peers)\n", i)
				continue
			}
			fmt.Printf("rank %3d: reads=%d kmers=%d tiles=%d remote=%d served=%d corrected=%d faults=%d mem=%.1fMiB\n",
				i, r.ReadsAssigned, r.OwnedKmers, r.OwnedTiles,
				r.TotalRemoteLookups(), r.RequestsServed, r.BasesCorrected,
				r.FaultsInjected, float64(r.PeakMemBytes)/(1<<20))
			if r.BatchesSent > 0 {
				fmt.Printf("          batches=%d ids/batch=%.1f workers=%d\n",
					r.BatchesSent, r.LookupsPerBatch(), r.WorkerCount)
			}
			if line := recoveryLine(r); line != "" {
				fmt.Printf("          recovery: %s\n", line)
			}
			if line := snapshotLine(r); line != "" {
				fmt.Printf("          snapshot: %s\n", line)
			}
			fmt.Printf("          phase-mem: %s\n", phaseMemLine(r))
		}
	}
}

// snapshotSummary condenses the run's cache outcome into one line, empty
// when the run had no snapshot configured.
func snapshotSummary(ranks []stats.Rank) string {
	var hits, misses, saves, read, written int64
	for i := range ranks {
		hits += ranks[i].SnapshotHits
		misses += ranks[i].SnapshotMisses
		saves += ranks[i].SnapshotSaves
		read += ranks[i].SnapshotBytesRead
		written += ranks[i].SnapshotBytesWritten
	}
	switch {
	case hits == 0 && misses == 0:
		return ""
	case misses == 0:
		return fmt.Sprintf("spectrum snapshot: hit on all %d ranks (%.1f MiB loaded, build skipped)",
			hits, float64(read)/(1<<20))
	default:
		return fmt.Sprintf("spectrum snapshot: miss (%d/%d ranks), built and saved %.1f MiB",
			misses, hits+misses, float64(written)/(1<<20))
	}
}

// snapshotLine formats one rank's cache counters for -v, empty when the run
// had no snapshot configured.
func snapshotLine(r stats.Rank) string {
	if r.SnapshotHits == 0 && r.SnapshotMisses == 0 {
		return ""
	}
	return fmt.Sprintf("hits=%d misses=%d saves=%d read=%.1fMiB written=%.1fMiB",
		r.SnapshotHits, r.SnapshotMisses, r.SnapshotSaves,
		float64(r.SnapshotBytesRead)/(1<<20), float64(r.SnapshotBytesWritten)/(1<<20))
}

// phaseMemLine formats the table footprint observed at each pipeline-step
// exit; phases the engine did not run (read/balance under streaming) are
// omitted rather than printed as zero.
func phaseMemLine(r stats.Rank) string {
	var b strings.Builder
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		if r.PhaseMem[p] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fMiB", p, float64(r.PhaseMem[p])/(1<<20))
	}
	if b.Len() == 0 {
		return "(none recorded)"
	}
	return b.String()
}

// recoveryLine formats a rank's recovered-fault counters, empty when the
// run saw no failover, re-replication, stealing, or estate work — the
// common case, which should not widen the -v output.
func recoveryLine(r stats.Rank) string {
	if r.FailoversTaken == 0 && r.ShardsRereplicated == 0 && r.ChunksStolen == 0 &&
		r.ChunksLent == 0 && r.ReadsRecovered == 0 && len(r.RecoveredRanks) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "failovers=%d reshards=%d stolen=%d lent=%d estate-reads=%d",
		r.FailoversTaken, r.ShardsRereplicated, r.ChunksStolen, r.ChunksLent, r.ReadsRecovered)
	if len(r.RecoveredRanks) > 0 {
		fmt.Fprintf(&b, " recovered-ranks=%v", r.RecoveredRanks)
	}
	return b.String()
}

func runStreaming(src core.Source, np int, opts core.Options, out string, verbose bool) {
	factory := func(rank int) (core.Sink, error) {
		return core.NewFileSink(fmt.Sprintf("%s.rank%d", out, rank))
	}
	output, err := core.RunStreaming(src, np, opts, factory)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ranks %d (streaming) | reads %d | bases corrected %d | reads changed %d\n",
		np, output.Result.ReadsProcessed, output.Result.BasesCorrected, output.Result.ReadsChanged)
	fmt.Printf("outputs: %s.rank*.fa / .qual\n", out)
	if line := snapshotSummary(output.Run.Ranks); line != "" {
		fmt.Println(line)
	}
	if verbose {
		for _, r := range output.Run.Ranks {
			fmt.Printf("rank %3d: reads=%d remote=%d served=%d corrected=%d peak-mem=%.1fMiB\n",
				r.Rank, r.ReadsAssigned, r.TotalRemoteLookups(), r.RequestsServed,
				r.BasesCorrected, float64(r.PeakMemBytes)/(1<<20))
			fmt.Printf("          phase-mem: %s\n", phaseMemLine(r))
		}
	}
}

func runTCP(src core.Source, opts core.Options, rank int, addrs []string, deadline time.Duration, out string, verbose bool) {
	if len(addrs) < 2 {
		fatal(fmt.Errorf("tcp transport needs -addrs with at least two entries"))
	}
	e, err := transport.NewTCP(transport.TCPConfig{Rank: rank, Addrs: addrs, PeerTimeout: deadline})
	if err != nil {
		fatal(err)
	}
	defer e.Close()
	var conn transport.Conn = e
	if opts.Chaos != nil {
		if err := opts.Chaos.Validate(len(addrs)); err != nil {
			fatal(err)
		}
		conn = transport.NewChaos(e, *opts.Chaos)
	}
	ro, err := core.RunRank(conn, src, opts)
	if err != nil {
		fatal(err)
	}
	writeOutput(fmt.Sprintf("%s.rank%d", out, rank), ro.Corrected)
	fmt.Printf("rank %d: reads=%d corrected=%d remote=%d served=%d\n",
		rank, ro.Stats.ReadsAssigned, ro.Result.BasesCorrected,
		ro.Stats.TotalRemoteLookups(), ro.Stats.RequestsServed)
	if verbose {
		fmt.Printf("rank %d wall: read=%v balance=%v snapshot=%v spectrum=%v exchange=%v correct=%v\n",
			rank, ro.Stats.Wall[stats.PhaseRead], ro.Stats.Wall[stats.PhaseBalance],
			ro.Stats.Wall[stats.PhaseSnapshot],
			ro.Stats.Wall[stats.PhaseSpectrum], ro.Stats.Wall[stats.PhaseExchange],
			ro.Stats.Wall[stats.PhaseCorrect])
		fmt.Printf("rank %d phase-mem: %s\n", rank, phaseMemLine(ro.Stats))
		if line := recoveryLine(ro.Stats); line != "" {
			fmt.Printf("rank %d recovery: %s\n", rank, line)
		}
		if line := snapshotLine(ro.Stats); line != "" {
			fmt.Printf("rank %d snapshot: %s\n", rank, line)
		}
	}
}

// readWholeInput drains every shard of the source (rank by rank) into one
// slice, for the corrections diff.
func readWholeInput(src core.Source, np int) ([]reads.Read, error) {
	var all []reads.Read
	for rank := 0; rank < np; rank++ {
		br, err := src.Open(rank, np, 4096)
		if err != nil {
			return nil, err
		}
		for {
			batch, err := br.NextBatch()
			if err != nil {
				break
			}
			all = append(all, batch...)
		}
		br.Close()
	}
	return all, nil
}

func writeOutput(prefix string, batch []reads.Read) {
	fa, err := os.Create(prefix + ".fa")
	if err != nil {
		fatal(err)
	}
	defer fa.Close()
	if err := fastaio.WriteFasta(fa, batch); err != nil {
		fatal(err)
	}
	qf, err := os.Create(prefix + ".qual")
	if err != nil {
		fatal(err)
	}
	defer qf.Close()
	if err := fastaio.WriteQual(qf, batch); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	var ab *core.AbortError
	if errors.As(err, &ab) {
		fmt.Fprintf(os.Stderr, "reptile-correct: run aborted\n  origin rank: %d\n  phase:       %s\n  cause:       %s\n", ab.Rank, ab.Phase, ab.Cause)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "reptile-correct: %v\n", err)
	os.Exit(1)
}
