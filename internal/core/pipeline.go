package core

import (
	"time"

	"reptile/internal/collective"
	"reptile/internal/reptile"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// phaseStep is one declarative stage of the rank pipeline. run does the
// phase's work; after, when set, is an observation hook that fires only on
// success, inside the phase's wall-time window (freeze-point snapshots
// belong to the phase that produced them).
type phaseStep struct {
	phase stats.Phase
	run   func(ctx *rankCtx) error
	after func(ctx *rankCtx)
}

// runRankPipeline executes one rank's pipeline over a declarative step
// list — the single driver behind both RunRank and RunRankStreaming. It
// owns everything the two engines used to duplicate: options validation,
// context construction, per-phase wall timing, the abort-on-failure edge
// (ctx.fail with the phase's canonical name), per-phase memory observation,
// and the closing stats epilogue. The engines differ only in which steps
// they pass.
func runRankPipeline(e transport.Conn, opts Options, steps []phaseStep) (*RankOutput, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ctx := &rankCtx{
		e:    e,
		comm: collective.New(e),
		opts: opts,
		rank: e.Rank(),
		np:   e.Size(),
	}
	ctx.st.Rank = ctx.rank

	for _, s := range steps {
		// Tell phase-aware wrappers (the chaos layer's crash-at-phase
		// trigger) which phase is entering; plain endpoints don't care.
		if ep, ok := e.(interface{ EnterPhase(string) }); ok {
			ep.EnterPhase(s.phase.String())
		}
		start := time.Now()
		err := s.run(ctx)
		if err == nil && s.after != nil {
			s.after(ctx)
		}
		ctx.st.Wall[s.phase] += time.Since(start)
		if err != nil {
			return nil, ctx.fail(s.phase.String(), err)
		}
		ctx.st.PhaseMem[s.phase] = ctx.currentMem()
		ctx.observeMem()
	}

	ctx.st.BasesCorrected = ctx.res.BasesCorrected
	ctx.st.ReadsChanged = ctx.res.ReadsChanged
	ctx.st.MsgsSent = e.Counters().MsgsSent()
	ctx.st.BytesSent = e.Counters().BytesSent()
	ctx.st.MaxInboxDepth = int64(e.MaxQueueDepth())
	ctx.observeFaults()
	return &RankOutput{Corrected: ctx.myReads, Stats: ctx.st, Result: ctx.res}, nil
}

// afterConstruct snapshots the table footprint at the second freeze point —
// the end of the post-construction exchanges — for the paper's
// memory-scaling comparison.
func afterConstruct(ctx *rankCtx) {
	ctx.st.MemAfterConstruct = ctx.currentMem()
}

// snapshotStep inserts the snapshot-cache probe ahead of the build steps
// when the run is configured for it. The step exists only then: a run
// without Options.Snapshot has no snapshot phase at all (its wall time and
// footprint stay zero), so the phase list is still declarative evidence of
// what the rank actually did.
func snapshotStep(opts Options, steps []phaseStep) []phaseStep {
	if opts.Snapshot == nil {
		return steps
	}
	return append([]phaseStep{{phase: stats.PhaseSnapshot, run: (*rankCtx).snapshotPhase}}, steps...)
}

// batchSteps is the in-memory engine: the paper's five steps, each read
// held resident from the read phase through correction, with the snapshot
// probe spliced ahead of the build when the run is configured for it.
func batchSteps(src Source, opts Options) []phaseStep {
	return append([]phaseStep{
		{phase: stats.PhaseRead, run: func(ctx *rankCtx) error { return ctx.readPhase(src) }},
		{phase: stats.PhaseBalance, run: (*rankCtx).balancePhase},
	}, snapshotStep(opts, []phaseStep{
		{phase: stats.PhaseSpectrum, run: (*rankCtx).spectrumPhase},
		{phase: stats.PhaseExchange, run: (*rankCtx).postExchangePhase, after: afterConstruct},
		{phase: stats.PhaseCorrect, run: func(ctx *rankCtx) error {
			res, err := ctx.correctDriver(func(disp *lookupDispatcher) (reptile.Result, error) {
				return ctx.correctPool(ctx.myReads, disp)
			})
			ctx.res = res
			return err
		}},
	})...)
}

// streamingSteps is the low-memory engine: no read or balance phase up
// front (the source is traversed inside the spectrum and correct steps,
// one chunk at a time), and the correct step loops balanced chunks through
// the same worker pool, writing each to the sink. A snapshot hit skips the
// build's whole first source traversal.
func streamingSteps(src Source, sink Sink, opts Options) []phaseStep {
	return snapshotStep(opts, []phaseStep{
		{phase: stats.PhaseSpectrum, run: func(ctx *rankCtx) error { return ctx.spectrumPassStreaming(src) }},
		{phase: stats.PhaseExchange, run: (*rankCtx).postExchangePhase, after: afterConstruct},
		{phase: stats.PhaseCorrect, run: func(ctx *rankCtx) error {
			res, err := ctx.correctDriver(func(disp *lookupDispatcher) (reptile.Result, error) {
				return ctx.correctStreamLoop(src, sink, disp)
			})
			ctx.res = res
			return err
		}},
	})
}
