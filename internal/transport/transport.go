// Package transport is the message-passing substrate the distributed
// Reptile engine runs on — the stand-in for MPI on BlueGene/Q, built from
// scratch on the standard library as the paper's algorithm requires only a
// small slice of MPI semantics:
//
//   - tagged point-to-point sends with per-(sender,tag) FIFO ordering,
//   - selective receive by tag (the MPI_Probe + tagged-recv pattern) and
//     receive-any (the paper's "universal" heuristic),
//   - and collectives (package collective) layered on top.
//
// Two transports implement the same Endpoint surface: proc (ranks are
// goroutines in one process, delivery over in-memory mailboxes) and tcp
// (one process per rank, full-mesh length-prefixed frames over net).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrPeerDown is the sentinel matched (errors.Is) by every failure that
// means "a remote rank is gone": a TCP connection reset or EOF, a read
// deadline expiring with no frames (not even heartbeats), or a peer
// process/goroutine that closed its endpoint mid-run.
var ErrPeerDown = errors.New("transport: peer down")

// ErrCorruptFrame is the sentinel matched (errors.Is) by frame-integrity
// failures: a TCP frame whose CRC32 does not cover its bytes is dropped and
// surfaces as this error instead of being decoded into garbage.
var ErrCorruptFrame = errors.New("transport: corrupt frame")

// ErrInjected marks errors manufactured by the Chaos wrapper (an injected
// rank crash), so tests can tell a scheduled fault from an organic one.
var ErrInjected = errors.New("transport: injected fault")

// PeerDownError reports which rank was lost and why. It matches ErrPeerDown
// under errors.Is.
type PeerDownError struct {
	Rank  int   // the rank that is unreachable
	Cause error // underlying network error, if any
}

func (e *PeerDownError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("transport: peer rank %d down: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("transport: peer rank %d down", e.Rank)
}

// Is reports sentinel identity so errors.Is(err, ErrPeerDown) matches.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// Unwrap exposes the underlying cause.
func (e *PeerDownError) Unwrap() error { return e.Cause }

// CorruptFrameError reports a frame from a specific peer that failed its
// CRC32 check. It matches ErrCorruptFrame under errors.Is.
type CorruptFrameError struct {
	From int // sender rank of the bad frame
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("transport: corrupt frame from rank %d (CRC mismatch)", e.From)
}

// Is reports sentinel identity so errors.Is(err, ErrCorruptFrame) matches.
func (e *CorruptFrameError) Is(target error) bool { return target == ErrCorruptFrame }

// Aborted is the error every pending and future receive returns after a
// peer broadcast a run-wide abort (SendAbort). Payload carries the
// application-level abort record opaque to the transport; package core
// decodes it into an AbortError.
type Aborted struct {
	From    int    // rank that originated the abort
	Payload []byte // application abort record
}

func (e *Aborted) Error() string {
	return fmt.Sprintf("transport: run aborted by rank %d", e.From)
}

// Conn is the endpoint surface the engine and the collectives program
// against. Both the concrete *Endpoint and the fault-injecting *Chaos
// wrapper implement it, so any layer of the stack can run unchanged under
// an injected fault schedule.
type Conn interface {
	Rank() int
	Size() int
	Counters() *Counters
	Send(to, tag int, data []byte) error
	SendAbort(to int, payload []byte) error
	Recv(tag int) (Message, error)
	RecvMatch(match func(tag int) bool) (Message, error)
	TryRecvMatch(match func(tag int) bool) (Message, bool, error)
	MaxQueueDepth() int
	SetPeerDownHandler(h func(rank int, cause error) bool)
	Close() error
}

var (
	_ Conn = (*Endpoint)(nil)
	_ Conn = (*Chaos)(nil)
)

// Control-plane tags, reserved far below the collective tag range (which
// counts down from -1, one tag per collective operation): a run would need
// ~2^30 collectives before colliding. They never reach application receive
// paths — deliver intercepts both.
const (
	tagAbort     = -1 << 30   // run-wide abort broadcast; poisons the mailbox
	tagHeartbeat = -1<<30 + 1 // keepalive on idle TCP links; dropped on arrival
)

// encodeAbort builds the abort control message carrying an opaque
// application abort record.
func encodeAbort(from int, payload []byte) Message {
	return Message{From: from, Tag: tagAbort, Data: payload}
}

// encodeHeartbeat builds the empty keepalive message that holds a TCP
// link's read deadline open while the application is idle.
func encodeHeartbeat(from int) Message {
	return Message{From: from, Tag: tagHeartbeat}
}

// Message is one delivered unit: the sender's rank, the application tag,
// and an owned payload.
type Message struct {
	From int
	Tag  int
	Data []byte
}

// Counters tracks per-endpoint traffic; the machine model converts these
// into projected network time. All methods are safe for concurrent use.
type Counters struct {
	msgsSent  atomic.Int64
	bytesSent atomic.Int64
	msgsRecv  atomic.Int64
	bytesRecv atomic.Int64
	perDest   []atomic.Int64 // messages per destination rank
	perDestB  []atomic.Int64 // bytes per destination rank
}

// NewCounters sizes the per-destination tallies for np ranks.
func NewCounters(np int) *Counters {
	return &Counters{
		perDest:  make([]atomic.Int64, np),
		perDestB: make([]atomic.Int64, np),
	}
}

func (c *Counters) countSend(to, bytes int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(bytes))
	c.perDest[to].Add(1)
	c.perDestB[to].Add(int64(bytes))
}

func (c *Counters) countRecv(bytes int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(bytes))
}

// MsgsSent returns the total messages sent.
func (c *Counters) MsgsSent() int64 { return c.msgsSent.Load() }

// BytesSent returns the total payload bytes sent.
func (c *Counters) BytesSent() int64 { return c.bytesSent.Load() }

// MsgsRecv returns the total messages received (delivered to a Recv).
func (c *Counters) MsgsRecv() int64 { return c.msgsRecv.Load() }

// BytesRecv returns the total payload bytes received.
func (c *Counters) BytesRecv() int64 { return c.bytesRecv.Load() }

// MsgsTo returns messages sent to a specific rank.
func (c *Counters) MsgsTo(rank int) int64 { return c.perDest[rank].Load() }

// BytesTo returns bytes sent to a specific rank.
func (c *Counters) BytesTo(rank int) int64 { return c.perDestB[rank].Load() }

// PerDestSnapshot copies the current per-destination tallies; engines take
// snapshots at phase boundaries to attribute traffic to phases.
func (c *Counters) PerDestSnapshot() (msgs, bytes []int64) {
	msgs = make([]int64, len(c.perDest))
	bytes = make([]int64, len(c.perDestB))
	for i := range c.perDest {
		msgs[i] = c.perDest[i].Load()
		bytes[i] = c.perDestB[i].Load()
	}
	return msgs, bytes
}

// Endpoint is one rank's connection to the group. It is safe for use by
// multiple goroutines (the paper runs a worker thread and a communication
// thread per rank).
type Endpoint struct {
	rank int
	size int

	mbox     *mailbox
	counters *Counters

	sendFn  func(to int, m Message) error
	closeFn func() error

	// Fault-injection hooks installed by each transport constructor and
	// driven only by the Chaos wrapper: corruptFn flips bytes in the next
	// frame to rank `to` (after its CRC is computed), dropFn severs the
	// link to rank `to` as if the cable were pulled. Nil when the transport
	// has no meaningful implementation.
	corruptFn func(to int)
	dropFn    func(to int)

	// peerDownH, when installed, is consulted before a lost peer poisons
	// the mailbox; see SetPeerDownHandler.
	peerDownH atomic.Pointer[func(rank int, cause error) bool]

	closed atomic.Bool
}

// SetPeerDownHandler installs (or, with nil, removes) the recovery hook the
// endpoint consults when it learns a peer is gone. The handler returns true
// to absorb the event — the mailbox is not poisoned and the run continues,
// with the recovery layer responsible for rerouting traffic — or false to
// fall back to the default fatal path (mailbox poisoned with a
// PeerDownError). The handler may be invoked from any transport goroutine,
// including the dying peer's own in the proc transport, and must be safe
// for concurrent use. Frame corruption is never offered to the handler:
// a CRC mismatch is not a recoverable topology change.
func (e *Endpoint) SetPeerDownHandler(h func(rank int, cause error) bool) {
	if h == nil {
		e.peerDownH.Store(nil)
		return
	}
	e.peerDownH.Store(&h)
}

// peerDown routes one peer-loss event: through the recovery handler when
// one is installed and it absorbs the event, into mailbox poison otherwise.
func (e *Endpoint) peerDown(rank int, cause error) {
	err := &PeerDownError{Rank: rank, Cause: cause}
	if h := e.peerDownH.Load(); h != nil && (*h)(rank, err) {
		return
	}
	e.mbox.fail(err)
}

// Rank returns this endpoint's rank in [0, Size).
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the group.
func (e *Endpoint) Size() int { return e.size }

// Counters returns the traffic counters.
func (e *Endpoint) Counters() *Counters { return e.counters }

// Send delivers data to rank `to` with the given tag. The payload is owned
// by the transport after the call; callers must not reuse it. Self-sends
// are legal and loop back through the local mailbox.
func (e *Endpoint) Send(to, tag int, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= e.size {
		return fmt.Errorf("transport: send to rank %d of %d", to, e.size)
	}
	e.counters.countSend(to, len(data))
	return e.sendFn(to, Message{From: e.rank, Tag: tag, Data: data})
}

// Recv blocks until a message with exactly this tag arrives (any sender).
func (e *Endpoint) Recv(tag int) (Message, error) {
	m, err := e.mbox.recv(func(t int) bool { return t == tag })
	if err == nil {
		e.counters.countRecv(len(m.Data))
	}
	return m, err
}

// RecvMatch blocks until a message whose tag satisfies match arrives. The
// responder loop uses it to service multiple request tags at once.
func (e *Endpoint) RecvMatch(match func(tag int) bool) (Message, error) {
	m, err := e.mbox.recv(match)
	if err == nil {
		e.counters.countRecv(len(m.Data))
	}
	return m, err
}

// TryRecvMatch is RecvMatch without blocking; ok=false means no matching
// message is currently queued.
func (e *Endpoint) TryRecvMatch(match func(tag int) bool) (Message, bool, error) {
	m, ok, err := e.mbox.tryRecv(match)
	if ok {
		e.counters.countRecv(len(m.Data))
	}
	return m, ok, err
}

// SendAbort broadcasts-one-peer-at-a-time the run-wide abort control
// message to rank `to`. Abort traffic is control plane: it bypasses the
// application counters so fault handling does not distort the traffic
// model. Self-sends are legal and poison the local mailbox, unblocking
// this rank's own responder/worker goroutines.
func (e *Endpoint) SendAbort(to int, payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= e.size {
		return fmt.Errorf("transport: abort to rank %d of %d", to, e.size)
	}
	return e.sendFn(to, encodeAbort(e.rank, payload))
}

// deliver enqueues an inbound message; transports call it from their
// delivery paths. Control tags never reach the application: heartbeats are
// dropped (their only job was resetting the peer's read deadline), and an
// abort poisons the mailbox so every pending and future receive fails fast.
func (e *Endpoint) deliver(m Message) error {
	switch m.Tag {
	case tagHeartbeat:
		return nil
	case tagAbort:
		e.mbox.fail(&Aborted{From: m.From, Payload: m.Data})
		return nil
	}
	return e.mbox.put(m)
}

// MaxQueueDepth returns the high-water mark of pending messages in this
// endpoint's mailbox — the backlog a slow responder accumulated.
func (e *Endpoint) MaxQueueDepth() int {
	e.mbox.mu.Lock()
	defer e.mbox.mu.Unlock()
	return e.mbox.maxDepth
}

// Close shuts the endpoint down. Blocked receivers return ErrClosed.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.mbox.close()
	if e.closeFn != nil {
		return e.closeFn()
	}
	return nil
}

// mailbox is an unbounded tag-filterable message queue. Unboundedness is a
// deliberate choice: the correction phase's request/response traffic forms
// cycles between ranks, and any bounded intermediate queue could deadlock
// under bursty load; memory for in-flight messages is part of the 512 MB
// per-process budget the engine accounts for separately.
// Messages are demultiplexed into per-tag FIFO queues on arrival, so a
// selective receive is O(number of distinct tags), not O(queued messages):
// MPI guarantees ordering only per (sender, tag), so per-tag FIFOs preserve
// every ordering the algorithm may rely on.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond        // signals on mu
	byTag   map[int]*tagQueue // guarded by mu (tagQueues are owned by mu too)
	closed  bool              // guarded by mu
	failErr error             // guarded by mu; poison set by fail, checked before every receive
	// Queue-depth accounting: depth is current pending messages, maxDepth
	// the high-water mark. Unbounded queues make backlog invisible unless
	// measured; the engine surfaces this per rank.
	depth    int // guarded by mu
	maxDepth int // guarded by mu
	// waiting counts receivers blocked in cond.Wait, and watchers holds
	// one channel per awaitWaiters caller, closed when enough receivers
	// are blocked — tests wait for "n receivers are parked" instead of
	// sleeping and hoping.
	waiting  int        // guarded by mu
	watchers []*watcher // guarded by mu
}

// watcher is one awaitWaiters subscription: ch is closed once the mailbox
// has at least n receivers blocked.
type watcher struct {
	n  int
	ch chan struct{}
}

// tagQueue is a FIFO with an amortized-O(1) pop (head index advances and
// the backing slice is compacted when mostly consumed).
type tagQueue struct {
	msgs []Message
	head int
}

func (q *tagQueue) push(m Message) { q.msgs = append(q.msgs, m) }

func (q *tagQueue) pop() (Message, bool) {
	if q.head >= len(q.msgs) {
		return Message{}, false
	}
	m := q.msgs[q.head]
	q.msgs[q.head] = Message{} // release payload for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.msgs) {
		n := copy(q.msgs, q.msgs[q.head:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return m, true
}

func (q *tagQueue) empty() bool { return q.head >= len(q.msgs) }

func newMailbox() *mailbox {
	mb := &mailbox{byTag: make(map[int]*tagQueue)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	if mb.failErr != nil {
		// Poisoned: the owner is failing fast, so late arrivals are dropped
		// silently — the sender must not see an error for the receiver's
		// abort.
		return nil
	}
	q := mb.byTag[m.Tag]
	if q == nil {
		q = &tagQueue{}
		mb.byTag[m.Tag] = q
	}
	q.push(m)
	mb.depth++
	if mb.depth > mb.maxDepth {
		mb.maxDepth = mb.depth
	}
	mb.cond.Broadcast()
	return nil
}

// take removes and returns a pending message whose tag matches.
//
// reptile-lint:holds mu
func (mb *mailbox) take(match func(int) bool) (Message, bool) {
	for tag, q := range mb.byTag {
		if q.empty() || !match(tag) {
			continue
		}
		m, ok := q.pop()
		if ok {
			mb.depth--
		}
		return m, ok
	}
	return Message{}, false
}

func (mb *mailbox) recv(match func(int) bool) (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		// Matching queued messages drain even after a poison: a peer that
		// finished and closed gracefully may race its final protocol
		// message (e.g. the stop broadcast) against the EOF its departure
		// causes, and that message must still be deliverable. Only
		// receives that would block fail with the poison.
		if m, ok := mb.take(match); ok {
			return m, nil
		}
		if mb.failErr != nil {
			return Message{}, mb.failErr
		}
		if mb.closed {
			return Message{}, ErrClosed
		}
		mb.waiting++
		mb.notifyWatchers()
		mb.cond.Wait()
		mb.waiting--
	}
}

// fail poisons the mailbox: every receiver currently blocked and every
// future receive returns err immediately. The first poison wins; a close
// that already happened takes precedence. Unlike close, fail leaves the
// endpoint's send side alone — a poisoned rank can still broadcast its
// abort record before tearing down.
func (mb *mailbox) fail(err error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed || mb.failErr != nil {
		return
	}
	mb.failErr = err
	// Release awaitWaiters subscriptions: blocked receivers are about to
	// drain away with the failure.
	for _, w := range mb.watchers {
		close(w.ch)
	}
	mb.watchers = nil
	mb.cond.Broadcast()
}

// poison returns the failure the mailbox is poisoned with, or nil. Senders
// consult it so a send that fails *because* the receive side already
// declared the link dead (peer down, corrupt frame) reports that root cause
// rather than the raw socket error the teardown provoked.
func (mb *mailbox) poison() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.failErr
}

// notifyWatchers releases every awaitWaiters subscription whose threshold
// the current waiting count satisfies.
//
// reptile-lint:holds mu
func (mb *mailbox) notifyWatchers() {
	if len(mb.watchers) == 0 {
		return
	}
	kept := mb.watchers[:0]
	for _, w := range mb.watchers {
		if mb.waiting >= w.n {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	mb.watchers = kept
}

// awaitWaiters returns a channel that is closed once at least n receivers
// are blocked in this mailbox. It is the deterministic replacement for
// "sleep and assume the receiver got there" in tests.
func (mb *mailbox) awaitWaiters(n int) <-chan struct{} {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	ch := make(chan struct{})
	if mb.waiting >= n {
		close(ch)
		return ch
	}
	mb.watchers = append(mb.watchers, &watcher{n: n, ch: ch})
	return ch
}

func (mb *mailbox) tryRecv(match func(int) bool) (Message, bool, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if m, ok := mb.take(match); ok {
		return m, true, nil
	}
	if mb.failErr != nil {
		return Message{}, false, mb.failErr
	}
	if mb.closed {
		return Message{}, false, ErrClosed
	}
	return Message{}, false, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	// Release awaitWaiters subscriptions too: blocked receivers are about
	// to drain away, so the awaited state can never be reached.
	for _, w := range mb.watchers {
		close(w.ch)
	}
	mb.watchers = nil
	mb.cond.Broadcast()
	mb.mu.Unlock()
}
