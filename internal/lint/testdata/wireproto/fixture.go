// Package fixture exercises the wireproto analyzer: a healthy registry, a
// tag that is sent but never received, a tag that is decoded but never
// sent, a dead payload kind — and the transport's control-plane idiom
// (abort/heartbeat tags built by encode* helpers, consumed by a deliver
// switch; abort-record kinds passed as encode* arguments).
package fixture

import "errors"

const (
	tagGood       = 1
	tagOrphanSend = 2 // want "no receive/decode path"
	tagOrphanRecv = 3 // want "no send/encode path"
	tagCtl        = 4

	// Batched request/response pair mirroring core.tagBatchReq/tagBatchResp:
	// the request tag is produced by an encode* constructor and consumed by
	// the delivery switch; the response tag flows the other way (produced in
	// the serve path, consumed by the dispatcher's decode).
	tagBatchish     = 7
	tagBatchRespish = 8

	// Control tags mirroring transport.tagAbort/tagHeartbeat: far below the
	// collective tag range, produced only inside encode* constructors,
	// consumed by case clauses in the delivery switch.
	tagAbortish     = -1 << 30
	tagHeartbeatish = -1<<30 + 1

	kindUsed byte = 0
	kindDead byte = 1 // want "no send/encode path" want "no receive/decode path"

	// Abort-record kinds mirroring core.kindAbort*: produced as encode*
	// call arguments, consumed by comparison on the decode side.
	kindAbortAppish  byte = 2
	kindAbortPeerish byte = 3
)

// endpointish stands in for the transport Endpoint surface.
type endpointish interface {
	Send(to, tag int, data []byte) error
	Recv(tag int) ([]byte, error)
}

// encodeThing is the producer side of the fixture protocol.
func encodeThing(kind byte) (int, []byte) {
	if kind == kindUsed {
		return tagGood, nil
	}
	return tagOrphanSend, nil
}

// decodeThing is the consumer side; note it never handles tagOrphanSend.
func decodeThing(tag int) (byte, error) {
	switch tag {
	case tagGood:
		return kindUsed, nil
	case tagOrphanRecv:
		return 0, nil
	}
	return 0, errors.New("fixture: bad tag")
}

// ship covers the direct Send/Recv evidence rules (no encoder needed).
func ship(e endpointish) error {
	if err := e.Send(0, tagCtl, nil); err != nil {
		return err
	}
	_, err := e.Recv(tagCtl)
	return err
}

// encodeAbortish is the producer side of the control plane: a tag named
// inside an encode* function is send-path evidence on its own.
func encodeAbortish(payload []byte) (int, []byte) { return tagAbortish, payload }

// encodeHeartbeatish likewise.
func encodeHeartbeatish() (int, []byte) { return tagHeartbeatish, nil }

// deliverish mirrors Endpoint.deliver: control tags are consumed by case
// clauses before ordinary messages are enqueued.
func deliverish(tag int, data []byte) ([]byte, bool) {
	switch tag {
	case tagAbortish:
		return data, false
	case tagHeartbeatish:
		return nil, false
	}
	return data, true
}

// encodeBatchish mirrors core.encodeBatchReq: many ids, one frame.
func encodeBatchish(reqID uint32, ids []uint64) (int, []byte) {
	return tagBatchish, append([]byte{byte(reqID)}, byte(len(ids)))
}

// serveBatchish is the responder side: it consumes the request tag and
// produces the response tag in one hop, as core's serveBatch does.
func serveBatchish(e endpointish, tag int, data []byte) error {
	switch tag {
	case tagBatchish:
		return e.Send(0, tagBatchRespish, data)
	}
	return nil
}

// deliverBatchish is the dispatcher side consuming interleaved responses.
func deliverBatchish(tag int, data []byte) (uint32, bool) {
	if tag == tagBatchRespish && len(data) > 0 {
		return uint32(data[0]), true
	}
	return 0, false
}

// encodeRecordish mirrors core.encodeAbortInfo: kinds arrive as call
// arguments, which is producer evidence for kind constants.
func encodeRecordish(kind byte, cause string) []byte {
	return append([]byte{kind}, cause...)
}

// raiseish builds both record flavors.
func raiseish(peerDown bool) []byte {
	if peerDown {
		return encodeRecordish(kindAbortPeerish, "peer down")
	}
	return encodeRecordish(kindAbortAppish, "app error")
}

// decodeRecordish is the consumer side: comparisons outside encoders count
// as receive-path evidence.
func decodeRecordish(b []byte) (fatal bool, err error) {
	if len(b) == 0 {
		return false, errors.New("fixture: empty record")
	}
	if b[0] == kindAbortPeerish {
		return true, nil
	}
	return b[0] == kindAbortAppish, nil
}
