package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// Output aggregates a whole run.
type Output struct {
	// ByRank holds each rank's corrected reads in rank order.
	ByRank [][]reads.Read
	// Run carries every rank's counters and the per-phase wall times.
	Run stats.Run
	// Result is the correction totals across ranks.
	Result reptile.Result
}

// Corrected returns all corrected reads sorted by sequence number, the
// order of the input file.
func (o *Output) Corrected() []reads.Read {
	var all []reads.Read
	for _, b := range o.ByRank {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

// Run executes the distributed pipeline with np goroutine ranks over the
// in-process transport — the standard way to run the engine inside one
// process. For one-process-per-rank deployments, call RunRank directly
// with TCP endpoints (see cmd/reptile-correct).
func Run(src Source, np int, opts Options) (*Output, error) {
	if np < 1 {
		return nil, fmt.Errorf("core: np=%d", np)
	}
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		return nil, err
	}
	defer transport.CloseGroup(eps)

	outs := make([]*RankOutput, np)
	errs := make([]error, np)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = RunRank(eps[r], src, opts)
			if errs[r] != nil {
				// A failed rank can never again participate in collectives
				// or answer requests, so peers blocked on it would wait
				// forever; tear the whole group down to unblock them.
				transport.CloseGroup(eps)
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Report the root cause, not the ErrClosed errors induced by teardown.
	var firstErr error
	firstRank := -1
	for r, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)) {
			firstErr, firstRank = err, r
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("core: rank %d failed: %w", firstRank, firstErr)
	}

	out := &Output{
		ByRank: make([][]reads.Read, np),
		Run:    stats.Run{Ranks: make([]stats.Rank, np)},
	}
	for r, ro := range outs {
		out.ByRank[r] = ro.Corrected
		out.Run.Ranks[r] = ro.Stats
		out.Result.Add(ro.Result)
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			if ro.Stats.Wall[p] > out.Run.Wall[p] {
				out.Run.Wall[p] = ro.Stats.Wall[p]
			}
		}
	}
	_ = elapsed // Wall maxima are per-rank; the launcher total is implicit.
	return out, nil
}
