// Command reptile-spectrum builds, saves, and inspects k-mer/tile spectrum
// files, so the construction cost is paid once per dataset:
//
//	reptile-spectrum build -fasta ds.fa -qual ds.qual -out ds     # ds.kspec + ds.tspec
//	reptile-spectrum build -fasta ds.fa -qual ds.qual -out ds -save   # + ds.r0.rsnap
//	reptile-spectrum info -in ds.kspec
//	reptile-spectrum info -in ds.r0.rsnap
//
// Spectrum files use the RSP1 format of internal/spectrum; -save also
// writes the frozen stores as a single-rank RSNP snapshot (internal/
// snapshot), directly loadable by reptile-correct -snapshot at np=1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"reptile/internal/fastaio"
	"reptile/internal/reptile"
	"reptile/internal/snapshot"
	"reptile/internal/spectrum"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reptile-spectrum build|info [flags]")
	os.Exit(2)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	fasta := fs.String("fasta", "", "input fasta file")
	qual := fs.String("qual", "", "input quality file")
	out := fs.String("out", "spectrum", "output prefix (<out>.kspec, <out>.tspec)")
	k := fs.Int("k", 12, "k-mer length")
	overlap := fs.Int("overlap", 4, "tile overlap")
	kmerThr := fs.Uint("kmer-threshold", 6, "k-mer solidity threshold")
	tileThr := fs.Uint("tile-threshold", 3, "tile solidity threshold")
	save := fs.Bool("save", false, "also write a single-rank frozen snapshot (<out>.r0.rsnap) loadable by reptile-correct -snapshot")
	fs.Parse(args)
	if *fasta == "" || *qual == "" {
		fmt.Fprintln(os.Stderr, "reptile-spectrum build: -fasta and -qual are required")
		os.Exit(2)
	}

	batch, err := fastaio.ReadShard(*fasta, *qual, 0, 1)
	if err != nil {
		fatal(err)
	}
	cfg := reptile.Default()
	cfg.Spec.K = *k
	cfg.Spec.Overlap = *overlap
	cfg.KmerThreshold = uint32(*kmerThr)
	cfg.TileThreshold = uint32(*tileThr)
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	kmers, tiles := reptile.BuildSpectra(batch, cfg)
	for _, part := range []struct {
		store *spectrum.HashStore
		path  string
	}{
		{kmers, *out + ".kspec"},
		{tiles, *out + ".tspec"},
	} {
		f, err := os.Create(part.path)
		if err != nil {
			fatal(err)
		}
		n, err := part.store.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d entries, %d bytes\n", part.path, part.store.Len(), n)
	}
	if *save {
		p := snapshot.Params{
			K:             cfg.Spec.K,
			Overlap:       cfg.Spec.Overlap,
			KmerThreshold: cfg.KmerThreshold,
			TileThreshold: cfg.TileThreshold,
			NP:            1,
			Rank:          0,
		}
		path := snapshot.RankFile(*out, 0)
		n, err := snapshot.Write(path, p, spectrum.Freeze(kmers), spectrum.Freeze(tiles))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: frozen snapshot, %d bytes\n", path, n)
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "spectrum file")
	top := fs.Int("top", 5, "show the N highest-count entries")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "reptile-spectrum info: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.Read(magic[:]); err == nil && magic == snapshot.Magic {
		snapshotInfo(*in)
		return
	}
	if _, err := f.Seek(0, 0); err != nil {
		fatal(err)
	}
	h, err := spectrum.ReadFrom(f)
	if err != nil {
		fatal(err)
	}
	var total uint64
	var maxCount uint32
	entries := h.Entries()
	for _, e := range entries {
		total += uint64(e.Count)
		if e.Count > maxCount {
			maxCount = e.Count
		}
	}
	fmt.Printf("entries      %d\n", h.Len())
	fmt.Printf("total count  %d\n", total)
	if h.Len() > 0 {
		fmt.Printf("mean count   %.1f\n", float64(total)/float64(h.Len()))
		fmt.Printf("max count    %d\n", maxCount)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
		n := *top
		if n > len(entries) {
			n = len(entries)
		}
		for _, e := range entries[:n] {
			fmt.Printf("  id=%#016x count=%d\n", uint64(e.ID), e.Count)
		}
	}
}

// snapshotInfo prints an RSNP frozen-snapshot file: the parameter header,
// then both stores' sizes (which requires the full checksum-verified load).
func snapshotInfo(path string) {
	p, kmers, tiles, n, err := snapshot.Read(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("format       RSNP v%d (frozen spectrum snapshot)\n", snapshot.Version)
	fmt.Printf("rank         %d of %d\n", p.Rank, p.NP)
	fmt.Printf("k / overlap  %d / %d\n", p.K, p.Overlap)
	fmt.Printf("thresholds   kmer=%d tile=%d\n", p.KmerThreshold, p.TileThreshold)
	fmt.Printf("kmers        %d entries\n", kmers.Len())
	fmt.Printf("tiles        %d entries\n", tiles.Len())
	total := kmers.Len() + tiles.Len()
	if total > 0 {
		fmt.Printf("bytes        %d (%.1f per entry)\n", n, float64(n)/float64(total))
	} else {
		fmt.Printf("bytes        %d\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reptile-spectrum: %v\n", err)
	os.Exit(1)
}
