// Package serve implements the reptile-serve front door (DESIGN.md §17):
// a small length-prefixed TCP protocol between external correction clients
// and a resident SpectrumService. Clients are not transport ranks — they
// speak only this protocol to the front-door rank, which bridges each
// connection onto a correction session multiplexed across the rank group.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"reptile/internal/core"
	"reptile/internal/reptile"
)

// Front-door framing: op u8 | len u32 LE | payload. One request frame in,
// one response frame out, strictly alternating per connection.
const (
	opOpen    byte = 1 // client → server: tenant name bytes
	opChunk   byte = 2 // client → server: reads batch to correct
	opClose   byte = 3 // client → server: finish the session (empty)
	opOpenOK  byte = 4 // server → client: session admitted (empty)
	opChunkOK byte = 5 // server → client: result counters | corrected batch
	opCloseOK byte = 6 // server → client: session retired (empty)
	opErr     byte = 7 // server → client: kind u8 | rank u32 | message
)

// Frame geometry.
const (
	frameHdrBytes = 5       // op u8 + len u32
	maxFrameBytes = 1 << 28 // refuse absurd lengths before allocating
	resultBytes   = 48      // 6 × u64 reptile.Result counters
	errHdrBytes   = 5       // kind u8 + rank u32
)

// writeFrame emits one frame.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("serve: %d-byte frame exceeds the %d-byte maximum", len(payload), maxFrameBytes)
	}
	hdr := make([]byte, frameHdrBytes)
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. io.EOF surfaces untouched so callers can tell
// a clean disconnect from a torn frame.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	hdr := make([]byte, frameHdrBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("serve: %d-byte frame exceeds the %d-byte maximum", n, maxFrameBytes)
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("serve: torn %d-byte frame: %w", n, err)
	}
	return hdr[0], payload, nil
}

// encodeResult packs the chunk's correction counters, the fixed prefix of
// every opChunkOK payload.
func encodeResult(res reptile.Result) []byte {
	buf := make([]byte, resultBytes)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(res.ReadsProcessed))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(res.ReadsChanged))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(res.BasesCorrected))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(res.TilesSolid))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(res.TilesRepaired))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(res.TilesGivenUp))
	return buf
}

// decodeResult parses an opChunkOK result prefix.
func decodeResult(b []byte) (reptile.Result, error) {
	var res reptile.Result
	if len(b) < resultBytes {
		return res, fmt.Errorf("serve: corrected chunk of %d bytes", len(b))
	}
	res.ReadsProcessed = int64(binary.LittleEndian.Uint64(b[0:8]))
	res.ReadsChanged = int64(binary.LittleEndian.Uint64(b[8:16]))
	res.BasesCorrected = int64(binary.LittleEndian.Uint64(b[16:24]))
	res.TilesSolid = int64(binary.LittleEndian.Uint64(b[24:32]))
	res.TilesRepaired = int64(binary.LittleEndian.Uint64(b[32:40]))
	res.TilesGivenUp = int64(binary.LittleEndian.Uint64(b[40:48]))
	return res, nil
}

// encodeErr flattens an error into an opErr payload. A typed session
// rejection keeps its kind and executor rank, so the client can rebuild the
// same *core.SessionError the in-process API returns; anything else travels
// as kind 0 with its message.
func encodeErr(err error) []byte {
	var kind core.SessionRejectKind
	rank, msg := 0, err.Error()
	var serr *core.SessionError
	if errors.As(err, &serr) {
		kind, rank, msg = serr.Kind, serr.Rank, serr.Msg
	}
	buf := make([]byte, errHdrBytes, errHdrBytes+len(msg))
	buf[0] = byte(kind)
	binary.LittleEndian.PutUint32(buf[1:], uint32(rank))
	return append(buf, msg...)
}

// decodeErr rebuilds the error an opErr payload carries. Typed rejections
// come back as *core.SessionError (matching core.ErrSessionRejected), so a
// TCP client sees the exact error surface an in-process caller would.
func decodeErr(b []byte, tenant string) error {
	if len(b) < errHdrBytes {
		return fmt.Errorf("serve: error frame of %d bytes", len(b))
	}
	kind := core.SessionRejectKind(b[0])
	rank := int(binary.LittleEndian.Uint32(b[1:5]))
	msg := string(b[errHdrBytes:])
	if kind == 0 {
		return fmt.Errorf("serve: %s", msg)
	}
	return &core.SessionError{Kind: kind, Rank: rank, Tenant: tenant, Msg: msg}
}
