package core

import (
	"testing"

	"reptile/internal/kmer"
	"reptile/internal/transport"
)

// The decode fuzz targets pin the wire layer's only safety contract: an
// arbitrary byte string either decodes into a self-consistent value or
// returns an error — never a panic, never an out-of-bounds read, and never
// a value that re-encodes to a different frame.

func FuzzDecodeBatchReq(f *testing.F) {
	// Golden frames: an empty batch, a single k-mer id, a mixed-width pair
	// of tile ids, and a deliberately truncated frame.
	f.Add(encodeBatchReq(0, kindKmer, nil))
	f.Add(encodeBatchReq(1, kindKmer, []kmer.ID{42}))
	f.Add(encodeBatchReq(7, kindTile, []kmer.ID{1, 1 << 60}))
	f.Add(encodeBatchReq(9, kindTile, []kmer.ID{5, 6, 7})[:10])
	f.Fuzz(func(t *testing.T, payload []byte) {
		reqID, kinds, ids, err := decodeBatchReq(payload)
		if err != nil {
			return
		}
		if len(kinds) != len(ids) {
			t.Fatalf("decoded %d kinds for %d ids", len(kinds), len(ids))
		}
		// A frame of all-one-kind entries must survive a round trip; mixed
		// kinds cannot be rebuilt through encodeBatchReq's single-kind
		// signature, so only check those structurally.
		uniform := true
		for _, k := range kinds {
			if k != kinds[0] {
				uniform = false
				break
			}
		}
		if uniform && len(ids) > 0 {
			back := encodeBatchReq(reqID, kinds[0], ids)
			if string(back) != string(payload) {
				t.Fatalf("re-encode mismatch: %x vs %x", back, payload)
			}
		}
	})
}

func FuzzDecodeBatchResp(f *testing.F) {
	f.Add(encodeBatchResp(0, nil))
	f.Add(encodeBatchResp(3, []batchAnswer{{Count: 9, Exists: true}}))
	f.Add(encodeBatchResp(8, []batchAnswer{{Count: 0, Exists: false}, {Count: 1 << 30, Exists: true}}))
	f.Add(encodeBatchResp(5, []batchAnswer{{Count: 2, Exists: true}})[:7])
	f.Fuzz(func(t *testing.T, payload []byte) {
		reqID, answers, err := decodeBatchResp(payload)
		if err != nil {
			return
		}
		back := encodeBatchResp(reqID, answers)
		// The exists byte is canonical 0/1 on encode but any non-1 byte
		// decodes as false, so only canonical frames round-trip exactly.
		if len(back) != len(payload) {
			t.Fatalf("re-encode length %d for a %d-byte frame", len(back), len(payload))
		}
		reqID2, answers2, err := decodeBatchResp(back)
		if err != nil || reqID2 != reqID || len(answers2) != len(answers) {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		for i := range answers {
			if answers2[i] != answers[i] {
				t.Fatalf("answer %d changed across round trip", i)
			}
		}
	})
}

func FuzzDecodeAbortInfo(f *testing.F) {
	for _, a := range []*AbortError{
		{Rank: 0, Phase: "read", Cause: "boom"},
		{Rank: 3, Phase: "correct", Cause: "peer 1 went away", err: transport.ErrPeerDown},
		{Rank: 1, Phase: "exchange", Cause: "", err: transport.ErrCorruptFrame},
		{Rank: -1, Phase: "spectrum", Cause: "x"},
	} {
		f.Add(encodeAbortInfo(a))
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := decodeAbortInfo(payload)
		if err != nil {
			return
		}
		back := encodeAbortInfo(a)
		a2, err := decodeAbortInfo(back)
		if err != nil {
			t.Fatalf("re-encode does not decode: %v", err)
		}
		if a2.Rank != a.Rank || a2.Phase != a.Phase || a2.Cause != a.Cause {
			t.Fatalf("abort record changed across round trip: %+v vs %+v", a2, a)
		}
	})
}
