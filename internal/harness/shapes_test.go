package harness

// Shape tests: each paper figure's *qualitative* claim, asserted on live
// engine runs at test scale. These are the "reproduced means" criteria of
// DESIGN.md §4 — who wins, and roughly by how much.

import (
	"strconv"
	"strings"
	"testing"

	"reptile/internal/core"
	"reptile/internal/genome"
	"reptile/internal/machine"
	"reptile/internal/stats"
)

func shapeDataset(t *testing.T, localized bool) *genome.Dataset {
	t.Helper()
	p := genome.EColiSim.Scaled(0.06)
	if localized {
		return p.BuildLocalized()
	}
	return p.Build()
}

func mustRun(t *testing.T, ds *genome.Dataset, np int, h core.Heuristics, balance bool) *core.Output {
	t.Helper()
	out, err := engineRun(ds, np, optionsFor(Scale{}, ds, h, balance))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustProject(t *testing.T, out *core.Output, shape machine.Shape, h core.Heuristics) machine.Projection {
	t.Helper()
	p, err := project(out, shape, h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Fig 2's claim: at fixed rank count, 32 ranks/node is slower than 8, and
// the increase comes from communication.
func TestShapeFig2_MoreRanksPerNodeSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run")
	}
	ds := shapeDataset(t, false)
	// Multiple nodes at every ranks-per-node setting, as in the paper's
	// 128-rank sweep (16 nodes at 8 rpn down to 4 nodes at 32 rpn);
	// collapsing to one node would flip the comparison by making all
	// traffic intra-node.
	const np = 64
	out := mustRun(t, ds, np, core.Heuristics{}, true)
	p8 := mustProject(t, out, machine.Shape{Ranks: np, RanksPerNode: 8, ThreadsPerRank: 2}, core.Heuristics{})
	p32 := mustProject(t, out, machine.Shape{Ranks: np, RanksPerNode: 32, ThreadsPerRank: 2}, core.Heuristics{})
	if p32.TotalTime() <= p8.TotalTime() {
		t.Errorf("32 rpn (%.3fs) not slower than 8 rpn (%.3fs)", p32.TotalTime(), p8.TotalTime())
	}
	commDelta := p32.CommTimeMax - p8.CommTimeMax
	totalDelta := p32.TotalTime() - p8.TotalTime()
	if commDelta < totalDelta/3 {
		t.Errorf("slowdown not communication-dominated: comm +%.3fs of total +%.3fs", commDelta, totalDelta)
	}
}

// Fig 4's claim: on error-localized input, balancing collapses the spread
// in per-rank corrections and narrows per-rank communication time.
func TestShapeFig4_BalancingFlattensRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("two engine runs")
	}
	ds := shapeDataset(t, true)
	const np = 16
	h := core.Heuristics{}
	imb := mustRun(t, ds, np, h, false)
	bal := mustRun(t, ds, np, h, true)
	errs := func(r *stats.Rank) int64 { return r.BasesCorrected }
	if bal.Run.SpreadPct(errs) >= imb.Run.SpreadPct(errs) {
		t.Errorf("balanced error spread %.1f%% not below imbalanced %.1f%%",
			bal.Run.SpreadPct(errs), imb.Run.SpreadPct(errs))
	}
	shape := shape32(np)
	pImb := mustProject(t, imb, shape, h)
	pBal := mustProject(t, bal, shape, h)
	if pBal.CorrectTime >= pImb.CorrectTime {
		t.Errorf("balanced correction %.3fs not faster than imbalanced %.3fs", pBal.CorrectTime, pImb.CorrectTime)
	}
	imbRatio := pImb.CommTimeMax / (pImb.CommTimeMin + 1e-12)
	balRatio := pBal.CommTimeMax / (pBal.CommTimeMin + 1e-12)
	if balRatio >= imbRatio {
		t.Errorf("comm-time ratio did not shrink: %.2f -> %.2f", imbRatio, balRatio)
	}
}

// Fig 5's claims: universal beats base a little for free; replicating the
// tile spectrum beats replicating the k-mer spectrum; replicating both is
// fastest but costs the most memory; partial replication sits between base
// and full replication in both time and memory.
func TestShapeFig5_HeuristicOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("several engine runs")
	}
	ds := shapeDataset(t, false)
	const np = 16
	shape := shape32(np)
	type res struct {
		total float64
		mem   int64
	}
	runMode := func(h core.Heuristics) res {
		out := mustRun(t, ds, np, h, true)
		p := mustProject(t, out, shape, h)
		return res{p.TotalTime(), out.Run.Max(func(r *stats.Rank) int64 { return r.MemAfterConstruct })}
	}
	base := runMode(core.Heuristics{})
	uni := runMode(core.Heuristics{Universal: true})
	replK := runMode(core.Heuristics{ReplicateKmers: true})
	replT := runMode(core.Heuristics{ReplicateTiles: true})
	replB := runMode(core.Heuristics{ReplicateKmers: true, ReplicateTiles: true})
	part := runMode(core.Heuristics{PartialReplicationGroup: 4})

	if uni.total >= base.total {
		t.Errorf("universal (%.3fs) not faster than base (%.3fs)", uni.total, base.total)
	}
	if replT.total >= replK.total {
		t.Errorf("repl-tiles (%.3fs) not faster than repl-kmers (%.3fs): tile traffic should dominate", replT.total, replK.total)
	}
	if replB.total >= base.total {
		t.Errorf("repl-both (%.3fs) not faster than base (%.3fs)", replB.total, base.total)
	}
	if replB.mem <= base.mem {
		t.Errorf("repl-both memory (%d) not above base (%d)", replB.mem, base.mem)
	}
	if !(part.mem > base.mem && part.mem < replB.mem) {
		t.Errorf("partial replication memory %d not between base %d and repl-both %d", part.mem, base.mem, replB.mem)
	}
	if part.total >= base.total {
		t.Errorf("partial replication (%.3fs) not faster than base (%.3fs)", part.total, base.total)
	}
}

// Figs 6-7's claim: correction time falls as ranks grow, at sane parallel
// efficiency, and the balanced run beats the imbalanced one at every scale.
func TestShapeFig6_ScalingCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("rank sweep")
	}
	ds := shapeDataset(t, true)
	h := core.Heuristics{}
	var prevTotal float64
	var baseRanks int
	var baseTime float64
	for i, np := range []int{8, 16, 32} {
		bal := mustRun(t, ds, np, h, true)
		imb := mustRun(t, ds, np, h, false)
		pBal := mustProject(t, bal, shape32(np), h)
		pImb := mustProject(t, imb, shape32(np), h)
		if pImb.TotalTime() <= pBal.TotalTime() {
			t.Errorf("np=%d: imbalanced (%.3fs) not slower than balanced (%.3fs)", np, pImb.TotalTime(), pBal.TotalTime())
		}
		if i == 0 {
			baseRanks, baseTime = np, pBal.TotalTime()
		} else {
			if pBal.TotalTime() >= prevTotal {
				t.Errorf("np=%d: total %.3fs did not fall below %.3fs", np, pBal.TotalTime(), prevTotal)
			}
			eff := machine.Efficiency(baseRanks, baseTime, np, pBal.TotalTime())
			if eff < 0.25 || eff > 1.2 {
				t.Errorf("np=%d: efficiency %.2f out of band", np, eff)
			}
		}
		prevTotal = pBal.TotalTime()
	}
}

// The memory-scalability headline: per-rank spectrum memory falls as ranks
// grow (the reason the distributed layout exists at all).
func TestShapeMemoryFallsWithRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("rank sweep")
	}
	ds := shapeDataset(t, false)
	mem := func(np int) int64 {
		out := mustRun(t, ds, np, core.Heuristics{}, true)
		return out.Run.Max(func(r *stats.Rank) int64 { return r.MemAfterConstruct })
	}
	m4, m16 := mem(4), mem(16)
	if m16 >= m4 {
		t.Errorf("per-rank memory did not fall with ranks: %d at np=4, %d at np=16", m4, m16)
	}
}

// The lookup experiment's claim: coalescing remote lookups cuts the
// correction-phase request messages at least 2x against the unbatched
// protocol, with identical output (the experiment itself fails the run if
// the corrected bases drift between modes).
func TestShapeLookup_BatchingCutsMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("four engine runs")
	}
	tab, err := Lookup(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("lookup table has %d rows", len(tab.Rows))
	}
	reduction := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
		if err != nil {
			t.Fatalf("reduction cell %q: %v", row[5], err)
		}
		return v
	}
	for _, row := range tab.Rows[1:] {
		if row[3] == "0" {
			t.Errorf("%s: no batch frames recorded", row[0])
		}
	}
	if r := reduction(tab.Rows[2]); r < 2.0 {
		t.Errorf("batch=32 reduced messages only %.2fx, want >= 2x", r)
	}
}
