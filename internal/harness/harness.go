// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation section. Each experiment builds its scaled
// dataset, drives the distributed engine, projects times through the
// BlueGene/Q machine model, and renders the same rows the paper reports.
//
// cmd/reptile-bench runs experiments from the command line; bench_test.go
// wraps each one in a testing.B benchmark at a smaller scale.
package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"reptile/internal/core"
	"reptile/internal/genome"
	"reptile/internal/machine"
	"reptile/internal/reptile"
	"reptile/internal/transport"
)

// Scale shrinks the paper's workloads to workstation size. Dataset scales
// the preset genome lengths (reads scale along to keep coverage); RankDiv
// divides the paper's rank counts; MaxRanks caps the result (goroutine
// ranks are cheap but not free).
type Scale struct {
	Dataset  float64
	RankDiv  int
	MaxRanks int
	// Chaos, when non-nil, injects this fault schedule into every
	// experiment run (reptile-bench -chaos), e.g. to measure the overhead
	// of a benign latency schedule on the scaling curves.
	Chaos *transport.Plan
}

// DefaultScale is sized for cmd/reptile-bench: full harness in minutes.
func DefaultScale() Scale { return Scale{Dataset: 0.25, RankDiv: 32, MaxRanks: 256} }

// QuickScale is sized for go test -bench: each experiment in seconds.
func QuickScale() Scale { return Scale{Dataset: 0.05, RankDiv: 128, MaxRanks: 16} }

// Ranks maps a paper rank count onto this scale.
func (s Scale) Ranks(paper int) int {
	n := paper / s.RankDiv
	if n < 2 {
		n = 2
	}
	if s.MaxRanks > 0 && n > s.MaxRanks {
		n = s.MaxRanks
	}
	return n
}

// Table is a rendered experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Note   string     `json:"note"` // paper-reference note for EXPERIMENTS.md
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// CSV renders the table as comma-separated values (header + rows), for
// plotting the figures outside Go.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// JSON renders the table as an indented JSON object (id, title, note,
// header, rows), for machine-readable benchmark artifacts such as
// BENCH_lookup.json.
func (t *Table) JSON() (string, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "   paper: %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Table, error)
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Datasets used for experimentation", TableI},
		{"fig2", "128 ranks, ranks-per-node sweep (E.Coli)", Fig2},
		{"fig3", "Per-rank k-mer and tile counts (E.Coli)", Fig3},
		{"fig4", "Load balance on/off: per-rank time and errors (E.Coli)", Fig4},
		{"fig5", "Heuristics: time and memory footprint (E.Coli)", Fig5},
		{"fig6", "E.Coli strong scaling, balanced vs imbalanced", Fig6},
		{"fig7", "Drosophila strong scaling", Fig7},
		{"fig8", "Human strong scaling", Fig8},
		{"batchsweep", "Batch-reads chunk-size sweep (supplementary)", BatchSweep},
		{"lookup", "Remote-lookup batching: messages per read (supplementary)", Lookup},
		{"build", "Spectrum build: worker sharding and packed stores (supplementary)", Build},
		{"snapshot", "Spectrum snapshot cache: cold build vs warm load (supplementary)", Snapshot},
		{"recover", "Rank-failure recovery: R=2 overhead and crash survival (supplementary)", Recover},
		{"serve", "Resident service: concurrent clients vs per-job batch runs (supplementary)", Serve},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ---

// buildDataset materializes a preset at scale.
func buildDataset(p genome.Preset, sc Scale, localized bool) *genome.Dataset {
	sp := p.Scaled(sc.Dataset)
	if localized {
		return sp.BuildLocalized()
	}
	return sp.Build()
}

// optionsFor derives engine options from a dataset's coverage, carrying the
// scale's fault schedule along.
func optionsFor(sc Scale, ds *genome.Dataset, h core.Heuristics, balance bool) core.Options {
	return core.Options{
		Config:      reptile.ForCoverage(ds.Coverage()),
		Heuristics:  h,
		LoadBalance: balance,
		Chaos:       sc.Chaos,
	}
}

// engineRun is the common run path.
func engineRun(ds *genome.Dataset, np int, opts core.Options) (*core.Output, error) {
	return core.Run(&core.MemorySource{Reads: ds.Reads}, np, opts)
}

// project applies the BG/Q model with the run's wire mode.
func project(out *core.Output, shape machine.Shape, h core.Heuristics) (machine.Projection, error) {
	universal, req, resp := core.ProjectOptsFor(h)
	return machine.BGQ().Project(&out.Run, shape, machine.ProjectOpts{
		Universal: universal, ReqBytes: req, RespBytes: resp,
	})
}

// shape32 is the paper's standard layout: 32 ranks/node, 2 threads/rank.
func shape32(np int) machine.Shape {
	rpn := 32
	if np < rpn {
		rpn = np
	}
	return machine.Shape{Ranks: np, RanksPerNode: rpn, ThreadsPerRank: 2}
}

func secs(x float64) string {
	if x < 1 {
		return fmt.Sprintf("%.3fs", x)
	}
	return fmt.Sprintf("%.2fs", x)
}
func mib(b int64) string   { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
func count(v int64) string { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
