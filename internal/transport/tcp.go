package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig describes one rank of a multi-process TCP group. Addrs lists
// every rank's listen address in rank order; all processes must agree on it
// (the moral equivalent of an MPI host file).
type TCPConfig struct {
	Rank  int
	Addrs []string
	// DialTimeout bounds the whole connection-establishment phase.
	// Zero means 30s.
	DialTimeout time.Duration
	// Retry is the delay between dial attempts while peers start up.
	// Zero means 50ms.
	Retry time.Duration
	// PeerTimeout bounds silence on an established link: if no frame (not
	// even a heartbeat) arrives from a peer within this window, the peer is
	// declared down and the endpoint fails with ErrPeerDown. It also bounds
	// blocked writes into a stalled socket. Zero disables deadlines and
	// heartbeats — the pre-failure-model behavior, where only EOF/reset
	// surfaces a dead peer.
	PeerTimeout time.Duration
	// HeartbeatInterval is how often an idle link is kept alive. Zero means
	// PeerTimeout/3. Ignored when PeerTimeout is zero.
	HeartbeatInterval time.Duration
}

// frame layout: tag int32 | length uint32 | crc32 uint32 | payload, with the
// CRC (IEEE) covering the tag+length header and the payload. The sender's
// rank is established once per connection by a 4-byte hello, not repeated
// per frame. A CRC mismatch on receive surfaces as ErrCorruptFrame instead
// of a garbage decode further up the stack.
const (
	frameHeader = 12
	crcOffset   = 8
)

// maxFrame bounds a single payload; collectives chunk beneath this.
const maxFrame = 1 << 30

// tcpPeer is one live connection with a serialized writer.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	// corruptNext, when armed by the chaos hook, flips one payload byte in
	// the next outgoing frame after its CRC has been computed, so the
	// corruption is detectable on the receive side. One-shot.
	corruptNext bool // guarded by mu
}

func (p *tcpPeer) write(tag int, data []byte, timeout time.Duration) error {
	buf := make([]byte, frameHeader+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	copy(buf[frameHeader:], data)
	crc := crc32.ChecksumIEEE(buf[0:crcOffset])
	crc = crc32.Update(crc, crc32.IEEETable, data)
	binary.LittleEndian.PutUint32(buf[crcOffset:frameHeader], crc)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.corruptNext {
		p.corruptNext = false
		if len(data) > 0 {
			buf[frameHeader] ^= 0xff
		} else {
			buf[0] ^= 0xff
		}
	}
	if timeout > 0 {
		p.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, err := p.conn.Write(buf)
	return err
}

// armCorrupt makes the next frame written to this peer fail its CRC check
// on arrival.
func (p *tcpPeer) armCorrupt() {
	p.mu.Lock()
	p.corruptNext = true
	p.mu.Unlock()
}

// NewTCP joins (or forms) a full-mesh TCP group and returns this rank's
// endpoint, blocking until every pairwise connection is up. Rank i accepts
// connections from ranks j > i and dials ranks j < i, so each pair shares
// exactly one duplex connection.
func NewTCP(cfg TCPConfig) (*Endpoint, error) {
	np := len(cfg.Addrs)
	if np < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= np {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", cfg.Rank, np)
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 30 * time.Second
	}
	retry := cfg.Retry
	if retry == 0 {
		retry = 50 * time.Millisecond
	}
	heartbeat := cfg.HeartbeatInterval
	if heartbeat == 0 {
		heartbeat = cfg.PeerTimeout / 3
	}

	e := &Endpoint{
		rank:     cfg.Rank,
		size:     np,
		mbox:     newMailbox(),
		counters: NewCounters(np),
	}
	peers := make([]*tcpPeer, np)

	var ln net.Listener
	needAccepts := np - 1 - cfg.Rank
	if needAccepts > 0 {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d listen: %w", cfg.Rank, err)
		}
	}

	errc := make(chan error, np)
	var wg sync.WaitGroup

	// Accept from higher ranks.
	if needAccepts > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < needAccepts; i++ {
				conn, err := ln.Accept()
				if err != nil {
					errc <- err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					errc <- err
					return
				}
				from := int(binary.LittleEndian.Uint32(hello[:]))
				if from <= cfg.Rank || from >= np {
					errc <- fmt.Errorf("transport: bogus hello from rank %d", from)
					return
				}
				peers[from] = &tcpPeer{conn: conn}
			}
		}()
	}

	// Dial lower ranks.
	for j := 0; j < cfg.Rank; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			deadline := time.Now().Add(dialTimeout)
			for {
				conn, err := net.Dial("tcp", cfg.Addrs[j])
				if err == nil {
					var hello [4]byte
					binary.LittleEndian.PutUint32(hello[:], uint32(cfg.Rank))
					if _, err := conn.Write(hello[:]); err != nil {
						errc <- err
						return
					}
					peers[j] = &tcpPeer{conn: conn}
					return
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("transport: rank %d dialing rank %d: %w", cfg.Rank, j, err)
					return
				}
				// Backoff while the peer process starts up: polling an
				// external resource, not synchronizing goroutines.
				time.Sleep(retry) // reptile-lint:allow nosleepsync dial retry backoff
			}
		}(j)
	}

	wg.Wait()
	if ln != nil {
		ln.Close()
	}
	select {
	case err := <-errc:
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
		return nil, err
	default:
	}

	// Reader goroutines: one per peer, delivering into the shared mailbox.
	// They exit when their connection is torn down; Close joins them so no
	// reader can touch the mailbox after Close returns.
	var readers sync.WaitGroup
	for from, p := range peers {
		if p == nil {
			continue
		}
		readers.Add(1)
		go func(from int, conn net.Conn) {
			defer readers.Done()
			readLoop(e, from, conn, cfg.PeerTimeout)
		}(from, p.conn)
	}

	// Heartbeat goroutine: while the application is idle, an empty control
	// frame per interval keeps every peer's read deadline from expiring, so
	// PeerTimeout distinguishes "quiet but alive" from "gone".
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if cfg.PeerTimeout > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			ticker := time.NewTicker(heartbeat)
			defer ticker.Stop()
			hb := encodeHeartbeat(cfg.Rank)
			for {
				select {
				case <-hbStop:
					return
				case <-ticker.C:
					for _, p := range peers {
						if p != nil {
							// A write error here means the reader side is
							// about to (or already did) declare the peer
							// down; the reader owns failure reporting.
							p.write(hb.Tag, hb.Data, cfg.PeerTimeout)
						}
					}
				}
			}
		}()
	}

	e.sendFn = func(to int, m Message) error {
		if to == e.rank {
			return e.deliver(m)
		}
		if len(m.Data) > maxFrame {
			return fmt.Errorf("transport: frame of %d bytes exceeds %d", len(m.Data), maxFrame)
		}
		if err := peers[to].write(m.Tag, m.Data, cfg.PeerTimeout); err != nil {
			if e.closed.Load() {
				return ErrClosed
			}
			// The reader may have severed this link already (CRC failure,
			// EOF) — its poison names the root cause; the raw write error is
			// just the teardown's echo.
			if perr := e.mbox.poison(); perr != nil {
				return perr
			}
			return &PeerDownError{Rank: to, Cause: err}
		}
		return nil
	}
	e.corruptFn = func(to int) {
		if to != e.rank && peers[to] != nil {
			peers[to].armCorrupt()
		}
	}
	e.dropFn = func(to int) {
		if to != e.rank && peers[to] != nil {
			// Sever the link as if the cable were pulled: our reader sees
			// EOF and declares the peer down; the peer's reader does the
			// same on its side.
			peers[to].conn.Close()
		}
	}
	e.closeFn = func() error {
		close(hbStop)
		hbWG.Wait()
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
		readers.Wait()
		return nil
	}
	return e, nil
}

// peerFailed records that the link to `from` failed: unless this endpoint
// is tearing itself down (Close in progress — readers seeing their own
// sockets close is not a peer failure), the mailbox is poisoned so every
// blocked and future receive returns the failure.
func (e *Endpoint) peerFailed(from int, cause error) {
	if e.closed.Load() {
		return
	}
	if _, ok := cause.(*CorruptFrameError); ok {
		// Corruption is never recoverable: it is a wire-integrity failure,
		// not a topology change, so it bypasses the peer-down handler.
		e.mbox.fail(cause)
		return
	}
	e.peerDown(from, cause)
}

func readLoop(e *Endpoint, from int, conn net.Conn, peerTimeout time.Duration) {
	var hdr [frameHeader]byte
	for {
		if peerTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(peerTimeout))
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			e.peerFailed(from, err)
			return
		}
		tag := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		wantCRC := binary.LittleEndian.Uint32(hdr[crcOffset:frameHeader])
		if n > maxFrame {
			// A length this bogus means the header itself is damaged.
			e.peerFailed(from, &CorruptFrameError{From: from})
			conn.Close()
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			e.peerFailed(from, err)
			return
		}
		crc := crc32.ChecksumIEEE(hdr[0:crcOffset])
		crc = crc32.Update(crc, crc32.IEEETable, data)
		if crc != wantCRC {
			// The frame boundary can no longer be trusted, so the link is
			// unusable: fail and drop the connection.
			e.peerFailed(from, &CorruptFrameError{From: from})
			conn.Close()
			return
		}
		if err := e.deliver(Message{From: from, Tag: tag, Data: data}); err != nil {
			return
		}
	}
}

// LoopbackAddrs returns np distinct loopback addresses starting at basePort,
// for single-machine TCP groups (examples and tests).
func LoopbackAddrs(np, basePort int) []string {
	out := make([]string, np)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	return out
}
