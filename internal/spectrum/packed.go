package spectrum

import (
	"encoding/binary"
	"fmt"
	"sort"

	"reptile/internal/kmer"
)

// PackedStore is an immutable open-addressing spectrum: one flat power-of-two
// slab of keys probed linearly from HashID(id), with the counts in a parallel
// slab. It is the frozen form every mutable HashStore collapses into at the
// end of spectrum construction (paper Step III): Count is allocation- and
// pointer-chase-free, and MemBytes is the exact slab footprint rather than
// the 2x map estimate — at the build's load factor that roughly halves the
// resident spectrum memory (see DESIGN.md §11).
//
// Concurrency: immutable after construction, so it is safe to share between
// the responder goroutine and the correction workers with no locking. The
// mutating Lookuper-companion methods (Add, Set, Delete, Clear, Prune) exist
// only to panic: a write after the freeze point is an engine bug, and the
// freezeguard lint flags it statically.
type PackedStore struct {
	keys   []uint64 // 0 means empty; the real ID 0 lives out of band
	counts []uint32
	mask   uint64
	n      int // live entries, including the out-of-band zero ID
	// ID 0 (the all-A k-mer) cannot use key 0, which marks an empty slot.
	hasZero   bool
	zeroCount uint32
}

// packedMaxLoad is expressed as a fraction num/den: the table is sized to
// the smallest power of two keeping load ≤ 0.8. Linear probing stays short
// (a handful of contiguous slots, i.e. 1-2 cache lines per miss) while the
// per-entry footprint stays well under the map's ~24 bytes.
const (
	packedLoadNum = 4
	packedLoadDen = 5
)

// NewPacked builds a PackedStore from entries. Duplicate IDs are merged by
// summing their counts (HashStore.Add semantics), so disjoint shard dumps
// and raw dumps both pack correctly.
func NewPacked(entries []Entry) *PackedStore {
	p := &PackedStore{}
	nonZero := 0
	for _, e := range entries {
		if e.ID != 0 {
			nonZero++
		}
	}
	if nonZero > 0 {
		capSlots := uint64(1)
		// Round the load-factor bound UP: floor division let a 1- or
		// 2-entry store fill every slot, and a probe for an absent id on
		// a full table never finds the empty slot that terminates it.
		// Ceiling keeps load strictly below 1 at every size.
		need := (uint64(nonZero)*packedLoadDen + packedLoadNum - 1) / packedLoadNum
		for capSlots < need {
			capSlots <<= 1
		}
		p.keys = make([]uint64, capSlots)
		p.counts = make([]uint32, capSlots)
		p.mask = capSlots - 1
	}
	for _, e := range entries {
		p.insert(e.ID, e.Count)
	}
	return p
}

// insert is the build-time probe loop; it is unexported so the store is
// immutable once NewPacked returns.
//
// reptile-lint:hotpath
func (p *PackedStore) insert(id kmer.ID, cnt uint32) {
	if id == 0 {
		if !p.hasZero {
			p.hasZero = true
			p.n++
		}
		p.zeroCount += cnt
		return
	}
	i := kmer.HashID(id) & p.mask
	for {
		switch p.keys[i] {
		case 0:
			p.keys[i] = uint64(id)
			p.counts[i] = cnt
			p.n++
			return
		case uint64(id):
			p.counts[i] += cnt
			return
		}
		i = (i + 1) & p.mask
	}
}

// Count implements Lookuper: probe linearly from the hash slot until the key
// or an empty slot.
//
// reptile-lint:hotpath
func (p *PackedStore) Count(id kmer.ID) (uint32, bool) {
	if id == 0 {
		return p.zeroCount, p.hasZero
	}
	if len(p.keys) == 0 {
		return 0, false
	}
	i := kmer.HashID(id) & p.mask
	for {
		k := p.keys[i]
		if k == uint64(id) {
			return p.counts[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & p.mask
	}
}

// Len implements Lookuper.
func (p *PackedStore) Len() int { return p.n }

// MemBytes implements Lookuper with the exact slab footprint — no load
// factor guesswork, which is what makes the Fig-5 memory comparison honest
// for the frozen stores.
func (p *PackedStore) MemBytes() int64 {
	return int64(len(p.keys))*8 + int64(len(p.counts))*4 + 64
}

// Each calls fn for every entry until fn returns false. Iteration order is
// unspecified (slab order).
//
// reptile-lint:hotpath
func (p *PackedStore) Each(fn func(Entry) bool) {
	if p.hasZero && !fn(Entry{ID: 0, Count: p.zeroCount}) {
		return
	}
	for i, k := range p.keys {
		if k == 0 {
			continue
		}
		if !fn(Entry{ID: kmer.ID(k), Count: p.counts[i]}) {
			return
		}
	}
}

// Entries returns all entries sorted by ID — same contract as
// HashStore.Entries, so the replication paths work on frozen stores.
func (p *PackedStore) Entries() []Entry {
	return p.EntriesInto(make([]Entry, 0, p.n))
}

// EntriesInto appends all entries to buf sorted by ID and returns the
// extended slice; the appended region is sorted, so passing an empty reused
// buffer gives Entries without the allocation.
//
// reptile-lint:hotpath
func (p *PackedStore) EntriesInto(buf []Entry) []Entry {
	start := len(buf)
	p.Each(func(e Entry) bool { buf = append(buf, e); return true })
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].ID < tail[j].ID })
	return buf
}

// Add panics: the store is frozen.
func (p *PackedStore) Add(id kmer.ID, n uint32) { panic("spectrum: Add on frozen PackedStore") }

// Set panics: the store is frozen.
func (p *PackedStore) Set(id kmer.ID, n uint32) { panic("spectrum: Set on frozen PackedStore") }

// Delete panics: the store is frozen.
func (p *PackedStore) Delete(id kmer.ID) { panic("spectrum: Delete on frozen PackedStore") }

// Clear panics: the store is frozen.
func (p *PackedStore) Clear() { panic("spectrum: Clear on frozen PackedStore") }

// Prune panics: the store is frozen.
func (p *PackedStore) Prune(min uint32) int { panic("spectrum: Prune on frozen PackedStore") }

// Slab image layout: a fixed header followed by the raw key and count
// slabs, so an import reconstructs the *exact* probe layout of the source
// store without rehashing — a replica answers every Count with the identical
// probe sequence the owner would have. The image is self-delimiting (the
// header carries the slot count), so several stores concatenate into one
// payload for ring re-replication.
const slabHdrBytes = 8 + 8 + 4 + 1 // slots u64 | n u64 | zeroCount u32 | hasZero u8

// ExportSlabs appends this store's slab image to buf and returns the
// extended slice. The store is immutable, so the export is safe to run
// concurrently with lookups.
func (p *PackedStore) ExportSlabs(buf []byte) []byte {
	var hdr [slabHdrBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(p.keys)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(p.n))
	binary.LittleEndian.PutUint32(hdr[16:20], p.zeroCount)
	if p.hasZero {
		hdr[20] = 1
	}
	buf = append(buf, hdr[:]...)
	var w [8]byte
	for _, k := range p.keys {
		binary.LittleEndian.PutUint64(w[:], k)
		buf = append(buf, w[:]...)
	}
	for _, c := range p.counts {
		binary.LittleEndian.PutUint32(w[:4], c)
		buf = append(buf, w[:4]...)
	}
	return buf
}

// SlabImageError reports a rejected packed-slab image: a corrupt or
// truncated header, or a payload shorter than the header promises. It is
// always returned *before* any slab allocation, so a hostile header cannot
// make the importer reserve multi-GB slabs it will never fill.
type SlabImageError struct {
	Reason string
}

// Error implements error.
func (e *SlabImageError) Error() string { return "spectrum: slab image: " + e.Reason }

// ImportPackedSlabs reconstructs a PackedStore from the slab image at the
// head of b, returning the store and the remainder of b (images are
// self-delimiting and concatenate). The reconstructed slabs are
// byte-identical to the exporter's, so replica lookups probe exactly as the
// owner's would. A malformed image yields a *SlabImageError with nothing
// allocated.
func ImportPackedSlabs(b []byte) (*PackedStore, []byte, error) {
	if len(b) < slabHdrBytes {
		return nil, nil, &SlabImageError{Reason: fmt.Sprintf("%d bytes, shorter than the %d-byte header", len(b), slabHdrBytes)}
	}
	slots := binary.LittleEndian.Uint64(b[0:8])
	n := binary.LittleEndian.Uint64(b[8:16])
	if slots > 0 && slots&(slots-1) != 0 {
		return nil, nil, &SlabImageError{Reason: fmt.Sprintf("%d slots (not a power of two)", slots)}
	}
	// Bound slots by the bytes actually present (12 per slot) BEFORE
	// allocating anything. Dividing the remainder sidesteps the
	// slots*12 overflow a hostile header could use to wrap the length
	// check and trigger a giant make().
	if slots > uint64(len(b)-slabHdrBytes)/12 {
		return nil, nil, &SlabImageError{Reason: fmt.Sprintf("truncated: %d bytes for %d slots", len(b), slots)}
	}
	// n counts live entries: at most one per slot plus the out-of-band
	// zero ID. Anything larger is a corrupt header, not a real store.
	if n > slots+1 {
		return nil, nil, &SlabImageError{Reason: fmt.Sprintf("%d entries in %d slots", n, slots)}
	}
	if b[20] > 1 {
		return nil, nil, &SlabImageError{Reason: fmt.Sprintf("hasZero flag %d", b[20])}
	}
	need := uint64(slabHdrBytes) + slots*12
	p := &PackedStore{
		n:         int(n),
		zeroCount: binary.LittleEndian.Uint32(b[16:20]),
		hasZero:   b[20] == 1,
	}
	if slots > 0 {
		p.keys = make([]uint64, slots)
		p.counts = make([]uint32, slots)
		p.mask = slots - 1
		off := slabHdrBytes
		for i := range p.keys {
			p.keys[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
		for i := range p.counts {
			p.counts[i] = binary.LittleEndian.Uint32(b[off:])
			off += 4
		}
	}
	return p, b[need:], nil
}

// Freeze packs one or more mutable HashStores — disjoint shards of one
// logical spectrum — into a single PackedStore and releases every shard's
// map, so the pruned entries' memory actually returns to the allocator
// instead of lingering in emptied buckets. The shards are frozen afterwards:
// any further mutation panics.
func Freeze(shards ...*HashStore) *PackedStore {
	total := 0
	for _, h := range shards {
		total += h.Len()
	}
	entries := make([]Entry, 0, total)
	for _, h := range shards {
		h.Each(func(e Entry) bool { entries = append(entries, e); return true })
	}
	// Shards are disjoint, so one global sort gives a deterministic slab
	// layout independent of shard count and map iteration order.
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	p := NewPacked(entries)
	for _, h := range shards {
		h.Release()
	}
	return p
}
