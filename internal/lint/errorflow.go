package lint

import (
	"go/ast"
	"strings"
)

// ErrorFlow enforces that errors cannot silently die in the packages where
// an error is a protocol event: any package that declares or imports a
// declarer of msgplane.ProtocolError / core.AbortError. On those paths a
// produced error must reach a return, a poison/abort/fail call, or an
// explicit `reptile-lint:allow errorflow <reason>`; the analyzer flags the
// three ways one leaks instead — a call statement whose error result is
// dropped, a `_ =` discard, and an err variable (including a shadowing
// redeclaration) that is written but never read on any path.
type ErrorFlow struct{}

// NewErrorFlow returns the analyzer with default configuration.
func NewErrorFlow() *ErrorFlow { return &ErrorFlow{} }

// Name implements Analyzer.
func (ef *ErrorFlow) Name() string { return "errorflow" }

// Doc implements Analyzer.
func (ef *ErrorFlow) Doc() string {
	return "dropped, discarded, or shadowed errors in packages carrying ProtocolError/AbortError"
}

// Check implements Analyzer; all work happens module-wide in CheckModule.
func (ef *ErrorFlow) Check(pkg *Package, r *Reporter) {}

// poisonFuncs are callee names whose whole purpose is to consume an error
// (abort the run, poison a dispatcher); calling one as a bare statement is
// the sanctioned terminal use, not a drop.
var poisonFuncs = map[string]bool{
	"fail": true, "Fail": true,
	"abort": true, "Abort": true,
	"poison": true, "Poison": true,
}

// CheckModule implements ModuleAnalyzer.
func (ef *ErrorFlow) CheckModule(m *Module, report func(*Package) *Reporter) {
	// Sentinel declarers: the packages defining the typed protocol errors.
	sentinels := map[string]bool{}
	for _, pkg := range m.Pkgs {
		names := m.typeNames[pkg.ImportPath]
		if names["ProtocolError"] || names["AbortError"] {
			sentinels[pkg.ImportPath] = true
		}
	}
	for _, pkg := range m.Pkgs {
		if !ef.active(m, pkg, sentinels) {
			continue
		}
		r := report(pkg)
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := m.FuncOf(pkg, fd)
				if fi == nil {
					continue
				}
				ef.checkFunc(m, fi, r)
			}
		}
	}
}

// active reports whether pkg is on a typed-error path: it declares a
// sentinel type or imports a package that does.
func (ef *ErrorFlow) active(m *Module, pkg *Package, sentinels map[string]bool) bool {
	if sentinels[pkg.ImportPath] {
		return true
	}
	for _, f := range pkg.SourceFiles() {
		for _, p := range m.imports[f] {
			if sentinels[p] {
				return true
			}
		}
	}
	return false
}

// checkFunc applies the three leak checks to one function body.
func (ef *ErrorFlow) checkFunc(m *Module, fi *FuncInfo, r *Reporter) {
	pkg, file, fn := fi.Pkg, fi.File, fi.Decl
	env := m.envOf(fi)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ExprStmt:
			call, ok := t.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fi2 := m.resolveCall(pkg, file, env, call)
			if fi2 == nil || !fi2.returnsError || poisonFuncs[fi2.Decl.Name.Name] {
				return true
			}
			r.Reportf(call.Pos(), "call to %s drops its error result; handle it, return it, or mark reptile-lint:allow errorflow", fi2.String())
		case *ast.AssignStmt:
			ef.checkDiscards(m, fi, env, t, r)
		}
		return true
	})

	for _, u := range m.defUses(pkg, file, fn, env) {
		if u.param || u.writes == 0 || u.reads > 0 {
			continue
		}
		if !u.errValued && !errName(u.name) {
			continue
		}
		r.Reportf(u.pos, "%s is assigned an error that is never checked on any path (dropped or shadowed); return it, poison the run, or mark reptile-lint:allow errorflow", u.name)
	}
}

// checkDiscards flags `_ =` discards of error values in one assignment.
func (ef *ErrorFlow) checkDiscards(m *Module, fi *FuncInfo, env *funcEnv, as *ast.AssignStmt, r *Reporter) {
	pkg, file := fi.Pkg, fi.File
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, _ := f(): the trailing result of a single call.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !m.callReturnsError(pkg, file, env, call) {
			return
		}
		last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		if ok && last.Name == "_" {
			r.Reportf(last.Pos(), "the error result of %s is discarded with _; handle it or mark reptile-lint:allow errorflow", callLabel(m, pkg, file, env, call))
		}
		return
	}
	for i := 0; i < len(as.Lhs) && i < len(as.Rhs); i++ {
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		switch rhs := as.Rhs[i].(type) {
		case *ast.CallExpr:
			if m.callReturnsError(pkg, file, env, rhs) {
				r.Reportf(id.Pos(), "the error result of %s is discarded with _; handle it or mark reptile-lint:allow errorflow", callLabel(m, pkg, file, env, rhs))
			}
		case *ast.Ident:
			if errName(rhs.Name) {
				r.Reportf(id.Pos(), "error %s is discarded with _; handle it or mark reptile-lint:allow errorflow", rhs.Name)
			}
		}
	}
}

// callLabel names a call for a diagnostic: the resolved module function
// when known, the printed callee otherwise.
func callLabel(m *Module, pkg *Package, file *File, env *funcEnv, call *ast.CallExpr) string {
	if fi := m.resolveCall(pkg, file, env, call); fi != nil {
		return fi.String()
	}
	return render(pkg.Fset, call.Fun)
}

// errName matches the project's error-variable naming: err, werr, sendErr...
func errName(name string) bool {
	return name == "err" || strings.HasSuffix(name, "err") || strings.HasSuffix(name, "Err")
}
