package core

import (
	"fmt"
	"sync"

	"reptile/internal/kmer"
	"reptile/internal/transport"
)

// defaultLookupWindow is the per-owner in-flight batch window used when
// Heuristics.LookupWindow is left zero with batching enabled.
const defaultLookupWindow = 4

// ProtocolError reports a violation of the lookup request/response
// protocol, naming both the rank a response was expected from and the rank
// it actually arrived from. Batched denotes the request-id scheme (a
// tagBatchResp whose id is unknown or whose sender does not match the
// request's addressee); otherwise the violation was on the legacy
// one-at-a-time tagResp path.
type ProtocolError struct {
	Want    int    // rank the request was addressed to; -1 when the id is unknown
	Got     int    // rank the offending response arrived from
	ReqID   uint32 // request id on the offending frame (batched only)
	Batched bool
}

func (p *ProtocolError) Error() string {
	if !p.Batched {
		return fmt.Sprintf("core: protocol violation: response from rank %d, expected rank %d", p.Got, p.Want)
	}
	if p.Want < 0 {
		return fmt.Sprintf("core: protocol violation: rank %d answered request id %d this rank never issued", p.Got, p.ReqID)
	}
	return fmt.Sprintf("core: protocol violation: response for request %d from rank %d, expected rank %d", p.ReqID, p.Got, p.Want)
}

// batchCall is one in-flight batch request. answers and err are written
// exactly once (by deliver or fail) before done is closed; wait reads them
// only after done, so the channel close is the happens-before edge.
type batchCall struct {
	owner   int
	done    chan struct{}
	answers []batchAnswer
	err     error
}

// wait blocks until the rank's responder delivers the batch response (or
// the dispatcher is poisoned) and returns the positional answers.
func (c *batchCall) wait() ([]batchAnswer, error) {
	<-c.done
	return c.answers, c.err
}

// lookupDispatcher coalesces remote spectrum lookups into tagBatchReq
// frames and matches interleaved tagBatchResp frames back to their issuers
// by request id — the software message aggregation layer. Workers call
// start/wait (possibly from several goroutines); the rank's single
// responder goroutine calls deliver; whoever observes a transport failure
// calls fail, which poisons every outstanding and future call so no worker
// stays parked on an answer that will never come.
//
// The per-owner in-flight window is the pipeline depth: a worker may issue
// up to window unanswered batches at one peer before start blocks, which
// overlaps request latency with candidate enumeration while bounding how
// much queue the peer's responder must absorb.
type lookupDispatcher struct {
	e      transport.Conn
	window int

	mu       sync.Mutex
	cond     *sync.Cond            // guarded by mu; signaled on slot release and on fail
	nextID   uint32                // guarded by mu
	pending  map[uint32]*batchCall // guarded by mu
	inflight []int                 // guarded by mu; outstanding batches per owner
	failed   error                 // guarded by mu; first poison, sticky

	batchesSent int64 // guarded by mu
	idsSent     int64 // guarded by mu
}

// newLookupDispatcher builds a dispatcher for an np-rank group.
func newLookupDispatcher(e transport.Conn, np, window int) *lookupDispatcher {
	if window <= 0 {
		window = defaultLookupWindow
	}
	d := &lookupDispatcher{
		e:        e,
		window:   window,
		pending:  make(map[uint32]*batchCall),
		inflight: make([]int, np),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// start issues one batch of ids (all of one kind) to owner, blocking while
// the owner's window is full. ids is not retained. The returned call
// resolves through wait.
func (d *lookupDispatcher) start(owner int, kind byte, ids []kmer.ID) (*batchCall, error) {
	if len(ids) == 0 || len(ids) > maxBatchEntries {
		return nil, fmt.Errorf("core: batch of %d ids", len(ids))
	}
	d.mu.Lock()
	for d.failed == nil && d.inflight[owner] >= d.window {
		d.cond.Wait()
	}
	if d.failed != nil {
		err := d.failed
		d.mu.Unlock()
		return nil, err
	}
	d.nextID++
	reqID := d.nextID
	call := &batchCall{owner: owner, done: make(chan struct{})}
	d.pending[reqID] = call
	d.inflight[owner]++
	d.batchesSent++
	d.idsSent += int64(len(ids))
	payload := encodeBatchReq(reqID, kind, ids)
	d.mu.Unlock()

	// The send happens outside the lock (it may block on a TCP peer). The
	// response cannot race it: the owner only answers after receiving the
	// request, and the call is already registered.
	if err := d.e.Send(owner, tagBatchReq, payload); err != nil {
		d.mu.Lock()
		if _, ok := d.pending[reqID]; ok { // fail() may have reaped it already
			delete(d.pending, reqID)
			d.inflight[owner]--
			d.cond.Broadcast()
		}
		d.mu.Unlock()
		return nil, err
	}
	return call, nil
}

// roundTrip is start+wait for a single frame — the slow path for ids the
// prefetcher could not anticipate.
func (d *lookupDispatcher) roundTrip(owner int, kind byte, ids []kmer.ID) ([]batchAnswer, error) {
	call, err := d.start(owner, kind, ids)
	if err != nil {
		return nil, err
	}
	return call.wait()
}

// deliver routes one tagBatchResp frame to its issuer. Called from the
// rank's responder goroutine only. A frame whose request id is unknown, or
// whose sender is not the rank the request was addressed to, is a protocol
// violation naming both ranks; the caller turns it into a run abort.
func (d *lookupDispatcher) deliver(m transport.Message) error {
	reqID, answers, err := decodeBatchResp(m.Data)
	if err != nil {
		return err
	}
	d.mu.Lock()
	call, ok := d.pending[reqID]
	if !ok {
		d.mu.Unlock()
		return &ProtocolError{Want: -1, Got: m.From, ReqID: reqID, Batched: true}
	}
	if call.owner != m.From {
		d.mu.Unlock()
		return &ProtocolError{Want: call.owner, Got: m.From, ReqID: reqID, Batched: true}
	}
	delete(d.pending, reqID)
	d.inflight[m.From]--
	d.cond.Broadcast()
	d.mu.Unlock()
	call.answers = answers
	close(call.done)
	return nil
}

// fail poisons the dispatcher: every outstanding call resolves with the
// first failure, window waiters wake, and future starts are refused. Safe
// to call from any goroutine, more than once.
func (d *lookupDispatcher) fail(err error) {
	d.mu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	reaped := d.pending
	d.pending = make(map[uint32]*batchCall)
	for _, c := range reaped {
		d.inflight[c.owner]--
		c.err = d.failed
		close(c.done)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// counters returns the frame totals for the stats merge.
func (d *lookupDispatcher) counters() (batches, ids int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batchesSent, d.idsSent
}
