// Command reptile-serve runs the resident correction service (DESIGN.md
// §17): it builds — or warm-loads from the spectrum-snapshot cache — the
// frozen spectra once, keeps the rank group armed, and serves any number of
// correction sessions over a TCP front door until drained.
//
// Server, in-process ranks:
//
//	reptile-serve -fasta ecoli.fa -qual ecoli.qual -np 4 -addr 127.0.0.1:7311
//
// Server, one process per rank (rank 0 is the front door):
//
//	reptile-serve -transport tcp -rank 0 -addrs h0:9000,h1:9000 -fasta ... -addr 0.0.0.0:7311
//	reptile-serve -transport tcp -rank 1 -addrs h0:9000,h1:9000 -fasta ...
//
// Client (corrects a fasta/qual pair through a running server):
//
//	reptile-serve -client -addr 127.0.0.1:7311 -fasta job.fa -qual job.qual -out fixed
//
// SIGINT/SIGTERM drains gracefully: in-flight sessions complete, new opens
// are rejected with the typed draining error, and the per-session service
// statistics (reads/sec, p50/p99 session latency) print at exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"reptile/internal/config"
	"reptile/internal/core"
	"reptile/internal/fastaio"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/serve"
	"reptile/internal/snapshot"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

func main() {
	var (
		configPath = flag.String("config", "", "configuration file (overrides the other flags)")
		dumpConfig = flag.Bool("dump-config", false, "print the default configuration file and exit")

		fasta = flag.String("fasta", "", "input fasta file")
		qual  = flag.String("qual", "", "input quality file")
		np    = flag.Int("np", 4, "number of ranks (proc transport)")

		addr         = flag.String("addr", "127.0.0.1:7311", "front-door listen address (serve_addr); port 0 picks a free port")
		maxSessions  = flag.Int("max-sessions", 0, "per-tenant in-flight session cap at each executor rank (serve_max_sessions; 0 = default)")
		tenantWindow = flag.Int("tenant-window", 0, "in-flight chunks per session (serve_tenant_window; 0 = default)")

		k            = flag.Int("k", 12, "k-mer length")
		overlap      = flag.Int("overlap", 4, "tile overlap bases")
		kmerThr      = flag.Uint("kmer-threshold", 6, "k-mer solidity threshold")
		tileThr      = flag.Uint("tile-threshold", 3, "tile solidity threshold")
		chunk        = flag.Int("chunk", 4096, "reads per chunk (and per client frame in -client mode)")
		noBal        = flag.Bool("no-balance", false, "disable static load balancing")
		universal    = flag.Bool("universal", false, "universal message kind encoding")
		lookupBatch  = flag.Int("lookup-batch", 0, "batch remote lookups into frames of up to this many ids (0 = off)")
		lookupWindow = flag.Int("lookup-window", 0, "in-flight batch frames per peer (0 = default window when -lookup-batch is on)")
		workers      = flag.Int("workers", 0, "worker goroutines per rank (>1 requires -lookup-batch)")

		cacheDir = flag.String("cache-dir", "", "spectrum-snapshot cache directory: a hit warm-loads the frozen spectra and skips construction")
		snapPath = flag.String("snapshot", "", "explicit spectrum-snapshot prefix (mutually exclusive with -cache-dir)")

		transportName = flag.String("transport", "proc", "proc (goroutine ranks) or tcp (one process per rank; rank 0 is the front door)")
		rank          = flag.Int("rank", 0, "this process's rank (tcp transport)")
		addrs         = flag.String("addrs", "", "comma-separated rank addresses (tcp transport)")
		deadline      = flag.Duration("deadline", 0, "peer-failure detection window (tcp transport); 0 disables")

		client  = flag.Bool("client", false, "client mode: correct -fasta/-qual through the server at -addr and write -out")
		tenant  = flag.String("tenant", "default", "tenant name for admission control (client mode)")
		out     = flag.String("out", "corrected", "output file prefix (client mode)")
		verbose = flag.Bool("v", false, "print per-rank statistics at drain")
	)
	flag.Parse()

	if *dumpConfig {
		fmt.Print(config.Default().Render())
		return
	}
	if *client {
		if *fasta == "" || *qual == "" {
			fmt.Fprintln(os.Stderr, "reptile-serve: -client needs -fasta and -qual")
			os.Exit(2)
		}
		runClient(*addr, *tenant, *fasta, *qual, *out, *chunk)
		return
	}

	if *configPath != "" {
		settings, err := config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		if settings.FastaPath == "" || settings.QualPath == "" {
			fatal(fmt.Errorf("%s: fasta and qual are required", *configPath))
		}
		listen := *addr
		if settings.Options.Serve != nil && settings.Options.Serve.Addr != "" {
			listen = settings.Options.Serve.Addr
		}
		src := &core.FileSource{FastaPath: settings.FastaPath, QualPath: settings.QualPath}
		if err := resolveSnapshotDigest(&settings.Options, settings.FastaPath, settings.QualPath); err != nil {
			fatal(err)
		}
		runServeProc(src, settings.Ranks, settings.Options, listen, *verbose)
		return
	}

	if *fasta == "" || *qual == "" {
		fmt.Fprintln(os.Stderr, "reptile-serve: -fasta and -qual are required")
		os.Exit(2)
	}
	cfg := reptile.Default()
	cfg.Spec.K = *k
	cfg.Spec.Overlap = *overlap
	cfg.KmerThreshold = uint32(*kmerThr)
	cfg.TileThreshold = uint32(*tileThr)
	cfg.ChunkReads = *chunk
	opts := core.Options{
		Config: cfg,
		Heuristics: core.Heuristics{
			Universal:    *universal,
			LookupBatch:  *lookupBatch,
			LookupWindow: *lookupWindow,
			Workers:      *workers,
		},
		LoadBalance: !*noBal,
		Serve:       &core.ServeOptions{Addr: *addr, MaxSessions: *maxSessions, TenantWindow: *tenantWindow},
	}
	if *cacheDir != "" || *snapPath != "" {
		opts.Snapshot = &core.SnapshotOptions{Dir: *cacheDir, Path: *snapPath}
	}
	if err := resolveSnapshotDigest(&opts, *fasta, *qual); err != nil {
		fatal(err)
	}
	src := &core.FileSource{FastaPath: *fasta, QualPath: *qual}

	switch *transportName {
	case "proc":
		runServeProc(src, *np, opts, *addr, *verbose)
	case "tcp":
		runServeTCP(src, opts, *rank, strings.Split(*addrs, ","), *deadline, *addr, *verbose)
	default:
		fmt.Fprintf(os.Stderr, "reptile-serve: unknown transport %q\n", *transportName)
		os.Exit(2)
	}
}

// resolveSnapshotDigest fills the cache-mode input digest from the run's
// input files, exactly as reptile-correct does: content-addressed, so only
// byte changes invalidate the cache entry.
func resolveSnapshotDigest(opts *core.Options, fasta, qual string) error {
	if opts.Snapshot == nil || opts.Snapshot.Dir == "" || opts.Snapshot.InputDigest != "" {
		return nil
	}
	digest, err := snapshot.DigestFiles(fasta, qual)
	if err != nil {
		return fmt.Errorf("hashing input for the snapshot cache: %w", err)
	}
	opts.Snapshot.InputDigest = digest
	return nil
}

// runServeProc runs the whole rank group as goroutines in this process:
// rank 0 is the front door, the others are pure executors serving until the
// drain.
func runServeProc(src core.Source, np int, opts core.Options, addr string, verbose bool) {
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		fatal(err)
	}
	defer transport.CloseGroup(eps)
	outs := make([]*core.RankOutput, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 1; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			svc, err := core.StartService(eps[r], src, opts)
			if err != nil {
				errs[r] = err
				return
			}
			outs[r], errs[r] = svc.ServeExecutor()
		}(r)
	}
	svc, err := core.StartService(eps[0], src, opts)
	if err != nil {
		// Unblock the executor ranks (their collectives error on the closed
		// group) before reporting.
		// reptile-lint:allow errorflow the start failure being reported is the interesting error; this close exists to unblock the group
		transport.CloseGroup(eps)
		wg.Wait()
		fatal(err)
	}
	outs[0], errs[0] = frontDoor(svc, addr, verbose)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			fatal(fmt.Errorf("rank %d: %w", r, err))
		}
	}
	var total reptile.Result
	for r, ro := range outs {
		total.Add(ro.Result)
		if verbose {
			printRank(r, ro)
		}
	}
	fmt.Printf("ranks %d | reads corrected %d | bases corrected %d | reads changed %d\n",
		np, total.ReadsProcessed, total.BasesCorrected, total.ReadsChanged)
}

// runServeTCP runs one rank of a cross-process group: rank 0 is the front
// door, every other rank a pure executor.
func runServeTCP(src core.Source, opts core.Options, rank int, addrs []string, deadline time.Duration, addr string, verbose bool) {
	if len(addrs) < 2 {
		fatal(fmt.Errorf("tcp transport needs -addrs with at least two entries"))
	}
	e, err := transport.NewTCP(transport.TCPConfig{Rank: rank, Addrs: addrs, PeerTimeout: deadline})
	if err != nil {
		fatal(err)
	}
	defer e.Close()
	svc, err := core.StartService(e, src, opts)
	if err != nil {
		fatal(err)
	}
	var ro *core.RankOutput
	if rank == 0 {
		ro, err = frontDoor(svc, addr, verbose)
	} else {
		fmt.Printf("reptile-serve: rank %d resident, serving until the front door drains\n", rank)
		ro, err = svc.ServeExecutor()
	}
	if err != nil {
		fatal(err)
	}
	printRank(rank, ro)
}

// frontDoor opens the client listener on the coordinator rank's service,
// waits for SIGINT/SIGTERM, then drains: the listener stops accepting,
// connected clients finish (a second signal force-closes them), sessions
// complete, and the group quiesces together.
func frontDoor(svc *core.SpectrumService, addr string, verbose bool) (*core.RankOutput, error) {
	srv, err := serve.Listen(addr, svc)
	if err != nil {
		// The executor ranks are resident and waiting; drain the group before
		// reporting the listen failure so nothing hangs.
		if _, derr := svc.Drain(); derr != nil {
			err = errors.Join(err, derr)
		}
		return nil, err
	}
	fmt.Printf("reptile-serve: %d ranks resident, listening on %s (Ctrl-C to drain)\n", svc.Size(), srv.Addr())
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("reptile-serve: draining — in-flight sessions complete, new opens are rejected (Ctrl-C again to force)")
	forced := make(chan struct{})
	go func() {
		select {
		case <-sig:
			srv.Close()
		case <-forced:
		}
	}()
	srv.Shutdown()
	close(forced)
	sv := svc.Stats()
	out, err := svc.Drain()
	fmt.Printf("served: sessions=%d rejected=%d reads=%d (%.0f reads/s) p50=%v p99=%v window=%v\n",
		sv.Sessions, sv.Rejected, sv.Reads, sv.ReadsPerSec,
		sv.P50.Round(time.Microsecond), sv.P99.Round(time.Microsecond),
		sv.Elapsed.Round(time.Millisecond))
	return out, err
}

// printRank prints one rank's executor-side session counters and walls.
func printRank(r int, ro *core.RankOutput) {
	st := ro.Stats
	fmt.Printf("rank %d: sessions opened=%d completed=%d rejected=%d | session reads=%d | bases corrected=%d | served=%d\n",
		r, st.SessionsOpened, st.SessionsCompleted, st.SessionsRejected,
		st.SessionReads, ro.Result.BasesCorrected, st.RequestsServed)
	fmt.Printf("rank %d wall: read=%v balance=%v snapshot=%v spectrum=%v exchange=%v correct=%v\n",
		r, st.Wall[stats.PhaseRead], st.Wall[stats.PhaseBalance], st.Wall[stats.PhaseSnapshot],
		st.Wall[stats.PhaseSpectrum], st.Wall[stats.PhaseExchange], st.Wall[stats.PhaseCorrect])
}

// runClient corrects one fasta/qual pair through a running server: open a
// session, stream the reads in chunks, write the corrected pair, close.
// The CloseSession acknowledgment means every read written here was durably
// accepted by the service before this process exits.
func runClient(addr, tenant, fasta, qual, out string, chunk int) {
	src := &core.FileSource{FastaPath: fasta, QualPath: qual}
	all, err := readWholeInput(src)
	if err != nil {
		fatal(err)
	}
	if chunk <= 0 {
		chunk = 4096
	}
	cl, err := serve.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	if err := cl.Open(tenant); err != nil {
		fatal(err)
	}
	start := time.Now()
	corrected := make([]reads.Read, 0, len(all))
	var total reptile.Result
	for lo := 0; lo < len(all); lo += chunk {
		hi := lo + chunk
		if hi > len(all) {
			hi = len(all)
		}
		rs, res, err := cl.Correct(all[lo:hi])
		if err != nil {
			fatal(err)
		}
		corrected = append(corrected, rs...)
		total.Add(res)
	}
	if err := cl.CloseSession(); err != nil {
		fatal(err)
	}
	writeOutput(out, corrected)
	fmt.Printf("client: reads %d | bases corrected %d | reads changed %d | %v\n",
		total.ReadsProcessed, total.BasesCorrected, total.ReadsChanged,
		time.Since(start).Round(time.Millisecond))
}

// readWholeInput drains the whole source as one rank's shard.
func readWholeInput(src core.Source) ([]reads.Read, error) {
	br, err := src.Open(0, 1, 4096)
	if err != nil {
		return nil, err
	}
	defer br.Close()
	var all []reads.Read
	for {
		batch, err := br.NextBatch()
		if err != nil {
			break
		}
		all = append(all, batch...)
	}
	return all, nil
}

func writeOutput(prefix string, batch []reads.Read) {
	fa, err := os.Create(prefix + ".fa")
	if err != nil {
		fatal(err)
	}
	defer fa.Close()
	if err := fastaio.WriteFasta(fa, batch); err != nil {
		fatal(err)
	}
	qf, err := os.Create(prefix + ".qual")
	if err != nil {
		fatal(err)
	}
	defer qf.Close()
	if err := fastaio.WriteQual(qf, batch); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	var ab *core.AbortError
	if errors.As(err, &ab) {
		fmt.Fprintf(os.Stderr, "reptile-serve: run aborted\n  origin rank: %d\n  phase:       %s\n  cause:       %s\n", ab.Rank, ab.Phase, ab.Cause)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "reptile-serve: %v\n", err)
	os.Exit(1)
}
