package reads

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"reptile/internal/dna"
)

func mkRead(seq int64, s string) Read {
	b := dna.MustEncode(s)
	q := make([]byte, len(b))
	for i := range q {
		q[i] = byte(30 + i%10)
	}
	return Read{Seq: seq, Base: b, Qual: q}
}

func TestValidate(t *testing.T) {
	r := mkRead(1, "ACGT")
	if err := r.Validate(); err != nil {
		t.Errorf("valid read rejected: %v", err)
	}
	bad := r
	bad.Seq = 0
	if bad.Validate() == nil {
		t.Error("accepted sequence number 0")
	}
	bad = r
	bad.Qual = bad.Qual[:2]
	if bad.Validate() == nil {
		t.Error("accepted qual/base length mismatch")
	}
}

func TestClone(t *testing.T) {
	r := mkRead(5, "ACGT")
	c := r.Clone()
	c.Base[0] = dna.T
	c.Qual[0] = 99
	if r.Base[0] != dna.A || r.Qual[0] == 99 {
		t.Error("Clone shares storage with original")
	}
	if c.Seq != r.Seq {
		t.Error("Clone lost sequence number")
	}
}

func TestOwnerRankRange(t *testing.T) {
	f := func(seed int64, npRaw uint8) bool {
		np := int(npRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		b := make([]dna.Base, 50)
		for i := range b {
			b[i] = dna.Base(rng.Intn(4))
		}
		r := Read{Seq: 1, Base: b, Qual: make([]byte, 50)}
		o := r.OwnerRank(np)
		return o >= 0 && o < np
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerRankDependsOnContentOnly(t *testing.T) {
	a := mkRead(1, "ACGTACGTACGT")
	b := mkRead(999, "ACGTACGTACGT")
	b.Qual[3] = 2
	if a.OwnerRank(16) != b.OwnerRank(16) {
		t.Error("owner rank depends on metadata, not just bases")
	}
}

func TestWireRoundTrip(t *testing.T) {
	r := mkRead(123456789, "ACGTACGTTTGGCA")
	buf := AppendWire(nil, &r)
	got, rest, err := DecodeWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d bytes left over", len(rest))
	}
	if got.Seq != r.Seq {
		t.Errorf("Seq = %d", got.Seq)
	}
	if dna.DecodeString(got.Base) != dna.DecodeString(r.Base) {
		t.Error("bases mismatch")
	}
	for i := range r.Qual {
		if got.Qual[i] != r.Qual[i] {
			t.Fatal("qual mismatch")
		}
	}
}

func TestWireEmptyRead(t *testing.T) {
	r := Read{Seq: 7}
	got, rest, err := DecodeWire(AppendWire(nil, &r))
	if err != nil || len(rest) != 0 || got.Seq != 7 || len(got.Base) != 0 {
		t.Errorf("empty read round trip: %v %v %v", got, rest, err)
	}
}

func TestDecodeWireErrors(t *testing.T) {
	if _, _, err := DecodeWire([]byte{1, 2, 3}); err == nil {
		t.Error("accepted truncated header")
	}
	r := mkRead(1, "ACGT")
	buf := AppendWire(nil, &r)
	if _, _, err := DecodeWire(buf[:12]); err == nil {
		t.Error("accepted truncated body")
	}
	bad := append([]byte(nil), buf...)
	bad[10] = 77 // invalid base code
	if _, _, err := DecodeWire(bad); err == nil {
		t.Error("accepted invalid base code")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []Read{mkRead(1, "ACGT"), mkRead(2, "TTTTTTTT"), mkRead(3, "G")}
	out, err := DecodeBatch(EncodeBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(batch) {
		t.Fatalf("decoded %d reads", len(out))
	}
	for i := range batch {
		if out[i].Seq != batch[i].Seq || dna.DecodeString(out[i].Base) != dna.DecodeString(batch[i].Base) {
			t.Fatalf("read %d mismatch", i)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	if EncodeBatch(nil) != nil {
		t.Error("EncodeBatch(nil) != nil")
	}
	out, err := DecodeBatch(nil)
	if err != nil || out != nil {
		t.Error("DecodeBatch(nil) failed")
	}
}

func TestDiff(t *testing.T) {
	orig := []Read{mkRead(1, "ACGT"), mkRead(2, "TTTT"), mkRead(3, "GGGG")}
	corr := []Read{orig[1].Clone(), orig[0].Clone(), orig[2].Clone()} // shuffled
	corr[0].Base[2] = dna.A                                           // read 2 pos 2: T->A
	corr[1].Base[0] = dna.C                                           // read 1 pos 0: A->C
	cs, err := Diff(orig, corr)
	if err != nil {
		t.Fatal(err)
	}
	want := []Correction{
		{Seq: 1, Pos: 0, From: dna.A, To: dna.C},
		{Seq: 2, Pos: 2, From: dna.T, To: dna.A},
	}
	if len(cs) != len(want) {
		t.Fatalf("got %d corrections: %+v", len(cs), cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("correction %d = %+v, want %+v", i, cs[i], want[i])
		}
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	orig := []Read{mkRead(1, "ACGT")}
	corr := []Read{mkRead(1, "ACGTA")}
	if _, err := Diff(orig, corr); err == nil {
		t.Error("accepted length mismatch")
	}
}

func TestDiffIgnoresUnknownReads(t *testing.T) {
	orig := []Read{mkRead(1, "ACGT")}
	corr := []Read{mkRead(9, "ACGT")}
	cs, err := Diff(orig, corr)
	if err != nil || len(cs) != 0 {
		t.Errorf("Diff = %v, %v", cs, err)
	}
}

func TestWriteCorrections(t *testing.T) {
	var sb strings.Builder
	cs := []Correction{{Seq: 7, Pos: 3, From: dna.A, To: dna.G}}
	if err := WriteCorrections(&sb, cs); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "7\t3\tA\tG\n" {
		t.Errorf("output %q", sb.String())
	}
}

func TestMemBytes(t *testing.T) {
	batch := []Read{mkRead(1, "ACGT"), mkRead(2, "ACGTACGT")}
	if got := MemBytes(batch); got < 20 || got > 1000 {
		t.Errorf("MemBytes = %d", got)
	}
}
