// Package fixture exercises the errorflow analyzer. Declaring a type named
// ProtocolError activates the package, the same way importing msgplane or
// core activates a real one.
package fixture

// ProtocolError stands in for msgplane.ProtocolError.
type ProtocolError struct{ Tag int }

func (e *ProtocolError) Error() string { return "protocol violation" }

// mayFail produces the typed error on bad input.
func mayFail(n int) error {
	if n < 0 {
		return &ProtocolError{Tag: n}
	}
	return nil
}

// value returns a payload and an error.
func value() (int, error) { return 1, nil }

// dropped calls an error-returning function as a bare statement.
func dropped() {
	mayFail(1) // want "drops its error result"
}

// discarded throws errors away with the blank identifier, both the
// trailing-result form and the direct form.
func discarded() int {
	n, _ := value() // want "discarded with _"
	_ = mayFail(n)  // want "discarded with _"
	return n
}

// discardsVar launders the error through a variable first.
func discardsVar(n int) {
	err := mayFail(n)
	_ = err // want "error err is discarded with _"
}

// shadowed redeclares err in an inner scope and never reads the inner one,
// so the outer return silently loses the inner failure.
func shadowed(n int) error {
	err := mayFail(n)
	if n > 0 {
		err := mayFail(n - 1) // want "never checked on any path"
	}
	return err
}

// checked handles every error: clean.
func checked(n int) error {
	if err := mayFail(n); err != nil {
		return err
	}
	v, err := value()
	if err != nil {
		return err
	}
	return mayFail(v)
}

// fail consumes an error, standing in for the engine's poison/abort calls.
func fail(err error) error { return err }

// poisons hands the error to a poison call; the dropped result of fail
// itself is the sanctioned terminal use.
func poisons(n int) {
	if err := mayFail(n); err != nil {
		fail(err)
	}
}

// allowed documents a deliberate drop.
func allowed() {
	mayFail(3) // reptile-lint:allow errorflow best-effort probe, failure handled by the retry above
}
