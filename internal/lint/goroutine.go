package lint

import (
	"go/ast"
)

// GoroutineHygiene flags `go` statements that can outlive their owner. The
// engine's protocol assumes every rank's goroutines are joined before the
// endpoint is torn down — a leaked responder or reader touching a mailbox
// after Close is exactly the bug class that killed comparable distributed
// pipelines. A launch is accepted when the goroutine's own body shows a
// lifecycle discipline:
//
//   - defer wg.Done() (any deferred *.Done() call) — joined via WaitGroup,
//   - defer close(ch) — completion signalled on a done channel,
//   - a send into a buffered result/error channel as the body's last act,
//   - <-ctx.Done() (receiving from any *.Done() call) — context-bounded.
//
// Launching a named function (`go readLoop(...)`) hides the body from the
// launch site, so it is flagged unconditionally: wrap it in a func literal
// that declares its lifecycle, or annotate the line with
// "// reptile-lint:allow goroutine-hygiene <reason>".
//
// Only non-test files in internal/ packages are checked.
type GoroutineHygiene struct {
	// Paths restricts the analyzer to import paths containing any of these
	// substrings; empty means every package.
	Paths []string
}

// NewGoroutineHygiene returns the analyzer scoped to internal packages.
func NewGoroutineHygiene() *GoroutineHygiene {
	return &GoroutineHygiene{Paths: []string{"internal/"}}
}

// Name implements Analyzer.
func (*GoroutineHygiene) Name() string { return "goroutine-hygiene" }

// Doc implements Analyzer.
func (*GoroutineHygiene) Doc() string {
	return "flags goroutine launches with no WaitGroup, done-channel, or context lifecycle"
}

// appliesTo implements pathScoped for the allow-directive audit.
func (gh *GoroutineHygiene) appliesTo(pkg *Package) bool {
	return pathMatches(pkg.ImportPath, gh.Paths)
}

// Check implements Analyzer.
func (gh *GoroutineHygiene) Check(pkg *Package, r *Reporter) {
	if !gh.appliesTo(pkg) {
		return
	}
	for _, f := range pkg.SourceFiles() {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				r.Reportf(g.Pos(), "goroutine launches named function %s with no visible lifecycle; wrap it in a func literal with defer wg.Done() or a done channel", funcNameOf(g.Call))
				return true
			}
			if !hasLifecycle(lit.Body) {
				r.Reportf(g.Pos(), "goroutine has no lifecycle discipline: add defer wg.Done(), defer close(done), send a result on a channel, or bound it with a context")
			}
			return true
		})
	}
}

// hasLifecycle reports whether a goroutine body shows one of the accepted
// completion signals.
func hasLifecycle(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.DeferStmt:
			name := funcNameOf(t.Call)
			if name == "Done" || name == "close" {
				found = true
			}
		case *ast.UnaryExpr:
			// <-ctx.Done(): context-bounded loop.
			if t.Op.String() == "<-" {
				if call, ok := t.X.(*ast.CallExpr); ok && funcNameOf(call) == "Done" {
					found = true
				}
			}
		case *ast.SendStmt:
			// Completion/result handoff on a channel (e.g. done <- m,
			// errc <- err).
			found = true
		}
		return !found
	})
	return found
}
