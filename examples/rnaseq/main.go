// RNA-seq: the paper motivates the distributed spectrum with RNA
// sequencing and metagenomics, whose coverage is wildly non-uniform — a few
// abundant transcripts soak up most reads. This example corrects such a
// dataset and shows the property that makes the design work anyway: owner
// hashing keeps per-rank spectrum sizes uniform even when genomic coverage
// is skewed 100:1, so no rank becomes a memory or messaging hotspot.
package main

import (
	"fmt"
	"log"

	"reptile"
)

func main() {
	// 60 "transcripts" with Zipf-skewed abundances over a 100 kb genome.
	ds := reptile.SimulateRNASeq("rnaseq-sim", 100_000, 60_000, 102, 60, 7)
	fmt.Printf("dataset: %d reads over %d transcripts, %d errors\n",
		ds.NumReads(), 60, ds.TotalErrors())

	// Quantify the input skew: reads per decile of the genome.
	decile := make([]int, 10)
	for _, p := range ds.Pos {
		decile[p*10/ds.Genome.Len()]++
	}
	fmt.Printf("reads per genome decile: %v\n", decile)

	const np = 16
	opts := reptile.DefaultOptions()
	opts.Config = reptile.ConfigForCoverage(ds.Coverage())
	out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		log.Fatal(err)
	}

	kmers := func(r *reptile.RankStats) int64 { return r.OwnedKmers }
	tiles := func(r *reptile.RankStats) int64 { return r.OwnedTiles }
	fmt.Printf("\nper-rank owned k-mers: min=%d max=%d spread=%.1f%%\n",
		out.Run.Min(kmers), out.Run.Max(kmers), out.Run.SpreadPct(kmers))
	fmt.Printf("per-rank owned tiles:  min=%d max=%d spread=%.1f%%\n",
		out.Run.Min(tiles), out.Run.Max(tiles), out.Run.SpreadPct(tiles))

	acc, err := ds.Evaluate(out.Corrected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naccuracy: %v\n", acc)
	fmt.Println("coverage skew 100:1 across the genome, spectrum spread a few percent across ranks —")
	fmt.Println("the owner hash, not the coverage profile, decides where spectrum entries live.")
}
