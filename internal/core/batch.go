package core

import (
	"fmt"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/transport"
)

// ProtocolError is the message plane's typed wire-violation error,
// re-exported so engine callers keep matching it with errors.As without
// importing msgplane. Every demux path — router, batch dispatcher, legacy
// direct receive, and the exchange merge checks — returns this one type.
type ProtocolError = msgplane.ProtocolError

// lookupDispatcher coalesces remote spectrum lookups into tagBatchReq
// frames and matches interleaved tagBatchResp frames back to their issuers
// by request id — the software message aggregation layer. It is a thin
// codec shim over the message plane's Caller, which owns the request-id
// space, the per-owner in-flight window, and the fail poison; this type
// only knows the batch frame format and the batchAnswer payload.
//
// Workers call start/wait (possibly from several goroutines); the rank's
// router calls deliver; whoever observes a transport failure calls fail,
// which poisons every outstanding and future call so no worker stays
// parked on an answer that will never come.
type lookupDispatcher struct {
	c *msgplane.Caller
}

// newLookupDispatcher builds a dispatcher for an np-rank group. A window
// of zero means msgplane.DefaultWindow.
func newLookupDispatcher(e transport.Conn, np, window int) *lookupDispatcher {
	return &lookupDispatcher{c: msgplane.NewCaller(e, np, window)}
}

// start issues one batch of ids (all of one kind) to owner, blocking while
// the owner's window is full. ids is not retained. The returned call
// resolves through wait.
//
// reptile-lint:hotpath
func (d *lookupDispatcher) start(owner int, kind byte, ids []kmer.ID) (*msgplane.Call, error) {
	if len(ids) == 0 || len(ids) > maxBatchEntries {
		return nil, fmt.Errorf("core: batch of %d ids", len(ids))
	}
	return d.c.Start(owner, len(ids), func(reqID uint32) (msgplane.Tag, []byte) {
		return encodeBatchFrame(reqID, kind, ids)
	})
}

// wait blocks for one call's resolution and narrows the message plane's
// untyped result back to the batch-answer slice deliver decoded.
func (d *lookupDispatcher) wait(call *msgplane.Call) ([]batchAnswer, error) {
	v, err := call.Wait()
	if err != nil {
		return nil, err
	}
	answers, ok := v.([]batchAnswer)
	if !ok {
		return nil, fmt.Errorf("core: batch call resolved with %T", v)
	}
	return answers, nil
}

// roundTrip is start+wait for a single frame — the slow path for ids the
// prefetcher could not anticipate.
func (d *lookupDispatcher) roundTrip(owner int, kind byte, ids []kmer.ID) ([]batchAnswer, error) {
	call, err := d.start(owner, kind, ids)
	if err != nil {
		return nil, err
	}
	return d.wait(call)
}

// deliver routes one tagBatchResp frame to its issuer: decode here, match
// in the caller. Called from the rank's router only. A frame whose request
// id is unknown, or whose sender is not the rank the request was addressed
// to, comes back as a typed ProtocolError naming the tag and both ranks;
// the router turns it into a run abort.
func (d *lookupDispatcher) deliver(m transport.Message) error {
	reqID, answers, err := decodeBatchResp(m.Data)
	if err != nil {
		return err
	}
	return d.c.Deliver(m.From, msgplane.Tag(m.Tag), reqID, answers)
}

// fail poisons the dispatcher. Safe to call from any goroutine, more than
// once.
func (d *lookupDispatcher) fail(err error) {
	d.c.Fail(err)
}

// failPeer resolves every call outstanding at one dead peer with err while
// the dispatcher stays healthy — the recovery layer's failover hook: the
// reaped issuers observe the peer-down error, ask for the new shard route,
// and reissue.
func (d *lookupDispatcher) failPeer(peer int, err error) {
	d.c.FailPeer(peer, err)
}

// counters returns the frame totals for the stats merge.
func (d *lookupDispatcher) counters() (batches, ids int64) {
	return d.c.Counters()
}
