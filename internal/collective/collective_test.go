package collective

import (
	"fmt"
	"sync"
	"testing"

	"reptile/internal/transport"
)

// run spawns np rank goroutines, each with its own Comm, and waits for all.
func run(t *testing.T, np int, body func(c *Comm) error) {
	t.Helper()
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := body(New(eps[r])); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestAlltoallv(t *testing.T) {
	for _, np := range []int{1, 2, 5, 16} {
		run(t, np, func(c *Comm) error {
			bufs := make([][]byte, np)
			for r := range bufs {
				bufs[r] = []byte(fmt.Sprintf("%d->%d", c.Rank(), r))
			}
			got, err := c.Alltoallv(bufs)
			if err != nil {
				return err
			}
			for r := range got {
				want := fmt.Sprintf("%d->%d", r, c.Rank())
				if string(got[r]) != want {
					return fmt.Errorf("from %d: got %q want %q", r, got[r], want)
				}
			}
			return nil
		})
	}
}

func TestAlltoallvNilBuffers(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		bufs := make([][]byte, 4) // all nil
		got, err := c.Alltoallv(bufs)
		if err != nil {
			return err
		}
		for r := range got {
			if got[r] == nil || len(got[r]) != 0 {
				return fmt.Errorf("from %d: got %v, want empty non-nil", r, got[r])
			}
		}
		return nil
	})
}

func TestAlltoallvWrongSize(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Alltoallv(make([][]byte, 3)); err == nil {
				return fmt.Errorf("accepted wrong buffer count")
			}
		}
		// Rank 1 must not block on rank 0's failed call.
		return nil
	})
}

func TestSuccessiveCollectivesDoNotMix(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		for round := 0; round < 10; round++ {
			bufs := make([][]byte, 4)
			for r := range bufs {
				bufs[r] = []byte{byte(round)}
			}
			got, err := c.Alltoallv(bufs)
			if err != nil {
				return err
			}
			for r := range got {
				if got[r][0] != byte(round) {
					return fmt.Errorf("round %d: stale data %d from %d", round, got[r][0], r)
				}
			}
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		got, err := c.Allgatherv([]byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		for r := range got {
			if len(got[r]) != 1 || got[r][0] != byte(r*10) {
				return fmt.Errorf("from %d: %v", r, got[r])
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	const root = 2
	run(t, 5, func(c *Comm) error {
		got, err := c.Gather(root, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() != root {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r := range got {
			if len(got[r]) != 1 || got[r][0] != byte(r) {
				return fmt.Errorf("root: from %d got %v", r, got[r])
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		var in []byte
		if c.Rank() == 1 {
			in = []byte("payload")
		}
		out, err := c.Bcast(1, in)
		if err != nil {
			return err
		}
		if string(out) != "payload" {
			return fmt.Errorf("got %q", out)
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	var mu sync.Mutex
	entered := 0
	run(t, 8, func(c *Comm) error {
		mu.Lock()
		entered++
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if entered != 8 {
			return fmt.Errorf("barrier released with only %d ranks entered", entered)
		}
		return nil
	})
}

func TestReduceMaxInt64(t *testing.T) {
	run(t, 7, func(c *Comm) error {
		v := int64(c.Rank() * 100)
		max, err := c.ReduceMaxInt64(0, v)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && max != 600 {
			return fmt.Errorf("max = %d", max)
		}
		return nil
	})
}

func TestAllreduceMaxInt64(t *testing.T) {
	run(t, 7, func(c *Comm) error {
		max, err := c.AllreduceMaxInt64(int64(1000 - c.Rank()))
		if err != nil {
			return err
		}
		if max != 1000 {
			return fmt.Errorf("rank %d: max = %d", c.Rank(), max)
		}
		return nil
	})
}

func TestAllreduceSumInt64(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		sum, err := c.AllreduceSumInt64(int64(c.Rank() + 1))
		if err != nil {
			return err
		}
		if sum != 15 {
			return fmt.Errorf("rank %d: sum = %d", c.Rank(), sum)
		}
		return nil
	})
}

func TestCollectivesCoexistWithP2P(t *testing.T) {
	// Point-to-point traffic on non-negative tags must not disturb
	// collectives running concurrently.
	run(t, 4, func(c *Comm) error {
		next := (c.Rank() + 1) % 4
		prev := (c.Rank() + 3) % 4
		for i := 0; i < 20; i++ {
			if err := c.E.Send(next, 50, []byte{byte(i)}); err != nil {
				return err
			}
			if _, err := c.Alltoallv(make([][]byte, 4)); err != nil {
				return err
			}
			m, err := c.E.Recv(50)
			if err != nil {
				return err
			}
			if m.From != prev || m.Data[0] != byte(i) {
				return fmt.Errorf("p2p disturbed: %+v at round %d", m, i)
			}
		}
		return nil
	})
}
