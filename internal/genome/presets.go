package genome

// Scaled dataset presets mirroring Table I of the paper. The genomes are
// scaled down ~20-2000x so a workstation can run the full pipeline, but the
// read length, coverage, and relative ordering of the three datasets are
// preserved; the distributed algorithm's communication volume per read is a
// function of those, not of the absolute genome size.
//
//	Paper        reads      len  genome   cov    Here       reads   genome
//	E.Coli       8.87e6     102  4.6e6    96X    EColiSim   ~188k   200 kb
//	Drosophila   9.57e7      96  1.22e8   75X    DrosSim    ~469k   600 kb
//	Human        1.55e9     102  3.3e9    47X    HumanSim   ~691k   1.5 Mb

// Preset names a scaled dataset configuration.
type Preset struct {
	Name      string
	GenomeLen int
	ReadLen   int
	Coverage  float64
	Seed      int64
}

// The three presets of Table I.
var (
	EColiSim      = Preset{Name: "ecoli-sim", GenomeLen: 200_000, ReadLen: 102, Coverage: 96, Seed: 42}
	DrosophilaSim = Preset{Name: "drosophila-sim", GenomeLen: 600_000, ReadLen: 96, Coverage: 75, Seed: 43}
	HumanSim      = Preset{Name: "human-sim", GenomeLen: 1_500_000, ReadLen: 102, Coverage: 47, Seed: 44}
)

// Presets lists the Table I datasets in paper order.
var Presets = []Preset{EColiSim, DrosophilaSim, HumanSim}

// NumReads returns the read count implied by coverage.
func (p Preset) NumReads() int {
	return int(p.Coverage * float64(p.GenomeLen) / float64(p.ReadLen))
}

// Scaled returns a copy with the genome (and hence read count) scaled by f,
// for tests and quick benches. f <= 0 panics.
func (p Preset) Scaled(f float64) Preset {
	if f <= 0 {
		panic("genome: non-positive preset scale")
	}
	p.GenomeLen = int(float64(p.GenomeLen) * f)
	if p.GenomeLen < 4*p.ReadLen {
		p.GenomeLen = 4 * p.ReadLen
	}
	return p
}

// Build generates the preset's genome and reads with a well-behaved quality
// profile (errors spread evenly through the file).
func (p Preset) Build() *Dataset {
	return p.BuildProfile(DefaultProfile(p.ReadLen))
}

// BuildLocalized generates the preset with error-dense stretches of the
// file, the input that triggers the paper's load imbalance.
func (p Preset) BuildLocalized() *Dataset {
	return p.BuildProfile(LocalizedProfile(p.ReadLen))
}

// BuildProfile generates the preset under an explicit profile.
func (p Preset) BuildProfile(prof Profile) *Dataset {
	g := NewGenome(p.GenomeLen, p.Seed)
	return Simulate(p.Name, g, p.NumReads(), prof, p.Seed+1)
}
