package msgplane

import (
	"fmt"
	"sync"

	"reptile/internal/transport"
)

// DefaultWindow is the per-peer in-flight request window used when a
// caller is built with window <= 0.
const DefaultWindow = 4

// Call is one in-flight request. result and err are written exactly once
// (by Deliver or Fail) before done is closed; Wait reads them only after
// done, so the channel close is the happens-before edge.
type Call struct {
	owner  int
	done   chan struct{}
	result any
	err    error
}

// Wait blocks until the rank's router delivers the response (or the
// caller is poisoned) and returns the decoded result.
func (c *Call) Wait() (any, error) {
	<-c.done
	return c.result, c.err
}

// Caller matches request/response pairs by id — the requester half of the
// message plane. Issuers call Start/Wait (possibly from several worker
// goroutines); the rank's router delivers responses through Deliver;
// whoever observes a transport failure calls Fail, which poisons every
// outstanding and future call so no worker stays parked on an answer that
// will never come.
//
// The per-peer in-flight window is the pipeline depth: an issuer may have
// up to window unanswered requests at one peer before Start blocks, which
// overlaps request latency with local work while bounding how much queue
// the peer's router must absorb.
type Caller struct {
	e      transport.Conn
	window int

	mu       sync.Mutex
	cond     *sync.Cond       // guarded by mu; signaled on slot release and on fail
	nextID   uint32           // guarded by mu
	pending  map[uint32]*Call // guarded by mu
	inflight []int            // guarded by mu; outstanding requests per peer
	failed   error            // guarded by mu; first poison, sticky
	// abandoned records request ids reaped by FailPeer whose peer might
	// still answer: detection of a peer's death can race its last responses
	// through the transport, and a late answer to an abandoned request must
	// be dropped silently instead of surfacing as an unknown-request
	// protocol violation. Guarded by mu.
	abandoned map[uint32]int

	framesSent int64 // guarded by mu
	itemsSent  int64 // guarded by mu
}

// NewCaller builds a caller for an np-rank group.
func NewCaller(e transport.Conn, np, window int) *Caller {
	if window <= 0 {
		window = DefaultWindow
	}
	c := &Caller{
		e:        e,
		window:   window,
		pending:  make(map[uint32]*Call),
		inflight: make([]int, np),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Start issues one request of items lookups to owner, blocking while the
// owner's window is full. enc builds the frame for the assigned request
// id; it runs under the caller's lock and must not block. The returned
// call resolves through Wait.
func (c *Caller) Start(owner, items int, enc func(reqID uint32) (Tag, []byte)) (*Call, error) {
	c.mu.Lock()
	for c.failed == nil && c.inflight[owner] >= c.window {
		c.cond.Wait()
	}
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	reqID := c.nextID
	call := &Call{owner: owner, done: make(chan struct{})}
	c.pending[reqID] = call
	c.inflight[owner]++
	c.framesSent++
	c.itemsSent += int64(items)
	tag, payload := enc(reqID)
	c.mu.Unlock()

	// The send happens outside the lock (it may block on a TCP peer). The
	// response cannot race it: the owner only answers after receiving the
	// request, and the call is already registered.
	if err := Send(c.e, owner, tag, payload); err != nil {
		c.mu.Lock()
		if _, ok := c.pending[reqID]; ok { // Fail may have reaped it already
			delete(c.pending, reqID)
			c.inflight[owner]--
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		return nil, err
	}
	return call, nil
}

// Deliver resolves the call registered under reqID with an already-decoded
// result. Called from the rank's router only. A response whose request id
// is unknown, or whose sender is not the rank the request was addressed
// to, is a typed protocol violation; the router turns it into a run abort.
func (c *Caller) Deliver(from int, t Tag, reqID uint32, result any) error {
	c.mu.Lock()
	call, ok := c.pending[reqID]
	if !ok {
		if owner, was := c.abandoned[reqID]; was && owner == from {
			// A reaped request's answer arrived after its peer was declared
			// dead (the declaration raced the response through the
			// transport). The issuer already resolved with the failure and
			// possibly retried elsewhere; the stale answer is dropped.
			delete(c.abandoned, reqID)
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		return &ProtocolError{Tag: t, Kind: ViolationUnknownRequest, From: from, Want: -1, ReqID: reqID}
	}
	if call.owner != from {
		c.mu.Unlock()
		return &ProtocolError{Tag: t, Kind: ViolationStraySender, From: from, Want: call.owner, ReqID: reqID}
	}
	delete(c.pending, reqID)
	c.inflight[from]--
	c.cond.Broadcast()
	c.mu.Unlock()
	call.result = result
	close(call.done)
	return nil
}

// Fail poisons the caller: every outstanding call resolves with the first
// failure, window waiters wake, and future Starts are refused. Safe to
// call from any goroutine, more than once.
func (c *Caller) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("msgplane: caller failed with nil error")
	}
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	reaped := c.pending
	c.pending = make(map[uint32]*Call)
	for _, call := range reaped {
		c.inflight[call.owner]--
		call.err = c.failed
		close(call.done)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// FailPeer resolves every call outstanding at one peer with err, leaving
// calls to other peers (and the caller itself) healthy — the recovery
// analogue of Fail for a single lost rank. Window waiters wake so an issuer
// blocked on the dead peer's window re-checks its options. The reaped
// request ids are remembered so the dead peer's in-flight answers, should
// they still arrive, are dropped instead of tripping the unknown-request
// violation.
func (c *Caller) FailPeer(peer int, err error) {
	if err == nil {
		err = fmt.Errorf("msgplane: peer %d failed with nil error", peer)
	}
	c.mu.Lock()
	var reaped []*Call
	for id, call := range c.pending {
		if call.owner != peer {
			continue
		}
		delete(c.pending, id)
		if c.abandoned == nil {
			c.abandoned = make(map[uint32]int)
		}
		c.abandoned[id] = peer
		c.inflight[peer]--
		call.err = err
		reaped = append(reaped, call)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, call := range reaped {
		close(call.done)
	}
}

// Counters returns the frame and item totals for the stats merge.
func (c *Caller) Counters() (frames, items int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.framesSent, c.itemsSent
}
