// Package core implements the paper's contribution: a distributed-memory
// Reptile in which both the k-mer and the tile spectrum are partitioned
// across ranks by owner hashing, spectrum construction runs through
// all-to-all count merges, and error correction resolves missing spectrum
// entries by messaging the owning rank's communication thread.
//
// The engine follows the paper's Section III step for step:
//
//	Step I    each rank reads its shard of the input (byte-offset
//	          partitioning via internal/fastaio, or a proportional slice of
//	          an in-memory dataset), optionally redistributing reads to
//	          their owner ranks for static load balance (Section III-A).
//	Step II   per-rank spectrum construction: Heuristics.Workers extraction
//	          goroutines shard k-mer and tile tallies by hash(id), split by
//	          owner rank (see specBuilder in build.go).
//	Step III  all-to-all exchange of non-owned entries, count merge at the
//	          owners, threshold pruning, and a freeze into immutable packed
//	          stores. The batch-reads heuristic repeats the exchange per
//	          chunk to bound the reads tables, pipelining round r's build
//	          with round r-1's exchange.
//	Step IV   correction with two goroutines per rank — a worker running
//	          the Reptile corrector and a responder servicing remote k-mer/
//	          tile count requests — plus a done/stop termination protocol.
//
// Every heuristic of Section III-B is implemented and selectable.
package core

import (
	"fmt"

	"reptile/internal/msgplane"
	"reptile/internal/reptile"
	"reptile/internal/transport"
)

// Heuristics selects the paper's optional execution modes (Section III-B).
// The zero value is the paper's base mode.
type Heuristics struct {
	// Universal packs the request kind into the message payload so the
	// responder accepts any message without probing tags first.
	Universal bool

	// RetainReadKmers keeps the readsKmer/readsTile tables after spectrum
	// construction and resolves their entries' *global* counts with one
	// extra all-to-all, so correction can answer from them before
	// messaging ("Read K-mers/Tiles").
	RetainReadKmers bool

	// ReplicateKmers/ReplicateTiles allgather the respective spectrum onto
	// every rank, eliminating its request traffic at a memory cost
	// ("Allgather k-mers/tiles/both").
	ReplicateKmers bool
	ReplicateTiles bool

	// CacheRemote adds answers from remote lookups to the reads tables so
	// repeated misses are served locally ("Add remote k-mer/tile lookups").
	// It requires RetainReadKmers, as in the paper.
	CacheRemote bool

	// BatchReads runs the Step III exchange after every chunk of reads and
	// clears the reads tables, bounding their size ("Batch Reads Table").
	BatchReads bool

	// PartialReplicationGroup is the paper's proposed future-work mode:
	// every rank additionally holds the owned spectra of its replication
	// group (G consecutive ranks), so a miss tries the group copy before
	// messaging. 0 or 1 disables it.
	PartialReplicationGroup int

	// LookupBatch enables the batched remote-lookup pipeline: remote misses
	// are coalesced per owner rank into tagBatchReq frames of up to this
	// many ids (software message aggregation, as in diBELLA). 0 keeps the
	// paper's one-request-per-id protocol. The corrected output is
	// byte-identical either way; only the message pattern changes.
	LookupBatch int

	// LookupWindow bounds how many unanswered batch frames one rank may
	// hold in flight at a single peer — the pipeline depth. 0 means the
	// default window when batching is on; ignored otherwise.
	LookupWindow int

	// Workers sizes the per-rank thread pools (the paper's "worker
	// threads", plural): the correction worker pool and, equally, the
	// spectrum-build extraction goroutines and their hash(id)%Workers table
	// shards. 0 or 1 runs the classic single worker. More than one requires
	// LookupBatch: the correction workers share the responder through the
	// batch dispatcher's request-id routing, which the legacy tagResp
	// protocol cannot provide. The corrected output is byte-identical for
	// every worker count.
	Workers int

	// ReplicatedLayout selects the in-memory layout of replicated spectra.
	// The prior parallelizations the paper contrasts against replicated the
	// spectrum as sorted arrays (Shah et al., binary search) or a
	// cache-aware (B+1)-ary layout (Jammula et al.); this implementation's
	// default is the paper's hash tables. Only meaningful together with
	// ReplicateKmers/ReplicateTiles.
	ReplicatedLayout Layout
}

// Layout names a replicated-spectrum storage layout.
type Layout int

// Replicated-spectrum layouts.
const (
	LayoutHash       Layout = iota // this paper: hash tables
	LayoutSorted                   // Shah et al. 2012: sorted array + binary search
	LayoutCacheAware               // Jammula et al. 2015: (B+1)-ary cache-aware tree
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutHash:
		return "hash"
	case LayoutSorted:
		return "sorted"
	case LayoutCacheAware:
		return "cacheaware"
	}
	return "unknown"
}

// Validate checks heuristic combinations.
func (h Heuristics) Validate() error {
	if h.CacheRemote && !h.RetainReadKmers {
		return fmt.Errorf("core: CacheRemote requires RetainReadKmers (the cache lives in the reads tables)")
	}
	if h.PartialReplicationGroup < 0 {
		return fmt.Errorf("core: negative partial replication group")
	}
	if h.ReplicatedLayout < LayoutHash || h.ReplicatedLayout > LayoutCacheAware {
		return fmt.Errorf("core: unknown replicated layout %d", h.ReplicatedLayout)
	}
	if h.ReplicatedLayout != LayoutHash && !h.ReplicateKmers && !h.ReplicateTiles {
		return fmt.Errorf("core: ReplicatedLayout=%s requires ReplicateKmers or ReplicateTiles", h.ReplicatedLayout)
	}
	if h.LookupBatch < 0 {
		return fmt.Errorf("core: negative lookup batch")
	}
	if h.LookupBatch > maxBatchEntries {
		return fmt.Errorf("core: lookup batch %d exceeds the wire maximum %d", h.LookupBatch, maxBatchEntries)
	}
	if h.LookupWindow < 0 {
		return fmt.Errorf("core: negative lookup window")
	}
	if h.Workers < 0 {
		return fmt.Errorf("core: negative worker count")
	}
	if h.Workers > 1 && h.LookupBatch == 0 {
		return fmt.Errorf("core: Workers=%d requires LookupBatch: the legacy one-at-a-time response protocol cannot route responses to more than one worker", h.Workers)
	}
	return nil
}

// Options configures one engine run.
type Options struct {
	// Config are the Reptile correction parameters.
	Config reptile.Config
	// Heuristics are the Section III-B execution modes.
	Heuristics Heuristics
	// LoadBalance enables the static sequence-redistribution scheme of
	// Section III-A.
	LoadBalance bool
	// AutoThresholds derives the k-mer/tile solidity thresholds from the
	// global count histograms (valley between the error and coverage
	// peaks) instead of Config's fixed values. The histograms are
	// allreduced, so every rank picks identical thresholds; Config's values
	// remain the fallback when a histogram has no usable valley.
	AutoThresholds bool
	// Chaos, when non-nil, wraps every rank's endpoint in the transport's
	// fault-injection layer executing this schedule. Benign schedules
	// (delay/jitter/slow rank) must not change the corrected output; fatal
	// schedules (crash/corrupt/drop) make every rank return an AbortError
	// instead of hanging. Nil for production runs. With Replicas >= 2 a
	// single-rank crash during the correct phase is survived instead.
	Chaos *transport.Plan
	// Replicas selects the spectrum redundancy degree. 0 or 1 keeps the
	// paper's single-copy owner placement. 2 adds the ring placement: at
	// the freeze point every rank ships its frozen owned spectra (exact
	// slab images) to its ring successor, and from then on a single rank
	// loss during correction is survived — lookups fail over to the
	// surviving copy, the lost shard is re-replicated to a new successor,
	// and the dead rank's reads are corrected by the shard's holder, so the
	// run completes with byte-identical output. Requires LookupBatch (the
	// failover retry rides the request-id protocol) and the batch engine.
	Replicas int
	// Snapshot, when non-nil, layers the frozen-spectrum snapshot cache
	// over the build phases (DESIGN.md §16): each rank probes for a
	// snapshot of its owned spectra before building; on a run-wide hit the
	// spectrum build is replaced by the slab load, on any miss every rank
	// builds and writes its snapshot back atomically. Incompatible with
	// AutoThresholds and RetainReadKmers — see Validate.
	Snapshot *SnapshotOptions
	// Serve tunes the session layer — the admission cap and flow-control
	// window every correction session gets, and the front door address the
	// reptile-serve daemon listens on. Nil uses the defaults; the session
	// layer itself is always armed (the batch drivers run through it as a
	// one-shot session).
	Serve *ServeOptions
	// WorkSteal lets a rank that drains its own read queue early steal
	// correction chunks from still-busy peers over the steal-request/grant
	// protocol. Stolen chunks are corrected against the same static spectra
	// and written back in place by chunk id, so the corrected output is
	// byte-identical to a run without stealing. Requires LookupBatch for
	// the same reason as Workers > 1, and the batch engine.
	WorkSteal bool
}

// SnapshotOptions configures the spectrum-snapshot layer: where this run's
// per-rank snapshot files live and how the cache key identifies the input.
type SnapshotOptions struct {
	// Dir is the content-hash cache directory: each rank's file is named
	// by hash(InputDigest, k, overlap, thresholds, np, format version), so
	// any input or parameter change lands on a fresh entry and stale
	// snapshots are simply never consulted.
	Dir string
	// Path, when set, bypasses the content-hash cache and names the
	// per-rank files directly as "<Path>.r<rank>.rsnap" — the explicit
	// form behind reptile-correct -snapshot and reptile-spectrum -save.
	// Exactly one of Dir and Path must be set.
	Path string
	// InputDigest identifies the input reads for cache keying (Dir mode):
	// snapshot.DigestFiles over the fasta/qual pair, or
	// snapshot.DigestReads over an in-memory set. The engine cannot
	// compute it — by the time ranks run, each holds only its shard.
	InputDigest string
}

// ServeOptions configures the session layer and the reptile-serve front
// door (DESIGN.md §17).
type ServeOptions struct {
	// Addr is the TCP address the reptile-serve front door listens on for
	// client connections ("" when the process is not a front door). The
	// engine itself never reads it; it rides here so config and flags have
	// one home.
	Addr string
	// MaxSessions caps how many sessions one tenant may hold open at a
	// single executor rank at once; an open beyond it gets the typed
	// capacity rejection. 0 means DefaultMaxSessions.
	MaxSessions int
	// TenantWindow bounds each session's in-flight chunks — the Caller-style
	// pipeline depth between a session's submitter and its executor. 0 means
	// the caller default.
	TenantWindow int
}

// Session-layer defaults.
const DefaultMaxSessions = 8

// serveMaxSessions resolves the per-tenant session cap.
func (o Options) serveMaxSessions() int {
	if o.Serve != nil && o.Serve.MaxSessions > 0 {
		return o.Serve.MaxSessions
	}
	return DefaultMaxSessions
}

// serveTenantWindow resolves the per-session chunk window.
func (o Options) serveTenantWindow() int {
	if o.Serve != nil && o.Serve.TenantWindow > 0 {
		return o.Serve.TenantWindow
	}
	return msgplane.DefaultWindow
}

// sessionCallerWindow sizes the shared session caller's per-peer window so
// the per-session windows bind first: a full tenant's worth of sessions,
// each with a full chunk window plus an open or close in flight, still
// fits.
func (o Options) sessionCallerWindow() int {
	w := o.serveMaxSessions() * (o.serveTenantWindow() + 2)
	if w < 32 {
		w = 32
	}
	return w
}

// Validate checks the serve/session knobs.
func (s *ServeOptions) Validate() error {
	if s.MaxSessions < 0 {
		return fmt.Errorf("core: negative serve session cap")
	}
	if s.TenantWindow < 0 {
		return fmt.Errorf("core: negative serve tenant window")
	}
	return nil
}

// Validate checks the whole option set.
func (o Options) Validate() error {
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.Serve != nil {
		if err := o.Serve.Validate(); err != nil {
			return err
		}
	}
	if s := o.Snapshot; s != nil {
		if (s.Dir == "") == (s.Path == "") {
			return fmt.Errorf("core: SnapshotOptions needs exactly one of Dir (content-hash cache) or Path (explicit prefix)")
		}
		if o.AutoThresholds {
			return fmt.Errorf("core: Snapshot is incompatible with AutoThresholds: auto thresholds are resolved during the build the snapshot skips, so the cache key could not name them")
		}
		if o.Heuristics.RetainReadKmers {
			return fmt.Errorf("core: Snapshot is incompatible with RetainReadKmers/CacheRemote: the retained reads tables are a byproduct of the build the snapshot skips")
		}
	}
	if o.Replicas < 0 || o.Replicas > 2 {
		return fmt.Errorf("core: Replicas=%d (want 0, 1, or 2)", o.Replicas)
	}
	if o.Replicas >= 2 && o.Heuristics.LookupBatch == 0 {
		return fmt.Errorf("core: Replicas=2 requires LookupBatch: the failover retry rides the batched request-id protocol")
	}
	if o.WorkSteal && o.Heuristics.LookupBatch == 0 {
		return fmt.Errorf("core: WorkSteal requires LookupBatch: thieves share the responder through the request-id protocol")
	}
	return o.Heuristics.Validate()
}

// DefaultOptions is the configuration the paper's scaling experiments use:
// base heuristics plus static load balancing.
func DefaultOptions() Options {
	return Options{Config: reptile.Default(), LoadBalance: true}
}
