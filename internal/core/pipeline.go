package core

import (
	"time"

	"reptile/internal/collective"
	"reptile/internal/reptile"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// phaseStep is one declarative stage of the rank pipeline. run does the
// phase's work; after, when set, is an observation hook that fires only on
// success, inside the phase's wall-time window (freeze-point snapshots
// belong to the phase that produced them).
type phaseStep struct {
	phase stats.Phase
	run   func(ctx *rankCtx) error
	after func(ctx *rankCtx)
}

// newRankCtx validates the options and builds one rank's pipeline context.
func newRankCtx(e transport.Conn, opts Options) (*rankCtx, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ctx := &rankCtx{
		e:    e,
		comm: collective.New(e),
		opts: opts,
		rank: e.Rank(),
		np:   e.Size(),
	}
	ctx.st.Rank = ctx.rank
	return ctx, nil
}

// enterPhase tells phase-aware endpoint wrappers (the chaos layer's
// crash-at-phase trigger) which phase is entering; plain endpoints don't
// care.
func (ctx *rankCtx) enterPhase(p stats.Phase) {
	if ep, ok := ctx.e.(interface{ EnterPhase(string) }); ok {
		ep.EnterPhase(p.String())
	}
}

// runSteps executes a declarative step list with per-phase wall timing,
// the abort-on-failure edge (ctx.fail with the phase's canonical name),
// and per-phase memory observation.
func (ctx *rankCtx) runSteps(steps []phaseStep) error {
	for _, s := range steps {
		ctx.enterPhase(s.phase)
		start := time.Now()
		err := s.run(ctx)
		if err == nil && s.after != nil {
			s.after(ctx)
		}
		ctx.st.Wall[s.phase] += time.Since(start)
		if err != nil {
			return ctx.fail(s.phase.String(), err)
		}
		ctx.st.PhaseMem[s.phase] = ctx.currentMem()
		ctx.observeMem()
	}
	return nil
}

// rankOutput is the closing stats epilogue: transport totals and the
// correction summary, folded into this rank's output.
func (ctx *rankCtx) rankOutput() *RankOutput {
	ctx.st.BasesCorrected = ctx.res.BasesCorrected
	ctx.st.ReadsChanged = ctx.res.ReadsChanged
	ctx.st.MsgsSent = ctx.e.Counters().MsgsSent()
	ctx.st.BytesSent = ctx.e.Counters().BytesSent()
	ctx.st.MaxInboxDepth = int64(ctx.e.MaxQueueDepth())
	ctx.observeFaults()
	return &RankOutput{Corrected: ctx.myReads, Stats: ctx.st, Result: ctx.res}
}

// runRankPipeline executes one rank's pipeline over a declarative step
// list — the single driver behind both RunRank and RunRankStreaming,
// assembled from the same context/steps/epilogue parts StartService uses
// to split the lifecycle. The engines differ only in which steps they
// pass.
func runRankPipeline(e transport.Conn, opts Options, steps []phaseStep) (*RankOutput, error) {
	ctx, err := newRankCtx(e, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.runSteps(steps); err != nil {
		return nil, err
	}
	return ctx.rankOutput(), nil
}

// afterConstruct snapshots the table footprint at the second freeze point —
// the end of the post-construction exchanges — for the paper's
// memory-scaling comparison.
func afterConstruct(ctx *rankCtx) {
	ctx.st.MemAfterConstruct = ctx.currentMem()
}

// snapshotStep inserts the snapshot-cache probe ahead of the build steps
// when the run is configured for it. The step exists only then: a run
// without Options.Snapshot has no snapshot phase at all (its wall time and
// footprint stay zero), so the phase list is still declarative evidence of
// what the rank actually did.
func snapshotStep(opts Options, steps []phaseStep) []phaseStep {
	if opts.Snapshot == nil {
		return steps
	}
	return append([]phaseStep{{phase: stats.PhaseSnapshot, run: (*rankCtx).snapshotPhase}}, steps...)
}

// buildSteps is the resident half of the in-memory engine's lifecycle: the
// paper's Steps I-III (read, balance, spectrum build, post-construction
// exchanges), ending at the freeze point with the spectra packed and
// immutable — everything a resident SpectrumService runs exactly once,
// with the snapshot probe spliced ahead of the build when the run is
// configured for it.
func buildSteps(src Source, opts Options) []phaseStep {
	return append([]phaseStep{
		{phase: stats.PhaseRead, run: func(ctx *rankCtx) error { return ctx.readPhase(src) }},
		{phase: stats.PhaseBalance, run: (*rankCtx).balancePhase},
	}, snapshotStep(opts, []phaseStep{
		{phase: stats.PhaseSpectrum, run: (*rankCtx).spectrumPhase},
		{phase: stats.PhaseExchange, run: (*rankCtx).postExchangePhase, after: afterConstruct},
	})...)
}

// batchSteps is the in-memory engine: the build steps plus Step IV, where
// the rank's whole resident read set runs through the session layer as a
// single one-shot session — the same correction code path a served client
// job takes.
func batchSteps(src Source, opts Options) []phaseStep {
	return append(buildSteps(src, opts), phaseStep{
		phase: stats.PhaseCorrect, run: func(ctx *rankCtx) error {
			res, err := ctx.correctDriver(func(disp *lookupDispatcher) (reptile.Result, error) {
				return ctx.correctOneShot()
			})
			ctx.res = res
			return err
		}})
}

// streamingSteps is the low-memory engine: no read or balance phase up
// front (the source is traversed inside the spectrum and correct steps,
// one chunk at a time), and the correct step loops balanced chunks through
// the same worker pool, writing each to the sink. A snapshot hit skips the
// build's whole first source traversal.
func streamingSteps(src Source, sink Sink, opts Options) []phaseStep {
	return snapshotStep(opts, []phaseStep{
		{phase: stats.PhaseSpectrum, run: func(ctx *rankCtx) error { return ctx.spectrumPassStreaming(src) }},
		{phase: stats.PhaseExchange, run: (*rankCtx).postExchangePhase, after: afterConstruct},
		{phase: stats.PhaseCorrect, run: func(ctx *rankCtx) error {
			res, err := ctx.correctDriver(func(disp *lookupDispatcher) (reptile.Result, error) {
				return ctx.correctStreamLoop(src, sink, disp)
			})
			ctx.res = res
			return err
		}},
	})
}
