// Package fixture exercises the wireproto analyzer's registry mode: once
// any tag shows registration evidence — a *Spec composite literal or a
// Register* call — every tag constant in the package must be registered.
// It also covers Handle-call consumer evidence: registering a router
// handler for a tag is that tag's receive path.
package fixture

const (
	tagServed   = 1 // handled by the router
	tagDirectly = 2 // received directly by a worker
	tagLate     = 3 // registered through a Register* call, not a Spec literal
	tagForgot   = 4 // want "missing from the tag registry"

	// The correction-session quartet, mirroring internal/core's session
	// protocol: three tags registered like the real ones, and a close tag
	// someone forgot — an unregistered session tag must fail the lint.
	tagSessOpen   = 14 // session-open requests, handled by the router
	tagSessChunk  = 15 // read-chunk requests, handled by the router
	tagSessAnswer = 16 // the shared session response, received by the caller
	tagSessClose  = 17 // want "missing from the tag registry"

	kindPlain byte = 0 // kinds are payload enums; never registered
)

// wireSpec stands in for msgplane.Spec: a tag named in one of these
// literals counts as registered wherever the literal is built.
type wireSpec struct {
	Tag      int
	Min, Max int
}

// routerish stands in for the msgplane router surface.
type routerish interface {
	Handle(tag int, h func([]byte) error)
}

// endpointish stands in for the transport endpoint surface.
type endpointish interface {
	Send(to, tag int, data []byte) error
	Recv(tag int) ([]byte, error)
}

// protocolSpecs mirrors a registration init: Spec literals carry the tags.
func protocolSpecs() []wireSpec {
	return []wireSpec{
		{Tag: tagServed, Min: 5, Max: 5},
		{Tag: tagDirectly, Min: 0, Max: -1},
		{Tag: tagSessOpen, Min: 5, Max: 260},
		{Tag: tagSessChunk, Min: 8, Max: -1},
		{Tag: tagSessAnswer, Min: 5, Max: -1},
	}
}

// registerLate mirrors a bare Register*(tag) call form.
func registerLate(tag int) {}

func setup() {
	_ = protocolSpecs()
	registerLate(tagLate)
}

// wireUp produces every tag and consumes them three different ways:
// tagServed through Handle (the router demuxes its frames), the others
// through direct Recv. tagForgot has healthy produce/consume evidence and
// trips only the registry check.
func wireUp(rt routerish, e endpointish) error {
	rt.Handle(tagServed, func([]byte) error { return nil })
	if err := e.Send(0, tagServed, encodePlain(kindPlain)); err != nil {
		return err
	}
	if err := e.Send(0, tagDirectly, nil); err != nil {
		return err
	}
	if err := e.Send(0, tagLate, nil); err != nil {
		return err
	}
	if err := e.Send(0, tagForgot, nil); err != nil {
		return err
	}
	rt.Handle(tagSessOpen, func([]byte) error { return nil })
	rt.Handle(tagSessChunk, func([]byte) error { return nil })
	if err := e.Send(0, tagSessOpen, nil); err != nil {
		return err
	}
	if err := e.Send(0, tagSessChunk, nil); err != nil {
		return err
	}
	if err := e.Send(0, tagSessAnswer, nil); err != nil {
		return err
	}
	if err := e.Send(0, tagSessClose, nil); err != nil {
		return err
	}
	if _, err := e.Recv(tagSessAnswer); err != nil {
		return err
	}
	if _, err := e.Recv(tagSessClose); err != nil {
		return err
	}
	if _, err := e.Recv(tagDirectly); err != nil {
		return err
	}
	if _, err := e.Recv(tagLate); err != nil {
		return err
	}
	_, err := e.Recv(tagForgot)
	return err
}

// encodePlain gives kindPlain its encode-side evidence.
func encodePlain(kind byte) []byte { return []byte{kind} }

// decodePlain gives kindPlain its decode-side evidence.
func decodePlain(b []byte) bool { return len(b) > 0 && b[0] == kindPlain }
