package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig describes one rank of a multi-process TCP group. Addrs lists
// every rank's listen address in rank order; all processes must agree on it
// (the moral equivalent of an MPI host file).
type TCPConfig struct {
	Rank  int
	Addrs []string
	// DialTimeout bounds the whole connection-establishment phase.
	// Zero means 30s.
	DialTimeout time.Duration
	// Retry is the delay between dial attempts while peers start up.
	// Zero means 50ms.
	Retry time.Duration
}

// frame layout: tag int32 | length uint32 | payload. The sender's rank is
// established once per connection by a 4-byte hello, not repeated per frame.
const frameHeader = 8

// maxFrame bounds a single payload; collectives chunk beneath this.
const maxFrame = 1 << 30

// tcpPeer is one live connection with a serialized writer.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *tcpPeer) write(tag int, data []byte) error {
	buf := make([]byte, frameHeader+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	copy(buf[frameHeader:], data)
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.conn.Write(buf)
	return err
}

// NewTCP joins (or forms) a full-mesh TCP group and returns this rank's
// endpoint, blocking until every pairwise connection is up. Rank i accepts
// connections from ranks j > i and dials ranks j < i, so each pair shares
// exactly one duplex connection.
func NewTCP(cfg TCPConfig) (*Endpoint, error) {
	np := len(cfg.Addrs)
	if np < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= np {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", cfg.Rank, np)
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 30 * time.Second
	}
	retry := cfg.Retry
	if retry == 0 {
		retry = 50 * time.Millisecond
	}

	e := &Endpoint{
		rank:     cfg.Rank,
		size:     np,
		mbox:     newMailbox(),
		counters: NewCounters(np),
	}
	peers := make([]*tcpPeer, np)

	var ln net.Listener
	needAccepts := np - 1 - cfg.Rank
	if needAccepts > 0 {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d listen: %w", cfg.Rank, err)
		}
	}

	errc := make(chan error, np)
	var wg sync.WaitGroup

	// Accept from higher ranks.
	if needAccepts > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < needAccepts; i++ {
				conn, err := ln.Accept()
				if err != nil {
					errc <- err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					errc <- err
					return
				}
				from := int(binary.LittleEndian.Uint32(hello[:]))
				if from <= cfg.Rank || from >= np {
					errc <- fmt.Errorf("transport: bogus hello from rank %d", from)
					return
				}
				peers[from] = &tcpPeer{conn: conn}
			}
		}()
	}

	// Dial lower ranks.
	for j := 0; j < cfg.Rank; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			deadline := time.Now().Add(dialTimeout)
			for {
				conn, err := net.Dial("tcp", cfg.Addrs[j])
				if err == nil {
					var hello [4]byte
					binary.LittleEndian.PutUint32(hello[:], uint32(cfg.Rank))
					if _, err := conn.Write(hello[:]); err != nil {
						errc <- err
						return
					}
					peers[j] = &tcpPeer{conn: conn}
					return
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("transport: rank %d dialing rank %d: %w", cfg.Rank, j, err)
					return
				}
				// Backoff while the peer process starts up: polling an
				// external resource, not synchronizing goroutines.
				time.Sleep(retry) // reptile-lint:allow nosleepsync dial retry backoff
			}
		}(j)
	}

	wg.Wait()
	if ln != nil {
		ln.Close()
	}
	select {
	case err := <-errc:
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
		return nil, err
	default:
	}

	// Reader goroutines: one per peer, delivering into the shared mailbox.
	// They exit when their connection is torn down; Close joins them so no
	// reader can touch the mailbox after Close returns.
	var readers sync.WaitGroup
	for from, p := range peers {
		if p == nil {
			continue
		}
		readers.Add(1)
		go func(from int, conn net.Conn) {
			defer readers.Done()
			readLoop(e, from, conn)
		}(from, p.conn)
	}

	e.sendFn = func(to int, m Message) error {
		if to == e.rank {
			return e.deliver(m)
		}
		if len(m.Data) > maxFrame {
			return fmt.Errorf("transport: frame of %d bytes exceeds %d", len(m.Data), maxFrame)
		}
		return peers[to].write(m.Tag, m.Data)
	}
	e.closeFn = func() error {
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
		readers.Wait()
		return nil
	}
	return e, nil
}

func readLoop(e *Endpoint, from int, conn net.Conn) {
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // peer gone or endpoint closing
		}
		tag := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		if err := e.deliver(Message{From: from, Tag: tag, Data: data}); err != nil {
			return
		}
	}
}

// LoopbackAddrs returns np distinct loopback addresses starting at basePort,
// for single-machine TCP groups (examples and tests).
func LoopbackAddrs(np, basePort int) []string {
	out := make([]string, np)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	return out
}
