package machine

import (
	"math"
	"testing"

	"reptile/internal/stats"
)

func TestShapeGeometry(t *testing.T) {
	s := Shape{Ranks: 128, RanksPerNode: 32, ThreadsPerRank: 2}
	if s.Nodes() != 4 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
	if s.NodeOf(0) != 0 || s.NodeOf(31) != 0 || s.NodeOf(32) != 1 || s.NodeOf(127) != 3 {
		t.Error("NodeOf mapping wrong")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Shape{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if bad.Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestComputeSlowdownMonotone(t *testing.T) {
	m := BGQ()
	s8 := Shape{Ranks: 128, RanksPerNode: 8, ThreadsPerRank: 2}
	s16 := Shape{Ranks: 128, RanksPerNode: 16, ThreadsPerRank: 2}
	s32 := Shape{Ranks: 128, RanksPerNode: 32, ThreadsPerRank: 2}
	f8, f16, f32 := m.computeSlowdown(s8), m.computeSlowdown(s16), m.computeSlowdown(s32)
	if f8 != 1 {
		t.Errorf("16 threads on 16 cores slowed: %f", f8)
	}
	if !(f16 > f8) || !(f32 > f16) {
		t.Errorf("slowdown not monotone: %f %f %f", f8, f16, f32)
	}
	if f32 > 2.5 {
		t.Errorf("4-way SMT slowdown %f implausibly high", f32)
	}
}

func TestRTTLocality(t *testing.T) {
	m := BGQ()
	s := Shape{Ranks: 64, RanksPerNode: 32, ThreadsPerRank: 2}
	intra := m.RTT(s, 0, 1, 13, 9)  // same node
	inter := m.RTT(s, 0, 33, 13, 9) // different node
	if intra >= inter {
		t.Errorf("intra-node RTT %g >= inter-node %g", intra, inter)
	}
}

func TestRTTBandwidthSharing(t *testing.T) {
	m := BGQ()
	few := Shape{Ranks: 64, RanksPerNode: 8, ThreadsPerRank: 2}
	many := Shape{Ranks: 64, RanksPerNode: 32, ThreadsPerRank: 2}
	big := 1 << 20
	if m.RTT(few, 0, 63, big, big) >= m.RTT(many, 0, 63, big, big) {
		t.Error("NIC sharing did not raise per-rank transfer time")
	}
}

func TestCollectiveTimeGrowsWithBytesAndRanks(t *testing.T) {
	m := BGQ()
	s := Shape{Ranks: 128, RanksPerNode: 32, ThreadsPerRank: 2}
	if m.CollectiveTime(s, 1<<20) >= m.CollectiveTime(s, 1<<24) {
		t.Error("collective time not monotone in bytes")
	}
	sBig := Shape{Ranks: 1024, RanksPerNode: 32, ThreadsPerRank: 2}
	if m.CollectiveTime(s, 0) >= m.CollectiveTime(sBig, 0) {
		t.Error("collective latency not monotone in ranks")
	}
}

// mkRun builds a uniform synthetic run for projection tests.
func mkRun(np int, remotePerRank int64) *stats.Run {
	run := &stats.Run{Ranks: make([]stats.Rank, np)}
	for i := range run.Ranks {
		r := &run.Ranks[i]
		r.Rank = i
		r.ReadBases = 1e6
		r.KmersExtracted = 1e6
		r.TilesExtracted = 1e6
		r.ExchangeBytes = 1 << 20
		r.KmerLookupsLocal = 5e5
		r.TileLookupsLocal = 5e5
		r.KmerLookupsRemote = remotePerRank / 2
		r.TileLookupsRemote = remotePerRank / 2
		r.RequestsServed = remotePerRank
		r.MsgsTo = make([]int64, np)
		r.BytesTo = make([]int64, np)
		per := remotePerRank / int64(np)
		for d := range r.MsgsTo {
			if d != i {
				r.MsgsTo[d] = per
				r.BytesTo[d] = per * 13
			}
		}
	}
	return run
}

func TestProjectBasics(t *testing.T) {
	m := BGQ()
	s := Shape{Ranks: 16, RanksPerNode: 8, ThreadsPerRank: 2}
	p, err := m.Project(mkRun(16, 1e6), s, ProjectOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PerRank) != 16 {
		t.Fatalf("PerRank len %d", len(p.PerRank))
	}
	if p.ConstructTime <= 0 || p.CorrectTime <= 0 {
		t.Errorf("non-positive phase times: %+v", p)
	}
	if p.CommTimeMax < p.CommTimeMin {
		t.Error("comm max < min")
	}
	if p.TotalTime() != p.ConstructTime+p.CorrectTime {
		t.Error("TotalTime mismatch")
	}
	if p.PerRank[0].Total() != p.PerRank[0].Construct+p.PerRank[0].Correct {
		t.Error("RankTime.Total mismatch")
	}
}

func TestProjectShapeMismatch(t *testing.T) {
	m := BGQ()
	if _, err := m.Project(mkRun(8, 100), Shape{Ranks: 16, RanksPerNode: 8, ThreadsPerRank: 2}, ProjectOpts{}); err == nil {
		t.Error("accepted rank-count mismatch")
	}
	if _, err := m.Project(mkRun(8, 100), Shape{Ranks: 0, RanksPerNode: 8, ThreadsPerRank: 2}, ProjectOpts{}); err == nil {
		t.Error("accepted invalid shape")
	}
}

func TestProjectRanksPerNodeSweepMatchesFig2(t *testing.T) {
	// Fig 2: for fixed 128 ranks on E.Coli, 32 ranks/node is slower than
	// 8 ranks/node, driven by communication.
	m := BGQ()
	run := mkRun(128, 2e6)
	var prev float64
	for i, rpn := range []int{8, 16, 32} {
		s := Shape{Ranks: 128, RanksPerNode: rpn, ThreadsPerRank: 2}
		p, err := m.Project(run, s, ProjectOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && p.TotalTime() <= prev {
			t.Errorf("rpn=%d total %g not slower than previous %g", rpn, p.TotalTime(), prev)
		}
		prev = p.TotalTime()
	}
}

func TestProjectUniversalFasterOnServeSide(t *testing.T) {
	// The universal heuristic removes probe overhead from the responder at
	// the cost of larger requests; for a serve-bound run it must win.
	m := BGQ()
	run := mkRun(16, 4e6)
	s := Shape{Ranks: 16, RanksPerNode: 16, ThreadsPerRank: 2}
	base, _ := m.Project(run, s, ProjectOpts{Universal: false})
	uni, _ := m.Project(run, s, ProjectOpts{Universal: true})
	if uni.PerRank[0].Serve >= base.PerRank[0].Serve {
		t.Errorf("universal serve %g >= probe-based %g", uni.PerRank[0].Serve, base.PerRank[0].Serve)
	}
}

func TestProjectNoRemoteTrafficNoCommWait(t *testing.T) {
	m := BGQ()
	run := mkRun(8, 0)
	s := Shape{Ranks: 8, RanksPerNode: 8, ThreadsPerRank: 2}
	p, err := m.Project(run, s, ProjectOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CommTimeMax != 0 {
		t.Errorf("comm wait %g with zero remote lookups", p.CommTimeMax)
	}
}

func TestEfficiency(t *testing.T) {
	if e := Efficiency(1024, 100, 8192, 15.4); math.Abs(e-0.81) > 0.02 {
		t.Errorf("Efficiency = %f, want ~0.81", e)
	}
	if Efficiency(1, 1, 0, 1) != 0 || Efficiency(1, 1, 1, 0) != 0 {
		t.Error("degenerate efficiency not zero")
	}
}

func TestMemPerRankBudget(t *testing.T) {
	m := BGQ()
	s := Shape{Ranks: 128, RanksPerNode: 32, ThreadsPerRank: 2}
	if got := m.MemPerRankBudget(s); got != 512<<20 {
		t.Errorf("budget = %d, want 512 MB", got)
	}
}
