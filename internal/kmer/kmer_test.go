package kmer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reptile/internal/dna"
)

func spec(t *testing.T, k, overlap int) Spec {
	t.Helper()
	s := Spec{K: k, Overlap: overlap}
	if err := s.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		s  Spec
		ok bool
	}{
		{Spec{K: 12, Overlap: 4}, true},
		{Spec{K: 1, Overlap: 0}, true},
		{Spec{K: 16, Overlap: 0}, true},
		{Spec{K: 0, Overlap: 0}, false},
		{Spec{K: 33, Overlap: 0}, false},
		{Spec{K: 12, Overlap: 12}, false},
		{Spec{K: 12, Overlap: -1}, false},
		{Spec{K: 20, Overlap: 2}, false}, // tile length 38 > 32
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestSpecGeometry(t *testing.T) {
	s := spec(t, 12, 4)
	if got := s.TileLen(); got != 20 {
		t.Errorf("TileLen = %d, want 20", got)
	}
	if got := s.Step(); got != 8 {
		t.Errorf("Step = %d, want 8", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 12, 20, 31, 32} {
		for trial := 0; trial < 50; trial++ {
			seq := make([]dna.Base, n)
			for i := range seq {
				seq[i] = dna.Base(rng.Intn(dna.NumBases))
			}
			id := Encode(seq)
			back := Decode(id, n)
			for i := range seq {
				if back[i] != seq[i] {
					t.Fatalf("n=%d: round trip failed at %d", n, i)
				}
			}
		}
	}
}

func TestEncodePanicsOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted 33 bases")
		}
	}()
	Encode(make([]dna.Base, 33))
}

func TestBaseAtWithBase(t *testing.T) {
	seq := dna.MustEncode("ACGTACGTACGT")
	id := Encode(seq)
	n := len(seq)
	for i, b := range seq {
		if got := id.BaseAt(i, n); got != b {
			t.Fatalf("BaseAt(%d) = %v, want %v", i, got, b)
		}
	}
	id2 := id.WithBase(3, n, dna.A)
	want := dna.MustEncode("ACGAACGTACGT")
	if got := Decode(id2, n); dna.DecodeString(got) != dna.DecodeString(want) {
		t.Errorf("WithBase = %s", dna.DecodeString(got))
	}
	// WithBase with the original base is a no-op.
	if id.WithBase(5, n, seq[5]) != id {
		t.Error("WithBase with same base changed the ID")
	}
}

func TestAppendMatchesReencoding(t *testing.T) {
	seq := dna.MustEncode("ACGTACGTACGTTTT")
	k := 6
	id := Encode(seq[:k])
	for i := k; i < len(seq); i++ {
		id = id.Append(seq[i], k)
		want := Encode(seq[i-k+1 : i+1])
		if id != want {
			t.Fatalf("Append at %d: got %v want %v", i, id, want)
		}
	}
}

func TestPrefixSuffix(t *testing.T) {
	seq := dna.MustEncode("ACGTACGT")
	id := Encode(seq)
	if got := id.Prefix(3, 8); got != Encode(seq[:3]) {
		t.Errorf("Prefix = %v", got)
	}
	if got := id.Suffix(3); got != Encode(seq[5:]) {
		t.Errorf("Suffix = %v", got)
	}
}

func TestReverseComplement(t *testing.T) {
	seq := dna.MustEncode("AACGT")
	id := Encode(seq)
	want := Encode(dna.ReverseComplement(seq))
	if got := id.ReverseComplement(len(seq)); got != want {
		t.Errorf("ReverseComplement = %v, want %v", got, want)
	}
}

func TestCanonicalSymmetry(t *testing.T) {
	f := func(raw uint64) bool {
		const n = 15
		id := ID(raw) & ID(Mask(n))
		return id.Canonical(n) == id.ReverseComplement(n).Canonical(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingID(t *testing.T) {
	a := Encode(dna.MustEncode("ACGTACGT"))
	b := Encode(dna.MustEncode("ACCTACGA"))
	if d := Hamming(a, b, 8); d != 2 {
		t.Errorf("Hamming = %d, want 2", d)
	}
	if d := Hamming(a, a, 8); d != 0 {
		t.Errorf("Hamming(a,a) = %d", d)
	}
}

func TestHammingMatchesDNA(t *testing.T) {
	f := func(x, y uint64) bool {
		const n = 16
		a, b := ID(x)&ID(Mask(n)), ID(y)&ID(Mask(n))
		return Hamming(a, b, n) == dna.Hamming(Decode(a, n), Decode(b, n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTileOfAndKmers(t *testing.T) {
	s := spec(t, 6, 2)
	read := dna.MustEncode("ACGTACGTAC") // tile length 10
	first := Encode(read[:6])
	second := Encode(read[4:10])
	tile := s.TileOf(first, second)
	if tile != Encode(read) {
		t.Fatalf("TileOf = %v, want %v", tile, Encode(read))
	}
	f, sec := s.Kmers(tile)
	if f != first || sec != second {
		t.Errorf("Kmers = %v,%v want %v,%v", f, sec, first, second)
	}
}

func TestEachKmer(t *testing.T) {
	s := spec(t, 4, 0)
	read := dna.MustEncode("ACGTACG")
	var got []ID
	var pos []int
	s.EachKmer(read, func(p int, id ID) {
		pos = append(pos, p)
		got = append(got, id)
	})
	if len(got) != 4 {
		t.Fatalf("EachKmer produced %d k-mers, want 4", len(got))
	}
	for i, p := range pos {
		if p != i {
			t.Errorf("pos[%d] = %d", i, p)
		}
		if want := Encode(read[p : p+4]); got[i] != want {
			t.Errorf("kmer at %d = %v, want %v", p, got[i], want)
		}
	}
}

func TestEachKmerShortRead(t *testing.T) {
	s := spec(t, 8, 0)
	calls := 0
	s.EachKmer(dna.MustEncode("ACGT"), func(int, ID) { calls++ })
	if calls != 0 {
		t.Errorf("EachKmer on short read made %d calls", calls)
	}
}

func TestEachTile(t *testing.T) {
	s := spec(t, 4, 2) // tile length 6, step 2
	read := dna.MustEncode("ACGTACGTAC")
	var pos []int
	s.EachTile(read, func(p int, id ID) {
		pos = append(pos, p)
		if want := Encode(read[p : p+6]); id != want {
			t.Errorf("tile at %d mismatch", p)
		}
	})
	want := []int{0, 2, 4}
	if len(pos) != len(want) {
		t.Fatalf("tile positions %v, want %v", pos, want)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("tile positions %v, want %v", pos, want)
		}
	}
	if ts := s.TileStarts(len(read)); len(ts) != 3 || ts[2] != 4 {
		t.Errorf("TileStarts = %v", ts)
	}
}

func TestEachTileStepStrideOne(t *testing.T) {
	s := spec(t, 4, 2) // tile length 6
	read := dna.MustEncode("ACGTACGTACGT")
	var pos []int
	s.EachTileStep(read, 1, func(p int, id ID) {
		pos = append(pos, p)
		if want := Encode(read[p : p+6]); id != want {
			t.Errorf("tile at %d mismatch (rolling extraction)", p)
		}
	})
	if len(pos) != 7 { // 12-6+1 windows
		t.Fatalf("stride-1 visited %d windows, want 7", len(pos))
	}
	for i, p := range pos {
		if p != i {
			t.Fatalf("positions %v not consecutive", pos)
		}
	}
}

func TestEachTileStepMatchesEachTile(t *testing.T) {
	s := spec(t, 6, 2)
	rng := rand.New(rand.NewSource(9))
	read := make([]dna.Base, 53)
	for i := range read {
		read[i] = dna.Base(rng.Intn(4))
	}
	var a, b []ID
	s.EachTile(read, func(_ int, id ID) { a = append(a, id) })
	s.EachTileStep(read, s.Step(), func(_ int, id ID) { b = append(b, id) })
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestEachTileStepShortReadAndBadStride(t *testing.T) {
	s := spec(t, 6, 2)
	calls := 0
	s.EachTileStep(dna.MustEncode("ACGT"), 1, func(int, ID) { calls++ })
	if calls != 0 {
		t.Error("short read produced tiles")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive stride accepted")
		}
	}()
	s.EachTileStep(make([]dna.Base, 20), 0, func(int, ID) {})
}

func TestConsecutiveTilesShareAKmer(t *testing.T) {
	s := spec(t, 6, 2)
	read := make([]dna.Base, 40)
	rng := rand.New(rand.NewSource(3))
	for i := range read {
		read[i] = dna.Base(rng.Intn(4))
	}
	var tiles []ID
	s.EachTile(read, func(_ int, id ID) { tiles = append(tiles, id) })
	for i := 1; i < len(tiles); i++ {
		_, prev2 := s.Kmers(tiles[i-1])
		cur1, _ := s.Kmers(tiles[i])
		if prev2 != cur1 {
			t.Fatalf("tile %d second k-mer != tile %d first k-mer", i-1, i)
		}
	}
}

func TestKmersPerRead(t *testing.T) {
	s := spec(t, 12, 4)
	if got := s.KmersPerRead(102); got != 91 {
		t.Errorf("KmersPerRead(102) = %d, want 91", got)
	}
	if got := s.KmersPerRead(5); got != 0 {
		t.Errorf("KmersPerRead(5) = %d, want 0", got)
	}
}

// Algebraic laws of the ID operations, checked with testing/quick.

func TestQuickTileOfKmersInverse(t *testing.T) {
	s := Spec{K: 8, Overlap: 3} // tile length 13
	f := func(raw uint64) bool {
		tile := ID(raw) & ID(Mask(s.TileLen()))
		k1, k2 := s.Kmers(tile)
		return s.TileOf(k1, k2) == tile
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixSuffixCover(t *testing.T) {
	const n = 20
	f := func(raw uint64) bool {
		id := ID(raw) & ID(Mask(n))
		for split := 1; split < n; split++ {
			pre := id.Prefix(split, n)
			suf := id.Suffix(n - split)
			if pre<<uint(2*(n-split))|suf != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWithBaseSelfInverse(t *testing.T) {
	const n = 16
	f := func(raw uint64, posRaw, baseRaw uint8) bool {
		id := ID(raw) & ID(Mask(n))
		pos := int(posRaw) % n
		b := dna.Base(baseRaw % 4)
		orig := id.BaseAt(pos, n)
		mutated := id.WithBase(pos, n, b)
		if mutated.BaseAt(pos, n) != b {
			return false
		}
		return mutated.WithBase(pos, n, orig) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAppendShiftsWindow(t *testing.T) {
	const n = 12
	f := func(raw uint64, baseRaw uint8) bool {
		id := ID(raw) & ID(Mask(n))
		b := dna.Base(baseRaw % 4)
		next := id.Append(b, n)
		// The new last base is b and positions shift left by one.
		if next.BaseAt(n-1, n) != b {
			return false
		}
		for i := 0; i < n-1; i++ {
			if next.BaseAt(i, n) != id.BaseAt(i+1, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerInRange(t *testing.T) {
	f := func(raw uint64, npRaw uint8) bool {
		np := int(npRaw%128) + 1
		o := Owner(ID(raw), np)
		return o >= 0 && o < np
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerUniformity(t *testing.T) {
	// Dense consecutive IDs (the worst case for id % np) must spread evenly.
	const np = 128
	counts := make([]int, np)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		counts[Owner(ID(i), np)]++
	}
	mean := float64(n) / np
	for r, c := range counts {
		if f := float64(c); f < 0.8*mean || f > 1.2*mean {
			t.Fatalf("rank %d owns %d of %d ids (mean %.0f): hash is not uniform", r, c, n, mean)
		}
	}
}

func TestHashBytesDiffers(t *testing.T) {
	a := HashBytes([]byte("ACGTACGT"))
	b := HashBytes([]byte("ACGTACGA"))
	if a == b {
		t.Error("HashBytes collided on a single-base change")
	}
	if HashBytes(nil) != HashBytes([]byte{}) {
		t.Error("HashBytes(nil) != HashBytes(empty)")
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Errorf("Mask(0) = %#x", Mask(0))
	}
	if Mask(1) != 3 {
		t.Errorf("Mask(1) = %#x", Mask(1))
	}
	if Mask(32) != ^uint64(0) {
		t.Errorf("Mask(32) = %#x", Mask(32))
	}
}
