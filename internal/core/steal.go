package core

import (
	"errors"
	"fmt"
	"sync"

	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// span is one correction chunk: a half-open index range into the rank's
// resident reads. Its lo index doubles as the chunk id on the wire —
// unique because chunks never overlap.
type span struct{ lo, hi int }

// stealSched is one rank's correct-phase work queue under Options.WorkSteal:
// the resident reads cut into ChunkReads-sized chunks. Local workers pop
// from the front; a peer's steal request is granted from the back (the
// classic steal-from-the-tail split, minimizing contention with the local
// scan); a granted chunk stays on loan until the thief returns its
// corrected reads, which are copied back in place — so the output is
// byte-identical to a run with no stealing, in any interleaving.
type stealSched struct {
	reads []reads.Read

	mu      sync.Mutex
	cond    *sync.Cond // signaled when a loan resolves or the sched fails
	spans   []span
	granted map[uint32]grantRec
	lent    int64 // chunks granted to thieves, for the stats summary
	failed  error
}

// grantRec is one chunk on loan.
type grantRec struct {
	sp    span
	thief int
}

// newStealSched cuts rs into chunks of at most chunk reads.
func newStealSched(rs []reads.Read, chunk int) *stealSched {
	if chunk < 1 {
		chunk = 1
	}
	s := &stealSched{reads: rs, granted: make(map[uint32]grantRec)}
	s.cond = sync.NewCond(&s.mu)
	for lo := 0; lo < len(rs); lo += chunk {
		hi := lo + chunk
		if hi > len(rs) {
			hi = len(rs)
		}
		s.spans = append(s.spans, span{lo: lo, hi: hi})
	}
	return s
}

// next pops the front chunk for a local worker.
func (s *stealSched) next() (span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spans) == 0 {
		return span{}, false
	}
	sp := s.spans[0]
	s.spans = s.spans[1:]
	return sp, true
}

// grant pops the back chunk for a remote thief and records the loan.
func (s *stealSched) grant(thief int) (span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spans) == 0 {
		return span{}, false
	}
	sp := s.spans[len(s.spans)-1]
	s.spans = s.spans[:len(s.spans)-1]
	s.granted[uint32(sp.lo)] = grantRec{sp: sp, thief: thief}
	s.lent++
	return sp, true
}

// accept resolves a loan: the thief's corrected reads replace the chunk in
// place. Called from the router goroutine.
func (s *stealSched) accept(chunk uint32, rs []reads.Read) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.granted[chunk]
	if !ok {
		return fmt.Errorf("core: steal return for chunk %d, which is not on loan", chunk)
	}
	if len(rs) != g.sp.hi-g.sp.lo {
		return fmt.Errorf("core: steal return for chunk %d carries %d reads, want %d", chunk, len(rs), g.sp.hi-g.sp.lo)
	}
	copy(s.reads[g.sp.lo:g.sp.hi], rs)
	delete(s.granted, chunk)
	s.cond.Broadcast()
	return nil
}

// reclaim re-queues every chunk on loan to a thief whose loss the recovery
// layer absorbed; the victim corrects them itself while settling.
func (s *stealSched) reclaim(thief int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, g := range s.granted {
		if g.thief != thief {
			continue
		}
		delete(s.granted, id)
		s.spans = append(s.spans, g.sp)
	}
	s.cond.Broadcast()
}

// fail poisons the scheduler so a victim blocked in drain wakes with the
// run's failure instead of waiting on a loan that will never resolve.
func (s *stealSched) fail(err error) {
	if err == nil {
		err = fmt.Errorf("core: steal scheduler failed with nil error")
	}
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drain is the victim's settling loop: pop a (possibly reclaimed) chunk to
// correct inline, or block until every loan resolves. Returns ok=false with
// a nil error when the queue is empty and nothing is on loan.
func (s *stealSched) drain() (span, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.failed != nil {
			return span{}, false, s.failed
		}
		if len(s.spans) > 0 {
			sp := s.spans[0]
			s.spans = s.spans[1:]
			return sp, true, nil
		}
		if len(s.granted) == 0 {
			return span{}, false, nil
		}
		s.cond.Wait()
	}
}

// chunksLent returns how many chunks thieves took from this rank.
func (s *stealSched) chunksLent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lent
}

// stealGrantMsg is a decoded tagStealGrant response, routed through the
// recovery caller.
type stealGrantMsg struct {
	chunk   uint32
	rs      []reads.Read
	granted bool
}

// correctPoolSteal is correctPool's work-stealing variant: the workers
// drain the chunk queue instead of owning fixed block partitions, then the
// rank turns thief — stealing chunks from still-busy peers — and finally
// settles its own loans. Chunk-id write-back keeps the corrected output
// byte-identical to the non-stealing run.
func (ctx *rankCtx) correctPoolSteal(disp *lookupDispatcher) (reptile.Result, error) {
	nw := ctx.opts.Heuristics.Workers
	if nw < 1 {
		nw = 1
	}
	var cacheMu *sync.RWMutex
	if ctx.opts.Heuristics.CacheRemote && nw > 1 {
		cacheMu = &sync.RWMutex{}
	}
	shards := make([]stats.Rank, nw)
	results := make([]reptile.Result, nw)
	errs := make([]error, nw)
	var pool sync.WaitGroup
	for w := 0; w < nw; w++ {
		pool.Add(1)
		go func(w int) {
			defer pool.Done()
			oracle := ctx.newOracle(&shards[w], disp, cacheMu)
			corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
			if err != nil {
				errs[w] = err
				return
			}
			for {
				sp, ok := ctx.steal.next()
				if !ok {
					return
				}
				for i := sp.lo; i < sp.hi; i++ {
					results[w].Add(corrector.CorrectRead(&ctx.steal.reads[i]))
					if oracle.err != nil {
						errs[w] = oracle.err
						return
					}
				}
			}
		}(w)
	}
	pool.Wait()

	var res reptile.Result
	for w := 0; w < nw; w++ {
		res.Add(results[w])
		ctx.st.AddLookups(&shards[w])
	}
	var werr error
	for w := 0; w < nw; w++ {
		if errs[w] == nil {
			continue
		}
		if werr == nil || (errors.Is(werr, transport.ErrClosed) && !errors.Is(errs[w], transport.ErrClosed)) {
			werr = errs[w]
		}
	}
	if werr != nil {
		return res, werr
	}
	if err := ctx.stealLoop(disp, &res); err != nil {
		return res, err
	}
	return res, ctx.stealSettle(disp, &res)
}

// stealLoop is the thief side: with the local queue dry, round-robin the
// live peers for chunks until one full cycle yields nothing. Stolen reads
// are corrected here (against the same static spectra, so the bytes are
// what the victim would have produced) and returned to the victim by chunk
// id over the one-way return tag.
func (ctx *rankCtx) stealLoop(disp *lookupDispatcher, res *reptile.Result) error {
	rc := ctx.recCaller
	if rc == nil || ctx.np < 2 {
		return nil
	}
	var shard stats.Rank
	oracle := ctx.newOracle(&shard, disp, nil)
	corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
	if err != nil {
		return err
	}
	defer ctx.st.AddLookups(&shard)
	for {
		stole := false
		for off := 1; off < ctx.np; off++ {
			victim := (ctx.rank + off) % ctx.np
			if ctx.rec != nil && ctx.rec.isDead(victim) {
				continue
			}
			g, err := ctx.stealFrom(rc, victim)
			if err != nil {
				// A victim dying mid-steal is survivable when recovery is
				// armed; its un-returned chunks are redone with its estate.
				if ctx.tolerateDeadPeer(err) == nil {
					continue
				}
				return err
			}
			if g == nil {
				continue
			}
			stole = true
			for i := range g.rs {
				res.Add(corrector.CorrectRead(&g.rs[i]))
				if oracle.err != nil {
					return oracle.err
				}
			}
			ctx.st.ChunksStolen++
			if err := msgplane.Send(ctx.e, victim, tagStealReturn, encodeStealReturn(g.chunk, g.rs)); err != nil {
				if ctx.tolerateDeadPeer(err) == nil {
					continue
				}
				return err
			}
		}
		if !stole {
			return nil
		}
	}
}

// stealFrom asks one victim for a chunk; nil without error means the victim
// had nothing to give.
func (ctx *rankCtx) stealFrom(rc *msgplane.Caller, victim int) (*stealGrantMsg, error) {
	call, err := rc.Start(victim, 1, func(reqID uint32) (msgplane.Tag, []byte) {
		return encodeStealReqFrame(reqID)
	})
	if err != nil {
		return nil, err
	}
	v, err := call.Wait()
	if err != nil {
		return nil, err
	}
	g, ok := v.(*stealGrantMsg)
	if !ok {
		return nil, fmt.Errorf("core: steal call resolved with %T", v)
	}
	if !g.granted {
		return nil, nil
	}
	return g, nil
}

// stealSettle waits for this rank's loans to come home, correcting any
// reclaimed chunk (a dead thief's) inline.
func (ctx *rankCtx) stealSettle(disp *lookupDispatcher, res *reptile.Result) error {
	var (
		shard     stats.Rank
		oracle    *distOracle
		corrector *reptile.Corrector
	)
	for {
		sp, ok, err := ctx.steal.drain()
		if err != nil {
			return err
		}
		if !ok {
			if oracle != nil {
				ctx.st.AddLookups(&shard)
			}
			return nil
		}
		if corrector == nil {
			oracle = ctx.newOracle(&shard, disp, nil)
			corrector, err = reptile.NewCorrector(ctx.opts.Config, oracle)
			if err != nil {
				return err
			}
		}
		for i := sp.lo; i < sp.hi; i++ {
			res.Add(corrector.CorrectRead(&ctx.steal.reads[i]))
			if oracle.err != nil {
				return oracle.err
			}
		}
	}
}
