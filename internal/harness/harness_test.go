package harness

import (
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale { return Scale{Dataset: 0.03, RankDiv: 256, MaxRanks: 8} }

func TestScaleRanks(t *testing.T) {
	sc := Scale{Dataset: 1, RankDiv: 32, MaxRanks: 64}
	if got := sc.Ranks(128); got != 4 {
		t.Errorf("Ranks(128) = %d", got)
	}
	if got := sc.Ranks(8192); got != 64 {
		t.Errorf("Ranks(8192) = %d (cap)", got)
	}
	if got := sc.Ranks(1); got != 2 {
		t.Errorf("Ranks(1) = %d (floor)", got)
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) missing", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo", Note: "ref",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.Render()
	for _, want := range []string{"== x: demo ==", "paper: ref", "a", "bbbb", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q in:\n%s", want, s)
		}
	}
	j, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "x"`, `"title": "demo"`, `"bbbb"`, `"333"`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON missing %q in:\n%s", want, j)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", `x,"y`}},
	}
	got := tab.CSV()
	want := "a,b\n1,\"x,\"\"y\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableIExperiment(t *testing.T) {
	tab, err := TableI(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table I rows: %d", len(tab.Rows))
	}
	// Coverage column must match the paper presets.
	wantCov := []string{"96X", "75X", "47X"}
	for i, row := range tab.Rows {
		if row[4] != wantCov[i] {
			t.Errorf("row %d coverage %s, want %s", i, row[4], wantCov[i])
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	tab, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(tab.Rows[0]) != len(tab.Header) {
		t.Error("ragged table")
	}
}

func TestFig4ShowsBalanceEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("two engine runs")
	}
	tab, err := Fig4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "imbalanced" || tab.Rows[1][0] != "balanced" {
		t.Errorf("mode order: %v %v", tab.Rows[0][0], tab.Rows[1][0])
	}
}

func TestFig5AllModesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("nine engine runs")
	}
	tab, err := Fig5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	sc := tinyScale()
	for _, e := range All() {
		tab, err := e.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: ragged row %v", e.ID, row)
			}
		}
		if tab.CSV() == "" || tab.Render() == "" {
			t.Errorf("%s: empty rendering", e.ID)
		}
	}
}

func TestScalingExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweeps")
	}
	for _, f := range []func(Scale) (*Table, error){Fig3, Fig6} {
		tab, err := f(tinyScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", tab.ID)
		}
	}
}
