// Package fixture exercises the lockguard analyzer: true positives on
// unguarded accesses, clean passes on locked and holds-annotated code.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int // unguarded on purpose
}

// Good locks before touching the guarded field: clean.
func (c *counter) Good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// addLocked runs under the caller's lock.
//
// reptile-lint:holds mu
func (c *counter) addLocked() { c.n++ }

// Bad reads the guarded field with no lock in sight.
func (c *counter) Bad() int {
	return c.n // want "guarded by c.mu"
}

// Unguarded touches only the unannotated field: clean.
func (c *counter) Unguarded() int { return c.ok }

// readBad shows the check also applies to plain functions via parameters.
func readBad(c *counter) int {
	return c.n // want "guarded by c.mu"
}

// Allowed demonstrates per-line suppression for post-join reads.
func (c *counter) Allowed() int {
	return c.n // reptile-lint:allow lockguard read after goroutines joined
}

type wrapper struct {
	inner *counter
}

// GoodChain locks the nested owner's mutex: clean.
func (w *wrapper) GoodChain() int {
	w.inner.mu.Lock()
	defer w.inner.mu.Unlock()
	return w.inner.n
}

// BadChain reaches through a field chain without the nested lock.
func (w *wrapper) BadChain() int {
	return w.inner.n // want "guarded by w.inner.mu"
}

type ring struct {
	mu    sync.RWMutex
	slots []int // guarded by mu
}

// Snapshot uses the read lock, which satisfies the guard too: clean.
func (r *ring) Snapshot() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, len(r.slots))
	copy(out, r.slots)
	return out
}

type broken struct {
	x int // guarded by missing -- want "has no field missing"
}

func use(b *broken) int {
	b2 := b
	_ = b2
	return 0
}
