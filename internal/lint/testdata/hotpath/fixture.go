// Package fixture exercises the hotpath analyzer: per-iteration heap
// allocations inside annotated functions and their module-local callees.
package fixture

import "fmt"

type item struct {
	id uint64
	n  int
}

// process is the annotated hot loop; every allocation class fires once.
//
// reptile-lint:hotpath
func process(items []item) int {
	total := 0
	for _, it := range items {
		buf := make([]byte, 8) // want "make in a loop allocates every iteration"
		_ = buf
		p := &item{id: it.id} // want "&item literal allocates every loop iteration"
		total += p.n
		s := string(encode(it.id)) // want "string conversion in a loop copies and allocates"
		_ = s
		fmt.Println(it.id)              // want "fmt.Println in a loop boxes its arguments"
		f := func() int { return it.n } // want "func literal in a loop allocates a closure"
		total += f()
	}
	var out []int
	for _, it := range items {
		out = append(out, it.n) // want "append to out grows from zero capacity"
	}
	helper(items)
	return total + len(out)
}

// helper is not annotated: it is checked because process (hotpath) calls it.
func helper(items []item) {
	for range items {
		_ = new(item) // want "hot path of hotpath.process"
	}
}

// box has an interface parameter, so every hot-loop call to it boxes.
func box(v any) {}

// boxes passes a concrete value to an interface parameter per iteration.
//
// reptile-lint:hotpath
func boxes(items []item) {
	for _, it := range items {
		box(it.n) // want "boxes this argument into an interface parameter"
	}
}

// encode is on the hot path via process but stays allocation-free: the
// write loop touches only a stack array.
func encode(id uint64) []byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(id >> (8 * uint(i)))
	}
	return b[:]
}

// cold repeats process's allocations without an annotation: no findings.
func cold(items []item) int {
	total := 0
	for _, it := range items {
		p := &item{id: it.id}
		total += p.n
	}
	return total
}

// hoisted shows the clean pattern: buffers and closures built once, append
// into preallocated capacity, the loop body monomorphic.
//
// reptile-lint:hotpath
func hoisted(items []item) int {
	out := make([]int, 0, len(items))
	add := func(n int) { out = append(out, n) }
	for _, it := range items {
		add(it.n)
	}
	return len(out)
}

// launcher fans out one goroutine per worker: a go/defer closure in a loop
// is the fan-out idiom, not per-iteration garbage, so only its body is held
// to the loop rules.
//
// reptile-lint:hotpath
func launcher(items []item, nw int) {
	for w := 0; w < nw; w++ {
		go func(w int) {
			for _, it := range items {
				sink(w + it.n)
			}
		}(w)
	}
}

func sink(int) {}
