package lint

import (
	"go/ast"
	"go/token"
)

// Def-use over one function body, keyed by the parser's resolved
// *ast.Object. The parser (invoked without SkipObjectResolution) links
// every identifier use back to its declaration within the file, which is
// exactly the scope discipline needed to tell a shadowing inner `err` from
// a reuse of the outer one — no go/types required.

// varUse aggregates the def-use facts for one function-local variable.
type varUse struct {
	name      string
	pos       token.Pos // declaring identifier's position
	param     bool      // receiver, parameter, or named result
	writes    int       // assignments, including the declaration
	reads     int       // every other mention, at any nesting depth
	errValued bool      // some write stores the error result of a call
}

// defUses walks one function and groups every identifier by declaration.
// Mentions inside nested func literals count: a variable read only by a
// closure is still read.
func (m *Module) defUses(pkg *Package, f *File, fn *ast.FuncDecl, env *funcEnv) map[*ast.Object]*varUse {
	if fn.Body == nil {
		return nil
	}
	uses := map[*ast.Object]*varUse{}
	params := map[*ast.Object]bool{}
	markParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, n := range fld.Names {
				if n.Obj != nil {
					params[n.Obj] = true
				}
			}
		}
	}
	markParams(fn.Recv)
	markParams(fn.Type.Params)
	markParams(fn.Type.Results)

	// Pass 1: classify which identifier nodes are writes, and which writes
	// carry an error value.
	writes := map[*ast.Ident]bool{}
	errWrites := map[*ast.Ident]bool{}
	markWrite := func(e ast.Expr, errValued bool) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			writes[id] = true
			if errValued {
				errWrites[id] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Rhs) == 1 && len(t.Lhs) > 1 {
				// a, b := f(): only the position matching an error result is
				// error-valued; without a resolved callee, assume the last.
				call, isCall := t.Rhs[0].(*ast.CallExpr)
				errValued := isCall && m.callReturnsError(pkg, f, env, call)
				for i, lhs := range t.Lhs {
					markWrite(lhs, errValued && i == len(t.Lhs)-1)
				}
				return true
			}
			for i, lhs := range t.Lhs {
				errValued := false
				if i < len(t.Rhs) {
					if call, ok := t.Rhs[i].(*ast.CallExpr); ok {
						errValued = m.callReturnsError(pkg, f, env, call)
					}
				}
				markWrite(lhs, errValued)
			}
		case *ast.ValueSpec:
			for i, id := range t.Names {
				errValued := false
				if i < len(t.Values) {
					if call, ok := t.Values[i].(*ast.CallExpr); ok {
						errValued = m.callReturnsError(pkg, f, env, call)
					}
				}
				markWrite(id, errValued)
			}
		case *ast.RangeStmt:
			markWrite(t.Key, false)
			markWrite(t.Value, false)
		case *ast.IncDecStmt:
			// x++ both reads and writes; leave the mention a read so the
			// variable never looks write-only.
		}
		return true
	})

	// Pass 2: tally every mention against its declaring object, restricted
	// to objects declared inside this function (parameters included).
	lo, hi := fn.Pos(), fn.End()
	declaredHere := func(obj *ast.Object) bool {
		d, ok := obj.Decl.(ast.Node)
		if !ok {
			return false
		}
		return d.Pos() >= lo && d.End() <= hi
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Obj == nil || id.Obj.Kind != ast.Var || id.Name == "_" {
			return true
		}
		if !declaredHere(id.Obj) {
			return true
		}
		u := uses[id.Obj]
		if u == nil {
			u = &varUse{name: id.Name, pos: id.Obj.Pos(), param: params[id.Obj]}
			uses[id.Obj] = u
		}
		if writes[id] {
			u.writes++
			if errWrites[id] {
				u.errValued = true
			}
		} else {
			u.reads++
		}
		return true
	})
	return uses
}
