// Command reptile-lint runs the project's static-analysis suite over the
// module: lockguard, wireproto, nosleepsync, and goroutine-hygiene (see
// internal/lint and the "Concurrency invariants" section of DESIGN.md).
//
// Usage:
//
//	reptile-lint [-list] [packages]
//
// Packages default to ./... and use go-list-style patterns resolved against
// the enclosing module. The exit status is the number of findings capped at
// 1, so `go run ./cmd/reptile-lint ./...` gates CI directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"reptile/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "reptile-lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reptile-lint:", err)
	os.Exit(2)
}
