package core

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"reptile/internal/reads"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// recoverOpts arms the recovery layer on a testDataset option set: replica
// placement needs the batched lookup pipeline (Options.Validate enforces
// it), and R=2 is the only supported replication degree.
func recoverOpts(opts Options) Options {
	opts.Replicas = 2
	opts.Heuristics.LookupBatch = 16
	return opts
}

// crashCorrectPlan schedules rank 1's death at its 3rd send inside the
// correct phase — after the spectra are frozen and replicated, while the
// lookup traffic is in full flight.
func crashCorrectPlan(seed int64) transport.Plan {
	plan := transport.NewPlan(seed)
	plan.CrashRank = 1
	plan.CrashPhase = "correct"
	plan.CrashAfter = 3
	return plan
}

// TestRecoverCrashDuringCorrectProc: with R=2 replicas, a single rank dying
// mid-correction must NOT abort the run — the survivors fail lookups over to
// the replica holder, re-replicate the lost shard, correct the dead rank's
// reads by proxy, and the aggregated output is byte-identical to a
// fault-free run.
func TestRecoverCrashDuringCorrectProc(t *testing.T) {
	ds, opts := testDataset(t, 600, 8100)
	opts = recoverOpts(opts)
	base, err := Run(&MemorySource{Reads: ds.Reads}, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		plan := crashCorrectPlan(seed)
		plan.Delay = 10 * time.Microsecond
		plan.Jitter = 30 * time.Microsecond
		o := opts
		o.Chaos = &plan
		var out *Output
		err := awaitRun(t, "recovered run", func() error {
			var err error
			out, err = Run(&MemorySource{Reads: ds.Reads}, 3, o)
			return err
		})
		if err != nil {
			t.Fatalf("seed %d: crash was not recovered: %v", seed, err)
		}
		sameOutput(t, "recovered proc crash", base, out)
		if len(out.ByRank[1]) != 0 {
			t.Errorf("seed %d: crashed rank contributed %d reads of its own", seed, len(out.ByRank[1]))
		}
		recovered := false
		for _, r := range out.Run.Ranks {
			for _, d := range r.RecoveredRanks {
				if d == 1 {
					recovered = true
				}
			}
		}
		if !recovered {
			t.Errorf("seed %d: no survivor recorded rank 1 as recovered", seed)
		}
		if n := out.Run.Sum(func(r *stats.Rank) int64 { return r.ShardsRereplicated }); n != 2 {
			t.Errorf("seed %d: %d shards re-replicated, want 2 (k-mer + tile)", seed, n)
		}
		if n := out.Run.Sum(func(r *stats.Rank) int64 { return r.ReadsRecovered }); n == 0 {
			t.Errorf("seed %d: no reads recovered from the dead rank's estate", seed)
		}
	}
}

// TestRecoverCrashDuringCorrectTCP: the same single-crash recovery over real
// sockets — peers detect the loss through read deadlines, the survivors
// complete, and their merged output matches a fault-free in-process run.
func TestRecoverCrashDuringCorrectTCP(t *testing.T) {
	ds, opts := testDataset(t, 600, 8200)
	opts = recoverOpts(opts)
	base, err := Run(&MemorySource{Reads: ds.Reads}, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := chaosTCPRanks(t, ds.Reads, 3, opts, crashCorrectPlan(17), 3*time.Second)
	if errs[1] == nil {
		t.Fatal("crashed rank completed")
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
	got := &Output{ByRank: make([][]reads.Read, 3)}
	recovered := false
	for _, r := range []int{0, 2} {
		if errs[r] != nil {
			t.Fatalf("surviving rank %d failed instead of recovering: %v", r, errs[r])
		}
		got.ByRank[r] = outs[r].Corrected
		got.Result.Add(outs[r].Result)
		for _, d := range outs[r].Stats.RecoveredRanks {
			if d == 1 {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Error("no survivor recorded rank 1 as recovered")
	}
	sameOutput(t, "recovered tcp crash", base, got)
}

// TestRecoverCrashWithoutReplicasAborts: the same crash schedule without
// replicas must keep today's contract — every rank aborts cleanly, and the
// abort record names the dead rank, not whichever survivor noticed first.
func TestRecoverCrashWithoutReplicasAborts(t *testing.T) {
	ds, opts := testDataset(t, 600, 8300)
	opts.Heuristics.LookupBatch = 16
	errs := runChaosRanks(t, ds.Reads, 3, opts, crashCorrectPlan(42))
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite the unrecoverable crash", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
		if ab.Rank != 1 {
			t.Errorf("rank %d attributes the abort to rank %d, want the dead rank 1", r, ab.Rank)
		}
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
}

// TestRecoverCrashDuringBuildStillAborts: replicas only exist once the
// frozen spectra have been exchanged, so a crash during construction is
// unrecoverable by design and must abort exactly as before — replicas armed
// or not.
func TestRecoverCrashDuringBuildStillAborts(t *testing.T) {
	ds, opts := testDataset(t, 600, 8400)
	opts = recoverOpts(opts)
	plan := transport.NewPlan(42)
	plan.CrashRank = 1
	plan.CrashPhase = "spectrum"
	plan.CrashAfter = 3
	errs := runChaosRanks(t, ds.Reads, 3, opts, plan)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d completed despite a build-phase crash", r)
		}
		var ab *AbortError
		if !errors.As(err, &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, err, err)
		}
	}
	if !errors.Is(errs[1], transport.ErrInjected) {
		t.Errorf("crashed rank's error does not wrap ErrInjected: %v", errs[1])
	}
}

// skewSource hands every read to rank 0 and nothing to the others — the
// worst-case imbalance the work-stealing scheduler exists to fix.
type skewSource struct {
	rs []reads.Read
}

// Open implements Source.
func (s *skewSource) Open(rank, np, chunk int) (BatchReader, error) {
	if rank == 0 {
		return &memoryReader{shard: s.rs, chunk: chunk}, nil
	}
	return &memoryReader{chunk: chunk}, nil
}

// TestWorkStealingPreservesOutput: under a fully skewed assignment the idle
// rank must steal chunks from the loaded one, and because stolen corrections
// are written back by chunk id, the output must stay byte-identical to the
// no-stealing run.
func TestWorkStealingPreservesOutput(t *testing.T) {
	ds, opts := testDataset(t, 800, 8500)
	opts.LoadBalance = false
	opts.Config.ChunkReads = 64
	opts.Heuristics.LookupBatch = 16
	src := &skewSource{rs: ds.Reads}
	base, err := Run(src, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.WorkSteal = true
	var out *Output
	if err := awaitRun(t, "work-stealing run", func() error {
		var err error
		out, err = Run(src, 2, o)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "work stealing", base, out)
	stolen := out.Run.Sum(func(r *stats.Rank) int64 { return r.ChunksStolen })
	lent := out.Run.Sum(func(r *stats.Rank) int64 { return r.ChunksLent })
	if stolen == 0 {
		t.Error("idle rank stole no chunks from the loaded rank")
	}
	if stolen != lent {
		t.Errorf("%d chunks stolen but %d lent", stolen, lent)
	}
	if out.Run.Ranks[1].ChunksStolen == 0 {
		t.Error("rank 1 (the idle rank) recorded no stolen chunks")
	}
}

// TestIdleDeathAttribution: a rank that hangs between phases sends nothing —
// not even heartbeats — so its peers' read deadlines must expire the links,
// and the resulting abort must name the silent rank, not the observer that
// timed out first.
func TestIdleDeathAttribution(t *testing.T) {
	ds, opts := testDataset(t, 200, 8600)
	const np = 3
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	src := &MemorySource{Reads: ds.Reads}
	errs := make([]error, np)
	release := make(chan struct{})
	returned := make(chan int, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Rank 1 joins the group and then goes silent: PeerTimeout=0
			// disables its read deadlines AND its heartbeats, modeling a
			// process that is alive at the socket level but wedged — the
			// hardest loss to attribute, since no connection ever errors.
			timeout := 1200 * time.Millisecond
			if r == 1 {
				timeout = 0
			}
			e, err := transport.NewTCP(transport.TCPConfig{
				Rank: r, Addrs: addrs,
				DialTimeout: 10 * time.Second,
				PeerTimeout: timeout,
			})
			if err != nil {
				errs[r] = err
				returned <- r
				return
			}
			defer e.Close()
			if r == 1 {
				<-release
				return
			}
			_, errs[r] = RunRank(e, src, opts)
			returned <- r
		}(r)
	}
	// Peers must expire the idle rank on their own; it is released (and its
	// endpoint closed) only after both survivors have already returned.
	_ = awaitRun(t, "idle-death group", func() error {
		<-returned
		<-returned
		return nil
	})
	close(release)
	wg.Wait()
	for _, r := range []int{0, 2} {
		var ab *AbortError
		if !errors.As(errs[r], &ab) {
			t.Fatalf("rank %d: %T is not an AbortError: %v", r, errs[r], errs[r])
		}
		if ab.Rank != 1 {
			t.Errorf("rank %d attributes the abort to rank %d, want the idle rank 1", r, ab.Rank)
		}
		if !errors.Is(errs[r], transport.ErrPeerDown) {
			t.Errorf("rank %d error does not wrap ErrPeerDown: %v", r, errs[r])
		}
	}
}
