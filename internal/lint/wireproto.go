package lint

import (
	"go/ast"
	"go/token"
)

// WireProto cross-checks the wire-format registry against its users: every
// message tag constant (tagXxx) and payload kind constant (kindXxx) declared
// in a package must have both a producer and a consumer, so protocol drift —
// a tag that is sent but never matched by any receive path, or decoded but
// never sent — is a lint error instead of a distributed hang.
//
// Evidence is syntactic, gathered over the whole package:
//
//	producer: the constant appears inside an encode* function, or as an
//	          argument to a call named Send or encode*. Payload kind
//	          constants (kindXxx) additionally count any call argument as
//	          producer evidence, because kinds legitimately flow to the
//	          encoder through dispatch helpers (lookup → remote → encode).
//	consumer: the constant appears inside a decode* function, in a
//	          switch case clause, in an ==/!= comparison outside encoders,
//	          or as an argument to a call named Recv, RecvMatch, Handle,
//	          or decode*. Handle counts because registering a router
//	          handler for a tag IS its receive path.
//
// Packages that adopt the message-plane registry get a third check: once
// any tag constant shows registration evidence — it appears inside a call
// named Register* or a composite literal of a type named *Spec — every tag
// constant in the package must be registered, since the router rejects
// frames carrying unregistered tags as unknown-tag violations. Packages
// with no registration evidence (e.g. the transport's private control
// tags) skip this check.
//
// Packages that declare no tag constants are skipped, so the analyzer is a
// no-op everywhere except the wire-protocol package(s).
type WireProto struct{}

// NewWireProto returns the analyzer with default configuration.
func NewWireProto() *WireProto { return &WireProto{} }

// Name implements Analyzer.
func (*WireProto) Name() string { return "wireproto" }

// Doc implements Analyzer.
func (*WireProto) Doc() string {
	return "checks every tag/kind wire constant has send/encode and receive/decode paths, and is registered where a tag registry is in use"
}

// wireConst tracks the evidence gathered for one constant.
type wireConst struct {
	pos        token.Pos
	kind       bool // kindXxx payload enum (vs tagXxx message tag)
	produced   bool
	consumed   bool
	registered bool // appears in a Register* call or a *Spec literal
}

// Check implements Analyzer.
func (wp *WireProto) Check(pkg *Package, r *Reporter) {
	consts := map[string]*wireConst{}
	declGroups := map[*ast.GenDecl]bool{}

	for _, f := range pkg.SourceFiles() {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if isWireConstName(name.Name) {
						consts[name.Name] = &wireConst{
							pos:  name.Pos(),
							kind: hasPrefixFold(name.Name, "kind"),
						}
						declGroups[gd] = true
					}
				}
			}
		}
	}
	if len(consts) == 0 {
		return
	}

	for _, f := range pkg.SourceFiles() {
		for _, decl := range f.AST.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && declGroups[gd] {
				continue // the registry itself is neither producer nor consumer
			}
			fn, isFunc := decl.(*ast.FuncDecl)
			inEncoder := isFunc && hasPrefixFold(fn.Name.Name, "encode")
			inDecoder := isFunc && hasPrefixFold(fn.Name.Name, "decode")
			classifyUses(decl, consts, inEncoder, inDecoder)
		}
	}

	// Registry mode turns on as soon as any tag constant shows
	// registration evidence; kinds live inside payloads and are never
	// registered.
	hasRegistry := false
	for _, c := range consts {
		if c.registered && !c.kind {
			hasRegistry = true
		}
	}

	for name, c := range consts {
		if !c.produced {
			r.Reportf(c.pos, "wire constant %s has no send/encode path: nothing ever puts it on the wire", name)
		}
		if !c.consumed {
			r.Reportf(c.pos, "wire constant %s has no receive/decode path: messages carrying it would hang undelivered", name)
		}
		if hasRegistry && !c.kind && !c.registered {
			r.Reportf(c.pos, "wire constant %s is missing from the tag registry: the router would reject its frames as unknown-tag", name)
		}
	}
}

// isWireConstName matches the registry naming convention: tagXxx / kindXxx
// (or exported TagXxx / KindXxx).
func isWireConstName(name string) bool {
	for _, prefix := range []string{"tag", "kind", "Tag", "Kind"} {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			c := name[len(prefix)]
			if c >= 'A' && c <= 'Z' {
				return true
			}
		}
	}
	return false
}

// classifyUses walks one declaration recording producer/consumer evidence
// for each wire constant mentioned in it.
func classifyUses(decl ast.Decl, consts map[string]*wireConst, inEncoder, inDecoder bool) {
	// markIdents records every wire-const identifier under n.
	markIdents := func(n ast.Node, produce, consume bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if c, tracked := consts[id.Name]; tracked {
				c.produced = c.produced || produce
				c.consumed = c.consumed || consume
			}
			return true
		})
	}

	// markRegistered records registry evidence for every wire const under n.
	markRegistered := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if c, tracked := consts[id.Name]; tracked {
					c.registered = true
				}
			}
			return true
		})
	}

	ast.Inspect(decl, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CaseClause:
			for _, e := range t.List {
				markIdents(e, false, true)
			}
		case *ast.BinaryExpr:
			if t.Op == token.EQL || t.Op == token.NEQ {
				// Comparisons route messages on the receive side, except
				// inside encoders, where they select the outgoing form.
				markIdents(t, inEncoder, !inEncoder)
			}
		case *ast.CompositeLit:
			// A tag inside a registry Spec literal is registration
			// evidence even when the Spec is built away from the
			// Register call itself.
			if typeNameEndsWith(t.Type, "Spec") {
				markRegistered(t)
			}
		case *ast.CallExpr:
			name := funcNameOf(t)
			produce := name == "Send" || hasPrefixFold(name, "encode")
			// A tag handed to Handle gets its frames demuxed by the
			// router — that registration IS the tag's receive path.
			consume := name == "Recv" || name == "RecvMatch" || name == "Handle" || hasPrefixFold(name, "decode")
			register := hasPrefixFold(name, "register")
			for _, arg := range t.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if c, tracked := consts[id.Name]; tracked {
						c.produced = c.produced || produce || c.kind
						c.consumed = c.consumed || consume
						c.registered = c.registered || register
					}
					return true
				})
			}
		case *ast.Ident:
			if _, tracked := consts[t.Name]; tracked {
				if inEncoder {
					consts[t.Name].produced = true
				}
				if inDecoder {
					consts[t.Name].consumed = true
				}
			}
		}
		return true
	})
}

// typeNameEndsWith reports whether a composite literal's type expression
// names a type with the given suffix (Spec, msgplane.Spec, []Spec...).
func typeNameEndsWith(expr ast.Expr, suffix string) bool {
	switch t := expr.(type) {
	case *ast.Ident:
		return len(t.Name) >= len(suffix) && t.Name[len(t.Name)-len(suffix):] == suffix
	case *ast.SelectorExpr:
		return typeNameEndsWith(t.Sel, suffix)
	case *ast.ArrayType:
		return typeNameEndsWith(t.Elt, suffix)
	}
	return false
}
