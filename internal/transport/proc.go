package transport

import (
	"errors"
	"fmt"
)

// NewProcGroup creates np in-process endpoints wired directly to each
// other's mailboxes: the transport used when ranks are goroutines of one
// process (all tests, benches, and the default engine mode).
//
// Delivery is a direct mailbox insert, so a Send happens-before the
// matching Recv returns, and per-(sender,tag) FIFO order follows from each
// sender being a single goroutine per tag stream.
//
// Failure semantics mirror the TCP transport: when a rank closes its
// endpoint, every other rank's mailbox is poisoned with a PeerDownError —
// the in-process analogue of the EOF a TCP reader would see. A rank's own
// receivers still get ErrClosed from its own Close (self-close is shutdown,
// not peer loss).
func NewProcGroup(np int) ([]*Endpoint, error) {
	if np < 1 {
		return nil, fmt.Errorf("transport: group size %d < 1", np)
	}
	eps := make([]*Endpoint, np)
	for r := 0; r < np; r++ {
		eps[r] = &Endpoint{
			rank:     r,
			size:     np,
			mbox:     newMailbox(),
			counters: NewCounters(np),
		}
	}
	for r := 0; r < np; r++ {
		r := r
		eps[r].sendFn = func(to int, m Message) error {
			err := eps[to].deliver(m)
			if errors.Is(err, ErrClosed) && to != r {
				// The destination endpoint closed mid-run: report it the way
				// the TCP transport reports a dead socket.
				return &PeerDownError{Rank: to, Cause: err}
			}
			return err
		}
		eps[r].closeFn = func() error {
			for to := 0; to < np; to++ {
				if to != r {
					// peerDown consults the survivor's recovery handler
					// (if armed) before poisoning; the handler runs on the
					// closing rank's goroutine, mirroring how a TCP EOF runs
					// on the reader goroutine rather than the application's.
					eps[to].peerDown(r, nil)
				}
			}
			return nil
		}
		// Chaos hooks. In-process links have no frames to corrupt and no
		// cables to pull, so both faults act directly on mailboxes: a
		// corrupt frame poisons the destination (the receiver is the one
		// that would have detected it), a dropped link downs each end in
		// the other's eyes.
		eps[r].corruptFn = func(to int) {
			eps[to].mbox.fail(&CorruptFrameError{From: r})
		}
		eps[r].dropFn = func(to int) {
			if to == r {
				return
			}
			eps[to].peerDown(r, nil)
			eps[r].peerDown(to, nil)
		}
	}
	return eps, nil
}

// CloseGroup closes every endpoint, returning the first error.
func CloseGroup(eps []*Endpoint) error {
	var first error
	for _, e := range eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
