package fastaio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

// TestShardPartitionProperty: for random datasets and rank counts, the
// shards always form an exact partition of the input, in order, regardless
// of read-length variance (which moves the byte-offset boundaries around).
func TestShardPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8) bool {
		n := int(nRaw%150) + 1
		np := int(npRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		ds := make([]reads.Read, n)
		for i := range ds {
			ln := 10 + rng.Intn(90)
			b := make([]dna.Base, ln)
			q := make([]byte, ln)
			for j := range b {
				b[j] = dna.Base(rng.Intn(4))
				q[j] = byte(rng.Intn(42))
			}
			ds[i] = reads.Read{Seq: int64(i + 1), Base: b, Qual: q}
		}
		dir := t.TempDir()
		fa, qual, err := WriteDataset(dir, "p", ds)
		if err != nil {
			t.Log(err)
			return false
		}
		var next int64 = 1
		for rank := 0; rank < np; rank++ {
			shard, err := ReadShard(fa, qual, rank, np)
			if err != nil {
				t.Logf("rank %d: %v", rank, err)
				return false
			}
			for _, r := range shard {
				if r.Seq != next {
					t.Logf("expected seq %d, got %d", next, r.Seq)
					return false
				}
				next++
			}
		}
		return next == int64(n+1)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSeekToSeqProperty: SeekToSeq finds every present sequence number.
func TestSeekToSeqProperty(t *testing.T) {
	ds := mkDataset(t, 300)
	fa, _ := writePair(t, ds)
	f, err := openAt(fa)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := fileSize(f)
	if err != nil {
		t.Fatal(err)
	}
	check := func(targetRaw uint16) bool {
		target := int64(targetRaw%300) + 1
		off, err := SeekToSeq(f, size, target)
		if err != nil {
			return false
		}
		_, seq, err := AlignToRecord(f, size, off)
		return err == nil && seq == target
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
