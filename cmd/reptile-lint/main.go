// Command reptile-lint runs the project's static-analysis suite over the
// module: lockguard, freezeguard, wireproto, nosleepsync, goroutine-hygiene,
// and the type-aware trio hotpath, errorflow, and msgorder (see internal/lint
// and the "Concurrency invariants" and "Type-aware analyzers" sections of
// DESIGN.md).
//
// Usage:
//
//	reptile-lint [-list] [-json] [packages]
//
// Packages default to ./... and use go-list-style patterns resolved against
// the enclosing module. With -json each finding is printed as one JSON
// object per line ({"file","line","col","analyzer","message"}) instead of
// the human-readable form, for CI annotation tooling.
//
// Exit status contract:
//
//	0  the run completed and found nothing
//	1  the run completed with one or more findings
//	2  the run itself failed (bad working directory, unreadable module,
//	   unparsable source)
//
// so `go run ./cmd/reptile-lint ./...` gates CI directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"reptile/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines instead of text")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(d.JSON()); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "reptile-lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reptile-lint:", err)
	os.Exit(2)
}
