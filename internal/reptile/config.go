// Package reptile implements the Reptile error-correction algorithm
// (Yang, Dorman & Aluru, Bioinformatics 2010): spectrum-based substitution
// correction that validates *tiles* — two overlapping k-mers — rather than
// bare k-mers, using base quality scores to prioritize which positions to
// try mutating. This is the sequential substrate the paper parallelizes;
// the distributed engine in internal/core runs exactly this corrector with
// a remote spectrum oracle.
package reptile

import (
	"fmt"

	"reptile/internal/kmer"
)

// Config fixes the correction parameters for a run. It corresponds to the
// configuration file the paper's implementation reads.
type Config struct {
	Spec kmer.Spec // k-mer length and tile overlap

	// KmerThreshold and TileThreshold are the minimum global counts for a
	// k-mer/tile to be considered solid (present in the pruned spectrum).
	KmerThreshold uint32
	TileThreshold uint32

	// QualThreshold: bases with Phred quality below this are the preferred
	// substitution sites when repairing a weak tile.
	QualThreshold byte

	// MaxErrPositions caps how many (lowest-quality-first) positions inside
	// a tile are tried as substitution sites.
	MaxErrPositions int

	// MaxErrPerTile is the Hamming search radius: 1 tries single
	// substitutions, 2 additionally tries pairs of the lowest-quality sites.
	MaxErrPerTile int

	// MaxCorrectionsPerRead aborts correction of reads needing more fixes
	// than plausible (likely mismapped or chimeric).
	MaxCorrectionsPerRead int

	// ChunkReads is the batch size used when streaming reads from disk
	// (the "chunk size" of the paper's configuration file).
	ChunkReads int
}

// Default returns the baseline configuration used throughout the repo:
// k=12 with a 4-base tile overlap (20-base tiles), matching the scale of
// the original Reptile defaults.
func Default() Config {
	return Config{
		Spec:                  kmer.Spec{K: 12, Overlap: 4},
		KmerThreshold:         6,
		TileThreshold:         3,
		QualThreshold:         25,
		MaxErrPositions:       6,
		MaxErrPerTile:         2,
		MaxCorrectionsPerRead: 8,
		ChunkReads:            4096,
	}
}

// ForCoverage adapts the solidity thresholds to the dataset's read coverage:
// deeper coverage pushes true k-mer/tile counts up, so the thresholds rise
// proportionally while staying above the error noise floor.
func ForCoverage(cov float64) Config {
	c := Default()
	kt := uint32(cov / 12)
	if kt < 3 {
		kt = 3
	}
	tt := uint32(cov / 24)
	if tt < 2 {
		tt = 2
	}
	c.KmerThreshold = kt
	c.TileThreshold = tt
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.KmerThreshold < 1 || c.TileThreshold < 1 {
		return fmt.Errorf("reptile: thresholds must be >= 1 (kmer=%d tile=%d)", c.KmerThreshold, c.TileThreshold)
	}
	if c.MaxErrPositions < 1 {
		return fmt.Errorf("reptile: MaxErrPositions %d < 1", c.MaxErrPositions)
	}
	if c.MaxErrPerTile < 1 || c.MaxErrPerTile > 2 {
		return fmt.Errorf("reptile: MaxErrPerTile %d outside [1,2]", c.MaxErrPerTile)
	}
	if c.MaxCorrectionsPerRead < 1 {
		return fmt.Errorf("reptile: MaxCorrectionsPerRead %d < 1", c.MaxCorrectionsPerRead)
	}
	if c.ChunkReads < 1 {
		return fmt.Errorf("reptile: ChunkReads %d < 1", c.ChunkReads)
	}
	return nil
}
