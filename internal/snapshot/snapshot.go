// Package snapshot serializes a rank's frozen spectra to disk and reloads
// them with near-zero parsing, making the Steps I-III spectrum build a
// cacheable artifact (ROADMAP item 3; cf. unikmer's .unik serialization).
//
// A snapshot is one file per rank:
//
//	magic "RSNP" | version u16 | params header | header CRC32 |
//	k-mer section | tile section
//
// where the params header pins everything the stored slabs depend on — k,
// tile overlap, both solidity thresholds, np, rank, and an owner-hash
// self-check — and each section is `payloadLen u64 | payload CRC32 |
// payload`, the payload being the PackedStore's exact slab image
// (spectrum.ExportSlabs). Loading therefore costs a header validation, two
// checksums, and a slab adoption (spectrum.ImportPackedSlabs): no per-entry
// decode, and the reloaded store answers every probe with the identical
// probe sequence the original would have.
//
// On top of the format sits a content-hash cache: CacheKey folds the input
// digest and every header parameter (plus the format version) into one hex
// key, and CachePath places rank files under a cache directory. Writers go
// through a same-directory temp file and an atomic rename, so concurrent
// runs racing on one cache entry each publish a complete file and the last
// rename wins — readers never observe a torn snapshot.
//
// Every malformed input — bad magic, stale version, checksum mismatch,
// truncation, parameter drift — decodes to a typed error (errors.Is against
// the Err* sentinels), never a panic and never a giant allocation; callers
// treat any of them as a cache miss and rebuild.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/spectrum"
)

// Version is the on-disk format version. Any layout or semantic change to
// the file bumps it, invalidating every existing cache entry (the version
// participates in CacheKey, so stale entries are simply never looked up —
// and a direct load of an old file fails with ErrVersion).
const Version = 1

// Magic identifies a Reptile spectrum snapshot file (the first four bytes
// of every .rsnap), exported so tools can sniff the format.
var Magic = [4]byte{'R', 'S', 'N', 'P'}

// Typed decode failures. Callers distinguish "not a snapshot at all"
// (ErrFormat), "a snapshot from another format generation" (ErrVersion),
// bit rot (ErrChecksum), a short read or torn file (ErrTruncated), and a
// valid snapshot built under different parameters (ErrParams).
var (
	ErrFormat    = errors.New("snapshot: not a spectrum snapshot")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrTruncated = errors.New("snapshot: truncated file")
	ErrParams    = errors.New("snapshot: parameter mismatch")
)

// Params is everything the stored slabs depend on. Two runs with equal
// Params (and equal input) freeze byte-identical stores, which is what
// makes the snapshot safe to adopt in place of a build.
type Params struct {
	K             int
	Overlap       int
	KmerThreshold uint32
	TileThreshold uint32
	NP            int
	Rank          int
}

// ownerHashCheck is a self-check of the owner-hash function: the low 32
// bits of HashID over a fixed probe. If the hash ever changes, the slab
// layouts and the owner partition both shift, so every old snapshot must be
// rejected — the stored check no longer matches.
func ownerHashCheck() uint32 {
	return uint32(kmer.HashID(kmer.ID(0x9E3779B97F4A7C15)))
}

// Fixed header geometry, after the 4-byte magic and 2-byte version:
// k u16 | overlap u16 | kmerThr u32 | tileThr u32 | np u32 | rank u32 |
// ownerHash u32 | headerCRC u32.
const (
	hdrParamsBytes = 2 + 2 + 4 + 4 + 4 + 4 + 4
	hdrBytes       = 4 + 2 + hdrParamsBytes + 4
	secHdrBytes    = 8 + 4 // payloadLen u64 | payload CRC32
)

// Encode appends the snapshot image of the two frozen stores to buf and
// returns the extended slice.
func Encode(buf []byte, p Params, kmers, tiles *spectrum.PackedStore) []byte {
	buf = append(buf, Magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	paramsStart := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.K))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Overlap))
	buf = binary.LittleEndian.AppendUint32(buf, p.KmerThreshold)
	buf = binary.LittleEndian.AppendUint32(buf, p.TileThreshold)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NP))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, ownerHashCheck())
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[paramsStart:]))
	for _, store := range []*spectrum.PackedStore{kmers, tiles} {
		secStart := len(buf)
		buf = append(buf, make([]byte, secHdrBytes)...)
		buf = store.ExportSlabs(buf)
		payload := buf[secStart+secHdrBytes:]
		binary.LittleEndian.PutUint64(buf[secStart:], uint64(len(payload)))
		binary.LittleEndian.PutUint32(buf[secStart+8:], crc32.ChecksumIEEE(payload))
	}
	return buf
}

// decodeParams validates magic, version, and the header checksum, returning
// the stored parameters and the remainder of b (the first section).
func decodeParams(b []byte) (Params, []byte, error) {
	var p Params
	if len(b) < hdrBytes {
		return p, nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", ErrTruncated, len(b), hdrBytes)
	}
	if [4]byte(b[0:4]) != Magic {
		return p, nil, fmt.Errorf("%w: bad magic %q", ErrFormat, b[0:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return p, nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}
	params := b[6 : 6+hdrParamsBytes]
	if got, want := crc32.ChecksumIEEE(params), binary.LittleEndian.Uint32(b[6+hdrParamsBytes:hdrBytes]); got != want {
		return p, nil, fmt.Errorf("%w: header CRC %08x, stored %08x", ErrChecksum, got, want)
	}
	p.K = int(binary.LittleEndian.Uint16(params[0:2]))
	p.Overlap = int(binary.LittleEndian.Uint16(params[2:4]))
	p.KmerThreshold = binary.LittleEndian.Uint32(params[4:8])
	p.TileThreshold = binary.LittleEndian.Uint32(params[8:12])
	p.NP = int(binary.LittleEndian.Uint32(params[12:16]))
	p.Rank = int(binary.LittleEndian.Uint32(params[16:20]))
	if check := binary.LittleEndian.Uint32(params[20:24]); check != ownerHashCheck() {
		return p, nil, fmt.Errorf("%w: owner-hash check %08x, this build computes %08x", ErrParams, check, ownerHashCheck())
	}
	return p, b[hdrBytes:], nil
}

// decodeSection verifies one section's length and checksum, adopts its slab
// image, and returns the store plus the remainder of b.
func decodeSection(b []byte, name string) (*spectrum.PackedStore, []byte, error) {
	if len(b) < secHdrBytes {
		return nil, nil, fmt.Errorf("%w: %d bytes left for the %s section header", ErrTruncated, len(b), name)
	}
	n := binary.LittleEndian.Uint64(b[0:8])
	want := binary.LittleEndian.Uint32(b[8:12])
	rest := b[secHdrBytes:]
	// Length check before touching the payload: a hostile length cannot
	// slice past the buffer or drive a giant allocation (ImportPackedSlabs
	// re-validates the slab header against the same bound).
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: %s section claims %d payload bytes, %d remain", ErrTruncated, name, n, len(rest))
	}
	payload := rest[:n]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, nil, fmt.Errorf("%w: %s section CRC %08x, stored %08x", ErrChecksum, name, got, want)
	}
	store, tail, err := spectrum.ImportPackedSlabs(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s section: %w", name, err)
	}
	if len(tail) != 0 {
		return nil, nil, fmt.Errorf("%w: %s section carries %d bytes past its slab image", ErrFormat, name, len(tail))
	}
	return store, rest[n:], nil
}

// Decode parses a full snapshot image: header, k-mer section, tile section,
// nothing trailing.
func Decode(b []byte) (Params, *spectrum.PackedStore, *spectrum.PackedStore, error) {
	p, rest, err := decodeParams(b)
	if err != nil {
		return p, nil, nil, err
	}
	kmers, rest, err := decodeSection(rest, "k-mer")
	if err != nil {
		return p, nil, nil, err
	}
	tiles, rest, err := decodeSection(rest, "tile")
	if err != nil {
		return p, nil, nil, err
	}
	if len(rest) != 0 {
		return p, nil, nil, fmt.Errorf("%w: %d bytes after the tile section", ErrFormat, len(rest))
	}
	return p, kmers, tiles, nil
}

// Write atomically publishes the snapshot at path: the image is written to
// a temp file in the same directory, synced, and renamed into place, so a
// reader never sees a partial file and concurrent writers of the same entry
// simply race to an identical result. Returns the bytes written.
func Write(path string, p Params, kmers, tiles *spectrum.PackedStore) (int64, error) {
	buf := Encode(nil, p, kmers, tiles)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, werr
	}
	return int64(len(buf)), nil
}

// Read loads and decodes the snapshot at path, returning the stores and the
// file size.
func Read(path string) (Params, *spectrum.PackedStore, *spectrum.PackedStore, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Params{}, nil, nil, 0, err
	}
	p, kmers, tiles, err := Decode(b)
	return p, kmers, tiles, int64(len(b)), err
}

// ReadParams decodes only the header of the snapshot at path — enough for
// an info listing without adopting the slabs.
func ReadParams(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, err
	}
	defer f.Close()
	hdr := make([]byte, hdrBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	p, _, err := decodeParams(hdr)
	return p, err
}

// CacheKey derives the content-hash cache key: a hex digest over the input
// digest, every build parameter the slabs depend on, the owner-hash check,
// and the format version. Rank is deliberately excluded — one key names the
// whole run's entry, with per-rank files placed by CachePath — and any
// parameter change, input change, or format bump lands on a fresh key, so
// invalidation is purely additive (stale entries are never consulted).
func CacheKey(inputDigest string, p Params) string {
	h := sha256.New()
	fmt.Fprintf(h, "reptile-snapshot|v%d|owner%08x|in:%s|k%d|o%d|kt%d|tt%d|np%d",
		Version, ownerHashCheck(), inputDigest, p.K, p.Overlap, p.KmerThreshold, p.TileThreshold, p.NP)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// RankFile names one rank's snapshot under an explicit path prefix
// (reptile-correct -snapshot, reptile-spectrum -save).
func RankFile(prefix string, rank int) string {
	return fmt.Sprintf("%s.r%d.rsnap", prefix, rank)
}

// CachePath names one rank's snapshot inside a cache directory.
func CachePath(dir, key string, rank int) string {
	return filepath.Join(dir, RankFile(key, rank))
}

// DigestFiles streams the named files (in order) through sha256 — the input
// digest for file-backed runs. Path names are folded in too, so swapping
// the fasta and qual arguments cannot alias a key.
func DigestFiles(paths ...string) (string, error) {
	h := sha256.New()
	for _, path := range paths {
		if path == "" {
			continue
		}
		fmt.Fprintf(h, "file:%s|", path)
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// DigestReads digests an in-memory read set — the input digest for
// MemorySource runs (tests, the harness).
func DigestReads(rs []reads.Read) string {
	h := sha256.New()
	var num [8]byte
	var scratch []byte
	for i := range rs {
		binary.LittleEndian.PutUint64(num[:], uint64(rs[i].Seq))
		h.Write(num[:])
		binary.LittleEndian.PutUint64(num[:], uint64(len(rs[i].Base)))
		h.Write(num[:])
		scratch = scratch[:0]
		for _, b := range rs[i].Base {
			scratch = append(scratch, byte(b))
		}
		h.Write(scratch)
		h.Write(rs[i].Qual)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
