package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// Output aggregates a whole run.
type Output struct {
	// ByRank holds each rank's corrected reads in rank order.
	ByRank [][]reads.Read
	// Run carries every rank's counters and the per-phase wall times.
	Run stats.Run
	// Result is the correction totals across ranks.
	Result reptile.Result
}

// Corrected returns all corrected reads sorted by sequence number, the
// order of the input file.
func (o *Output) Corrected() []reads.Read {
	var all []reads.Read
	for _, b := range o.ByRank {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

// rankConn wraps one proc-group endpoint per the run options: the plain
// endpoint normally, the chaos layer when a fault schedule is configured.
func rankConn(eps []*transport.Endpoint, r int, opts Options) transport.Conn {
	if opts.Chaos == nil {
		return eps[r]
	}
	return transport.NewChaos(eps[r], *opts.Chaos)
}

// pickRunError selects which rank's error to surface for a whole run. The
// abort protocol makes every rank fail, so the interesting error is the
// origin's: its own AbortError (the Rank field names itself), or a raw
// error that never entered the abort protocol at all (a sink factory
// failing before the rank started). Errors derived from teardown
// (ErrClosed) rank last.
func pickRunError(errs []error) error {
	origin := func(r int, err error) bool {
		var ab *AbortError
		if errors.As(err, &ab) {
			return ab.Rank == r
		}
		return !errors.Is(err, transport.ErrClosed)
	}
	betterThan := func(r int, err error, curRank int, cur error) bool {
		if cur == nil {
			return true
		}
		if newOrigin, curOrigin := origin(r, err), origin(curRank, cur); newOrigin != curOrigin {
			return newOrigin
		}
		return errors.Is(cur, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)
	}
	var firstErr error
	firstRank := -1
	for r, err := range errs {
		if err == nil {
			continue
		}
		if betterThan(r, err, firstRank, firstErr) {
			firstErr, firstRank = err, r
		}
	}
	if firstErr == nil {
		return nil
	}
	return fmt.Errorf("core: rank %d failed: %w", firstRank, firstErr)
}

// runGroup is the shared launcher behind Run and RunStreaming: build the
// in-process group, wrap each endpoint per the run options, run one rank
// per goroutine, pick the run's representative error, and aggregate the
// per-rank outputs (corrected reads in rank order, every rank's counters,
// per-phase wall maxima).
func runGroup(np int, opts Options, runOne func(conn transport.Conn, r int) (*RankOutput, error)) (*Output, error) {
	if np < 1 {
		return nil, fmt.Errorf("core: np=%d", np)
	}
	if opts.Chaos != nil {
		if err := opts.Chaos.Validate(np); err != nil {
			return nil, err
		}
	}
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		return nil, err
	}
	defer transport.CloseGroup(eps)

	outs := make([]*RankOutput, np)
	errs := make([]error, np)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = runOne(rankConn(eps, r, opts), r)
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := pickRunError(errs); err != nil {
		// A failed rank does not fail the run when the survivors' recovery
		// layer absorbed exactly that loss: the dead rank's shard and reads
		// were re-covered, so the aggregated output is complete.
		if !recoveredGroup(outs, errs) {
			return nil, err
		}
	}

	out := &Output{
		ByRank: make([][]reads.Read, np),
		Run:    stats.Run{Ranks: make([]stats.Rank, np)},
	}
	for r, ro := range outs {
		if ro == nil {
			continue // a recovered rank produced no output of its own
		}
		out.ByRank[r] = ro.Corrected
		out.Run.Ranks[r] = ro.Stats
		out.Result.Add(ro.Result)
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			if ro.Stats.Wall[p] > out.Run.Wall[p] {
				out.Run.Wall[p] = ro.Stats.Wall[p]
			}
		}
	}
	out.Run.Elapsed = elapsed
	return out, nil
}

// recoveredGroup reports whether every failed rank's loss was absorbed by
// the survivors' recovery layer: at least one rank finished cleanly, and the
// union of the survivors' RecoveredRanks covers every rank that failed.
func recoveredGroup(outs []*RankOutput, errs []error) bool {
	recovered := make(map[int]bool)
	survivors := 0
	for r, err := range errs {
		if err != nil || outs[r] == nil {
			continue
		}
		survivors++
		for _, d := range outs[r].Stats.RecoveredRanks {
			recovered[d] = true
		}
	}
	if survivors == 0 {
		return false
	}
	for r, err := range errs {
		if err != nil && !recovered[r] {
			return false
		}
	}
	return true
}

// Run executes the distributed pipeline with np goroutine ranks over the
// in-process transport — the standard way to run the engine inside one
// process. For one-process-per-rank deployments, call RunRank directly
// with TCP endpoints (see cmd/reptile-correct).
func Run(src Source, np int, opts Options) (*Output, error) {
	return runGroup(np, opts, func(conn transport.Conn, r int) (*RankOutput, error) {
		return RunRank(conn, src, opts)
	})
}
