package lint

import (
	"go/ast"
	"go/token"
	"path"
	"strings"
)

// This file is the type-aware half of the lint framework: a module-wide
// index of declared types, struct fields, and function signatures, plus the
// intra-package inference needed to resolve "what does this call refer to"
// without go/types. The same deliberate trade-off as the per-analyzer
// resolution in lockguard applies — names and declarations only, no
// interface satisfaction, no generics — but centralized here so hotpath,
// errorflow, and msgorder share one index instead of three ad-hoc walks.

// QualType names a declared type by its package's import path and its
// declared name.
type QualType struct {
	Pkg  string
	Name string
}

// qualRef is a resolved reference to a module type, reached through any
// number of pointers and at most one slice/array/map level (elem true means
// "element type of a container of t").
type qualRef struct {
	t     QualType
	elem  bool
	known bool
}

// paramInfo records what the analyzers need about one declared parameter.
type paramInfo struct {
	name  string
	iface bool // declared any / interface{}: a concrete argument boxes here
}

// FuncInfo is one function or method declaration somewhere in the module.
type FuncInfo struct {
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
	Recv QualType // zero Name for plain functions

	params       []paramInfo // flattened in declaration order, variadic last
	variadic     bool
	results      []qualRef
	returnsError bool // last declared result is the builtin error type
}

// String renders pkg.Recv.Name or pkg.Name, the label diagnostics use.
func (fi *FuncInfo) String() string {
	base := path.Base(fi.Pkg.ImportPath)
	if fi.Recv.Name != "" {
		return base + "." + fi.Recv.Name + "." + fi.Decl.Name.Name
	}
	return base + "." + fi.Decl.Name.Name
}

// funcKey identifies a function declaration module-wide.
type funcKey struct {
	pkg  string // import path
	recv string // receiver type name; "" for plain functions
	name string
}

// Module is the whole-module index shared by the type-aware analyzers:
// declared type names and struct fields per package, every function and
// method declaration, and per-file import tables restricted to
// module-local packages. Built once per Run.
type Module struct {
	Pkgs   []*Package
	byPath map[string]*Package
	funcs  map[funcKey]*FuncInfo
	// typeNames: import path -> declared type names (non-test files).
	typeNames map[string]map[string]bool
	// fields: import path -> struct name -> field name -> field type.
	fields map[string]map[string]map[string]qualRef
	// imports: file -> local name -> import path. Only paths present in the
	// loaded package set are kept: everything else is outside the module's
	// resolution horizon.
	imports map[*File]map[string]string
}

// NewModule indexes the loaded packages.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byPath:    map[string]*Package{},
		funcs:     map[funcKey]*FuncInfo{},
		typeNames: map[string]map[string]bool{},
		fields:    map[string]map[string]map[string]qualRef{},
		imports:   map[*File]map[string]string{},
	}
	for _, pkg := range pkgs {
		m.byPath[pkg.ImportPath] = pkg
	}
	// Pass 1: import tables and declared type names, which pass 2 needs to
	// qualify field and result types across package boundaries.
	for _, pkg := range pkgs {
		names := map[string]bool{}
		for _, f := range pkg.SourceFiles() {
			imp := map[string]string{}
			for _, spec := range f.AST.Imports {
				p := strings.Trim(spec.Path.Value, `"`)
				name := path.Base(p)
				if spec.Name != nil {
					name = spec.Name.Name
				}
				if name == "_" || name == "." {
					continue
				}
				imp[name] = p
			}
			m.imports[f] = imp
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					if ts, ok := s.(*ast.TypeSpec); ok {
						names[ts.Name.Name] = true
					}
				}
			}
		}
		m.typeNames[pkg.ImportPath] = names
	}
	// Pass 2: struct fields and function signatures.
	for _, pkg := range pkgs {
		fields := map[string]map[string]qualRef{}
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						fm := map[string]qualRef{}
						for _, fld := range st.Fields.List {
							ref := m.qualRefOf(pkg, f, fld.Type)
							for _, n := range fld.Names {
								fm[n.Name] = ref
							}
							// Embedded field: usable under its type name.
							if len(fld.Names) == 0 && ref.known {
								fm[ref.t.Name] = ref
							}
						}
						fields[ts.Name.Name] = fm
					}
				case *ast.FuncDecl:
					m.indexFunc(pkg, f, d)
				}
			}
		}
		m.fields[pkg.ImportPath] = fields
	}
	return m
}

// indexFunc records one function declaration's resolved signature.
func (m *Module) indexFunc(pkg *Package, f *File, fn *ast.FuncDecl) {
	fi := &FuncInfo{Pkg: pkg, File: f, Decl: fn}
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if ref := m.qualRefOf(pkg, f, fn.Recv.List[0].Type); ref.known {
			fi.Recv = ref.t
			recv = ref.t.Name
		} else if r := refOfExpr(fn.Recv.List[0].Type); r.known {
			// A receiver whose type is not indexed (interface alias etc.)
			// still keys the method by its syntactic name.
			fi.Recv = QualType{Pkg: pkg.ImportPath, Name: r.name}
			recv = r.name
		}
	}
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			t := fld.Type
			if ell, ok := t.(*ast.Ellipsis); ok {
				fi.variadic = true
				t = ell.Elt
			}
			p := paramInfo{iface: isIfaceType(t)}
			if len(fld.Names) == 0 {
				fi.params = append(fi.params, p)
				continue
			}
			for _, n := range fld.Names {
				p.name = n.Name
				fi.params = append(fi.params, p)
			}
		}
	}
	if fn.Type.Results != nil {
		for _, fld := range fn.Type.Results.List {
			ref := m.qualRefOf(pkg, f, fld.Type)
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				fi.results = append(fi.results, ref)
			}
			if id, ok := unwrapParens(fld.Type).(*ast.Ident); ok && id.Name == "error" {
				fi.returnsError = true // provisional: only the last result counts
			} else {
				fi.returnsError = false
			}
		}
	}
	m.funcs[funcKey{pkg.ImportPath, recv, fn.Name.Name}] = fi
}

// FuncOf returns the FuncInfo of a declaration previously indexed, or nil.
func (m *Module) FuncOf(pkg *Package, fn *ast.FuncDecl) *FuncInfo {
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if r := refOfExpr(fn.Recv.List[0].Type); r.known {
			recv = r.name
		}
	}
	fi := m.funcs[funcKey{pkg.ImportPath, recv, fn.Name.Name}]
	if fi != nil && fi.Decl == fn {
		return fi
	}
	return fi
}

// qualRefOf resolves a declared type expression in the context of one file:
// local type names resolve to this package, selector types through the
// file's imports. Unknown types (stdlib, builtins) return a zero ref.
func (m *Module) qualRefOf(pkg *Package, f *File, e ast.Expr) qualRef {
	elem := false
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.ArrayType:
			elem = true
			e = t.Elt
		case *ast.MapType:
			elem = true
			e = t.Value
		case *ast.Ident:
			if m.typeNames[pkg.ImportPath][t.Name] {
				return qualRef{t: QualType{pkg.ImportPath, t.Name}, elem: elem, known: true}
			}
			return qualRef{}
		case *ast.SelectorExpr:
			x, ok := t.X.(*ast.Ident)
			if !ok {
				return qualRef{}
			}
			p, ok := m.imports[f][x.Name]
			if !ok {
				return qualRef{}
			}
			if m.typeNames[p][t.Sel.Name] {
				return qualRef{t: QualType{p, t.Sel.Name}, elem: elem, known: true}
			}
			return qualRef{}
		default:
			return qualRef{}
		}
	}
}

// isIfaceType reports whether a declared parameter type boxes its argument:
// `any` or an empty `interface{}`.
func isIfaceType(e ast.Expr) bool {
	switch t := unwrapParens(e).(type) {
	case *ast.Ident:
		return t.Name == "any"
	case *ast.InterfaceType:
		return t.Methods == nil || len(t.Methods.List) == 0
	}
	return false
}

func unwrapParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcEnv maps a function's local variable names to resolved module types,
// for receiver resolution at call sites. Name-keyed and flow-insensitive:
// the last binding of a name wins, which is the same approximation the
// lockguard resolver uses.
type funcEnv struct {
	vars map[string]qualRef
}

// envOf infers local variable types for one indexed function: receiver,
// parameters, named results, then two passes over the body so forward uses
// of later bindings still resolve.
func (m *Module) envOf(fi *FuncInfo) *funcEnv {
	env := &funcEnv{vars: map[string]qualRef{}}
	pkg, f, fn := fi.Pkg, fi.File, fi.Decl
	bindFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := fld.Type
			if ell, ok := t.(*ast.Ellipsis); ok {
				t = ell.Elt
			}
			ref := m.qualRefOf(pkg, f, t)
			if !ref.known {
				continue
			}
			for _, n := range fld.Names {
				env.vars[n.Name] = ref
			}
		}
	}
	if fn.Recv != nil {
		bindFields(fn.Recv)
	}
	bindFields(fn.Type.Params)
	bindFields(fn.Type.Results)
	if fn.Body == nil {
		return env
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.ValueSpec:
				if t.Type != nil {
					if ref := m.qualRefOf(pkg, f, t.Type); ref.known {
						for _, id := range t.Names {
							env.vars[id.Name] = ref
						}
					}
					return true
				}
				if len(t.Values) == len(t.Names) {
					for i, id := range t.Names {
						if ref := m.resolveExprType(pkg, f, env, t.Values[i]); ref.known {
							env.vars[id.Name] = ref
						}
					}
				}
			case *ast.AssignStmt:
				m.bindAssign(pkg, f, env, t)
			case *ast.RangeStmt:
				if id, ok := t.Value.(*ast.Ident); ok && id.Name != "_" {
					if ref := m.resolveExprType(pkg, f, env, t.X); ref.known && ref.elem {
						env.vars[id.Name] = qualRef{t: ref.t, known: true}
					}
				}
			}
			return true
		})
	}
	return env
}

// bindAssign records what an assignment teaches the env about its LHS names.
func (m *Module) bindAssign(pkg *Package, f *File, env *funcEnv, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if ref := m.resolveExprType(pkg, f, env, as.Rhs[i]); ref.known {
				env.vars[id.Name] = ref
			}
		}
		return
	}
	// Multi-value: a, b := f() — bind from the call's declared results.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fi := m.resolveCall(pkg, f, env, call)
	if fi == nil || len(fi.results) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if fi.results[i].known {
			env.vars[id.Name] = fi.results[i]
		}
	}
}

// resolveExprType resolves the module type of an expression, best effort.
func (m *Module) resolveExprType(pkg *Package, f *File, env *funcEnv, e ast.Expr) qualRef {
	switch t := e.(type) {
	case *ast.ParenExpr:
		return m.resolveExprType(pkg, f, env, t.X)
	case *ast.StarExpr:
		return m.resolveExprType(pkg, f, env, t.X)
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			return m.resolveExprType(pkg, f, env, t.X)
		}
	case *ast.Ident:
		if ref, ok := env.vars[t.Name]; ok {
			return ref
		}
	case *ast.CompositeLit:
		if t.Type != nil {
			return m.qualRefOf(pkg, f, t.Type)
		}
	case *ast.CallExpr:
		if fi := m.resolveCall(pkg, f, env, t); fi != nil {
			if len(fi.results) == 1 {
				return fi.results[0]
			}
			return qualRef{}
		}
		// Not a known function: maybe a conversion T(x) or pkg.T(x).
		if len(t.Args) == 1 {
			if ref := m.qualRefOf(pkg, f, t.Fun); ref.known {
				return ref
			}
		}
	case *ast.IndexExpr:
		if ref := m.resolveExprType(pkg, f, env, t.X); ref.known && ref.elem {
			return qualRef{t: ref.t, known: true}
		}
	case *ast.SelectorExpr:
		base := m.resolveExprType(pkg, f, env, t.X)
		if base.known && !base.elem {
			if fm, ok := m.fields[base.t.Pkg][base.t.Name]; ok {
				return fm[t.Sel.Name]
			}
		}
	}
	return qualRef{}
}

// resolveCall resolves a call expression to the module function or method it
// invokes, or nil when the callee is outside the module (stdlib, builtin,
// interface method, function value).
func (m *Module) resolveCall(pkg *Package, f *File, env *funcEnv, call *ast.CallExpr) *FuncInfo {
	switch fun := unwrapParens(call.Fun).(type) {
	case *ast.Ident:
		return m.funcs[funcKey{pkg.ImportPath, "", fun.Name}]
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if _, isLocal := env.vars[x.Name]; !isLocal {
				if p, ok := m.imports[f][x.Name]; ok {
					return m.funcs[funcKey{p, "", fun.Sel.Name}]
				}
			}
		}
		ref := m.resolveExprType(pkg, f, env, fun.X)
		if ref.known && !ref.elem {
			return m.funcs[funcKey{ref.t.Pkg, ref.t.Name, fun.Sel.Name}]
		}
	}
	return nil
}

// callReturnsError reports whether a call's last result is an error: module
// functions via their indexed signature, plus the universal constructors
// errors.New / fmt.Errorf / errors.Join.
func (m *Module) callReturnsError(pkg *Package, f *File, env *funcEnv, call *ast.CallExpr) bool {
	if fi := m.resolveCall(pkg, f, env, call); fi != nil {
		return fi.returnsError
	}
	sel, ok := unwrapParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch {
	case x.Name == "errors" && (sel.Sel.Name == "New" || sel.Sel.Name == "Join"):
		return true
	case x.Name == "fmt" && sel.Sel.Name == "Errorf":
		return true
	}
	return false
}
