package kmer

import (
	"math/rand"
	"testing"

	"reptile/internal/dna"
)

// TestRollingMatchesScratch is the property pin for the rolling extractors:
// at every position EachKmer, EachTileStep (all strides), and AppendTiles
// must yield exactly the ID a from-scratch Encode of that window produces.
// The reads include 'N' bases — EncodeLossy substitutes them, which is how
// real inputs reach the extractors — and lengths straddling the short-read
// edges (shorter than K, shorter than a tile).
func TestRollingMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	specs := []Spec{
		{K: 12, Overlap: 4},  // the run default: TileLen 20, Step 8
		{K: 12, Overlap: 11}, // maximal overlap: Step 1
		{K: 16, Overlap: 0},  // TileLen 32, the full ID width
		{K: 3, Overlap: 1},
		{K: 1, Overlap: 0},
	}
	const alphabet = "ACGTN"
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		tl, step := spec.TileLen(), spec.Step()
		for trial := 0; trial < 200; trial++ {
			// Lengths concentrate around the edges: empty, sub-K, sub-tile,
			// and a spread of full-size reads.
			n := rng.Intn(3 * tl)
			if trial%4 == 0 {
				n = rng.Intn(tl + 2)
			}
			seq := make([]byte, n)
			for i := range seq {
				seq[i] = alphabet[rng.Intn(len(alphabet))]
			}
			read := dna.EncodeLossy(seq, 0)

			var kpos []int
			spec.EachKmer(read, func(pos int, id ID) {
				if want := Encode(read[pos : pos+spec.K]); id != want {
					t.Fatalf("spec %+v read len %d: EachKmer at %d rolled %v, scratch %v", spec, n, pos, id, want)
				}
				kpos = append(kpos, pos)
			})
			if want := spec.KmersPerRead(n); len(kpos) != want {
				t.Fatalf("spec %+v read len %d: EachKmer visited %d positions, want %d", spec, n, len(kpos), want)
			}
			for i, p := range kpos {
				if p != i {
					t.Fatalf("spec %+v: EachKmer position %d at index %d", spec, p, i)
				}
			}

			for _, stride := range []int{1, step, step + 1} {
				var tpos []int
				spec.EachTileStep(read, stride, func(pos int, id ID) {
					if want := Encode(read[pos : pos+tl]); id != want {
						t.Fatalf("spec %+v stride %d read len %d: tile at %d rolled %v, scratch %v",
							spec, stride, n, pos, id, want)
					}
					tpos = append(tpos, pos)
				})
				want := 0
				for p := 0; p+tl <= n; p += stride {
					want++
				}
				if len(tpos) != want {
					t.Fatalf("spec %+v stride %d read len %d: visited %d tiles, want %d", spec, stride, n, len(tpos), want)
				}
				for i, p := range tpos {
					if p != i*stride {
						t.Fatalf("spec %+v stride %d: tile position %d at index %d", spec, stride, p, i)
					}
				}
			}

			// AppendTiles must match the corrector-stride walk exactly and
			// leave an existing prefix untouched.
			var walk []ID
			spec.EachTile(read, func(_ int, id ID) { walk = append(walk, id) })
			sentinel := ID(0xDEAD)
			got := spec.AppendTiles(read, []ID{sentinel})
			if got[0] != sentinel {
				t.Fatalf("spec %+v: AppendTiles clobbered the dst prefix", spec)
			}
			if len(got)-1 != len(walk) {
				t.Fatalf("spec %+v read len %d: AppendTiles yielded %d ids, EachTile %d", spec, n, len(got)-1, len(walk))
			}
			for i, id := range walk {
				if got[i+1] != id {
					t.Fatalf("spec %+v: AppendTiles id %d is %v, EachTile rolled %v", spec, i, got[i+1], id)
				}
			}
		}
	}
}
