package core

import (
	"errors"
	"fmt"
	"sync"

	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// residentPlane is one rank's armed correct-phase machinery: the live
// router goroutine, the batch dispatcher, and the pre-phase counter
// snapshots. The batch driver arms it, works, and quiesces within one
// correctDriver call; the SpectrumService keeps it armed across many
// sessions and quiesces at Drain.
type residentPlane struct {
	disp       *lookupDispatcher
	rt         *msgplane.Router
	respErr    chan error
	routerExit chan struct{}
	wg         sync.WaitGroup
	msgs0      []int64
	bytes0     []int64
}

// armCorrect builds Step IV's resident machinery: the dispatcher and
// prefetch plane, the steal scheduler and recovery side channel when
// configured, the session caller and executor, and the router goroutine
// (the paper's communication thread) serving them all. From here the rank
// answers peers' lookups and session requests until quiesceCorrect (or a
// failure) tears it down.
func (ctx *rankCtx) armCorrect() *residentPlane {
	p := &residentPlane{
		respErr:    make(chan error, 1),
		routerExit: make(chan struct{}),
	}
	p.msgs0, p.bytes0 = ctx.e.Counters().PerDestSnapshot()
	p.disp = ctx.newDispatcher()
	if p.disp != nil {
		ctx.plane = newPrefetchPlane(ctx.np)
	}
	if ctx.opts.WorkSteal {
		ctx.steal = newStealSched(ctx.myReads, ctx.opts.Config.ChunkReads)
	}
	if ctx.rec != nil || ctx.opts.WorkSteal {
		// The recovery/steal side channel: replica pushes and steal requests
		// ride their own caller so they never contend with the lookup
		// dispatcher's window accounting.
		ctx.recCaller = msgplane.NewCaller(ctx.e, ctx.np, 0)
	}
	// The session layer: every correction — one-shot batch, streaming
	// chunks, or served client jobs — enters through a session at some
	// rank's executor. The caller's window is sized so the per-session
	// windows are the binding flow control, never the shared caller.
	ctx.sessCaller = msgplane.NewCaller(ctx.e, ctx.np, ctx.opts.sessionCallerWindow())
	ctx.sessions = newSessionExec(ctx, p.disp)
	rt := ctx.newResponder(p.disp)
	p.rt = rt
	if ctx.rec != nil {
		// From here the peer-down handler can fail the dead rank's calls
		// directly; deaths absorbed before this point are replayed now.
		ctx.rec.arm(p.disp, ctx.recCaller, rt, ctx.steal)
	}

	// The router routes its own failures through ctx.fail: the abort
	// broadcast poisons this rank's mailbox too, so a worker parked in a
	// direct Recv(tagResp) unblocks instead of waiting on a router that
	// died. With batching the dispatcher is poisoned first, which wakes
	// workers parked on batch futures or window slots the same way.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.routerExit)
		if err := rt.Run(); err != nil {
			if p.disp != nil {
				p.disp.fail(err)
			}
			if ctx.recCaller != nil {
				ctx.recCaller.Fail(err)
			}
			if ctx.steal != nil {
				ctx.steal.fail(err)
			}
			aerr := ctx.fail("correct", err)
			ctx.sessCaller.Fail(aerr)
			ctx.sessions.fail(aerr)
			p.respErr <- aerr
		}
	}()
	return p
}

// failBoth aborts the run from the worker side and joins the router
// (which the broadcast just unblocked) and the session executor before
// returning. When the worker only observed the teardown — its endpoint
// closed under it — the router's error is the root cause and wins.
func (p *residentPlane) failBoth(ctx *rankCtx, err error) error {
	aerr := ctx.fail("correct", err)
	ctx.sessCaller.Fail(aerr)
	ctx.sessions.fail(aerr)
	p.wg.Wait()
	ctx.sessions.join()
	select {
	case rerr := <-p.respErr:
		if errors.Is(aerr, transport.ErrClosed) && !errors.Is(rerr, transport.ErrClosed) {
			return rerr
		}
	default:
	}
	return aerr
}

// quiesceCorrect drives the clean end of the correct phase: every request
// this rank issued has been answered and every session it opened is
// closed, so announce done, keep serving peers (and recovery duties) until
// the coordinator's stop, then join the router and the session executor
// and record the phase's stats.
func (ctx *rankCtx) quiesceCorrect(p *residentPlane, res *reptile.Result) error {
	if err := p.rt.AnnounceDone(); err != nil {
		return p.failBoth(ctx, err)
	}
	if ctx.rec != nil {
		// Keep executing recovery duties (replica pushes, a dead rank's
		// estate) until the stop broadcast shuts the router down; the dead
		// rank's proxy done is what lets the coordinator converge.
		if err := ctx.drainRecovery(res, p.disp, p.rt, p.routerExit); err != nil {
			return p.failBoth(ctx, err)
		}
	}
	p.wg.Wait()
	ctx.sessions.stop()
	select {
	case err := <-p.respErr:
		return err
	default:
	}

	ctx.finishCorrectStats(p.disp, p.msgs0, p.bytes0)
	return nil
}

// correctDriver is Step IV's one-shot frame, built from the same arm/
// quiesce halves the resident service uses: arm the router and session
// layer, run the driver-specific work function on the worker side — the
// batch engine corrects its resident reads as one session chunk, the
// streaming engine loops chunks through one session — then drive the
// done/stop termination protocol: a rank keeps answering remote lookups
// until *every* worker has finished.
func (ctx *rankCtx) correctDriver(work func(disp *lookupDispatcher) (reptile.Result, error)) (reptile.Result, error) {
	p := ctx.armCorrect()
	if ctx.rec != nil {
		defer ctx.disarmRecovery()
	}
	res, werr := work(p.disp)
	if werr != nil {
		return res, p.failBoth(ctx, werr)
	}
	return res, ctx.quiesceCorrect(p, &res)
}

// correctOneShot is the batch engine's work function: its whole resident
// read set travels the session layer as a single session with one
// resident chunk, so the classic reptile-correct run and a served client
// job execute the identical code path (admission, session accounting,
// worker pool, steal scheduler) — the resident chunk corrected caller-runs
// on this very goroutine.
func (ctx *rankCtx) correctOneShot() (reptile.Result, error) {
	sess, err := ctx.openSession(ctx.rank, batchTenant)
	if err != nil {
		return reptile.Result{}, err
	}
	pend, err := sess.submitResident(ctx.myReads)
	if err != nil {
		// reptile-lint:allow errorflow the submit error aborts the run; a close failure on the failing path is secondary noise
		_ = sess.Close()
		return reptile.Result{}, err
	}
	_, res, werr := pend.Wait()
	cerr := sess.Close()
	if werr != nil {
		return res, werr
	}
	return res, cerr
}

// newResponder builds the rank's correct-phase router: the three request
// tags and the batch request resolve against the owned spectra, and batch
// responses route back to this rank's own dispatcher. The router owns the
// control plane (done/stop counting, abort poison observation) and
// validates tags and frame sizes against the registry, so these handlers
// are plain callbacks.
func (ctx *rankCtx) newResponder(disp *lookupDispatcher) *msgplane.Router {
	rt := msgplane.NewRouter(ctx.e)
	rt.Handle(tagKmerReq, ctx.serve)
	rt.Handle(tagTileReq, ctx.serve)
	rt.Handle(tagUniReq, ctx.serve)
	rt.Handle(tagBatchReq, ctx.serveBatch)
	if disp != nil {
		rt.Handle(tagBatchResp, disp.deliver)
	}
	// The session plane: open/chunk/close land at this rank's executor, and
	// every session answer routes back to the opener's caller by request id.
	rt.Handle(tagSessionOpen, ctx.sessions.handleOpen)
	rt.Handle(tagReadChunk, ctx.sessions.handleChunk)
	rt.Handle(tagSessionClose, ctx.sessions.handleClose)
	rt.Handle(tagCorrectedChunk, func(m transport.Message) error {
		reqID, status, body, err := decodeSessionResp(m.Data)
		if err != nil {
			return err
		}
		return ctx.sessCaller.Deliver(m.From, msgplane.Tag(m.Tag), reqID, &sessResp{status: status, body: body})
	})
	if ctx.recCaller != nil {
		rt.Handle(tagStealGrant, func(m transport.Message) error {
			reqID, chunk, rs, granted, err := decodeStealGrant(m.Data)
			if err != nil {
				return err
			}
			return ctx.recCaller.Deliver(m.From, msgplane.Tag(m.Tag), reqID, &stealGrantMsg{chunk: chunk, rs: rs, granted: granted})
		})
		rt.Handle(tagReplAck, func(m transport.Message) error {
			reqID, err := decodeReplAck(m.Data)
			if err != nil {
				return err
			}
			return ctx.recCaller.Deliver(m.From, msgplane.Tag(m.Tag), reqID, nil)
		})
	}
	if ctx.steal != nil {
		rt.Handle(tagStealReq, ctx.serveSteal)
		rt.Handle(tagStealReturn, ctx.serveStealReturn)
	}
	if ctx.rec != nil {
		rt.Handle(tagReplPush, ctx.serveReplPush)
	}
	return rt
}

// serveSteal answers a peer's steal request: grant the back chunk of the
// local queue if any remains, an empty refusal otherwise.
func (ctx *rankCtx) serveSteal(m transport.Message) error {
	reqID, err := decodeStealReq(m.Data)
	if err != nil {
		return err
	}
	var payload []byte
	if sp, ok := ctx.steal.grant(m.From); ok {
		payload = encodeStealGrant(reqID, uint32(sp.lo), ctx.steal.reads[sp.lo:sp.hi], true)
	} else {
		payload = encodeStealGrant(reqID, 0, nil, false)
	}
	return ctx.tolerateDeadPeer(msgplane.Send(ctx.e, m.From, tagStealGrant, payload))
}

// serveStealReturn writes a thief's corrected chunk back in place.
func (ctx *rankCtx) serveStealReturn(m transport.Message) error {
	chunk, rs, err := decodeStealReturn(m.Data)
	if err != nil {
		return err
	}
	return ctx.steal.accept(chunk, rs)
}

// serveReplPush imports a re-replicated shard (an exact slab image of a
// dead rank's frozen spectrum) pushed by the shard's surviving holder, and
// acknowledges it so the pusher can report R=2 restored.
func (ctx *rankCtx) serveReplPush(m transport.Message) error {
	reqID, owner, kind, slab, err := decodeReplPush(m.Data)
	if err != nil {
		return err
	}
	store, rest, err := spectrum.ImportPackedSlabs(slab)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes after rank %d's pushed replica", len(rest), owner)
	}
	ctx.rec.addReplica(owner, kind, store)
	return ctx.tolerateDeadPeer(msgplane.Send(ctx.e, m.From, tagReplAck, encodeReplAck(reqID)))
}

// newDispatcher builds the rank's batch dispatcher, or nil when lookup
// batching is off (the legacy one-at-a-time protocol stays in force).
func (ctx *rankCtx) newDispatcher() *lookupDispatcher {
	if ctx.opts.Heuristics.LookupBatch <= 0 {
		return nil
	}
	return newLookupDispatcher(ctx.e, ctx.np, ctx.opts.Heuristics.LookupWindow)
}

// newOracle builds a correction oracle over the given stats shard. Every
// worker gets its own oracle (the miss-filter scratch is worker-confined);
// the dispatcher, the prefetch plane, and the spectra are shared.
func (ctx *rankCtx) newOracle(st *stats.Rank, disp *lookupDispatcher, cacheMu *sync.RWMutex) *distOracle {
	batch := 0
	if disp != nil {
		batch = ctx.opts.Heuristics.LookupBatch
	}
	return &distOracle{
		e:         ctx.e,
		st:        st,
		rank:      ctx.rank,
		np:        ctx.np,
		h:         ctx.opts.Heuristics,
		ownKmer:   ctx.ownKmer,
		ownTile:   ctx.ownTile,
		replKmer:  ctx.replKmer,
		replTile:  ctx.replTile,
		groupKmer: ctx.groupKmer,
		groupTile: ctx.groupTile,
		readsKmer: ctx.readsKmer,
		readsTile: ctx.readsTile,
		cacheKmer: ctx.cacheKmer,
		cacheTile: ctx.cacheTile,
		groupSize: ctx.opts.Heuristics.PartialReplicationGroup,
		disp:      disp,
		batch:     batch,
		plane:     ctx.plane,
		cacheMu:   cacheMu,
		rec:       ctx.rec,
	}
}

// correctPool corrects myReads with Heuristics.Workers worker goroutines
// (the paper's plural "worker threads"; one when unset). Reads are
// partitioned into contiguous blocks and each is corrected in place exactly
// once against static spectra, so the corrected output is byte-identical
// for every worker count. Lookup counters accumulate into per-worker shards
// that are merged after the join, keeping the shared stats race-free.
func (ctx *rankCtx) correctPool(myReads []reads.Read, disp *lookupDispatcher) (reptile.Result, error) {
	nw := ctx.opts.Heuristics.Workers
	if nw < 1 {
		nw = 1
	}
	if nw == 1 {
		oracle := ctx.newOracle(&ctx.st, disp, nil)
		corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
		if err != nil {
			return reptile.Result{}, err
		}
		var res reptile.Result
		for i := range myReads {
			res.Add(corrector.CorrectRead(&myReads[i]))
			if oracle.err != nil {
				return res, oracle.err
			}
		}
		return res, nil
	}

	// The reads tables are shared across workers; only the CacheRemote
	// heuristic writes to them during correction, so only then do lookups
	// need the cache lock.
	var cacheMu *sync.RWMutex
	if ctx.opts.Heuristics.CacheRemote {
		cacheMu = &sync.RWMutex{}
	}
	shards := make([]stats.Rank, nw)
	results := make([]reptile.Result, nw)
	errs := make([]error, nw)
	var pool sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := len(myReads)*w/nw, len(myReads)*(w+1)/nw
		pool.Add(1)
		go func(w, lo, hi int) {
			defer pool.Done()
			oracle := ctx.newOracle(&shards[w], disp, cacheMu)
			corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
			if err != nil {
				errs[w] = err
				return
			}
			for i := lo; i < hi; i++ {
				results[w].Add(corrector.CorrectRead(&myReads[i]))
				if oracle.err != nil {
					errs[w] = oracle.err
					return
				}
			}
		}(w, lo, hi)
	}
	// A worker that fails holds a transport error, which the router sees
	// on the same endpoint: its failure path poisons the dispatcher, so no
	// sibling stays parked on a batch future and the join cannot hang.
	pool.Wait()

	var res reptile.Result
	for w := 0; w < nw; w++ {
		res.Add(results[w])
		ctx.st.AddLookups(&shards[w])
	}
	// Workers fail together when a peer dies: the one whose send drew the
	// fault holds the root cause, its siblings wake with the derived
	// teardown error (ErrClosed) from the poisoned dispatcher. Surface the
	// root cause regardless of worker index.
	var werr error
	for w := 0; w < nw; w++ {
		if errs[w] == nil {
			continue
		}
		if werr == nil || (errors.Is(werr, transport.ErrClosed) && !errors.Is(errs[w], transport.ErrClosed)) {
			werr = errs[w]
		}
	}
	return res, werr
}

// finishCorrectStats records the correction phase's communication and
// memory counters after a clean termination: per-destination request
// traffic for the machine model (responses and control messages excluded:
// we count the requester's per-dest sends minus the pre-phase snapshot, and
// the model accounts responses on the requester's round trip already), plus
// the batching totals.
func (ctx *rankCtx) finishCorrectStats(disp *lookupDispatcher, msgs0, bytes0 []int64) {
	if disp != nil {
		b, n := disp.counters()
		ctx.st.BatchesSent += b
		ctx.st.BatchedLookups += n
	}
	if ctx.steal != nil {
		ctx.st.ChunksLent = ctx.steal.chunksLent()
	}
	if ctx.sessions != nil {
		ctx.st.SessionsOpened, ctx.st.SessionsCompleted,
			ctx.st.SessionsRejected, ctx.st.SessionReads = ctx.sessions.counters()
	}
	nw := ctx.opts.Heuristics.Workers
	if nw < 1 {
		nw = 1
	}
	ctx.st.WorkerCount = int64(nw)
	msgs1, bytes1 := ctx.e.Counters().PerDestSnapshot()
	ctx.st.MsgsTo = make([]int64, ctx.np)
	ctx.st.BytesTo = make([]int64, ctx.np)
	for d := range msgs1 {
		ctx.st.MsgsTo[d] = msgs1[d] - msgs0[d]
		ctx.st.BytesTo[d] = bytes1[d] - bytes0[d]
	}
	ctx.st.MemAfterCorrect = ctx.currentMem()
	ctx.observeMem() // the remote-lookup cache may have grown
}

// serve answers one count request from the owned spectra. In the
// non-universal ("probe") mode the kind is implied by the tag; in universal
// mode it is read from the payload — the structural difference the paper's
// universal heuristic describes. Frame sizes were already validated by the
// router against the registry.
func (ctx *rankCtx) serve(m transport.Message) error {
	kind, id, err := decodeReq(msgplane.Tag(m.Tag), m.Data)
	if err != nil {
		return err
	}
	store, err := ctx.lookupStore(kind, id)
	if err != nil {
		return err
	}
	cnt, ok := store.Count(id)
	ctx.st.RequestsServed++
	return ctx.tolerateDeadPeer(msgplane.Send(ctx.e, m.From, tagResp, encodeResp(cnt, ok)))
}

// serveBatch answers one batch request: every id is resolved against the
// owned spectra and the answers travel back in one frame, positionally,
// echoing the request id so the requester's dispatcher can match it.
func (ctx *rankCtx) serveBatch(m transport.Message) error {
	reqID, kind, ids, err := decodeBatchReq(m.Data)
	if err != nil {
		return err
	}
	answers := make([]batchAnswer, len(ids))
	for i := range ids {
		store, err := ctx.lookupStore(kind, ids[i])
		if err != nil {
			return err
		}
		cnt, ok := store.Count(ids[i])
		answers[i] = batchAnswer{Count: cnt, Exists: ok}
	}
	ctx.st.RequestsServed += int64(len(ids))
	return ctx.tolerateDeadPeer(msgplane.Send(ctx.e, m.From, tagBatchResp, encodeBatchResp(reqID, answers)))
}

// ownedStore maps a request kind to this rank's frozen owned spectrum,
// served through the Lookuper interface — the responder reads the same
// immutable PackedStores the local lookup chain does.
func (ctx *rankCtx) ownedStore(kind byte) (spectrum.Lookuper, error) {
	switch kind {
	case kindKmer:
		return ctx.ownKmer, nil
	case kindTile:
		return ctx.ownTile, nil
	}
	return nil, fmt.Errorf("core: request kind %d", kind)
}

// ProjectOptsFor returns the machine-model options matching this run's
// heuristics and wire sizes.
func ProjectOptsFor(h Heuristics) (universal bool, reqBytes, respBytes int) {
	reqBytes = ReqBytesTagged
	if h.Universal {
		reqBytes = ReqBytesUniversal
	}
	return h.Universal, reqBytes, RespBytes
}
