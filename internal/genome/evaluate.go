package genome

import (
	"fmt"

	"reptile/internal/reads"
)

// Accuracy aggregates per-base correction outcomes against ground truth,
// using the standard error-correction bookkeeping (Yang et al. 2013):
//
//	TP — an injected error restored to the true base
//	FP — a correct base overwritten, or an error "corrected" to a wrong base
//	FN — an injected error left (or still) wrong
type Accuracy struct {
	TP, FP, FN int64
	// ErrorsCorrected counts reads-level corrections applied (TP+FP), the
	// quantity Fig 4 reports per rank.
	ErrorsCorrected int64
}

// Gain is (TP-FP)/(TP+FN), the headline error-correction metric; 1.0 means
// every error fixed with no collateral damage.
func (a Accuracy) Gain() float64 {
	if a.TP+a.FN == 0 {
		return 0
	}
	return float64(a.TP-a.FP) / float64(a.TP+a.FN)
}

// Sensitivity is TP/(TP+FN).
func (a Accuracy) Sensitivity() float64 {
	if a.TP+a.FN == 0 {
		return 0
	}
	return float64(a.TP) / float64(a.TP+a.FN)
}

// Precision is TP/(TP+FP).
func (a Accuracy) Precision() float64 {
	if a.TP+a.FP == 0 {
		return 0
	}
	return float64(a.TP) / float64(a.TP+a.FP)
}

// Add accumulates b into a.
func (a *Accuracy) Add(b Accuracy) {
	a.TP += b.TP
	a.FP += b.FP
	a.FN += b.FN
	a.ErrorsCorrected += b.ErrorsCorrected
}

func (a Accuracy) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d gain=%.4f sens=%.4f prec=%.4f",
		a.TP, a.FP, a.FN, a.Gain(), a.Sensitivity(), a.Precision())
}

// Evaluate scores corrected reads against the dataset's ground truth.
// corrected may be any subset of the dataset's reads in any order (ranks
// emit their shards independently); each is matched by sequence number.
func (d *Dataset) Evaluate(corrected []reads.Read) (Accuracy, error) {
	var acc Accuracy
	for ci := range corrected {
		cr := &corrected[ci]
		idx := cr.Seq - 1
		if idx < 0 || idx >= int64(len(d.Reads)) {
			return Accuracy{}, fmt.Errorf("genome: corrected read has unknown sequence number %d", cr.Seq)
		}
		orig := &d.Reads[idx]
		if len(cr.Base) != len(orig.Base) {
			return Accuracy{}, fmt.Errorf("genome: corrected read %d length %d != original %d", cr.Seq, len(cr.Base), len(orig.Base))
		}
		errAt := make(map[int]ErrorSite, len(d.Truth[idx]))
		for _, e := range d.Truth[idx] {
			errAt[e.Pos] = e
		}
		for j := range cr.Base {
			site, wasErr := errAt[j]
			changed := cr.Base[j] != orig.Base[j]
			if changed {
				acc.ErrorsCorrected++
			}
			switch {
			case wasErr && changed && cr.Base[j] == site.True:
				acc.TP++
			case wasErr: // unchanged, or changed to another wrong base
				acc.FN++
				if changed {
					acc.FP++
				}
			case changed: // damaged a correct base
				acc.FP++
			}
		}
	}
	return acc, nil
}
