package core

import (
	"encoding/binary"
	"fmt"

	"reptile/internal/kmer"
)

// Application tags (non-negative; collectives use negative tag space).
const (
	tagKmerReq = 1 // request payload: id (8 bytes); kind implied by tag
	tagTileReq = 2
	tagUniReq  = 3 // universal mode: kind byte + id (9 bytes)
	tagResp    = 4 // exists byte + count (5 bytes)
	tagDone    = 5 // worker finished its shard (sent to rank 0)
	tagStop    = 6 // rank 0: all workers done, responders shut down
)

// Request kinds.
const (
	kindKmer byte = 0
	kindTile byte = 1
)

// Wire payload sizes, used by the machine-model projection.
const (
	ReqBytesTagged    = 8 // id only; kind travels in the tag
	ReqBytesUniversal = 9 // kind + id in the payload
	RespBytes         = 5 // exists + count
)

// encodeReq builds a request payload. In universal mode the kind rides in
// the payload; otherwise it is implied by the tag and only the ID is sent.
func encodeReq(universal bool, kind byte, id kmer.ID) (tag int, payload []byte) {
	if universal {
		buf := make([]byte, 9)
		buf[0] = kind
		binary.LittleEndian.PutUint64(buf[1:], uint64(id))
		return tagUniReq, buf
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(id))
	if kind == kindKmer {
		return tagKmerReq, buf
	}
	return tagTileReq, buf
}

// decodeReq parses a request received with the given tag.
func decodeReq(tag int, payload []byte) (kind byte, id kmer.ID, err error) {
	switch tag {
	case tagUniReq:
		if len(payload) != 9 {
			return 0, 0, fmt.Errorf("core: universal request of %d bytes", len(payload))
		}
		return payload[0], kmer.ID(binary.LittleEndian.Uint64(payload[1:])), nil
	case tagKmerReq, tagTileReq:
		if len(payload) != 8 {
			return 0, 0, fmt.Errorf("core: tagged request of %d bytes", len(payload))
		}
		kind = kindKmer
		if tag == tagTileReq {
			kind = kindTile
		}
		return kind, kmer.ID(binary.LittleEndian.Uint64(payload)), nil
	default:
		return 0, 0, fmt.Errorf("core: unexpected request tag %d", tag)
	}
}

// encodeResp builds a response payload: the count, or "does not exist"
// (the paper's -1 convention; absence at the owner is definitive).
func encodeResp(count uint32, exists bool) []byte {
	buf := make([]byte, RespBytes)
	if exists {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], count)
	return buf
}

// decodeResp parses a response payload.
func decodeResp(payload []byte) (count uint32, exists bool, err error) {
	if len(payload) != RespBytes {
		return 0, false, fmt.Errorf("core: response of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[1:]), payload[0] == 1, nil
}
