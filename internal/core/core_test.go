package core

import (
	"testing"

	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/stats"
)

// statsRank shortens the aggregation callbacks below.
type statsRank = stats.Rank

// testDataset builds a small simulated dataset with a matching config.
func testDataset(t testing.TB, nReads int, seed int64) (*genome.Dataset, Options) {
	t.Helper()
	g := genome.NewGenome(8000, seed)
	ds := genome.Simulate("core-test", g, nReads, genome.DefaultProfile(70), seed+1)
	cfg := reptile.ForCoverage(ds.Coverage())
	cfg.Spec = kmer.Spec{K: 10, Overlap: 4}
	opts := Options{Config: cfg, LoadBalance: true}
	return ds, opts
}

// runAndEvaluate runs the engine and scores against ground truth.
func runAndEvaluate(t *testing.T, ds *genome.Dataset, np int, opts Options) (*Output, genome.Accuracy) {
	t.Helper()
	out, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ds.Evaluate(out.Corrected())
	if err != nil {
		t.Fatal(err)
	}
	return out, acc
}

func TestSingleRankMatchesSequential(t *testing.T) {
	ds, opts := testDataset(t, 3000, 100)
	seq, seqRes, err := reptile.CorrectDataset(ds.Reads, opts.Config)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(&MemorySource{Reads: ds.Reads}, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Corrected()
	if len(got) != len(seq) {
		t.Fatalf("got %d reads, sequential %d", len(got), len(seq))
	}
	for i := range got {
		if got[i].Seq != seq[i].Seq {
			t.Fatalf("order mismatch at %d", i)
		}
		if dna.DecodeString(got[i].Base) != dna.DecodeString(seq[i].Base) {
			t.Fatalf("read %d differs from sequential corrector", got[i].Seq)
		}
	}
	if out.Result.BasesCorrected != seqRes.BasesCorrected {
		t.Errorf("bases corrected %d, sequential %d", out.Result.BasesCorrected, seqRes.BasesCorrected)
	}
}

func TestDistributedMatchesSequentialAcrossRankCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 3000, 200)
	seq, _, err := reptile.CorrectDataset(ds.Reads, opts.Config)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{2, 4, 8} {
		out, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		got := out.Corrected()
		if len(got) != len(seq) {
			t.Fatalf("np=%d: %d reads, want %d", np, len(got), len(seq))
		}
		diff := 0
		for i := range got {
			if dna.DecodeString(got[i].Base) != dna.DecodeString(seq[i].Base) {
				diff++
			}
		}
		// The distributed spectra are identical to the sequential ones (the
		// merge is exact), so corrections must agree exactly.
		if diff != 0 {
			t.Errorf("np=%d: %d reads differ from sequential correction", np, diff)
		}
	}
}

func TestHeuristicModesAllCorrectEquivalently(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 2000, 300)
	base, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Result.BasesCorrected
	if want == 0 {
		t.Fatal("base mode corrected nothing; test is vacuous")
	}
	modes := map[string]Heuristics{
		"universal":   {Universal: true},
		"readkmers":   {RetainReadKmers: true},
		"cache":       {RetainReadKmers: true, CacheRemote: true},
		"replkmer":    {ReplicateKmers: true},
		"repltile":    {ReplicateTiles: true},
		"replboth":    {ReplicateKmers: true, ReplicateTiles: true},
		"batch":       {BatchReads: true},
		"partialrepl": {PartialReplicationGroup: 2},
		"batchretain": {BatchReads: true, RetainReadKmers: true},
		"kitchensink": {Universal: true, RetainReadKmers: true, CacheRemote: true, BatchReads: true},
		"repl-sorted": {ReplicateKmers: true, ReplicateTiles: true, ReplicatedLayout: LayoutSorted},
		"repl-cache":  {ReplicateKmers: true, ReplicateTiles: true, ReplicatedLayout: LayoutCacheAware},
	}
	for name, h := range modes {
		o := opts
		o.Heuristics = h
		out, err := Run(&MemorySource{Reads: ds.Reads}, 4, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Result.BasesCorrected != want {
			t.Errorf("%s: corrected %d bases, base mode %d", name, out.Result.BasesCorrected, want)
		}
		got := out.Corrected()
		if len(got) != len(ds.Reads) {
			t.Errorf("%s: %d reads out, %d in", name, len(got), len(ds.Reads))
		}
	}
}

func TestHeuristicValidation(t *testing.T) {
	if (Heuristics{CacheRemote: true}).Validate() == nil {
		t.Error("CacheRemote without RetainReadKmers accepted")
	}
	if (Heuristics{PartialReplicationGroup: -1}).Validate() == nil {
		t.Error("negative group accepted")
	}
	o := DefaultOptions()
	o.Config.KmerThreshold = 0
	if o.Validate() == nil {
		t.Error("invalid config accepted")
	}
	if (Heuristics{ReplicatedLayout: LayoutSorted}).Validate() == nil {
		t.Error("non-hash layout without replication accepted")
	}
	if (Heuristics{ReplicatedLayout: Layout(9), ReplicateKmers: true}).Validate() == nil {
		t.Error("unknown layout accepted")
	}
	for l, want := range map[Layout]string{LayoutHash: "hash", LayoutSorted: "sorted", LayoutCacheAware: "cacheaware", Layout(9): "unknown"} {
		if l.String() != want {
			t.Errorf("Layout(%d).String() = %s", l, l.String())
		}
	}
}

func TestReplicationEliminatesRemoteTraffic(t *testing.T) {
	ds, opts := testDataset(t, 1500, 400)
	opts.Heuristics = Heuristics{ReplicateKmers: true, ReplicateTiles: true}
	out, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Run.Ranks {
		if r.TotalRemoteLookups() != 0 {
			t.Errorf("rank %d made %d remote lookups with full replication", r.Rank, r.TotalRemoteLookups())
		}
		if r.RequestsServed != 0 {
			t.Errorf("rank %d served %d requests with full replication", r.Rank, r.RequestsServed)
		}
	}
}

func TestPartialReplicationReducesRemoteTraffic(t *testing.T) {
	ds, opts := testDataset(t, 1500, 500)
	base, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Heuristics = Heuristics{PartialReplicationGroup: 4}
	part, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseRemote := base.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	partRemote := part.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	if partRemote >= baseRemote {
		t.Errorf("partial replication did not reduce remote lookups: %d vs %d", partRemote, baseRemote)
	}
	// And the post-construction footprint grows (Fig 5's metric).
	baseMem := base.Run.Max(func(r *statsRank) int64 { return r.MemAfterConstruct })
	partMem := part.Run.Max(func(r *statsRank) int64 { return r.MemAfterConstruct })
	if partMem <= baseMem {
		t.Errorf("partial replication memory %d not above base %d", partMem, baseMem)
	}
}

func TestCacheRemoteReducesRepeatLookups(t *testing.T) {
	ds, opts := testDataset(t, 1500, 600)
	opts.Heuristics = Heuristics{RetainReadKmers: true}
	noCache, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Heuristics = Heuristics{RetainReadKmers: true, CacheRemote: true}
	cache, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := cache.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	m := noCache.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	if n > m {
		t.Errorf("cache increased remote lookups: %d vs %d", n, m)
	}
	hits := cache.Run.Sum(func(r *statsRank) int64 { return r.CacheHits })
	if hits == 0 {
		t.Error("cache recorded no hits")
	}
}

func TestBatchReadsBoundsReadsTables(t *testing.T) {
	ds, opts := testDataset(t, 2000, 700)
	opts.Config.ChunkReads = 100
	unbatched, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Heuristics = Heuristics{BatchReads: true}
	batched, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	u := unbatched.Run.Max(func(r *statsRank) int64 { return r.ReadsKmers })
	b := batched.Run.Max(func(r *statsRank) int64 { return r.ReadsKmers })
	if b >= u {
		t.Errorf("batch mode reads table peak %d not below unbatched %d", b, u)
	}
	if batched.Result.BasesCorrected != unbatched.Result.BasesCorrected {
		t.Errorf("batch mode changed corrections: %d vs %d", batched.Result.BasesCorrected, unbatched.Result.BasesCorrected)
	}
}

func TestSpectrumDistributionUniform(t *testing.T) {
	ds, opts := testDataset(t, 4000, 800)
	out, err := Run(&MemorySource{Reads: ds.Reads}, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	kSpread := out.Run.SpreadPct(func(r *statsRank) int64 { return r.OwnedKmers })
	tSpread := out.Run.SpreadPct(func(r *statsRank) int64 { return r.OwnedTiles })
	// Paper Fig 3: <1% k-mer and <2% tile spread at 128 ranks on the full
	// dataset. Our scaled dataset has only a few hundred entries per rank,
	// so Poisson noise alone produces a ~4-sigma spread near 20%; rough
	// uniformity is still distinguishable from a skewed hash, which would
	// show 2x+ imbalances.
	if kSpread > 30 {
		t.Errorf("k-mer spread %.1f%% too high", kSpread)
	}
	if tSpread > 30 {
		t.Errorf("tile spread %.1f%% too high", tSpread)
	}
}

func TestLoadBalanceRedistributesErrorDenseRegions(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	g := genome.NewGenome(8000, 900)
	ds := genome.Simulate("lb", g, 4000, genome.LocalizedProfile(70), 901)
	cfg := reptile.ForCoverage(ds.Coverage())
	cfg.Spec = kmer.Spec{K: 10, Overlap: 4}

	imb, err := Run(&MemorySource{Reads: ds.Reads}, 8, Options{Config: cfg, LoadBalance: false})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Run(&MemorySource{Reads: ds.Reads}, 8, Options{Config: cfg, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	corrected := func(r *statsRank) int64 { return r.BasesCorrected }
	imbSpread := imb.Run.SpreadPct(corrected)
	balSpread := bal.Run.SpreadPct(corrected)
	if balSpread >= imbSpread {
		t.Errorf("balancing did not narrow per-rank corrections: %.1f%% -> %.1f%%", imbSpread, balSpread)
	}
	if bal.Result.BasesCorrected == 0 {
		t.Error("balanced run corrected nothing")
	}
	// Reads must be conserved under redistribution.
	if got := len(bal.Corrected()); got != len(ds.Reads) {
		t.Errorf("balanced run returned %d reads, want %d", got, len(ds.Reads))
	}
	moved := bal.Run.Sum(func(r *statsRank) int64 { return r.ReadsExchanged })
	if moved == 0 {
		t.Error("no reads were exchanged by the balancer")
	}
}

func TestAccuracyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 6000, 1000)
	_, acc := runAndEvaluate(t, ds, 8, opts)
	if acc.Gain() < 0.5 {
		t.Errorf("distributed gain %.3f below 0.5 (%v)", acc.Gain(), acc)
	}
	if acc.FP > acc.TP/4 {
		t.Errorf("too many false positives: %v", acc)
	}
}

func TestRemoteMissesTracked(t *testing.T) {
	ds, opts := testDataset(t, 1500, 1100)
	out, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	misses := out.Run.Sum(func(r *statsRank) int64 { return r.RemoteMisses })
	remote := out.Run.Sum(func(r *statsRank) int64 { return r.TotalRemoteLookups() })
	if remote == 0 {
		t.Fatal("no remote lookups at np=4; test expects distributed traffic")
	}
	if misses == 0 {
		t.Error("no remote misses recorded; candidate tiles should often be absent")
	}
	if misses > remote {
		t.Errorf("misses %d exceed remote lookups %d", misses, remote)
	}
}

func TestAutoThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	// Deep coverage, visible error tail: the valley rule should land near
	// the hand-tuned threshold and correct comparably.
	g := genome.NewGenome(8000, 1400)
	ds := genome.Simulate("auto", g, 8000, genome.DefaultProfile(70), 1401) // ~70x
	cfg := reptile.ForCoverage(ds.Coverage())
	cfg.Spec = kmer.Spec{K: 10, Overlap: 4}

	manual, err := Run(&MemorySource{Reads: ds.Reads}, 4, Options{Config: cfg, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	// Auto mode starts from deliberately wrong fixed thresholds.
	badCfg := cfg
	badCfg.KmerThreshold = 50
	badCfg.TileThreshold = 50
	auto, err := Run(&MemorySource{Reads: ds.Reads}, 4, Options{Config: badCfg, LoadBalance: true, AutoThresholds: true})
	if err != nil {
		t.Fatal(err)
	}
	mAcc, err := ds.Evaluate(manual.Corrected())
	if err != nil {
		t.Fatal(err)
	}
	aAcc, err := ds.Evaluate(auto.Corrected())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("manual: %v", mAcc)
	t.Logf("auto:   %v", aAcc)
	if aAcc.Gain() < mAcc.Gain()-0.1 {
		t.Errorf("auto thresholds gain %.3f far below manual %.3f", aAcc.Gain(), mAcc.Gain())
	}
	// Spectra must agree across ranks (same thresholds everywhere): the
	// owned spectra partition cleanly, so total solid k-mers is consistent
	// and nonzero.
	if auto.Run.Sum(func(r *statsRank) int64 { return r.OwnedKmers }) == 0 {
		t.Error("auto thresholds pruned everything")
	}
}

func TestTileTrafficDominatesAndMostlyMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	// Paper Section IV: "the majority of the communication time is spent in
	// communication of tiles, especially tiles which are not part of the
	// tile spectrum (non-existent on any rank)". With tiles extracted at
	// every offset the tile spectrum outnumbers the k-mer spectrum, and
	// candidate probes are mostly for absent tiles.
	g := genome.NewGenome(8000, 1300)
	p := genome.DefaultProfile(70)
	p.ErrorBoost = 2 // enough errors that candidate probing is visible
	ds := genome.Simulate("traffic", g, 4000, p, 1301)
	cfg := reptile.ForCoverage(ds.Coverage())
	cfg.Spec = kmer.Spec{K: 10, Overlap: 4}
	out, err := Run(&MemorySource{Reads: ds.Reads}, 8, Options{Config: cfg, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	tileRemote := out.Run.Sum(func(r *statsRank) int64 { return r.TileLookupsRemote })
	kmerRemote := out.Run.Sum(func(r *statsRank) int64 { return r.KmerLookupsRemote })
	misses := out.Run.Sum(func(r *statsRank) int64 { return r.RemoteMisses })
	if tileRemote <= kmerRemote {
		t.Errorf("tile remote lookups (%d) do not dominate k-mer remote lookups (%d)", tileRemote, kmerRemote)
	}
	if misses*2 < tileRemote {
		t.Errorf("non-existent lookups (%d) are not the bulk of tile traffic (%d)", misses, tileRemote)
	}
}

func TestRunValidation(t *testing.T) {
	ds, opts := testDataset(t, 10, 1200)
	if _, err := Run(&MemorySource{Reads: ds.Reads}, 0, opts); err == nil {
		t.Error("np=0 accepted")
	}
	bad := opts
	bad.Heuristics.CacheRemote = true
	if _, err := Run(&MemorySource{Reads: ds.Reads}, 2, bad); err == nil {
		t.Error("invalid heuristics accepted")
	}
}

func TestMemorySourceSharding(t *testing.T) {
	rs := make([]reads.Read, 10)
	for i := range rs {
		rs[i] = reads.Read{Seq: int64(i + 1), Base: dna.MustEncode("ACGT"), Qual: []byte{30, 30, 30, 30}}
	}
	src := &MemorySource{Reads: rs}
	total := 0
	for rank := 0; rank < 3; rank++ {
		br, err := src.Open(rank, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		for {
			b, err := br.NextBatch()
			if err != nil {
				break
			}
			total += len(b)
		}
		br.Close()
	}
	if total != 10 {
		t.Errorf("shards total %d reads", total)
	}
	if _, err := src.Open(3, 3, 4); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestFrozenSpectraMemoryAccounting: after construction the owned spectra
// are frozen into packed slabs, and OwnedMemBytes reports their exact
// measured footprint, bounded by the packed layout's worst case instead of
// the mutable tables' conservative map estimate.
func TestFrozenSpectraMemoryAccounting(t *testing.T) {
	ds, opts := testDataset(t, 2000, 9100)
	out, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Run.Ranks {
		entries := r.OwnedKmers + r.OwnedTiles
		if entries == 0 {
			t.Fatalf("rank owns no spectrum entries")
		}
		if r.OwnedMemBytes <= 0 {
			t.Errorf("OwnedMemBytes %d, want > 0", r.OwnedMemBytes)
		}
		// Packed worst case: load just above 0.5 of the max → 12/0.4 = 30
		// bytes per entry, plus the two slab headers.
		if worst := entries*30 + 2*64; r.OwnedMemBytes > worst {
			t.Errorf("packed OwnedMemBytes %d above packed worst case %d for %d entries",
				r.OwnedMemBytes, worst, entries)
		}
		// The packed stores are what MemAfterConstruct counts (plus any
		// retained tables, none in base mode), so it must cover them.
		if r.MemAfterConstruct < r.OwnedMemBytes {
			t.Errorf("MemAfterConstruct %d below OwnedMemBytes %d", r.MemAfterConstruct, r.OwnedMemBytes)
		}
	}
}
