package bloom

import (
	"math/rand"
	"testing"

	"reptile/internal/kmer"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	rng := rand.New(rand.NewSource(1))
	ids := make([]kmer.ID, 10000)
	for i := range ids {
		ids[i] = kmer.ID(rng.Uint64())
		f.Add(ids[i])
	}
	for _, id := range ids {
		if !f.Contains(id) {
			t.Fatalf("false negative for %v", id)
		}
	}
	if f.Added() != len(ids) {
		t.Errorf("Added = %d", f.Added())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 50000
	f := New(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	seen := make(map[kmer.ID]bool, n)
	for len(seen) < n {
		id := kmer.ID(rng.Uint64())
		seen[id] = true
		f.Add(id)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		id := kmer.ID(rng.Uint64())
		if seen[id] {
			continue
		}
		if f.Contains(id) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f exceeds 5%% (target 1%%)", rate)
	}
}

func TestAddReportsRepeat(t *testing.T) {
	f := New(1000, 0.01)
	if f.Add(42) {
		t.Error("first Add reported already-present")
	}
	if !f.Add(42) {
		t.Error("second Add did not report already-present")
	}
}

func TestSingletonFiltering(t *testing.T) {
	// The pruning use case: only IDs seen >= 2 times should pass the filter
	// gate into the exact table (modulo false positives).
	f := New(10000, 0.01)
	exact := map[kmer.ID]int{}
	rng := rand.New(rand.NewSource(3))
	repeated := make([]kmer.ID, 100)
	for i := range repeated {
		repeated[i] = kmer.ID(rng.Uint64())
	}
	stream := make([]kmer.ID, 0, 10200)
	for _, id := range repeated {
		stream = append(stream, id, id) // each repeated twice
	}
	for i := 0; i < 10000; i++ {
		stream = append(stream, kmer.ID(rng.Uint64())) // singletons
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, id := range stream {
		if f.Add(id) {
			exact[id]++
		}
	}
	for _, id := range repeated {
		if exact[id] == 0 {
			t.Fatalf("repeated id %v missed the exact table", id)
		}
	}
	// The exact table must be far smaller than the stream's distinct count.
	if len(exact) > 1000 {
		t.Errorf("exact table has %d entries; bloom gate ineffective", len(exact))
	}
}

func TestReset(t *testing.T) {
	f := New(100, 0.01)
	f.Add(7)
	f.Reset()
	if f.Contains(7) {
		t.Error("Contains(7) true after Reset")
	}
	if f.Added() != 0 {
		t.Error("Added nonzero after Reset")
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(100, 0), New(100, 1.5)} {
		f.Add(1)
		if !f.Contains(1) {
			t.Error("degenerate filter lost an element")
		}
	}
}

func TestMemBytes(t *testing.T) {
	small := New(100, 0.01)
	big := New(1000000, 0.01)
	if big.MemBytes() <= small.MemBytes() {
		t.Errorf("MemBytes not monotone: %d <= %d", big.MemBytes(), small.MemBytes())
	}
	if s := big.String(); s == "" {
		t.Error("empty String()")
	}
}
