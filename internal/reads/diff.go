package reads

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"reptile/internal/dna"
)

// Correction is one substitution the corrector applied, in the style of the
// original Reptile's output: which read, which position, what changed.
type Correction struct {
	Seq      int64
	Pos      int
	From, To dna.Base
}

// Diff compares original and corrected read sets (matched by sequence
// number) and returns every substitution, sorted by (Seq, Pos). Reads
// missing from either side are ignored; length mismatches are an error.
func Diff(orig, corrected []Read) ([]Correction, error) {
	bySeq := make(map[int64]*Read, len(orig))
	for i := range orig {
		bySeq[orig[i].Seq] = &orig[i]
	}
	var out []Correction
	for i := range corrected {
		c := &corrected[i]
		o, ok := bySeq[c.Seq]
		if !ok {
			continue
		}
		if len(o.Base) != len(c.Base) {
			return nil, fmt.Errorf("reads: read %d length %d vs %d", c.Seq, len(o.Base), len(c.Base))
		}
		for j := range c.Base {
			if c.Base[j] != o.Base[j] {
				out = append(out, Correction{Seq: c.Seq, Pos: j, From: o.Base[j], To: c.Base[j]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Pos < out[j].Pos
	})
	return out, nil
}

// WriteCorrections emits corrections as tab-separated "seq pos from to"
// lines, one per substitution.
func WriteCorrections(w io.Writer, cs []Correction) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%s\n", c.Seq, c.Pos, c.From, c.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}
