package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/transport"
)

// Application tags (non-negative; collectives use negative tag space).
// Tags 5 and 6 are the message plane's done/stop control tags
// (msgplane.TagDone/TagStop), owned by the router.
const (
	tagKmerReq msgplane.Tag = 1 // request payload: id (8 bytes); kind implied by tag
	tagTileReq msgplane.Tag = 2
	tagUniReq  msgplane.Tag = 3 // universal mode: kind byte + id (9 bytes)
	tagResp    msgplane.Tag = 4 // exists byte + count (5 bytes)

	// Batched-lookup frames (software message aggregation, the diBELLA-style
	// alternative to the one-id-per-message protocol above). Requests carry a
	// request id so responses from several in-flight batches — possibly from
	// several worker threads — can interleave and still be matched.
	tagBatchReq  msgplane.Tag = 7 // reqID u32 | n u16 | kind u8 | n × varint(zigzag id delta)
	tagBatchResp msgplane.Tag = 8 // reqID u32 | n u16 | n × varint(count<<1|exists)

	// Recovery and work-stealing frames. Steal requests/grants implement
	// correct-phase work stealing (an idle rank pulls read chunks from a
	// straggler); the return frame carries the corrected chunk home. The
	// replica push restores R=2 redundancy after a rank loss: the surviving
	// holder streams the lost shard's packed slabs to a new successor.
	tagStealReq    msgplane.Tag = 9  // reqID u32
	tagStealGrant  msgplane.Tag = 10 // reqID u32 | granted u8 | [chunk u32 | reads batch]
	tagStealReturn msgplane.Tag = 11 // chunk u32 | corrected reads batch (one-way)
	tagReplPush    msgplane.Tag = 12 // reqID u32 | owner u32 | kind u8 | slab image
	tagReplAck     msgplane.Tag = 13 // reqID u32
)

// init registers the correction protocol with the message-plane registry:
// name, direction, and payload-size bounds per tag. The router validates
// inbound frames against these bounds before any handler runs, and every
// ProtocolError/abort message prints the registered names.
func init() {
	msgplane.Register(
		msgplane.Spec{Tag: tagKmerReq, Name: "kmerReq", Dir: msgplane.DirRequest,
			MinSize: ReqBytesTagged, MaxSize: ReqBytesTagged},
		msgplane.Spec{Tag: tagTileReq, Name: "tileReq", Dir: msgplane.DirRequest,
			MinSize: ReqBytesTagged, MaxSize: ReqBytesTagged},
		msgplane.Spec{Tag: tagUniReq, Name: "uniReq", Dir: msgplane.DirRequest,
			MinSize: ReqBytesUniversal, MaxSize: ReqBytesUniversal},
		// The legacy response is Direct: the requesting worker blocks in
		// msgplane.Recv for it, so the router must leave it in the mailbox.
		msgplane.Spec{Tag: tagResp, Name: "resp", Dir: msgplane.DirResponse,
			MinSize: RespBytes, MaxSize: RespBytes, Direct: true},
		msgplane.Spec{Tag: tagBatchReq, Name: "batchReq", Dir: msgplane.DirRequest,
			MinSize: batchReqHdrBytes, MaxSize: batchReqHdrBytes + maxBatchEntries*maxReqEntry},
		msgplane.Spec{Tag: tagBatchResp, Name: "batchResp", Dir: msgplane.DirResponse,
			MinSize: batchHdrBytes, MaxSize: batchHdrBytes + maxBatchEntries*maxRespEntry},
		msgplane.Spec{Tag: tagStealReq, Name: "stealReq", Dir: msgplane.DirRequest,
			MinSize: stealReqBytes, MaxSize: stealReqBytes},
		msgplane.Spec{Tag: tagStealGrant, Name: "stealGrant", Dir: msgplane.DirResponse,
			MinSize: stealGrantHdrBytes, MaxSize: msgplane.Unbounded},
		msgplane.Spec{Tag: tagStealReturn, Name: "stealReturn", Dir: msgplane.DirRequest,
			MinSize: stealReturnHdrBytes, MaxSize: msgplane.Unbounded},
		msgplane.Spec{Tag: tagReplPush, Name: "replPush", Dir: msgplane.DirRequest,
			MinSize: replPushHdrBytes, MaxSize: msgplane.Unbounded},
		msgplane.Spec{Tag: tagReplAck, Name: "replAck", Dir: msgplane.DirResponse,
			MinSize: replAckBytes, MaxSize: replAckBytes},
	)
}

// Request kinds.
const (
	kindKmer byte = 0
	kindTile byte = 1
)

// Abort-cause kinds carried in the abort record (the payload of the
// transport's abort broadcast). The kind preserves the sentinel identity of
// the root cause across the wire, so a peer that decodes the record can
// still answer errors.Is(err, transport.ErrPeerDown) and friends.
const (
	kindAbortApp      byte = 0 // application/source error on the origin rank
	kindAbortPeerDown byte = 1 // the origin lost one of its peers
	kindAbortCorrupt  byte = 2 // the origin received a corrupt frame
)

// Wire payload sizes, used by the machine-model projection.
const (
	ReqBytesTagged    = 8 // id only; kind travels in the tag
	ReqBytesUniversal = 9 // kind + id in the payload
	RespBytes         = 5 // exists + count
)

// encodeReq builds a request payload. In universal mode the kind rides in
// the payload; otherwise it is implied by the tag and only the ID is sent.
func encodeReq(universal bool, kind byte, id kmer.ID) (tag msgplane.Tag, payload []byte) {
	if universal {
		buf := make([]byte, 9)
		buf[0] = kind
		binary.LittleEndian.PutUint64(buf[1:], uint64(id))
		return tagUniReq, buf
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(id))
	if kind == kindKmer {
		return tagKmerReq, buf
	}
	return tagTileReq, buf
}

// decodeReq parses a request received with the given tag.
func decodeReq(tag msgplane.Tag, payload []byte) (kind byte, id kmer.ID, err error) {
	switch tag {
	case tagUniReq:
		if len(payload) != 9 {
			return 0, 0, fmt.Errorf("core: universal request of %d bytes", len(payload))
		}
		return payload[0], kmer.ID(binary.LittleEndian.Uint64(payload[1:])), nil
	case tagKmerReq, tagTileReq:
		if len(payload) != 8 {
			return 0, 0, fmt.Errorf("core: tagged request of %d bytes", len(payload))
		}
		kind = kindKmer
		if tag == tagTileReq {
			kind = kindTile
		}
		return kind, kmer.ID(binary.LittleEndian.Uint64(payload)), nil
	default:
		return 0, 0, &msgplane.ProtocolError{Tag: tag, Kind: msgplane.ViolationUnknownTag, From: -1, Want: -1}
	}
}

// encodeResp builds a response payload: the count, or "does not exist"
// (the paper's -1 convention; absence at the owner is definitive).
func encodeResp(count uint32, exists bool) []byte {
	buf := make([]byte, RespBytes)
	if exists {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], count)
	return buf
}

// decodeResp parses a response payload.
func decodeResp(payload []byte) (count uint32, exists bool, err error) {
	if len(payload) != RespBytes {
		return 0, false, fmt.Errorf("core: response of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[1:]), payload[0] == 1, nil
}

// Batch frame geometry. A batch header is the request id, the entry count,
// and (requests only) the frame's single kind — a frame never mixes k-mers
// and tiles, so hoisting the kind out of the entries saves a byte per id.
// Entries are variable-width: request ids travel as zigzag-varint deltas
// (the issuer sorts each frame, so consecutive 40-bit tile ids collapse to
// a few bytes each), responses as a single varint folding the exists bit
// into the count's low bit. The unikmer-style compaction ROADMAP item 2
// names; the machine model prices batches from the measured transport
// counters, not from a fixed entry width.
const (
	batchHdrBytes    = 6                     // reqID u32 + n u16
	batchReqHdrBytes = batchHdrBytes + 1     // + kind u8
	maxBatchEntries  = 1<<16 - 1             // n is a u16
	maxRespEntry     = 5                     // varint of a 33-bit value
	maxReqEntry      = binary.MaxVarintLen64 // varint of a zigzag 64-bit delta
)

// batchAnswer is one resolved lookup inside a batch response.
type batchAnswer struct {
	Count  uint32
	Exists bool
}

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode short); unzigzag inverts it.
func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeBatchFrame builds one complete batch-request frame — the tag plus
// the payload for the assigned request id — in the shape the message
// plane's caller asks its encoder for.
func encodeBatchFrame(reqID uint32, kind byte, ids []kmer.ID) (msgplane.Tag, []byte) {
	return tagBatchReq, encodeBatchReq(reqID, kind, ids)
}

/// encodeBatchReq builds a tagBatchReq payload: the shared kind in the
// header, then every id as the zigzag-varint delta from its predecessor
// (the first id deltas from zero). Any id order round-trips — an unsorted
// frame just pays wider varints — so issuers sort for compression, not for
// correctness.
func encodeBatchReq(reqID uint32, kind byte, ids []kmer.ID) []byte {
	buf := make([]byte, batchReqHdrBytes, batchReqHdrBytes+len(ids)*3)
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(ids)))
	buf[6] = kind
	var entry [maxReqEntry]byte
	prev := uint64(0)
	for _, id := range ids {
		n := binary.PutUvarint(entry[:], zigzag(int64(uint64(id)-prev)))
		buf = append(buf, entry[:n]...)
		prev = uint64(id)
	}
	return buf
}

// decodeBatchReq parses a tagBatchReq payload. The delta arithmetic is
// wrapping, so every encoder output decodes to the exact input ids; a frame
// whose varints overrun or underrun the payload is rejected.
func decodeBatchReq(payload []byte) (reqID uint32, kind byte, ids []kmer.ID, err error) {
	if len(payload) < batchReqHdrBytes {
		return 0, 0, nil, fmt.Errorf("core: batch request of %d bytes", len(payload))
	}
	reqID = binary.LittleEndian.Uint32(payload[0:4])
	n := int(binary.LittleEndian.Uint16(payload[4:6]))
	kind = payload[6]
	rest := payload[batchReqHdrBytes:]
	ids = make([]kmer.ID, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		u, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, 0, nil, fmt.Errorf("core: batch request id %d/%d truncated", i, n)
		}
		prev += uint64(unzigzag(u))
		ids[i] = kmer.ID(prev)
		rest = rest[w:]
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("core: batch request has %d trailing bytes after %d entries", len(rest), n)
	}
	return reqID, kind, ids, nil
}

// encodeBatchResp builds a tagBatchResp payload answering a batch request;
// answers are positional (answer i resolves id i of the request). Each
// answer is one varint of count<<1|exists — a miss (the dominant answer,
// Section IV) is a single zero byte instead of five.
func encodeBatchResp(reqID uint32, answers []batchAnswer) []byte {
	buf := make([]byte, batchHdrBytes, batchHdrBytes+len(answers)*2)
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(answers)))
	var entry [maxRespEntry]byte
	for _, a := range answers {
		v := uint64(a.Count) << 1
		if a.Exists {
			v |= 1
		}
		n := binary.PutUvarint(entry[:], v)
		buf = append(buf, entry[:n]...)
	}
	return buf
}

// decodeBatchResp parses a tagBatchResp payload.
func decodeBatchResp(payload []byte) (reqID uint32, answers []batchAnswer, err error) {
	if len(payload) < batchHdrBytes {
		return 0, nil, fmt.Errorf("core: batch response of %d bytes", len(payload))
	}
	reqID = binary.LittleEndian.Uint32(payload[0:4])
	n := int(binary.LittleEndian.Uint16(payload[4:6]))
	rest := payload[batchHdrBytes:]
	answers = make([]batchAnswer, n)
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, nil, fmt.Errorf("core: batch response answer %d/%d truncated", i, n)
		}
		if v>>1 > 1<<32-1 {
			return 0, nil, fmt.Errorf("core: batch response count %d overflows u32", v>>1)
		}
		answers[i] = batchAnswer{Count: uint32(v >> 1), Exists: v&1 == 1}
		rest = rest[w:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("core: batch response has %d trailing bytes after %d entries", len(rest), n)
	}
	return reqID, answers, nil
}

// appendSpecEntry appends one spectrum-exchange entry to a round slab: the
// id as the zigzag-varint delta from the slab's previous id, then the count
// as a plain varint. The build encodes per destination out of sorted shard
// segments, so the stream is only piecewise ascending — the delta arithmetic
// wraps, so any order round-trips exactly; out-of-order segment boundaries
// just pay wider varints. Returns the grown slab and the new predecessor.
//
// reptile-lint:hotpath
func appendSpecEntry(dst []byte, prev uint64, id kmer.ID, count uint32) ([]byte, uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], zigzag(int64(uint64(id)-prev)))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(count))
	return append(dst, tmp[:n]...), uint64(id)
}

// decodeSpecEntries walks one slab built by appendSpecEntry, handing each
// (id, count) to fn. Decoding streams straight into the callback — no
// intermediate entry slice — so the merge adds into the owned shards with
// zero per-round allocation. A slab whose varints overrun the payload or
// whose count overflows u32 is rejected; an fn error aborts the walk
// unwrapped.
func decodeSpecEntries(b []byte, fn func(id kmer.ID, count uint32) error) error {
	prev := uint64(0)
	for i := 0; len(b) > 0; i++ {
		u, w := binary.Uvarint(b)
		if w <= 0 {
			return fmt.Errorf("core: spectrum slab entry %d: truncated id", i)
		}
		b = b[w:]
		prev += uint64(unzigzag(u))
		c, w := binary.Uvarint(b)
		if w <= 0 {
			return fmt.Errorf("core: spectrum slab entry %d: truncated count", i)
		}
		if c > 1<<32-1 {
			return fmt.Errorf("core: spectrum slab entry %d: count %d overflows u32", i, c)
		}
		b = b[w:]
		if err := fn(kmer.ID(prev), uint32(c)); err != nil {
			return err
		}
	}
	return nil
}

// Recovery frame geometry.
const (
	stealReqBytes       = 4 // reqID u32
	stealGrantHdrBytes  = 5 // reqID u32 + granted u8; chunk u32 + reads follow when granted
	stealReturnHdrBytes = 4 // chunk u32; corrected reads batch follows
	replPushHdrBytes    = 9 // reqID u32 + owner u32 + kind u8; slab image follows
	replAckBytes        = 4 // reqID u32
)

// encodeStealReqFrame builds one steal request in the caller's encoder
// shape: the thief asks the victim for one chunk of its remaining reads.
func encodeStealReqFrame(reqID uint32) (msgplane.Tag, []byte) {
	buf := make([]byte, stealReqBytes)
	binary.LittleEndian.PutUint32(buf, reqID)
	return tagStealReq, buf
}

// decodeStealReq parses a tagStealReq payload.
func decodeStealReq(payload []byte) (reqID uint32, err error) {
	if len(payload) != stealReqBytes {
		return 0, fmt.Errorf("core: steal request of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// encodeStealGrant builds a tagStealGrant payload: granted=false answers
// "my queue is empty", granted=true carries the chunk id (the chunk's start
// index in the victim's read order, which is also how the corrected reads
// find their way back to the right slots) and the chunk's reads.
func encodeStealGrant(reqID uint32, chunk uint32, rs []reads.Read, granted bool) []byte {
	buf := make([]byte, stealGrantHdrBytes)
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	if !granted {
		return buf
	}
	buf[4] = 1
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], chunk)
	buf = append(buf, c[:]...)
	return append(buf, reads.EncodeBatch(rs)...)
}

// decodeStealGrant parses a tagStealGrant payload.
func decodeStealGrant(payload []byte) (reqID uint32, chunk uint32, rs []reads.Read, granted bool, err error) {
	if len(payload) < stealGrantHdrBytes {
		return 0, 0, nil, false, fmt.Errorf("core: steal grant of %d bytes", len(payload))
	}
	reqID = binary.LittleEndian.Uint32(payload[0:4])
	if payload[4] == 0 {
		return reqID, 0, nil, false, nil
	}
	if len(payload) < stealGrantHdrBytes+4 {
		return 0, 0, nil, false, fmt.Errorf("core: granted steal grant of %d bytes", len(payload))
	}
	chunk = binary.LittleEndian.Uint32(payload[5:9])
	rs, err = reads.DecodeBatch(payload[9:])
	if err != nil {
		return 0, 0, nil, false, err
	}
	return reqID, chunk, rs, true, nil
}

// encodeStealReturn builds a tagStealReturn payload: the corrected chunk
// travels home keyed by its chunk id, so the victim writes it back into the
// exact slots it was granted from — the write-back by chunk id that keeps
// stolen output deterministic.
func encodeStealReturn(chunk uint32, rs []reads.Read) []byte {
	buf := make([]byte, stealReturnHdrBytes)
	binary.LittleEndian.PutUint32(buf, chunk)
	return append(buf, reads.EncodeBatch(rs)...)
}

// decodeStealReturn parses a tagStealReturn payload.
func decodeStealReturn(payload []byte) (chunk uint32, rs []reads.Read, err error) {
	if len(payload) < stealReturnHdrBytes {
		return 0, nil, fmt.Errorf("core: steal return of %d bytes", len(payload))
	}
	chunk = binary.LittleEndian.Uint32(payload[0:4])
	rs, err = reads.DecodeBatch(payload[4:])
	if err != nil {
		return 0, nil, err
	}
	return chunk, rs, nil
}

// encodeReplPushFrame builds one replica push in the caller's encoder
// shape: the slab image of the dead rank `owner`'s spectrum of `kind`,
// streamed to the new successor to restore R=2.
func encodeReplPushFrame(reqID uint32, owner int, kind byte, slab []byte) (msgplane.Tag, []byte) {
	buf := make([]byte, replPushHdrBytes, replPushHdrBytes+len(slab))
	binary.LittleEndian.PutUint32(buf[0:4], reqID)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(owner))
	buf[8] = kind
	return tagReplPush, append(buf, slab...)
}

// decodeReplPush parses a tagReplPush payload. The slab bytes alias the
// payload; the spectrum importer copies them into its own slabs.
func decodeReplPush(payload []byte) (reqID uint32, owner int, kind byte, slab []byte, err error) {
	if len(payload) < replPushHdrBytes {
		return 0, 0, 0, nil, fmt.Errorf("core: replica push of %d bytes", len(payload))
	}
	reqID = binary.LittleEndian.Uint32(payload[0:4])
	owner = int(int32(binary.LittleEndian.Uint32(payload[4:8])))
	return reqID, owner, payload[8], payload[replPushHdrBytes:], nil
}

// encodeReplAck builds a tagReplAck payload confirming one replica push.
func encodeReplAck(reqID uint32) []byte {
	buf := make([]byte, replAckBytes)
	binary.LittleEndian.PutUint32(buf, reqID)
	return buf
}

// decodeReplAck parses a tagReplAck payload.
func decodeReplAck(payload []byte) (reqID uint32, err error) {
	if len(payload) != replAckBytes {
		return 0, fmt.Errorf("core: replica ack of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// encodeAbortInfo serializes an abort record:
// cause kind | origin rank uint32 | phase len uint16 | phase | cause text.
func encodeAbortInfo(a *AbortError) []byte {
	kind := kindAbortApp
	switch {
	case errors.Is(a.err, transport.ErrPeerDown):
		kind = kindAbortPeerDown
	case errors.Is(a.err, transport.ErrCorruptFrame):
		kind = kindAbortCorrupt
	}
	phase := []byte(a.Phase)
	buf := make([]byte, 7, 7+len(phase)+len(a.Cause))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(a.Rank))
	binary.LittleEndian.PutUint16(buf[5:7], uint16(len(phase)))
	buf = append(buf, phase...)
	buf = append(buf, a.Cause...)
	return buf
}

// decodeAbortInfo parses an abort record back into the origin's AbortError,
// restoring the transport sentinel the cause kind names.
func decodeAbortInfo(payload []byte) (*AbortError, error) {
	if len(payload) < 7 {
		return nil, fmt.Errorf("core: abort record of %d bytes", len(payload))
	}
	var sentinel error
	switch payload[0] {
	case kindAbortApp:
	case kindAbortPeerDown:
		sentinel = transport.ErrPeerDown
	case kindAbortCorrupt:
		sentinel = transport.ErrCorruptFrame
	default:
		return nil, fmt.Errorf("core: abort cause kind %d", payload[0])
	}
	rank := int(int32(binary.LittleEndian.Uint32(payload[1:5])))
	plen := int(binary.LittleEndian.Uint16(payload[5:7]))
	if len(payload) < 7+plen {
		return nil, fmt.Errorf("core: abort record phase overruns payload")
	}
	return &AbortError{
		Rank:  rank,
		Phase: string(payload[7 : 7+plen]),
		Cause: string(payload[7+plen:]),
		err:   sentinel,
	}, nil
}
