package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/stats"
	"reptile/internal/transport"
)

// recoveryGrace bounds how long a worker blocked on a peer-down verdict
// waits for the recovery layer to classify the loss. Detection normally
// resolves within the transport's peer timeout; the cap only guards against
// a verdict that never comes, turning a silent hang into a clean abort. An
// expired wait marks the rank unrecoverable so every later caller fails
// fast instead of re-arming the timer once per lookup.
const recoveryGrace = 30 * time.Second

// replicaSet is the immutable snapshot of which dead-or-live peers' frozen
// spectra this rank holds copies of, keyed by the owning rank. Lookups read
// it through an atomic pointer on the hot path; the rare writers (the ring
// exchange, a replica push import) swap in a copied map.
type replicaSet struct {
	kmer map[int]*spectrum.PackedStore
	tile map[int]*spectrum.PackedStore
}

// recoveryJob is one duty the peer-down handler assigns the new holder of a
// dead rank's shard: restore redundancy, then finish the dead rank's reads.
type recoveryJob struct {
	kind recoveryJobKind
	rank int // the dead rank
}

type recoveryJobKind int

const (
	jobReplicate recoveryJobKind = iota // push the lost shard to a new successor
	jobEstate                           // re-derive and correct the dead rank's reads
)

// pendingDeath records a peer loss absorbed before the correct-phase
// machinery (dispatcher, recovery caller, router) existed; arm replays it.
type pendingDeath struct {
	rank  int
	cause error
}

// recoveryState is one rank's view of the R=2 recovery protocol: which
// replica shards it holds, which rank currently serves each shard, which
// peers are dead, and the duties the peer-down handler has queued. It is
// created at the ring-replication point (end of the post-exchange phase)
// and armed with the correct-phase machinery by correctDriver.
//
// The failover ordering guarantee: onPeerDown marks the rank dead and
// repoints the shard holder *before* failing the dead rank's outstanding
// calls, so by the time any worker observes a peer-down error and asks for
// the new route, the route is already final.
type recoveryState struct {
	rank, np int

	// stores is the replica snapshot; hot-path reads are lock-free.
	stores atomic.Pointer[replicaSet]

	mu       sync.Mutex
	holder   []int        // holder[s] = rank currently serving shard s
	dead     map[int]bool // ranks lost and absorbed
	rejected map[int]bool // ranks lost and declared unrecoverable
	waiters  map[int][]chan bool

	// Correct-phase wiring, set by arm. started guards the replay: deaths
	// absorbed before arm are parked in pendingDeaths.
	started bool
	disp    *lookupDispatcher
	rc      *msgplane.Caller
	rt      *msgplane.Router
	steal   *stealSched
	pending []pendingDeath

	// jobs carries the holder's duties from the handler (any transport
	// goroutine) to the drain loop. Under the single-failure model at most
	// two jobs are ever queued; the buffer makes the handler non-blocking.
	jobs chan recoveryJob
}

// newRecoveryState builds the state with every shard served by its owner.
func newRecoveryState(rank, np int) *recoveryState {
	rs := &recoveryState{
		rank:     rank,
		np:       np,
		holder:   make([]int, np),
		dead:     make(map[int]bool),
		rejected: make(map[int]bool),
		waiters:  make(map[int][]chan bool),
		jobs:     make(chan recoveryJob, 2*np),
	}
	for s := range rs.holder {
		rs.holder[s] = s
	}
	rs.stores.Store(&replicaSet{
		kmer: map[int]*spectrum.PackedStore{},
		tile: map[int]*spectrum.PackedStore{},
	})
	return rs
}

// addReplica records a held copy of owner's frozen spectrum, copy-on-write
// so concurrent lookups never see a map mutation.
func (rs *recoveryState) addReplica(owner int, kind byte, s *spectrum.PackedStore) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	old := rs.stores.Load()
	next := &replicaSet{
		kmer: make(map[int]*spectrum.PackedStore, len(old.kmer)+1),
		tile: make(map[int]*spectrum.PackedStore, len(old.tile)+1),
	}
	for k, v := range old.kmer {
		next.kmer[k] = v
	}
	for k, v := range old.tile {
		next.tile[k] = v
	}
	if kind == kindKmer {
		next.kmer[owner] = s
	} else {
		next.tile[owner] = s
	}
	rs.stores.Store(next)
}

// replicaStore returns the held copy of owner's spectrum of kind, or nil.
//
// reptile-lint:hotpath
func (rs *recoveryState) replicaStore(kind byte, owner int) *spectrum.PackedStore {
	set := rs.stores.Load()
	if kind == kindKmer {
		return set.kmer[owner]
	}
	return set.tile[owner]
}

// replicaMemBytes sums the held replicas' slab footprints — the honest
// memory cost of R=2.
func (rs *recoveryState) replicaMemBytes() int64 {
	var total int64
	set := rs.stores.Load()
	for _, s := range set.kmer {
		total += s.MemBytes()
	}
	for _, s := range set.tile {
		total += s.MemBytes()
	}
	return total
}

// holderOf returns the rank currently serving shard owner.
func (rs *recoveryState) holderOf(owner int) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.holder[owner]
}

// isDead reports whether rank's loss was absorbed.
func (rs *recoveryState) isDead(rank int) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.dead[rank]
}

// deadRanks returns the absorbed losses in rank order.
func (rs *recoveryState) deadRanks() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []int
	for r := range rs.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// nextLiveLocked returns the first live rank after r on the ring.
//
// reptile-lint:holds mu
func (rs *recoveryState) nextLiveLocked(r int) int {
	for i := 1; i < rs.np; i++ {
		c := (r + i) % rs.np
		if !rs.dead[c] {
			return c
		}
	}
	return r
}

// onPeerDown is the transport's peer-down handler while recovery is armed.
// It returns true to absorb a survivable loss — single failure, not the
// coordinator — after repointing the dead rank's shard to its successor and
// failing its outstanding calls; false to decline, which sends the event
// down the fatal mailbox-poison path with the existing attribution.
func (rs *recoveryState) onPeerDown(rank int, cause error) bool {
	rs.mu.Lock()
	if rs.dead[rank] {
		rs.mu.Unlock()
		return true // duplicate notification of an absorbed loss
	}
	if rs.rejected[rank] {
		rs.mu.Unlock()
		return false
	}
	// Rank 0 owns the done/stop protocol and cannot be replaced; a second
	// failure exceeds what one surviving replica can cover.
	if rank == 0 || len(rs.dead) > 0 {
		rs.rejected[rank] = true
		rs.notifyLocked(rank, false)
		rs.mu.Unlock()
		return false
	}
	rs.dead[rank] = true
	for s := 0; s < rs.np; s++ {
		if rs.holder[s] == rank {
			rs.holder[s] = rs.nextLiveLocked(s)
		}
	}
	rs.notifyLocked(rank, true)
	started := rs.started
	disp, rc, rt, steal := rs.disp, rs.rc, rs.rt, rs.steal
	if !started {
		rs.pending = append(rs.pending, pendingDeath{rank: rank, cause: cause})
	}
	// The new holder of the dead rank's shard owes the group two duties, in
	// order: restore R=2, then finish the dead rank's reads (the estate
	// ends with the proxy done, so re-replication must complete before the
	// stop broadcast can fire).
	if rs.holder[rank] == rs.rank {
		rs.jobs <- recoveryJob{kind: jobReplicate, rank: rank}
		rs.jobs <- recoveryJob{kind: jobEstate, rank: rank}
	}
	rs.mu.Unlock()

	if started {
		if disp != nil {
			disp.failPeer(rank, cause)
		}
		if rc != nil {
			rc.FailPeer(rank, cause)
		}
		if rt != nil {
			rt.MarkDead(rank)
		}
		if steal != nil {
			steal.reclaim(rank)
		}
	}
	return true
}

// notifyLocked releases every awaitFailover waiter for rank with the
// verdict: true = absorbed (reroute and retry), false = unrecoverable.
//
// reptile-lint:holds mu
func (rs *recoveryState) notifyLocked(rank int, ok bool) {
	for _, ch := range rs.waiters[rank] {
		ch <- ok
	}
	delete(rs.waiters, rank)
}

// awaitFailover blocks until the recovery layer has classified rank's loss:
// true means the loss was absorbed (the shard holder map is already final,
// so the caller can re-route and retry), false means it is fatal and the
// caller must surface its original error.
func (rs *recoveryState) awaitFailover(rank int) bool {
	rs.mu.Lock()
	if rs.dead[rank] {
		rs.mu.Unlock()
		return true
	}
	if rs.rejected[rank] {
		rs.mu.Unlock()
		return false
	}
	ch := make(chan bool, 1)
	rs.waiters[rank] = append(rs.waiters[rank], ch)
	rs.mu.Unlock()
	select {
	case ok := <-ch:
		return ok
	case <-time.After(recoveryGrace):
		// No verdict within the grace period. Make the rejection sticky —
		// and release any other waiters — so the run aborts promptly rather
		// than burning a fresh grace period on every subsequent lookup.
		rs.mu.Lock()
		defer rs.mu.Unlock()
		if rs.dead[rank] {
			return true // verdict raced the timer
		}
		if !rs.rejected[rank] {
			rs.rejected[rank] = true
			rs.notifyLocked(rank, false)
		}
		return false
	}
}

// arm wires the correct-phase machinery into the handler and replays any
// death absorbed before the machinery existed (a crash can land while this
// rank is still importing ring replicas).
func (rs *recoveryState) arm(disp *lookupDispatcher, rc *msgplane.Caller, rt *msgplane.Router, steal *stealSched) {
	rs.mu.Lock()
	rs.started = true
	rs.disp, rs.rc, rs.rt, rs.steal = disp, rc, rt, steal
	replay := rs.pending
	rs.pending = nil
	rs.mu.Unlock()
	for _, d := range replay {
		if disp != nil {
			disp.failPeer(d.rank, d.cause)
		}
		if rc != nil {
			rc.FailPeer(d.rank, d.cause)
		}
		if rt != nil {
			rt.MarkDead(d.rank)
		}
	}
}

// ringReplicate is the R=2 placement: every rank ships its frozen owned
// spectra (exact slab images, so the replica probes identically) to its
// ring successor through the same all-to-all collective schedule every
// other exchange uses, and imports its predecessor's. It runs at the end of
// the post-exchange phase — the freeze point.
//
// The peer-down handler is installed *before* the collective, not after.
// A rank can only reach its correct phase — the earliest point a survivable
// crash can land — once its own replica exchange completed, which requires
// every peer to have sent its slabs, which requires every peer to have
// passed this install. So by the time any absorbable death can occur, every
// survivor's handler is armed; installing after the collective left a
// window (wide at high rank counts, where peers linger in the exchange
// while the first rank finishes) in which a correct-phase crash poisoned
// the laggards' mailboxes instead of reaching the recovery layer. Deaths
// absorbed here, before arm wires in the dispatcher, are parked and
// replayed (see pendingDeath).
//
// reptile-lint:build
func (ctx *rankCtx) ringReplicate() error {
	succ := (ctx.rank + 1) % ctx.np
	pred := (ctx.rank - 1 + ctx.np) % ctx.np
	payload := ctx.ownKmer.ExportSlabs(nil)
	payload = ctx.ownTile.ExportSlabs(payload)
	bufs := make([][]byte, ctx.np)
	bufs[succ] = payload
	ctx.st.ExchangeBytes += int64(len(payload))
	ctx.rec = newRecoveryState(ctx.rank, ctx.np)
	ctx.e.SetPeerDownHandler(ctx.rec.onPeerDown)
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return err
	}
	pk, rest, err := spectrum.ImportPackedSlabs(got[pred])
	if err != nil {
		return fmt.Errorf("core: importing rank %d's k-mer replica: %w", pred, err)
	}
	pt, rest, err := spectrum.ImportPackedSlabs(rest)
	if err != nil {
		return fmt.Errorf("core: importing rank %d's tile replica: %w", pred, err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes after rank %d's replica image", len(rest), pred)
	}
	ctx.rec.addReplica(pred, kindKmer, pk)
	ctx.rec.addReplica(pred, kindTile, pt)
	return nil
}

// disarmRecovery removes the peer-down handler and records the recovered
// losses in the rank's stats, so the launcher can tell a recovered run from
// a clean one.
func (ctx *rankCtx) disarmRecovery() {
	ctx.e.SetPeerDownHandler(nil)
	ctx.st.RecoveredRanks = ctx.rec.deadRanks()
}

// drainRecovery keeps this rank responsive between its own done
// announcement and the stop broadcast: the router serves lookups on its
// goroutine while this loop executes any recovery duties the peer-down
// handler queued — the replica push and the dead rank's estate.
func (ctx *rankCtx) drainRecovery(res *reptile.Result, disp *lookupDispatcher, rt *msgplane.Router, routerExit <-chan struct{}) error {
	for {
		select {
		case <-routerExit:
			return nil
		case job := <-ctx.rec.jobs:
			var err error
			switch job.kind {
			case jobReplicate:
				err = ctx.pushReplicas(job.rank)
			case jobEstate:
				err = ctx.correctEstate(job.rank, res, disp, rt)
			}
			if err != nil {
				return err
			}
		}
	}
}

// pushReplicas restores R=2 after a loss: this rank (the dead rank's shard
// holder) streams the lost shard's slab images to the next live rank on the
// ring, which imports them as its own replicas. With no third rank to push
// to the group runs at R=1 for the remainder — the single-failure model's
// floor.
func (ctx *rankCtx) pushReplicas(dead int) error {
	ctx.rec.mu.Lock()
	target := ctx.rec.nextLiveLocked(ctx.rank)
	ctx.rec.mu.Unlock()
	if target == ctx.rank || target == dead {
		return nil // no third live rank: the group runs at R=1 from here
	}
	for _, ks := range []struct {
		kind byte
		s    *spectrum.PackedStore
	}{
		{kindKmer, ctx.rec.replicaStore(kindKmer, dead)},
		{kindTile, ctx.rec.replicaStore(kindTile, dead)},
	} {
		if ks.s == nil {
			return fmt.Errorf("core: rank %d holds no %d-kind replica of dead rank %d", ctx.rank, ks.kind, dead)
		}
		slab := ks.s.ExportSlabs(nil)
		kind := ks.kind
		call, err := ctx.recCaller.Start(target, 1, func(reqID uint32) (msgplane.Tag, []byte) {
			return encodeReplPushFrame(reqID, dead, kind, slab)
		})
		if err != nil {
			return err
		}
		if _, err := call.Wait(); err != nil {
			return err
		}
		ctx.st.ShardsRereplicated++
	}
	return nil
}

// correctEstate finishes a dead rank's work: re-derive its read assignment
// from the source (the assignment is a pure function of the input and the
// balancing mode, so any survivor computes the identical set), correct the
// reads — the dead shard's lookups resolve locally against the held replica,
// everything else through the normal remote protocol — and announce the
// dead rank done by proxy so the group's termination protocol converges.
func (ctx *rankCtx) correctEstate(dead int, res *reptile.Result, disp *lookupDispatcher, rt *msgplane.Router) error {
	estate, err := ctx.deriveAssignment(dead)
	if err != nil {
		return err
	}
	var shard stats.Rank
	oracle := ctx.newOracle(&shard, disp, nil)
	corrector, err := reptile.NewCorrector(ctx.opts.Config, oracle)
	if err != nil {
		return err
	}
	for i := range estate {
		res.Add(corrector.CorrectRead(&estate[i]))
		if oracle.err != nil {
			return oracle.err
		}
	}
	ctx.st.AddLookups(&shard)
	ctx.st.ReadsRecovered += int64(len(estate))
	ctx.myReads = append(ctx.myReads, estate...)
	return rt.AnnounceDoneFor(dead)
}

// deriveAssignment recomputes the exact read set the pipeline assigned to
// rank: under load balancing, every input shard filtered by owner hash and
// sorted by sequence number (mirroring readPhase + balancePhase); without
// it, the rank's own input shard in file order.
func (ctx *rankCtx) deriveAssignment(rank int) ([]reads.Read, error) {
	if ctx.src == nil {
		return nil, fmt.Errorf("core: no source to re-derive rank %d's assignment", rank)
	}
	var estate []reads.Read
	collect := func(shard int, keepAll bool) error {
		br, err := ctx.src.Open(shard, ctx.np, ctx.opts.Config.ChunkReads)
		if err != nil {
			return err
		}
		defer br.Close()
		for {
			batch, err := br.NextBatch()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			for i := range batch {
				if keepAll || batch[i].OwnerRank(ctx.np) == rank {
					estate = append(estate, batch[i].Clone())
				}
			}
		}
	}
	if !ctx.opts.LoadBalance {
		if err := collect(rank, true); err != nil {
			return nil, err
		}
		return estate, nil
	}
	for s := 0; s < ctx.np; s++ {
		if err := collect(s, false); err != nil {
			return nil, err
		}
	}
	sort.Slice(estate, func(i, j int) bool { return estate[i].Seq < estate[j].Seq })
	return estate, nil
}

// tolerateDeadPeer filters a responder-side send error: answering a rank
// whose loss the recovery layer absorbed (or is about to absorb) is not a
// failure — the requester is gone and its work is being re-covered. Every
// other error passes through.
func (ctx *rankCtx) tolerateDeadPeer(err error) error {
	if err == nil || ctx.rec == nil {
		return err
	}
	var pd *transport.PeerDownError
	if !errors.As(err, &pd) {
		return err
	}
	if ctx.rec.awaitFailover(pd.Rank) {
		return nil
	}
	return err
}

// lookupStore resolves which frozen store answers a served lookup: the own
// shard normally, a held replica when the recovery layer rerouted a dead
// rank's traffic here. A request for a shard this rank neither owns nor
// replicates is a routing bug and fails loudly rather than answering a
// definitive (and wrong) miss.
func (ctx *rankCtx) lookupStore(kind byte, id kmer.ID) (spectrum.Lookuper, error) {
	owner := kmer.Owner(id, ctx.np)
	if owner != ctx.rank && ctx.rec != nil {
		if s := ctx.rec.replicaStore(kind, owner); s != nil {
			return s, nil
		}
		return nil, fmt.Errorf("core: lookup for rank %d's shard routed to rank %d, which holds no replica", owner, ctx.rank)
	}
	return ctx.ownedStore(kind)
}
