// Package fixture exercises the freezeguard analyzer: true positives on
// frozen-field writes outside the build phase, clean passes on build-phase
// functions, reads, and unannotated fields.
package fixture

// store stands in for a spectrum store with mutating methods.
type store struct{ n int }

func (s *store) Add(id uint64, c uint32) { s.n++ }
func (s *store) Set(id uint64, c uint32) { s.n++ }
func (s *store) Clear()                  { s.n = 0 }
func (s *store) Prune(min uint32)        {}
func (s *store) Release()                {}
func (s *store) Count(id uint64) (uint32, bool) {
	return 0, false
}

type engine struct {
	// frozen: packed at the end of the build phase
	owned *store
	// scratch is mutable for the whole run.
	scratch *store
}

// finish is the declared freeze point: assignments and mutations are its job.
//
// reptile-lint:build
func (e *engine) finish() {
	e.owned = &store{}
	e.owned.Prune(2)
}

// lookup only reads the frozen store: clean.
func (e *engine) lookup(id uint64) (uint32, bool) {
	return e.owned.Count(id)
}

// reassign replaces the frozen store outside the build phase.
func (e *engine) reassign() {
	e.owned = &store{} // want "engine.owned is frozen"
}

// mutate calls a store mutator on the frozen field outside the build phase.
func (e *engine) mutate(id uint64) {
	e.owned.Add(id, 1) // want "calls Add on it"
}

// release frees the frozen store outside the build phase.
func (e *engine) release() {
	e.owned.Release() // want "calls Release on it"
}

// cacheWrite mutates the unannotated field: clean.
func (e *engine) cacheWrite(id uint64) {
	e.scratch.Set(id, 1)
}

// viaParam shows the check also applies to plain functions via parameters.
func viaParam(e *engine) {
	e.owned.Clear() // want "calls Clear on it"
}

// allowed demonstrates per-line suppression.
func (e *engine) allowed() {
	e.owned = nil // reptile-lint:allow freezeguard teardown after the run
}
