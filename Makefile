# Local developer entry points, kept in lockstep with .github/workflows/ci.yml
# so `make ci` reproduces exactly what the gate runs.

GO ?= go

.PHONY: build test race lint lint-fixtures vet chaos chaos-recover bench-lookup bench-build bench-recover bench-snapshot bench-serve serve-smoke property fuzz cover ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

## race: the -race gate CI runs; -short skips the heavyweight end-to-end
## core tests (guarded with testing.Short) to keep it fast.
race:
	$(GO) test -race -short -count=1 ./...

## lint: the project-specific static analyzers (see internal/lint and the
## "Concurrency invariants" and "Type-aware analyzers" sections of
## DESIGN.md).
lint:
	$(GO) run ./cmd/reptile-lint ./...

## lint-fixtures: only the analyzer suite's own golden-fixture tests — each
## analyzer against its seeded-violation fixtures, the directive audit, and
## the inventory pin. Fast enough to run on every analyzer edit.
lint-fixtures:
	$(GO) test -count=1 -run 'Golden|Inventory|Allow|FollowsCalls|PathScoping' ./internal/lint/

vet:
	$(GO) vet ./...

## chaos: the fault-injection gate — the transport/core chaos suite under
## the race detector, repeated across a small seed matrix (each extra seed
## extends the benign-invariance sweep via REPTILE_CHAOS_SEED).
CHAOS_SEEDS ?= 11 12
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "chaos seed $$seed"; \
		REPTILE_CHAOS_SEED=$$seed $(GO) test -race -short -count=1 \
			-run 'Chaos|Abort|Peer|Corrupt|Heartbeat|Failure' \
			./internal/transport/ ./internal/core/ || exit 1; \
	done

## chaos-recover: the rank-failure recovery gate — replica failover,
## re-replication, estate redistribution, work stealing, and idle-death
## attribution under the race detector, across the same seed matrix as the
## chaos gate (each seed shifts the injected timing around the crash).
chaos-recover:
	@for seed in $(CHAOS_SEEDS); do \
		echo "chaos-recover seed $$seed"; \
		REPTILE_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Recover|Steal|IdleDeath|FailPeer|ExportImport|CrashPhase' \
			./internal/transport/ ./internal/msgplane/ ./internal/spectrum/ ./internal/core/ || exit 1; \
	done

## bench-lookup: the remote-lookup batching benchmark — correction-phase
## messages and bytes per read for the unbatched protocol vs batch frames of
## 8 and 32 ids (with and without a worker pool), written machine-readable.
bench-lookup:
	$(GO) run ./cmd/reptile-bench -exp lookup -scale 0.05 -rankdiv 16 -maxranks 8 -json BENCH_lookup.json

## bench-build: the spectrum-construction benchmark — extraction-worker
## sweep (wall time, memory, output identity) plus the frozen-store layout
## comparison (packed vs hash vs sorted vs cache-aware) at equal entries.
bench-build:
	$(GO) run ./cmd/reptile-bench -exp build -scale 0.05 -rankdiv 16 -maxranks 8 -json BENCH_build.json

## bench-recover: the fault-tolerance benchmark — R=2 replica overhead on a
## fault-free run (memory, exchange bytes, wall time) and a seeded mid-
## correction crash recovered to byte-identical output, vs the no-replica
## baseline.
bench-recover:
	$(GO) run ./cmd/reptile-bench -exp recover -scale 0.05 -rankdiv 16 -maxranks 8 -json BENCH_recover.json

## bench-snapshot: the spectrum-snapshot cache benchmark — cold build vs
## warm load over proc and TCP transports, with the >=5x load-speedup and
## byte-identical-output bars enforced inside the experiment, plus disk
## bytes per entry of the near-zero-parse format.
bench-snapshot:
	$(GO) run ./cmd/reptile-bench -exp snapshot -scale 0.05 -rankdiv 16 -maxranks 8 -json BENCH_snapshot.json

## bench-serve: the resident-service benchmark — concurrent client jobs
## against one shared frozen spectrum vs per-job batch runs, with the >=2x
## aggregate-throughput and byte-identical-output bars enforced inside the
## experiment, plus session latency quantiles (p50/p99).
bench-serve:
	$(GO) run ./cmd/reptile-bench -exp serve -scale 0.05 -rankdiv 16 -maxranks 8 -json BENCH_serve.json

## serve-smoke: end-to-end service smoke — simulate a small dataset, start
## reptile-serve, wait for the front door, run two concurrent clients, drain
## with SIGINT, and require every client's output byte-identical to a batch
## reptile-correct run on the same input.
serve-smoke:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	port=$$((20000 + $$$$ % 20000)); \
	$(GO) build -o $$dir/reptile-serve ./cmd/reptile-serve; \
	$(GO) build -o $$dir/reptile-correct ./cmd/reptile-correct; \
	$(GO) run ./cmd/readsim -preset ecoli -scale 0.02 -out $$dir -name smoke; \
	$$dir/reptile-correct -fasta $$dir/smoke.fa -qual $$dir/smoke.qual -np 2 -out $$dir/batch; \
	$$dir/reptile-serve -fasta $$dir/smoke.fa -qual $$dir/smoke.qual -np 2 -addr 127.0.0.1:$$port & srv=$$!; \
	ok=0; for i in $$(seq 1 60); do \
		if $$dir/reptile-serve -client -addr 127.0.0.1:$$port -tenant probe \
			-fasta $$dir/smoke.fa -qual $$dir/smoke.qual -out $$dir/probe >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.25; done; \
	[ $$ok -eq 1 ] || { echo "serve-smoke: server never came up"; kill $$srv 2>/dev/null; exit 1; }; \
	$$dir/reptile-serve -client -addr 127.0.0.1:$$port -tenant smoke-a \
		-fasta $$dir/smoke.fa -qual $$dir/smoke.qual -out $$dir/c1 & c1=$$!; \
	$$dir/reptile-serve -client -addr 127.0.0.1:$$port -tenant smoke-b \
		-fasta $$dir/smoke.fa -qual $$dir/smoke.qual -out $$dir/c2 & c2=$$!; \
	wait $$c1; wait $$c2; \
	kill -INT $$srv; wait $$srv; \
	cmp $$dir/batch.fa $$dir/c1.fa; cmp $$dir/batch.qual $$dir/c1.qual; \
	cmp $$dir/batch.fa $$dir/c2.fa; cmp $$dir/batch.qual $$dir/c2.qual; \
	echo "serve-smoke: 2 concurrent clients byte-identical to the batch run"

## property: the randomized/fuzz-seeded equivalence suites in short mode —
## packed-vs-hash store equivalence, freeze invariants, and the batched
## lookup equivalence matrix.
property:
	$(GO) test -short -count=1 -run 'Packed|Freeze|Frozen|Batched' ./internal/spectrum/ ./internal/core/

## fuzz: the wire- and snapshot-decoder fuzz targets — each runs briefly
## past its golden seed corpus so CI catches decode panics and round-trip
## drift without turning into an open-ended campaign. Entries are
## package:target pairs so targets can live in any package.
FUZZ_TIME ?= 10s
FUZZ_TARGETS ?= \
	./internal/core/:FuzzDecodeBatchReq \
	./internal/core/:FuzzDecodeBatchResp \
	./internal/core/:FuzzBatchReqDeltaCodec \
	./internal/core/:FuzzBatchRespVarintCodec \
	./internal/core/:FuzzSpecEntryCodec \
	./internal/core/:FuzzDecodeAbortInfo \
	./internal/snapshot/:FuzzSnapshotDecode
fuzz:
	@for spec in $(FUZZ_TARGETS); do \
		pkg=$${spec%%:*}; target=$${spec##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZ_TIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME) $$pkg || exit 1; \
	done

## cover: the statement-coverage floor on the protocol-bearing packages —
## the wire format plus message plane must not drift below COVER_MIN.
COVER_MIN ?= 70
cover:
	@for pkg in ./internal/core/ ./internal/msgplane/; do \
		line=$$($(GO) test -count=1 -cover $$pkg | tee /dev/stderr | grep -o 'coverage: [0-9.]*%') || exit 1; \
		pct=$$(echo $$line | sed 's/coverage: //; s/%//; s/\..*//'); \
		if [ "$$pct" -lt "$(COVER_MIN)" ]; then \
			echo "coverage $$pct% for $$pkg is below the $(COVER_MIN)% floor"; exit 1; \
		fi; \
	done

ci: build vet lint test race chaos chaos-recover property cover fuzz bench-build bench-lookup bench-snapshot bench-serve serve-smoke
