package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"reptile/internal/dna"
	"reptile/internal/kmer"
	"reptile/internal/msgplane"
	"reptile/internal/reads"
	"reptile/internal/transport"
)

func TestBatchWireRoundTrips(t *testing.T) {
	// Sorted, unsorted, and extreme-width id lists must all survive the
	// delta+varint round trip bit-exactly.
	for _, ids := range [][]kmer.ID{
		{1, 0xDEADBEEF, 1 << 60},
		{1 << 60, 1, 0xDEADBEEF}, // unsorted: negative deltas
		{0, ^kmer.ID(0), 0},      // full-width wrap in both directions
	} {
		payload := encodeBatchReq(7, kindTile, ids)
		reqID, kind, got, err := decodeBatchReq(payload)
		if err != nil || reqID != 7 || kind != kindTile {
			t.Fatalf("batch req round trip: id=%d kind=%d err=%v", reqID, kind, err)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("entry %d: id=%d want %d", i, got[i], ids[i])
			}
		}
	}
	payload := encodeBatchReq(7, kindTile, []kmer.ID{1, 0xDEADBEEF, 1 << 60})

	answers := []batchAnswer{{Count: 42, Exists: true}, {Count: 0, Exists: false}}
	reqID, back, err := decodeBatchResp(encodeBatchResp(9, answers))
	if err != nil || reqID != 9 || len(back) != 2 {
		t.Fatalf("batch resp round trip: id=%d n=%d err=%v", reqID, len(back), err)
	}
	if back[0] != answers[0] || back[1] != answers[1] {
		t.Fatalf("answers changed: %+v", back)
	}

	// Malformed frames must be rejected, never mis-decoded.
	if _, _, _, err := decodeBatchReq([]byte{1, 2}); err == nil {
		t.Error("short batch request accepted")
	}
	if _, _, _, err := decodeBatchReq(payload[:len(payload)-1]); err == nil {
		t.Error("truncated batch request accepted")
	}
	if _, _, _, err := decodeBatchReq(append(append([]byte{}, payload...), 0)); err == nil {
		t.Error("batch request with trailing bytes accepted")
	}
	if _, _, err := decodeBatchResp([]byte{1}); err == nil {
		t.Error("short batch response accepted")
	}
	trunc := encodeBatchResp(9, answers)
	if _, _, err := decodeBatchResp(trunc[:len(trunc)-1]); err == nil {
		t.Error("truncated batch response accepted")
	}
}

// batchedVariants are the batching configurations every heuristic mode is
// checked under. Worker pools require batching, so they only appear with it.
var batchedVariants = []struct {
	label                  string
	batch, window, workers int
}{
	{"batch32", 32, 0, 0},
	{"batch4-win2", 4, 2, 0},
	{"batch8-workers3", 8, 0, 3},
	// Workers also shard the spectrum build, so this covers the sharded
	// extract/fold path (and, with the batchreads mode, the pipelined
	// multi-round exchange) at 4 shards vs the single-shard baseline.
	{"batch8-workers4", 8, 0, 4},
}

// lookupCounters sums the worker-side remote lookup tallies, which must not
// change under batching: batching reorders messages, not lookups.
func lookupCounters(out *Output) [4]int64 {
	return [4]int64{
		out.Run.Sum(func(r *statsRank) int64 { return r.KmerLookupsRemote }),
		out.Run.Sum(func(r *statsRank) int64 { return r.TileLookupsRemote }),
		out.Run.Sum(func(r *statsRank) int64 { return r.RemoteMisses }),
		out.Run.Sum(func(r *statsRank) int64 { return r.TotalLocalLookups() }),
	}
}

// TestBatchedLookupsMatchUnbatchedAcrossHeuristics is the tentpole's hard
// invariant: for every heuristic mode, enabling the batch pipeline (with
// and without a worker pool) leaves the corrected output byte-identical and
// — in single-worker runs, where lookup order is unchanged — the lookup
// counters exactly equal.
func TestBatchedLookupsMatchUnbatchedAcrossHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 800, 8100)
	opts.Config.ChunkReads = 200
	modes := map[string]Heuristics{
		"base":        {},
		"universal":   {Universal: true},
		"readkmers":   {RetainReadKmers: true},
		"cache":       {RetainReadKmers: true, CacheRemote: true},
		"replkmer":    {ReplicateKmers: true},
		"repltile":    {ReplicateTiles: true},
		"replboth":    {ReplicateKmers: true, ReplicateTiles: true},
		"batchreads":  {BatchReads: true},
		"partialrepl": {PartialReplicationGroup: 2},
		"kitchensink": {Universal: true, RetainReadKmers: true, CacheRemote: true, BatchReads: true},
	}
	for name, h := range modes {
		o := opts
		o.Heuristics = h
		base, err := Run(&MemorySource{Reads: ds.Reads}, 4, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseCounters := lookupCounters(base)
		for _, v := range batchedVariants {
			ob := o
			ob.Heuristics.LookupBatch = v.batch
			ob.Heuristics.LookupWindow = v.window
			ob.Heuristics.Workers = v.workers
			out, err := Run(&MemorySource{Reads: ds.Reads}, 4, ob)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.label, err)
			}
			sameOutput(t, name+"/"+v.label, base, out)
			if v.workers <= 1 {
				if got := lookupCounters(out); got != baseCounters {
					t.Errorf("%s/%s: lookup counters %v, unbatched %v", name, v.label, got, baseCounters)
				}
			}
		}
	}
}

// TestBatchedLookupsMatchUnbatchedOverTCP repeats the invariant over real
// sockets for every heuristic mode: a TCP run with batching on must produce
// the same bytes as the proc-transport run with batching off.
func TestBatchedLookupsMatchUnbatchedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	ds, opts := testDataset(t, 300, 8200)
	const np = 2
	modes := map[string]Heuristics{
		"base":        {},
		"universal":   {Universal: true},
		"readkmers":   {RetainReadKmers: true},
		"cache":       {RetainReadKmers: true, CacheRemote: true},
		"replkmer":    {ReplicateKmers: true},
		"repltile":    {ReplicateTiles: true},
		"replboth":    {ReplicateKmers: true, ReplicateTiles: true},
		"batchreads":  {BatchReads: true},
		"partialrepl": {PartialReplicationGroup: 2},
		"kitchensink": {Universal: true, RetainReadKmers: true, CacheRemote: true, BatchReads: true},
	}
	for name, h := range modes {
		o := opts
		o.Heuristics = h
		base, err := Run(&MemorySource{Reads: ds.Reads}, np, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ob := o
		ob.Heuristics.LookupBatch = 16
		ob.Heuristics.Workers = 4
		outs, errs := chaosTCPRanks(t, ds.Reads, np, ob, transport.NewPlan(1), 0)
		for r, err := range errs {
			if err != nil {
				t.Fatalf("%s: tcp rank %d: %v", name, r, err)
			}
		}
		got := &Output{ByRank: make([][]reads.Read, np)}
		for r, o := range outs {
			got.ByRank[r] = o.Corrected
			got.Result.Add(o.Result)
		}
		sameOutput(t, name+"/tcp-batched", base, got)
	}
}

// TestBatchingReducesCorrectionMessages is the acceptance bar: with all
// replication heuristics off at np ≥ 4, batching must at least halve the
// correction-phase transport messages per corrected read while leaving the
// output byte-identical.
func TestBatchingReducesCorrectionMessages(t *testing.T) {
	ds, opts := testDataset(t, 1500, 8300)
	const np = 4
	base, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	ob := opts
	ob.Heuristics.LookupBatch = 32
	batched, err := Run(&MemorySource{Reads: ds.Reads}, np, ob)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "batched", base, batched)

	correctMsgs := func(out *Output) int64 {
		var total int64
		for _, r := range out.Run.Ranks {
			for _, m := range r.MsgsTo {
				total += m
			}
		}
		return total
	}
	bm, gm := correctMsgs(base), correctMsgs(batched)
	if bm == 0 {
		t.Fatal("unbatched run sent no correction-phase messages; test is vacuous")
	}
	// Both runs corrected the same reads, so comparing totals compares the
	// per-corrected-read rate.
	if gm*2 > bm {
		t.Errorf("batching reduced correction messages only %d -> %d (< 2x)", bm, gm)
	}
	t.Logf("correction messages: unbatched=%d batched=%d (%.1fx)", bm, gm, float64(bm)/float64(gm))

	frames := batched.Run.Sum(func(r *statsRank) int64 { return r.BatchesSent })
	lookups := batched.Run.Sum(func(r *statsRank) int64 { return r.BatchedLookups })
	if frames == 0 || lookups <= frames {
		t.Errorf("batch counters implausible: frames=%d ids=%d", frames, lookups)
	}
	for _, r := range batched.Run.Ranks {
		if r.WorkerCount != 1 {
			t.Errorf("rank %d WorkerCount=%d, want 1", r.Rank, r.WorkerCount)
		}
		if r.BatchesSent > 0 && r.LookupsPerBatch() <= 1 {
			t.Errorf("rank %d aggregated %.2f ids/frame", r.Rank, r.LookupsPerBatch())
		}
	}
	for _, r := range base.Run.Ranks {
		if r.BatchesSent != 0 || r.BatchedLookups != 0 {
			t.Errorf("unbatched rank %d shows batch counters %d/%d", r.Rank, r.BatchesSent, r.BatchedLookups)
		}
	}
}

// TestWorkerPoolMatchesSingleWorker: the multi-worker pool must be a pure
// wall-clock optimization — same bytes out, worker count surfaced in stats.
func TestWorkerPoolMatchesSingleWorker(t *testing.T) {
	ds, opts := testDataset(t, 1000, 8400)
	const np = 4
	base, err := Run(&MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	ow := opts
	ow.Heuristics.LookupBatch = 16
	ow.Heuristics.Workers = 4
	pooled, err := Run(&MemorySource{Reads: ds.Reads}, np, ow)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "worker pool", base, pooled)
	for _, r := range pooled.Run.Ranks {
		if r.WorkerCount != 4 {
			t.Errorf("rank %d WorkerCount=%d, want 4", r.Rank, r.WorkerCount)
		}
	}
}

// TestStreamingBatchedMatchesUnbatched: the same invariant through the
// streaming engine, whose per-chunk pools share one dispatcher.
func TestStreamingBatchedMatchesUnbatched(t *testing.T) {
	ds, opts := testDataset(t, 900, 8500)
	opts.Config.ChunkReads = 150
	const np = 3
	sinks, factory := collectSinks(np)
	if _, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, opts, factory); err != nil {
		t.Fatal(err)
	}
	ob := opts
	ob.Heuristics.LookupBatch = 16
	ob.Heuristics.Workers = 2
	bsinks, bfactory := collectSinks(np)
	if _, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, ob, bfactory); err != nil {
		t.Fatal(err)
	}
	collect := func(ss []*CollectSink) map[int64]string {
		m := make(map[int64]string)
		for _, s := range ss {
			for i := range s.Reads {
				m[s.Reads[i].Seq] = dna.DecodeString(s.Reads[i].Base)
			}
		}
		return m
	}
	want, got := collect(sinks), collect(bsinks)
	if len(want) != len(got) {
		t.Fatalf("batched streamed %d reads, unbatched %d", len(got), len(want))
	}
	for seq, b := range want {
		if got[seq] != b {
			t.Fatalf("read %d differs between batched and unbatched streaming", seq)
		}
	}
}

func TestBatchOptionValidation(t *testing.T) {
	if (Heuristics{Workers: 2}).Validate() == nil {
		t.Error("Workers>1 without LookupBatch accepted")
	}
	if (Heuristics{LookupBatch: -1}).Validate() == nil {
		t.Error("negative batch accepted")
	}
	if (Heuristics{LookupBatch: maxBatchEntries + 1}).Validate() == nil {
		t.Error("oversized batch accepted")
	}
	if (Heuristics{LookupWindow: -1}).Validate() == nil {
		t.Error("negative window accepted")
	}
	if (Heuristics{Workers: -1}).Validate() == nil {
		t.Error("negative workers accepted")
	}
	if err := (Heuristics{LookupBatch: 32, LookupWindow: 2, Workers: 4}).Validate(); err != nil {
		t.Errorf("valid batching config rejected: %v", err)
	}
}

// TestDispatcherProtocolViolations: a response whose request id is unknown,
// or whose sender is not the rank the request went to, must surface as a
// ProtocolError naming both ranks — and must not disturb other calls.
func TestDispatcherProtocolViolations(t *testing.T) {
	eps, err := transport.NewProcGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	d := newLookupDispatcher(eps[0], 3, 2)

	// Unknown request id.
	err = d.deliver(transport.Message{From: 1, Tag: int(tagBatchResp), Data: encodeBatchResp(99, []batchAnswer{{}})})
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.From != 1 || pe.Kind != msgplane.ViolationUnknownRequest || pe.ReqID != 99 {
		t.Fatalf("unknown req id: %v", err)
	}

	// Wrong sender: the request went to rank 1, the answer claims rank 2.
	call, err := d.start(1, kindKmer, []kmer.ID{5})
	if err != nil {
		t.Fatal(err)
	}
	err = d.deliver(transport.Message{From: 2, Tag: int(tagBatchResp), Data: encodeBatchResp(1, []batchAnswer{{Count: 1, Exists: true}})})
	if !errors.As(err, &pe) || pe.Want != 1 || pe.From != 2 || pe.Kind != msgplane.ViolationStraySender {
		t.Fatalf("stray sender: %v", err)
	}

	// The genuine response still resolves the call.
	if err := d.deliver(transport.Message{From: 1, Tag: int(tagBatchResp), Data: encodeBatchResp(1, []batchAnswer{{Count: 7, Exists: true}})}); err != nil {
		t.Fatal(err)
	}
	answers, err := d.wait(call)
	if err != nil || len(answers) != 1 || answers[0].Count != 7 {
		t.Fatalf("call resolution: %v %v", answers, err)
	}
}

// TestDispatcherFailPoisonsWaiters: fail must resolve every outstanding
// call with the poison and refuse new ones, so no worker can hang on a
// responder that died.
func TestDispatcherFailPoisonsWaiters(t *testing.T) {
	eps, err := transport.NewProcGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	d := newLookupDispatcher(eps[0], 2, 4)
	call, err := d.start(1, kindTile, []kmer.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	waited := make(chan error, 1)
	go func() {
		_, err := d.wait(call)
		waited <- err
	}()
	d.fail(boom)
	select {
	case err := <-waited:
		if !errors.Is(err, boom) {
			t.Errorf("waiter got %v, want poison", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after fail")
	}
	if _, err := d.start(1, kindTile, []kmer.ID{3}); !errors.Is(err, boom) {
		t.Errorf("start after fail: %v", err)
	}
}

// TestLegacyRemoteStrayResponseIsProtocolError: the unbatched protocol's
// stray-response defect is now a typed error naming both ranks instead of a
// bare fatal string.
func TestLegacyRemoteStrayResponseIsProtocolError(t *testing.T) {
	eps, err := transport.NewProcGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.CloseGroup(eps)
	var st statsRank
	o := &distOracle{e: eps[0], st: &st, rank: 0, np: 3}
	// Rank 2 answers even though the request went to rank 1.
	if err := eps[2].Send(0, int(tagResp), encodeResp(1, true)); err != nil {
		t.Fatal(err)
	}
	_, _, rerr := o.remote(kindKmer, 42, 1)
	var pe *ProtocolError
	if !errors.As(rerr, &pe) || pe.Want != 1 || pe.From != 2 || pe.Kind != msgplane.ViolationStraySender {
		t.Fatalf("stray response: %v", rerr)
	}
	if !strings.Contains(rerr.Error(), "resp") {
		t.Fatalf("stray response does not name the tag: %v", rerr)
	}
}

// TestRunRecordsLauncherElapsed: the launcher-observed total is recorded
// and bounds every rank's own phase-timer sum.
func TestRunRecordsLauncherElapsed(t *testing.T) {
	ds, opts := testDataset(t, 300, 8600)
	out, err := Run(&MemorySource{Reads: ds.Reads}, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Run.Elapsed <= 0 {
		t.Fatal("Run.Elapsed not recorded")
	}
	for _, r := range out.Run.Ranks {
		var total time.Duration
		for _, w := range r.Wall {
			total += w
		}
		if total > out.Run.Elapsed {
			t.Errorf("rank %d phase sum %v exceeds launcher elapsed %v", r.Rank, total, out.Run.Elapsed)
		}
	}
	sinks, factory := collectSinks(2)
	_ = sinks
	sout, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 2, opts, factory)
	if err != nil {
		t.Fatal(err)
	}
	if sout.Run.Elapsed <= 0 {
		t.Error("RunStreaming Elapsed not recorded")
	}
}
