package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic comments in fixture files:
//
//	somecode() // want "substring of the diagnostic"
//
// Several want clauses may share one comment.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// runGolden loads one testdata fixture directory as a package with the given
// pretend import path, runs a single analyzer through the full pipeline
// (including allow-directive suppression), and checks the diagnostics agree
// exactly with the fixture's want comments.
func runGolden(t *testing.T, a Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in testdata/%s", dir)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					k := key{filepath.Base(f.Name), pos.Line}
					wants[k] = append(wants[k], m[1])
				}
			}
		}
	}

	diags := Run([]*Package{pkg}, []Analyzer{a})
	unmatched := map[key][]string{}
	for k, v := range wants {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for i, w := range unmatched[k] {
			if strings.Contains(d.Message, w) {
				unmatched[k] = append(unmatched[k][:i], unmatched[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, v := range unmatched {
		for _, w := range v {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", k.file, k.line, w)
		}
	}
}

// TestAnalyzerInventory pins the suite: eight analyzers, each documented,
// three of them module-wide.
func TestAnalyzerInventory(t *testing.T) {
	modules := 0
	for _, a := range All() {
		if a.Name() == "" || a.Doc() == "" {
			t.Errorf("analyzer %T missing name or doc", a)
		}
		if _, ok := a.(ModuleAnalyzer); ok {
			modules++
		}
	}
	if got := len(All()); got != 8 {
		t.Errorf("expected 8 analyzers, have %d", got)
	}
	if modules != 3 {
		t.Errorf("expected 3 module-wide analyzers, have %d", modules)
	}
}
