package core

import (
	"encoding/binary"
	"testing"

	"reptile/internal/kmer"
	"reptile/internal/transport"
)

// The decode fuzz targets pin the wire layer's only safety contract: an
// arbitrary byte string either decodes into a self-consistent value or
// returns an error — never a panic, never an out-of-bounds read, and never
// a value that re-encodes to a different frame.

func FuzzDecodeBatchReq(f *testing.F) {
	// Golden frames: an empty batch, a single k-mer id, a mixed-width pair
	// of tile ids, and a deliberately truncated frame.
	f.Add(encodeBatchReq(0, kindKmer, nil))
	f.Add(encodeBatchReq(1, kindKmer, []kmer.ID{42}))
	f.Add(encodeBatchReq(7, kindTile, []kmer.ID{1, 1 << 60}))
	f.Add(encodeBatchReq(9, kindTile, []kmer.ID{5, 6, 7})[:8])
	f.Add(encodeBatchReq(11, kindKmer, []kmer.ID{1 << 62, 3, ^kmer.ID(0)}))
	f.Fuzz(func(t *testing.T, payload []byte) {
		reqID, kind, ids, err := decodeBatchReq(payload)
		if err != nil {
			return
		}
		// Varints are canonical on encode but Uvarint tolerates padded
		// forms, so the invariant is semantic: whatever decodes must
		// re-encode to a frame that decodes to the same value.
		back := encodeBatchReq(reqID, kind, ids)
		reqID2, kind2, ids2, err := decodeBatchReq(back)
		if err != nil {
			t.Fatalf("re-encode does not decode: %v", err)
		}
		if reqID2 != reqID || kind2 != kind || len(ids2) != len(ids) {
			t.Fatalf("frame changed across round trip: id %d→%d kind %d→%d n %d→%d",
				reqID, reqID2, kind, kind2, len(ids), len(ids2))
		}
		for i := range ids {
			if ids2[i] != ids[i] {
				t.Fatalf("id %d changed across round trip: %d vs %d", i, ids2[i], ids[i])
			}
		}
		if len(back) > len(payload) {
			t.Fatalf("canonical re-encode is %d bytes, original frame %d", len(back), len(payload))
		}
	})
}

func FuzzDecodeBatchResp(f *testing.F) {
	f.Add(encodeBatchResp(0, nil))
	f.Add(encodeBatchResp(3, []batchAnswer{{Count: 9, Exists: true}}))
	f.Add(encodeBatchResp(8, []batchAnswer{{Count: 0, Exists: false}, {Count: 1 << 30, Exists: true}}))
	f.Add(encodeBatchResp(5, []batchAnswer{{Count: 2, Exists: true}})[:7])
	f.Fuzz(func(t *testing.T, payload []byte) {
		reqID, answers, err := decodeBatchResp(payload)
		if err != nil {
			return
		}
		back := encodeBatchResp(reqID, answers)
		// Encode emits canonical (minimal) varints but Uvarint tolerates
		// padded forms, so the canonical frame may be shorter — never
		// longer — than the fuzzed original.
		if len(back) > len(payload) {
			t.Fatalf("canonical re-encode is %d bytes, original frame %d", len(back), len(payload))
		}
		reqID2, answers2, err := decodeBatchResp(back)
		if err != nil || reqID2 != reqID || len(answers2) != len(answers) {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		for i := range answers {
			if answers2[i] != answers[i] {
				t.Fatalf("answer %d changed across round trip", i)
			}
		}
	})
}

// FuzzBatchReqDeltaCodec drives the zigzag-varint delta codec from the
// encode side: arbitrary id patterns (8 fuzzed bytes each) must survive
// encode → decode exactly. This is the losslessness half the decode target
// cannot pin — it only sees frames that already parsed — and it hammers the
// wrapping delta arithmetic with descending, alternating, and full-width id
// sequences no sorted issuer would produce.
func FuzzBatchReqDeltaCodec(f *testing.F) {
	pack := func(ids ...uint64) []byte {
		buf := make([]byte, 0, 8*len(ids))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
		return buf
	}
	f.Add(uint32(0), byte(kindKmer), pack())
	f.Add(uint32(1), byte(kindTile), pack(1, 2, 3))
	f.Add(uint32(7), byte(kindKmer), pack(1<<63, 0, ^uint64(0)))
	f.Add(uint32(9), byte(kindTile), pack(5, 5, 5))
	f.Fuzz(func(t *testing.T, reqID uint32, kind byte, raw []byte) {
		n := len(raw) / 8
		if n > maxBatchEntries {
			n = maxBatchEntries
		}
		ids := make([]kmer.ID, n)
		for i := range ids {
			ids[i] = kmer.ID(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		payload := encodeBatchReq(reqID, kind, ids)
		reqID2, kind2, ids2, err := decodeBatchReq(payload)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if reqID2 != reqID || kind2 != kind || len(ids2) != len(ids) {
			t.Fatalf("header changed: id %d→%d kind %d→%d n %d→%d", reqID, reqID2, kind, kind2, len(ids), len(ids2))
		}
		for i := range ids {
			if ids2[i] != ids[i] {
				t.Fatalf("id %d: sent %d, decoded %d", i, ids[i], ids2[i])
			}
		}
	})
}

// FuzzBatchRespVarintCodec is the encode-side twin for the response codec:
// arbitrary (count, exists) answer vectors (5 fuzzed bytes each) must
// survive encode → decode exactly, including the full u32 count range
// packed through count<<1|exists.
func FuzzBatchRespVarintCodec(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(3), []byte{0, 0, 0, 0, 0})
	f.Add(uint32(8), []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, reqID uint32, raw []byte) {
		n := len(raw) / 5
		if n > maxBatchEntries {
			n = maxBatchEntries
		}
		answers := make([]batchAnswer, n)
		for i := range answers {
			answers[i] = batchAnswer{
				Count:  binary.LittleEndian.Uint32(raw[5*i:]),
				Exists: raw[5*i+4]&1 == 1,
			}
		}
		payload := encodeBatchResp(reqID, answers)
		reqID2, answers2, err := decodeBatchResp(payload)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if reqID2 != reqID || len(answers2) != len(answers) {
			t.Fatalf("header changed: id %d→%d n %d→%d", reqID, reqID2, len(answers), len(answers2))
		}
		for i := range answers {
			if answers2[i] != answers[i] {
				t.Fatalf("answer %d: sent %+v, decoded %+v", i, answers[i], answers2[i])
			}
		}
	})
}

// FuzzSpecEntryCodec hits the spectrum round-exchange slab codec from both
// sides. The fuzzed bytes are read as (id u64, count u32) records and pushed
// through appendSpecEntry with one running predecessor — descending and
// full-width id patterns exercise the wrapping delta — then decodeSpecEntries
// must hand back exactly the input. The raw bytes are also fed to the decoder
// directly: an arbitrary slab either streams entries or errors, never panics.
func FuzzSpecEntryCodec(f *testing.F) {
	pack := func(pairs ...uint64) []byte {
		buf := make([]byte, 0, 12*len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			buf = binary.LittleEndian.AppendUint64(buf, pairs[i])
			buf = binary.LittleEndian.AppendUint32(buf, uint32(pairs[i+1]))
		}
		return buf
	}
	f.Add(pack())
	f.Add(pack(1, 1, 2, 2, 3, 3))
	f.Add(pack(1<<63, 1, 0, 1<<32-1, ^uint64(0), 7))
	f.Add(pack(100, 2, 5, 2, 100, 2)) // descending segment boundary
	f.Fuzz(func(t *testing.T, raw []byte) {
		type rec struct {
			id    kmer.ID
			count uint32
		}
		n := len(raw) / 12
		want := make([]rec, n)
		var slab []byte
		prev := uint64(0)
		for i := range want {
			want[i] = rec{
				id:    kmer.ID(binary.LittleEndian.Uint64(raw[12*i:])),
				count: binary.LittleEndian.Uint32(raw[12*i+8:]),
			}
			slab, prev = appendSpecEntry(slab, prev, want[i].id, want[i].count)
		}
		var got []rec
		err := decodeSpecEntries(slab, func(id kmer.ID, count uint32) error {
			got = append(got, rec{id, count})
			return nil
		})
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d entries decoded, %d encoded", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("entry %d: sent %+v, decoded %+v", i, want[i], got[i])
			}
		}
		// Decoder safety on the raw fuzz bytes themselves.
		_ = decodeSpecEntries(raw, func(kmer.ID, uint32) error { return nil })
	})
}

func FuzzDecodeAbortInfo(f *testing.F) {
	for _, a := range []*AbortError{
		{Rank: 0, Phase: "read", Cause: "boom"},
		{Rank: 3, Phase: "correct", Cause: "peer 1 went away", err: transport.ErrPeerDown},
		{Rank: 1, Phase: "exchange", Cause: "", err: transport.ErrCorruptFrame},
		{Rank: -1, Phase: "spectrum", Cause: "x"},
	} {
		f.Add(encodeAbortInfo(a))
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := decodeAbortInfo(payload)
		if err != nil {
			return
		}
		back := encodeAbortInfo(a)
		a2, err := decodeAbortInfo(back)
		if err != nil {
			t.Fatalf("re-encode does not decode: %v", err)
		}
		if a2.Rank != a.Rank || a2.Phase != a.Phase || a2.Cause != a.Cause {
			t.Fatalf("abort record changed across round trip: %+v vs %+v", a2, a)
		}
	})
}
