// Heuristics: sweep every Section III-B execution mode on the same dataset
// and print the time/memory trade-off table (the story of the paper's
// Fig 5): replication is fastest but most expensive, batch-reads is the
// leanest, universal wins a little for free.
package main

import (
	"fmt"
	"log"

	"reptile"
)

func main() {
	ds := reptile.EColiSim.Scaled(0.05).Build()
	fmt.Printf("dataset: %d reads at %.0fX, %d errors\n\n", ds.NumReads(), ds.Coverage(), ds.TotalErrors())

	modes := []struct {
		name string
		h    reptile.Heuristics
	}{
		{"base", reptile.Heuristics{}},
		{"universal", reptile.Heuristics{Universal: true}},
		{"read-kmers", reptile.Heuristics{RetainReadKmers: true}},
		{"remote-cache", reptile.Heuristics{RetainReadKmers: true, CacheRemote: true}},
		{"batch-reads", reptile.Heuristics{BatchReads: true}},
		{"repl-kmers", reptile.Heuristics{ReplicateKmers: true}},
		{"repl-tiles", reptile.Heuristics{ReplicateTiles: true}},
		{"repl-both", reptile.Heuristics{ReplicateKmers: true, ReplicateTiles: true}},
		{"partial-repl(4)", reptile.Heuristics{PartialReplicationGroup: 4}},
	}

	const np = 16
	fmt.Printf("%-16s %12s %12s %14s %14s %12s\n",
		"mode", "remote", "served", "mem construct", "mem correct", "corrected")
	for _, m := range modes {
		opts := reptile.DefaultOptions()
		opts.Config = reptile.ConfigForCoverage(ds.Coverage())
		opts.Heuristics = m.h

		out, err := reptile.Run(&reptile.MemorySource{Reads: ds.Reads}, np, opts)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		remote := out.Run.Sum(func(r *reptile.RankStats) int64 { return r.TotalRemoteLookups() })
		served := out.Run.Sum(func(r *reptile.RankStats) int64 { return r.RequestsServed })
		memC := out.Run.Max(func(r *reptile.RankStats) int64 { return r.MemAfterConstruct })
		memX := out.Run.Max(func(r *reptile.RankStats) int64 { return r.MemAfterCorrect })
		fmt.Printf("%-16s %12d %12d %11.2f MiB %11.2f MiB %12d\n",
			m.name, remote, served,
			float64(memC)/(1<<20), float64(memX)/(1<<20), out.Result.BasesCorrected)
	}
	fmt.Println("\nevery mode corrects the same bases; they differ only in where counts live and who gets asked")
}
