package lint

import (
	"os"
	"testing"
)

// TestRepoIsLintClean runs the full analyzer suite over the whole module —
// the same gate CI applies with `go run ./cmd/reptile-lint ./...` — and
// requires zero findings. Any new unguarded access, protocol drift, sleepy
// synchronization, or detached goroutine in the runtime fails this test
// locally before CI ever sees it.
func TestRepoIsLintClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; pattern expansion is broken", len(pkgs), root)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
