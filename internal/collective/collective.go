// Package collective layers the collective operations the paper's algorithm
// uses — MPI_Alltoallv, MPI_Allgatherv, MPI_Reduce, MPI_Bcast, barriers —
// on top of the transport's tagged point-to-point sends.
//
// Tag discipline: every collective call on a rank consumes one generation
// number from its communicator, and all ranks invoke collectives in the
// same program order (the same requirement MPI imposes), so tags never
// collide across phases and collective traffic never mixes with the
// application's request/response tags, which live in non-negative tag
// space. Collective tags are negative.
package collective

import (
	"encoding/binary"
	"fmt"

	"reptile/internal/msgplane"
	"reptile/internal/transport"
)

// Comm wraps an endpoint with collective-generation bookkeeping. Create one
// Comm per rank and use it for every collective in the run. The endpoint is
// held as the transport.Conn interface, so collectives run unchanged over a
// concrete endpoint or the fault-injecting Chaos wrapper.
type Comm struct {
	E   transport.Conn
	gen int
}

// New wraps e.
func New(e transport.Conn) *Comm { return &Comm{E: e} }

// Rank returns the underlying rank.
func (c *Comm) Rank() int { return c.E.Rank() }

// Size returns the group size.
func (c *Comm) Size() int { return c.E.Size() }

// nextTag reserves a fresh negative tag for one collective operation.
func (c *Comm) nextTag() int {
	c.gen++
	return -c.gen
}

// Alltoallv sends bufs[r] to every rank r and returns the np buffers
// received, indexed by source rank; the self-buffer is passed through
// without copying. Nil buffers are legal and arrive as empty slices.
//
// This is the workhorse of spectrum construction (paper Step III) and of
// the static load-balancing read exchange (Section III-A).
func (c *Comm) Alltoallv(bufs [][]byte) ([][]byte, error) {
	np := c.Size()
	if len(bufs) != np {
		return nil, fmt.Errorf("collective: alltoallv with %d buffers for %d ranks", len(bufs), np)
	}
	tag := c.nextTag()
	me := c.Rank()
	for r := 0; r < np; r++ {
		if r == me {
			continue
		}
		if err := c.E.Send(r, tag, bufs[r]); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, np)
	out[me] = bufs[me]
	for i := 0; i < np-1; i++ {
		m, err := c.E.Recv(tag)
		if err != nil {
			return nil, err
		}
		if out[m.From] != nil && m.From != me {
			return nil, &msgplane.ProtocolError{Tag: msgplane.Tag(tag), Kind: msgplane.ViolationDuplicateFrame, From: m.From, Want: -1}
		}
		out[m.From] = m.Data
	}
	for r := range out {
		if out[r] == nil {
			out[r] = []byte{}
		}
	}
	return out, nil
}

// Allgatherv sends buf to every rank and returns all ranks' buffers indexed
// by rank. It implements the paper's allgather k-mers/tiles replication
// heuristic.
func (c *Comm) Allgatherv(buf []byte) ([][]byte, error) {
	np := c.Size()
	bufs := make([][]byte, np)
	for r := range bufs {
		bufs[r] = buf
	}
	return c.Alltoallv(bufs)
}

// GatherFlat collects every rank's buffer at root with a star pattern
// (np-1 direct sends); kept for the ablation benches. Gather uses the
// binomial tree in tree.go.
func (c *Comm) GatherFlat(root int, buf []byte) ([][]byte, error) {
	np, me := c.Size(), c.Rank()
	tag := c.nextTag()
	if me != root {
		return nil, c.E.Send(root, tag, buf)
	}
	out := make([][]byte, np)
	out[me] = buf
	for i := 0; i < np-1; i++ {
		m, err := c.E.Recv(tag)
		if err != nil {
			return nil, err
		}
		out[m.From] = m.Data
	}
	return out, nil
}

// BcastFlat distributes root's buffer with np-1 direct sends; kept for the
// ablation benches. Bcast uses the binomial tree in tree.go.
func (c *Comm) BcastFlat(root int, buf []byte) ([]byte, error) {
	np, me := c.Size(), c.Rank()
	tag := c.nextTag()
	if me == root {
		for r := 0; r < np; r++ {
			if r == root {
				continue
			}
			if err := c.E.Send(r, tag, buf); err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	m, err := c.E.Recv(tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Gather collects every rank's buffer at root (binomial tree); non-root
// ranks get nil.
func (c *Comm) Gather(root int, buf []byte) ([][]byte, error) {
	return c.GatherTree(root, buf)
}

// Bcast distributes root's buffer to every rank (binomial tree) and returns
// it (root's own buffer is returned as-is on root).
func (c *Comm) Bcast(root int, buf []byte) ([]byte, error) {
	return c.BcastTree(root, buf)
}

// Barrier blocks until every rank has entered it (tree gather + broadcast).
func (c *Comm) Barrier() error {
	if _, err := c.Gather(0, nil); err != nil {
		return err
	}
	_, err := c.Bcast(0, nil)
	return err
}

// ReduceMaxInt64 returns the maximum of every rank's value at root (other
// ranks receive 0). The paper uses MPI_Reduce with MAX to agree on the
// number of batch-reads rounds.
func (c *Comm) ReduceMaxInt64(root int, v int64) (int64, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	all, err := c.Gather(root, buf[:])
	if err != nil {
		return 0, err
	}
	if c.Rank() != root {
		return 0, nil
	}
	max := v
	for _, b := range all {
		if x := int64(binary.LittleEndian.Uint64(b)); x > max {
			max = x
		}
	}
	return max, nil
}

// AllreduceMaxInt64 is ReduceMaxInt64 followed by a broadcast, so every
// rank learns the maximum.
func (c *Comm) AllreduceMaxInt64(v int64) (int64, error) {
	max, err := c.ReduceMaxInt64(0, v)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	if c.Rank() == 0 {
		binary.LittleEndian.PutUint64(buf[:], uint64(max))
	}
	out, err := c.Bcast(0, buf[:])
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out)), nil
}

// AllreduceSumInt64 returns the sum of every rank's value on all ranks,
// used to aggregate run statistics.
func (c *Comm) AllreduceSumInt64(v int64) (int64, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	all, err := c.Allgatherv(buf[:])
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, b := range all {
		sum += int64(binary.LittleEndian.Uint64(b))
	}
	return sum, nil
}
