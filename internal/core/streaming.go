package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/transport"
)

// Sink receives corrected reads incrementally during a streaming run.
type Sink interface {
	Write(batch []reads.Read) error
	Close() error
}

// SinkFactory builds one rank's sink.
type SinkFactory func(rank int) (Sink, error)

// CollectSink accumulates corrected reads in memory; the test/bench sink.
// Reads may be inspected without the mutex only after the run's goroutines
// are joined (RunStreaming returning is the happens-before edge).
type CollectSink struct {
	mu    sync.Mutex
	Reads []reads.Read // guarded by mu
}

// Write implements Sink.
func (s *CollectSink) Write(batch []reads.Read) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range batch {
		s.Reads = append(s.Reads, batch[i].Clone())
	}
	return nil
}

// Close implements Sink.
func (s *CollectSink) Close() error { return nil }

// RunRankStreaming is RunRank in the paper's low-memory shape: reads are
// never held whole. The source is traversed twice — once to build the
// spectra (with the batch-reads exchange after every chunk), and once more
// during correction, where each chunk is balanced, corrected, written to
// the sink, and dropped ("the short reads are again processed from the
// file... storing the reads is not a feasible option", paper Step IV).
func RunRankStreaming(e transport.Conn, src Source, opts Options, sink Sink) (*RankOutput, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("core: streaming run needs a sink")
	}
	if opts.Replicas >= 2 {
		return nil, fmt.Errorf("core: Replicas=2 requires the batch engine: a recovery executor re-derives a dead rank's resident reads, which streaming never holds")
	}
	if opts.WorkSteal {
		return nil, fmt.Errorf("core: WorkSteal requires the batch engine: the chunk queue is cut from resident reads")
	}
	out, err := runRankPipeline(e, opts, streamingSteps(src, sink, opts))
	// The sink is closed here, exactly once, on every exit path: an aborted
	// run must still flush buffered corrected reads and release the sink's
	// file handles, and a close failure on an otherwise clean run is a run
	// failure. The close error joins (rather than replaces) a run error so
	// errors.As still finds the run's AbortError.
	if cerr := sink.Close(); cerr != nil {
		if err == nil {
			err = cerr
		} else {
			err = errors.Join(err, cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// moreRounds aligns open-ended chunk loops across ranks: every rank reports
// whether it still has local work, and all continue until nobody does.
func (ctx *rankCtx) moreRounds(localMore bool) (bool, error) {
	v := int64(0)
	if localMore {
		v = 1
	}
	max, err := ctx.comm.AllreduceMaxInt64(v)
	if err != nil {
		return false, err
	}
	return max > 0, nil
}

// spectrumPassStreaming builds the distributed spectra chunk by chunk
// without retaining reads: batch-reads semantics are inherent here. The
// sharded extraction workers apply as in the in-memory engine, but the
// exchange is NOT pipelined: each round ends with the open-ended moreRounds
// allreduce, which must not overlap an in-flight background all-to-all on
// the same Comm, so the exchange is joined inline.
//
// reptile-lint:build
func (ctx *rankCtx) spectrumPassStreaming(src Source) error {
	if ctx.snapLoaded {
		// Run-wide snapshot hit: the build's first source traversal is
		// skipped entirely (ReadBases stays zero on a warm run).
		return nil
	}
	br, err := src.Open(ctx.rank, ctx.np, ctx.opts.Config.ChunkReads)
	if err != nil {
		return err
	}
	defer br.Close()
	// The streaming pass retains nothing (retained tables would grow with
	// the dataset, defeating the point); RetainReadKmers then only matters
	// as the CacheRemote prerequisite, with the cache budget left to the
	// caller.
	b := ctx.newSpecBuilder(false)
	exhausted := false
	for round := 0; ; round++ {
		var batch []reads.Read
		if !exhausted {
			batch, err = br.NextBatch()
			if err == io.EOF {
				exhausted = true
				err = nil
			}
			if err != nil {
				return err
			}
		}
		for i := range batch {
			ctx.st.ReadBases += int64(len(batch[i].Base))
		}
		b.extract(batch)
		b.fold()
		b.observeRound()
		// Rotating the buffer set keeps a zero-copy peer that is still
		// decoding the previous round's slab safe from this round's encode
		// (see specBuilder.encK).
		bufsK, bufsT := b.encode(round % 3)
		if err := b.join(b.startExchange(bufsK, bufsT)); err != nil {
			return err
		}
		more, err := ctx.moreRounds(!exhausted)
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	if err := ctx.resolveThresholds(); err != nil {
		return err
	}
	b.finish()
	if ctx.opts.Snapshot != nil {
		return ctx.saveSnapshot()
	}
	return nil
}

// correctStreamLoop is the streaming engine's correct-step work function,
// run by correctDriver with the rank's router live on the same endpoint:
// re-read the source, balancing and correcting one chunk at a time, and
// write each corrected chunk to the sink. The whole loop is one session —
// each balanced chunk is a resident session submission, corrected by this
// rank's executor through the same worker pool as the in-memory engine —
// so the streaming driver shares the served jobs' correction code path.
// The worker's chunk-boundary collectives coexist with the responder
// because collective tags are disjoint from service tags.
func (ctx *rankCtx) correctStreamLoop(src Source, sink Sink, disp *lookupDispatcher) (res reptile.Result, err error) {
	br, err := src.Open(ctx.rank, ctx.np, ctx.opts.Config.ChunkReads)
	if err != nil {
		return res, err
	}
	defer br.Close()
	sess, err := ctx.openSession(ctx.rank, batchTenant)
	if err != nil {
		return res, err
	}
	defer func() {
		// Close retires the session at the executor; the done announcement
		// in quiesceCorrect requires it (a rank is done only when its
		// sessions are closed). On an already-failing exit the close error
		// is secondary noise.
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	exhausted := false
	for {
		var batch []reads.Read
		if !exhausted {
			batch, err = br.NextBatch()
			if err == io.EOF {
				exhausted = true
				err = nil
			}
			if err != nil {
				return res, err
			}
		}
		mine, err := ctx.balanceChunk(batch)
		if err != nil {
			return res, err
		}
		// balanceChunk's output is this rank's own storage, so the chunk is
		// submitted resident: corrected in place, no copy.
		pend, err := sess.submitResident(mine)
		if err != nil {
			return res, err
		}
		_, chunkRes, err := pend.Wait()
		res.Add(chunkRes)
		if err != nil {
			return res, err
		}
		ctx.st.ReadsAssigned += int64(len(mine))
		if len(mine) > 0 {
			if err := sink.Write(mine); err != nil {
				return res, err
			}
		}
		more, err := ctx.moreRounds(!exhausted)
		if err != nil {
			return res, err
		}
		if !more {
			return res, nil
		}
	}
}

// balanceChunk redistributes one chunk of reads to owner ranks (or clones
// them locally when balancing is off) and returns the reads this rank must
// correct from this round.
func (ctx *rankCtx) balanceChunk(batch []reads.Read) ([]reads.Read, error) {
	if !ctx.opts.LoadBalance {
		out := make([]reads.Read, len(batch))
		for i := range batch {
			out[i] = batch[i].Clone()
		}
		return out, nil
	}
	buckets := make([][]reads.Read, ctx.np)
	var mine []reads.Read
	for i := range batch {
		owner := batch[i].OwnerRank(ctx.np)
		if owner == ctx.rank {
			mine = append(mine, batch[i].Clone())
		} else {
			buckets[owner] = append(buckets[owner], batch[i])
			ctx.st.ReadsExchanged++
		}
	}
	bufs := make([][]byte, ctx.np)
	for r, b := range buckets {
		if r != ctx.rank && len(b) > 0 {
			bufs[r] = reads.EncodeBatch(b)
			ctx.st.ExchangeBytes += int64(len(bufs[r]))
		}
	}
	got, err := ctx.comm.Alltoallv(bufs)
	if err != nil {
		return nil, err
	}
	for r, buf := range got {
		if r == ctx.rank || len(buf) == 0 {
			continue
		}
		in, err := reads.DecodeBatch(buf)
		if err != nil {
			return nil, fmt.Errorf("decoding reads from rank %d: %w", r, err)
		}
		mine = append(mine, in...)
	}
	// Deterministic order within the chunk. Across chunks the sink output
	// is NOT globally sorted by sequence number: balancing interleaves the
	// file order by design.
	sort.Slice(mine, func(i, j int) bool { return mine[i].Seq < mine[j].Seq })
	return mine, nil
}

// RunStreaming executes the streaming pipeline with np goroutine ranks.
func RunStreaming(src Source, np int, opts Options, sinks SinkFactory) (*Output, error) {
	return runGroup(np, opts, func(conn transport.Conn, r int) (*RankOutput, error) {
		sink, err := sinks(r)
		if err != nil {
			// A factory may hand back a partially-built sink alongside its
			// error (say, the .fa file opened but the .qual did not); close
			// it so nothing leaks.
			if sink != nil {
				if cerr := sink.Close(); cerr != nil {
					err = errors.Join(err, cerr)
				}
			}
			// The sink failed before the rank ever joined the group; closing
			// its endpoint surfaces the loss to peers as ErrPeerDown, the
			// same as a rank dying pre-run.
			conn.Close()
			return nil, err
		}
		return RunRankStreaming(conn, src, opts, sink)
	})
}
